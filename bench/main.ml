(* Benchmark harness.

   Running `dune exec bench/main.exe` does two things:

   1. regenerates every experiment of the reproduction index (DESIGN.md /
      EXPERIMENTS.md) at full size, printing the tables the paper's claims
      are checked against — this is the analogue of "reproducing every
      table and figure";

   2. times a representative kernel of each experiment with Bechamel (one
      Test.make per experiment, plus micro-benchmarks of the simulation
      engine itself), reporting ns/run estimates;

   3. runs the explore-scale section: wall-clock measurements of the
      parallel packed explorer on the exhaustive frontier instances
      (K4-K6 quick; C6 full-model and K7 at full size).  Each instance
      runs three legs — jobs=1 Serial, jobs=4 Synchronous (level
      barrier) and jobs=4 Asynchronous (κ-overlapped pipeline) — all
      three reports are asserted identical, and the per-level barrier
      wait of the two parallel legs is compared off the explorer.wait_ns
      obs counter (also recorded under "explore_scale" in the --json
      output).

   4. runs the churn-scale section: activation throughput and
      recovery-latency percentiles of the crash-recovery session engine
      (quick: C20; full: the acceptance-scale C62 campaigns), serial vs
      jobs=4 with the reports asserted identical.  The rows land under
      "churn" in the --json record and feed the CI perf-regression gate
      (scripts/check_bench_regression.py vs BENCH_seed.json).

   Flags: --quick (reduced experiment sizes), --no-bench, --no-experiments,
   --scale-only (skip the experiments and the Bechamel kernels: only the
   explore-scale section runs — the CI quick-bench legs),
   --exec-policy sync|async (which jobs=4 leg the --trace-out trace and
   the jobs4_seconds JSON key follow; default sync), --kappa K (overlap
   fraction of the async leg; default 0.5),
   --seed N (base offset added to every kernel's PRNG seed; default 0
   keeps the historical workloads — the effective value is printed on
   stderr so any run is reproducible),
   --csv DIR (also dump every experiment table as CSV into DIR),
   --json PATH (dump a machine-readable record of every experiment row and
   benchmark estimate to PATH), --jobs N (domains for the experiment fan-out;
   defaults to 1 so the timings stay on an otherwise-idle machine),
   --time-budget SEC (wall-clock budget for the explore-scale section:
   instances that would overrun are cut short with a note instead of
   blowing a CI job timeout), --checkpoint PATH (explore-scale instances
   checkpoint to PATH so a cancelled deep run leaves a resumable
   artifact behind — see HACKING.md, "Crash-safe model checking"),
   --trace-out PATH (Chrome trace_event trace of the explore-scale
   section, for Perfetto; enables the obs sink), --metrics (record the
   obs counter/gauge totals — with --json they land under "obs_metrics"
   in the report, otherwise they print to stderr).

   The symmetry-scale section (see run_symmetry_scale) adds:
   --mem-budget-mb N (override the per-instance heap budgets its legs run
   under — the CI memory-capped leg), --spill-dir DIR (where the
   symmetry+spill legs put their level files; default a pid-suffixed
   directory under the system temp dir), --spill-threshold-mb N (level
   size for those legs; default 1 MB so every full-size leg actually
   spills), --sym-full (run the full-size C7/C8 symmetry instances even
   under --quick — how the committed BENCH baseline gets its headline
   rows without dragging the full K7 explore-scale leg along).  Its
   per-instance "symmetry reduction:" stdout lines and the
   "symmetry_scale" JSON list are what the CI reduction check parses. *)

open Bechamel
open Toolkit
module Adversary = Asyncolor_kernel.Adversary
module Builders = Asyncolor_topology.Builders
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng
module Table = Asyncolor_workload.Table
module Obs = Asyncolor_obs.Obs
module Oclock = Asyncolor_obs.Clock
module Trace_export = Asyncolor_obs.Trace_export
module Executor = Asyncolor_util.Executor

(* --- benchmark kernels, one per experiment --------------------------- *)

(* Base offset for every PRNG seed below, settable with --seed.  The
   default of 0 keeps the historical seeds (1..12), so default output is
   unchanged; any other value re-randomises every kernel reproducibly.
   The effective value is announced on stderr (see main). *)
let seed_base = ref 0

let seed k = !seed_base + k

let run_alg1 n =
  let idents = Idents.increasing n in
  fun () -> ignore (Asyncolor.Algorithm1.run_on_cycle ~idents Adversary.synchronous)

let run_alg2 n =
  let idents = Idents.increasing n in
  fun () -> ignore (Asyncolor.Algorithm2.run_on_cycle ~idents Adversary.synchronous)

let run_alg3 n =
  let idents = Idents.increasing n in
  fun () -> ignore (Asyncolor.Algorithm3.run_on_cycle ~idents Adversary.synchronous)

let e2_palette_check () =
  let n = 32 in
  let graph = Builders.cycle n in
  let idents = Idents.random_permutation (Prng.create ~seed:(seed 1)) n in
  let r = Asyncolor.Algorithm1.run_on_cycle ~idents Adversary.synchronous in
  fun () ->
    ignore
      (Asyncolor.Checker.check
         ~equal:(fun a b -> a = b)
         ~in_palette:(Asyncolor.Color.pair_in_palette ~budget:2)
         graph r.outputs)

let e5_crossover () =
  let idents = Idents.increasing 256 in
  fun () ->
    ignore (Asyncolor.Algorithm2.run_on_cycle ~idents Adversary.synchronous);
    ignore (Asyncolor.Algorithm3.run_on_cycle ~idents Adversary.synchronous)

let e6_exhaustive_c3 () =
  let module Exp = Asyncolor_check.Explorer.Make (Asyncolor.Algorithm2.P) in
  let g = Builders.cycle 3 in
  fun () -> ignore (Exp.explore ~mode:`Singletons g ~idents:[| 5; 1; 9 |])

let e7_mis_explore () =
  let module Exp = Asyncolor_check.Explorer.Make (Asyncolor_shm.Mis.Greedy.P) in
  let g = Builders.cycle 4 in
  fun () -> ignore (Exp.explore g ~idents:[| 0; 1; 2; 3 |])

let e8_crash_run () =
  let n = 256 in
  let idents = Idents.random_permutation (Prng.create ~seed:(seed 2)) n in
  fun () ->
    let adv =
      Adversary.random_crashes (Prng.create ~seed:(seed 3)) ~n ~rate:0.3 ~horizon:10
        (Adversary.random_subsets (Prng.create ~seed:(seed 4)) ~p:0.7)
    in
    ignore (Asyncolor.Algorithm3.run_on_cycle ~max_steps:100_000 ~idents adv)

let e9_cv_reduction () =
  let prng = Prng.create ~seed:(seed 5) in
  let pairs =
    Array.init 4_096 (fun _ -> (Prng.int prng (1 lsl 50), Prng.int prng (1 lsl 50)))
  in
  fun () -> Array.iter (fun (x, y) -> ignore (Asyncolor_cv.Reduce.f x y)) pairs

let e10_general () =
  let g = Builders.grid 8 8 in
  let idents = Idents.random_permutation (Prng.create ~seed:(seed 6)) 64 in
  fun () -> ignore (Asyncolor.Algorithm4.run g ~idents Adversary.synchronous)

let e11_local_cv () =
  let idents = Idents.random_permutation (Prng.create ~seed:(seed 7)) 65_536 in
  fun () -> ignore (Asyncolor_local.Cole_vishkin_ring.three_color idents)

let e12_renaming () =
  let idents = Idents.random_sparse (Prng.create ~seed:(seed 8)) ~n:16 ~universe:1_000 in
  fun () -> ignore (Asyncolor_shm.Renaming.run ~n:16 ~idents Adversary.synchronous)

let e13_locked_stepping () =
  let module E2 = Asyncolor.Algorithm2.E in
  fun () ->
    let e = E2.create (Builders.cycle 3) ~idents:[| 5; 1; 9 |] in
    E2.activate e [ 0 ];
    E2.activate e [ 1 ];
    E2.activate e [ 2 ];
    for _ = 1 to 200 do
      E2.activate e [ 1; 2 ]
    done

let e14_decoupled () =
  let n = 4_096 in
  let prng = Prng.create ~seed:(seed 9) in
  let universe = 4 * n in
  let idents = Idents.random_sparse prng ~n ~universe in
  fun () ->
    let d = Asyncolor_local.Decoupled_ring.create ~idents ~universe in
    ignore (Asyncolor_local.Decoupled_ring.run Adversary.synchronous d)

let e15_linial () =
  let g = Builders.grid 8 8 in
  let idents = Idents.random_permutation (Prng.create ~seed:(seed 10)) 64 in
  fun () -> ignore (Asyncolor_local.Linial.color_delta_plus_one g ~idents)

let e16_alg2_general () =
  let g = Builders.complete 8 in
  let idents = Idents.random_permutation (Prng.create ~seed:(seed 11)) 8 in
  fun () ->
    ignore (Asyncolor.Algorithm2.run_on_graph g ~idents Adversary.synchronous)

let e17_alg2s () =
  let idents = Idents.increasing 256 in
  fun () -> ignore (Asyncolor.Algorithm2s.run_on_cycle ~idents Adversary.synchronous)

let e18_bit_accounting () =
  let prng = Prng.create ~seed:(seed 12) in
  let xs = Array.init 4_096 (fun _ -> Prng.int prng (1 lsl 50)) in
  fun () -> Array.iter (fun x -> ignore (Asyncolor_cv.Bits.length x)) xs

let engine_activate_throughput () =
  let module E3 = Asyncolor.Algorithm3.E in
  let n = 1_024 in
  let g = Builders.cycle n in
  let idents = Idents.increasing n in
  let all = List.init n Fun.id in
  fun () ->
    let e = E3.create g ~idents in
    E3.activate e all

let mex_kernel () =
  let lists = Array.init 256 (fun i -> [ i mod 5; (i + 1) mod 7; i mod 3; 0; 1 ]) in
  fun () -> Array.iter (fun l -> ignore (Asyncolor_util.Mex.of_list l)) lists

(* A function, not a value: the kernels above draw from their PRNGs when
   instantiated, which must happen after --seed is parsed. *)
let tests () =
  [
    Test.make ~name:"e1_alg1_termination(n=64)" (Staged.stage (run_alg1 64));
    Test.make ~name:"e2_alg1_palette(n=32)" (Staged.stage (e2_palette_check ()));
    Test.make ~name:"e3_alg2_linear(n=128)" (Staged.stage (run_alg2 128));
    Test.make ~name:"e4_alg3_logstar(n=4096)" (Staged.stage (run_alg3 4096));
    Test.make ~name:"e5_crossover(n=256)" (Staged.stage (e5_crossover ()));
    Test.make ~name:"e6_c3_exhaustive" (Staged.stage (e6_exhaustive_c3 ()));
    Test.make ~name:"e7_mis_explore(C4)" (Staged.stage (e7_mis_explore ()));
    Test.make ~name:"e8_crash_tolerance(n=256)" (Staged.stage (e8_crash_run ()));
    Test.make ~name:"e9_cv_reduction(4096 pairs)" (Staged.stage (e9_cv_reduction ()));
    Test.make ~name:"e10_general_graphs(grid8x8)" (Staged.stage (e10_general ()));
    Test.make ~name:"e11_local_cv(n=65536)" (Staged.stage (e11_local_cv ()));
    Test.make ~name:"e12_renaming(n=16)" (Staged.stage (e12_renaming ()));
    Test.make ~name:"e13_locked_stepping(200 rounds)"
      (Staged.stage (e13_locked_stepping ()));
    Test.make ~name:"e14_decoupled(n=4096)" (Staged.stage (e14_decoupled ()));
    Test.make ~name:"e15_linial(grid8x8,to Δ+1)" (Staged.stage (e15_linial ()));
    Test.make ~name:"e16_alg2_general(K8)" (Staged.stage (e16_alg2_general ()));
    Test.make ~name:"e17_alg2s(n=256)" (Staged.stage (e17_alg2s ()));
    Test.make ~name:"e18_bit_accounting(4096)" (Staged.stage (e18_bit_accounting ()));
    Test.make ~name:"engine_activate(n=1024)"
      (Staged.stage (engine_activate_throughput ()));
    Test.make ~name:"mex(256 lists)" (Staged.stage (mex_kernel ()));
  ]

(* --- explore-scale: wall-clock scaling of the parallel explorer ------- *)

(* The exhaustive frontier the parallel packed explorer is meant to push:
   the E16 renaming cliques under interleaved schedules (quick: K4-K6;
   full: K7, the past-n=5 headline instance) and the E17 cycles in the
   full simultaneous model (full: C6).  Each instance runs at --jobs 1 and
   --jobs 4 and the two reports are asserted identical — the bench doubles
   as an end-to-end determinism check on real workloads. *)
let explore_scale_instances ~quick =
  let base =
    [
      ("K4/interleaved", Builders.complete 4, [| 3; 7; 1; 9 |], `Singletons,
       2_000_000);
      ("K5/interleaved", Builders.complete 5, [| 3; 7; 1; 9; 5 |], `Singletons,
       2_000_000);
      ("K6/interleaved", Builders.complete 6, [| 3; 7; 1; 9; 5; 11 |],
       `Singletons, 2_000_000);
    ]
  in
  if quick then base
  else
    base
    @ [
        ("C6/simultaneous", Builders.cycle 6, [| 5; 1; 9; 4; 7; 2 |],
         `All_subsets, 2_000_000);
        ("K7/interleaved", Builders.complete 7, [| 3; 7; 1; 9; 5; 11; 2 |],
         `Singletons, 40_000_000);
      ]

(* Everything the JSON record needs about one explore-scale instance:
   timings of the three legs and the per-level barrier-wait accounting of
   the two parallel ones.  Wait fields are [None] when the obs sink was
   off (no --trace-out/--metrics): the explorer.wait_ns counter only
   accumulates on an enabled sink. *)
type scale_record = {
  sr_name : string;
  sr_configs : int;
  sr_transitions : int;
  sr_complete : bool;
  sr_serial_s : float;
  sr_sync_s : float;
  sr_async_s : float;
  sr_levels : int;
  sr_sync_wait_ns : int option;
  sr_async_wait_ns : int option;
  sr_overlap_submits : int option;
  sr_peak_live_words : int;
      (* major-heap footprint of the serial leg (Gc.quick_stat after the
         run, Gc.compact before it), the number a --mem-budget-mb limit
         is compared against *)
  sr_orbit_ratio : float;
      (* expanded/interned configs; 1.0 for these unreduced legs *)
}

(* Peak-footprint probe shared by the scale sections: compact, note the
   baseline the previous legs left behind (compaction does not always
   return every fragmented pool, so the baseline is rarely zero), run
   the leg, report the leg's own footprint growth.  The heap never
   shrinks between compactions, so the post-run read is the leg's
   high-water mark. *)
let with_peak_words f =
  Gc.compact ();
  let base = (Gc.quick_stat ()).Gc.heap_words in
  let r = f () in
  (r, max 0 ((Gc.quick_stat ()).Gc.heap_words - base))

let run_explore_scale ~quick ~budget ~checkpoint ~obs ~traced_policy ~kappa =
  let module Exp = Asyncolor_check.Explorer.Make (Asyncolor.Algorithm2.P) in
  print_endline
    "\n\
     === explore-scale: parallel packed explorer, wall clock (serial / sync \
     j4 / async j4) ===";
  let table =
    Table.create
      ~headers:
        [
          "instance"; "configs"; "complete"; "serial (s)"; "sync j4 (s)";
          "async j4 (s)"; "speedup (async)"; "wait/level sync";
          "wait/level async";
        ]
  in
  let ckpt = Option.map (fun path -> (path, 500_000)) checkpoint in
  let metric m name = Option.value ~default:0 (List.assoc_opt name m) in
  let records =
    List.map
      (fun (name, graph, idents, mode, cap) ->
        (* Timings come off the obs layer's monotonic clock (see
           EXPERIMENTS.md).  The leg matching --exec-policy writes into
           the shared --trace-out sink; the other parallel leg gets a
           private sink so its wait counters are still measured without
           polluting the trace.  Per-leg counter values are deltas, so
           the shared (accumulating) sink reads the same as a private
           one. *)
        let time ~policy ~jobs ~leg_obs =
          let before = Obs.metrics leg_obs in
          let t0 = Oclock.monotonic () in
          let r, peak =
            with_peak_words (fun () ->
                Exp.explore ~mode ~max_configs:cap ~jobs ~policy ?budget
                  ?checkpoint:ckpt ~obs:leg_obs graph ~idents)
          in
          let dt = Int64.to_float (Int64.sub (Oclock.monotonic ()) t0) /. 1e9 in
          let after = Obs.metrics leg_obs in
          let d name = metric after name - metric before name in
          (r, dt, d "explorer.wait_ns", d "explorer.levels",
           d "explorer.overlap_submits", peak)
        in
        let leg_obs leg =
          if not (Obs.enabled obs) then Obs.disabled
          else if leg = traced_policy then obs
          else Obs.create ()
        in
        let r1, dt1, _, _, _, peak1 =
          time ~policy:Executor.Serial ~jobs:1 ~leg_obs:Obs.disabled
        in
        let rs, dts, wait_s, levels, _, _ =
          time ~policy:Executor.Synchronous ~jobs:4 ~leg_obs:(leg_obs "sync")
        in
        let ra, dta, wait_a, _, overlap, _ =
          time
            ~policy:(Executor.asynchronous ~kappa ~jobs:4 ())
            ~jobs:4 ~leg_obs:(leg_obs "async")
        in
        (* A tripped budget cuts the legs at different points, so the
           byte-identity assertion only applies to complete runs. *)
        if r1.complete && rs.complete && r1 <> rs then
          failwith (name ^ ": serial and sync reports differ (determinism bug)");
        if r1.complete && ra.complete && r1 <> ra then
          failwith (name ^ ": serial and async reports differ (determinism bug)");
        if (not r1.complete) || (not rs.complete) || not ra.complete then
          Printf.printf "%s: cut short (budget or cap) — partial timings\n" name;
        let measured = Obs.enabled obs in
        let per_level w =
          if not measured then "-"
          else
            Printf.sprintf "%.2fms"
              (float_of_int w /. Float.max (float_of_int levels) 1. /. 1e6)
        in
        Table.add_row table
          [
            name;
            string_of_int r1.configs;
            string_of_bool r1.complete;
            Printf.sprintf "%.2f" dt1;
            Printf.sprintf "%.2f" dts;
            Printf.sprintf "%.2f" dta;
            Printf.sprintf "%.2fx" (dt1 /. Float.max dta 1e-9);
            per_level wait_s;
            per_level wait_a;
          ];
        {
          sr_name = name;
          sr_configs = r1.configs;
          sr_transitions = r1.transitions;
          sr_complete = r1.complete;
          sr_serial_s = dt1;
          sr_sync_s = dts;
          sr_async_s = dta;
          sr_levels = levels;
          sr_sync_wait_ns = (if measured then Some wait_s else None);
          sr_async_wait_ns = (if measured then Some wait_a else None);
          sr_overlap_submits = (if measured then Some overlap else None);
          sr_peak_live_words = peak1;
          sr_orbit_ratio =
            (match r1.orbit with
            | Some o when r1.configs > 0 ->
                float_of_int o.expanded_configs /. float_of_int r1.configs
            | _ -> 1.0);
        })
      (explore_scale_instances ~quick)
  in
  Table.print table;
  (if Obs.enabled obs then
     let total f = List.fold_left (fun acc r -> acc + f r) 0 records in
     let ws = total (fun r -> Option.value ~default:0 r.sr_sync_wait_ns) in
     let wa = total (fun r -> Option.value ~default:0 r.sr_async_wait_ns) in
     let lv = max 1 (total (fun r -> r.sr_levels)) in
     Printf.printf
       "barrier wait per level: sync %.2fms, async(κ=%.2f) %.2fms (%s)\n"
       (float_of_int ws /. float_of_int lv /. 1e6)
       kappa
       (float_of_int wa /. float_of_int lv /. 1e6)
       (if wa < ws then "overlap wins" else "overlap did not pay off here"));
  records

(* --- symmetry-scale: dihedral orbit reduction + spill-to-disk --------- *)

(* The instances the symmetry reduction is for: uniform identifiers make
   the cycle maximally symmetric (full dihedral group, order 2n), which
   is exactly where the unreduced explorer hits its memory ceiling first.
   Quick keeps both legs completable in seconds for CI; full runs the
   headline scale-up — the C7 full model and the n = 8 interleaved cycle,
   each with a per-instance memory budget chosen so the unreduced leg
   exceeds it while the reduced+spilled leg completes (the probe data
   behind the budgets is in EXPERIMENTS.md).  [cap] is a config-count
   safety net well above the reduced size. *)
let symmetry_scale_instances ~quick =
  let uniform = Idents.uniform ?ident:None in
  let base =
    [
      ("C5/simultaneous/uniform", Builders.cycle 5, uniform 5, `All_subsets,
       5_000_000, 512);
      ("C6/interleaved/uniform", Builders.cycle 6, uniform 6, `Singletons,
       5_000_000, 512);
    ]
  in
  if quick then base
  else
    base
    @ [
        ("C7/simultaneous/uniform", Builders.cycle 7, uniform 7, `All_subsets,
         20_000_000, 3_072);
        ("C8/interleaved/uniform", Builders.cycle 8, uniform 8, `Singletons,
         5_000_000, 256);
      ]

type sym_record = {
  sy_name : string;
  sy_n : int;
  sy_budget_mb : int;
  sy_group : int;
  sy_off_configs : int;
  sy_off_complete : bool;
  sy_off_s : float;
  sy_off_peak : int;
  sy_on_configs : int;
  sy_on_complete : bool;
  sy_on_s : float;
  sy_on_peak : int;
  sy_spill_s : float;
  sy_spill_peak : int;
  sy_spill_bytes : int;
  sy_spill_levels : int;
  sy_expanded_configs : int;
  sy_orbit_ratio : float;
}

let run_symmetry_scale ~quick ~budget ~mem_budget_mb ~spill_dir
    ~spill_threshold_words ~obs ~kappa =
  let module Exp = Asyncolor_check.Explorer.Make (Asyncolor.Algorithm2.P) in
  print_endline
    "\n\
     === symmetry-scale: dihedral orbit reduction + spill (off / on / \
     on+spill, mem-budgeted) ===";
  let table =
    Table.create
      ~headers:
        [
          "instance"; "budget"; "off configs"; "off done"; "on configs";
          "ratio"; "G"; "off peak Mw"; "on peak Mw"; "spill peak Mw";
          "spilled";
        ]
  in
  let records =
    List.filter_map
      (fun (name, graph, idents, mode, cap, default_mb) ->
        (* Respect the section-wide wall budget: a slow runner skips the
           remaining instances instead of tripping the CI job timeout. *)
        match budget with
        | Some b when Asyncolor_resilience.Budget.exceeded b ->
            Printf.printf "%s: skipped (time budget exhausted)\n" name;
            None
        | _ ->
            let n = Array.length idents in
            let budget_mb = Option.value ~default:default_mb mem_budget_mb in
            let leg ?spill ~symmetry ~jobs ~policy ~leg_obs () =
              (* Fresh budget per leg (budgets are sticky; the point is
                 comparing the legs under the SAME cap), measured as
                 footprint growth over the leg's compacted baseline:
                 Budget reads the absolute heap_words, and whatever
                 fragmented footprint earlier legs could not return must
                 not count against this one. *)
              Gc.compact ();
              let base = (Gc.quick_stat ()).Gc.heap_words in
              let mem =
                Asyncolor_resilience.Budget.create
                  ~mem_words:
                    (base
                    + Asyncolor_resilience.Budget.mem_words_of_mb budget_mb)
                  ()
              in
              let t0 = Oclock.monotonic () in
              let r =
                Exp.explore ~mode ~max_configs:cap ~jobs ~policy ~budget:mem
                  ~symmetry ?spill ~obs:leg_obs graph ~idents
              in
              let dt =
                Int64.to_float (Int64.sub (Oclock.monotonic ()) t0) /. 1e9
              in
              (r, dt, max 0 ((Gc.quick_stat ()).Gc.heap_words - base))
            in
            let r_off, dt_off, peak_off =
              leg ~symmetry:false ~jobs:1 ~policy:Executor.Serial
                ~leg_obs:Obs.disabled ()
            in
            let r_on, dt_on, peak_on =
              leg ~symmetry:true ~jobs:1 ~policy:Executor.Serial
                ~leg_obs:Obs.disabled ()
            in
            (* The spill leg runs the κ-overlapped pipeline so the
               background spill task actually overlaps expansion, and it
               owns the shared obs sink — its spans/counters are what the
               --trace-out trace shows. *)
            let spill_store =
              (* one subdirectory per instance — '/'-separated instance
                 names would otherwise all collapse to their last
                 component and share level files *)
              let sub = String.map (fun c -> if c = '/' then '-' else c) name in
              Asyncolor_resilience.Spill.create
                ~dir:(Filename.concat spill_dir sub)
                ()
            in
            let r_spill, dt_spill, peak_spill =
              leg
                ~spill:(spill_store, spill_threshold_words)
                ~symmetry:true ~jobs:4
                ~policy:(Executor.asynchronous ~kappa ~jobs:4 ())
                ~leg_obs:obs ()
            in
            (* Soundness gates, not just measurements: a complete reduced
               run must expand to the unreduced counts, spilling must not
               change a field, and the reduction must actually deliver
               (ratio >= n on these fully symmetric instances, strictly
               fewer interned configs than the unreduced leg). *)
            if r_on.complete && r_spill.complete && r_on <> r_spill then
              failwith (name ^ ": spill changed the report (spill bug)");
            let expanded, ratio =
              match r_on.orbit with
              | Some o when r_on.configs > 0 ->
                  ( o.expanded_configs,
                    float_of_int o.expanded_configs
                    /. float_of_int r_on.configs )
              | _ -> (0, 1.0)
            in
            let group =
              match r_on.orbit with Some o -> o.group_order | None -> 1
            in
            if r_on.complete then begin
              if ratio < float_of_int n then
                failwith
                  (Printf.sprintf
                     "%s: orbit ratio %.2f < n=%d (reduction under-delivered)"
                     name ratio n);
              if r_off.complete then begin
                if r_on.configs >= r_off.configs then
                  failwith (name ^ ": symmetry-on did not reduce configs");
                if expanded <> r_off.configs then
                  failwith
                    (Printf.sprintf
                       "%s: orbit expansion %d <> unreduced configs %d \
                        (quotient bug)"
                       name expanded r_off.configs)
              end
            end;
            Printf.printf
              "symmetry reduction: %s %s -> %d configs (ratio %.1f, group \
               %d, off %s under %d MB, on %s)\n"
              name
              (if r_off.complete then string_of_int r_off.configs
               else Printf.sprintf "budget-exceeded@%d" r_off.configs)
              r_on.configs ratio group
              (if r_off.complete then "completed" else "truncated")
              budget_mb
              (if r_spill.complete then "completed" else "truncated");
            Table.add_row table
              [
                name;
                Printf.sprintf "%dMB" budget_mb;
                string_of_int r_off.configs;
                string_of_bool r_off.complete;
                string_of_int r_on.configs;
                Printf.sprintf "%.1f" ratio;
                string_of_int group;
                Printf.sprintf "%.0f" (float_of_int peak_off /. 1e6);
                Printf.sprintf "%.0f" (float_of_int peak_on /. 1e6);
                Printf.sprintf "%.0f" (float_of_int peak_spill /. 1e6);
                Printf.sprintf "%.1fMB"
                  (float_of_int
                     (Asyncolor_resilience.Spill.bytes_written spill_store)
                  /. 1048576.);
              ];
            Some
              {
                sy_name = name;
                sy_n = n;
                sy_budget_mb = budget_mb;
                sy_group = group;
                sy_off_configs = r_off.configs;
                sy_off_complete = r_off.complete;
                sy_off_s = dt_off;
                sy_off_peak = peak_off;
                sy_on_configs = r_on.configs;
                sy_on_complete = r_on.complete;
                sy_on_s = dt_on;
                sy_on_peak = peak_on;
                sy_spill_s = dt_spill;
                sy_spill_peak = peak_spill;
                sy_spill_bytes =
                  Asyncolor_resilience.Spill.bytes_written spill_store;
                sy_spill_levels =
                  Asyncolor_resilience.Spill.levels_on_disk spill_store;
                sy_expanded_configs = expanded;
                sy_orbit_ratio = ratio;
              })
      (symmetry_scale_instances ~quick)
  in
  Table.print table;
  records

(* --- churn-scale: sustained crash-recovery sessions ------------------- *)

(* The churn engine's headline numbers: raw activation throughput of a
   long-lived crash-recovery campaign and the recovery-latency tail
   (activations from reset to return).  Quick runs a small ring so CI
   stays fast; full runs the acceptance-scale C62 campaigns (1M
   activations per algorithm).  Each instance runs serial and jobs=4
   synchronous and the two reports are asserted identical — the same
   end-to-end determinism gate as explore-scale.  The rows land under
   "churn" in the --json record; scripts/check_bench_regression.py
   compares them against BENCH_seed.json. *)
type churn_record = {
  cr_name : string;
  cr_activations : int;
  cr_crashes : int;
  cr_recoveries : int;
  cr_serial_s : float;
  cr_jobs4_s : float;
  cr_latency : Asyncolor_workload.Stats.summary option;
}

let churn_scale_instances ~quick =
  let open Asyncolor_churn.Session in
  let cfg algo n horizon = { default with algo; n; horizon } in
  if quick then
    [
      ("C20/a2", cfg A2 20 20_000, 2);
      ("C20/a3", cfg A3 20 20_000, 2);
    ]
  else
    [
      ("C62/a2", cfg A2 62 250_000, 4);
      ("C62/a3", cfg A3 62 250_000, 4);
    ]

let run_churn_scale ~quick ~budget =
  print_endline
    "\n\
     === churn-scale: crash-recovery sessions, wall clock (serial / sync \
     j4) ===";
  let table =
    Table.create
      ~headers:
        [
          "instance"; "activations"; "crashes"; "serial (s)"; "sync j4 (s)";
          "acts/sec"; "p50"; "p95"; "p99";
        ]
  in
  List.filter_map
    (fun (name, cfg, sessions) ->
      match budget with
      | Some b when Asyncolor_resilience.Budget.exceeded b ->
          Printf.printf "%s: skipped (time budget exhausted)\n" name;
          None
      | _ ->
          let time ~policy ~jobs =
            let t0 = Oclock.monotonic () in
            let r : Asyncolor_churn.Session.report =
              Asyncolor_churn.Session.campaign ~jobs ~policy cfg ~seed:1
                ~sessions ()
            in
            (r, Int64.to_float (Int64.sub (Oclock.monotonic ()) t0) /. 1e9)
          in
          let r1, dt1 = time ~policy:Executor.Serial ~jobs:1 in
          let r4, dt4 = time ~policy:Executor.Synchronous ~jobs:4 in
          if r1 <> r4 then
            failwith (name ^ ": serial and sync churn reports differ (determinism bug)");
          if r1.violations <> [] then
            failwith (name ^ ": clean churn campaign reported violations");
          let acts_per_sec =
            float_of_int r1.total_activations /. Float.max dt1 1e-9
          in
          let lat f =
            match r1.latency with
            | Some s -> string_of_int (f s)
            | None -> "-"
          in
          Table.add_row table
            [
              name;
              string_of_int r1.total_activations;
              string_of_int r1.total_crashes;
              Printf.sprintf "%.2f" dt1;
              Printf.sprintf "%.2f" dt4;
              Printf.sprintf "%.0f" acts_per_sec;
              lat (fun s -> s.Asyncolor_workload.Stats.p50);
              lat (fun s -> s.Asyncolor_workload.Stats.p95);
              lat (fun s -> s.Asyncolor_workload.Stats.p99);
            ];
          Some
            {
              cr_name = name;
              cr_activations = r1.total_activations;
              cr_crashes = r1.total_crashes;
              cr_recoveries = r1.total_recoveries;
              cr_serial_s = dt1;
              cr_jobs4_s = dt4;
              cr_latency = r1.latency;
            })
    (churn_scale_instances ~quick)
  |> fun records ->
  Table.print table;
  records

(* --- chaos-overhead: the injector's cost when armed but silent -------- *)

(* The resilience layer's "free when off" claim, measured: an injector
   armed at rate 0 draws one Bernoulli per I/O operation and per worker
   task but never fires, so its cost against a fully disabled run bounds
   what --chaos plumbing charges the production paths.  The reports must
   match exactly -- an armed-but-silent injector is invisible on the
   result (the explore-scale determinism gate, extended to chaos). *)
type chaos_record = {
  co_instance : string;
  co_off_s : float;
  co_armed_s : float;
  co_ratio : float;
}

let run_chaos_overhead ~quick ~budget () =
  let module Exp = Asyncolor_check.Explorer.Make (Asyncolor.Algorithm2.P) in
  print_endline
    "\n=== chaos-overhead: injector armed at rate 0 vs disabled (sync j2) ===";
  let name, graph, idents =
    if quick then ("C4/simultaneous", Builders.cycle 4, [| 5; 1; 9; 4 |])
    else ("C5/simultaneous", Builders.cycle 5, [| 5; 1; 9; 4; 7 |])
  in
  let time ~chaos =
    let t0 = Oclock.monotonic () in
    let r =
      Exp.explore ~max_configs:2_000_000 ~jobs:2 ~policy:Executor.Synchronous
        ?budget ~chaos graph ~idents
    in
    (r, Int64.to_float (Int64.sub (Oclock.monotonic ()) t0) /. 1e9)
  in
  let r_off, dt_off = time ~chaos:Asyncolor_resilience.Chaos.disabled in
  let armed = Asyncolor_resilience.Chaos.create ~rate:0.0 ~seed:1 () in
  let r_armed, dt_armed = time ~chaos:armed in
  if r_off.complete && r_armed.complete && r_off <> r_armed then
    failwith "chaos-overhead: armed rate-0 injector changed the report";
  let st = Asyncolor_resilience.Chaos.stats armed in
  if st.injected <> 0 then
    failwith "chaos-overhead: a rate-0 injector delivered a fault";
  let ratio = dt_armed /. Float.max dt_off 1e-9 in
  Printf.printf "%s: disabled %.3fs, armed(rate=0) %.3fs, overhead %.2fx\n"
    name dt_off dt_armed ratio;
  { co_instance = name; co_off_s = dt_off; co_armed_s = dt_armed;
    co_ratio = ratio }

(* Runs every benchmark, prints the timing table, and returns the raw
   (name, ns/run, r²) estimates for the --json record. *)
let run_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let table = Table.create ~headers:[ "benchmark"; "ns/run"; "r²" ] in
  let records = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (est :: _) -> Some est
            | _ -> None
          in
          let r2 = Analyze.OLS.r_square ols_result in
          records := (name, ns, r2) :: !records;
          Table.add_row table
            [
              name;
              (match ns with Some e -> Printf.sprintf "%.0f" e | None -> "-");
              (match r2 with Some r -> Printf.sprintf "%.4f" r | None -> "-");
            ])
        analysis)
    (tests ());
  print_endline "\n=== Bechamel timings (monotonic clock, OLS vs runs) ===";
  Table.print table;
  List.rev !records

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let no_bench = List.mem "--no-bench" argv in
  let no_experiments = List.mem "--no-experiments" argv in
  let find_opt flag =
    let rec find = function
      | f :: v :: _ when f = flag -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  let csv_dir = find_opt "--csv" in
  let json_path = find_opt "--json" in
  let scale_only = List.mem "--scale-only" argv in
  let sym_full = List.mem "--sym-full" argv in
  let jobs =
    match find_opt "--jobs" with Some n -> int_of_string n | None -> 1
  in
  let traced_policy =
    match find_opt "--exec-policy" with
    | Some ("sync" | "synchronous") | None -> "sync"
    | Some ("async" | "asynchronous") -> "async"
    | Some p -> failwith (Printf.sprintf "--exec-policy %s: want sync or async" p)
  in
  let kappa =
    match find_opt "--kappa" with Some k -> float_of_string k | None -> 0.5
  in
  (match find_opt "--seed" with
  | Some s -> seed_base := int_of_string s
  | None -> ());
  Printf.eprintf "effective seed: %d\n%!" !seed_base;
  let budget =
    match find_opt "--time-budget" with
    | Some s ->
        Some (Asyncolor_resilience.Budget.create ~time_s:(float_of_string s) ())
    | None -> None
  in
  let checkpoint = find_opt "--checkpoint" in
  let mem_budget_mb = Option.map int_of_string (find_opt "--mem-budget-mb") in
  let spill_dir =
    match find_opt "--spill-dir" with
    | Some d -> d
    | None ->
        (* Default somewhere disposable: the spill files of a bench run
           are a measurement by-product, not an artifact, unless CI asks
           for them with an explicit --spill-dir. *)
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "asyncolor-bench-spill-%d" (Unix.getpid ()))
  in
  let spill_threshold_words =
    match find_opt "--spill-threshold-mb" with
    | Some mb -> int_of_string mb * 1024 * 1024 / 8
    | None -> 131_072 (* 1 MB: small enough that every full leg spills *)
  in
  (if not (Sys.file_exists spill_dir) then
     try Unix.mkdir spill_dir 0o755 with Unix.Unix_error _ -> ());
  let outcomes =
    if no_experiments || scale_only then []
    else begin
      print_endline "=== Reproduction experiments (see DESIGN.md / EXPERIMENTS.md) ===";
      let outcomes = Asyncolor_experiments.Registry.run_all ~quick ~jobs () in
      (match csv_dir with
      | None -> ()
      | Some dir ->
          let written =
            List.concat_map (Asyncolor_experiments.Outcome.write_csvs ~dir) outcomes
          in
          Printf.printf "\nwrote %d CSV files to %s\n" (List.length written) dir);
      Printf.printf "\nexperiments reproduced: %d/%d\n"
        (List.length
           (List.filter (fun (o : Asyncolor_experiments.Outcome.t) -> o.ok) outcomes))
        (List.length outcomes);
      outcomes
    end
  in
  let trace_out = find_opt "--trace-out" in
  let metrics = List.mem "--metrics" argv in
  let obs =
    if trace_out <> None || metrics then Obs.create () else Obs.disabled
  in
  let scale_records =
    if no_bench then []
    else run_explore_scale ~quick ~budget ~checkpoint ~obs ~traced_policy ~kappa
  in
  let sym_records =
    if no_bench then []
    else
      run_symmetry_scale
        ~quick:(quick && not sym_full)
        ~budget ~mem_budget_mb ~spill_dir ~spill_threshold_words ~obs ~kappa
  in
  let churn_records =
    if no_bench then [] else run_churn_scale ~quick ~budget
  in
  let chaos_records =
    if no_bench then [] else [ run_chaos_overhead ~quick ~budget () ]
  in
  let bench_records =
    if no_bench || scale_only then [] else run_benchmarks ()
  in
  (match trace_out with
  | None -> ()
  | Some path ->
      Trace_export.write_chrome obs ~path;
      Printf.eprintf "wrote Chrome trace to %s (%d spans)\n%!" path
        (List.length (Obs.spans obs)));
  if metrics && json_path = None then
    prerr_string (Trace_export.metrics_table obs);
  (match json_path with
  | None -> ()
  | Some path ->
      let module J = Asyncolor_util.Jsonout in
      let bench_json (name, ns, r2) =
        let num = function Some f -> J.Float f | None -> J.Null in
        J.Obj
          [ ("name", J.String name); ("ns_per_run", num ns); ("r_square", num r2) ]
      in
      let scale_json (r : scale_record) =
        (* jobs4_seconds / speedup_jobs4 / configs_per_sec_jobs4 follow
           the --exec-policy leg, keeping the historical keys meaningful
           for dashboards that predate the policy split. *)
        let dt4 =
          if traced_policy = "async" then r.sr_async_s else r.sr_sync_s
        in
        let opt_ns = function Some w -> J.Int w | None -> J.Null in
        let per_level = function
          | Some w -> J.Float (float_of_int w /. float_of_int (max 1 r.sr_levels))
          | None -> J.Null
        in
        J.Obj
          [
            ("instance", J.String r.sr_name);
            ("configs", J.Int r.sr_configs);
            ("transitions", J.Int r.sr_transitions);
            ("complete", J.Bool r.sr_complete);
            ("exec_policy", J.String traced_policy);
            ("kappa", J.Float kappa);
            ("jobs1_seconds", J.Float r.sr_serial_s);
            ("jobs4_seconds", J.Float dt4);
            ("sync_seconds", J.Float r.sr_sync_s);
            ("async_seconds", J.Float r.sr_async_s);
            ("speedup_jobs4", J.Float (r.sr_serial_s /. Float.max dt4 1e-9));
            ( "configs_per_sec_jobs4",
              J.Float (float_of_int r.sr_configs /. Float.max dt4 1e-9) );
            ("levels", J.Int r.sr_levels);
            ("sync_wait_ns", opt_ns r.sr_sync_wait_ns);
            ("async_wait_ns", opt_ns r.sr_async_wait_ns);
            ("sync_wait_per_level_ns", per_level r.sr_sync_wait_ns);
            ("async_wait_per_level_ns", per_level r.sr_async_wait_ns);
            ("overlap_submits", opt_ns r.sr_overlap_submits);
            ("peak_live_words", J.Int r.sr_peak_live_words);
            ("orbit_ratio", J.Float r.sr_orbit_ratio);
          ]
      in
      let churn_json (r : churn_record) =
        let lat f =
          match r.cr_latency with
          | Some s -> J.Int (f s)
          | None -> J.Null
        in
        J.Obj
          [
            ("instance", J.String r.cr_name);
            ("activations", J.Int r.cr_activations);
            ("crashes", J.Int r.cr_crashes);
            ("recoveries", J.Int r.cr_recoveries);
            ("jobs1_seconds", J.Float r.cr_serial_s);
            ("jobs4_seconds", J.Float r.cr_jobs4_s);
            ( "activations_per_sec",
              J.Float
                (float_of_int r.cr_activations /. Float.max r.cr_serial_s 1e-9)
            );
            ("recovery_p50", lat (fun s -> s.Asyncolor_workload.Stats.p50));
            ("recovery_p95", lat (fun s -> s.Asyncolor_workload.Stats.p95));
            ("recovery_p99", lat (fun s -> s.Asyncolor_workload.Stats.p99));
            ( "recovery_max",
              lat (fun s -> s.Asyncolor_workload.Stats.max) );
          ]
      in
      let chaos_json (r : chaos_record) =
        J.Obj
          [
            ("instance", J.String r.co_instance);
            ("seconds_disabled", J.Float r.co_off_s);
            ("seconds_armed_rate0", J.Float r.co_armed_s);
            ("overhead_ratio", J.Float r.co_ratio);
          ]
      in
      let sym_json (r : sym_record) =
        J.Obj
          [
            ("instance", J.String r.sy_name);
            ("n", J.Int r.sy_n);
            ("mem_budget_mb", J.Int r.sy_budget_mb);
            ("group_order", J.Int r.sy_group);
            ("configs_off", J.Int r.sy_off_configs);
            ("complete_off", J.Bool r.sy_off_complete);
            ("seconds_off", J.Float r.sy_off_s);
            ("peak_live_words_off", J.Int r.sy_off_peak);
            ("configs_on", J.Int r.sy_on_configs);
            ("complete_on", J.Bool r.sy_on_complete);
            ("seconds_on", J.Float r.sy_on_s);
            ("peak_live_words_on", J.Int r.sy_on_peak);
            ("seconds_on_spill", J.Float r.sy_spill_s);
            ("peak_live_words_on_spill", J.Int r.sy_spill_peak);
            ("spill_bytes_written", J.Int r.sy_spill_bytes);
            ("spill_levels", J.Int r.sy_spill_levels);
            ("expanded_configs", J.Int r.sy_expanded_configs);
            ("orbit_ratio", J.Float r.sy_orbit_ratio);
          ]
      in
      (* The flat obs metrics ride along in the machine-readable record:
         one integer per counter/gauge, sorted by name (the same rows
         Trace_export.metrics_table prints).  Empty unless the sink was
         enabled with --trace-out/--metrics. *)
      let obs_metrics =
        J.Obj (List.map (fun (name, v) -> (name, J.Int v)) (Obs.metrics obs))
      in
      J.write path
        (J.Obj
           [
             ( "experiments",
               J.List (List.map Asyncolor_experiments.Outcome.to_json outcomes) );
             ("exec_policy", J.String traced_policy);
             ("kappa", J.Float kappa);
             ("explore_scale", J.List (List.map scale_json scale_records));
             ("symmetry_scale", J.List (List.map sym_json sym_records));
             ("churn", J.List (List.map churn_json churn_records));
             ("chaos_overhead", J.List (List.map chaos_json chaos_records));
             ("benchmarks", J.List (List.map bench_json bench_records));
             ("obs_metrics", obs_metrics);
           ]);
      Printf.printf "\nwrote JSON report to %s\n" path);
  if not (Asyncolor_experiments.Outcome.all_ok outcomes) then exit 1
