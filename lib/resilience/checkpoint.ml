exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* 16 bytes, padded so the header fields below sit at fixed offsets. *)
let magic = "asyncolor-ckpt\x00\x00"
let container_format = 1

let write_be32 oc v =
  output_byte oc ((v lsr 24) land 0xff);
  output_byte oc ((v lsr 16) land 0xff);
  output_byte oc ((v lsr 8) land 0xff);
  output_byte oc (v land 0xff)

let write_be64 oc v =
  write_be32 oc ((v lsr 32) land 0xffffffff);
  write_be32 oc (v land 0xffffffff)

let read_exactly ic n what =
  let b = Bytes.create n in
  (try really_input ic b 0 n
   with End_of_file -> corrupt "truncated file while reading %s" what);
  b

let read_be32 ic what =
  let b = read_exactly ic 4 what in
  (Char.code (Bytes.get b 0) lsl 24)
  lor (Char.code (Bytes.get b 1) lsl 16)
  lor (Char.code (Bytes.get b 2) lsl 8)
  lor Char.code (Bytes.get b 3)

let read_be64 ic what =
  let hi = read_be32 ic what in
  let lo = read_be32 ic what in
  (hi lsl 32) lor lo

let save ~path ~version v =
  let payload = Marshal.to_bytes v [] in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      write_be32 oc container_format;
      write_be32 oc version;
      write_be64 oc (Bytes.length payload);
      Digest.output oc (Digest.bytes payload);
      output_bytes oc payload;
      flush oc;
      (* fsync before rename: the rename must never become durable ahead of
         the data it points at *)
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path

let load ~path ~version =
  let ic =
    try open_in_bin path
    with Sys_error msg -> corrupt "cannot open checkpoint: %s" msg
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let m = Bytes.to_string (read_exactly ic (String.length magic) "magic") in
      if m <> magic then corrupt "bad magic: not an asyncolor checkpoint";
      let fmt = read_be32 ic "container format" in
      if fmt <> container_format then
        corrupt "container format %d (this build reads %d)" fmt container_format;
      let ver = read_be32 ic "payload version" in
      if ver <> version then
        corrupt "payload version %d, expected %d (stale checkpoint?)" ver version;
      let len = read_be64 ic "payload length" in
      if len < 0 then corrupt "negative payload length";
      let digest =
        try Digest.input ic with End_of_file -> corrupt "truncated digest"
      in
      let payload = read_exactly ic len "payload" in
      if Digest.bytes payload <> digest then
        corrupt "digest mismatch: payload corrupted";
      match Marshal.from_bytes payload 0 with
      | v -> v
      | exception _ -> corrupt "payload does not unmarshal")
