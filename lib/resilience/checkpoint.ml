exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* 16 bytes, padded so the header fields below sit at fixed offsets. *)
let magic = "asyncolor-ckpt\x00\x00"
let container_format = 1

let buf_be32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let buf_be64 b v =
  buf_be32 b ((v lsr 32) land 0xffffffff);
  buf_be32 b (v land 0xffffffff)

(* The container is built in memory and written in one call so the write
   can be routed through the injectable filesystem (Chaos.write_file):
   fault injection then sees the write as one operation of the site's
   schedule, and a partial/torn write truncates the container exactly
   like a real crash would. *)
let container_bytes ~version payload =
  let b = Buffer.create (Bytes.length payload + 48) in
  Buffer.add_string b magic;
  buf_be32 b container_format;
  buf_be32 b version;
  buf_be64 b (Bytes.length payload);
  Buffer.add_string b (Digest.bytes payload);
  Buffer.add_bytes b payload;
  Buffer.to_bytes b

let parse ~version data =
  let pos = ref 0 in
  let take n what =
    if !pos + n > Bytes.length data then
      corrupt "truncated file while reading %s" what;
    let b = Bytes.sub data !pos n in
    pos := !pos + n;
    b
  in
  let be32 what =
    let b = take 4 what in
    (Char.code (Bytes.get b 0) lsl 24)
    lor (Char.code (Bytes.get b 1) lsl 16)
    lor (Char.code (Bytes.get b 2) lsl 8)
    lor Char.code (Bytes.get b 3)
  in
  let m = Bytes.to_string (take (String.length magic) "magic") in
  if m <> magic then corrupt "bad magic: not an asyncolor checkpoint";
  let fmt = be32 "container format" in
  if fmt <> container_format then
    corrupt "container format %d (this build reads %d)" fmt container_format;
  let ver = be32 "payload version" in
  if ver <> version then
    corrupt "payload version %d, expected %d (stale checkpoint?)" ver version;
  let hi = be32 "payload length" in
  let lo = be32 "payload length" in
  let len = (hi lsl 32) lor lo in
  if len < 0 then corrupt "negative payload length";
  let digest = Bytes.to_string (take 16 "digest") in
  let payload = take len "payload" in
  if Digest.bytes payload <> digest then
    corrupt "digest mismatch: payload corrupted";
  match Marshal.from_bytes payload 0 with
  | v -> v
  | exception _ -> corrupt "payload does not unmarshal"

(* Write the container to [path ^ ".tmp"]; under chaos, read it back and
   compare — a Torn_write is silent, and without this verify the rename
   below would install a corrupt file as the last-good checkpoint. *)
let write_tmp ~chaos ~site ~tmp data =
  Chaos.write_file chaos ~site:(site ^ ".write") tmp data;
  if Chaos.enabled chaos then begin
    let back =
      try Chaos.read_raw tmp
      with Sys_error msg -> corrupt "verify after save failed: %s" msg
    in
    if not (Bytes.equal back data) then
      corrupt "torn write detected verifying %s" tmp
  end

let save ?(chaos = Chaos.disabled) ?(site = "checkpoint") ~path ~version v =
  let data = container_bytes ~version (Marshal.to_bytes v []) in
  let tmp = path ^ ".tmp" in
  write_tmp ~chaos ~site ~tmp data;
  (* fsync happened before the rename: the rename must never become
     durable ahead of the data it points at *)
  Sys.rename tmp path

let load ?(chaos = Chaos.disabled) ?(site = "checkpoint") ~path ~version () =
  let data =
    try Chaos.read_file chaos ~site:(site ^ ".read") path
    with Sys_error msg -> corrupt "cannot open checkpoint: %s" msg
  in
  parse ~version data

(* ------------------------------------------------------------------ *)
(* Rotation, quarantine, stale-tmp hygiene                             *)

let rotated_path path = path ^ ".1"
let quarantine_dir ~path = Filename.concat (Filename.dirname path) "quarantine"

let quarantine ?(chaos = Chaos.disabled) path =
  if Sys.file_exists path then begin
    let dir = quarantine_dir ~path in
    (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
     with Unix.Unix_error _ -> ());
    let base = Filename.basename path in
    let rec fresh k =
      let d =
        Filename.concat dir
          (if k = 0 then base else Printf.sprintf "%s.%d" base k)
      in
      if Sys.file_exists d then fresh (k + 1) else d
    in
    let dest = fresh 0 in
    try
      Sys.rename path dest;
      Chaos.note_quarantine chaos;
      Some dest
    with Sys_error _ -> None
  end
  else None

let clean_stale ~path =
  let tmp = path ^ ".tmp" in
  if Sys.file_exists tmp then (
    try
      Sys.remove tmp;
      true
    with Sys_error _ -> false)
  else false

let retry_corrupt = function Corrupt _ -> true | _ -> false

(* When chaos is off and the caller didn't ask for retries, behave
   exactly like the primitive save/load: one attempt, fail fast. *)
let resolve_retry ~chaos = function
  | Some r -> r
  | None -> if Chaos.enabled chaos then Chaos.Retry.default else Chaos.Retry.none

let save_rotated ?(chaos = Chaos.disabled) ?retry ?(site = "checkpoint") ~path
    ~version v =
  let retry = resolve_retry ~chaos retry in
  let data = container_bytes ~version (Marshal.to_bytes v []) in
  let tmp = path ^ ".tmp" in
  (try
     Chaos.Retry.run chaos retry ~retry_on:retry_corrupt ~site:(site ^ ".save")
       (fun () -> write_tmp ~chaos ~site ~tmp data)
   with e ->
     (* Exhausted (or non-retryable): never leave a half-written tmp
        around for a later resume to trip over. *)
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  if Sys.file_exists path then (
    try Sys.rename path (rotated_path path) with Sys_error _ -> ());
  Sys.rename tmp path

(* Normalise an Exhausted wrapping a Corrupt back to the Corrupt: callers
   pattern-match on Corrupt for their "stale/foreign checkpoint" paths. *)
let unwrap_corrupt = function
  | Chaos.Retry.Exhausted { last = Corrupt _ as c; _ } -> c
  | e -> e

let load_rotated ?(chaos = Chaos.disabled) ?retry ?(site = "checkpoint") ~path
    ~version () =
  let retry = resolve_retry ~chaos retry in
  let attempt p =
    Chaos.Retry.run chaos retry ~retry_on:retry_corrupt ~site:(site ^ ".load")
      (fun () -> load ~chaos ~site ~path:p ~version ())
  in
  try attempt path
  with (Corrupt _ | Chaos.Retry.Exhausted _) as first -> (
    (* The primary is unreadable: move it aside as evidence and fall back
       to the previous rotation rather than aborting the resume. *)
    (match quarantine ~chaos path with
    | Some dest ->
        Diag.printf "checkpoint: quarantined corrupt %s -> %s\n" path dest
    | None -> ());
    match attempt (rotated_path path) with
    | v ->
        Diag.printf "checkpoint: resumed from rotation %s\n" (rotated_path path);
        v
    | exception (Corrupt _ | Chaos.Retry.Exhausted _) ->
        raise (unwrap_corrupt first))
