(** Versioned, checksummed on-disk snapshots — the persistence substrate of
    the resilience layer.

    A checkpoint file is a self-validating container:

    {v
    offset  size  field
    0       16    magic "asyncolor-ckpt\x00\x00"
    16      4     container format (big-endian; this module's own layout)
    20      4     payload schema version (big-endian; caller-declared)
    24      8     payload length in bytes (big-endian)
    32      16    MD5 digest of the payload bytes
    48      —     payload ([Marshal]-encoded caller value)
    v}

    {!save} is {e atomic}: the container is written to [path ^ ".tmp"],
    flushed and fsynced, then renamed over [path] — a crash (including
    SIGKILL) at any point leaves either the previous checkpoint or the new
    one, never a torn file.  {!load} re-verifies magic, versions, length
    and digest before unmarshalling, so a corrupt or truncated file
    surfaces as {!Corrupt}, not as a segfault or a garbage value.

    {b Versioning rules.}  The payload is serialised with [Marshal], so its
    schema is the OCaml type of the saved value.  Callers must bump their
    [version] whenever that type (or the meaning of any field) changes;
    {!load} rejects any version other than the one expected, which turns a
    stale checkpoint into a clean error instead of a misinterpreted
    resume.  The payload must be pure data — no functions, no custom
    blocks — which also makes the digest deterministic for a given value.

    Type safety across [save]/[load] is the caller's: load a file only
    with the type it was saved at (the explorer guards this with a
    protocol-name fingerprint inside its payload). *)

exception Corrupt of string
(** The file is unreadable, truncated, fails its digest, or carries an
    unexpected magic/version.  The message says which check failed. *)

val save : path:string -> version:int -> 'a -> unit
(** [save ~path ~version v] marshals [v] and atomically replaces [path]
    (write to [path ^ ".tmp"], fsync, rename). *)

val load : path:string -> version:int -> 'a
(** [load ~path ~version] validates the container and returns the payload.
    @raise Corrupt on any validation failure (missing file included). *)
