(** Versioned, checksummed on-disk snapshots — the persistence substrate of
    the resilience layer.

    A checkpoint file is a self-validating container:

    {v
    offset  size  field
    0       16    magic "asyncolor-ckpt\x00\x00"
    16      4     container format (big-endian; this module's own layout)
    20      4     payload schema version (big-endian; caller-declared)
    24      8     payload length in bytes (big-endian)
    32      16    MD5 digest of the payload bytes
    48      —     payload ([Marshal]-encoded caller value)
    v}

    {!save} is {e atomic}: the container is written to [path ^ ".tmp"],
    flushed and fsynced, then renamed over [path] — a crash (including
    SIGKILL) at any point leaves either the previous checkpoint or the new
    one, never a torn file.  {!load} re-verifies magic, versions, length
    and digest before unmarshalling, so a corrupt or truncated file
    surfaces as {!Corrupt}, not as a segfault or a garbage value.

    {b Fault injection.}  All I/O goes through
    {!Asyncolor_resilience.Chaos}'s injectable filesystem: pass [?chaos]
    to exercise ENOSPC/EIO/torn-write/fsync-failure/bit-rot schedules.
    When chaos is enabled, {!save} additionally {e verifies} the written
    tmp file by reading it back before the rename — a silently torn write
    must never be installed as the last-good checkpoint.

    {b Rotation.}  {!save_rotated}/{!load_rotated} add a one-deep history:
    the previous checkpoint survives at [path ^ ".1"], saves retry under a
    {!Chaos.Retry} budget, and a corrupt primary is {e quarantined} (moved
    to [quarantine/] next to the checkpoint) with the load falling back to
    the rotation instead of aborting.

    {b Versioning rules.}  The payload is serialised with [Marshal], so its
    schema is the OCaml type of the saved value.  Callers must bump their
    [version] whenever that type (or the meaning of any field) changes;
    {!load} rejects any version other than the one expected, which turns a
    stale checkpoint into a clean error instead of a misinterpreted
    resume.  The payload must be pure data — no functions, no custom
    blocks — which also makes the digest deterministic for a given value.

    Type safety across [save]/[load] is the caller's: load a file only
    with the type it was saved at (the explorer guards this with a
    protocol-name fingerprint inside its payload). *)

exception Corrupt of string
(** The file is unreadable, truncated, fails its digest, or carries an
    unexpected magic/version.  The message says which check failed. *)

val save :
  ?chaos:Chaos.t -> ?site:string -> path:string -> version:int -> 'a -> unit
(** [save ~path ~version v] marshals [v] and atomically replaces [path]
    (write to [path ^ ".tmp"], fsync, rename).  [site] (default
    ["checkpoint"]) names the chaos fault site; the write draws from
    [site ^ ".write"].  Under chaos the tmp file is verified by read-back
    before the rename.
    @raise Chaos.Injected when an injected fault fires (single attempt —
    wrap in {!Chaos.Retry.run} or use {!save_rotated} for recovery). *)

val load :
  ?chaos:Chaos.t -> ?site:string -> path:string -> version:int -> unit -> 'a
(** [load ~path ~version] validates the container and returns the payload.
    Reads draw faults from [site ^ ".read"].
    @raise Corrupt on any validation failure (missing file included). *)

(** {1 Rotation, quarantine, hygiene} *)

val rotated_path : string -> string
(** [path ^ ".1"] — where {!save_rotated} keeps the previous snapshot. *)

val quarantine_dir : path:string -> string
(** [quarantine/] in the checkpoint's directory. *)

val quarantine : ?chaos:Chaos.t -> string -> string option
(** Move a (presumed corrupt) file into {!quarantine_dir}, never
    overwriting earlier evidence (suffixes [.1], [.2], … on collision).
    Returns the destination, or [None] if the file is missing or the move
    failed.  Counts on [chaos.quarantined]. *)

val clean_stale : path:string -> bool
(** Remove the stale [path ^ ".tmp"] a killed process may have left
    behind between write and rename; [true] if one was removed.  Called
    on explorer startup and resume. *)

val save_rotated :
  ?chaos:Chaos.t ->
  ?retry:Chaos.Retry.cfg ->
  ?site:string ->
  path:string ->
  version:int ->
  'a ->
  unit
(** {!save} with a retry budget and last-good rotation: the tmp write
    (with its read-back verify) retries under [retry], then the previous
    [path] is renamed to [path ^ ".1"] and the new file installed.  On
    exhaustion the half-written tmp is removed — the last-good checkpoint
    and its rotation are both still intact.  [retry] defaults to
    {!Chaos.Retry.default} when chaos is enabled and to a single attempt
    otherwise.
    @raise Chaos.Retry.Exhausted when the budget is spent. *)

val load_rotated :
  ?chaos:Chaos.t ->
  ?retry:Chaos.Retry.cfg ->
  ?site:string ->
  path:string ->
  version:int ->
  unit ->
  'a
(** {!load} with recovery: reads retry under [retry]; a persistently
    unreadable primary is {e quarantined} and the load falls back to
    [path ^ ".1"].
    @raise Corrupt only when both generations are unreadable. *)
