(** Spilled BFS levels on disk — the explorer's escape hatch from the
    live heap.

    A spill store owns a directory of level files, one per closed BFS
    level handed over by {!Asyncolor_util.Sharded_tbl.Level_log.seal}.
    Each file is an ordinary {!Checkpoint} container (same magic, format,
    atomic tmp+fsync+rename write, MD5-checksummed payload), whose payload
    is the level's word array {e delta-encoded} (first word verbatim, then
    successive differences — adjacency streams are near-monotone, so the
    deltas marshal to 1–2 bytes instead of 8).  Corruption therefore
    surfaces exactly like checkpoint corruption: {!Checkpoint.Corrupt} —
    with the offending {e file path} prefixed onto the message, since a
    run can own many level files and the caller needs to know which one
    to delete.

    Byte counters are atomics: {!write} may run on a background executor
    task while the merge thread keeps interning, and the CLI reads the
    totals for its spill-pressure diagnostics. *)

type t

val create : dir:string -> t
(** Open (creating if needed) the spill directory.
    @raise Invalid_argument if [dir] exists and is not a directory;
    @raise Unix.Unix_error if it cannot be created. *)

val dir : t -> string

val path : t -> level:int -> string
(** The file that {!write} targets for [level] ([level-NNNNNN.spill]
    under the store's directory). *)

val write : t -> level:int -> int array -> int
(** Delta-encode and persist one closed level, atomically; returns the
    container size in bytes.  Levels are written at most once per run
    (level indices come from [Level_log.seal], which assigns them
    sequentially). *)

val read : t -> level:int -> int array
(** Load and decode a level.
    @raise Checkpoint.Corrupt — message prefixed with the file path — on
    a missing, truncated, bit-flipped or version-skewed file. *)

val bytes_written : t -> int
val bytes_read : t -> int

val levels_on_disk : t -> int
(** Number of levels written through this store. *)

val files : t -> string list
(** The [.spill] files currently in the directory, sorted — what the CI
    artifact step lists. *)
