(** Spilled BFS levels on disk — the explorer's escape hatch from the
    live heap.

    A spill store owns a directory of level files, one per closed BFS
    level handed over by {!Asyncolor_util.Sharded_tbl.Level_log.seal}.
    Each file is an ordinary {!Checkpoint} container (same magic, format,
    atomic tmp+fsync+rename write, MD5-checksummed payload), whose payload
    is the level's word array {e delta-encoded} (first word verbatim, then
    successive differences — adjacency streams are near-monotone, so the
    deltas marshal to 1–2 bytes instead of 8).

    {b Failure handling.}  [Level_log.seal] drops a level from the heap
    {e before} its write runs, so a lost write would otherwise lose the
    level.  The store therefore (a) retries writes and reads under a
    {!Chaos.Retry} budget, (b) keeps the data of any write that exhausted
    its budget resident in memory (plus, with [retain > 0], the last N
    successful levels as a bit-rot hedge), and (c) on an unreadable file
    whose level is still resident, {e quarantines} the damaged file into
    [quarantine/] and rebuilds it from memory instead of aborting.  Only
    a level that is both unreadable and no longer resident surfaces as
    {!Checkpoint.Corrupt} — with the offending {e file path} prefixed
    onto the message, since a run can own many level files and the caller
    needs to know which one to inspect.

    Byte counters are atomics: {!write} may run on a background executor
    task while the merge thread keeps interning, and the CLI reads the
    totals for its spill-pressure diagnostics. *)

type t

val create :
  ?chaos:Chaos.t ->
  ?retry:Chaos.Retry.cfg ->
  ?retain:int ->
  dir:string ->
  unit ->
  t
(** Open (creating if needed) the spill directory.  [chaos] (default
    {!Chaos.disabled}) injects faults at sites ["spill.write"] /
    ["spill.read"]; [retry] defaults to {!Chaos.Retry.default} when chaos
    is enabled, single-attempt otherwise; [retain] (default 0) keeps the
    last N successfully written levels resident for rebuilds.
    @raise Invalid_argument if [dir] exists and is not a directory;
    @raise Unix.Unix_error if it cannot be created. *)

val dir : t -> string

val path : t -> level:int -> string
(** The file that {!write} targets for [level] ([level-NNNNNN.spill]
    under the store's directory). *)

val write : t -> level:int -> int array -> int
(** Delta-encode and persist one closed level, atomically, retrying
    under the store's budget; returns the container size in bytes.
    Levels are written at most once per run (level indices come from
    [Level_log.seal], which assigns them sequentially).
    @raise Chaos.Retry.Exhausted when the budget is spent — the level's
    data stays resident in the store, so a later {!read} still succeeds
    by rebuilding. *)

val read : t -> level:int -> int array
(** Load and decode a level, retrying under the store's budget; falls
    back to the resident copy (quarantining and rewriting the on-disk
    file) when the file is unreadable but the level is still in memory.
    @raise Checkpoint.Corrupt — message prefixed with the file path — on
    a missing, truncated, bit-flipped or version-skewed file whose level
    is no longer resident. *)

val bytes_written : t -> int
val bytes_read : t -> int

val levels_on_disk : t -> int
(** Number of levels written through this store. *)

val quarantined : t -> int
(** Damaged level files moved into [quarantine/] by {!read}. *)

val rebuilt : t -> int
(** Levels served from the resident copy after an unreadable file. *)

val files : t -> string list
(** The [.spill] files currently in the directory, sorted — what the CI
    artifact step lists (the [quarantine/] subdirectory is not listed). *)
