(** Resource budgets for long-running verification.

    A budget caps a run by wall clock and/or by major-heap size, so a deep
    exploration degrades to a clean truncated report instead of running
    into the scheduler's wall-time kill or the kernel's OOM killer.  The
    explorer and the lock hunter poll {!exceeded} at their loop
    boundaries; crossing either limit is sticky — once a budget reports
    exceeded it stays exceeded, so a poll race can never un-truncate a
    run.

    The memory limit is measured as [Gc.quick_stat ().heap_words] — the
    major heap's footprint, garbage included.  That is deliberately
    conservative: it is the number the OOM killer sees, not the live set,
    and reading it costs a few nanoseconds (no heap walk), so polling
    every loop iteration is free. *)

type t

val create : ?time_s:float -> ?mem_words:int -> unit -> t
(** [create ~time_s ~mem_words ()] starts the clock now.  Omitted limits
    are unlimited; [create ()] never trips. *)

val mem_words_of_mb : int -> int
(** Convert a megabyte limit to heap words for {!create}. *)

val exceeded : t -> bool
(** True once wall clock or heap words crossed a limit (sticky). *)

val describe : t -> string
(** Human-readable account of the limits and current consumption, e.g.
    for a truncation diagnostic. *)
