(** Line-atomic diagnostics for parallel runs.

    A thin façade over {!Asyncolor_obs.Sink}, which owns the actual
    guarantee: each message is formatted to a complete string first and
    emitted as a single mutex-guarded write + flush, so concurrent
    domains can at worst interleave whole lines, never fragments.
    Because the [--metrics] table and other obs output go through the
    same sink, a Diag rate line can never shear against them either —
    line atomicity is enforced in exactly one place.

    Diagnostics are out-of-band by construction: they go to stderr (or the
    channel set by {!set_channel}), keeping stdout byte-diffable across
    [--jobs] values. *)

val printf : ('a, unit, string, unit) format4 -> 'a
(** Format, then emit the result as one atomic write.  Terminate your
    format with ["\n"]; the module does not add one. *)

val emit : string -> unit
(** Emit a pre-formatted string as one atomic write + flush. *)

val set_channel : out_channel -> unit
(** Redirect the shared sink (tests) — affects every producer routed
    through {!Asyncolor_obs.Sink}.  Default: [stderr]. *)
