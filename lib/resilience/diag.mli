(** Line-atomic diagnostics for parallel runs.

    Worker domains that print progress through bare [Printf.eprintf] can
    interleave {e partial} lines: stderr is unbuffered per call, and one
    logical line often spans several writes.  This module formats each
    message to a complete string first and emits it with a single
    mutex-guarded write + flush, so concurrent domains can at worst
    interleave whole lines, never fragments.

    Diagnostics are out-of-band by construction: they go to stderr (or the
    channel set by {!set_channel}), keeping stdout byte-diffable across
    [--jobs] values. *)

val printf : ('a, unit, string, unit) format4 -> 'a
(** Format, then emit the result as one atomic write.  Terminate your
    format with ["\n"]; the module does not add one. *)

val emit : string -> unit
(** Emit a pre-formatted string as one atomic write + flush. *)

val set_channel : out_channel -> unit
(** Redirect diagnostics (tests).  Default: [stderr]. *)
