(* Diagnostics delegate to the observability layer's sink: line
   atomicity (one mutex-guarded write + flush per message) is enforced in
   exactly one place, shared with the [--metrics] table and any other
   out-of-band text, so Diag rate lines and obs output can never shear
   each other mid-line. *)

let set_channel = Asyncolor_obs.Sink.set_channel
let emit = Asyncolor_obs.Sink.emit
let printf fmt = Printf.ksprintf emit fmt
