(* Spilled BFS levels: delta-encoded int arrays inside the Checkpoint
   container, one file per level under a caller-owned directory. *)

type t = {
  dir : string;
  bytes_written : int Atomic.t;
  bytes_read : int Atomic.t;
  levels : int Atomic.t;
}

let payload_version = 1

let create ~dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Spill.create: %s exists and is not a directory" dir);
  {
    dir;
    bytes_written = Atomic.make 0;
    bytes_read = Atomic.make 0;
    levels = Atomic.make 0;
  }

let dir t = t.dir
let path t ~level = Filename.concat t.dir (Printf.sprintf "level-%06d.spill" level)

(* First word verbatim, then successive differences: adjacency streams are
   dominated by near-monotone config ids and small masks, so the deltas are
   mostly short ints, which Marshal encodes in 1–2 bytes instead of 8. *)
let delta_encode a =
  let n = Array.length a in
  let out = Array.make n 0 in
  if n > 0 then begin
    out.(0) <- a.(0);
    for i = 1 to n - 1 do
      out.(i) <- a.(i) - a.(i - 1)
    done
  end;
  out

let delta_decode d =
  let n = Array.length d in
  let out = Array.make n 0 in
  if n > 0 then begin
    out.(0) <- d.(0);
    for i = 1 to n - 1 do
      out.(i) <- out.(i - 1) + d.(i)
    done
  end;
  out

let write t ~level data =
  let path = path t ~level in
  Checkpoint.save ~path ~version:payload_version (delta_encode data);
  let bytes = (Unix.stat path).Unix.st_size in
  Atomic.fetch_and_add t.bytes_written bytes |> ignore;
  Atomic.incr t.levels;
  bytes

let read t ~level =
  let path = path t ~level in
  let delta =
    try Checkpoint.load ~path ~version:payload_version
    with Checkpoint.Corrupt msg ->
      raise (Checkpoint.Corrupt (Printf.sprintf "%s: %s" path msg))
  in
  let data = delta_decode delta in
  Atomic.fetch_and_add t.bytes_read ((Unix.stat path).Unix.st_size) |> ignore;
  data

let bytes_written t = Atomic.get t.bytes_written
let bytes_read t = Atomic.get t.bytes_read
let levels_on_disk t = Atomic.get t.levels

let files t =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".spill")
  |> List.sort compare
