(* Spilled BFS levels: delta-encoded int arrays inside the Checkpoint
   container, one file per level under a caller-owned directory.

   Failure handling is asymmetric by design.  A level is dropped from the
   in-memory Level_log *before* its write runs (seal clears the tail so
   the heap headroom is reclaimed immediately), so a write that exhausts
   its retries would otherwise lose the level outright.  Writes therefore
   retain their data in [failed] on the way out, and reads fall back to
   [failed]/[retained] — quarantining the bad file and rewriting it —
   whenever the on-disk copy is unreadable.  [retain] additionally keeps
   the last N successfully written levels resident as a bit-rot hedge. *)

type t = {
  dir : string;
  bytes_written : int Atomic.t;
  bytes_read : int Atomic.t;
  levels : int Atomic.t;
  n_quarantined : int Atomic.t;
  n_rebuilt : int Atomic.t;
  chaos : Chaos.t;
  retry : Chaos.Retry.cfg;
  retain : int;
  mu : Mutex.t;  (* retained/failed tables: writers run on executor tasks *)
  retained : (int, int array) Hashtbl.t;
  retained_order : int Queue.t;
  failed : (int, int array) Hashtbl.t;
}

let payload_version = 1

let create ?(chaos = Chaos.disabled) ?retry ?(retain = 0) ~dir () =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Spill.create: %s exists and is not a directory" dir);
  let retry =
    match retry with
    | Some r -> r
    | None -> if Chaos.enabled chaos then Chaos.Retry.default else Chaos.Retry.none
  in
  {
    dir;
    bytes_written = Atomic.make 0;
    bytes_read = Atomic.make 0;
    levels = Atomic.make 0;
    n_quarantined = Atomic.make 0;
    n_rebuilt = Atomic.make 0;
    chaos;
    retry;
    retain = max 0 retain;
    mu = Mutex.create ();
    retained = Hashtbl.create 8;
    retained_order = Queue.create ();
    failed = Hashtbl.create 4;
  }

let dir t = t.dir
let path t ~level = Filename.concat t.dir (Printf.sprintf "level-%06d.spill" level)

(* First word verbatim, then successive differences: adjacency streams are
   dominated by near-monotone config ids and small masks, so the deltas are
   mostly short ints, which Marshal encodes in 1–2 bytes instead of 8. *)
let delta_encode a =
  let n = Array.length a in
  let out = Array.make n 0 in
  if n > 0 then begin
    out.(0) <- a.(0);
    for i = 1 to n - 1 do
      out.(i) <- a.(i) - a.(i - 1)
    done
  end;
  out

let delta_decode d =
  let n = Array.length d in
  let out = Array.make n 0 in
  if n > 0 then begin
    out.(0) <- d.(0);
    for i = 1 to n - 1 do
      out.(i) <- out.(i - 1) + d.(i)
    done
  end;
  out

let retry_on = function Checkpoint.Corrupt _ -> true | _ -> false

let retain_success t ~level data =
  if t.retain > 0 then begin
    Mutex.lock t.mu;
    if not (Hashtbl.mem t.retained level) then begin
      Hashtbl.replace t.retained level data;
      Queue.add level t.retained_order;
      while Queue.length t.retained_order > t.retain do
        Hashtbl.remove t.retained (Queue.pop t.retained_order)
      done
    end;
    Mutex.unlock t.mu
  end

(* The level's bytes survive in memory whenever the disk lost them: a
   later read (checkpoint reassembly, resume) rebuilds from here. *)
let retain_failure t ~level data =
  Mutex.lock t.mu;
  Hashtbl.replace t.failed level data;
  Mutex.unlock t.mu

let resident t ~level =
  Mutex.lock t.mu;
  let r =
    match Hashtbl.find_opt t.failed level with
    | Some _ as r -> r
    | None -> Hashtbl.find_opt t.retained level
  in
  Mutex.unlock t.mu;
  r

let write t ~level data =
  let path = path t ~level in
  let encoded = delta_encode data in
  (try
     Chaos.Retry.run t.chaos t.retry ~retry_on ~site:"spill.write" (fun () ->
         Checkpoint.save ~chaos:t.chaos ~site:"spill" ~path
           ~version:payload_version encoded)
   with e ->
     retain_failure t ~level data;
     raise e);
  retain_success t ~level data;
  let bytes = (Unix.stat path).Unix.st_size in
  Atomic.fetch_and_add t.bytes_written bytes |> ignore;
  Atomic.incr t.levels;
  bytes

let corrupt_message = function
  | Checkpoint.Corrupt msg -> msg
  | Chaos.Retry.Exhausted { last = Checkpoint.Corrupt msg; _ } -> msg
  | e -> Printexc.to_string e

let read t ~level =
  let path = path t ~level in
  let account_read () =
    let bytes = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
    Atomic.fetch_and_add t.bytes_read bytes |> ignore
  in
  match
    Chaos.Retry.run t.chaos t.retry ~retry_on ~site:"spill.read" (fun () ->
        Checkpoint.load ~chaos:t.chaos ~site:"spill" ~path
          ~version:payload_version ())
  with
  | delta ->
      account_read ();
      delta_decode delta
  | exception e -> (
      match resident t ~level with
      | Some data ->
          (* Quarantine the damaged file (if any) and rewrite it from the
             resident copy so later reads hit the disk again.  The rewrite
             is best-effort: if it fails too, the data is still resident. *)
          (match Checkpoint.quarantine ~chaos:t.chaos path with
          | Some dest ->
              Atomic.incr t.n_quarantined;
              Diag.printf "spill: quarantined level %d (%s -> %s), rebuilt from memory\n"
                level path dest
          | None ->
              Diag.printf "spill: level %d missing on disk, rebuilt from memory\n"
                level);
          Atomic.incr t.n_rebuilt;
          (try
             Chaos.Retry.run t.chaos t.retry ~retry_on ~site:"spill.write"
               (fun () ->
                 Checkpoint.save ~chaos:t.chaos ~site:"spill" ~path
                   ~version:payload_version (delta_encode data))
           with _ -> ());
          account_read ();
          data
      | None ->
          raise
            (Checkpoint.Corrupt
               (Printf.sprintf "%s: %s" path (corrupt_message e))))

let bytes_written t = Atomic.get t.bytes_written
let bytes_read t = Atomic.get t.bytes_read
let levels_on_disk t = Atomic.get t.levels
let quarantined t = Atomic.get t.n_quarantined
let rebuilt t = Atomic.get t.n_rebuilt

let files t =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".spill")
  |> List.sort compare
