(** Cooperative stop requests, fed by POSIX signals.

    A single process-wide atomic flag: {!with_signals} installs SIGINT and
    SIGTERM handlers that set it, runs the wrapped function, then restores
    the previous handlers and clears the flag — so signal handling is
    scoped to the exploration that can act on it, and the rest of the CLI
    keeps the default die-on-SIGINT behaviour.  The explorer polls
    {!requested} at its loop boundaries and degrades to a clean truncated
    report (final checkpoint included) when it fires.

    The flag is an [Atomic.t]: handlers run on the main domain, but worker
    domains may poll it concurrently. *)

val requested : unit -> bool
(** Has a stop been requested (signal received, or {!request})? *)

val request : unit -> unit
(** Set the flag by hand (tests, programmatic cancellation). *)

val reset : unit -> unit

val with_signals : (unit -> 'a) -> 'a
(** [with_signals f] runs [f] with SIGINT/SIGTERM routed to the flag;
    handlers are restored and the flag cleared afterwards, exceptions
    included. *)
