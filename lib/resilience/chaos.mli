(** Seed-deterministic environment-fault injection — the chaos layer the
    rest of the resilience stack is tested (and hardened) against.

    The paper's algorithms tolerate adversarial asynchrony and crashes;
    this module makes the {e harness} face the same music: a [t] is an
    adversary for the environment, deciding — from a PRNG stream derived
    from [(seed, site)] alone — whether the k-th I/O operation at a named
    fault {e site} ("checkpoint.write", "spill.read", "exec.worker-2", …)
    fails, and how.  Because each site owns its own SplitMix64 stream and
    its own operation counter, a fault schedule is reproducible from the
    seed: the k-th write at a given site fails identically on every run
    that performs the same operations at that site, independent of what
    happens at every other site.

    Faults are {e injected consistently with their real-world meaning}:
    an [Enospc] or [Eio] write leaves a partial file behind and raises; a
    [Torn_write] silently persists only a prefix (the lying-disk case
    that only a read-back verify can catch — {!Checkpoint.save} performs
    one whenever chaos is enabled); a [Bit_rot] read flips one byte of
    the data {e as read}, so a retry sees the intact file.  [Crash] is
    drawn by {!Asyncolor_util.Executor} workers between tasks.

    The module also owns the recovery vocabulary: {!Retry} (bounded
    exponential backoff with deterministic jitter, virtual-clock driven
    so tests are instant) and the [chaos.injected] / [chaos.retries] /
    [chaos.quarantined] / [chaos.degraded] accounting that every recovery
    path reports through, both to an optional {!Asyncolor_obs.Obs} sink
    and to the always-on {!stats} snapshot. *)

type fault =
  | Enospc  (** write fails mid-way; a partial file is left behind *)
  | Eio  (** read or write fails outright *)
  | Torn_write  (** {e silent}: only a prefix of the write hits the disk *)
  | Fsync_fail  (** the data is written but the fsync raises *)
  | Bit_rot  (** one byte of the data is flipped as it is read *)
  | Crash  (** an executor worker domain dies between tasks *)

val fault_name : fault -> string

exception Injected of { site : string; op : int; fault : fault }
(** Raised (or, for silent faults, recorded) when the injector fires:
    operation [op] of [site]'s stream drew [fault]. *)

type t

val disabled : t
(** Never injects, never counts; every operation is a plain passthrough.
    The default everywhere a [?chaos] parameter appears. *)

val create :
  ?obs:Asyncolor_obs.Obs.t ->
  ?rate:float ->
  ?sites:string list ->
  seed:int ->
  unit ->
  t
(** A fault injector drawing each operation at probability [rate]
    (default [0.0]; clamped to [[0, 1]]).  [sites] restricts injection to
    sites with one of the given prefixes (e.g. [["spill.write"]] or
    [["exec.worker"]]); default: all sites.  [obs] (default
    {!Asyncolor_obs.Obs.disabled}) receives the [chaos.*] counters. *)

val enabled : t -> bool
val seed : t -> int
val rate : t -> float

type stats = {
  injected : int;  (** faults actually delivered *)
  retries : int;  (** retry attempts spent recovering *)
  quarantined : int;  (** corrupt files moved aside instead of aborting *)
  degraded : int;  (** executor policy downgrades by the watchdog *)
}

val stats : t -> stats
(** Always-on snapshot (atomics, not the obs sink) — what the CLI prints
    on stderr after a chaos run. *)

val note_retry : t -> unit
val note_quarantine : t -> unit
val note_degrade : t -> unit
(** Accounting hooks for the recovery paths (no-ops on {!disabled}). *)

(** {1 Decision points} *)

val draw_write : t -> site:string -> fault option
(** Advance [site]'s stream one write operation; [Some] at most with
    probability [rate].  Possible faults: [Enospc], [Eio], [Torn_write],
    [Fsync_fail].  Exposed for the determinism tests; I/O goes through
    {!write_file}. *)

val draw_read : t -> site:string -> fault option
(** Read-side counterpart: [Eio] or [Bit_rot]. *)

val draw_crash : t -> site:string -> bool
(** Worker-crash decision for {!Asyncolor_util.Executor}; counts as an
    injection when true. *)

(** {1 The injectable filesystem} *)

val read_raw : string -> bytes
(** Whole-file read with {e no} injection — the verify-on-save path.
    @raise Sys_error as [open_in_bin]. *)

val write_file : t -> ?fsync:bool -> site:string -> string -> bytes -> unit
(** Write [data] to a fresh file at the path, fault-injected: consults
    {!draw_write} first and realises the drawn fault (partial write +
    {!Injected}, silent torn write, or a failed fsync).  [fsync] defaults
    to [true]. *)

val read_file : t -> site:string -> string -> bytes
(** Whole-file read, fault-injected via {!draw_read}: [Eio] raises
    {!Injected} without touching the file; [Bit_rot] flips one byte of
    the returned buffer (the on-disk file is untouched, so a retry reads
    clean data).
    @raise Sys_error as [open_in_bin] when the file is missing. *)

(** {1 Bounded retry with deterministic jitter} *)

module Retry : sig
  type cfg = {
    max_attempts : int;  (** total attempts, first try included (>= 1) *)
    backoff_ms : float;  (** delay before the second attempt *)
    multiplier : float;  (** backoff growth per attempt *)
    max_backoff_ms : float;  (** backoff ceiling *)
    sleep : float -> unit;
        (** receives seconds; [Unix.sleepf] by default — tests inject a
            virtual clock (e.g. an accumulator) so retries are instant *)
  }

  val cfg :
    ?max_attempts:int ->
    ?backoff_ms:float ->
    ?multiplier:float ->
    ?max_backoff_ms:float ->
    ?sleep:(float -> unit) ->
    unit ->
    cfg
  (** Defaults: 5 attempts, 25 ms doubling up to 1000 ms, real sleep. *)

  val default : cfg

  val none : cfg
  (** One attempt, no backoff — retry disabled. *)

  exception Exhausted of { site : string; attempts : int; last : exn }
  (** Every attempt failed; [last] is the final attempt's exception. *)

  val run : t -> cfg -> ?retry_on:(exn -> bool) -> site:string -> (unit -> 'a) -> 'a
  (** [run chaos cfg ~site f] calls [f] up to [max_attempts] times.
      Retryable by default: {!Injected}, [Sys_error], [Unix.Unix_error];
      [retry_on] extends the set (e.g. with
      {!Asyncolor_resilience.Checkpoint.Corrupt} for read-back verifies).
      Non-retryable exceptions propagate immediately.  Each retry counts
      on [chaos.retries] and backs off exponentially with a
      site-deterministic jitter in [[0, 0.5]] of the delay.
      @raise Exhausted once the attempt budget is spent. *)
end
