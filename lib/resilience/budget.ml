type t = {
  started : float;
  time_s : float option;
  mem_words : int option;
  mutable tripped : bool;
}

let create ?time_s ?mem_words () =
  { started = Unix.gettimeofday (); time_s; mem_words; tripped = false }

let mem_words_of_mb mb = mb * 1024 * 1024 / (Sys.word_size / 8)

let exceeded t =
  t.tripped
  ||
  let hit =
    (match t.time_s with
    (* inclusive, so [time_s:0.] means "no time at all" even when the
       clock has not advanced between [create] and the first poll *)
    | Some limit -> Unix.gettimeofday () -. t.started >= limit
    | None -> false)
    ||
    match t.mem_words with
    | Some limit -> (Gc.quick_stat ()).Gc.heap_words > limit
    | None -> false
  in
  if hit then t.tripped <- true;
  hit

let describe t =
  let elapsed = Unix.gettimeofday () -. t.started in
  let time =
    match t.time_s with
    | Some limit -> Printf.sprintf "time %.1fs/%.1fs" elapsed limit
    | None -> Printf.sprintf "time %.1fs/unlimited" elapsed
  in
  let mem =
    let words = (Gc.quick_stat ()).Gc.heap_words in
    match t.mem_words with
    | Some limit -> Printf.sprintf "heap %dw/%dw" words limit
    | None -> Printf.sprintf "heap %dw/unlimited" words
  in
  time ^ ", " ^ mem
