(* Seed-deterministic environment-fault injection.  See chaos.mli for
   the contract; the two structural commitments here are (a) one
   SplitMix64 stream *per site*, so the fault schedule at any site is a
   pure function of (seed, site, operation index) and is insensitive to
   operation interleavings at other sites, and (b) the injector is the
   only thing that touches the PRNG, so a disabled instance costs one
   branch per operation.

   The PRNG is the same SplitMix64 as Asyncolor_util.Prng, inlined:
   resilience sits *below* util in the library DAG (Executor draws its
   worker-crash schedule from here), so depending on util would be a
   cycle. *)

module Obs = Asyncolor_obs.Obs

type fault = Enospc | Eio | Torn_write | Fsync_fail | Bit_rot | Crash

let fault_name = function
  | Enospc -> "enospc"
  | Eio -> "eio"
  | Torn_write -> "torn-write"
  | Fsync_fail -> "fsync-fail"
  | Bit_rot -> "bit-rot"
  | Crash -> "crash"

exception Injected of { site : string; op : int; fault : fault }

let () =
  Printexc.register_printer (function
    | Injected { site; op; fault } ->
        Some
          (Printf.sprintf "Chaos.Injected(%s at %s op %d)" (fault_name fault)
             site op)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* SplitMix64                                                          *)

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

type stream = { mutable state : int64; mutable op : int }

let stream_next st =
  st.state <- Int64.add st.state golden_gamma;
  mix64 st.state

(* Uniform in [0, 1) from the top 53 bits. *)
let stream_u01 st =
  Int64.to_float (Int64.shift_right_logical (stream_next st) 11)
  /. 9007199254740992.0

let stream_int st n = Int64.to_int (Int64.rem (Int64.shift_right_logical (stream_next st) 1) (Int64.of_int n))

(* ------------------------------------------------------------------ *)

type inner = {
  seed : int;
  rate : float;
  sites : string list option;
  mu : Mutex.t;  (* streams table + stream state; callers span domains *)
  streams : (string, stream) Hashtbl.t;
  n_injected : int Atomic.t;
  n_retries : int Atomic.t;
  n_quarantined : int Atomic.t;
  n_degraded : int Atomic.t;
  c_injected : Obs.Counter.t;
  c_retries : Obs.Counter.t;
  c_quarantined : Obs.Counter.t;
  c_degraded : Obs.Counter.t;
}

type t = inner option

let disabled : t = None

let create ?(obs = Obs.disabled) ?(rate = 0.0) ?sites ~seed () : t =
  Some
    {
      seed;
      rate = Float.min 1.0 (Float.max 0.0 rate);
      sites;
      mu = Mutex.create ();
      streams = Hashtbl.create 16;
      n_injected = Atomic.make 0;
      n_retries = Atomic.make 0;
      n_quarantined = Atomic.make 0;
      n_degraded = Atomic.make 0;
      c_injected = Obs.counter obs "chaos.injected";
      c_retries = Obs.counter obs "chaos.retries";
      c_quarantined = Obs.counter obs "chaos.quarantined";
      c_degraded = Obs.counter obs "chaos.degraded";
    }

let enabled = function None -> false | Some _ -> true
let seed = function None -> 0 | Some c -> c.seed
let rate = function None -> 0.0 | Some c -> c.rate

type stats = { injected : int; retries : int; quarantined : int; degraded : int }

let stats : t -> stats = function
  | None -> { injected = 0; retries = 0; quarantined = 0; degraded = 0 }
  | Some c ->
      {
        injected = Atomic.get c.n_injected;
        retries = Atomic.get c.n_retries;
        quarantined = Atomic.get c.n_quarantined;
        degraded = Atomic.get c.n_degraded;
      }

let note_retry = function
  | None -> ()
  | Some c ->
      Atomic.incr c.n_retries;
      Obs.Counter.incr c.c_retries

let note_quarantine = function
  | None -> ()
  | Some c ->
      Atomic.incr c.n_quarantined;
      Obs.Counter.incr c.c_quarantined

let note_degrade = function
  | None -> ()
  | Some c ->
      Atomic.incr c.n_degraded;
      Obs.Counter.incr c.c_degraded

(* ------------------------------------------------------------------ *)
(* Decision points                                                     *)

let is_prefix p s =
  String.length p <= String.length s && String.sub s 0 (String.length p) = p

let site_armed c site =
  match c.sites with
  | None -> true
  | Some prefixes -> List.exists (fun p -> is_prefix p site) prefixes

let stream_of c site =
  match Hashtbl.find_opt c.streams site with
  | Some st -> st
  | None ->
      (* Derive the stream origin from (seed, site) only; mix so that
         nearby seeds give unrelated schedules. *)
      let origin =
        mix64 (Int64.logxor (Int64.of_int c.seed)
                 (Int64.mul 0x632BE59BD9B4E019L (Int64.of_int (Hashtbl.hash site))))
      in
      let st = { state = origin; op = 0 } in
      Hashtbl.add c.streams site st;
      st

(* One decision = one op on the site's stream: a Bernoulli(rate) draw,
   plus a kind draw iff it hit.  Returns the op index with the fault so
   Injected can report it. *)
let draw (t : t) ~site kinds =
  match t with
  | None -> None
  | Some c when c.rate <= 0.0 || not (site_armed c site) -> None
  | Some c ->
      Mutex.lock c.mu;
      let st = stream_of c site in
      st.op <- st.op + 1;
      let op = st.op in
      let hit = stream_u01 st < c.rate in
      let kind = if hit then Some kinds.(stream_int st (Array.length kinds)) else None in
      Mutex.unlock c.mu;
      (match kind with
      | Some _ ->
          Atomic.incr c.n_injected;
          Obs.Counter.incr c.c_injected
      | None -> ());
      Option.map (fun f -> (op, f)) kind

let write_kinds = [| Enospc; Eio; Torn_write; Fsync_fail |]
let read_kinds = [| Eio; Bit_rot |]
let crash_kinds = [| Crash |]

let draw_write t ~site = Option.map snd (draw t ~site write_kinds)
let draw_read t ~site = Option.map snd (draw t ~site read_kinds)
let draw_crash t ~site = Option.is_some (draw t ~site crash_kinds)

(* A site-deterministic draw that does not count as an operation of the
   fault schedule (used for bit-rot positions and retry jitter). *)
let side_u01 t ~site =
  match t with
  | None -> 0.0
  | Some c ->
      Mutex.lock c.mu;
      let u = stream_u01 (stream_of c (site ^ "#side")) in
      Mutex.unlock c.mu;
      u

(* ------------------------------------------------------------------ *)
(* The injectable filesystem                                           *)

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      b)

let output_all ~fsync path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_bytes oc data;
      flush oc;
      if fsync then Unix.fsync (Unix.descr_of_out_channel oc))

let prefix_bytes data n = Bytes.sub data 0 (min n (Bytes.length data))

let write_file t ?(fsync = true) ~site path data =
  match draw t ~site write_kinds with
  | None -> output_all ~fsync path data
  | Some (op, Enospc) ->
      (* Disk fills mid-write: half the payload lands, then the error. *)
      output_all ~fsync:false path (prefix_bytes data (Bytes.length data / 2));
      raise (Injected { site; op; fault = Enospc })
  | Some (op, Eio) ->
      output_all ~fsync:false path (prefix_bytes data 16);
      raise (Injected { site; op; fault = Eio })
  | Some (_, Torn_write) ->
      (* The lying disk: reports success, persists only a prefix.  Only
         a read-back verify can catch this one. *)
      let len = Bytes.length data in
      output_all ~fsync path (prefix_bytes data (max 0 (len - max 1 (len / 4))))
  | Some (op, Fsync_fail) ->
      output_all ~fsync:false path data;
      raise (Injected { site; op; fault = Fsync_fail })
  | Some (_, (Bit_rot | Crash)) -> assert false

let read_file t ~site path =
  match draw t ~site read_kinds with
  | None -> read_raw path
  | Some (op, Eio) -> raise (Injected { site; op; fault = Eio })
  | Some (_, Bit_rot) ->
      let b = read_raw path in
      if Bytes.length b > 0 then begin
        let i =
          int_of_float (side_u01 t ~site *. float_of_int (Bytes.length b))
        in
        let i = min i (Bytes.length b - 1) in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40))
      end;
      b
  | Some (_, (Enospc | Torn_write | Fsync_fail | Crash)) -> assert false

(* ------------------------------------------------------------------ *)

module Retry = struct
  type cfg = {
    max_attempts : int;
    backoff_ms : float;
    multiplier : float;
    max_backoff_ms : float;
    sleep : float -> unit;
  }

  let real_sleep s = if s > 0.0 then Unix.sleepf s

  let cfg ?(max_attempts = 5) ?(backoff_ms = 25.0) ?(multiplier = 2.0)
      ?(max_backoff_ms = 1000.0) ?(sleep = real_sleep) () =
    { max_attempts = max 1 max_attempts; backoff_ms; multiplier; max_backoff_ms; sleep }

  let default = cfg ()
  let none = cfg ~max_attempts:1 ~backoff_ms:0.0 ()

  exception Exhausted of { site : string; attempts : int; last : exn }

  let () =
    Printexc.register_printer (function
      | Exhausted { site; attempts; last } ->
          Some
            (Printf.sprintf "Chaos.Retry.Exhausted(%s after %d attempts: %s)"
               site attempts (Printexc.to_string last))
      | _ -> None)

  let default_retryable = function
    | Injected _ | Sys_error _ | Unix.Unix_error _ -> true
    | _ -> false

  let run t cfg ?(retry_on = fun _ -> false) ~site f =
    let rec go attempt =
      match f () with
      | v -> v
      | exception e when default_retryable e || retry_on e ->
          if attempt >= cfg.max_attempts then
            raise (Exhausted { site; attempts = attempt; last = e })
          else begin
            note_retry t;
            let base =
              cfg.backoff_ms *. (cfg.multiplier ** float_of_int (attempt - 1))
            in
            let jitter = 1.0 +. (0.5 *. side_u01 t ~site:(site ^ ".retry")) in
            let delay_ms = Float.min cfg.max_backoff_ms base *. jitter in
            if delay_ms > 0.0 then cfg.sleep (delay_ms /. 1000.0);
            go (attempt + 1)
          end
    in
    go 1
end
