let flag = Atomic.make false

let requested () = Atomic.get flag
let request () = Atomic.set flag true
let reset () = Atomic.set flag false

let with_signals f =
  let handler = Sys.Signal_handle (fun _ -> request ()) in
  let install signal =
    (* Some sandboxes forbid changing handlers (e.g. SIGTERM under seccomp
       filters); degrade to "no handler swapped" rather than failing. *)
    try Some (Sys.signal signal handler) with Sys_error _ | Invalid_argument _ -> None
  in
  let restore signal = function
    | Some old -> ( try Sys.set_signal signal old with Sys_error _ -> ())
    | None -> ()
  in
  let old_int = install Sys.sigint in
  let old_term = install Sys.sigterm in
  Fun.protect
    ~finally:(fun () ->
      restore Sys.sigint old_int;
      restore Sys.sigterm old_term;
      reset ())
    f
