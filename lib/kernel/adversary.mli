(** Schedules as adversary strategies.

    A schedule (paper §2.2) is the sequence [σ(1), σ(2), …] of sets of
    processes activated at each time step.  An adversary produces that
    sequence online: at each step it is shown the current time and the list
    of processes that have not yet returned, and picks whom to activate.

    Adversaries may be stateful (the closures own their state); use
    {!val:make} with a fresh closure per run, or re-create the adversary for
    each execution.  Returning [None] ends the schedule: every process still
    unfinished at that point is considered crashed. *)

type t = {
  name : string;
  next : time:int -> unfinished:int list -> int list option;
      (** [next ~time ~unfinished] is the activation set [σ(time)], drawn
          from [unfinished] (ids not in [unfinished] are ignored by the
          engine).  [None] stops the execution. *)
}

val make : name:string -> (time:int -> unfinished:int list -> int list option) -> t

val synchronous : t
(** Activate every unfinished process at every step — the lock-step
    failure-free schedule of the LOCAL model. *)

val sequential : t
(** Run the smallest-index unfinished process solo until it returns, then
    the next, etc.  Maximally "un-interleaved". *)

val round_robin : t
(** Activate one process per step, cycling through indices. *)

val singletons : Asyncolor_util.Prng.t -> t
(** One uniformly random unfinished process per step. *)

val random_subsets : Asyncolor_util.Prng.t -> p:float -> t
(** Independently include each unfinished process with probability [p];
    if the sampled set is empty, activate one random process instead (an
    empty activation set would be a wasted step). *)

val alternating_waves : t
(** Alternate between the even-index and odd-index unfinished processes —
    a highly interleaved schedule that maximises write/read races on the
    cycle. *)

val staircase : t
(** Activate prefixes of increasing length: {0}, {0,1}, {0,1,2}, … —
    processes wake up progressively, late nodes read long-stale registers. *)

val crash : at:int -> procs:int list -> t -> t
(** [crash ~at ~procs adv] behaves like [adv] but never activates any
    process of [procs] at any [time >= at]: those processes crash at time
    [at].  If only crashed processes remain unfinished, the schedule ends. *)

val random_crashes : Asyncolor_util.Prng.t -> n:int -> rate:float -> horizon:int -> t -> t
(** Crash each of the [n] processes independently with probability [rate],
    at a time uniform in [\[1, horizon\]]. *)

val outages : windows:(int * int * int) list -> t -> t
(** [outages ~windows adv] is the schedule-side half of a crash/recover
    pair: a window [(p, from, until)] makes [adv] treat process [p] as
    crashed at every [time] with [from <= time < until] — it is hidden
    from [adv]'s unfinished view and filtered from its activation sets —
    and eligible again from [until] on.  The engine-side half of recovery
    (fresh identifier, state wiped back to asleep) is [Engine.reset];
    drive both to model a node that leaves and rejoins. *)

val eager_then_lazy : slow:int list -> delay:int -> t
(** The processes in [slow] take no step before [time > delay]; everybody
    else runs synchronously.  Models the paper's "moderately slow"
    neighbours that block identifier reduction in Algorithm 3. *)

val isolate_pair : int * int -> t
(** [isolate_pair (p, q)] first runs everyone {e except} [p] and [q]
    synchronously until only [p] and [q] remain unfinished, then activates
    [{p, q}] simultaneously forever.  This is the schedule family behind
    finding F1: on Algorithms 2–3 it hunts for the symmetric phase-lock of
    a pair next to frozen registers. *)

val finite : int list list -> t
(** Replay an explicit finite schedule (used to replay counterexamples from
    the model checker); ends after the last set. *)

val parse : string -> int list list
(** Parse a schedule in the syntax the tools print: activation sets in
    braces, e.g. ["{0} {1} {1,2}"].  Whitespace between sets is free.
    @raise Invalid_argument on malformed input. *)

val to_string : int list list -> string
(** Inverse of {!parse}. *)
