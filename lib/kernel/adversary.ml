module Prng = Asyncolor_util.Prng

type t = {
  name : string;
  next : time:int -> unfinished:int list -> int list option;
}

let make ~name next = { name; next }

let synchronous =
  make ~name:"synchronous" (fun ~time:_ ~unfinished ->
      match unfinished with [] -> None | l -> Some l)

let sequential =
  make ~name:"sequential" (fun ~time:_ ~unfinished ->
      match unfinished with [] -> None | p :: _ -> Some [ p ])

let round_robin =
  make ~name:"round-robin" (fun ~time ~unfinished ->
      match unfinished with
      | [] -> None
      | l -> Some [ List.nth l ((time - 1) mod List.length l) ])

let singletons prng =
  make ~name:"random-singletons" (fun ~time:_ ~unfinished ->
      match unfinished with
      | [] -> None
      | l -> Some [ List.nth l (Prng.int prng (List.length l)) ])

let random_subsets prng ~p =
  make ~name:(Printf.sprintf "random-subsets(p=%.2f)" p) (fun ~time:_ ~unfinished ->
      match unfinished with
      | [] -> None
      | l -> (
          match List.filter (fun _ -> Prng.float prng 1.0 < p) l with
          | [] -> Some [ List.nth l (Prng.int prng (List.length l)) ]
          | subset -> Some subset))

let alternating_waves =
  make ~name:"alternating-waves" (fun ~time ~unfinished ->
      match unfinished with
      | [] -> None
      | l -> (
          let parity = time mod 2 in
          match List.filter (fun p -> p mod 2 = parity) l with
          | [] -> Some l
          | wave -> Some wave))

let staircase =
  make ~name:"staircase" (fun ~time ~unfinished ->
      match unfinished with
      | [] -> None
      | l ->
          let len = min time (List.length l) in
          Some (List.filteri (fun i _ -> i < len) l))

let crash ~at ~procs inner =
  let crashed p = List.mem p procs in
  make ~name:(Printf.sprintf "%s+crash@%d" inner.name at) (fun ~time ~unfinished ->
      if time < at then inner.next ~time ~unfinished
      else
        match List.filter (fun p -> not (crashed p)) unfinished with
        | [] -> None
        | alive -> (
            match inner.next ~time ~unfinished:alive with
            | None -> None
            | Some set -> Some (List.filter (fun p -> not (crashed p)) set)))

(* The schedule-side half of a crash/recover pair: while a node is inside
   one of its outage windows the scheduler behaves as if it had crashed;
   once the window closes the node is eligible again.  The engine-side
   half — wiping the node's state and installing the fresh identifier —
   is [Engine.reset]; the churn session engine drives both. *)
let outages ~windows inner =
  let down time p =
    List.exists
      (fun (q, from_, until_) -> q = p && time >= from_ && time < until_)
      windows
  in
  make
    ~name:(Printf.sprintf "%s+outages(%d)" inner.name (List.length windows))
    (fun ~time ~unfinished ->
      match List.filter (fun p -> not (down time p)) unfinished with
      | [] -> None
      | up -> (
          match inner.next ~time ~unfinished:up with
          | None -> None
          | Some set -> Some (List.filter (fun p -> not (down time p)) set)))

let random_crashes prng ~n ~rate ~horizon inner =
  let crash_time =
    Array.init n (fun _ ->
        if Prng.float prng 1.0 < rate then Some (Prng.int_in prng 1 horizon) else None)
  in
  let crashed p time =
    p < n && match crash_time.(p) with Some t -> time >= t | None -> false
  in
  make
    ~name:(Printf.sprintf "%s+random-crashes(rate=%.2f)" inner.name rate)
    (fun ~time ~unfinished ->
      match List.filter (fun p -> not (crashed p time)) unfinished with
      | [] -> None
      | alive -> (
          match inner.next ~time ~unfinished:alive with
          | None -> None
          | Some set -> Some (List.filter (fun p -> not (crashed p time)) set)))

let eager_then_lazy ~slow ~delay =
  make ~name:(Printf.sprintf "eager-then-lazy(delay=%d)" delay) (fun ~time ~unfinished ->
      match unfinished with
      | [] -> None
      | l -> (
          if time > delay then Some l
          else
            match List.filter (fun p -> not (List.mem p slow)) l with
            | [] -> Some l
            | eager -> Some eager))

let isolate_pair (p, q) =
  make ~name:(Printf.sprintf "isolate-pair(%d,%d)" p q) (fun ~time:_ ~unfinished ->
      match unfinished with
      | [] -> None
      | l -> (
          match List.filter (fun v -> v <> p && v <> q) l with
          | [] -> Some (List.filter (fun v -> v = p || v = q) l)
          | others -> Some others))

let parse s =
  let fail () = invalid_arg (Printf.sprintf "Adversary.parse: malformed schedule %S" s) in
  let s = String.trim s in
  if s = "" then []
  else begin
    let sets = ref [] in
    let i = ref 0 in
    let len = String.length s in
    while !i < len do
      while !i < len && (s.[!i] = ' ' || s.[!i] = '\t' || s.[!i] = '\n') do incr i done;
      if !i < len then begin
        if s.[!i] <> '{' then fail ();
        let close =
          match String.index_from_opt s !i '}' with Some j -> j | None -> fail ()
        in
        let body = String.sub s (!i + 1) (close - !i - 1) in
        let set =
          if String.trim body = "" then []
          else
            String.split_on_char ',' body
            |> List.map (fun tok ->
                   match int_of_string_opt (String.trim tok) with
                   | Some v -> v
                   | None -> fail ())
        in
        sets := set :: !sets;
        i := close + 1
      end
    done;
    List.rev !sets
  end

let to_string sets =
  String.concat " "
    (List.map
       (fun set -> "{" ^ String.concat "," (List.map string_of_int set) ^ "}")
       sets)

let finite sets =
  let sets = Array.of_list sets in
  make ~name:"finite-replay" (fun ~time ~unfinished ->
      if time - 1 >= Array.length sets || unfinished = [] then None
      else Some sets.(time - 1))
