(** Protocol signature for the asynchronous state model (paper §2.1).

    A process is a deterministic state machine whose only communication is
    through a single-writer/multi-reader register readable by its graph
    neighbours.  One asynchronous round of process [p] performs, atomically:

    + write {!val:publish}[ state] into [p]'s register;
    + read the registers of all neighbours of [p] ([None] for a neighbour
      that has never been activated — the paper's [⊥]);
    + run {!val:transition} to either return an output or adopt a new state.

    The engine ({!Engine.Make}) supplies the graph and the schedule and
    guarantees the write-then-read order within a simultaneous step. *)

module type S = sig
  type state
  (** Private memory of one process. *)

  type register
  (** Value stored in the process's shared register. *)

  type output
  (** Final decision value (a colour for the protocols of the paper). *)

  val name : string
  (** Short protocol name used in traces and tables. *)

  val init : ident:int -> state
  (** Initial private state of the process whose (unique) input identifier
      is [ident].  Called at the process's first activation. *)

  val publish : state -> register
  (** Value written at the start of each round. *)

  val transition : state -> view:register option array -> (state, output) Step.t
  (** One round: [view.(i)] is the register of the [i]-th neighbour in the
      node's local order (the order of {!Asyncolor_topology.Graph.neighbours});
      [None] encodes [⊥].  Must be deterministic and total. *)

  (** {2 Compact encoders}

      The run-core layer identifies configurations through a packed
      integer key ({!Engine.Make.config_key}) instead of polymorphic
      comparison of boxed values.  Each encoder emits a sequence of
      integers that {e uniquely determines} the encoded value: two values
      are equal (in the sense of [equal_state]/[equal_register]) iff they
      emit the same sequence.  Fixed-width fields can be emitted directly;
      variable-length collections must be length-prefixed by the encoder
      itself (the engine frames whole fields, not their interiors).  The
      engine supplies the [emit] sink; encoders must call it and nothing
      else. *)

  val encode_state : (int -> unit) -> state -> unit
  val encode_register : (int -> unit) -> register -> unit
  val encode_output : (int -> unit) -> output -> unit

  val equal_state : state -> state -> bool
  (** Structural equality; used by the model checker to canonicalise
      configurations. *)

  val equal_register : register -> register -> bool

  val pp_state : Format.formatter -> state -> unit
  val pp_register : Format.formatter -> register -> unit
  val pp_output : Format.formatter -> output -> unit
end
