module Graph = Asyncolor_topology.Graph

module Make (P : Protocol.S) = struct
  type event = {
    time : int;
    activated : int list;
    returned : (int * P.output) list;
    resets : (int * int) list;
  }

  type t = {
    graph : Graph.t;
    idents : int array;
    mutable states : P.state option array;  (* None while asleep *)
    status : P.output Status.t array;
    public : P.register option array;
    activations : int array;
    mutable time : int;
    mutable monitor : (t -> unit) option;
    mutable trace : event list;  (* reverse chronological *)
    record_trace : bool;
    mutable unfinished_cache : int list option;
        (* memoised [unfinished]; invalidated whenever a process returns or
           a snapshot is restored *)
  }

  let create ?(record_trace = false) graph ~idents =
    let n = Graph.n graph in
    if Array.length idents <> n then
      invalid_arg "Engine.create: idents length must match node count";
    {
      graph;
      idents = Array.copy idents;
      states = Array.make n None;
      status = Array.make n Status.Asleep;
      public = Array.make n None;
      activations = Array.make n 0;
      time = 0;
      monitor = None;
      trace = [];
      record_trace;
      unfinished_cache = None;
    }

  let graph t = t.graph
  let n t = Graph.n t.graph
  let time t = t.time
  let ident t p = t.idents.(p)
  let status t p = t.status.(p)

  let state t p =
    match t.states.(p) with
    | Some s -> s
    | None -> invalid_arg "Engine.state: process still asleep"

  let public t p = t.public.(p)
  let activations t p = t.activations.(p)
  let max_activations t = Array.fold_left max 0 t.activations

  let unfinished t =
    match t.unfinished_cache with
    | Some l -> l
    | None ->
        let acc = ref [] in
        for p = n t - 1 downto 0 do
          if not (Status.is_returned t.status.(p)) then acc := p :: !acc
        done;
        t.unfinished_cache <- Some !acc;
        !acc

  let all_returned t = Array.for_all Status.is_returned t.status
  let outputs t = Array.map Status.output t.status

  let check_mask_width t what =
    if n t > Sys.int_size - 1 then
      invalid_arg
        (Printf.sprintf "Engine.%s: bitmask activation needs n <= %d" what
           (Sys.int_size - 1))

  let unfinished_mask t =
    check_mask_width t "unfinished_mask";
    let m = ref 0 in
    for p = 0 to n t - 1 do
      if not (Status.is_returned t.status.(p)) then m := !m lor (1 lsl p)
    done;
    !m
  let set_monitor t f = t.monitor <- Some f
  let trace t = List.rev t.trace

  (* One time step.  Phase 1: all activated processes wake (if needed) and
     write; phase 2: all of them read and update.  This matches the paper's
     simultaneous-round semantics. *)

  let wake_and_write t p =
    (match t.states.(p) with
    | None ->
        t.states.(p) <- Some (P.init ~ident:t.idents.(p));
        t.status.(p) <- Status.Working
    | Some _ -> ());
    t.public.(p) <- Some (P.publish (Option.get t.states.(p)))

  let read_and_update t p returned =
    t.activations.(p) <- t.activations.(p) + 1;
    let nbrs = Graph.neighbours t.graph p in
    let view = Array.map (fun q -> t.public.(q)) nbrs in
    match P.transition (Option.get t.states.(p)) ~view with
    | Step.Continue s -> t.states.(p) <- Some s
    | Step.Return o ->
        t.status.(p) <- Status.Returned o;
        t.unfinished_cache <- None;
        returned := (p, o) :: !returned

  let finish_step t set returned =
    if t.record_trace then
      t.trace <-
        { time = t.time; activated = set; returned = List.rev !returned; resets = [] }
        :: t.trace;
    match t.monitor with None -> () | Some f -> f t

  (* Recovery event (the dynamic-model extension): the process on node [p]
     leaves the execution and a brand-new one takes its place — asleep,
     holding input identifier [ident], its register back to [⊥].  Freshness
     of [ident] with respect to the live identifiers is the caller's
     contract (see [Asyncolor_workload.Idents.fresh]); the engine only
     installs it.  Neighbours observe the change through their next
     register read, exactly as they observe a first write.  The activation
     counter restarts, so wait-freedom bounds are per incarnation. *)
  let reset t p ~ident =
    let n = n t in
    if p < 0 || p >= n then
      invalid_arg
        (Printf.sprintf "Engine.reset: process index %d out of range [0, %d)" p
           n);
    t.idents.(p) <- ident;
    t.states.(p) <- None;
    t.status.(p) <- Status.Asleep;
    t.public.(p) <- None;
    t.activations.(p) <- 0;
    t.unfinished_cache <- None;
    if t.record_trace then
      t.trace <-
        { time = t.time; activated = []; returned = []; resets = [ (p, ident) ] }
        :: t.trace

  let activate t set =
    (* Validate before any mutation: a bad index must leave the engine
       untouched (time not advanced, nobody woken). *)
    let n = n t in
    List.iter
      (fun p ->
        if p < 0 || p >= n then
          invalid_arg
            (Printf.sprintf
               "Engine.activate: process index %d out of range [0, %d)" p n))
      set;
    t.time <- t.time + 1;
    let set = List.sort_uniq compare set in
    let set = List.filter (fun p -> not (Status.is_returned t.status.(p))) set in
    List.iter (fun p -> wake_and_write t p) set;
    let returned = ref [] in
    List.iter (fun p -> read_and_update t p returned) set;
    finish_step t set returned

  (* Same step, set given as a bitmask over process indices.  Returned
     processes drop out exactly as in [activate]; bits are visited in
     ascending index order, matching the sorted lists [activate] builds —
     the two entry points are observably identical on equal sets.  The
     mask path allocates nothing per step unless a trace is recorded. *)
  let activate_mask t mask =
    check_mask_width t "activate_mask";
    let n = n t in
    if mask < 0 || mask lsr n <> 0 then
      invalid_arg
        (Printf.sprintf
           "Engine.activate_mask: mask %#x names processes outside [0, %d)" mask
           n);
    t.time <- t.time + 1;
    let live = ref 0 in
    for p = 0 to n - 1 do
      if mask land (1 lsl p) <> 0 && not (Status.is_returned t.status.(p)) then
        live := !live lor (1 lsl p)
    done;
    let live = !live in
    for p = 0 to n - 1 do
      if live land (1 lsl p) <> 0 then wake_and_write t p
    done;
    let returned = ref [] in
    for p = 0 to n - 1 do
      if live land (1 lsl p) <> 0 then read_and_update t p returned
    done;
    if t.record_trace || Option.is_some t.monitor then begin
      let set = ref [] in
      for p = n - 1 downto 0 do
        if live land (1 lsl p) <> 0 then set := p :: !set
      done;
      finish_step t !set returned
    end

  let pp_spacetime ppf t =
    let n = n t in
    let events = List.rev t.trace in
    (* Walked chronologically so recovery is renderable: a process can
       return, be reset ([+]) and work again — a static "returned at"
       table cannot express that. *)
    let done_ = Array.make n false in
    Format.fprintf ppf "@[<v> t\\p ";
    for p = 0 to n - 1 do
      Format.fprintf ppf "%d" (p mod 10)
    done;
    List.iter
      (fun (e : event) ->
        Format.fprintf ppf "@,%4d " e.time;
        for p = 0 to n - 1 do
          let c =
            if List.mem_assoc p e.resets then '+'
            else if List.mem_assoc p e.returned then 'R'
            else if done_.(p) then '_'
            else if List.mem p e.activated then '#'
            else '.'
          in
          Format.pp_print_char ppf c
        done;
        List.iter (fun (p, _) -> done_.(p) <- true) e.returned;
        List.iter (fun (p, _) -> done_.(p) <- false) e.resets)
      events;
    Format.fprintf ppf "@]"

  let pp_snapshot ppf t =
    Format.fprintf ppf "@[<v>t=%d (%s)" t.time P.name;
    for p = 0 to n t - 1 do
      let pp_opt pp ppf = function
        | None -> Format.pp_print_string ppf "⊥"
        | Some x -> pp ppf x
      in
      Format.fprintf ppf "@,  p%d id=%d %a: state=%a reg=%a acts=%d" p t.idents.(p)
        (Status.pp P.pp_output) t.status.(p) (pp_opt P.pp_state) t.states.(p)
        (pp_opt P.pp_register) t.public.(p) t.activations.(p)
    done;
    Format.fprintf ppf "@]"

  type config = {
    c_states : P.state option array;
    c_status : P.output Status.t array;
    c_public : P.register option array;
    c_time : int;
    c_activations : int array;
  }

  let snapshot t =
    {
      c_states = Array.copy t.states;
      c_status = Array.copy t.status;
      c_public = Array.copy t.public;
      c_time = t.time;
      c_activations = Array.copy t.activations;
    }

  let restore t c =
    Array.blit c.c_states 0 t.states 0 (Array.length c.c_states);
    Array.blit c.c_status 0 t.status 0 (Array.length c.c_status);
    Array.blit c.c_public 0 t.public 0 (Array.length c.c_public);
    Array.blit c.c_activations 0 t.activations 0 (Array.length c.c_activations);
    t.time <- c.c_time;
    t.unfinished_cache <- None

  (* Configuration identity covers only the process-visible part
     (states, statuses, registers); the observers captured for [restore]
     (time, activation counters) are deliberately excluded. *)
  let config_compare (a : config) (b : config) =
    compare
      (a.c_states, a.c_status, a.c_public)
      (b.c_states, b.c_status, b.c_public)

  (* --- packed configuration keys ----------------------------------- *)

  (* A key is the per-process concatenation of status, state and register,
     flattened to integers by the protocol's encoders.  Variable-length
     payloads are length-prefixed here, so key equality coincides with
     structural configuration equality as long as the encoders are
     injective (the {!Protocol.S} contract). *)

  type key = { kdata : int array; khash : int }

  let hash_ints a =
    let h = ref 0 in
    for i = 0 to Array.length a - 1 do
      h := ((!h * 31) + a.(i)) land max_int
    done;
    !h

  (* Append process [p]'s framed segment to [buf].  [config_key] is the
     in-order concatenation of these segments, so a permuted concatenation
     is exactly the key of the correspondingly permuted configuration —
     the invariant the explorer's orbit canonicalization leans on. *)
  let emit_process_segment buf c p =
    let emit x = Asyncolor_util.Vec.push buf x in
    (* emit a length placeholder, run the payload encoder, patch it *)
    let framed encode =
      let at = Asyncolor_util.Vec.length buf in
      emit 0;
      encode ();
      Asyncolor_util.Vec.set buf at (Asyncolor_util.Vec.length buf - at - 1)
    in
    (match c.c_status.(p) with
    | Status.Asleep -> emit 0
    | Status.Working -> emit 1
    | Status.Returned o ->
        emit 2;
        framed (fun () -> P.encode_output emit o));
    (match c.c_states.(p) with
    | None -> emit 0
    | Some s ->
        emit 1;
        framed (fun () -> P.encode_state emit s));
    match c.c_public.(p) with
    | None -> emit 0
    | Some r ->
        emit 1;
        framed (fun () -> P.encode_register emit r)

  let config_key c =
    let buf = Asyncolor_util.Vec.create ~capacity:64 ~dummy:0 () in
    let n = Array.length c.c_status in
    for p = 0 to n - 1 do
      emit_process_segment buf c p
    done;
    let kdata = Asyncolor_util.Vec.to_array buf in
    { kdata; khash = hash_ints kdata }

  let config_key_segments c =
    let n = Array.length c.c_status in
    Array.init n (fun p ->
        let buf = Asyncolor_util.Vec.create ~capacity:16 ~dummy:0 () in
        emit_process_segment buf c p;
        Asyncolor_util.Vec.to_array buf)

  let config_permute c perm =
    let n = Array.length c.c_status in
    if Array.length perm <> n then
      invalid_arg "Engine.config_permute: permutation length must match n";
    {
      c_states = Array.init n (fun q -> c.c_states.(perm.(q)));
      c_status = Array.init n (fun q -> c.c_status.(perm.(q)));
      c_public = Array.init n (fun q -> c.c_public.(perm.(q)));
      c_time = c.c_time;
      c_activations = Array.init n (fun q -> c.c_activations.(perm.(q)));
    }

  let key_hash k = k.khash
  let key_data k = k.kdata
  let key_of_data kdata = { kdata; khash = hash_ints kdata }

  let key_equal a b =
    a.khash = b.khash
    &&
    let la = Array.length a.kdata in
    la = Array.length b.kdata
    &&
    let rec eq i = i >= la || (a.kdata.(i) = b.kdata.(i) && eq (i + 1)) in
    eq 0

  module Key_tbl = Hashtbl.Make (struct
    type t = key

    let equal = key_equal
    let hash = key_hash
  end)

  let config_unfinished c =
    let acc = ref [] in
    for p = Array.length c.c_status - 1 downto 0 do
      if not (Status.is_returned c.c_status.(p)) then acc := p :: !acc
    done;
    !acc

  let config_unfinished_mask c =
    let n = Array.length c.c_status in
    if n > Sys.int_size - 1 then
      invalid_arg "Engine.config_unfinished_mask: needs n <= word size - 1";
    let m = ref 0 in
    for p = 0 to n - 1 do
      if not (Status.is_returned c.c_status.(p)) then m := !m lor (1 lsl p)
    done;
    !m

  let config_outputs c = Array.map Status.output c.c_status

  type run_result = {
    steps : int;
    rounds : int;
    activations_per_process : int array;
    outputs : P.output option array;
    all_returned : bool;
    schedule_ended : bool;
  }

  let result ~schedule_ended t =
    {
      steps = t.time;
      rounds = max_activations t;
      activations_per_process = Array.copy t.activations;
      outputs = outputs t;
      all_returned = all_returned t;
      schedule_ended;
    }

  let run ?(max_steps = 1_000_000) t (adv : Adversary.t) =
    let rec loop () =
      if all_returned t then result ~schedule_ended:false t
      else if t.time >= max_steps then result ~schedule_ended:false t
      else
        match adv.next ~time:(t.time + 1) ~unfinished:(unfinished t) with
        | None -> result ~schedule_ended:true t
        | Some set ->
            activate t set;
            loop ()
    in
    loop ()
end
