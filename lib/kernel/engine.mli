(** Execution engine for the asynchronous state model.

    [Make (P)] instantiates the model of paper §2.1–2.2 for protocol [P]:
    processes sit on the nodes of a graph, communicate through
    single-writer/multi-reader registers readable only along edges, and are
    driven by an explicit schedule of activation sets.

    Semantics guaranteed by {!Make.activate}:
    - processes activated in the same step all write before any of them
      reads (simultaneous immediate-snapshot behaviour);
    - a register reads as [None] ([⊥]) until its owner's first activation;
    - a returned process ignores further activations (it "no longer
      partakes in the execution");
    - a process's round — write, read, update — is atomic with respect to
      other steps. *)

module Make (P : Protocol.S) : sig
  type t

  type event = {
    time : int;
    activated : int list;  (** the working processes that actually took a round *)
    returned : (int * P.output) list;  (** processes whose stopping condition fired *)
    resets : (int * int) list;
        (** recovery events [(p, fresh_ident)] recorded by {!reset};
            empty for every [activate] step *)
  }

  val create : ?record_trace:bool -> Asyncolor_topology.Graph.t -> idents:int array -> t
  (** [create g ~idents] sets up one process per node of [g], all asleep,
      process [p] holding input identifier [idents.(p)].
      @raise Invalid_argument if [Array.length idents <> Graph.n g]. *)

  val graph : t -> Asyncolor_topology.Graph.t
  val n : t -> int
  val time : t -> int
  (** Number of [activate] steps executed so far. *)

  val ident : t -> int -> int
  val status : t -> int -> P.output Status.t
  val state : t -> int -> P.state
  (** Current private state (the last one before return for a returned
      process).  @raise Invalid_argument if the process is still asleep. *)

  val public : t -> int -> P.register option
  (** Current register content, [None] for [⊥]. *)

  val activations : t -> int -> int
  (** Number of rounds process [p] has performed while working. *)

  val max_activations : t -> int
  val unfinished : t -> int list
  (** Sorted list of processes that have not returned (asleep or working). *)

  val all_returned : t -> bool
  val outputs : t -> P.output option array

  val activate : t -> int list -> unit
  (** [activate t set] executes one time step with activation set [set].
      Input contract (shared with {!activate_mask}):
      - {e out-of-range} indices ([p < 0] or [p >= n t]) raise
        [Invalid_argument] {e before} the engine mutates — time does not
        advance and nobody wakes up;
      - {e duplicate} indices are coalesced: a process activates at most
        once per step, however many times it appears in [set];
      - indices of {e returned} processes are ignored (the paper's "no
        longer partakes in the execution").
      Asleep processes in [set] wake up (their state becomes
      [init ~ident]) and take their first round within this very step. *)

  val activate_mask : t -> int -> unit
  (** [activate_mask t mask] is [activate t set] for the set whose members
      are the set bits of [mask] (bit [p] = process [p]) — the packed
      entry point of the run-core layer.  Observably identical to the
      list version on equal sets (returned processes drop out, ascending
      activation order) but allocation-free per step unless a trace is
      recorded, which is what the exhaustive explorer's hot loop needs.
      Shares the input contract of {!activate}: a mask naming a process
      outside [\[0, n t)] (a negative mask, or any set bit at position
      [>= n t]) raises [Invalid_argument] before the engine mutates.
      @raise Invalid_argument when [n t > Sys.int_size - 1] (the mask
      cannot name every process). *)

  val unfinished_mask : t -> int
  (** {!unfinished} as a bitmask.  @raise Invalid_argument when
      [n t > Sys.int_size - 1]. *)

  val reset : t -> int -> ident:int -> unit
  (** [reset t p ~ident] is the {e recovery event} of the dynamic model
      (the churn layer's kernel primitive): the process on node [p] —
      crashed, returned or still working — is replaced by a brand-new one
      that holds input identifier [ident], sits asleep in its initial
      state, and whose register reads as [None] ([⊥]) again until its
      first activation.  Neighbours observe the change through their
      ordinary shared-register reads; no out-of-band signal exists.  The
      activation counter of [p] restarts at [0], so wait-freedom bounds
      are per incarnation.  Freshness of [ident] — no collision with the
      identifiers of live processes — is the {e caller's} contract (use
      {!Asyncolor_workload.Idents.fresh}); the engine installs it blindly.
      Recorded as a {!event} with a singleton [resets] field when tracing.
      Note that configurations snapshotted {e before} a reset still carry
      the old incarnation: {!restore} rewinds states and registers but
      identifiers are input data and are {e not} part of a snapshot, so
      interleaving [reset] with snapshot/restore loops is only sound if
      the caller replays resets in order (the churn session engine never
      restores across a reset).
      @raise Invalid_argument if [p] is outside [\[0, n t)], before any
      mutation. *)

  val set_monitor : t -> (t -> unit) -> unit
  (** Install a callback invoked after every [activate]; used to assert
      execution invariants (e.g. Lemma 4.5) at every time step. *)

  val trace : t -> event list
  (** Events in chronological order ([create ~record_trace:true] only). *)

  val pp_spacetime : Format.formatter -> t -> unit
  (** ASCII space-time diagram of the recorded trace: one row per time
      step, one column per process; [·] idle, [#] performed a round,
      [R] returned at that step, [_] already returned.  Requires
      [record_trace:true]. *)

  val pp_snapshot : Format.formatter -> t -> unit
  (** Render the full configuration (status, state, register per node). *)

  (** {1 Configuration snapshots}

      A configuration records an execution point: per-process status,
      private state and register content, plus the observers — the time
      step and the per-process activation counters.

      The {e restore contract}: {!restore} rewinds the engine to the
      execution point in full, observers included, so a snapshot/restore
      loop (explorer, adaptive adversary) can never leak activation
      counts or time from one explored branch into another.

      {e Configuration identity} ({!config_compare}, {!config_key}) is
      narrower: it covers only the process-visible part (status, state,
      register) and deliberately ignores the observers — two points of an
      execution with equal visible parts are indistinguishable to every
      process, which is what makes cycle detection in the configuration
      graph sound.  Traces and monitors are part of neither. *)

  type config

  val snapshot : t -> config
  val restore : t -> config -> unit
  (** [restore t c] rewinds statuses, states, registers, the time counter
      and the per-process activation counters to their values at
      [snapshot].  The recorded trace and the monitor are left alone. *)

  val config_compare : config -> config -> int
  (** Total order on the process-visible part of configurations
      (structural; time and activation counters are ignored — see the
      identity note above).  Requires [P.state] and [P.register] to be
      pure data (no functions, no cycles), which holds for every protocol
      in this repository. *)

  val config_unfinished : config -> int list

  val config_unfinished_mask : config -> int
  (** {!config_unfinished} as a bitmask (bit [p] = process [p]).
      @raise Invalid_argument when the mask cannot name every process. *)

  val config_outputs : config -> P.output option array

  (** {1 Packed configuration keys}

      The run-core layer interns configurations through a packed integer
      key built by the protocol's {!Protocol.S.encode_state} family
      instead of polymorphic comparison over boxed option arrays.  Key
      equality coincides with [config_compare x y = 0] whenever the
      encoders are injective (the {!Protocol.S} contract). *)

  type key

  val config_key : config -> key
  (** Pack the process-visible part of [c] into a flat, hashable key
      (observers excluded, exactly like {!config_compare}). *)

  val key_hash : key -> int
  val key_equal : key -> key -> bool

  val key_data : key -> int array
  (** The packed payload of a key.  [key_of_data (key_data k)] is equal
      (and equi-hashed) to [k] — the round-trip the explorer's checkpoint
      format relies on to persist its intern table as flat int arrays. *)

  val key_of_data : int array -> key
  (** Rebuild a key from {!key_data} output (the hash is recomputed, so a
      checkpoint never has to trust a stored hash). *)

  val config_key_segments : config -> int array array
  (** The per-process framed segments of {!config_key}: element [p] is
      the packed encoding of process [p]'s (status, state, register)
      triple, and [key_data (config_key c)] is exactly the in-order
      concatenation of the segments.  This decomposition is what lets the
      explorer's symmetry layer build the key of a permuted configuration
      by concatenating segments in permuted order, without re-running the
      protocol encoders once per group element. *)

  val config_permute : config -> int array -> config
  (** [config_permute c perm] is the configuration whose position [q]
      holds what [c] held at position [perm.(q)] (status, state, register
      and activation counter alike; time is preserved).  When [perm] is
      an automorphism of the topology that fixes the identifier
      assignment, the result is a reachable configuration of the same
      system — the orbit member the symmetry-reduced explorer picks
      representatives from.  @raise Invalid_argument if [perm]'s length
      differs from the process count (bijectivity is the caller's
      contract; see {!Asyncolor_topology.Graph.is_automorphism}). *)

  module Key_tbl : Hashtbl.S with type key = key
  (** Hash table over packed keys — the hash-consed configuration store
      of {!Asyncolor_check.Explorer}. *)

  (** {1 Running against an adversary} *)

  type run_result = {
    steps : int;  (** time steps consumed *)
    rounds : int;  (** max activations over all processes — the paper's round complexity *)
    activations_per_process : int array;
    outputs : P.output option array;
    all_returned : bool;  (** every process returned (no crashes, schedule long enough) *)
    schedule_ended : bool;  (** the adversary returned [None] (remaining processes crashed) *)
  }

  val run : ?max_steps:int -> t -> Adversary.t -> run_result
  (** Drive [t] with the adversary until every process returned, the
      adversary ends the schedule, or [max_steps] (default [1_000_000])
      time steps elapse.  The engine is left in its final configuration for
      inspection. *)
end
