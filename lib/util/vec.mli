(** Growable arrays (amortised O(1) push), the backing store of the
    run-core layer: the hash-consed configuration store and adjacency
    lists of the explorer grow through this module instead of rehashing
    [Hashtbl]s keyed by dense integer ids.

    A [dummy] element fills the unused capacity (OCaml arrays cannot be
    partially initialised without it); it is never observable through the
    API. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
val length : 'a t -> int

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument when out of bounds. *)

val push : 'a t -> 'a -> unit

val set_grow : 'a t -> int -> 'a -> unit
(** [set_grow t i x] writes [x] at index [i], extending the vector with
    [dummy] elements if [i >= length t]. *)

val pop : 'a t -> 'a
(** Remove and return the last element (the slot is reset to [dummy] so
    no value is retained).  @raise Invalid_argument when empty. *)

val clear : 'a t -> unit
(** Truncate to length 0 (capacity retained). *)

val to_array : 'a t -> 'a array
(** Fresh array of the first [length t] elements. *)

val of_array : dummy:'a -> 'a array -> 'a t
(** Vector holding a copy of [a] (checkpoint-resume rebuilds the
    explorer's stores through this). *)

val iteri : (int -> 'a -> unit) -> 'a t -> unit
