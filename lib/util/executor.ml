(* The async execution core: Chase–Lev work-stealing deques under a
   policy-driven in-flight window, with futures and a lost-wakeup-free
   sleep protocol.

   Layout: deque 0 belongs to the submitting caller and is drained from
   the top (FIFO) by every domain — caller included while it waits in
   [await] — so caller-submitted tasks are dispatched in submission
   order.  Deques 1..jobs-1 belong to the spawned workers: each pops its
   own LIFO and steals from the others' tops.  The FIFO discipline on
   deque 0 is what keeps batch failures (lowest-index error) and the
   explorer's id-assignment deterministic whatever the steal
   interleaving; the steal path itself is a single CAS on a monotonic
   [top] counter, no lock.

   Sleeping without lost wakeups: the deques are lock-free, so a worker
   cannot atomically check-empty-and-wait.  Instead a [stamp] change
   counter is bumped (under the one mutex) by every submit, completion
   and shutdown; a worker that found nothing records the stamp, rescans
   the deques, and only waits on the condvar if the stamp is still
   unchanged — any concurrent push either happened before the rescan
   (found) or bumps the stamp after it (wait skipped or woken). *)

module Obs = Asyncolor_obs.Obs
module Chaos = Asyncolor_resilience.Chaos

module Ws_deque = struct
  (* Chase–Lev: [top] advances by CAS only (thieves, and the owner when
     popping the last element), so it is monotonic and an index is handed
     out exactly once — no ABA.  [bottom] is written only by the owner.
     Slots hold ['a option] so dead entries can be dropped for the GC;
     the buffer is in an [Atomic] because the owner replaces it on grow
     while thieves may still be reading the old one (whose copied range
     is identical, so a stale read stays correct). *)
  type 'a t = {
    top : int Atomic.t;
    bottom : int Atomic.t;
    buf : 'a option array Atomic.t;
  }

  let create () =
    {
      top = Atomic.make 0;
      bottom = Atomic.make 0;
      buf = Atomic.make (Array.make 16 None);
    }

  let length q = max 0 (Atomic.get q.bottom - Atomic.get q.top)

  let grow q b t =
    let old = Atomic.get q.buf in
    let osz = Array.length old in
    let nw = Array.make (2 * osz) None in
    for i = t to b - 1 do
      nw.(i land ((2 * osz) - 1)) <- old.(i land (osz - 1))
    done;
    Atomic.set q.buf nw

  let push q x =
    let b = Atomic.get q.bottom and t = Atomic.get q.top in
    if b - t >= Array.length (Atomic.get q.buf) then grow q b t;
    let buf = Atomic.get q.buf in
    buf.(b land (Array.length buf - 1)) <- Some x;
    Atomic.set q.bottom (b + 1)

  let pop q =
    let b = Atomic.get q.bottom - 1 in
    Atomic.set q.bottom b;
    let t = Atomic.get q.top in
    if b < t then begin
      (* already empty: undo the decrement *)
      Atomic.set q.bottom t;
      None
    end
    else begin
      let buf = Atomic.get q.buf in
      let i = b land (Array.length buf - 1) in
      let x = buf.(i) in
      if b > t then begin
        buf.(i) <- None;
        x
      end
      else begin
        (* last element: race the thieves for it via the top CAS *)
        let won = Atomic.compare_and_set q.top t (t + 1) in
        Atomic.set q.bottom (t + 1);
        if won then x else None
      end
    end

  let rec steal q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if t >= b then None
    else begin
      let buf = Atomic.get q.buf in
      let x = buf.(t land (Array.length buf - 1)) in
      if Atomic.compare_and_set q.top t (t + 1) then x
      else steal q (* lost the race: someone else took index [t] *)
    end
end

type policy =
  | Serial
  | Synchronous
  | Asynchronous of { max_active : int; kappa : float }

let clamp_kappa k =
  if Float.is_nan k then 1.0 else Float.max 0.0 (Float.min 1.0 k)

let asynchronous ?max_active ?(kappa = 0.5) ~jobs () =
  let jobs = max 1 jobs in
  let max_active =
    match max_active with Some m -> max 1 m | None -> 4 * jobs
  in
  Asynchronous { max_active; kappa = clamp_kappa kappa }

let policy_of_string ?max_active ?kappa ~jobs s =
  match String.lowercase_ascii s with
  | "serial" -> Serial
  | "sync" | "synchronous" -> Synchronous
  | "async" | "asynchronous" -> asynchronous ?max_active ?kappa ~jobs ()
  | s ->
      invalid_arg
        (Printf.sprintf
           "Executor.policy_of_string: unknown policy %S (expected \
            serial|sync|async)"
           s)

let policy_name = function
  | Serial -> "serial"
  | Synchronous -> "synchronous"
  | Asynchronous _ -> "asynchronous"

let policy_kappa = function
  | Serial | Synchronous -> 1.0
  | Asynchronous { kappa; _ } -> kappa

type 'a fstate =
  | Pending
  | Returned of 'a
  | Raised of exn * Printexc.raw_backtrace

type t = {
  id : int;  (* key for the domain-local worker index *)
  jobs : int;
  mutable pol : policy;  (* the watchdog degrades it; written under [mutex] *)
  deques : (unit -> unit) Ws_deque.t array;
  mutex : Mutex.t;
  changed : Condition.t;
  mutable stamp : int;  (* bumped under [mutex] on every state change *)
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  chaos : Chaos.t;
  (* --- watchdog state ------------------------------------------------
     [heartbeat.(w)] is bumped by worker [w] every loop iteration; the
     caller's watchdog scan compares it against [last_hb.(w)] while the
     system is starved.  [reinject] holds tasks reclaimed from dead or
     stalled workers: deque pushes are owner-only, so the one legal way
     to hand work back to the pool is this mutex-guarded queue, drained
     by [take_task] after a deque miss. *)
  heartbeat : int Atomic.t array;
  dead : bool array;  (* written under [mutex] *)
  reinject : (unit -> unit) Queue.t;  (* guarded by [mutex] *)
  last_hb : int array;  (* watchdog-private, under [mutex] *)
  stall_strikes : int array;  (* consecutive starved observations *)
  mutable failures : int;  (* crashes + stalls since the last degrade *)
  degrade_after : int;
  mutable n_crashes : int;
  mutable n_stalls : int;
  mutable n_degraded : int;
  obs : Obs.t;
  c_tasks : Obs.Counter.t;
  c_retries : Obs.Counter.t;
  c_steals : Obs.Counter.t;
  c_backpressure : Obs.Counter.t;
  c_crashes : Obs.Counter.t;
  c_stalls : Obs.Counter.t;
  c_degraded : Obs.Counter.t;
  g_inflight : Obs.Gauge.t;
}

type 'a future = { mutable fst : 'a fstate; owner : t }

type batch_error = {
  index : int;
  attempts : int;
  error : exn;
  backtrace : Printexc.raw_backtrace;
}

let default_jobs () = Domain.recommended_domain_count ()
let jobs t = t.jobs
let policy t = t.pol

let stream_window t =
  match t.pol with
  | Serial -> 1
  | Synchronous -> max_int
  | Asynchronous { max_active; _ } -> max 1 max_active

let note_backpressure t = Obs.Counter.incr t.c_backpressure

(* Which deque the current domain owns in executor [t]: spawned workers
   record (executor id, index) in domain-local storage; everyone else —
   the caller in particular — is worker 0. *)
let next_exec_id = Atomic.make 0

let dls_worker : (int * int) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (-1, 0))

let self_ix t =
  let eid, w = Domain.DLS.get dls_worker in
  if eid = t.id then w else 0

(* Tasks reclaimed from crashed/stalled workers.  The unlocked emptiness
   probe is racy but safe: a stale "empty" is caught by the stamp bump
   the producer made under the mutex, a stale "nonempty" just costs one
   lock round. *)
let take_reinjected t =
  if Queue.is_empty t.reinject then None
  else begin
    Mutex.lock t.mutex;
    let r = Queue.take_opt t.reinject in
    Mutex.unlock t.mutex;
    r
  end

(* Take one task: own deque first (worker 0 from the top, to preserve the
   caller's FIFO dispatch; workers from the bottom), then steal from the
   others round-robin, then the reinjection queue.  Only cross-deque
   takes count as steals. *)
let take_task t ~self =
  let own =
    if self = 0 then Ws_deque.steal t.deques.(0)
    else Ws_deque.pop t.deques.(self)
  in
  match own with
  | Some _ as r -> r
  | None -> (
      let n = Array.length t.deques in
      let rec scan k =
        if k >= n then None
        else
          match Ws_deque.steal t.deques.((self + k) mod n) with
          | Some _ as r ->
              Obs.Counter.incr t.c_steals;
              r
          | None -> scan (k + 1)
      in
      match scan 1 with Some _ as r -> r | None -> take_reinjected t)

let complete t fut v =
  Mutex.lock t.mutex;
  fut.fst <- v;
  t.stamp <- t.stamp + 1;
  Condition.broadcast t.changed;
  Mutex.unlock t.mutex

let submit t f =
  if t.stopping then invalid_arg "Executor.submit: executor is shut down";
  let fut = { fst = Pending; owner = t } in
  let task () =
    Obs.Counter.incr t.c_tasks;
    let v =
      if Obs.enabled t.obs then begin
        match Obs.span t.obs "exec.task" f with
        | v -> Returned v
        | exception e -> Raised (e, Printexc.get_raw_backtrace ())
      end
      else
        match f () with
        | v -> Returned v
        | exception e -> Raised (e, Printexc.get_raw_backtrace ())
    in
    complete t fut v
  in
  Ws_deque.push t.deques.(self_ix t) task;
  Mutex.lock t.mutex;
  t.stamp <- t.stamp + 1;
  Condition.broadcast t.changed;
  Mutex.unlock t.mutex;
  fut

(* --- the watchdog ----------------------------------------------------- *)

(* One crash or stall is tolerated quietly; [degrade_after] of them walk
   the policy down one rung (Asynchronous → Synchronous → Serial) —
   narrower windows mean fewer in-flight tasks exposed to a flaky pool.
   Results are unaffected: policy only changes scheduling, and the
   explorer re-reads the window every iteration.  Called under [mutex]. *)
let note_failure_locked t =
  t.failures <- t.failures + 1;
  if t.failures >= t.degrade_after then begin
    let next =
      match t.pol with
      | Asynchronous _ -> Some Synchronous
      | Synchronous -> Some Serial
      | Serial -> None
    in
    match next with
    | Some p ->
        t.failures <- 0;
        t.pol <- p;
        t.n_degraded <- t.n_degraded + 1;
        Obs.Counter.incr t.c_degraded;
        Chaos.note_degrade t.chaos
    | None -> ()
  end

(* A spawned worker's domain is about to die (injected crash, or a task
   wrapper that somehow escaped): salvage its queued tasks into the
   reinjection queue — we are still on the owner domain, so [pop] is
   legal — and mark it dead so the watchdog stops expecting heartbeats. *)
let worker_died t self =
  Mutex.lock t.mutex;
  let rec drain () =
    match Ws_deque.pop t.deques.(self) with
    | Some task ->
        Queue.add task t.reinject;
        drain ()
    | None -> ()
  in
  drain ();
  t.dead.(self) <- true;
  t.n_crashes <- t.n_crashes + 1;
  Obs.Counter.incr t.c_crashes;
  note_failure_locked t;
  t.stamp <- t.stamp + 1;
  Condition.broadcast t.changed;
  Mutex.unlock t.mutex

(* Caller-side scan, run when an [await] is starved: a worker whose
   heartbeat has not moved across [stall_limit] consecutive starved
   observations *while it holds queued tasks* is presumed wedged (chaos
   stall, page fault storm, runaway task); its queued items are stolen
   into the reinjection queue so the rest of the pool makes progress.
   The worker itself is left alone — if it wakes up it simply finds its
   deque empty.  Workers that never hold private tasks (every submit in
   this repo goes to deque 0) can never be struck. *)
let stall_limit = 3

let watchdog_scan t =
  if t.jobs > 1 then begin
    Mutex.lock t.mutex;
    for w = 1 to t.jobs - 1 do
      if not t.dead.(w) then begin
        let hb = Atomic.get t.heartbeat.(w) in
        if hb <> t.last_hb.(w) then begin
          t.last_hb.(w) <- hb;
          t.stall_strikes.(w) <- 0
        end
        else if Ws_deque.length t.deques.(w) > 0 then begin
          t.stall_strikes.(w) <- t.stall_strikes.(w) + 1;
          if t.stall_strikes.(w) >= stall_limit then begin
            t.stall_strikes.(w) <- 0;
            let rec reclaim k =
              match Ws_deque.steal t.deques.(w) with
              | Some task ->
                  Queue.add task t.reinject;
                  reclaim (k + 1)
              | None -> k
            in
            let n = reclaim 0 in
            if n > 0 then begin
              t.n_stalls <- t.n_stalls + 1;
              Obs.Counter.incr t.c_stalls;
              note_failure_locked t;
              t.stamp <- t.stamp + 1;
              Condition.broadcast t.changed
            end
          end
        end
      end
    done;
    Mutex.unlock t.mutex
  end

exception Worker_crash of { self : int }

let rec worker_loop t self =
  Atomic.incr t.heartbeat.(self);
  (* The time between finishing one task and receiving the next is queue
     wait — an "exec.wait" interval on this domain's lane. *)
  let t0 = Obs.now t.obs in
  match take_task t ~self with
  | Some task ->
      Obs.interval t.obs "exec.wait" ~start:t0;
      (* Injected worker death: the task just taken is handed back first,
         so nothing is lost — it costs latency, never a result. *)
      if Chaos.draw_crash t.chaos ~site:(Printf.sprintf "exec.worker-%d" self)
      then begin
        Mutex.lock t.mutex;
        Queue.add task t.reinject;
        t.stamp <- t.stamp + 1;
        Condition.broadcast t.changed;
        Mutex.unlock t.mutex;
        raise (Worker_crash { self })
      end;
      task ();
      worker_loop t self
  | None ->
      Mutex.lock t.mutex;
      let s0 = t.stamp and stop = t.stopping in
      Mutex.unlock t.mutex;
      if not stop then begin
        (* Rescan after recording the stamp: a push that the first scan
           missed either lands in this one or bumps the stamp. *)
        (match take_task t ~self with
        | Some task ->
            Obs.interval t.obs "exec.wait" ~start:t0;
            task ()
        | None ->
            Mutex.lock t.mutex;
            if (not t.stopping) && t.stamp = s0 then
              Condition.wait t.changed t.mutex;
            Mutex.unlock t.mutex);
        worker_loop t self
      end

let await_result fut =
  let t = fut.owner in
  let self = self_ix t in
  let rec loop () =
    Mutex.lock t.mutex;
    match fut.fst with
    | Returned v ->
        Mutex.unlock t.mutex;
        Ok v
    | Raised (e, bt) ->
        Mutex.unlock t.mutex;
        Error (e, bt)
    | Pending ->
        let s0 = t.stamp in
        Mutex.unlock t.mutex;
        (* Help: run queued tasks instead of blocking, so a window of
           submitted work always makes progress even at jobs = 1. *)
        (match take_task t ~self with
        | Some task -> task ()
        | None -> (
            (* Starved with the future pending: look for wedged workers
               before sleeping.  A reclaim bumps the stamp, so the wait
               below is skipped and the loop retries immediately. *)
            watchdog_scan t;
            Mutex.lock t.mutex;
            match fut.fst with
            | Pending ->
                if t.stopping then begin
                  Mutex.unlock t.mutex;
                  invalid_arg
                    "Executor.await: executor shut down with the future \
                     still pending"
                end
                else begin
                  if t.stamp = s0 then Condition.wait t.changed t.mutex;
                  Mutex.unlock t.mutex
                end
            | _ -> Mutex.unlock t.mutex));
        loop ()
  in
  loop ()

let await fut =
  match await_result fut with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let create ?(obs = Obs.disabled) ?(chaos = Chaos.disabled)
    ?(degrade_after = 3) ?(policy = Synchronous) ?jobs () =
  (* The one place [jobs] is sanitised: clamped to at least 1, for every
     client uniformly ([Domain_pool] included); [Serial] runs everything
     on the caller, so it forces a single worker and spawns nothing. *)
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs = match policy with Serial -> 1 | Synchronous | Asynchronous _ -> jobs in
  let t =
    {
      id = Atomic.fetch_and_add next_exec_id 1;
      jobs;
      pol = policy;
      deques = Array.init jobs (fun _ -> Ws_deque.create ());
      mutex = Mutex.create ();
      changed = Condition.create ();
      stamp = 0;
      stopping = false;
      domains = [];
      chaos;
      heartbeat = Array.init jobs (fun _ -> Atomic.make 0);
      dead = Array.make jobs false;
      reinject = Queue.create ();
      last_hb = Array.make jobs (-1);
      stall_strikes = Array.make jobs 0;
      failures = 0;
      degrade_after = max 1 degrade_after;
      n_crashes = 0;
      n_stalls = 0;
      n_degraded = 0;
      obs;
      c_tasks = Obs.counter obs "exec.tasks";
      c_retries = Obs.counter obs "exec.retries";
      c_steals = Obs.counter obs "exec.steals";
      c_backpressure = Obs.counter obs "exec.backpressure";
      c_crashes = Obs.counter obs "exec.worker_crashes";
      c_stalls = Obs.counter obs "exec.worker_stalls";
      c_degraded = Obs.counter obs "exec.degraded";
      g_inflight = Obs.gauge obs "exec.inflight_max";
    }
  in
  t.domains <-
    List.init (jobs - 1) (fun w ->
        Domain.spawn (fun () ->
            Obs.set_lane obs
              ~tid:(Domain.self () :> int)
              (Printf.sprintf "exec-worker-%d" (w + 1));
            Domain.DLS.set dls_worker (t.id, w + 1);
            try worker_loop t (w + 1)
            with _ -> worker_died t (w + 1)));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  t.stamp <- t.stamp + 1;
  Condition.broadcast t.changed;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_executor ?obs ?chaos ?degrade_after ?policy ?jobs f =
  let t = create ?obs ?chaos ?degrade_after ?policy ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let worker_crashes t =
  Mutex.lock t.mutex;
  let n = t.n_crashes in
  Mutex.unlock t.mutex;
  n

let worker_stalls t =
  Mutex.lock t.mutex;
  let n = t.n_stalls in
  Mutex.unlock t.mutex;
  n

let degradations t =
  Mutex.lock t.mutex;
  let n = t.n_degraded in
  Mutex.unlock t.mutex;
  n

let alive_workers t =
  Mutex.lock t.mutex;
  let n = ref 1 in
  for w = 1 to t.jobs - 1 do
    if not t.dead.(w) then incr n
  done;
  Mutex.unlock t.mutex;
  !n

(* --- the batch layer: windowed map with failure isolation -------------- *)

let batch_window t ~total =
  match t.pol with
  | Serial -> 1
  | Synchronous -> total
  | Asynchronous { max_active; _ } -> max 1 max_active

let map_result t ?(retries = 0) f input =
  let total = Array.length input in
  if total = 0 then Ok [||]
  else begin
    if t.stopping then invalid_arg "Executor.map: executor is shut down";
    let window = batch_window t ~total in
    let results = Array.make total None in
    (* first (lowest-index) final error wins, so failures are
       deterministic regardless of which domain hit them *)
    let error = ref None in
    let cancelled = Atomic.make false in
    let record_error (e : batch_error) =
      Mutex.lock t.mutex;
      (match !error with
      | Some prev when prev.index <= e.index -> ()
      | _ -> error := Some e);
      Mutex.unlock t.mutex;
      Atomic.set cancelled true
    in
    let run_item i =
      (* After cancellation a task completes as a no-op: [f] is never
         called, so a poisoned item costs at most the in-flight window
         beyond itself.  Dispatch is FIFO in index order, so the overall
         lowest failing index always runs before cancellation can skip
         it — the reported error is deterministic. *)
      if not (Atomic.get cancelled) then begin
        let rec attempt k =
          if k > 1 then Obs.Counter.incr t.c_retries;
          match f input.(i) with
          | v -> results.(i) <- Some v
          | exception exn ->
              let backtrace = Printexc.get_raw_backtrace () in
              if k <= retries then attempt (k + 1)
              else
                record_error { index = i; attempts = k; error = exn; backtrace }
        in
        attempt 1
      end
    in
    let futs = Array.make total None in
    let submitted = ref 0 and consumed = ref 0 in
    while !consumed < total do
      while
        !submitted < total
        && !submitted - !consumed < window
        && not (Atomic.get cancelled)
      do
        let i = !submitted in
        futs.(i) <- Some (submit t (fun () -> run_item i));
        incr submitted
      done;
      Obs.Gauge.max_ t.g_inflight (!submitted - !consumed);
      if
        !submitted < total
        && !submitted - !consumed >= window
        && not (Atomic.get cancelled)
      then note_backpressure t;
      if !consumed < !submitted then begin
        (match futs.(!consumed) with
        | Some fu ->
            await fu;
            futs.(!consumed) <- None
        | None -> assert false);
        incr consumed
      end
      else
        (* cancelled with nothing left in flight: the rest never runs *)
        consumed := total
    done;
    match !error with
    | Some e -> Error e
    | None ->
        Ok
          (Array.map
             (function Some v -> v | None -> assert false (* every item ran *))
             results)
  end

let map t ?retries f input =
  match map_result t ?retries f input with
  | Ok out -> out
  | Error e -> Printexc.raise_with_backtrace e.error e.backtrace

let map_list t f input = Array.to_list (map t f (Array.of_list input))
