module Make (H : Hashtbl.HashedType) = struct
  module Tbl = Hashtbl.Make (H)

  type 'a t = { tables : 'a Tbl.t array; mask : int }

  (* Shard count is rounded up to a power of two so [shard_of] is a mask,
     not a division — and, more importantly, so the key → shard map is a
     function of the key alone, independent of how many workers happen to
     run.  That independence is what lets callers prove determinism: the
     partition of keys never changes, only who owns each part. *)
  let shards_for want =
    let want = max 1 want in
    let s = ref 1 in
    while !s < want do
      s := 2 * !s
    done;
    !s

  let create ~shards n =
    let shards = shards_for shards in
    { tables = Array.init shards (fun _ -> Tbl.create n); mask = shards - 1 }

  let shards t = Array.length t.tables
  let shard_of t k = H.hash k land t.mask
  let find_opt t k = Tbl.find_opt t.tables.(shard_of t k) k
  let add t k v = Tbl.add t.tables.(shard_of t k) k v

  let find_opt_in t ~shard k = Tbl.find_opt t.tables.(shard) k
  let add_in t ~shard k v = Tbl.add t.tables.(shard) k v

  let length t =
    Array.fold_left (fun acc tbl -> acc + Tbl.length tbl) 0 t.tables

  let shard_lengths t = Array.map Tbl.length t.tables

  let iter f t = Array.iter (Tbl.iter f) t.tables
end
