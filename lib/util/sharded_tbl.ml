module Make (H : Hashtbl.HashedType) = struct
  module Tbl = Hashtbl.Make (H)

  type 'a t = { tables : 'a Tbl.t array; mask : int }

  (* Shard count is rounded up to a power of two so [shard_of] is a mask,
     not a division — and, more importantly, so the key → shard map is a
     function of the key alone, independent of how many workers happen to
     run.  That independence is what lets callers prove determinism: the
     partition of keys never changes, only who owns each part. *)
  let shards_for want =
    let want = max 1 want in
    let s = ref 1 in
    while !s < want do
      s := 2 * !s
    done;
    !s

  let create ~shards n =
    let shards = shards_for shards in
    { tables = Array.init shards (fun _ -> Tbl.create n); mask = shards - 1 }

  let shards t = Array.length t.tables
  let shard_of t k = H.hash k land t.mask
  let find_opt t k = Tbl.find_opt t.tables.(shard_of t k) k
  let add t k v = Tbl.add t.tables.(shard_of t k) k v

  let find_opt_in t ~shard k = Tbl.find_opt t.tables.(shard) k
  let add_in t ~shard k v = Tbl.add t.tables.(shard) k v

  let length t =
    Array.fold_left (fun acc tbl -> acc + Tbl.length tbl) 0 t.tables

  let shard_lengths t = Array.map Tbl.length t.tables

  let iter f t = Array.iter (Tbl.iter f) t.tables
end

module Level_log = struct
  type t = {
    mutable closed : int array;
        (* word count of each closed (spilled) level, by level index *)
    mutable nclosed : int;
    tail : int Vec.t;  (* the resident open level *)
    mutable spilled : int;  (* total words across closed levels *)
    threshold : int option;
  }

  let create ?threshold_words () =
    (match threshold_words with
    | Some w when w < 0 -> invalid_arg "Level_log.create: negative threshold"
    | _ -> ());
    {
      closed = [||];
      nclosed = 0;
      tail = Vec.create ~dummy:0 ();
      spilled = 0;
      threshold = threshold_words;
    }

  let of_array ?threshold_words a =
    let t = create ?threshold_words () in
    Array.iter (Vec.push t.tail) a;
    t

  let push t x = Vec.push t.tail x
  let resident_words t = Vec.length t.tail
  let spilled_words t = t.spilled
  let spilled_levels t = t.nclosed
  let length t = t.spilled + Vec.length t.tail

  let seal t =
    match t.threshold with
    | Some w when Vec.length t.tail >= w && Vec.length t.tail > 0 ->
        let level = t.nclosed in
        let data = Vec.to_array t.tail in
        if level >= Array.length t.closed then begin
          let grown = Array.make (max 4 (2 * Array.length t.closed)) 0 in
          Array.blit t.closed 0 grown 0 t.nclosed;
          t.closed <- grown
        end;
        t.closed.(level) <- Array.length data;
        t.nclosed <- level + 1;
        t.spilled <- t.spilled + Array.length data;
        Vec.clear t.tail;
        Some (level, data)
    | _ -> None

  let iter_stored ~fetch t f =
    let off = ref 0 in
    for level = 0 to t.nclosed - 1 do
      let data = fetch ~level in
      if Array.length data <> t.closed.(level) then
        invalid_arg
          (Printf.sprintf
             "Level_log: fetched level %d has %d words, expected %d" level
             (Array.length data) t.closed.(level));
      f !off data;
      off := !off + Array.length data
    done;
    f !off (Vec.to_array t.tail)

  let to_array ~fetch t =
    let out = Array.make (length t) 0 in
    iter_stored ~fetch t (fun off data ->
        Array.blit data 0 out off (Array.length data));
    out

  let to_bigarray ~fetch t =
    let out =
      Bigarray.Array1.create Bigarray.int Bigarray.c_layout (length t)
    in
    iter_stored ~fetch t (fun off data ->
        for i = 0 to Array.length data - 1 do
          out.{off + i} <- data.(i)
        done);
    out
end
