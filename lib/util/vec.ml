type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max 1 capacity) dummy; len = 0; dummy }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- x

let ensure_capacity t n =
  if n > Array.length t.data then begin
    let cap = ref (Array.length t.data) in
    while !cap < n do
      cap := 2 * !cap
    done;
    let data = Array.make !cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure_capacity t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let set_grow t i x =
  if i < 0 then invalid_arg "Vec.set_grow: negative index";
  if i >= t.len then begin
    ensure_capacity t (i + 1);
    Array.fill t.data t.len (i - t.len) t.dummy;
    t.len <- i + 1
  end;
  t.data.(i) <- x

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop: empty";
  t.len <- t.len - 1;
  let x = t.data.(t.len) in
  t.data.(t.len) <- t.dummy;
  x

let clear t = t.len <- 0
let to_array t = Array.sub t.data 0 t.len

let of_array ~dummy a =
  { data = (if Array.length a = 0 then [| dummy |] else Array.copy a);
    len = Array.length a;
    dummy }

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done
