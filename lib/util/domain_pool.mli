(** A reusable pool of OCaml 5 domains behind a [Mutex]/[Condition] work
    queue — the parallel half of the run-core layer.

    The sweep harness and the experiments registry push independent
    (adversary × identifier-assignment × n) cells through {!map}; results
    come back merged by input index, so output is deterministic and
    byte-identical whatever the pool size.  Cells must be self-contained:
    derive PRNG seeds per cell (as {!Asyncolor_experiments.Harness} does)
    and share no mutable state across cells.

    A pool runs one {!map} at a time; the calling domain participates in
    draining the batch, so [create ~jobs:n] spawns only [n - 1] domains
    and [jobs = 1] executes sequentially on the caller with no domain
    spawned at all.  Nested or concurrent [map] calls on the same pool
    raise [Invalid_argument].

    {b Failure isolation.}  An item that raises is retried up to
    [retries] times (default 0).  Once an item's error is final the batch
    is {e cancelled}: no further items are handed out, only the at most
    [jobs] in-flight items are awaited — one poisoned item no longer pays
    for the whole remaining batch.  Because items are handed out in index
    order, the overall lowest failing index is always dispatched before
    cancellation can skip anything below it, so the reported failure is
    deterministic regardless of domain scheduling.  The pool itself stays
    usable after a failed batch. *)

type t

type item_error = {
  index : int;  (** input index whose execution failed *)
  attempts : int;  (** executions performed, retries included *)
  error : exn;  (** the exception of the final attempt *)
  backtrace : Printexc.raw_backtrace;  (** backtrace of the final attempt *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : ?obs:Asyncolor_obs.Obs.t -> ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (clamped to at
    least 1 job; default {!default_jobs}).  The pool is reusable across
    many {!map} calls until {!shutdown}.

    [obs] (default {!Asyncolor_obs.Obs.disabled}) traces the pool: every
    item execution is a ["pool.item"] span on the executing domain's
    lane, the gap between a worker's items is a ["pool.wait"] interval,
    the caller's wait for stragglers a ["pool.join"] interval, and the
    ["pool.items"]/["pool.retries"] counters accumulate executions —
    per-domain sharded, so the fan-out never contends on them.  Worker
    lanes are named [pool-worker-N] in exported traces. *)

val jobs : t -> int

val map : t -> ?retries:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with deterministic result order: output index
    [i] always holds [f input.(i)].  On failure the batch is cancelled
    (see above) and the {e lowest}-index final error is re-raised with
    its backtrace.  [retries] re-runs a failing item that many extra
    times before its error becomes final. *)

val map_result :
  t -> ?retries:int -> ('a -> 'b) -> 'a array -> ('b array, item_error) result
(** Like {!map} but returns the lowest-index final error — index, attempt
    count, exception and backtrace — instead of raising. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists, preserving order. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Safe to call while or after a
    batch has failed.  Subsequent {!map} calls raise [Invalid_argument]. *)

val with_pool : ?obs:Asyncolor_obs.Obs.t -> ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down,
    including on exceptions.  [obs] as in {!create}. *)
