(** Fork-join parallel map — a thin facade over {!Executor} pinned to
    the [Synchronous] policy, kept for the many clients that want "run
    this batch on [jobs] domains and give me the results in order"
    without naming a policy.

    The sweep harness and the experiments registry push independent
    (adversary × identifier-assignment × n) cells through {!map}; results
    come back merged by input index, so output is deterministic and
    byte-identical whatever the pool size.  Cells must be self-contained:
    derive PRNG seeds per cell (as {!Asyncolor_experiments.Harness} does)
    and share no mutable state across cells.

    A pool of [jobs] runs [jobs] items concurrently with only [jobs - 1]
    spawned domains — the calling domain participates in draining the
    batch while it waits — and [jobs = 1] executes sequentially on the
    caller with no domain spawned at all.

    {b Failure isolation} (see {!Executor.map_result}, which implements
    it).  An item that raises is retried up to [retries] times (default
    0).  Once an item's error is final the batch is {e cancelled}: tasks
    not yet started complete as no-ops, only in-flight items run to
    completion — one poisoned item no longer pays for the whole
    remaining batch.  Because items are dispatched in index order, the
    overall lowest failing index is always executed before cancellation
    can skip anything below it, so the reported failure is deterministic
    regardless of domain scheduling.  The pool stays usable after a
    failed batch. *)

type t = Executor.t

type item_error = Executor.batch_error = {
  index : int;  (** input index whose execution failed *)
  attempts : int;  (** executions performed, retries included *)
  error : exn;  (** the exception of the final attempt *)
  backtrace : Printexc.raw_backtrace;  (** backtrace of the final attempt *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : ?obs:Asyncolor_obs.Obs.t -> ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains.  [jobs] is
    clamped to at least 1 {e at the executor boundary}
    ({!Executor.create}), so [~jobs:0] and negatives behave as
    [~jobs:1]; default {!default_jobs}.  The pool is reusable across
    many {!map} calls until {!shutdown}.

    [obs] (default {!Asyncolor_obs.Obs.disabled}) traces execution
    through the executor's lanes: every item is an ["exec.task"] span on
    the executing domain's lane, worker idle gaps are ["exec.wait"]
    intervals, and the ["exec.tasks"]/["exec.retries"]/["exec.steals"]
    counters accumulate per-domain sharded.  Worker lanes are named
    [exec-worker-N] in exported traces. *)

val jobs : t -> int

val map : t -> ?retries:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with deterministic result order: output index
    [i] always holds [f input.(i)].  On failure the batch is cancelled
    (see above) and the {e lowest}-index final error is re-raised with
    its backtrace.  [retries] re-runs a failing item that many extra
    times before its error becomes final. *)

val map_result :
  t -> ?retries:int -> ('a -> 'b) -> 'a array -> ('b array, item_error) result
(** Like {!map} but returns the lowest-index final error — index, attempt
    count, exception and backtrace — instead of raising. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists, preserving order. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Safe to call while or after a
    batch has failed.  Subsequent {!map} calls raise [Invalid_argument]. *)

val with_pool : ?obs:Asyncolor_obs.Obs.t -> ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down,
    including on exceptions.  [obs] as in {!create}. *)
