(** A reusable pool of OCaml 5 domains behind a [Mutex]/[Condition] work
    queue — the parallel half of the run-core layer.

    The sweep harness and the experiments registry push independent
    (adversary × identifier-assignment × n) cells through {!map}; results
    come back merged by input index, so output is deterministic and
    byte-identical whatever the pool size.  Cells must be self-contained:
    derive PRNG seeds per cell (as {!Asyncolor_experiments.Harness} does)
    and share no mutable state across cells.

    A pool runs one {!map} at a time; the calling domain participates in
    draining the batch, so [create ~jobs:n] spawns only [n - 1] domains
    and [jobs = 1] executes sequentially on the caller with no domain
    spawned at all.  Nested or concurrent [map] calls on the same pool
    raise [Invalid_argument]. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (clamped to at
    least 1 job; default {!default_jobs}).  The pool is reusable across
    many {!map} calls until {!shutdown}. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with deterministic result order: output index
    [i] always holds [f input.(i)].  If any [f] raises, the whole batch
    still drains, then the exception of the {e lowest} failing index is
    re-raised (with its backtrace) — deterministic regardless of domain
    scheduling. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists, preserving order. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Subsequent {!map} calls raise
    [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down,
    including on exceptions. *)
