(** A growable FIFO ring addressed by {e absolute position}: element
    positions count up from [start] forever and never shift, so a client
    whose positions are meaningful ids — the explorer's dense
    configuration ids — indexes pending entries directly, no offset
    arithmetic.  The live window is [[lo, hi)]; {!push} appends at [hi],
    {!drop} retires the front (clearing the slot for the GC). *)

type 'a t

val create : ?capacity:int -> ?start:int -> dummy:'a -> unit -> 'a t
(** An empty ring whose first pushed element will be position [start]
    (default 0).  [dummy] fills unused slots. *)

val lo : 'a t -> int
(** Position of the front element (equals {!hi} when empty). *)

val hi : 'a t -> int
(** One past the last pushed position. *)

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** [get t p] is the element at absolute position [p].
    @raise Invalid_argument outside [[lo, hi)]. *)

val push : 'a t -> 'a -> unit
(** Append at position {!hi}. *)

val drop : 'a t -> unit
(** Retire the front element.
    @raise Invalid_argument when empty. *)
