(* A growable FIFO ring addressed by absolute position: pushes are
   numbered [start, start+1, ...] forever, drops advance the low end, and
   [get] takes the absolute position — so a client whose positions are
   meaningful ids (the explorer's dense config ids) needs no offset
   arithmetic.  Dropped slots are overwritten with the dummy so the ring
   never retains a popped element for the GC. *)

type 'a t = {
  mutable buf : 'a array;  (* length is a power of two *)
  mutable lo : int;  (* absolute position of the front *)
  mutable hi : int;  (* absolute position one past the back *)
  dummy : 'a;
}

let create ?(capacity = 16) ?(start = 0) ~dummy () =
  let cap = ref 16 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  { buf = Array.make !cap dummy; lo = start; hi = start; dummy }

let lo t = t.lo
let hi t = t.hi
let length t = t.hi - t.lo

let get t p =
  if p < t.lo || p >= t.hi then
    invalid_arg
      (Printf.sprintf "Ring.get: position %d outside [%d, %d)" p t.lo t.hi);
  t.buf.(p land (Array.length t.buf - 1))

let grow t =
  let osz = Array.length t.buf in
  let nw = Array.make (2 * osz) t.dummy in
  for p = t.lo to t.hi - 1 do
    nw.(p land ((2 * osz) - 1)) <- t.buf.(p land (osz - 1))
  done;
  t.buf <- nw

let push t x =
  if t.hi - t.lo >= Array.length t.buf then grow t;
  t.buf.(t.hi land (Array.length t.buf - 1)) <- x;
  t.hi <- t.hi + 1

let drop t =
  if t.lo >= t.hi then invalid_arg "Ring.drop: empty";
  t.buf.(t.lo land (Array.length t.buf - 1)) <- t.dummy;
  t.lo <- t.lo + 1
