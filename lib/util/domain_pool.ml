(* A thin fork-join facade over the async execution core: a "pool" is an
   {!Executor.t} pinned to the [Synchronous] policy, so [map] queues the
   whole batch and joins — exactly the old Mutex/Condition pool's
   semantics (caller drains alongside jobs - 1 domains, lowest-index
   error, batch cancellation, retries), now riding the work-stealing
   deques.  Jobs clamping lives in [Executor.create], the one sanitation
   point for every client. *)

type t = Executor.t

type item_error = Executor.batch_error = {
  index : int;
  attempts : int;
  error : exn;
  backtrace : Printexc.raw_backtrace;
}

let default_jobs = Executor.default_jobs

let create ?obs ?jobs () =
  Executor.create ?obs ~policy:Executor.Synchronous ?jobs ()

let jobs = Executor.jobs
let map_result = Executor.map_result
let map = Executor.map
let map_list = Executor.map_list
let shutdown = Executor.shutdown

let with_pool ?obs ?jobs f =
  Executor.with_executor ?obs ~policy:Executor.Synchronous ?jobs f
