(* A fixed-size pool of OCaml 5 domains fed through a Mutex/Condition work
   queue.  One batch (a [map] call) is in flight at a time; its items are
   drained by the worker domains *and* the calling domain, so a pool of
   [jobs] runs [jobs] items concurrently with only [jobs - 1] spawned
   domains, and [jobs = 1] degenerates to a plain sequential loop.

   Failure isolation: an item that raises is retried up to [retries]
   times; once its error is final the batch is cancelled — no further
   items are handed out ([next_item]/[drain] short-circuit on [failed]) —
   and the in-flight items are merely awaited, so one poisoned item costs
   at most [jobs] item executions beyond itself instead of the whole
   remaining batch.  The recorded error keeps the lowest failing index:
   items are handed out in index order, so the overall lowest failing
   index is always dispatched (and hence recorded) before cancellation
   can skip it — failures stay deterministic whatever the domain
   scheduling. *)

module Obs = Asyncolor_obs.Obs

type item_error = {
  index : int;  (* input index whose execution failed *)
  attempts : int;  (* executions performed, retries included *)
  error : exn;
  backtrace : Printexc.raw_backtrace;
}

type batch = {
  run_item : int -> unit;  (* never raises; errors are recorded *)
  total : int;
  mutable next : int;  (* next item index to hand out *)
  mutable active : int;  (* items handed out and still executing *)
  mutable finished : int;  (* items fully executed *)
  mutable failed : bool;  (* a final error was recorded: stop dispensing *)
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  mutable batch : batch option;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  (* observability: spans land on the executing domain's lane, so a trace
     shows one compute/wait timeline per pool domain; counters are
     per-domain sharded in the sink and merged on read *)
  obs : Obs.t;
  c_items : Obs.Counter.t;
  c_retries : Obs.Counter.t;
}

let default_jobs () = Domain.recommended_domain_count ()
let jobs t = t.jobs

(* A batch is complete when nothing more will run: every item ran, or the
   batch failed and the in-flight items have landed. *)
let batch_complete b = b.active = 0 && (b.failed || b.next >= b.total)

(* Grab the next item index of the current batch, or block until work
   arrives.  Called with [t.mutex] held; returns with it released. *)
let rec next_item t =
  if t.stopping then begin
    Mutex.unlock t.mutex;
    None
  end
  else
    match t.batch with
    | Some b when (not b.failed) && b.next < b.total ->
        let i = b.next in
        b.next <- i + 1;
        b.active <- b.active + 1;
        Mutex.unlock t.mutex;
        Some (b, i)
    | _ ->
        Condition.wait t.work_available t.mutex;
        next_item t

let finish_item t b =
  Mutex.lock t.mutex;
  b.active <- b.active - 1;
  b.finished <- b.finished + 1;
  if batch_complete b then Condition.broadcast t.batch_done;
  Mutex.unlock t.mutex

let rec worker t =
  (* The time between finishing one item and receiving the next is queue
     wait — exported as a "pool.wait" interval on this domain's lane, so
     a trace separates starvation from compute. *)
  let t0 = Obs.now t.obs in
  Mutex.lock t.mutex;
  match next_item t with
  | None -> ()
  | Some (b, i) ->
      Obs.interval t.obs "pool.wait" ~start:t0;
      b.run_item i;
      finish_item t b;
      worker t

let create ?(obs = Obs.disabled) ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      batch = None;
      stopping = false;
      domains = [];
      obs;
      c_items = Obs.counter obs "pool.items";
      c_retries = Obs.counter obs "pool.retries";
    }
  in
  t.domains <-
    List.init (jobs - 1) (fun w ->
        Domain.spawn (fun () ->
            Obs.set_lane obs
              ~tid:(Domain.self () :> int)
              (Printf.sprintf "pool-worker-%d" (w + 1));
            worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let map_result t ?(retries = 0) f input =
  let total = Array.length input in
  if total = 0 then Ok [||]
  else begin
    let results = Array.make total None in
    (* first (lowest-index) final error wins, so failures are deterministic
       regardless of which domain hit them *)
    let error = ref None in
    let rec batch =
      { run_item; total; next = 0; active = 0; finished = 0; failed = false }
    and record_error e =
      Mutex.lock t.mutex;
      (match !error with
      | Some prev when prev.index <= e.index -> ()
      | _ -> error := Some e);
      batch.failed <- true;
      Mutex.unlock t.mutex
    and run_item i =
      let rec attempt k =
        Obs.Counter.incr (if k = 1 then t.c_items else t.c_retries);
        match f input.(i) with
        | v -> results.(i) <- Some v
        | exception exn ->
            let backtrace = Printexc.get_raw_backtrace () in
            if k <= retries then attempt (k + 1)
            else record_error { index = i; attempts = k; error = exn; backtrace }
      in
      if Obs.enabled t.obs then
        Obs.span t.obs
          ~args:[ ("item", string_of_int i) ]
          "pool.item"
          (fun () -> attempt 1)
      else attempt 1
    in
    Mutex.lock t.mutex;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg "Domain_pool.map: pool is shut down"
    end;
    if t.batch <> None then begin
      Mutex.unlock t.mutex;
      invalid_arg "Domain_pool.map: pool already has a batch in flight"
    end;
    t.batch <- Some batch;
    Condition.broadcast t.work_available;
    (* the calling domain drains items alongside the workers *)
    let rec drain () =
      if (not batch.failed) && batch.next < batch.total then begin
        let i = batch.next in
        batch.next <- i + 1;
        batch.active <- batch.active + 1;
        Mutex.unlock t.mutex;
        batch.run_item i;
        Mutex.lock t.mutex;
        batch.active <- batch.active - 1;
        batch.finished <- batch.finished + 1;
        if batch_complete batch then Condition.broadcast t.batch_done;
        drain ()
      end
    in
    drain ();
    let join0 = Obs.now t.obs in
    while not (batch_complete batch) do
      Condition.wait t.batch_done t.mutex
    done;
    Obs.interval t.obs "pool.join" ~start:join0;
    t.batch <- None;
    Mutex.unlock t.mutex;
    match !error with
    | Some e -> Error e
    | None ->
        Ok
          (Array.map
             (function Some v -> v | None -> assert false (* every item ran *))
             results)
  end

let map t ?retries f input =
  match map_result t ?retries f input with
  | Ok out -> out
  | Error e -> Printexc.raise_with_backtrace e.error e.backtrace

let map_list t f input = Array.to_list (map t f (Array.of_list input))

let with_pool ?obs ?jobs f =
  let t = create ?obs ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
