(* A fixed-size pool of OCaml 5 domains fed through a Mutex/Condition work
   queue.  One batch (a [map] call) is in flight at a time; its items are
   drained by the worker domains *and* the calling domain, so a pool of
   [jobs] runs [jobs] items concurrently with only [jobs - 1] spawned
   domains, and [jobs = 1] degenerates to a plain sequential loop. *)

type batch = {
  run_item : int -> unit;  (* never raises; exceptions are recorded *)
  total : int;
  mutable next : int;  (* next item index to hand out *)
  mutable finished : int;  (* items fully executed *)
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  mutable batch : batch option;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()
let jobs t = t.jobs

(* Grab the next item index of the current batch, or block until work
   arrives.  Called with [t.mutex] held; returns with it released. *)
let rec next_item t =
  if t.stopping then begin
    Mutex.unlock t.mutex;
    None
  end
  else
    match t.batch with
    | Some b when b.next < b.total ->
        let i = b.next in
        b.next <- i + 1;
        Mutex.unlock t.mutex;
        Some (b, i)
    | _ ->
        Condition.wait t.work_available t.mutex;
        next_item t

let finish_item t b =
  Mutex.lock t.mutex;
  b.finished <- b.finished + 1;
  if b.finished = b.total then Condition.broadcast t.batch_done;
  Mutex.unlock t.mutex

let rec worker t =
  Mutex.lock t.mutex;
  match next_item t with
  | None -> ()
  | Some (b, i) ->
      b.run_item i;
      finish_item t b;
      worker t

let create ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      batch = None;
      stopping = false;
      domains = [];
    }
  in
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let map t f input =
  let total = Array.length input in
  if total = 0 then [||]
  else begin
    let results = Array.make total None in
    (* first (lowest-index) exception wins, so failures are deterministic
       regardless of which domain hit them *)
    let error = ref None in
    let record_error i exn bt =
      Mutex.lock t.mutex;
      (match !error with
      | Some (j, _, _) when j <= i -> ()
      | _ -> error := Some (i, exn, bt));
      Mutex.unlock t.mutex
    in
    let run_item i =
      match f input.(i) with
      | v -> results.(i) <- Some v
      | exception exn -> record_error i exn (Printexc.get_raw_backtrace ())
    in
    let b = { run_item; total; next = 0; finished = 0 } in
    Mutex.lock t.mutex;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg "Domain_pool.map: pool is shut down"
    end;
    if t.batch <> None then begin
      Mutex.unlock t.mutex;
      invalid_arg "Domain_pool.map: pool already has a batch in flight"
    end;
    t.batch <- Some b;
    Condition.broadcast t.work_available;
    (* the calling domain drains items alongside the workers *)
    let rec drain () =
      if b.next < b.total then begin
        let i = b.next in
        b.next <- i + 1;
        Mutex.unlock t.mutex;
        b.run_item i;
        Mutex.lock t.mutex;
        b.finished <- b.finished + 1;
        if b.finished = b.total then Condition.broadcast t.batch_done;
        drain ()
      end
    in
    drain ();
    while b.finished < b.total do
      Condition.wait t.batch_done t.mutex
    done;
    t.batch <- None;
    Mutex.unlock t.mutex;
    match !error with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None ->
        Array.map
          (function Some v -> v | None -> assert false (* every item ran *))
          results
  end

let map_list t f input = Array.to_list (map t f (Array.of_list input))

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
