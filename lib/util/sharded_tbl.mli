(** A hash table split into independent shards by key hash — the
    sharded-interning substrate of the parallel explorer.

    Shard ownership is a pure function of the key ([hash k land (shards-1)],
    with the shard count rounded up to a power of two), so the partition of
    the key space is fixed at creation and never depends on scheduling.  A
    group of workers that (a) agrees on the shard count and (b) lets each
    worker touch only its own shards needs no locks at all: two workers
    never access the same underlying [Hashtbl].

    The plain {!find_opt}/{!add} entry points route to the owning shard and
    are safe for single-domain use; the [_in] variants take the shard
    explicitly for the partitioned-parallel pattern (the caller computed
    {!shard_of} already and is responsible for staying inside its shard). *)

module Make (H : Hashtbl.HashedType) : sig
  type 'a t

  val create : shards:int -> int -> 'a t
  (** [create ~shards n] makes a table of [shards] (rounded up to a power
      of two, at least 1) shards, each with initial capacity [n]. *)

  val shards : 'a t -> int
  val shard_of : 'a t -> H.t -> int

  val find_opt : 'a t -> H.t -> 'a option
  val add : 'a t -> H.t -> 'a -> unit

  val find_opt_in : 'a t -> shard:int -> H.t -> 'a option
  (** [find_opt_in t ~shard k] looks [k] up in [shard] directly.  Only
      meaningful when [shard = shard_of t k]. *)

  val add_in : 'a t -> shard:int -> H.t -> 'a -> unit

  val length : 'a t -> int
  (** Total bindings over all shards. *)

  val shard_lengths : 'a t -> int array
  (** Bindings per shard, by shard index — occupancy skew is the number
      that tells whether the key hash is spreading the intern load
      (exported as a gauge by the explorer's obs instrumentation).
      Single-domain use only, like {!iter}. *)

  val iter : (H.t -> 'a -> unit) -> 'a t -> unit
  (** Iterate every binding, shard by shard, in unspecified order (the
      explorer's checkpoint writer re-indexes by value, so the order does
      not leak into any output).  Single-domain use only. *)
end
