(** A hash table split into independent shards by key hash — the
    sharded-interning substrate of the parallel explorer.

    Shard ownership is a pure function of the key ([hash k land (shards-1)],
    with the shard count rounded up to a power of two), so the partition of
    the key space is fixed at creation and never depends on scheduling.  A
    group of workers that (a) agrees on the shard count and (b) lets each
    worker touch only its own shards needs no locks at all: two workers
    never access the same underlying [Hashtbl].

    The plain {!find_opt}/{!add} entry points route to the owning shard and
    are safe for single-domain use; the [_in] variants take the shard
    explicitly for the partitioned-parallel pattern (the caller computed
    {!shard_of} already and is responsible for staying inside its shard). *)

module Make (H : Hashtbl.HashedType) : sig
  type 'a t

  val create : shards:int -> int -> 'a t
  (** [create ~shards n] makes a table of [shards] (rounded up to a power
      of two, at least 1) shards, each with initial capacity [n]. *)

  val shards : 'a t -> int
  val shard_of : 'a t -> H.t -> int

  val find_opt : 'a t -> H.t -> 'a option
  val add : 'a t -> H.t -> 'a -> unit

  val find_opt_in : 'a t -> shard:int -> H.t -> 'a option
  (** [find_opt_in t ~shard k] looks [k] up in [shard] directly.  Only
      meaningful when [shard = shard_of t k]. *)

  val add_in : 'a t -> shard:int -> H.t -> 'a -> unit

  val length : 'a t -> int
  (** Total bindings over all shards. *)

  val shard_lengths : 'a t -> int array
  (** Bindings per shard, by shard index — occupancy skew is the number
      that tells whether the key hash is spreading the intern load
      (exported as a gauge by the explorer's obs instrumentation).
      Single-domain use only, like {!iter}. *)

  val iter : (H.t -> 'a -> unit) -> 'a t -> unit
  (** Iterate every binding, shard by shard, in unspecified order (the
      explorer's checkpoint writer re-indexes by value, so the order does
      not leak into any output).  Single-domain use only. *)
end

(** An append-only log of machine words whose closed prefix can leave the
    heap — the spill half of the sharded-interning substrate.

    The explorer's dominant allocation is not the intern table (which must
    stay resident: every new configuration is looked up against it) but
    the append-only adjacency stream of already-merged BFS levels, which
    is never read again until the post-BFS analyses.  A [Level_log] keeps
    an open {e tail} level in a resident vector and, at caller-chosen safe
    boundaries ({!seal}), closes the tail once it crosses the spill
    threshold: the log forgets the payload and remembers only its word
    count, handing the caller the snapshot to persist (the explorer writes
    it through {!Asyncolor_resilience.Spill} — possibly on a background
    executor task while the pipeline keeps expanding).  Reassembly
    ({!to_array}/{!to_bigarray}) streams the closed levels back through a
    caller-supplied [fetch], so this module never touches the filesystem
    itself and stays deterministic and trivially testable. *)
module Level_log : sig
  type t

  val create : ?threshold_words:int -> unit -> t
  (** A fresh log.  Without [threshold_words], {!seal} never closes a
      level and the log degenerates to a plain resident vector.
      @raise Invalid_argument on a negative threshold. *)

  val of_array : ?threshold_words:int -> int array -> t
  (** A log whose tail starts as a copy of the array — how a resumed
      explorer rebuilds its adjacency stream from a checkpoint. *)

  val push : t -> int -> unit
  (** Append one word to the resident tail. *)

  val length : t -> int
  (** Total words, closed levels included — the stable absolute offset of
      the next {!push}, which is what the explorer stores in its CSR
      row-offset array. *)

  val resident_words : t -> int
  val spilled_words : t -> int
  val spilled_levels : t -> int

  val seal : t -> (int * int array) option
  (** Close the tail as level [spilled_levels t] if it has reached the
      threshold, returning [(level, words)] for the caller to persist —
      the log itself drops the payload.  [None] when the tail is below
      threshold, empty, or no threshold was given.  Call only at points
      where every word pushed so far is final. *)

  val to_array : fetch:(level:int -> int array) -> t -> int array
  (** Reassemble the whole stream; [fetch] supplies each closed level's
      words (it must return exactly the sealed snapshot —
      @raise Invalid_argument on a length mismatch, the cheap second line
      of defence behind the spill file's checksum). *)

  val to_bigarray :
    fetch:(level:int -> int array) ->
    t ->
    (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
  (** Like {!to_array} but into off-heap storage, so the post-BFS
      analyses of a spilled run never pull the full stream back into the
      OCaml heap (the GC neither scans nor accounts it). *)
end
