(** The async execution core: per-worker work-stealing deques, futures,
    and policy-driven in-flight windows — every parallel path in the repo
    (explorer BFS, fuzz campaigns, lockhunt slices, the sweep harness,
    {!Domain_pool}) runs on this one engine.

    {b Shape.}  An executor owns [jobs] Chase–Lev deques — one per worker
    domain plus one ([0]) for the submitting caller — and [jobs - 1]
    spawned domains.  {!submit} pushes a task onto the submitter's deque
    and returns a {!future}; idle workers pop their own deque LIFO and
    steal from everyone else's top FIFO (a lock-free CAS, no mutex on the
    steal path).  The caller's deque is drained from the {e top} by
    everybody — caller included, while it blocks in {!await} — so tasks
    submitted by the caller are {e dispatched in submission order}.  That
    FIFO dispatch is the executor's determinism anchor: batch failures
    report the lowest failing index (see {!map_result}) and the
    explorer's sequential id-merge stays byte-identical whatever the
    steal interleaving.

    {b Policies.}  {!policy} fixes how many tasks a batch or stream may
    keep in flight: [Serial] (one at a time, on the caller),
    [Synchronous] (whole batch at once — the fork-join the old
    [Domain_pool] implemented), [Asynchronous {max_active; kappa}]
    (bounded window with backpressure; [kappa] additionally gates how
    early the explorer may overlap successive BFS levels — see
    {!Asyncolor_check.Explorer}).  Policy never changes {e results}, only
    scheduling: outputs are byte-identical across policies and [jobs].

    {b Watchdog.}  The executor survives its own workers.  Each spawned
    domain bumps a heartbeat counter every loop iteration; a starved
    {!await} scans for workers that died (their queued tasks are salvaged
    by the domain's last act) or wedged while holding queued tasks (the
    items are stolen back after repeated unchanged-heartbeat
    observations).  Reclaimed tasks land in a reinjection queue that
    every domain drains after a deque miss, so no submitted task is ever
    lost — a crash costs latency, never a result.  After [degrade_after]
    crashes/stalls the policy walks down one rung
    ([Asynchronous → Synchronous → Serial]); since policy only changes
    scheduling, outputs stay byte-identical through every degradation.
    Injected worker crashes (site [exec.worker-N]) come from the
    {!Asyncolor_resilience.Chaos} instance passed at {!create}.

    {b Observability} (all out-of-band, stdout untouched): every task
    runs under an ["exec.task"] span on the executing domain's lane
    (workers are named [exec-worker-N]); ["exec.tasks"],
    ["exec.steals"], ["exec.retries"], ["exec.backpressure"],
    ["exec.worker_crashes"], ["exec.worker_stalls"] and ["exec.degraded"]
    counters accumulate per-domain sharded; ["exec.wait"] intervals
    record worker idle gaps and the ["exec.inflight_max"] gauge the
    widest batch window. *)

(** A lock-free work-stealing deque (Chase–Lev).  Owner pushes and pops
    at the bottom; any domain steals at the top through a CAS on a
    monotonic counter, so an element is handed out exactly once.
    Exposed for the linearizability tests; clients use the executor. *)
module Ws_deque : sig
  type 'a t

  val create : unit -> 'a t

  val push : 'a t -> 'a -> unit
  (** Owner only. *)

  val pop : 'a t -> 'a option
  (** Owner only: LIFO end.  [None] when empty. *)

  val steal : 'a t -> 'a option
  (** Any domain: FIFO end.  [None] only when the deque is empty —
      losing a CAS race to another thief retries internally. *)

  val length : 'a t -> int
  (** Snapshot size (racy under concurrent use, exact when quiescent). *)
end

type policy =
  | Serial  (** one task at a time, executed by the caller; no domains *)
  | Synchronous
      (** whole batch in flight, join at the end — fork-join semantics,
          the explorer barriers at every BFS level *)
  | Asynchronous of { max_active : int; kappa : float }
      (** at most [max_active] tasks in flight, submission stalls
          (counted as ["exec.backpressure"]) when the window is full;
          [kappa] ∈ [0, 1] is the fraction of BFS level [k] that must
          have merged before level [k+1] expansion may start *)

val asynchronous : ?max_active:int -> ?kappa:float -> jobs:int -> unit -> policy
(** Smart constructor: [max_active] defaults to [4 * jobs] and is clamped
    to at least 1; [kappa] (default [0.5]) is clamped into [[0, 1]]. *)

val policy_of_string :
  ?max_active:int -> ?kappa:float -> jobs:int -> string -> policy
(** ["serial"], ["sync"]/["synchronous"], ["async"]/["asynchronous"]
    (case-insensitive); the CLI surface of [--exec-policy].
    @raise Invalid_argument on anything else. *)

val policy_name : policy -> string
(** ["serial"], ["synchronous"] or ["asynchronous"] — recorded in
    [bench --json]. *)

val policy_kappa : policy -> float
(** The level-overlap fraction: [kappa] for [Asynchronous], [1.0] for
    [Serial] and [Synchronous] (a full barrier between levels). *)

type t

type 'a future
(** The result of a submitted task: pending, a value, or an exception
    with its backtrace.  Futures are tied to the executor that created
    them. *)

type batch_error = {
  index : int;  (** input index whose execution failed *)
  attempts : int;  (** executions performed, retries included *)
  error : exn;  (** the exception of the final attempt *)
  backtrace : Printexc.raw_backtrace;  (** backtrace of the final attempt *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create :
  ?obs:Asyncolor_obs.Obs.t ->
  ?chaos:Asyncolor_resilience.Chaos.t ->
  ?degrade_after:int ->
  ?policy:policy ->
  ?jobs:int ->
  unit ->
  t
(** [create ~policy ~jobs ()] spawns [jobs - 1] worker domains (so the
    caller is always worker 0).  {b [jobs] is clamped to at least 1 here,
    at the executor boundary} — [~jobs:0] and negative values behave as
    [~jobs:1], uniformly for every client ({!Domain_pool} included); a
    [Serial] policy forces [jobs = 1] and spawns nothing.  [chaos]
    (default disabled) injects worker crashes at sites [exec.worker-N];
    [degrade_after] (default 3, clamped to ≥ 1) is the watchdog's
    failure budget per policy rung.  Defaults: [policy = Synchronous],
    [jobs = default_jobs ()], [obs = Asyncolor_obs.Obs.disabled]. *)

val jobs : t -> int
(** The clamped worker count (caller included). *)

val policy : t -> policy
(** The {e current} policy — the watchdog may have degraded it below the
    one passed to {!create}.  Streaming clients should re-read it (and
    {!stream_window}) every iteration rather than caching it. *)

val worker_crashes : t -> int
(** Worker domains that died (injected or real); their queued tasks were
    reinjected. *)

val worker_stalls : t -> int
(** Stall events: a wedged worker's queued tasks reclaimed by the
    watchdog. *)

val degradations : t -> int
(** Policy rungs walked down by the watchdog so far. *)

val alive_workers : t -> int
(** Workers still running, caller included (so at least 1). *)

val stream_window : t -> int
(** The in-flight bound a streaming client (the explorer) should keep:
    [1] for [Serial], [max_active] for [Asynchronous], effectively
    unbounded for [Synchronous] (the stream's own level gate is the only
    limit — fork-join semantics). *)

val note_backpressure : t -> unit
(** Count one submission stall on the ["exec.backpressure"] counter —
    called by streaming clients when {!stream_window} makes them hold a
    ready task back. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Queue a task.  Tasks submitted by the caller are dispatched in
    submission order (FIFO).  Only submit from the caller domain or from
    inside a running task.
    @raise Invalid_argument after {!shutdown}. *)

val await : 'a future -> 'a
(** Block until the future lands, helping execute queued tasks while
    waiting (so [await] never deadlocks the pipeline and [jobs = 1]
    degenerates to sequential execution on the caller).  Re-raises the
    task's exception with its original backtrace. *)

val await_result : 'a future -> ('a, exn * Printexc.raw_backtrace) result
(** Like {!await} but returns the exception instead of raising. *)

val map_result :
  t -> ?retries:int -> ('a -> 'b) -> 'a array -> ('b array, batch_error) result
(** Parallel [Array.map] with deterministic result order: output index
    [i] always holds [f input.(i)].  The policy fixes the in-flight
    window (see {!policy}); completed futures are consumed as a
    sequential FIFO stream.

    {b Failure isolation.}  An item that raises is retried up to
    [retries] times (default 0).  Once an item's error is final the
    batch is {e cancelled}: tasks not yet started complete as no-ops
    (their [f] is never called), only in-flight items run to completion
    — one poisoned item no longer pays for the whole remaining batch.
    Because dispatch is FIFO in index order, the overall lowest failing
    index is always dispatched before cancellation can skip anything
    below it, so the reported error is deterministic regardless of
    domain scheduling or policy.  The executor stays usable after a
    failed batch. *)

val map : t -> ?retries:int -> ('a -> 'b) -> 'a array -> 'b array
(** Like {!map_result} but re-raises the lowest-index final error with
    its backtrace. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists, preserving order. *)

val shutdown : t -> unit
(** Drain the remaining queued tasks, stop and join the worker domains.
    Safe to call while or after a batch has failed; subsequent {!submit}
    or {!map} calls raise [Invalid_argument]. *)

val with_executor :
  ?obs:Asyncolor_obs.Obs.t ->
  ?chaos:Asyncolor_resilience.Chaos.t ->
  ?degrade_after:int ->
  ?policy:policy ->
  ?jobs:int ->
  (t -> 'a) ->
  'a
(** [with_executor f] runs [f] with a fresh executor and always shuts it
    down, including on exceptions. *)
