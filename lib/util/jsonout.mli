(** Minimal JSON emission — enough for the machine-readable outputs of the
    bench driver ([--json]) without pulling in a JSON dependency.  Emission
    only; there is deliberately no parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats are emitted as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Render with two-space indentation and a trailing newline. *)

val write : string -> t -> unit
(** [write path v] writes {!to_string}[ v] to [path]. *)
