module Step = Asyncolor_kernel.Step
module Graph = Asyncolor_topology.Graph

let independence_ok g outputs =
  Graph.fold_edges
    (fun u v acc ->
      acc && not (outputs.(u) = Some true && outputs.(v) = Some true))
    g true

let domination_ok g outputs =
  let n = Graph.n g in
  let ok = ref true in
  for p = 0 to n - 1 do
    if outputs.(p) = Some false then begin
      let dominated =
        Array.exists (fun q -> outputs.(q) = Some true) (Graph.neighbours g p)
      in
      if not dominated then ok := false
    end
  done;
  !ok

let valid g outputs = independence_ok g outputs && domination_ok g outputs

module Greedy = struct
  type fields = { x : int }

  module P = struct
    type state = fields
    type register = fields
    type output = bool

    let name = "mis-greedy"
    let init ~ident = { x = ident }
    let publish s = s

    (* Decide from the very first snapshot: join the MIS iff locally
       maximal among the registers currently visible.  Wait-free (returns
       at the first activation) but breakable by waking processes in
       increasing identifier order. *)
    let transition s ~view =
      let nbrs = Array.to_list view |> List.filter_map Fun.id in
      if List.for_all (fun r -> r.x < s.x) nbrs then Step.Return true
      else Step.Return false

    let equal_state (s : state) (s' : state) = s = s'
    let equal_register = equal_state
    let encode_state emit s = emit s.x
    let encode_register = encode_state
    let encode_output emit (b : output) = emit (Bool.to_int b)
    let pp_state ppf s = Format.fprintf ppf "{x=%d}" s.x
    let pp_register = pp_state
    let pp_output = Format.pp_print_bool
  end

  module E = Asyncolor_kernel.Engine.Make (P)
end

module Cautious = struct
  type decision = Undecided | Pending of bool

  type fields = { x : int; decision : decision }

  module P = struct
    type state = fields
    type register = fields
    type output = bool

    let name = "mis-cautious"
    let init ~ident = { x = ident; decision = Undecided }
    let publish s = s

    (* Greedy by identifier, with waiting.  A pending decision is returned
       one round after it was published, so neighbours always observe it.
       Joining requires both neighbours visible and every visible higher
       identifier already out — a crashed neighbour therefore blocks the
       process forever: correct in fair executions, not wait-free. *)
    let transition s ~view =
      match s.decision with
      | Pending b -> Step.Return b
      | Undecided ->
          let vis = Array.to_list view |> List.filter_map Fun.id in
          if List.exists (fun r -> r.decision = Pending true) vis then
            Step.Continue { s with decision = Pending false }
          else if Array.for_all Option.is_some view then begin
            let higher = List.filter (fun r -> r.x > s.x) vis in
            if List.for_all (fun r -> r.decision = Pending false) higher then
              Step.Continue { s with decision = Pending true }
            else Step.Continue s
          end
          else Step.Continue s

    let equal_state (s : state) (s' : state) = s = s'
    let equal_register = equal_state

    let encode_state emit s =
      emit s.x;
      emit
        (match s.decision with
        | Undecided -> 0
        | Pending false -> 1
        | Pending true -> 2)

    let encode_register = encode_state
    let encode_output emit (b : output) = emit (Bool.to_int b)

    let pp_state ppf s =
      let d =
        match s.decision with
        | Undecided -> "?"
        | Pending true -> "in"
        | Pending false -> "out"
      in
      Format.fprintf ppf "{x=%d;%s}" s.x d

    let pp_register = pp_state
    let pp_output = Format.pp_print_bool
  end

  module E = Asyncolor_kernel.Engine.Make (P)
end
