module Step = Asyncolor_kernel.Step
module Builders = Asyncolor_topology.Builders

module Make (M : Asyncolor_kernel.Protocol.S with type output = bool) = struct
  type fields = { me : int; inner : M.state }

  module P = struct
    type state = fields
    type register = M.register
    type output = int

    let name = "ssb-from-" ^ M.name
    let init ~ident = { me = ident; inner = M.init ~ident }
    let publish s = M.publish s.inner

    (* [view] lists the registers of the other n-1 processes in increasing
       process order; the register of process [j] sits at index [j] when
       [j < me] and [j - 1] otherwise. *)
    let transition s ~view =
      let n = Array.length view + 1 in
      let slot j = if j < s.me then view.(j) else view.(j - 1) in
      let prev = (s.me + n - 1) mod n and next = (s.me + 1) mod n in
      let cycle_view = [| slot prev; slot next |] in
      match M.transition s.inner ~view:cycle_view with
      | Step.Continue inner -> Step.Continue { s with inner }
      | Step.Return in_mis -> Step.Return (if in_mis then 1 else 0)

    let equal_state a b = a.me = b.me && M.equal_state a.inner b.inner
    let equal_register = M.equal_register

    let encode_state emit s =
      emit s.me;
      M.encode_state emit s.inner

    let encode_register = M.encode_register
    let encode_output emit (c : output) = emit c

    let pp_state ppf s = Format.fprintf ppf "{p%d;%a}" s.me M.pp_state s.inner
    let pp_register = M.pp_register
    let pp_output = Format.pp_print_int
  end

  module E = Asyncolor_kernel.Engine.Make (P)

  let run ?max_steps ~n adv =
    if n < 3 then invalid_arg "Reduction.run: need n >= 3";
    let idents = Array.init n Fun.id in
    let engine = E.create (Builders.complete n) ~idents in
    E.run ?max_steps engine adv
end
