module Step = Asyncolor_kernel.Step
module Builders = Asyncolor_topology.Builders

type fields = { x : int; proposal : int }

let kth_free k taken =
  if k < 1 then invalid_arg "Renaming.kth_free: k must be >= 1";
  let taken = List.sort_uniq compare taken in
  let rec scan k candidate taken =
    match taken with
    | t :: rest when t < candidate -> scan k candidate rest
    | t :: rest when t = candidate -> scan k (candidate + 1) rest
    | _ -> if k = 1 then candidate else scan (k - 1) (candidate + 1) taken
  in
  scan k 0 taken

module P = struct
  type state = fields
  type register = fields
  type output = int

  let name = "renaming"
  let init ~ident = { x = ident; proposal = 0 }
  let publish s = s

  let transition s ~view =
    let others = Array.to_list view |> List.filter_map Fun.id in
    if not (List.exists (fun r -> r.proposal = s.proposal) others) then
      Step.Return s.proposal
    else begin
      let ids = s.x :: List.map (fun r -> r.x) others in
      let rank =
        1 + List.length (List.filter (fun id -> id < s.x) ids)
      in
      let taken = List.map (fun r -> r.proposal) others in
      Step.Continue { s with proposal = kth_free rank taken }
    end

  let equal_state (s : state) (s' : state) = s = s'
  let equal_register = equal_state

  let encode_state emit s =
    emit s.x;
    emit s.proposal

  let encode_register = encode_state
  let encode_output emit (c : output) = emit c
  let pp_state ppf s = Format.fprintf ppf "{x=%d;prop=%d}" s.x s.proposal
  let pp_register = pp_state
  let pp_output = Format.pp_print_int
end

module E = Asyncolor_kernel.Engine.Make (P)

let name_bound n = (2 * n) - 2

let run ?max_steps ~n ~idents adv =
  if n < 2 then invalid_arg "Renaming.run: need n >= 2";
  if Array.length idents <> n then invalid_arg "Renaming.run: idents length mismatch";
  let engine = E.create (Builders.complete n) ~idents in
  E.run ?max_steps engine adv
