module Graph = Asyncolor_topology.Graph
module Adversary = Asyncolor_kernel.Adversary

module Make (P : Asyncolor_kernel.Protocol.S) = struct
  module E = Asyncolor_kernel.Engine.Make (P)

  let popcount m =
    let c = ref 0 in
    let m = ref m in
    while !m <> 0 do
      incr c;
      m := !m land (!m - 1)
    done;
    !c

  (* Candidate activation sets as bitmasks, in the same order as the list
     version below builds them — the greedy tie-break keeps the first of
     equal candidates, so the order is part of the scheduler's observable
     behaviour. *)
  let candidates_mask mode graph um =
    match mode with
    | `Singletons ->
        let singles = ref [] in
        for p = Sys.int_size - 2 downto 0 do
          if um land (1 lsl p) <> 0 then singles := (1 lsl p) :: !singles
        done;
        !singles
    | `All_subsets ->
        let singles = ref [] in
        for p = Sys.int_size - 2 downto 0 do
          if um land (1 lsl p) <> 0 then singles := (1 lsl p) :: !singles
        done;
        let pairs =
          Graph.fold_edges
            (fun u v acc ->
              let m = (1 lsl u) lor (1 lsl v) in
              if m land um = m then m :: acc else acc)
            graph []
        in
        (um :: pairs) @ !singles

  (* Packed inner loop: every candidate is scored by restoring the scratch
     engine and playing the set through [activate_mask] — no per-candidate
     list allocation.  Requires the mask width ([n <= Sys.int_size - 1]);
     [adversary] falls back to the list path beyond that. *)
  let adversary_mask ~mode graph ~idents engine =
    let scratch = E.create graph ~idents in
    Adversary.make ~name:(Printf.sprintf "adaptive-greedy(%s)" P.name)
      (fun ~time:_ ~unfinished ->
        match unfinished with
        | [] -> None
        | _ ->
            let base = E.snapshot engine in
            let um = E.config_unfinished_mask base in
            let before = popcount um in
            (* score = processes returning if this set is played; pick the
               minimum, tie-break on larger sets (more wasted work) *)
            let best = ref None in
            List.iter
              (fun mask ->
                E.restore scratch base;
                E.activate_mask scratch mask;
                let score = before - popcount (E.unfinished_mask scratch) in
                let size = popcount mask in
                let better =
                  match !best with
                  | None -> true
                  | Some (s, l, _) -> score < s || (score = s && size > l)
                in
                if better then best := Some (score, size, mask))
              (candidates_mask mode graph um);
            Option.map (fun (_, _, mask) -> Explorer.subset_of_mask mask) !best)

  let adversary_list ~mode graph ~idents engine =
    let scratch = E.create graph ~idents in
    let candidates unfinished =
      match mode with
      | `Singletons -> List.map (fun p -> [ p ]) unfinished
      | `All_subsets ->
          let singles = List.map (fun p -> [ p ]) unfinished in
          let pairs =
            Graph.fold_edges
              (fun u v acc ->
                if List.mem u unfinished && List.mem v unfinished then
                  [ u; v ] :: acc
                else acc)
              graph []
          in
          (unfinished :: pairs) @ singles
    in
    Adversary.make ~name:(Printf.sprintf "adaptive-greedy(%s)" P.name)
      (fun ~time:_ ~unfinished ->
        match unfinished with
        | [] -> None
        | _ ->
            let base = E.snapshot engine in
            let before = List.length (E.config_unfinished base) in
            let best = ref None in
            List.iter
              (fun set ->
                E.restore scratch base;
                E.activate scratch set;
                let score = before - List.length (E.unfinished scratch) in
                let better =
                  match !best with
                  | None -> true
                  | Some (s, l, _) ->
                      score < s || (score = s && List.length set > l)
                in
                if better then best := Some (score, List.length set, set))
              (candidates unfinished);
            Option.map (fun (_, _, set) -> set) !best)

  let adversary ?(mode = `Singletons) graph ~idents engine =
    if Graph.n graph <= Sys.int_size - 1 then
      adversary_mask ~mode graph ~idents engine
    else adversary_list ~mode graph ~idents engine

  let worst_rounds ?mode ?(max_steps = 10_000) graph ~idents =
    let engine = E.create graph ~idents in
    let adv = adversary ?mode graph ~idents engine in
    E.run ~max_steps engine adv
end
