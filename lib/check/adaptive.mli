(** A greedy adaptive adversary: one-step lookahead scheduling.

    The fixed schedules of {!Asyncolor_kernel.Adversary} are oblivious; an
    adaptive adversary may inspect the configuration before choosing whom
    to activate.  This one simulates every candidate activation set on a
    scratch engine and picks a set that lets the {e fewest} processes
    return (ties: the largest such set) — a simple malicious scheduler
    that maximises work greedily.

    Two uses, both exercised by the tests and E13:
    - [`Singletons] mode approximates the worst interleaved schedule; on
      small instances it can be compared with the exhaustive explorer's
      exact worst case;
    - [`All_subsets] mode hunts for configurations where some set yields
      {e no} progress at all — run to a step cap it rediscovers the F1
      phase-locks of Algorithms 2–3 without being told about them. *)

module Make (P : Asyncolor_kernel.Protocol.S) : sig
  module E : module type of Asyncolor_kernel.Engine.Make (P)

  val adversary :
    ?mode:[ `All_subsets | `Singletons ] ->
    Asyncolor_topology.Graph.t ->
    idents:int array ->
    E.t ->
    Asyncolor_kernel.Adversary.t
  (** [adversary g ~idents engine] builds the greedy scheduler for
      [engine] (which must run on [g] with [idents] — the scratch engine
      is built from the same data).  The returned adversary must only be
      used to drive that very engine.  Candidate sets in [`All_subsets]
      mode: all singletons, all adjacent working pairs, and the full
      unfinished set.  Default mode: [`Singletons].

      When the graph fits the packed mask width
      ([n <= Sys.int_size - 1] — every graph of practical interest) the
      candidate simulation runs through
      {!Asyncolor_kernel.Engine.Make.activate_mask} with bitmask
      candidate sets, allocating nothing per candidate; beyond that it
      falls back to the list path.  Both paths enumerate candidates in
      the same order and pick the same sets. *)

  val worst_rounds :
    ?mode:[ `All_subsets | `Singletons ] ->
    ?max_steps:int ->
    Asyncolor_topology.Graph.t ->
    idents:int array ->
    E.run_result
  (** Convenience: run a fresh engine to completion (or the cap) under the
      greedy scheduler. *)
end
