module Graph = Asyncolor_topology.Graph
module Adversary = Asyncolor_kernel.Adversary
module Domain_pool = Asyncolor_util.Domain_pool

module Make (P : Asyncolor_kernel.Protocol.S) = struct
  module E = Asyncolor_kernel.Engine.Make (P)

  type finding = {
    pair : int * int;
    locked : bool;
    steps : int;
    pair_activations : int * int;
  }

  let probe ?max_steps graph ~idents ((p, q) as pair) =
    let n = Graph.n graph in
    let max_steps =
      match max_steps with Some m -> m | None -> 2_000 + (20 * n)
    in
    let engine = E.create graph ~idents in
    let r = E.run ~max_steps engine (Adversary.isolate_pair pair) in
    {
      pair;
      locked = (not r.all_returned) && not r.schedule_ended;
      steps = r.steps;
      pair_activations = (r.activations_per_process.(p), r.activations_per_process.(q));
    }

  let hunt ?max_steps ?(jobs = 1) graph ~idents =
    let attack (u, v) = probe ?max_steps graph ~idents (u, v) in
    let edges = Graph.edges graph in
    if jobs <= 1 then List.map attack edges
    else
      Domain_pool.with_pool ~jobs (fun pool ->
          Domain_pool.map_list pool attack edges)

  let locked findings =
    List.filter_map (fun f -> if f.locked then Some f.pair else None) findings
end
