module Graph = Asyncolor_topology.Graph
module Adversary = Asyncolor_kernel.Adversary
module Executor = Asyncolor_util.Executor
module Budget = Asyncolor_resilience.Budget
module Obs = Asyncolor_obs.Obs

module Make (P : Asyncolor_kernel.Protocol.S) = struct
  module E = Asyncolor_kernel.Engine.Make (P)

  type finding = {
    pair : int * int;
    locked : bool;
    steps : int;
    pair_activations : int * int;
  }

  let default_steps n = 2_000 + (20 * n)

  (* One attack on a reusable engine: rewind to the initial configuration,
     then play the isolate-pair schedule.  Reusing the engine across the
     probes of a slice replaces one [E.create] (three arrays plus protocol
     setup) per edge with three [Array.blit]s. *)
  let probe_restored ~max_steps engine initial ((p, q) as pair) =
    E.restore engine initial;
    let r = E.run ~max_steps engine (Adversary.isolate_pair pair) in
    {
      pair;
      locked = (not r.all_returned) && not r.schedule_ended;
      steps = r.steps;
      pair_activations = (r.activations_per_process.(p), r.activations_per_process.(q));
    }

  let probe ?max_steps graph ~idents pair =
    let max_steps =
      match max_steps with Some m -> m | None -> default_steps (Graph.n graph)
    in
    let engine = E.create graph ~idents in
    probe_restored ~max_steps engine (E.snapshot engine) pair

  let hunt ?max_steps ?(jobs = 1) ?policy ?budget ?stop
      ?(chaos = Asyncolor_resilience.Chaos.disabled) ?(obs = Obs.disabled)
      graph ~idents =
    let max_steps =
      match max_steps with Some m -> m | None -> default_steps (Graph.n graph)
    in
    let c_probes = Obs.counter obs "lockhunt.probes" in
    let c_locked = Obs.counter obs "lockhunt.locked" in
    let note f =
      Obs.Counter.incr c_probes;
      if f.locked then Obs.Counter.incr c_locked;
      f
    in
    (* Polled between probes (and inside every parallel slice): a hunt cut
       short by a budget or a stop request returns the findings gathered so
       far instead of an exception — compare the result length against the
       edge count to detect truncation. *)
    let should_stop () =
      (match stop with Some f -> f () | None -> false)
      ||
      match budget with Some b -> Budget.exceeded b | None -> false
    in
    let edges = Array.of_list (Graph.edges graph) in
    let nedges = Array.length edges in
    Obs.span obs
      ~args:
        [
          ("edges", string_of_int nedges);
          ("n", string_of_int (Graph.n graph));
        ]
      "lockhunt"
    @@ fun () ->
    let policy =
      match policy with
      | Some p -> p
      | None -> if jobs <= 1 then Executor.Serial else Executor.Synchronous
    in
    if policy = Executor.Serial || jobs <= 1 || nedges <= 1 then begin
      let engine = E.create graph ~idents in
      let initial = E.snapshot engine in
      let acc = ref [] in
      (try
         Array.iter
           (fun pair ->
             if should_stop () then raise Exit;
             acc := note (probe_restored ~max_steps engine initial pair) :: !acc)
           edges
       with Exit -> ());
      List.rev !acc
    end
    else begin
      (* Contiguous slices, one private engine per slice; findings come
         back in edge order because [Executor.map] merges by index.
         Under a budget/stop cut each slice keeps its probed prefix, so
         the merged result is still sorted by edge order within slices. *)
      let jobs = min jobs nedges in
      let slices =
        Array.init jobs (fun s -> (nedges * s / jobs, nedges * (s + 1) / jobs))
      in
      let per_slice =
        Executor.with_executor ~obs ~chaos ~policy ~jobs (fun exec ->
            Executor.map exec
              (fun (lo, hi) ->
                let engine = E.create graph ~idents in
                let initial = E.snapshot engine in
                let acc = ref [] in
                (try
                   for i = lo to hi - 1 do
                     if should_stop () then raise Exit;
                     acc :=
                       note (probe_restored ~max_steps engine initial edges.(i))
                       :: !acc
                   done
                 with Exit -> ());
                Array.of_list (List.rev !acc))
              slices)
      in
      Array.to_list (Array.concat (Array.to_list per_slice))
    end

  let locked findings =
    List.filter_map (fun f -> if f.locked then Some f.pair else None) findings
end
