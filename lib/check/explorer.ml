module Vec = Asyncolor_util.Vec

module Make (P : Asyncolor_kernel.Protocol.S) = struct
  module E = Asyncolor_kernel.Engine.Make (P)

  module CMap = Map.Make (struct
    type t = E.config

    let compare = E.config_compare
  end)

  type violation = { message : string; schedule : int list list }

  type report = {
    configs : int;
    transitions : int;
    terminal_configs : int;
    complete : bool;
    wait_free : bool;
    livelock : violation option;
    safety : violation list;
    worst_case_activations : int;
  }

  (* Parent pointers give, for every configuration, one schedule prefix
     that reaches it. *)
  let schedule_to parent id =
    let rec loop id acc =
      match parent id with
      | None -> acc
      | Some (pred, subset) -> loop pred (subset :: acc)
    in
    loop id []

  let subsets_of mode procs =
    match (mode, procs) with
    | _, [] -> []
    | `Singletons, procs -> List.map (fun p -> [ p ]) procs
    | `All_subsets, procs ->
        let procs = Array.of_list procs in
        let k = Array.length procs in
        List.init ((1 lsl k) - 1) (fun m ->
            let mask = m + 1 in
            let acc = ref [] in
            for i = k - 1 downto 0 do
              if mask land (1 lsl i) <> 0 then acc := procs.(i) :: !acc
            done;
            !acc)

  let explore ?(max_configs = 500_000) ?(max_violations = 5) ?(mode = `All_subsets)
      ?(impl = `Hashcons) ?check_outputs ?check_config graph ~idents =
    let n = Asyncolor_topology.Graph.n graph in
    let engine = E.create graph ~idents in
    let initial = E.snapshot engine in
    (* The hash-consed store: dense ids into growable arrays.  [store]
       keeps the boxed configuration only for [E.restore]; identity and
       lookup go through the packed key. *)
    let store : E.config Vec.t = Vec.create ~capacity:1024 ~dummy:initial () in
    let parents : (int * int list) option Vec.t =
      Vec.create ~capacity:1024 ~dummy:None ()
    in
    let adj : (int list * int) list Vec.t = Vec.create ~capacity:1024 ~dummy:[] () in
    let next_id = ref 0 in
    let transitions = ref 0 in
    let terminal = ref 0 in
    let safety = ref [] in
    let n_safety = ref 0 in
    let complete = ref true in
    let register config =
      let id = !next_id in
      incr next_id;
      Vec.push store config;
      Vec.push parents None;
      if E.config_unfinished config = [] then incr terminal;
      id
    in
    let intern =
      match impl with
      | `Hashcons ->
          let ids = E.Key_tbl.create 1024 in
          fun config ->
            let key = E.config_key config in
            (match E.Key_tbl.find_opt ids key with
            | Some id -> (id, false)
            | None ->
                let id = register config in
                E.Key_tbl.add ids key id;
                (id, true))
      | `Reference ->
          (* the seed implementation: a Map over [config_compare]; kept as
             the oracle for the differential tests *)
          let ids = ref CMap.empty in
          fun config ->
            (match CMap.find_opt config !ids with
            | Some id -> (id, false)
            | None ->
                let id = register config in
                ids := CMap.add config id !ids;
                (id, true))
    in
    (* Runs the safety predicates; the engine must currently hold [config].
       Violations are recorded as (message, config id); schedules are
       attached after exploration, once parent pointers are final. *)
    let check id config =
      if !n_safety < max_violations then begin
        let record message =
          incr n_safety;
          safety := (message, id) :: !safety
        in
        (match check_outputs with
        | None -> ()
        | Some f -> (
            match f (E.config_outputs config) with
            | None -> ()
            | Some msg -> record msg));
        match check_config with
        | None -> ()
        | Some f -> (
            match f engine with None -> () | Some msg -> record msg)
      end
    in
    let queue = Queue.create () in
    let root_id, _ = intern initial in
    check root_id initial;
    Queue.add root_id queue;
    while not (Queue.is_empty queue) do
      let uid = Queue.pop queue in
      let config = Vec.get store uid in
      let unfinished = E.config_unfinished config in
      let succs = ref [] in
      List.iter
        (fun subset ->
          if !next_id < max_configs then begin
            E.restore engine config;
            E.activate engine subset;
            let succ = E.snapshot engine in
            let vid, fresh = intern succ in
            incr transitions;
            succs := (subset, vid) :: !succs;
            if fresh then begin
              Vec.set parents vid (Some (uid, subset));
              check vid succ;
              Queue.add vid queue
            end
          end
          else complete := false)
        (subsets_of mode unfinished);
      Vec.set_grow adj uid (List.rev !succs)
    done;
    let total = !next_id in
    (* attach schedules to recorded safety violations *)
    let safety =
      List.rev !safety
      |> List.map (fun (message, id) ->
             { message; schedule = schedule_to (Vec.get parents) id })
    in
    (* Cycle detection by iterative DFS from the root; all stored configs
       are reachable from the root by construction. *)
    let color = Array.make total 0 in
    let livelock = ref None in
    let finish_order = ref [] in
    let edges_of id = if id < Vec.length adj then Vec.get adj id else [] in
    let rec dfs path id =
      (* [path] is the list of subsets taken from the root, newest first. *)
      color.(id) <- 1;
      List.iter
        (fun (subset, v) ->
          if !livelock = None then
            if color.(v) = 0 then dfs (subset :: path) v
            else if color.(v) = 1 then
              livelock :=
                Some
                  {
                    message =
                      Printf.sprintf
                        "livelock: configuration cycle via activation of working \
                         processes (cycle re-enters config %d)"
                        v;
                    schedule = List.rev (subset :: path);
                  })
        (edges_of id);
      color.(id) <- 2;
      finish_order := id :: !finish_order
    in
    (* The recursion depth equals the longest simple path; for the small
       systems the explorer targets this fits the stack. *)
    dfs [] root_id;
    let wait_free = !livelock = None in
    (* Exact worst case by longest-path DP over the DAG in topological
       order (the reversed finish order). *)
    let worst =
      if (not wait_free) || not !complete then -1
      else begin
        let dp = Array.make total [||] in
        dp.(root_id) <- Array.make n 0;
        let best = ref 0 in
        List.iter
          (fun uid ->
            let du = dp.(uid) in
            if Array.length du > 0 then
              List.iter
                (fun (subset, vid) ->
                  if Array.length dp.(vid) = 0 then dp.(vid) <- Array.make n 0;
                  let dv = dp.(vid) in
                  List.iter
                    (fun p ->
                      let cand = du.(p) + 1 in
                      if cand > dv.(p) then begin
                        dv.(p) <- cand;
                        if cand > !best then best := cand
                      end)
                    subset;
                  Array.iteri
                    (fun p x -> if x > dv.(p) then dv.(p) <- x)
                    du)
                (edges_of uid))
          !finish_order;
        !best
      end
    in
    {
      configs = total;
      transitions = !transitions;
      terminal_configs = !terminal;
      complete = !complete;
      wait_free;
      livelock = !livelock;
      safety;
      worst_case_activations = worst;
    }

  let pp_report ppf r =
    Format.fprintf ppf
      "@[<v>configs=%d transitions=%d terminal=%d complete=%b wait_free=%b \
       worst_activations=%d safety_violations=%d%a@]"
      r.configs r.transitions r.terminal_configs r.complete r.wait_free
      r.worst_case_activations (List.length r.safety)
      (fun ppf -> function
        | None -> ()
        | Some v -> Format.fprintf ppf "@,livelock: %s" v.message)
      r.livelock
end
