module Vec = Asyncolor_util.Vec
module Domain_pool = Asyncolor_util.Domain_pool

(* --- activation subsets: list form (reference) and packed form --------- *)

let subsets_of mode procs =
  match (mode, procs) with
  | _, [] -> []
  | `Singletons, procs -> List.map (fun p -> [ p ]) procs
  | `All_subsets, procs ->
      let procs = Array.of_list procs in
      let k = Array.length procs in
      List.init ((1 lsl k) - 1) (fun m ->
          let mask = m + 1 in
          let acc = ref [] in
          for i = k - 1 downto 0 do
            if mask land (1 lsl i) <> 0 then acc := procs.(i) :: !acc
          done;
          !acc)

let subset_of_mask mask =
  let acc = ref [] in
  for p = Sys.int_size - 2 downto 0 do
    if mask land (1 lsl p) <> 0 then acc := p :: !acc
  done;
  !acc

let mask_of_subset subset = List.fold_left (fun m p -> m lor (1 lsl p)) 0 subset

(* The packed counterpart of [subsets_of]: all activation sets drawn from
   the set bits of [unfinished], as bitmasks, in an order whose unpacked
   lists are exactly [subsets_of mode (subset_of_mask unfinished)] —
   element for element.  That order identity is what keeps the packed
   explorer's reports (parent pointers, adjacency, lasso schedules)
   byte-identical to the reference implementation. *)
let masks_of mode unfinished =
  match mode with
  | `Singletons ->
      let k = ref 0 in
      let m = ref unfinished in
      while !m <> 0 do
        incr k;
        m := !m land (!m - 1)
      done;
      let out = Array.make !k 0 in
      let i = ref 0 in
      for p = 0 to Sys.int_size - 2 do
        if unfinished land (1 lsl p) <> 0 then begin
          out.(!i) <- 1 lsl p;
          incr i
        end
      done;
      out
  | `All_subsets ->
      let positions = Array.make (Sys.int_size - 1) 0 in
      let k = ref 0 in
      for p = 0 to Sys.int_size - 2 do
        if unfinished land (1 lsl p) <> 0 then begin
          positions.(!k) <- p;
          incr k
        end
      done;
      let k = !k in
      if k = 0 then [||]
      else
        Array.init
          ((1 lsl k) - 1)
          (fun m ->
            let c = m + 1 in
            let mask = ref 0 in
            for i = 0 to k - 1 do
              if c land (1 lsl i) <> 0 then mask := !mask lor (1 lsl positions.(i))
            done;
            !mask)

module Make (P : Asyncolor_kernel.Protocol.S) = struct
  module E = Asyncolor_kernel.Engine.Make (P)

  module CMap = Map.Make (struct
    type t = E.config

    let compare = E.config_compare
  end)

  module Shards = Asyncolor_util.Sharded_tbl.Make (struct
    type t = E.key

    let equal = E.key_equal
    let hash = E.key_hash
  end)

  type violation = { message : string; schedule : int list list }

  type report = {
    configs : int;
    transitions : int;
    terminal_configs : int;
    complete : bool;
    wait_free : bool;
    livelock : violation option;
    safety : violation list;
    worst_case_activations : int;
  }

  (* The packed configuration graph both builders produce: flat int arrays
     only — dense ids, CSR adjacency of (mask, vid) pairs, parent pointers
     as (pred id, activation mask).  The boxed configurations themselves
     are not part of it; the parallel builder keeps only one frontier of
     them alive at a time. *)
  type packed = {
    total : int;
    transitions : int;
    terminal : int;
    complete : bool;
    parent_pred : int array;  (* -1 at the root *)
    parent_mask : int array;
    adj_off : int array;  (* total + 1 offsets into adj_data *)
    adj_data : int array;  (* (mask, vid) int pairs *)
    safety_raw : (string * int) list;  (* discovery order *)
  }

  (* Parent pointers give, for every configuration, one schedule prefix
     that reaches it. *)
  let schedule_to pred mask id =
    let rec loop id acc =
      let p = pred.(id) in
      if p < 0 then acc else loop p (subset_of_mask mask.(id) :: acc)
    in
    loop id []

  (* Cycle detection by DFS from the root over the packed adjacency; all
     stored configs are reachable from the root by construction.  The
     stack is explicit (ids + edge cursors + the masks of the current tree
     path), so the longest simple path of the configuration graph — which
     at K7 scale exceeds any native stack — costs heap words, not frames. *)
  let detect_livelock p =
    let color = Bytes.make p.total '\000' in
    let finish = Vec.create ~capacity:1024 ~dummy:0 () in
    let livelock = ref None in
    let st_id = Vec.create ~capacity:64 ~dummy:0 () in
    let st_cur = Vec.create ~capacity:64 ~dummy:0 () in
    let path = Vec.create ~capacity:64 ~dummy:0 () in
    Vec.push st_id 0;
    Vec.push st_cur p.adj_off.(0);
    Bytes.set color 0 '\001';
    while Vec.length st_id > 0 && !livelock = None do
      let depth = Vec.length st_id - 1 in
      let u = Vec.get st_id depth in
      let cur = Vec.get st_cur depth in
      if cur < p.adj_off.(u + 1) then begin
        Vec.set st_cur depth (cur + 2);
        let mask = p.adj_data.(cur) and v = p.adj_data.(cur + 1) in
        match Bytes.get color v with
        | '\000' ->
            Bytes.set color v '\001';
            Vec.push path mask;
            Vec.push st_id v;
            Vec.push st_cur p.adj_off.(v)
        | '\001' ->
            (* A back edge: the masks on the tree path plus this one are a
               lasso schedule (prefix + cycle) witnessing the livelock. *)
            let sched = ref [ subset_of_mask mask ] in
            for i = Vec.length path - 1 downto 0 do
              sched := subset_of_mask (Vec.get path i) :: !sched
            done;
            livelock :=
              Some
                {
                  message =
                    Printf.sprintf
                      "livelock: configuration cycle via activation of working \
                       processes (cycle re-enters config %d)"
                      v;
                  schedule = !sched;
                }
        | _ -> ()
      end
      else begin
        ignore (Vec.pop st_id);
        ignore (Vec.pop st_cur);
        Bytes.set color u '\002';
        Vec.push finish u;
        if Vec.length st_id > 0 then ignore (Vec.pop path)
      end
    done;
    (!livelock, finish)

  (* Exact worst case by longest-path DP over the DAG in topological order
     (the reversed finish order).  One flat [total * n] int table instead
     of a row array per configuration. *)
  let exact_worst ~n p finish =
    let dp = Array.make (p.total * n) 0 in
    let best = ref 0 in
    for i = Vec.length finish - 1 downto 0 do
      let u = Vec.get finish i in
      let bu = u * n in
      let e = ref p.adj_off.(u) in
      while !e < p.adj_off.(u + 1) do
        let mask = p.adj_data.(!e) and v = p.adj_data.(!e + 1) in
        let bv = v * n in
        for q = 0 to n - 1 do
          let du = dp.(bu + q) in
          if mask land (1 lsl q) <> 0 then begin
            let cand = du + 1 in
            if cand > dp.(bv + q) then begin
              dp.(bv + q) <- cand;
              if cand > !best then best := cand
            end
          end
          else if du > dp.(bv + q) then dp.(bv + q) <- du
        done;
        e := !e + 2
      done
    done;
    !best

  let finish_report ~n (p : packed) =
    let safety =
      List.map
        (fun (message, id) ->
          { message; schedule = schedule_to p.parent_pred p.parent_mask id })
        p.safety_raw
    in
    let livelock, finish = detect_livelock p in
    let wait_free = livelock = None in
    let worst =
      if (not wait_free) || not p.complete then -1 else exact_worst ~n p finish
    in
    {
      configs = p.total;
      transitions = p.transitions;
      terminal_configs = p.terminal;
      complete = p.complete;
      wait_free;
      livelock;
      safety;
      worst_case_activations = worst;
    }

  (* --- the seed implementation: sequential BFS, Map interning ---------- *)

  (* Kept verbatim in spirit as the oracle for the differential tests: a
     FIFO queue over a [Map] keyed by [config_compare], expanding with the
     list-based [subsets_of] and [E.activate].  Only the output format
     changed with the data layer (packed adjacency and parent arrays). *)
  let explore_reference ~max_configs ~max_violations ~mode ~check_outputs
      ~check_config graph ~idents =
    let engine = E.create graph ~idents in
    let initial = E.snapshot engine in
    let store : E.config Vec.t = Vec.create ~capacity:1024 ~dummy:initial () in
    let parent_pred = Vec.create ~capacity:1024 ~dummy:(-1) () in
    let parent_mask = Vec.create ~capacity:1024 ~dummy:0 () in
    let adj_off = Vec.create ~capacity:1024 ~dummy:0 () in
    let adj_data = Vec.create ~capacity:4096 ~dummy:0 () in
    Vec.push adj_off 0;
    let next_id = ref 0 in
    let transitions = ref 0 in
    let terminal = ref 0 in
    let safety = ref [] in
    let n_safety = ref 0 in
    let complete = ref true in
    let register config =
      let id = !next_id in
      incr next_id;
      Vec.push store config;
      Vec.push parent_pred (-1);
      Vec.push parent_mask 0;
      if E.config_unfinished config = [] then incr terminal;
      id
    in
    let ids = ref CMap.empty in
    let intern config =
      match CMap.find_opt config !ids with
      | Some id -> (id, false)
      | None ->
          let id = register config in
          ids := CMap.add config id !ids;
          (id, true)
    in
    (* Runs the safety predicates; the engine must currently hold [config]. *)
    let check id config =
      if !n_safety < max_violations then begin
        let record message =
          incr n_safety;
          safety := (message, id) :: !safety
        in
        (match check_outputs with
        | None -> ()
        | Some f -> (
            match f (E.config_outputs config) with
            | None -> ()
            | Some msg -> record msg));
        match check_config with
        | None -> ()
        | Some f -> (
            match f engine with None -> () | Some msg -> record msg)
      end
    in
    let queue = Queue.create () in
    let root_id, _ = intern initial in
    check root_id initial;
    Queue.add root_id queue;
    while not (Queue.is_empty queue) do
      let uid = Queue.pop queue in
      let config = Vec.get store uid in
      let unfinished = E.config_unfinished config in
      List.iter
        (fun subset ->
          if !next_id < max_configs then begin
            E.restore engine config;
            E.activate engine subset;
            let succ = E.snapshot engine in
            let vid, fresh = intern succ in
            incr transitions;
            Vec.push adj_data (mask_of_subset subset);
            Vec.push adj_data vid;
            if fresh then begin
              Vec.set parent_pred vid uid;
              Vec.set parent_mask vid (mask_of_subset subset);
              check vid succ;
              Queue.add vid queue
            end
          end
          else complete := false)
        (subsets_of mode unfinished);
      Vec.push adj_off (Vec.length adj_data)
    done;
    {
      total = !next_id;
      transitions = !transitions;
      terminal = !terminal;
      complete = !complete;
      parent_pred = Vec.to_array parent_pred;
      parent_mask = Vec.to_array parent_mask;
      adj_off = Vec.to_array adj_off;
      adj_data = Vec.to_array adj_data;
      safety_raw = List.rev !safety;
    }

  (* --- packed sequential BFS: the jobs=1 fast path --------------------- *)

  (* Same discovery order as [explore_reference] (FIFO queue, subsets in
     [masks_of] order) and same packed output as the level-synchronous
     builder below, without the per-level batching: configurations are
     interned through their packed keys in one [Key_tbl], activation sets
     stay bitmasks end-to-end, and a configuration is dropped as soon as
     it has been expanded (only keys are retained), which is what keeps
     multi-million-configuration runs inside memory. *)
  let explore_seq_packed ~max_configs ~max_violations ~mode ~check_outputs
      ~check_config graph ~idents =
    let engine = E.create graph ~idents in
    let initial = E.snapshot engine in
    let tbl = E.Key_tbl.create 1024 in
    let parent_pred = Vec.create ~capacity:1024 ~dummy:(-1) () in
    let parent_mask = Vec.create ~capacity:1024 ~dummy:0 () in
    let adj_off = Vec.create ~capacity:1024 ~dummy:0 () in
    let adj_data = Vec.create ~capacity:4096 ~dummy:0 () in
    Vec.push adj_off 0;
    let next_id = ref 0 in
    let transitions = ref 0 in
    let terminal = ref 0 in
    let safety = ref [] in
    let n_safety = ref 0 in
    let complete = ref true in
    let queue = Queue.create () in
    let register config =
      let id = !next_id in
      incr next_id;
      Vec.push parent_pred (-1);
      Vec.push parent_mask 0;
      if E.config_unfinished_mask config = 0 then incr terminal;
      Queue.add (id, config) queue;
      id
    in
    (* The engine must currently hold [config] (seed contract). *)
    let check id config =
      if !n_safety < max_violations then begin
        let record message =
          incr n_safety;
          safety := (message, id) :: !safety
        in
        (match check_outputs with
        | None -> ()
        | Some f -> (
            match f (E.config_outputs config) with
            | None -> ()
            | Some msg -> record msg));
        match check_config with
        | None -> ()
        | Some f -> (
            match f engine with None -> () | Some msg -> record msg)
      end
    in
    let root_id = register initial in
    E.Key_tbl.add tbl (E.config_key initial) root_id;
    check root_id initial;
    while not (Queue.is_empty queue) do
      let uid, config = Queue.pop queue in
      let um = E.config_unfinished_mask config in
      let masks = if um = 0 then [||] else masks_of mode um in
      Array.iter
        (fun mask ->
          if !next_id < max_configs then begin
            E.restore engine config;
            E.activate_mask engine mask;
            let succ = E.snapshot engine in
            let key = E.config_key succ in
            incr transitions;
            let vid, fresh =
              match E.Key_tbl.find_opt tbl key with
              | Some id -> (id, false)
              | None ->
                  let id = register succ in
                  E.Key_tbl.add tbl key id;
                  (id, true)
            in
            Vec.push adj_data mask;
            Vec.push adj_data vid;
            if fresh then begin
              Vec.set parent_pred vid uid;
              Vec.set parent_mask vid mask;
              check vid succ
            end
          end
          else complete := false)
        masks;
      Vec.push adj_off (Vec.length adj_data)
    done;
    {
      total = !next_id;
      transitions = !transitions;
      terminal = !terminal;
      complete = !complete;
      parent_pred = Vec.to_array parent_pred;
      parent_mask = Vec.to_array parent_mask;
      adj_off = Vec.to_array adj_off;
      adj_data = Vec.to_array adj_data;
      safety_raw = List.rev !safety;
    }

  (* --- level-synchronous parallel BFS with sharded interning ----------- *)

  (* One BFS level at a time, in three phases:

     A. {e Expansion} (parallel by frontier slice).  Each worker owns a
        private engine and restores/activates/snapshots every (config,
        activation-mask) pair of its slice, emitting candidate successors
        with their packed keys.  No shared mutable state is touched.

     B. {e Interning lookups} (parallel by shard).  The intern table is
        sharded by key hash ([Sharded_tbl]); each worker scans the level's
        candidates in global order, handles only the keys its shard owns,
        and classifies every candidate as already-interned, duplicate of an
        earlier candidate of this level, or fresh — reading the main table
        and a level-local pending table.  Shards are disjoint by
        construction, so phase B writes nothing any other worker reads.

     C. {e Merge} (sequential, cheap).  Walk the candidates once in global
        order — frontier slot, then activation-subset order, i.e. exactly
        the order in which the sequential BFS performs its expansions —
        assigning dense ids to fresh configurations, recording adjacency
        and parent pointers, running safety checks and applying the
        [max_configs] cap.  Because ids, parents, adjacency, violation
        order and the cap all derive from this jobs-independent order, the
        resulting report is byte-identical for every [jobs] value and to
        the reference implementation.  Phases A and B do all the engine
        and hashing work; phase C only moves integers. *)
  let explore_parallel ~jobs ~max_configs ~max_violations ~mode ~check_outputs
      ~check_config graph ~idents =
    let jobs = max 1 jobs in
    let engines = Array.init jobs (fun _ -> E.create graph ~idents) in
    let initial = E.snapshot engines.(0) in
    let tbl = Shards.create ~shards:jobs 1024 in
    let nshards = Shards.shards tbl in
    let parent_pred = Vec.create ~capacity:1024 ~dummy:(-1) () in
    let parent_mask = Vec.create ~capacity:1024 ~dummy:0 () in
    let adj_off = Vec.create ~capacity:1024 ~dummy:0 () in
    let adj_data = Vec.create ~capacity:4096 ~dummy:0 () in
    Vec.push adj_off 0;
    let next_id = ref 0 in
    let transitions = ref 0 in
    let terminal = ref 0 in
    let safety = ref [] in
    let n_safety = ref 0 in
    let complete = ref true in
    let next_ids = Vec.create ~capacity:1024 ~dummy:0 () in
    let next_cfgs = Vec.create ~capacity:1024 ~dummy:initial () in
    let register config =
      let id = !next_id in
      incr next_id;
      Vec.push parent_pred (-1);
      Vec.push parent_mask 0;
      if E.config_unfinished_mask config = 0 then incr terminal;
      Vec.push next_ids id;
      Vec.push next_cfgs config;
      id
    in
    let check id config =
      if !n_safety < max_violations then begin
        let record message =
          incr n_safety;
          safety := (message, id) :: !safety
        in
        (match check_outputs with
        | None -> ()
        | Some f -> (
            match f (E.config_outputs config) with
            | None -> ()
            | Some msg -> record msg));
        match check_config with
        | None -> ()
        | Some f ->
            E.restore engines.(0) config;
            (match f engines.(0) with None -> () | Some msg -> record msg)
      end
    in
    let root_key = E.config_key initial in
    let root_id = register initial in
    Shards.add tbl root_key root_id;
    check root_id initial;
    Domain_pool.with_pool ~jobs (fun pool ->
        let frontier_ids = ref (Vec.to_array next_ids) in
        let frontier_cfgs = ref (Vec.to_array next_cfgs) in
        Vec.clear next_ids;
        Vec.clear next_cfgs;
        while Array.length !frontier_ids > 0 do
          let fids = !frontier_ids and fcfgs = !frontier_cfgs in
          let flen = Array.length fids in
          if !next_id >= max_configs then begin
            (* The cap is already hit: no expansion can happen, but every
               pending configuration that still has working processes marks
               the exploration incomplete — exactly the sequential path. *)
            Array.iter
              (fun c -> if E.config_unfinished_mask c <> 0 then complete := false)
              fcfgs;
            for _ = 1 to flen do
              Vec.push adj_off (Vec.length adj_data)
            done;
            frontier_ids := [||];
            frontier_cfgs := [||]
          end
          else begin
            (* phase A *)
            let slices =
              Array.init jobs (fun s -> (s, flen * s / jobs, flen * (s + 1) / jobs))
            in
            let expanded =
              Domain_pool.map pool
                (fun (s, lo, hi) ->
                  let eng = engines.(s) in
                  Array.init (hi - lo) (fun i ->
                      let config = fcfgs.(lo + i) in
                      let um = E.config_unfinished_mask config in
                      if um = 0 then [||]
                      else
                        Array.map
                          (fun mask ->
                            E.restore eng config;
                            E.activate_mask eng mask;
                            let succ = E.snapshot eng in
                            (mask, E.config_key succ, succ))
                          (masks_of mode um)))
                slices
            in
            (* flatten into global candidate order *)
            let ncands =
              Array.fold_left
                (fun acc slice ->
                  Array.fold_left (fun a c -> a + Array.length c) acc slice)
                0 expanded
            in
            let cand_off = Array.make (flen + 1) 0 in
            let cands = Array.make (max 1 ncands) (0, root_key, initial) in
            let k = ref 0 in
            Array.iteri
              (fun s per_cfg ->
                let _, lo, _ = slices.(s) in
                Array.iteri
                  (fun i arr ->
                    cand_off.(lo + i) <- !k;
                    Array.iter
                      (fun c ->
                        cands.(!k) <- c;
                        incr k)
                      arr)
                  per_cfg)
              expanded;
            cand_off.(flen) <- !k;
            (* phase B *)
            let verdict = Array.make (max 1 ncands) (-1) in
            ignore
              (Domain_pool.map pool
                 (fun shard ->
                   let pending = E.Key_tbl.create 64 in
                   for j = 0 to ncands - 1 do
                     let _, key, _ = cands.(j) in
                     if Shards.shard_of tbl key = shard then
                       match Shards.find_opt_in tbl ~shard key with
                       | Some id -> verdict.(j) <- -id - 2
                       | None -> (
                           match E.Key_tbl.find_opt pending key with
                           | Some j' -> verdict.(j) <- j'
                           | None -> E.Key_tbl.add pending key j)
                   done)
                 (Array.init nshards Fun.id));
            (* phase C *)
            let resolved = Array.make (max 1 ncands) (-1) in
            for f = 0 to flen - 1 do
              let uid = fids.(f) in
              for j = cand_off.(f) to cand_off.(f + 1) - 1 do
                if !next_id >= max_configs then complete := false
                else begin
                  let mask, key, config = cands.(j) in
                  incr transitions;
                  let vid =
                    let v = verdict.(j) in
                    if v <= -2 then -v - 2
                    else if v >= 0 then resolved.(v)
                    else begin
                      let id = register config in
                      Shards.add tbl key id;
                      Vec.set parent_pred id uid;
                      Vec.set parent_mask id mask;
                      check id config;
                      resolved.(j) <- id;
                      id
                    end
                  in
                  Vec.push adj_data mask;
                  Vec.push adj_data vid
                end
              done;
              Vec.push adj_off (Vec.length adj_data)
            done;
            frontier_ids := Vec.to_array next_ids;
            frontier_cfgs := Vec.to_array next_cfgs;
            Vec.clear next_ids;
            Vec.clear next_cfgs
          end
        done);
    {
      total = !next_id;
      transitions = !transitions;
      terminal = !terminal;
      complete = !complete;
      parent_pred = Vec.to_array parent_pred;
      parent_mask = Vec.to_array parent_mask;
      adj_off = Vec.to_array adj_off;
      adj_data = Vec.to_array adj_data;
      safety_raw = List.rev !safety;
    }

  let explore ?(max_configs = 500_000) ?(max_violations = 5)
      ?(mode = `All_subsets) ?(impl = `Hashcons) ?(jobs = 1) ?check_outputs
      ?check_config graph ~idents =
    let n = Asyncolor_topology.Graph.n graph in
    if n > Sys.int_size - 1 then
      invalid_arg "Explorer.explore: packed activation masks need n <= 62";
    let packed =
      match impl with
      | `Reference ->
          explore_reference ~max_configs ~max_violations ~mode ~check_outputs
            ~check_config graph ~idents
      | `Hashcons when jobs <= 1 ->
          explore_seq_packed ~max_configs ~max_violations ~mode ~check_outputs
            ~check_config graph ~idents
      | `Hashcons ->
          explore_parallel ~jobs ~max_configs ~max_violations ~mode
            ~check_outputs ~check_config graph ~idents
    in
    finish_report ~n packed

  let pp_report ppf r =
    Format.fprintf ppf
      "@[<v>configs=%d transitions=%d terminal=%d complete=%b wait_free=%b \
       worst_activations=%d safety_violations=%d%a@]"
      r.configs r.transitions r.terminal_configs r.complete r.wait_free
      r.worst_case_activations (List.length r.safety)
      (fun ppf -> function
        | None -> ()
        | Some v -> Format.fprintf ppf "@,livelock: %s" v.message)
      r.livelock
end
