module Vec = Asyncolor_util.Vec
module Ring = Asyncolor_util.Ring
module Executor = Asyncolor_util.Executor
module Level_log = Asyncolor_util.Sharded_tbl.Level_log
module Checkpoint = Asyncolor_resilience.Checkpoint
module Chaos = Asyncolor_resilience.Chaos
module Budget = Asyncolor_resilience.Budget
module Spill = Asyncolor_resilience.Spill
module Diag = Asyncolor_resilience.Diag
module Obs = Asyncolor_obs.Obs

(* The explorer's observability handles, resolved once per run so the hot
   paths touch pre-looked-up counters (an atomic add each), never the
   sink's name registry.  [oc_configs] counts dense-id registrations and
   therefore always equals [report.configs] for a fresh (non-resumed)
   packed run — a property the qcheck suite pins at jobs 1/2/4. *)
type octx = {
  o : Obs.t;
  oc_configs : Obs.Counter.t;
  oc_transitions : Obs.Counter.t;
  oc_levels : Obs.Counter.t;
  oc_ckpt_saves : Obs.Counter.t;
  oc_wait_ns : Obs.Counter.t;  (* ns the merge spent blocked on futures *)
  oc_overlap : Obs.Counter.t;  (* submissions past the current level *)
  oc_orbit_hits : Obs.Counter.t;  (* successors remapped to a smaller orbit rep *)
  oc_canon_ns : Obs.Counter.t;  (* ns spent canonicalizing *)
  oc_spill_wb : Obs.Counter.t;  (* bytes written to spill files *)
  oc_spill_rb : Obs.Counter.t;  (* bytes read back from spill files *)
  og_frontier : Obs.Gauge.t;  (* widest BFS frontier *)
  og_overlap : Obs.Gauge.t;  (* most cross-level expansions in flight *)
  og_spill_levels : Obs.Gauge.t;  (* levels currently on disk *)
  og_heap : Obs.Gauge.t;  (* peak live heap words sampled at merge boundaries *)
}

let make_octx o =
  {
    o;
    oc_configs = Obs.counter o "explorer.configs";
    oc_transitions = Obs.counter o "explorer.transitions";
    oc_levels = Obs.counter o "explorer.levels";
    oc_ckpt_saves = Obs.counter o "checkpoint.saves";
    oc_wait_ns = Obs.counter o "explorer.wait_ns";
    oc_overlap = Obs.counter o "explorer.overlap_submits";
    oc_orbit_hits = Obs.counter o "explorer.orbit_hits";
    oc_canon_ns = Obs.counter o "explorer.canon_ns";
    oc_spill_wb = Obs.counter o "spill.bytes_written";
    oc_spill_rb = Obs.counter o "spill.bytes_read";
    og_frontier = Obs.gauge o "explorer.frontier_max";
    og_overlap = Obs.gauge o "exec.kappa_overlap";
    og_spill_levels = Obs.gauge o "spill.levels_on_disk";
    og_heap = Obs.gauge o "explorer.peak_heap_words";
  }

(* --- activation subsets: list form (reference) and packed form --------- *)

let subsets_of mode procs =
  match (mode, procs) with
  | _, [] -> []
  | `Singletons, procs -> List.map (fun p -> [ p ]) procs
  | `All_subsets, procs ->
      let procs = Array.of_list procs in
      let k = Array.length procs in
      List.init ((1 lsl k) - 1) (fun m ->
          let mask = m + 1 in
          let acc = ref [] in
          for i = k - 1 downto 0 do
            if mask land (1 lsl i) <> 0 then acc := procs.(i) :: !acc
          done;
          !acc)

let subset_of_mask mask =
  let acc = ref [] in
  for p = Sys.int_size - 2 downto 0 do
    if mask land (1 lsl p) <> 0 then acc := p :: !acc
  done;
  !acc

let mask_of_subset subset = List.fold_left (fun m p -> m lor (1 lsl p)) 0 subset

(* The packed counterpart of [subsets_of]: all activation sets drawn from
   the set bits of [unfinished], as bitmasks, in an order whose unpacked
   lists are exactly [subsets_of mode (subset_of_mask unfinished)] —
   element for element.  That order identity is what keeps the packed
   explorer's reports (parent pointers, adjacency, lasso schedules)
   byte-identical to the reference implementation. *)
let masks_of mode unfinished =
  match mode with
  | `Singletons ->
      let k = ref 0 in
      let m = ref unfinished in
      while !m <> 0 do
        incr k;
        m := !m land (!m - 1)
      done;
      let out = Array.make !k 0 in
      let i = ref 0 in
      for p = 0 to Sys.int_size - 2 do
        if unfinished land (1 lsl p) <> 0 then begin
          out.(!i) <- 1 lsl p;
          incr i
        end
      done;
      out
  | `All_subsets ->
      let positions = Array.make (Sys.int_size - 1) 0 in
      let k = ref 0 in
      for p = 0 to Sys.int_size - 2 do
        if unfinished land (1 lsl p) <> 0 then begin
          positions.(!k) <- p;
          incr k
        end
      done;
      let k = !k in
      if k = 0 then [||]
      else
        Array.init
          ((1 lsl k) - 1)
          (fun m ->
            let c = m + 1 in
            let mask = ref 0 in
            for i = 0 to k - 1 do
              if c land (1 lsl i) <> 0 then mask := !mask lor (1 lsl positions.(i))
            done;
            !mask)

(* Shared across functor instances: experiments convert reports between
   differently-instantiated explorers, and the orbit statistics carry no
   protocol-specific type. *)
type orbit_stats = {
  group_order : int;
  expanded_configs : int;
  expanded_transitions : int;
  expanded_terminal : int;
}

module Make (P : Asyncolor_kernel.Protocol.S) = struct
  module E = Asyncolor_kernel.Engine.Make (P)

  module Tbl = Asyncolor_util.Sharded_tbl.Make (struct
    type t = E.key

    let equal = E.key_equal
    let hash = E.key_hash
  end)

  module CMap = Map.Make (struct
    type t = E.config

    let compare = E.config_compare
  end)

  type violation = { message : string; schedule : int list list }

  type report = {
    configs : int;
    transitions : int;
    terminal_configs : int;
    complete : bool;
    wait_free : bool;
    livelock : violation option;
    safety : violation list;
    worst_case_activations : int;
    orbit : orbit_stats option;
  }

  (* --- dihedral symmetry: ident-preserving automorphisms --------------- *)

  (* The subgroup the quotient runs under: the graph's index-dihedral
     automorphisms that also fix the identifier assignment pointwise —
     [P.init ~ident] bakes idents into states, so only ident-preserving
     permutations map reachable configurations to reachable ones.
     Identity first (the head of [Graph.automorphisms]), deterministic
     order throughout: the canonical representative below is a pure
     function of the configuration, whichever domain computes it. *)
  let symmetry_group ~symmetry graph ~idents =
    if not symmetry then
      [| Array.init (Asyncolor_topology.Graph.n graph) Fun.id |]
    else
      Asyncolor_topology.Graph.automorphisms graph
      |> List.filter (fun sigma ->
             let ok = ref true in
             Array.iteri
               (fun p sp -> if idents.(sp) <> idents.(p) then ok := false)
               sigma;
             !ok)
      |> Array.of_list

  (* [canonicalize group c] is the orbit-canonicalization at the heart of
     the symmetry reduction: among the candidate keys
     [q -> key_data (config_permute c sigma)] for every [sigma] in the
     group — built by concatenating [c]'s per-process key segments in
     permuted order, not by re-encoding — pick the lexicographically
     least.  Returns [(key, representative, orbit size, winner index)]:
     the representative is [config_permute c group.(winner)], whose
     packed key is exactly the winning candidate (the engine's
     segment-concatenation invariant), and the orbit size is the number
     of distinct candidates — what the report's orbit-expansion
     accounting sums.  With the trivial group this is [config_key] plus
     four words. *)
  let canonicalize group c =
    if Array.length group = 1 then (E.config_key c, c, 1, 0)
    else begin
      let segs = E.config_key_segments c in
      let n = Array.length segs in
      let total = Array.fold_left (fun a s -> a + Array.length s) 0 segs in
      let build sigma =
        let out = Array.make total 0 in
        let off = ref 0 in
        for q = 0 to n - 1 do
          let s = segs.(sigma.(q)) in
          Array.blit s 0 out !off (Array.length s);
          off := !off + Array.length s
        done;
        out
      in
      let cands = Array.map build group in
      let best = ref 0 in
      for i = 1 to Array.length cands - 1 do
        if compare cands.(i) cands.(!best) < 0 then best := i
      done;
      let distinct = ref 0 in
      Array.iteri
        (fun i ci ->
          let dup = ref false in
          for j = 0 to i - 1 do
            if (not !dup) && cands.(j) = ci then dup := true
          done;
          if not !dup then incr distinct)
        cands;
      let bi = !best in
      let rep = if bi = 0 then c else E.config_permute c group.(bi) in
      (E.key_of_data cands.(bi), rep, !distinct, bi)
    end

  (* The packed configuration graph both builders produce: flat int
     stores only — dense ids, CSR adjacency, parent pointers as (pred id,
     activation mask).  The boxed configurations themselves are not part
     of it; the parallel builder keeps only one frontier of them alive at
     a time.  Adjacency is accessed through [adj_get] so a spilled run
     can reassemble it into off-heap storage: entries are
     (mask, vid) pairs at [adj_stride = 2], or (mask, vid, perm) triples
     at stride 3 under symmetry reduction, where [perm] indexes [group]
     with the automorphism [sigma] such that the true successor is the
     stored one permuted by [sigma] — the translation the worst-case DP
     needs to stay exact on the quotient. *)
  type packed = {
    total : int;
    transitions : int;
    terminal : int;
    complete : bool;
    parent_pred : int array;  (* -1 at the root *)
    parent_mask : int array;
    adj_off : int array;  (* total + 1 offsets into the adjacency stream *)
    adj_get : int -> int;  (* flattened adjacency stream *)
    adj_stride : int;  (* 2, or 3 with per-edge automorphism indices *)
    group : int array array;  (* symmetry group; singleton identity when off *)
    expanded : (int * int * int) option;
        (* orbit-expanded (configs, transitions, terminal) — symmetry only *)
    safety_raw : (string * int) list;  (* discovery order *)
  }

  (* Parent pointers give, for every configuration, one schedule prefix
     that reaches it. *)
  let schedule_to pred mask id =
    let rec loop id acc =
      let p = pred.(id) in
      if p < 0 then acc else loop p (subset_of_mask mask.(id) :: acc)
    in
    loop id []

  (* Cycle detection by DFS from the root over the packed adjacency; all
     stored configs are reachable from the root by construction.  The
     stack is explicit (ids + edge cursors + the masks of the current tree
     path), so the longest simple path of the configuration graph — which
     at K7 scale exceeds any native stack — costs heap words, not frames. *)
  let detect_livelock p =
    let ad = p.adj_get in
    let stride = p.adj_stride in
    let color = Bytes.make p.total '\000' in
    let finish = Vec.create ~capacity:1024 ~dummy:0 () in
    let livelock = ref None in
    let st_id = Vec.create ~capacity:64 ~dummy:0 () in
    let st_cur = Vec.create ~capacity:64 ~dummy:0 () in
    let path = Vec.create ~capacity:64 ~dummy:0 () in
    Vec.push st_id 0;
    Vec.push st_cur p.adj_off.(0);
    Bytes.set color 0 '\001';
    while Vec.length st_id > 0 && !livelock = None do
      let depth = Vec.length st_id - 1 in
      let u = Vec.get st_id depth in
      let cur = Vec.get st_cur depth in
      if cur < p.adj_off.(u + 1) then begin
        Vec.set st_cur depth (cur + stride);
        let mask = ad cur and v = ad (cur + 1) in
        match Bytes.get color v with
        | '\000' ->
            Bytes.set color v '\001';
            Vec.push path mask;
            Vec.push st_id v;
            Vec.push st_cur p.adj_off.(v)
        | '\001' ->
            (* A back edge: the masks on the tree path plus this one are a
               lasso schedule (prefix + cycle) witnessing the livelock. *)
            let sched = ref [ subset_of_mask mask ] in
            for i = Vec.length path - 1 downto 0 do
              sched := subset_of_mask (Vec.get path i) :: !sched
            done;
            livelock :=
              Some
                {
                  message =
                    Printf.sprintf
                      "livelock: configuration cycle via activation of working \
                       processes (cycle re-enters config %d)"
                      v;
                  schedule = !sched;
                }
        | _ -> ()
      end
      else begin
        ignore (Vec.pop st_id);
        ignore (Vec.pop st_cur);
        Bytes.set color u '\002';
        Vec.push finish u;
        if Vec.length st_id > 0 then ignore (Vec.pop path)
      end
    done;
    (!livelock, finish)

  (* Exact worst case by longest-path DP over the DAG in topological order
     (the reversed finish order).  One flat [total * n] int table instead
     of a row array per configuration.

     Under symmetry reduction a quotient edge [u -(m, sigma)-> v] stands
     for the original transitions [c -m'-> d] with [c] in [u]'s orbit;
     position [q] of [v] holds the process that sat at position
     [sigma.(q)] of the true successor of [u], i.e. of [u] itself.  The
     recurrence therefore reads the predecessor row and the activation
     mask at the {e translated} index [sigma.(q)] — without it the DP
     double-counts whenever one process line enters a configuration whose
     representative renames it (a two-process clique with equal idents
     already exhibits the off-by-one). *)
  let exact_worst ~n p finish =
    let ad = p.adj_get in
    let stride = p.adj_stride in
    let identity = p.group.(0) in
    let dp = Array.make (p.total * n) 0 in
    let best = ref 0 in
    for i = Vec.length finish - 1 downto 0 do
      let u = Vec.get finish i in
      let bu = u * n in
      let e = ref p.adj_off.(u) in
      while !e < p.adj_off.(u + 1) do
        let mask = ad !e and v = ad (!e + 1) in
        let sigma = if stride = 2 then identity else p.group.(ad (!e + 2)) in
        let bv = v * n in
        for q = 0 to n - 1 do
          let qu = sigma.(q) in
          let du = dp.(bu + qu) in
          if mask land (1 lsl qu) <> 0 then begin
            let cand = du + 1 in
            if cand > dp.(bv + q) then begin
              dp.(bv + q) <- cand;
              if cand > !best then best := cand
            end
          end
          else if du > dp.(bv + q) then dp.(bv + q) <- du
        done;
        e := !e + stride
      done
    done;
    !best

  let finish_report ~octx ~n (p : packed) =
    let safety =
      List.map
        (fun (message, id) ->
          { message; schedule = schedule_to p.parent_pred p.parent_mask id })
        p.safety_raw
    in
    let livelock, finish =
      Obs.span octx.o "analyze.livelock" (fun () -> detect_livelock p)
    in
    let wait_free = livelock = None in
    let worst =
      if (not wait_free) || not p.complete then -1
      else Obs.span octx.o "analyze.worstcase" (fun () -> exact_worst ~n p finish)
    in
    {
      configs = p.total;
      transitions = p.transitions;
      terminal_configs = p.terminal;
      complete = p.complete;
      wait_free;
      livelock;
      safety;
      worst_case_activations = worst;
      orbit =
        Option.map
          (fun (c, t, term) ->
            {
              group_order = Array.length p.group;
              expanded_configs = c;
              expanded_transitions = t;
              expanded_terminal = term;
            })
          p.expanded;
    }

  (* --- the seed implementation: sequential BFS, Map interning ---------- *)

  (* Kept verbatim in spirit as the oracle for the differential tests: a
     FIFO queue over a [Map] keyed by [config_compare], expanding with the
     list-based [subsets_of] and [E.activate].  Only the output format
     changed with the data layer (packed adjacency and parent arrays). *)
  let explore_reference ~max_configs ~max_violations ~mode ~check_outputs
      ~check_config graph ~idents =
    let engine = E.create graph ~idents in
    let initial = E.snapshot engine in
    let store : E.config Vec.t = Vec.create ~capacity:1024 ~dummy:initial () in
    let parent_pred = Vec.create ~capacity:1024 ~dummy:(-1) () in
    let parent_mask = Vec.create ~capacity:1024 ~dummy:0 () in
    let adj_off = Vec.create ~capacity:1024 ~dummy:0 () in
    let adj_data = Vec.create ~capacity:4096 ~dummy:0 () in
    Vec.push adj_off 0;
    let next_id = ref 0 in
    let transitions = ref 0 in
    let terminal = ref 0 in
    let safety = ref [] in
    let n_safety = ref 0 in
    let complete = ref true in
    let register config =
      let id = !next_id in
      incr next_id;
      Vec.push store config;
      Vec.push parent_pred (-1);
      Vec.push parent_mask 0;
      if E.config_unfinished config = [] then incr terminal;
      id
    in
    let ids = ref CMap.empty in
    let intern config =
      match CMap.find_opt config !ids with
      | Some id -> (id, false)
      | None ->
          let id = register config in
          ids := CMap.add config id !ids;
          (id, true)
    in
    (* Runs the safety predicates; the engine must currently hold [config]. *)
    let check id config =
      if !n_safety < max_violations then begin
        let record message =
          incr n_safety;
          safety := (message, id) :: !safety
        in
        (match check_outputs with
        | None -> ()
        | Some f -> (
            match f (E.config_outputs config) with
            | None -> ()
            | Some msg -> record msg));
        match check_config with
        | None -> ()
        | Some f -> (
            match f engine with None -> () | Some msg -> record msg)
      end
    in
    let queue = Queue.create () in
    let root_id, _ = intern initial in
    check root_id initial;
    Queue.add root_id queue;
    while not (Queue.is_empty queue) do
      let uid = Queue.pop queue in
      let config = Vec.get store uid in
      let unfinished = E.config_unfinished config in
      List.iter
        (fun subset ->
          if !next_id < max_configs then begin
            E.restore engine config;
            E.activate engine subset;
            let succ = E.snapshot engine in
            let vid, fresh = intern succ in
            incr transitions;
            Vec.push adj_data (mask_of_subset subset);
            Vec.push adj_data vid;
            if fresh then begin
              Vec.set parent_pred vid uid;
              Vec.set parent_mask vid (mask_of_subset subset);
              check vid succ;
              Queue.add vid queue
            end
          end
          else complete := false)
        (subsets_of mode unfinished);
      Vec.push adj_off (Vec.length adj_data)
    done;
    let adj = Vec.to_array adj_data in
    {
      total = !next_id;
      transitions = !transitions;
      terminal = !terminal;
      complete = !complete;
      parent_pred = Vec.to_array parent_pred;
      parent_mask = Vec.to_array parent_mask;
      adj_off = Vec.to_array adj_off;
      adj_get = Array.get adj;
      adj_stride = 2;
      group = [| Array.init (Asyncolor_topology.Graph.n graph) Fun.id |];
      expanded = None;
      safety_raw = List.rev !safety;
    }

  (* --- crash-safe packed exploration: shared state --------------------- *)

  (* Everything the two packed builders mutate, gathered in one record so
     a checkpoint can snapshot it and a resumed run can pick it back up.
     The boxed configurations are *not* part of it: each builder keeps its
     own pending container (FIFO queue, or frontier arrays whose
     concatenation is the same order), which is the only other state a
     checkpoint has to persist. *)
  type bfs_state = {
    s_parent_pred : int Vec.t;
    s_parent_mask : int Vec.t;
    s_adj_off : int Vec.t;
    s_adj_data : Level_log.t;
        (* the adjacency stream — the one store whose closed prefix can
           leave the heap (see [Level_log]); offsets in [s_adj_off] are
           absolute stream positions, so spilling never renumbers *)
    s_orbit : int Vec.t;  (* orbit size per dense id; empty when symmetry off *)
    mutable s_next_id : int;
    mutable s_transitions : int;
    mutable s_terminal : int;
    mutable s_exp_configs : int;  (* orbit-expanded counts; symmetry only *)
    mutable s_exp_transitions : int;
    mutable s_exp_terminal : int;
    mutable s_safety_rev : (string * int) list;  (* reverse discovery order *)
    mutable s_n_safety : int;
    mutable s_complete : bool;
  }

  let fresh_state ?spill_threshold () =
    let st =
      {
        s_parent_pred = Vec.create ~capacity:1024 ~dummy:(-1) ();
        s_parent_mask = Vec.create ~capacity:1024 ~dummy:0 ();
        s_adj_off = Vec.create ~capacity:1024 ~dummy:0 ();
        s_adj_data = Level_log.create ?threshold_words:spill_threshold ();
        s_orbit = Vec.create ~capacity:1024 ~dummy:1 ();
        s_next_id = 0;
        s_transitions = 0;
        s_terminal = 0;
        s_exp_configs = 0;
        s_exp_transitions = 0;
        s_exp_terminal = 0;
        s_safety_rev = [];
        s_n_safety = 0;
        s_complete = true;
      }
    in
    Vec.push st.s_adj_off 0;
    st

  (* Exploration parameters threaded through both packed builders. *)
  type params = {
    mode : [ `All_subsets | `Singletons ];
    max_configs : int;
    max_violations : int;
    check_outputs : (P.output option array -> string option) option;
    check_config : (E.t -> string option) option;
    checkpoint : (string * int) option;
    budget : Budget.t option;
    stop : (configs:int -> bool) option;
    symmetry : bool;
    group : int array array;  (* singleton identity when symmetry off *)
    spill : (Spill.t * int) option;  (* store, threshold in words *)
    chaos : Chaos.t;
    retry : Chaos.Retry.cfg;
    octx : octx;
  }

  let spill_fetch ~params ~level =
    match params.spill with
    | None -> assert false  (* nothing ever seals without a threshold *)
    | Some (sp, _) ->
        let before = Spill.bytes_read sp in
        let data = Spill.read sp ~level in
        Obs.Counter.add params.octx.oc_spill_rb (Spill.bytes_read sp - before);
        data

  let packed_of_state ~params st =
    let fetch = spill_fetch ~params in
    let adj_get =
      match params.spill with
      | None ->
          let a = Level_log.to_array ~fetch st.s_adj_data in
          Array.get a
      | Some _ ->
          (* Off-heap reassembly: the analyses of a spilled run walk the
             stream through a bigarray the GC neither scans nor counts,
             so the peak-live-heap win of spilling survives the analysis
             phase. *)
          let ba = Level_log.to_bigarray ~fetch st.s_adj_data in
          fun i -> ba.{i}
    in
    {
      total = st.s_next_id;
      transitions = st.s_transitions;
      terminal = st.s_terminal;
      complete = st.s_complete;
      parent_pred = Vec.to_array st.s_parent_pred;
      parent_mask = Vec.to_array st.s_parent_mask;
      adj_off = Vec.to_array st.s_adj_off;
      adj_get;
      adj_stride = (if params.symmetry then 3 else 2);
      group = params.group;
      expanded =
        (if params.symmetry then
           Some (st.s_exp_configs, st.s_exp_transitions, st.s_exp_terminal)
         else None);
      safety_raw = List.rev st.s_safety_rev;
    }

  let register_st ~params st config ~orbit =
    let id = st.s_next_id in
    st.s_next_id <- id + 1;
    Obs.Counter.incr params.octx.oc_configs;
    Vec.push st.s_parent_pred (-1);
    Vec.push st.s_parent_mask 0;
    if params.symmetry then begin
      Vec.push st.s_orbit orbit;
      st.s_exp_configs <- st.s_exp_configs + orbit
    end;
    if E.config_unfinished_mask config = 0 then begin
      st.s_terminal <- st.s_terminal + 1;
      if params.symmetry then st.s_exp_terminal <- st.s_exp_terminal + orbit
    end;
    id

  (* Runs the safety predicates; the engine must currently hold [config]
     (seed contract). *)
  let safety_check ~params st engine id config =
    if st.s_n_safety < params.max_violations then begin
      let record message =
        st.s_n_safety <- st.s_n_safety + 1;
        st.s_safety_rev <- (message, id) :: st.s_safety_rev
      in
      (match params.check_outputs with
      | None -> ()
      | Some f -> (
          match f (E.config_outputs config) with
          | None -> ()
          | Some msg -> record msg));
      match params.check_config with
      | None -> ()
      | Some f -> (match f engine with None -> () | Some msg -> record msg)
    end

  let should_stop ~params st =
    (match params.stop with
    | Some f -> f ~configs:st.s_next_id
    | None -> false)
    ||
    match params.budget with Some b -> Budget.exceeded b | None -> false

  (* --- checkpoint payload ---------------------------------------------- *)

  (* Marshalled as the payload of an [Asyncolor_resilience.Checkpoint]
     container.  Intern-table keys are stored as their packed int payloads
     ([E.key_data]) indexed by dense id and rebuilt with [E.key_of_data]
     — the hash is recomputed on load, never trusted.  [ck_pending] holds
     the interned-but-unexpanded configurations in FIFO order (for the
     pipelined builder: the ring's [lo, hi) window, whose positions are
     the stored ids — a contiguous slice of that same order).  Both
     builders expand pending entries in stored order and assign dense ids
     in expansion order, so a resumed run — under any [jobs] value or
     policy — produces the same report, byte for byte, as one that was
     never interrupted. *)
  type ckpt = {
    ck_protocol : string;
    ck_graph : Asyncolor_topology.Graph.t;
    ck_idents : int array;
    ck_mode : [ `All_subsets | `Singletons ];
    ck_max_configs : int;
    ck_max_violations : int;
    ck_next_id : int;
    ck_transitions : int;
    ck_terminal : int;
    ck_complete : bool;
    ck_parent_pred : int array;
    ck_parent_mask : int array;
    ck_adj_off : int array;
    ck_adj_data : int array;
    ck_safety_rev : (string * int) list;
    ck_symmetry : bool;
    ck_orbit : int array;  (* orbit size by dense id; [||] when symmetry off *)
    ck_expanded : int * int * int;
        (* orbit-expanded (configs, transitions, terminal) so far *)
    ck_keys : int array array;  (* packed key payloads, indexed by dense id *)
    ck_pending : (int * E.config) array;  (* FIFO order *)
  }

  (* Bump whenever the [ckpt] record or the engine's key packing changes
     shape — [Checkpoint.load] rejects other versions up front.
     v2: symmetry fields (ck_symmetry/ck_orbit/ck_expanded) and the
     stride-3 adjacency encoding under symmetry.  The adjacency stream is
     persisted in full even on a spilled run (reassembled transiently at
     save time), so a checkpoint stays a single self-contained file and
     resuming needs no spill directory — the resumed run re-spills as its
     own levels close. *)
  let ckpt_version = 2

  let save_ckpt ~params ~graph ~idents st ~keys ~pending path =
    Obs.Counter.incr params.octx.oc_ckpt_saves;
    Obs.span params.octx.o
      ~args:[ ("configs", string_of_int st.s_next_id) ]
      "checkpoint.save"
    @@ fun () ->
    Checkpoint.save_rotated ~chaos:params.chaos ~retry:params.retry ~path
      ~version:ckpt_version
      {
        ck_protocol = P.name;
        ck_graph = graph;
        ck_idents = Array.copy idents;
        ck_mode = params.mode;
        ck_max_configs = params.max_configs;
        ck_max_violations = params.max_violations;
        ck_next_id = st.s_next_id;
        ck_transitions = st.s_transitions;
        ck_terminal = st.s_terminal;
        ck_complete = st.s_complete;
        ck_parent_pred = Vec.to_array st.s_parent_pred;
        ck_parent_mask = Vec.to_array st.s_parent_mask;
        ck_adj_off = Vec.to_array st.s_adj_off;
        ck_adj_data = Level_log.to_array ~fetch:(spill_fetch ~params) st.s_adj_data;
        ck_safety_rev = st.s_safety_rev;
        ck_symmetry = params.symmetry;
        ck_orbit = Vec.to_array st.s_orbit;
        ck_expanded = (st.s_exp_configs, st.s_exp_transitions, st.s_exp_terminal);
        ck_keys = keys ();
        ck_pending = pending ();
      }

  let keys_of_key_tbl tbl n =
    let a = Array.make n [||] in
    Tbl.iter (fun k id -> a.(id) <- E.key_data k) tbl;
    a

  (* --- packed sequential BFS: the jobs=1 fast path --------------------- *)

  (* Same discovery order as [explore_reference] (FIFO queue, subsets in
     [masks_of] order) and same packed output as the level-synchronous
     builder below, without the per-level batching: configurations are
     interned through their packed keys in one [Key_tbl], activation sets
     stay bitmasks end-to-end, and a configuration is dropped as soon as
     it has been expanded (only keys are retained), which is what keeps
     multi-million-configuration runs inside memory.

     The loop is boundary-instrumented: before expanding each queue entry
     it may write a periodic checkpoint (pending = the current queue) and
     polls the stop callback and resource budget.  On a hit it writes a
     final checkpoint while the queue is still intact, then degrades
     exactly like the [max_configs] cap: pending configurations that still
     have working processes mark the exploration incomplete, and every
     unexpanded entry keeps an empty adjacency row. *)
  (* Close the adjacency tail as a spill level if it crossed the
     threshold; [persist] runs the actual write (inline here, possibly a
     background executor task in the pipelined builder).  Called only at
     entry boundaries, where every pushed word is final. *)
  let maybe_seal ~params st persist =
    match params.spill with
    | None -> ()
    | Some _ -> (
        match Level_log.seal st.s_adj_data with
        | None -> ()
        | Some (level, data) -> persist level data)

  let spill_write ~params sp level data =
    let bytes = Spill.write sp ~level data in
    Obs.Counter.add params.octx.oc_spill_wb bytes;
    Obs.Gauge.max_ params.octx.og_spill_levels (Spill.levels_on_disk sp)

  (* Live-heap high-water mark, sampled every 1024 merge boundaries (and
     once at the end of the run) — the number the bench's
     [peak_live_words] field and the CLI's spill-pressure diagnostics
     read back.  [Gc.quick_stat] reads cached GC state, no heap walk. *)
  let sample_heap ~params ticks =
    incr ticks;
    if !ticks land 1023 = 0 && Obs.enabled params.octx.o then
      Obs.Gauge.max_ params.octx.og_heap (Gc.quick_stat ()).Gc.heap_words

  (* A persistent I/O failure — a checkpoint save or spill write that
     exhausted its retry budget — ends the run the way a spent budget
     does: cleanly, with a truncated [complete = false] report.  Never an
     exception up through the analysis phase, and never a corrupt file
     left as last-good (save_rotated guarantees the latter). *)
  let note_io_error io_error what e =
    if !io_error = None then begin
      io_error := Some what;
      Diag.printf "io: %s failed permanently (%s); truncating run\n" what
        (Printexc.to_string e)
    end

  let io_failed = function
    | Chaos.Retry.Exhausted _ | Chaos.Injected _ | Checkpoint.Corrupt _ ->
        true
    | _ -> false

  let run_seq ~params ~graph ~idents st tbl queue =
    let engine = E.create graph ~idents in
    let last_ck = ref st.s_next_id in
    let ticks = ref 0 in
    let io_error = ref None in
    let maybe_checkpoint ~force () =
      match params.checkpoint with
      | Some (path, every)
        when (force || st.s_next_id - !last_ck >= max 1 every)
             && !io_error = None -> (
          match
            save_ckpt ~params ~graph ~idents st
              ~keys:(fun () -> keys_of_key_tbl tbl st.s_next_id)
              ~pending:(fun () -> Array.of_seq (Queue.to_seq queue))
              path
          with
          | () ->
              last_ck := st.s_next_id;
              Diag.printf "checkpoint: %d configs, %d pending -> %s\n"
                st.s_next_id (Queue.length queue) path
          | exception e when io_failed e ->
              note_io_error io_error "checkpoint save" e)
      | _ -> ()
    in
    let stopped = ref false in
    while (not (Queue.is_empty queue)) && not !stopped do
      maybe_checkpoint ~force:false ();
      if should_stop ~params st || !io_error <> None then stopped := true
      else begin
        let uid, config = Queue.pop queue in
        let orbit_u =
          if params.symmetry then Vec.get st.s_orbit uid else 1
        in
        let um = E.config_unfinished_mask config in
        let masks = if um = 0 then [||] else masks_of params.mode um in
        Array.iter
          (fun mask ->
            if st.s_next_id < params.max_configs then begin
              E.restore engine config;
              E.activate_mask engine mask;
              let succ = E.snapshot engine in
              let t0 = if params.symmetry then Obs.now params.octx.o else 0L in
              let key, rep, orbit, pi = canonicalize params.group succ in
              if params.symmetry then begin
                Obs.Counter.add params.octx.oc_canon_ns
                  (Int64.to_int (Int64.sub (Obs.now params.octx.o) t0));
                if pi <> 0 then Obs.Counter.incr params.octx.oc_orbit_hits;
                st.s_exp_transitions <- st.s_exp_transitions + orbit_u
              end;
              st.s_transitions <- st.s_transitions + 1;
              Obs.Counter.incr params.octx.oc_transitions;
              let vid, fresh =
                match Tbl.find_opt tbl key with
                | Some id -> (id, false)
                | None ->
                    let id = register_st ~params st rep ~orbit in
                    Queue.add (id, rep) queue;
                    Tbl.add tbl key id;
                    (id, true)
              in
              Level_log.push st.s_adj_data mask;
              Level_log.push st.s_adj_data vid;
              if params.symmetry then Level_log.push st.s_adj_data pi;
              if fresh then begin
                Vec.set st.s_parent_pred vid uid;
                Vec.set st.s_parent_mask vid mask;
                if pi <> 0 then E.restore engine rep;
                safety_check ~params st engine vid rep
              end
            end
            else st.s_complete <- false)
          masks;
        Vec.push st.s_adj_off (Level_log.length st.s_adj_data);
        (* A write that exhausts its retries stops the run at the next
           boundary; the level's data stays resident in the spill store,
           so the analysis reassembly below still sees every word. *)
        (try
           maybe_seal ~params st (fun level data ->
               match params.spill with
               | Some (sp, _) -> spill_write ~params sp level data
               | None -> ())
         with e when io_failed e -> note_io_error io_error "spill write" e);
        sample_heap ~params ticks
      end
    done;
    if !stopped then begin
      maybe_checkpoint ~force:true ();
      Queue.iter
        (fun (_, c) ->
          if E.config_unfinished_mask c <> 0 then st.s_complete <- false)
        queue;
      Queue.iter
        (fun _ -> Vec.push st.s_adj_off (Level_log.length st.s_adj_data))
        queue
    end;
    if !io_error <> None then st.s_complete <- false;
    packed_of_state ~params st

  let spill_threshold_of params = Option.map snd params.spill

  let explore_seq ~params graph ~idents =
    let st = fresh_state ?spill_threshold:(spill_threshold_of params) () in
    let tbl = Tbl.create ~shards:16 1024 in
    let queue = Queue.create () in
    let engine = E.create graph ~idents in
    let initial = E.snapshot engine in
    (* The all-asleep root is fixed by every ident-preserving
       automorphism (orbit size 1), so canonicalizing it is a no-op — but
       going through [canonicalize] keeps the invariant that every
       interned key is canonical without a special case. *)
    let key, initial, orbit, _ = canonicalize params.group initial in
    let root_id = register_st ~params st initial ~orbit in
    Queue.add (root_id, initial) queue;
    Tbl.add tbl key root_id;
    safety_check ~params st engine root_id initial;
    run_seq ~params ~graph ~idents st tbl queue

  (* --- pipelined parallel BFS: async expansion, FIFO merge ------------- *)

  (* The parallel builder is a software pipeline over the executor.  The
     pending configurations — interned but not yet expanded — live in a
     FIFO {!Ring} whose absolute positions {e are} their dense ids, and
     the loop runs two cursors over it:

     - {e Submission} ([submit_pos], runs ahead): hand pending entries to
       the executor as expansion futures.  A task restores a
       domain-private engine (via domain-local storage) and computes the
       entry's full candidate array — (mask, packed key, successor) in
       [masks_of] order — touching no shared state.  Discovery is
       therefore async and unordered: whichever domain steals the task
       runs it whenever.

     - {e Merge} ([Ring.lo pend], the completion stream): await the
       {e head} future — strictly FIFO, regardless of completion order —
       and fold its candidates into the packed state exactly as the
       sequential builder would: intern through one [Key_tbl], assign
       dense ids in candidate order, record adjacency/parents, run the
       safety checks, apply the [max_configs] cap.  Ids, parents,
       adjacency, violation order and the cap all derive from this
       jobs- and steal-independent order, so the report is byte-identical
       for every [jobs] value, every policy, and the reference oracle.

     How far submission may run ahead is the policy's business:
     [stream_window] bounds in-flight futures (backpressure is counted
     when the bound stalls a ready submission), and the κ gate decides
     when the {e next} BFS level may start expanding — a position past
     the current level boundary is submittable only once a κ fraction of
     the current level has merged.  [Synchronous] is κ = 1 with an
     unbounded window: the whole level in flight, full barrier between
     levels — the old level-synchronous builder.  [Asynchronous {kappa}]
     starts level k+1 expansions while the tail of level k is still
     merging, which is where the barrier-wait time goes away (the
     ["explorer.wait_ns"] counter vs. the ["explorer.overlap_submits"]
     counter and ["exec.kappa_overlap"] gauge make the trade visible).

     The merge boundary doubles as the crash-safety boundary, exactly
     like the sequential builder's queue boundary: before merging each
     entry the loop may write a periodic checkpoint (pending = the ring,
     which {e is} the FIFO order the sequential builder would hold) and
     polls the stop callback and resource budget — same degradation
     contract, same checkpoint placement, byte-compatible files. *)
  let run_async ~params ~exec ~graph ~idents st tbl (pend : E.config Ring.t) =
    let octx = params.octx in
    let o = octx.o in
    (* One private engine per domain, created lazily on first expansion
       (the caller gets one too — it helps execute tasks while waiting). *)
    let engine_key = Domain.DLS.new_key (fun () -> E.create graph ~idents) in
    let check_engine = E.create graph ~idents in
    let check id config =
      (match params.check_config with
      | Some _ -> E.restore check_engine config
      | None -> ());
      safety_check ~params st check_engine id config
    in
    let expand config () =
      let um = E.config_unfinished_mask config in
      if um = 0 then [||]
      else begin
        let eng = Domain.DLS.get engine_key in
        Array.map
          (fun mask ->
            E.restore eng config;
            E.activate_mask eng mask;
            let succ = E.snapshot eng in
            (* Canonicalization runs inside the expansion task — on
               whichever domain stole it — which is safe because it is a
               pure function of the successor: the merge below sees the
               same (key, rep, orbit, perm) whatever the schedule. *)
            let t0 = if params.symmetry then Obs.now params.octx.o else 0L in
            let key, rep, orbit, pi = canonicalize params.group succ in
            if params.symmetry then
              Obs.Counter.add params.octx.oc_canon_ns
                (Int64.to_int (Int64.sub (Obs.now params.octx.o) t0));
            (mask, key, rep, orbit, pi))
          (masks_of params.mode um)
      end
    in
    (* In-flight background spill writes: drained before any checkpoint
       save (which rereads closed levels) and before the final analysis
       reassembly.  A background write failure is latched into
       [spill_err] — lowest level wins, for a deterministic diagnostic —
       and surfaces at the next merge boundary (satellite contract: the
       run fails at the faulting seal, not at reassembly time). *)
    let spill_futs : unit Executor.future list ref = ref [] in
    let spill_err : (int * exn) option Atomic.t = Atomic.make None in
    let note_spill_err level e =
      let rec latch () =
        match Atomic.get spill_err with
        | Some (l, _) when l <= level -> ()
        | cur ->
            if not (Atomic.compare_and_set spill_err cur (Some (level, e)))
            then latch ()
      in
      latch ()
    in
    let drain_spills () =
      List.iter Executor.await !spill_futs;
      spill_futs := []
    in
    let io_error = ref None in
    let check_spill_err () =
      match Atomic.get spill_err with
      | Some (level, e) ->
          note_io_error io_error
            (Printf.sprintf "spill write (level %d)" level)
            e
      | None -> ()
    in
    let last_ck = ref st.s_next_id in
    let ticks = ref 0 in
    let maybe_checkpoint ~force () =
      match params.checkpoint with
      | Some (path, every)
        when (force || st.s_next_id - !last_ck >= max 1 every)
             && !io_error = None -> (
          drain_spills ();
          check_spill_err ();
          if !io_error = None then
            match
              save_ckpt ~params ~graph ~idents st
                ~keys:(fun () -> keys_of_key_tbl tbl st.s_next_id)
                ~pending:(fun () ->
                  Array.init (Ring.length pend) (fun i ->
                      let p = Ring.lo pend + i in
                      (p, Ring.get pend p)))
                path
            with
            | () ->
                last_ck := st.s_next_id;
                Diag.printf "checkpoint: %d configs, %d pending -> %s\n"
                  st.s_next_id (Ring.length pend) path
            | exception e when io_failed e ->
                note_io_error io_error "checkpoint save" e)
      | _ -> ()
    in
    (* Futures for submitted-but-unmerged entries, same absolute
       positions as [pend]. *)
    let futs :
        (int * E.key * E.config * int * int) array Executor.future option
        Ring.t =
      Ring.create ~start:(Ring.lo pend) ~dummy:None ()
    in
    let submit_pos = ref (Ring.lo pend) in
    (* On resume the whole pending slice plays the role of the current
       frontier (it may span what were several levels originally —
       level accounting is observability, never output). *)
    let level = ref 0 in
    let lvl_lo = ref (Ring.lo pend) in
    let lvl_hi = ref (Ring.hi pend) in
    let open_level () =
      Obs.Counter.incr octx.oc_levels;
      Obs.Gauge.max_ octx.og_frontier (!lvl_hi - !lvl_lo);
      Some
        (Obs.begin_span o
           ~args:
             [
               ("level", string_of_int !level);
               ("frontier", string_of_int (!lvl_hi - !lvl_lo));
               ("configs", string_of_int st.s_next_id);
             ]
           "bfs.level")
    in
    let sp_level = ref (if Ring.length pend > 0 then open_level () else None) in
    let close_level () =
      match !sp_level with
      | Some sp ->
          Obs.end_span o sp;
          sp_level := None
      | None -> ()
    in
    let stopped = ref false in
    while Ring.length pend > 0 && not !stopped do
      let merge_pos = Ring.lo pend in
      if merge_pos = !lvl_hi then begin
        close_level ();
        incr level;
        lvl_lo := !lvl_hi;
        lvl_hi := Ring.hi pend;
        sp_level := open_level ()
      end;
      maybe_checkpoint ~force:false ();
      check_spill_err ();
      if should_stop ~params st || !io_error <> None then stopped := true
      else begin
        (* Re-read the window and κ every iteration: the watchdog may
           have degraded the policy since the last merge, and a degraded
           executor wants the tighter bound immediately. *)
        let window = Executor.stream_window exec in
        let kappa = Executor.policy_kappa (Executor.policy exec) in
        (* Top up the pipeline.  A position inside the current level is
           always submittable (window permitting); one past it only once
           a κ fraction of the level has merged. *)
        let need =
          int_of_float (Float.ceil (kappa *. float_of_int (!lvl_hi - !lvl_lo)))
        in
        let gate_open p = p < !lvl_hi || merge_pos - !lvl_lo >= need in
        while
          !submit_pos < Ring.hi pend
          && !submit_pos - merge_pos < window
          && gate_open !submit_pos
        do
          let p = !submit_pos in
          Ring.push futs (Some (Executor.submit exec (expand (Ring.get pend p))));
          if p >= !lvl_hi then begin
            Obs.Counter.incr octx.oc_overlap;
            Obs.Gauge.max_ octx.og_overlap (p - !lvl_hi + 1)
          end;
          incr submit_pos
        done;
        if !submit_pos < Ring.hi pend && !submit_pos - merge_pos >= window then
          Executor.note_backpressure exec;
        (* Merge the head entry — the sequential FIFO completion
           stream.  The id-assignment below is the [run_seq] body,
           verbatim, over the precomputed candidates. *)
        let uid = merge_pos in
        let orbit_u =
          if params.symmetry then Vec.get st.s_orbit uid else 1
        in
        let fut =
          match Ring.get futs uid with Some f -> f | None -> assert false
        in
        let t0 = Obs.now o in
        let cands = Executor.await fut in
        Obs.Counter.add octx.oc_wait_ns
          (Int64.to_int (Int64.sub (Obs.now o) t0));
        Ring.drop futs;
        Array.iter
          (fun (mask, key, rep, orbit, pi) ->
            if st.s_next_id < params.max_configs then begin
              st.s_transitions <- st.s_transitions + 1;
              Obs.Counter.incr octx.oc_transitions;
              if params.symmetry then begin
                if pi <> 0 then Obs.Counter.incr octx.oc_orbit_hits;
                st.s_exp_transitions <- st.s_exp_transitions + orbit_u
              end;
              let vid, fresh =
                match Tbl.find_opt tbl key with
                | Some id -> (id, false)
                | None ->
                    let id = register_st ~params st rep ~orbit in
                    Ring.push pend rep;
                    Tbl.add tbl key id;
                    (id, true)
              in
              Level_log.push st.s_adj_data mask;
              Level_log.push st.s_adj_data vid;
              if params.symmetry then Level_log.push st.s_adj_data pi;
              if fresh then begin
                Vec.set st.s_parent_pred vid uid;
                Vec.set st.s_parent_mask vid mask;
                check vid rep
              end
            end
            else st.s_complete <- false)
          cands;
        Vec.push st.s_adj_off (Level_log.length st.s_adj_data);
        (* Closed spill levels drain on a background task while the
           pipeline keeps expanding: the snapshot handed over by [seal]
           is immutable, and level files are distinct, so the only
           ordering that matters — written-before-reread — is enforced by
           [drain_spills] at the checkpoint and analysis boundaries. *)
        maybe_seal ~params st (fun level data ->
            match params.spill with
            | Some (sp, _) ->
                spill_futs :=
                  Executor.submit exec (fun () ->
                      try spill_write ~params sp level data
                      with e when io_failed e -> note_spill_err level e)
                  :: !spill_futs
            | None -> ());
        sample_heap ~params ticks;
        Ring.drop pend
      end
    done;
    close_level ();
    if !stopped then begin
      (* In-flight futures are abandoned (the executor drains them on
         shutdown); the ring still holds every unexpanded entry, so the
         final checkpoint and the truncation accounting see exactly what
         the sequential builder's queue would hold. *)
      maybe_checkpoint ~force:true ();
      for p = Ring.lo pend to Ring.hi pend - 1 do
        if E.config_unfinished_mask (Ring.get pend p) <> 0 then
          st.s_complete <- false
      done;
      for _ = Ring.lo pend to Ring.hi pend - 1 do
        Vec.push st.s_adj_off (Level_log.length st.s_adj_data)
      done
    end;
    drain_spills ();
    check_spill_err ();
    if !io_error <> None then st.s_complete <- false;
    packed_of_state ~params st

  let explore_async ~params ~policy ~jobs graph ~idents =
    let st = fresh_state ?spill_threshold:(spill_threshold_of params) () in
    let tbl = Tbl.create ~shards:16 1024 in
    let engine = E.create graph ~idents in
    let initial = E.snapshot engine in
    let key, initial, orbit, _ = canonicalize params.group initial in
    let root_id = register_st ~params st initial ~orbit in
    Tbl.add tbl key root_id;
    safety_check ~params st engine root_id initial;
    let pend = Ring.create ~dummy:initial () in
    Ring.push pend initial;
    Executor.with_executor ~obs:params.octx.o ~chaos:params.chaos ~policy ~jobs
      (fun exec -> run_async ~params ~exec ~graph ~idents st tbl pend)

  (* Callers that opt into chaos get the retry budget by default; without
     chaos (and without an explicit [retry]) every I/O primitive keeps its
     single-attempt fail-fast behaviour. *)
  let resolve_retry ~chaos retry =
    match retry with
    | Some r -> r
    | None ->
        if Chaos.enabled chaos then Chaos.Retry.default else Chaos.Retry.none

  let explore ?(max_configs = 500_000) ?(max_violations = 5)
      ?(mode = `All_subsets) ?(impl = `Hashcons) ?(jobs = 1) ?policy
      ?checkpoint ?budget ?stop ?(symmetry = false) ?spill
      ?(chaos = Chaos.disabled) ?retry ?check_outputs
      ?check_config ?(obs = Obs.disabled) graph ~idents =
    let n = Asyncolor_topology.Graph.n graph in
    if n > Sys.int_size - 1 then
      invalid_arg "Explorer.explore: packed activation masks need n <= 62";
    let octx = make_octx obs in
    let packed =
      Obs.span obs ~args:[ ("n", string_of_int n) ] "explore" @@ fun () ->
      match impl with
      | `Reference ->
          if
            Option.is_some checkpoint || Option.is_some budget
            || Option.is_some stop || Option.is_some policy || symmetry
            || Option.is_some spill || Chaos.enabled chaos
          then
            invalid_arg
              "Explorer.explore: the `Reference oracle supports neither \
               checkpoints, budgets, stop callbacks, execution policies, \
               symmetry reduction, spilling nor fault injection (use \
               `Hashcons)";
          explore_reference ~max_configs ~max_violations ~mode ~check_outputs
            ~check_config graph ~idents
      | `Hashcons ->
          (* A killed predecessor may have left [path ^ ".tmp"] between
             write and rename; sweep it before the first save. *)
          Option.iter
            (fun (path, _) -> ignore (Checkpoint.clean_stale ~path))
            checkpoint;
          let params =
            {
              mode;
              max_configs;
              max_violations;
              check_outputs;
              check_config;
              checkpoint;
              budget;
              stop;
              symmetry;
              group = symmetry_group ~symmetry graph ~idents;
              spill;
              chaos;
              retry = resolve_retry ~chaos retry;
              octx;
            }
          in
          let policy =
            match policy with
            | Some p -> p
            | None ->
                if jobs <= 1 then Executor.Serial else Executor.Synchronous
          in
          (match policy with
          | Executor.Serial -> explore_seq ~params graph ~idents
          | policy -> explore_async ~params ~policy ~jobs graph ~idents)
    in
    finish_report ~octx ~n packed

  (* --- resuming from a checkpoint -------------------------------------- *)

  type resume_info = {
    ri_graph : Asyncolor_topology.Graph.t;
    ri_idents : int array;
    ri_mode : [ `All_subsets | `Singletons ];
    ri_max_configs : int;
    ri_max_violations : int;
    ri_configs : int;
    ri_pending : int;
  }

  let load_ckpt ?(chaos = Chaos.disabled) ?retry path =
    let (c : ckpt) =
      Checkpoint.load_rotated ~chaos ?retry ~path ~version:ckpt_version ()
    in
    if c.ck_protocol <> P.name then
      raise
        (Checkpoint.Corrupt
           (Printf.sprintf "checkpoint is for protocol %S, not %S"
              c.ck_protocol P.name));
    c

  let resume_info path =
    let c = load_ckpt path in
    {
      ri_graph = c.ck_graph;
      ri_idents = Array.copy c.ck_idents;
      ri_mode = c.ck_mode;
      ri_max_configs = c.ck_max_configs;
      ri_max_violations = c.ck_max_violations;
      ri_configs = c.ck_next_id;
      ri_pending = Array.length c.ck_pending;
    }

  let state_of_ckpt ?spill_threshold c =
    let exp_c, exp_t, exp_term = c.ck_expanded in
    {
      s_parent_pred = Vec.of_array ~dummy:(-1) c.ck_parent_pred;
      s_parent_mask = Vec.of_array ~dummy:0 c.ck_parent_mask;
      s_adj_off = Vec.of_array ~dummy:0 c.ck_adj_off;
      s_adj_data = Level_log.of_array ?threshold_words:spill_threshold c.ck_adj_data;
      s_orbit = Vec.of_array ~dummy:1 c.ck_orbit;
      s_next_id = c.ck_next_id;
      s_transitions = c.ck_transitions;
      s_terminal = c.ck_terminal;
      s_exp_configs = exp_c;
      s_exp_transitions = exp_t;
      s_exp_terminal = exp_term;
      s_safety_rev = c.ck_safety_rev;
      s_n_safety = List.length c.ck_safety_rev;
      s_complete = c.ck_complete;
    }

  let explore_resume ?(jobs = 1) ?policy ?checkpoint ?budget ?stop ?spill
      ?(chaos = Chaos.disabled) ?retry ?check_outputs ?check_config
      ?(obs = Obs.disabled) path =
    let octx = make_octx obs in
    let retry = resolve_retry ~chaos retry in
    (* The process being resumed may have died mid-save: sweep its stale
       tmp (and any at the new checkpoint target) before touching disk. *)
    ignore (Checkpoint.clean_stale ~path);
    Option.iter
      (fun (p, _) -> ignore (Checkpoint.clean_stale ~path:p))
      checkpoint;
    let c =
      Obs.span obs "checkpoint.load" (fun () -> load_ckpt ~chaos ~retry path)
    in
    let graph = c.ck_graph and idents = c.ck_idents in
    let n = Asyncolor_topology.Graph.n graph in
    let params =
      {
        mode = c.ck_mode;
        max_configs = c.ck_max_configs;
        max_violations = c.ck_max_violations;
        check_outputs;
        check_config;
        checkpoint;
        budget;
        stop;
        (* Symmetry is the checkpoint's property, not the caller's: the
           persisted adjacency stride and orbit accounts depend on it, so
           a resumed run always continues under the recorded setting. *)
        symmetry = c.ck_symmetry;
        group = symmetry_group ~symmetry:c.ck_symmetry graph ~idents;
        spill;
        chaos;
        retry;
        octx;
      }
    in
    let st = state_of_ckpt ?spill_threshold:(Option.map snd spill) c in
    let tbl = Tbl.create ~shards:16 (max 1024 (2 * c.ck_next_id)) in
    Array.iteri
      (fun id kdata -> Tbl.add tbl (E.key_of_data kdata) id)
      c.ck_keys;
    let policy =
      match policy with
      | Some p -> p
      | None -> if jobs <= 1 then Executor.Serial else Executor.Synchronous
    in
    let packed =
      match policy with
      | Executor.Serial ->
          let queue = Queue.create () in
          Array.iter (fun entry -> Queue.add entry queue) c.ck_pending;
          run_seq ~params ~graph ~idents st tbl queue
      | policy ->
          (* Pending entries are a contiguous id slice in FIFO order (the
             checkpoint contract), so the ring's absolute positions — the
             stored ids — carry over directly. *)
          let start =
            if Array.length c.ck_pending = 0 then c.ck_next_id
            else fst c.ck_pending.(0)
          in
          let dummy =
            let engine = E.create graph ~idents in
            E.snapshot engine
          in
          let pend = Ring.create ~start ~dummy () in
          Array.iter (fun (_, cfg) -> Ring.push pend cfg) c.ck_pending;
          Executor.with_executor ~obs ~chaos ~policy ~jobs (fun exec ->
              run_async ~params ~exec ~graph ~idents st tbl pend)
    in
    finish_report ~octx ~n packed

  let pp_report ppf r =
    Format.fprintf ppf
      "@[<v>configs=%d transitions=%d terminal=%d complete=%b wait_free=%b \
       worst_activations=%d safety_violations=%d%a%a@]"
      r.configs r.transitions r.terminal_configs r.complete r.wait_free
      r.worst_case_activations (List.length r.safety)
      (fun ppf -> function
        | None -> ()
        | Some s ->
            Format.fprintf ppf
              "@,orbit: group=%d expanded_configs=%d expanded_transitions=%d \
               expanded_terminal=%d"
              s.group_order s.expanded_configs s.expanded_transitions
              s.expanded_terminal)
      r.orbit
      (fun ppf -> function
        | None -> ()
        | Some v -> Format.fprintf ppf "@,livelock: %s" v.message)
      r.livelock
end
