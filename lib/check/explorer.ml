module Vec = Asyncolor_util.Vec
module Domain_pool = Asyncolor_util.Domain_pool
module Checkpoint = Asyncolor_resilience.Checkpoint
module Budget = Asyncolor_resilience.Budget
module Diag = Asyncolor_resilience.Diag
module Obs = Asyncolor_obs.Obs

(* The explorer's observability handles, resolved once per run so the hot
   paths touch pre-looked-up counters (an atomic add each), never the
   sink's name registry.  [oc_configs] counts dense-id registrations and
   therefore always equals [report.configs] for a fresh (non-resumed)
   packed run — a property the qcheck suite pins at jobs 1/2/4. *)
type octx = {
  o : Obs.t;
  oc_configs : Obs.Counter.t;
  oc_transitions : Obs.Counter.t;
  oc_levels : Obs.Counter.t;
  oc_ckpt_saves : Obs.Counter.t;
  og_frontier : Obs.Gauge.t;  (* widest BFS frontier *)
  og_shard_max : Obs.Gauge.t;  (* most occupied intern shard *)
}

let make_octx o =
  {
    o;
    oc_configs = Obs.counter o "explorer.configs";
    oc_transitions = Obs.counter o "explorer.transitions";
    oc_levels = Obs.counter o "explorer.levels";
    oc_ckpt_saves = Obs.counter o "checkpoint.saves";
    og_frontier = Obs.gauge o "explorer.frontier_max";
    og_shard_max = Obs.gauge o "explorer.shard_max";
  }

(* --- activation subsets: list form (reference) and packed form --------- *)

let subsets_of mode procs =
  match (mode, procs) with
  | _, [] -> []
  | `Singletons, procs -> List.map (fun p -> [ p ]) procs
  | `All_subsets, procs ->
      let procs = Array.of_list procs in
      let k = Array.length procs in
      List.init ((1 lsl k) - 1) (fun m ->
          let mask = m + 1 in
          let acc = ref [] in
          for i = k - 1 downto 0 do
            if mask land (1 lsl i) <> 0 then acc := procs.(i) :: !acc
          done;
          !acc)

let subset_of_mask mask =
  let acc = ref [] in
  for p = Sys.int_size - 2 downto 0 do
    if mask land (1 lsl p) <> 0 then acc := p :: !acc
  done;
  !acc

let mask_of_subset subset = List.fold_left (fun m p -> m lor (1 lsl p)) 0 subset

(* The packed counterpart of [subsets_of]: all activation sets drawn from
   the set bits of [unfinished], as bitmasks, in an order whose unpacked
   lists are exactly [subsets_of mode (subset_of_mask unfinished)] —
   element for element.  That order identity is what keeps the packed
   explorer's reports (parent pointers, adjacency, lasso schedules)
   byte-identical to the reference implementation. *)
let masks_of mode unfinished =
  match mode with
  | `Singletons ->
      let k = ref 0 in
      let m = ref unfinished in
      while !m <> 0 do
        incr k;
        m := !m land (!m - 1)
      done;
      let out = Array.make !k 0 in
      let i = ref 0 in
      for p = 0 to Sys.int_size - 2 do
        if unfinished land (1 lsl p) <> 0 then begin
          out.(!i) <- 1 lsl p;
          incr i
        end
      done;
      out
  | `All_subsets ->
      let positions = Array.make (Sys.int_size - 1) 0 in
      let k = ref 0 in
      for p = 0 to Sys.int_size - 2 do
        if unfinished land (1 lsl p) <> 0 then begin
          positions.(!k) <- p;
          incr k
        end
      done;
      let k = !k in
      if k = 0 then [||]
      else
        Array.init
          ((1 lsl k) - 1)
          (fun m ->
            let c = m + 1 in
            let mask = ref 0 in
            for i = 0 to k - 1 do
              if c land (1 lsl i) <> 0 then mask := !mask lor (1 lsl positions.(i))
            done;
            !mask)

module Make (P : Asyncolor_kernel.Protocol.S) = struct
  module E = Asyncolor_kernel.Engine.Make (P)

  module CMap = Map.Make (struct
    type t = E.config

    let compare = E.config_compare
  end)

  module Shards = Asyncolor_util.Sharded_tbl.Make (struct
    type t = E.key

    let equal = E.key_equal
    let hash = E.key_hash
  end)

  type violation = { message : string; schedule : int list list }

  type report = {
    configs : int;
    transitions : int;
    terminal_configs : int;
    complete : bool;
    wait_free : bool;
    livelock : violation option;
    safety : violation list;
    worst_case_activations : int;
  }

  (* The packed configuration graph both builders produce: flat int arrays
     only — dense ids, CSR adjacency of (mask, vid) pairs, parent pointers
     as (pred id, activation mask).  The boxed configurations themselves
     are not part of it; the parallel builder keeps only one frontier of
     them alive at a time. *)
  type packed = {
    total : int;
    transitions : int;
    terminal : int;
    complete : bool;
    parent_pred : int array;  (* -1 at the root *)
    parent_mask : int array;
    adj_off : int array;  (* total + 1 offsets into adj_data *)
    adj_data : int array;  (* (mask, vid) int pairs *)
    safety_raw : (string * int) list;  (* discovery order *)
  }

  (* Parent pointers give, for every configuration, one schedule prefix
     that reaches it. *)
  let schedule_to pred mask id =
    let rec loop id acc =
      let p = pred.(id) in
      if p < 0 then acc else loop p (subset_of_mask mask.(id) :: acc)
    in
    loop id []

  (* Cycle detection by DFS from the root over the packed adjacency; all
     stored configs are reachable from the root by construction.  The
     stack is explicit (ids + edge cursors + the masks of the current tree
     path), so the longest simple path of the configuration graph — which
     at K7 scale exceeds any native stack — costs heap words, not frames. *)
  let detect_livelock p =
    let color = Bytes.make p.total '\000' in
    let finish = Vec.create ~capacity:1024 ~dummy:0 () in
    let livelock = ref None in
    let st_id = Vec.create ~capacity:64 ~dummy:0 () in
    let st_cur = Vec.create ~capacity:64 ~dummy:0 () in
    let path = Vec.create ~capacity:64 ~dummy:0 () in
    Vec.push st_id 0;
    Vec.push st_cur p.adj_off.(0);
    Bytes.set color 0 '\001';
    while Vec.length st_id > 0 && !livelock = None do
      let depth = Vec.length st_id - 1 in
      let u = Vec.get st_id depth in
      let cur = Vec.get st_cur depth in
      if cur < p.adj_off.(u + 1) then begin
        Vec.set st_cur depth (cur + 2);
        let mask = p.adj_data.(cur) and v = p.adj_data.(cur + 1) in
        match Bytes.get color v with
        | '\000' ->
            Bytes.set color v '\001';
            Vec.push path mask;
            Vec.push st_id v;
            Vec.push st_cur p.adj_off.(v)
        | '\001' ->
            (* A back edge: the masks on the tree path plus this one are a
               lasso schedule (prefix + cycle) witnessing the livelock. *)
            let sched = ref [ subset_of_mask mask ] in
            for i = Vec.length path - 1 downto 0 do
              sched := subset_of_mask (Vec.get path i) :: !sched
            done;
            livelock :=
              Some
                {
                  message =
                    Printf.sprintf
                      "livelock: configuration cycle via activation of working \
                       processes (cycle re-enters config %d)"
                      v;
                  schedule = !sched;
                }
        | _ -> ()
      end
      else begin
        ignore (Vec.pop st_id);
        ignore (Vec.pop st_cur);
        Bytes.set color u '\002';
        Vec.push finish u;
        if Vec.length st_id > 0 then ignore (Vec.pop path)
      end
    done;
    (!livelock, finish)

  (* Exact worst case by longest-path DP over the DAG in topological order
     (the reversed finish order).  One flat [total * n] int table instead
     of a row array per configuration. *)
  let exact_worst ~n p finish =
    let dp = Array.make (p.total * n) 0 in
    let best = ref 0 in
    for i = Vec.length finish - 1 downto 0 do
      let u = Vec.get finish i in
      let bu = u * n in
      let e = ref p.adj_off.(u) in
      while !e < p.adj_off.(u + 1) do
        let mask = p.adj_data.(!e) and v = p.adj_data.(!e + 1) in
        let bv = v * n in
        for q = 0 to n - 1 do
          let du = dp.(bu + q) in
          if mask land (1 lsl q) <> 0 then begin
            let cand = du + 1 in
            if cand > dp.(bv + q) then begin
              dp.(bv + q) <- cand;
              if cand > !best then best := cand
            end
          end
          else if du > dp.(bv + q) then dp.(bv + q) <- du
        done;
        e := !e + 2
      done
    done;
    !best

  let finish_report ~octx ~n (p : packed) =
    let safety =
      List.map
        (fun (message, id) ->
          { message; schedule = schedule_to p.parent_pred p.parent_mask id })
        p.safety_raw
    in
    let livelock, finish =
      Obs.span octx.o "analyze.livelock" (fun () -> detect_livelock p)
    in
    let wait_free = livelock = None in
    let worst =
      if (not wait_free) || not p.complete then -1
      else Obs.span octx.o "analyze.worstcase" (fun () -> exact_worst ~n p finish)
    in
    {
      configs = p.total;
      transitions = p.transitions;
      terminal_configs = p.terminal;
      complete = p.complete;
      wait_free;
      livelock;
      safety;
      worst_case_activations = worst;
    }

  (* --- the seed implementation: sequential BFS, Map interning ---------- *)

  (* Kept verbatim in spirit as the oracle for the differential tests: a
     FIFO queue over a [Map] keyed by [config_compare], expanding with the
     list-based [subsets_of] and [E.activate].  Only the output format
     changed with the data layer (packed adjacency and parent arrays). *)
  let explore_reference ~max_configs ~max_violations ~mode ~check_outputs
      ~check_config graph ~idents =
    let engine = E.create graph ~idents in
    let initial = E.snapshot engine in
    let store : E.config Vec.t = Vec.create ~capacity:1024 ~dummy:initial () in
    let parent_pred = Vec.create ~capacity:1024 ~dummy:(-1) () in
    let parent_mask = Vec.create ~capacity:1024 ~dummy:0 () in
    let adj_off = Vec.create ~capacity:1024 ~dummy:0 () in
    let adj_data = Vec.create ~capacity:4096 ~dummy:0 () in
    Vec.push adj_off 0;
    let next_id = ref 0 in
    let transitions = ref 0 in
    let terminal = ref 0 in
    let safety = ref [] in
    let n_safety = ref 0 in
    let complete = ref true in
    let register config =
      let id = !next_id in
      incr next_id;
      Vec.push store config;
      Vec.push parent_pred (-1);
      Vec.push parent_mask 0;
      if E.config_unfinished config = [] then incr terminal;
      id
    in
    let ids = ref CMap.empty in
    let intern config =
      match CMap.find_opt config !ids with
      | Some id -> (id, false)
      | None ->
          let id = register config in
          ids := CMap.add config id !ids;
          (id, true)
    in
    (* Runs the safety predicates; the engine must currently hold [config]. *)
    let check id config =
      if !n_safety < max_violations then begin
        let record message =
          incr n_safety;
          safety := (message, id) :: !safety
        in
        (match check_outputs with
        | None -> ()
        | Some f -> (
            match f (E.config_outputs config) with
            | None -> ()
            | Some msg -> record msg));
        match check_config with
        | None -> ()
        | Some f -> (
            match f engine with None -> () | Some msg -> record msg)
      end
    in
    let queue = Queue.create () in
    let root_id, _ = intern initial in
    check root_id initial;
    Queue.add root_id queue;
    while not (Queue.is_empty queue) do
      let uid = Queue.pop queue in
      let config = Vec.get store uid in
      let unfinished = E.config_unfinished config in
      List.iter
        (fun subset ->
          if !next_id < max_configs then begin
            E.restore engine config;
            E.activate engine subset;
            let succ = E.snapshot engine in
            let vid, fresh = intern succ in
            incr transitions;
            Vec.push adj_data (mask_of_subset subset);
            Vec.push adj_data vid;
            if fresh then begin
              Vec.set parent_pred vid uid;
              Vec.set parent_mask vid (mask_of_subset subset);
              check vid succ;
              Queue.add vid queue
            end
          end
          else complete := false)
        (subsets_of mode unfinished);
      Vec.push adj_off (Vec.length adj_data)
    done;
    {
      total = !next_id;
      transitions = !transitions;
      terminal = !terminal;
      complete = !complete;
      parent_pred = Vec.to_array parent_pred;
      parent_mask = Vec.to_array parent_mask;
      adj_off = Vec.to_array adj_off;
      adj_data = Vec.to_array adj_data;
      safety_raw = List.rev !safety;
    }

  (* --- crash-safe packed exploration: shared state --------------------- *)

  (* Everything the two packed builders mutate, gathered in one record so
     a checkpoint can snapshot it and a resumed run can pick it back up.
     The boxed configurations are *not* part of it: each builder keeps its
     own pending container (FIFO queue, or frontier arrays whose
     concatenation is the same order), which is the only other state a
     checkpoint has to persist. *)
  type bfs_state = {
    s_parent_pred : int Vec.t;
    s_parent_mask : int Vec.t;
    s_adj_off : int Vec.t;
    s_adj_data : int Vec.t;
    mutable s_next_id : int;
    mutable s_transitions : int;
    mutable s_terminal : int;
    mutable s_safety_rev : (string * int) list;  (* reverse discovery order *)
    mutable s_n_safety : int;
    mutable s_complete : bool;
  }

  let fresh_state () =
    let st =
      {
        s_parent_pred = Vec.create ~capacity:1024 ~dummy:(-1) ();
        s_parent_mask = Vec.create ~capacity:1024 ~dummy:0 ();
        s_adj_off = Vec.create ~capacity:1024 ~dummy:0 ();
        s_adj_data = Vec.create ~capacity:4096 ~dummy:0 ();
        s_next_id = 0;
        s_transitions = 0;
        s_terminal = 0;
        s_safety_rev = [];
        s_n_safety = 0;
        s_complete = true;
      }
    in
    Vec.push st.s_adj_off 0;
    st

  let packed_of_state st =
    {
      total = st.s_next_id;
      transitions = st.s_transitions;
      terminal = st.s_terminal;
      complete = st.s_complete;
      parent_pred = Vec.to_array st.s_parent_pred;
      parent_mask = Vec.to_array st.s_parent_mask;
      adj_off = Vec.to_array st.s_adj_off;
      adj_data = Vec.to_array st.s_adj_data;
      safety_raw = List.rev st.s_safety_rev;
    }

  (* Exploration parameters threaded through both packed builders. *)
  type params = {
    mode : [ `All_subsets | `Singletons ];
    max_configs : int;
    max_violations : int;
    check_outputs : (P.output option array -> string option) option;
    check_config : (E.t -> string option) option;
    checkpoint : (string * int) option;
    budget : Budget.t option;
    stop : (configs:int -> bool) option;
    octx : octx;
  }

  let register_st ~octx st config =
    let id = st.s_next_id in
    st.s_next_id <- id + 1;
    Obs.Counter.incr octx.oc_configs;
    Vec.push st.s_parent_pred (-1);
    Vec.push st.s_parent_mask 0;
    if E.config_unfinished_mask config = 0 then
      st.s_terminal <- st.s_terminal + 1;
    id

  (* Runs the safety predicates; the engine must currently hold [config]
     (seed contract). *)
  let safety_check ~params st engine id config =
    if st.s_n_safety < params.max_violations then begin
      let record message =
        st.s_n_safety <- st.s_n_safety + 1;
        st.s_safety_rev <- (message, id) :: st.s_safety_rev
      in
      (match params.check_outputs with
      | None -> ()
      | Some f -> (
          match f (E.config_outputs config) with
          | None -> ()
          | Some msg -> record msg));
      match params.check_config with
      | None -> ()
      | Some f -> (match f engine with None -> () | Some msg -> record msg)
    end

  let should_stop ~params st =
    (match params.stop with
    | Some f -> f ~configs:st.s_next_id
    | None -> false)
    ||
    match params.budget with Some b -> Budget.exceeded b | None -> false

  (* --- checkpoint payload ---------------------------------------------- *)

  (* Marshalled as the payload of an [Asyncolor_resilience.Checkpoint]
     container.  Intern-table keys are stored as their packed int payloads
     ([E.key_data]) indexed by dense id and rebuilt with [E.key_of_data]
     — the hash is recomputed on load, never trusted.  [ck_pending] holds
     the interned-but-unexpanded configurations in FIFO order (for the
     parallel builder: the current frontier, which is a contiguous slice
     of that same order).  Both builders expand pending entries in stored
     order and assign dense ids in expansion order, so a resumed run —
     under any [jobs] value — produces the same report, byte for byte, as
     one that was never interrupted. *)
  type ckpt = {
    ck_protocol : string;
    ck_graph : Asyncolor_topology.Graph.t;
    ck_idents : int array;
    ck_mode : [ `All_subsets | `Singletons ];
    ck_max_configs : int;
    ck_max_violations : int;
    ck_next_id : int;
    ck_transitions : int;
    ck_terminal : int;
    ck_complete : bool;
    ck_parent_pred : int array;
    ck_parent_mask : int array;
    ck_adj_off : int array;
    ck_adj_data : int array;
    ck_safety_rev : (string * int) list;
    ck_keys : int array array;  (* packed key payloads, indexed by dense id *)
    ck_pending : (int * E.config) array;  (* FIFO order *)
  }

  (* Bump whenever the [ckpt] record or the engine's key packing changes
     shape — [Checkpoint.load] rejects other versions up front. *)
  let ckpt_version = 1

  let save_ckpt ~params ~graph ~idents st ~keys ~pending path =
    Obs.Counter.incr params.octx.oc_ckpt_saves;
    Obs.span params.octx.o
      ~args:[ ("configs", string_of_int st.s_next_id) ]
      "checkpoint.save"
    @@ fun () ->
    Checkpoint.save ~path ~version:ckpt_version
      {
        ck_protocol = P.name;
        ck_graph = graph;
        ck_idents = Array.copy idents;
        ck_mode = params.mode;
        ck_max_configs = params.max_configs;
        ck_max_violations = params.max_violations;
        ck_next_id = st.s_next_id;
        ck_transitions = st.s_transitions;
        ck_terminal = st.s_terminal;
        ck_complete = st.s_complete;
        ck_parent_pred = Vec.to_array st.s_parent_pred;
        ck_parent_mask = Vec.to_array st.s_parent_mask;
        ck_adj_off = Vec.to_array st.s_adj_off;
        ck_adj_data = Vec.to_array st.s_adj_data;
        ck_safety_rev = st.s_safety_rev;
        ck_keys = keys ();
        ck_pending = pending ();
      }

  let keys_of_key_tbl tbl n =
    let a = Array.make n [||] in
    E.Key_tbl.iter (fun k id -> a.(id) <- E.key_data k) tbl;
    a

  let keys_of_shards tbl n =
    let a = Array.make n [||] in
    Shards.iter (fun k id -> a.(id) <- E.key_data k) tbl;
    a

  (* --- packed sequential BFS: the jobs=1 fast path --------------------- *)

  (* Same discovery order as [explore_reference] (FIFO queue, subsets in
     [masks_of] order) and same packed output as the level-synchronous
     builder below, without the per-level batching: configurations are
     interned through their packed keys in one [Key_tbl], activation sets
     stay bitmasks end-to-end, and a configuration is dropped as soon as
     it has been expanded (only keys are retained), which is what keeps
     multi-million-configuration runs inside memory.

     The loop is boundary-instrumented: before expanding each queue entry
     it may write a periodic checkpoint (pending = the current queue) and
     polls the stop callback and resource budget.  On a hit it writes a
     final checkpoint while the queue is still intact, then degrades
     exactly like the [max_configs] cap: pending configurations that still
     have working processes mark the exploration incomplete, and every
     unexpanded entry keeps an empty adjacency row. *)
  let run_seq ~params ~graph ~idents st tbl queue =
    let engine = E.create graph ~idents in
    let last_ck = ref st.s_next_id in
    let maybe_checkpoint ~force () =
      match params.checkpoint with
      | Some (path, every) when force || st.s_next_id - !last_ck >= max 1 every
        ->
          save_ckpt ~params ~graph ~idents st
            ~keys:(fun () -> keys_of_key_tbl tbl st.s_next_id)
            ~pending:(fun () -> Array.of_seq (Queue.to_seq queue))
            path;
          last_ck := st.s_next_id;
          Diag.printf "checkpoint: %d configs, %d pending -> %s\n" st.s_next_id
            (Queue.length queue) path
      | _ -> ()
    in
    let stopped = ref false in
    while (not (Queue.is_empty queue)) && not !stopped do
      maybe_checkpoint ~force:false ();
      if should_stop ~params st then stopped := true
      else begin
        let uid, config = Queue.pop queue in
        let um = E.config_unfinished_mask config in
        let masks = if um = 0 then [||] else masks_of params.mode um in
        Array.iter
          (fun mask ->
            if st.s_next_id < params.max_configs then begin
              E.restore engine config;
              E.activate_mask engine mask;
              let succ = E.snapshot engine in
              let key = E.config_key succ in
              st.s_transitions <- st.s_transitions + 1;
              Obs.Counter.incr params.octx.oc_transitions;
              let vid, fresh =
                match E.Key_tbl.find_opt tbl key with
                | Some id -> (id, false)
                | None ->
                    let id = register_st ~octx:params.octx st succ in
                    Queue.add (id, succ) queue;
                    E.Key_tbl.add tbl key id;
                    (id, true)
              in
              Vec.push st.s_adj_data mask;
              Vec.push st.s_adj_data vid;
              if fresh then begin
                Vec.set st.s_parent_pred vid uid;
                Vec.set st.s_parent_mask vid mask;
                safety_check ~params st engine vid succ
              end
            end
            else st.s_complete <- false)
          masks;
        Vec.push st.s_adj_off (Vec.length st.s_adj_data)
      end
    done;
    if !stopped then begin
      maybe_checkpoint ~force:true ();
      Queue.iter
        (fun (_, c) ->
          if E.config_unfinished_mask c <> 0 then st.s_complete <- false)
        queue;
      Queue.iter
        (fun _ -> Vec.push st.s_adj_off (Vec.length st.s_adj_data))
        queue
    end;
    packed_of_state st

  let explore_seq ~params graph ~idents =
    let st = fresh_state () in
    let tbl = E.Key_tbl.create 1024 in
    let queue = Queue.create () in
    let engine = E.create graph ~idents in
    let initial = E.snapshot engine in
    let root_id = register_st ~octx:params.octx st initial in
    Queue.add (root_id, initial) queue;
    E.Key_tbl.add tbl (E.config_key initial) root_id;
    safety_check ~params st engine root_id initial;
    run_seq ~params ~graph ~idents st tbl queue

  (* --- level-synchronous parallel BFS with sharded interning ----------- *)

  (* One BFS level at a time, in three phases:

     A. {e Expansion} (parallel by frontier slice).  Each worker owns a
        private engine and restores/activates/snapshots every (config,
        activation-mask) pair of its slice, emitting candidate successors
        with their packed keys.  No shared mutable state is touched.

     B. {e Interning lookups} (parallel by shard).  The intern table is
        sharded by key hash ([Sharded_tbl]); each worker scans the level's
        candidates in global order, handles only the keys its shard owns,
        and classifies every candidate as already-interned, duplicate of an
        earlier candidate of this level, or fresh — reading the main table
        and a level-local pending table.  Shards are disjoint by
        construction, so phase B writes nothing any other worker reads.

     C. {e Merge} (sequential, cheap).  Walk the candidates once in global
        order — frontier slot, then activation-subset order, i.e. exactly
        the order in which the sequential BFS performs its expansions —
        assigning dense ids to fresh configurations, recording adjacency
        and parent pointers, running safety checks and applying the
        [max_configs] cap.  Because ids, parents, adjacency, violation
        order and the cap all derive from this jobs-independent order, the
        resulting report is byte-identical for every [jobs] value and to
        the reference implementation.  Phases A and B do all the engine
        and hashing work; phase C only moves integers.

     The level boundary doubles as the crash-safety boundary: before each
     level the loop may write a periodic checkpoint (pending = the
     current frontier, which is a contiguous slice of the FIFO order the
     sequential builder would hold) and polls the stop callback and
     resource budget — same degradation contract as [run_seq]. *)
  let run_par ~params ~jobs ~graph ~idents st tbl frontier_ids0 frontier_cfgs0
      =
    let jobs = max 1 jobs in
    let nshards = Shards.shards tbl in
    let engines = Array.init jobs (fun _ -> E.create graph ~idents) in
    let dummy_cfg = E.snapshot engines.(0) in
    let dummy_key = E.config_key dummy_cfg in
    let next_ids = Vec.create ~capacity:1024 ~dummy:0 () in
    let next_cfgs = Vec.create ~capacity:1024 ~dummy:dummy_cfg () in
    let check id config =
      (match params.check_config with
      | Some _ -> E.restore engines.(0) config
      | None -> ());
      safety_check ~params st engines.(0) id config
    in
    let last_ck = ref st.s_next_id in
    let maybe_checkpoint ~force ~fids ~fcfgs () =
      match params.checkpoint with
      | Some (path, every) when force || st.s_next_id - !last_ck >= max 1 every
        ->
          save_ckpt ~params ~graph ~idents st
            ~keys:(fun () -> keys_of_shards tbl st.s_next_id)
            ~pending:(fun () ->
              Array.init (Array.length fids) (fun i -> (fids.(i), fcfgs.(i))))
            path;
          last_ck := st.s_next_id;
          Diag.printf "checkpoint: %d configs, %d pending -> %s\n" st.s_next_id
            (Array.length fids) path
      | _ -> ()
    in
    let stopped = ref false in
    let octx = params.octx in
    let level = ref 0 in
    Domain_pool.with_pool ~obs:octx.o ~jobs (fun pool ->
        let frontier_ids = ref frontier_ids0 in
        let frontier_cfgs = ref frontier_cfgs0 in
        while Array.length !frontier_ids > 0 && not !stopped do
          let fids = !frontier_ids and fcfgs = !frontier_cfgs in
          let flen = Array.length fids in
          (* One span per BFS level, with the three phases as explicit
             child scopes — "where did the time go" for a level reads
             directly off the trace. *)
          let sp_level =
            Obs.begin_span octx.o
              ~args:
                [
                  ("level", string_of_int !level);
                  ("frontier", string_of_int flen);
                  ("configs", string_of_int st.s_next_id);
                ]
              "bfs.level"
          in
          Obs.Counter.incr octx.oc_levels;
          Obs.Gauge.max_ octx.og_frontier flen;
          maybe_checkpoint ~force:false ~fids ~fcfgs ();
          if should_stop ~params st then stopped := true
          else if st.s_next_id >= params.max_configs then begin
            (* The cap is already hit: no expansion can happen, but every
               pending configuration that still has working processes marks
               the exploration incomplete — exactly the sequential path. *)
            Array.iter
              (fun c ->
                if E.config_unfinished_mask c <> 0 then st.s_complete <- false)
              fcfgs;
            for _ = 1 to flen do
              Vec.push st.s_adj_off (Vec.length st.s_adj_data)
            done;
            frontier_ids := [||];
            frontier_cfgs := [||]
          end
          else begin
            (* phase A *)
            let slices =
              Array.init jobs (fun s ->
                  (s, flen * s / jobs, flen * (s + 1) / jobs))
            in
            let expanded =
              Obs.span octx.o ~parent:sp_level "bfs.expand" @@ fun () ->
              Domain_pool.map pool
                (fun (s, lo, hi) ->
                  let eng = engines.(s) in
                  Array.init (hi - lo) (fun i ->
                      let config = fcfgs.(lo + i) in
                      let um = E.config_unfinished_mask config in
                      if um = 0 then [||]
                      else
                        Array.map
                          (fun mask ->
                            E.restore eng config;
                            E.activate_mask eng mask;
                            let succ = E.snapshot eng in
                            (mask, E.config_key succ, succ))
                          (masks_of params.mode um)))
                slices
            in
            (* flatten into global candidate order *)
            let ncands =
              Array.fold_left
                (fun acc slice ->
                  Array.fold_left (fun a c -> a + Array.length c) acc slice)
                0 expanded
            in
            let cand_off = Array.make (flen + 1) 0 in
            let cands = Array.make (max 1 ncands) (0, dummy_key, dummy_cfg) in
            let k = ref 0 in
            Array.iteri
              (fun s per_cfg ->
                let _, lo, _ = slices.(s) in
                Array.iteri
                  (fun i arr ->
                    cand_off.(lo + i) <- !k;
                    Array.iter
                      (fun c ->
                        cands.(!k) <- c;
                        incr k)
                      arr)
                  per_cfg)
              expanded;
            cand_off.(flen) <- !k;
            (* phase B *)
            let verdict = Array.make (max 1 ncands) (-1) in
            (Obs.span octx.o ~parent:sp_level
               ~args:[ ("candidates", string_of_int ncands) ]
               "bfs.intern"
            @@ fun () ->
             ignore
               (Domain_pool.map pool
                  (fun shard ->
                    let pending = E.Key_tbl.create 64 in
                    for j = 0 to ncands - 1 do
                      let _, key, _ = cands.(j) in
                      if Shards.shard_of tbl key = shard then
                        match Shards.find_opt_in tbl ~shard key with
                        | Some id -> verdict.(j) <- -id - 2
                        | None -> (
                            match E.Key_tbl.find_opt pending key with
                            | Some j' -> verdict.(j) <- j'
                            | None -> E.Key_tbl.add pending key j)
                    done)
                  (Array.init nshards Fun.id)));
            (* phase C *)
            (Obs.span octx.o ~parent:sp_level "bfs.merge" @@ fun () ->
             let resolved = Array.make (max 1 ncands) (-1) in
             for f = 0 to flen - 1 do
               let uid = fids.(f) in
               for j = cand_off.(f) to cand_off.(f + 1) - 1 do
                 if st.s_next_id >= params.max_configs then
                   st.s_complete <- false
                 else begin
                   let mask, key, config = cands.(j) in
                   st.s_transitions <- st.s_transitions + 1;
                   Obs.Counter.incr octx.oc_transitions;
                   let vid =
                     let v = verdict.(j) in
                     if v <= -2 then -v - 2
                     else if v >= 0 then resolved.(v)
                     else begin
                       let id = register_st ~octx st config in
                       Vec.push next_ids id;
                       Vec.push next_cfgs config;
                       Shards.add tbl key id;
                       Vec.set st.s_parent_pred id uid;
                       Vec.set st.s_parent_mask id mask;
                       check id config;
                       resolved.(j) <- id;
                       id
                     end
                   in
                   Vec.push st.s_adj_data mask;
                   Vec.push st.s_adj_data vid
                 end
               done;
               Vec.push st.s_adj_off (Vec.length st.s_adj_data)
             done);
            if Obs.enabled octx.o then
              Obs.Gauge.max_ octx.og_shard_max
                (Array.fold_left max 0 (Shards.shard_lengths tbl));
            frontier_ids := Vec.to_array next_ids;
            frontier_cfgs := Vec.to_array next_cfgs;
            Vec.clear next_ids;
            Vec.clear next_cfgs
          end;
          Obs.end_span octx.o sp_level;
          incr level
        done;
        if !stopped then begin
          maybe_checkpoint ~force:true ~fids:!frontier_ids
            ~fcfgs:!frontier_cfgs ();
          Array.iter
            (fun c ->
              if E.config_unfinished_mask c <> 0 then st.s_complete <- false)
            !frontier_cfgs;
          Array.iter
            (fun _ -> Vec.push st.s_adj_off (Vec.length st.s_adj_data))
            !frontier_ids
        end);
    packed_of_state st

  let explore_par ~params ~jobs graph ~idents =
    let st = fresh_state () in
    let tbl = Shards.create ~shards:(max 1 jobs) 1024 in
    let engine = E.create graph ~idents in
    let initial = E.snapshot engine in
    let root_id = register_st ~octx:params.octx st initial in
    Shards.add tbl (E.config_key initial) root_id;
    safety_check ~params st engine root_id initial;
    run_par ~params ~jobs ~graph ~idents st tbl [| root_id |] [| initial |]

  let explore ?(max_configs = 500_000) ?(max_violations = 5)
      ?(mode = `All_subsets) ?(impl = `Hashcons) ?(jobs = 1) ?checkpoint
      ?budget ?stop ?check_outputs ?check_config ?(obs = Obs.disabled) graph
      ~idents =
    let n = Asyncolor_topology.Graph.n graph in
    if n > Sys.int_size - 1 then
      invalid_arg "Explorer.explore: packed activation masks need n <= 62";
    let octx = make_octx obs in
    let packed =
      Obs.span obs ~args:[ ("n", string_of_int n) ] "explore" @@ fun () ->
      match impl with
      | `Reference ->
          if
            Option.is_some checkpoint || Option.is_some budget
            || Option.is_some stop
          then
            invalid_arg
              "Explorer.explore: the `Reference oracle supports neither \
               checkpoints, budgets nor stop callbacks (use `Hashcons)";
          explore_reference ~max_configs ~max_violations ~mode ~check_outputs
            ~check_config graph ~idents
      | `Hashcons ->
          let params =
            {
              mode;
              max_configs;
              max_violations;
              check_outputs;
              check_config;
              checkpoint;
              budget;
              stop;
              octx;
            }
          in
          if jobs <= 1 then explore_seq ~params graph ~idents
          else explore_par ~params ~jobs graph ~idents
    in
    finish_report ~octx ~n packed

  (* --- resuming from a checkpoint -------------------------------------- *)

  type resume_info = {
    ri_graph : Asyncolor_topology.Graph.t;
    ri_idents : int array;
    ri_mode : [ `All_subsets | `Singletons ];
    ri_max_configs : int;
    ri_max_violations : int;
    ri_configs : int;
    ri_pending : int;
  }

  let load_ckpt path =
    let (c : ckpt) = Checkpoint.load ~path ~version:ckpt_version in
    if c.ck_protocol <> P.name then
      raise
        (Checkpoint.Corrupt
           (Printf.sprintf "checkpoint is for protocol %S, not %S"
              c.ck_protocol P.name));
    c

  let resume_info path =
    let c = load_ckpt path in
    {
      ri_graph = c.ck_graph;
      ri_idents = Array.copy c.ck_idents;
      ri_mode = c.ck_mode;
      ri_max_configs = c.ck_max_configs;
      ri_max_violations = c.ck_max_violations;
      ri_configs = c.ck_next_id;
      ri_pending = Array.length c.ck_pending;
    }

  let state_of_ckpt c =
    {
      s_parent_pred = Vec.of_array ~dummy:(-1) c.ck_parent_pred;
      s_parent_mask = Vec.of_array ~dummy:0 c.ck_parent_mask;
      s_adj_off = Vec.of_array ~dummy:0 c.ck_adj_off;
      s_adj_data = Vec.of_array ~dummy:0 c.ck_adj_data;
      s_next_id = c.ck_next_id;
      s_transitions = c.ck_transitions;
      s_terminal = c.ck_terminal;
      s_safety_rev = c.ck_safety_rev;
      s_n_safety = List.length c.ck_safety_rev;
      s_complete = c.ck_complete;
    }

  let explore_resume ?(jobs = 1) ?checkpoint ?budget ?stop ?check_outputs
      ?check_config ?(obs = Obs.disabled) path =
    let octx = make_octx obs in
    let c = Obs.span obs "checkpoint.load" (fun () -> load_ckpt path) in
    let graph = c.ck_graph and idents = c.ck_idents in
    let n = Asyncolor_topology.Graph.n graph in
    let params =
      {
        mode = c.ck_mode;
        max_configs = c.ck_max_configs;
        max_violations = c.ck_max_violations;
        check_outputs;
        check_config;
        checkpoint;
        budget;
        stop;
        octx;
      }
    in
    let st = state_of_ckpt c in
    let packed =
      if jobs <= 1 then begin
        let tbl = E.Key_tbl.create (max 1024 (2 * c.ck_next_id)) in
        Array.iteri
          (fun id kdata -> E.Key_tbl.add tbl (E.key_of_data kdata) id)
          c.ck_keys;
        let queue = Queue.create () in
        Array.iter (fun entry -> Queue.add entry queue) c.ck_pending;
        run_seq ~params ~graph ~idents st tbl queue
      end
      else begin
        let tbl = Shards.create ~shards:jobs 1024 in
        Array.iteri
          (fun id kdata -> Shards.add tbl (E.key_of_data kdata) id)
          c.ck_keys;
        run_par ~params ~jobs ~graph ~idents st tbl
          (Array.map fst c.ck_pending)
          (Array.map snd c.ck_pending)
      end
    in
    finish_report ~octx ~n packed

  let pp_report ppf r =
    Format.fprintf ppf
      "@[<v>configs=%d transitions=%d terminal=%d complete=%b wait_free=%b \
       worst_activations=%d safety_violations=%d%a@]"
      r.configs r.transitions r.terminal_configs r.complete r.wait_free
      r.worst_case_activations (List.length r.safety)
      (fun ppf -> function
        | None -> ()
        | Some v -> Format.fprintf ppf "@,livelock: %s" v.message)
      r.livelock
end
