(** Exhaustive verification over *all* schedules, for small systems.

    The configuration of an execution is the tuple of per-process statuses,
    private states and register contents.  Because protocols are
    deterministic, fixing the topology and the identifiers makes the set of
    reachable configurations a finite directed graph whose edges are the
    nonempty activation subsets of the not-yet-returned processes.  The
    explorer builds this graph breadth-first and decides:

    - {b Wait-freedom}.  The protocol is wait-free (for this topology and
      identifier assignment) iff the configuration graph is acyclic: every
      edge activates at least one working process, so a cycle is exactly a
      schedule on which some process takes working steps forever, and
      conversely an acyclic graph bounds every execution by its longest
      path.  On violation a concrete lasso schedule (prefix + cycle) is
      returned, replayable with {!Asyncolor_kernel.Adversary.finite}.

    - {b Safety}.  User predicates are evaluated at every reachable
      configuration — e.g. proper colouring of the returned subgraph,
      palette membership, or the Lemma 4.5 identifier invariant.  Each
      violation comes with the schedule prefix that reaches it.

    - {b Worst case}.  When the graph is acyclic, a longest-path dynamic
      program yields the exact worst-case number of activations of any
      single process over {e all} schedules — the paper's round
      complexity, computed exactly rather than sampled. *)

module Make (P : Asyncolor_kernel.Protocol.S) : sig
  module E : module type of Asyncolor_kernel.Engine.Make (P)

  type violation = {
    message : string;
    schedule : int list list;  (** activation sets reaching the violation *)
  }

  type report = {
    configs : int;  (** reachable configurations explored *)
    transitions : int;  (** edges of the configuration graph *)
    terminal_configs : int;  (** configurations with every process returned or only crashed futures *)
    complete : bool;  (** false iff exploration stopped at [max_configs] *)
    wait_free : bool;  (** graph acyclic (meaningful when [complete]) *)
    livelock : violation option;  (** a lasso schedule witnessing non-wait-freedom *)
    safety : violation list;  (** safety violations, oldest first (capped) *)
    worst_case_activations : int;  (** exact worst-case rounds; [-1] when cyclic or incomplete *)
  }

  val explore :
    ?max_configs:int ->
    ?max_violations:int ->
    ?mode:[ `All_subsets | `Singletons ] ->
    ?impl:[ `Hashcons | `Reference ] ->
    ?check_outputs:(P.output option array -> string option) ->
    ?check_config:(E.t -> string option) ->
    Asyncolor_topology.Graph.t ->
    idents:int array ->
    report
  (** [explore g ~idents] exhausts the configuration graph of the protocol
      on [g] with the given identifiers.  [check_outputs] inspects the
      partial output vector of each configuration; [check_config] is given
      an engine restored to the configuration (read-only use).

      [mode] selects the schedule space: [`All_subsets] (default) allows
      arbitrary simultaneous activations, the paper's full model;
      [`Singletons] restricts to interleaved schedules (one process per
      time step), i.e. executions with no perfectly-simultaneous rounds.
      The distinction matters: see the "phase-lock" finding in
      EXPERIMENTS.md.  Defaults: [max_configs = 500_000],
      [max_violations = 5].

      [impl] selects how configurations are interned: [`Hashcons]
      (default) through the packed integer keys of
      {!Asyncolor_kernel.Engine.Make.config_key} in a hash table;
      [`Reference] through a [Map] over [config_compare] — the seed
      implementation, kept as the oracle for the differential tests.
      Both produce identical reports (schedules included); [`Hashcons]
      avoids the polymorphic-comparison interning bottleneck and is what
      lets exhaustive checks reach one cycle size further. *)

  val pp_report : Format.formatter -> report -> unit
end
