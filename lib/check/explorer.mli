(** Exhaustive verification over *all* schedules, for small systems.

    The configuration of an execution is the tuple of per-process statuses,
    private states and register contents.  Because protocols are
    deterministic, fixing the topology and the identifiers makes the set of
    reachable configurations a finite directed graph whose edges are the
    nonempty activation subsets of the not-yet-returned processes.  The
    explorer builds this graph breadth-first and decides:

    - {b Wait-freedom}.  The protocol is wait-free (for this topology and
      identifier assignment) iff the configuration graph is acyclic: every
      edge activates at least one working process, so a cycle is exactly a
      schedule on which some process takes working steps forever, and
      conversely an acyclic graph bounds every execution by its longest
      path.  On violation a concrete lasso schedule (prefix + cycle) is
      returned, replayable with {!Asyncolor_kernel.Adversary.finite}.

    - {b Safety}.  User predicates are evaluated at every reachable
      configuration — e.g. proper colouring of the returned subgraph,
      palette membership, or the Lemma 4.5 identifier invariant.  Each
      violation comes with the schedule prefix that reaches it.

    - {b Worst case}.  When the graph is acyclic, a longest-path dynamic
      program yields the exact worst-case number of activations of any
      single process over {e all} schedules — the paper's round
      complexity, computed exactly rather than sampled.

    {1 Data layer}

    Activation subsets are bitmasks end-to-end (bit [p] = process [p]):
    enumeration ({!masks_of}), engine steps
    ({!Asyncolor_kernel.Engine.Make.activate_mask}), the adjacency of the
    configuration graph (flat int arrays in CSR layout) and the
    longest-path table (one flat [n * configs] int array).  Lists of
    process indices only appear at the API boundary, in
    {!Make.violation.schedule}.  This caps the explorer at
    [n <= Sys.int_size - 1] processes — far beyond exhaustive reach. *)

val subsets_of : [ `All_subsets | `Singletons ] -> int list -> int list list
(** [subsets_of mode procs] enumerates the activation subsets of [procs]:
    every nonempty subset for [`All_subsets] ([2^k - 1] of them), the
    singletons for [`Singletons].  The enumeration order is part of the
    explorer's determinism contract (it fixes BFS discovery order and
    hence configuration ids). *)

val masks_of : [ `All_subsets | `Singletons ] -> int -> int array
(** [masks_of mode unfinished] is the packed counterpart of
    {!subsets_of}: the same subsets, of the set bits of [unfinished], as
    bitmasks, in the same order — [Array.to_list (Array.map subset_of_mask
    (masks_of mode m))] equals [subsets_of mode (subset_of_mask m)]. *)

val subset_of_mask : int -> int list
(** Ascending list of the set bits of a mask. *)

val mask_of_subset : int list -> int
(** Bitmask with the listed bits set. *)

type orbit_stats = {
  group_order : int;  (** ident-preserving automorphisms used *)
  expanded_configs : int;
      (** sum of orbit sizes over interned representatives — equals the
          unreduced explorer's [configs] on complete runs *)
  expanded_transitions : int;  (** likewise for [transitions] *)
  expanded_terminal : int;  (** likewise for [terminal_configs] *)
}
(** Orbit accounting of a symmetry-reduced run.  Shared across functor
    instances (like the report conversions the experiments do). *)

module Make (P : Asyncolor_kernel.Protocol.S) : sig
  module E : module type of Asyncolor_kernel.Engine.Make (P)

  type violation = {
    message : string;
    schedule : int list list;  (** activation sets reaching the violation *)
  }

  type report = {
    configs : int;  (** reachable configurations explored *)
    transitions : int;  (** edges of the configuration graph *)
    terminal_configs : int;  (** configurations with every process returned or only crashed futures *)
    complete : bool;  (** false iff exploration stopped at [max_configs] *)
    wait_free : bool;  (** graph acyclic (meaningful when [complete]) *)
    livelock : violation option;  (** a lasso schedule witnessing non-wait-freedom *)
    safety : violation list;  (** safety violations, oldest first (capped) *)
    worst_case_activations : int;
        (** Exact worst-case rounds over all schedules.  The sentinel value
            [-1] means "no meaningful bound": either the graph is cyclic
            (worst case is unbounded), or the exploration was truncated at
            [max_configs] ([complete = false]) so the longest path of the
            explored subgraph would silently under-report the true worst
            case.  Always check {!complete} (and {!wait_free}) before
            quoting this number. *)
    orbit : orbit_stats option;
        (** [Some] iff the run was symmetry-reduced; the orbit-expanded
            counts a differential test compares against an unreduced run.
            [None] keeps symmetry-off reports (and their printed form)
            byte-identical to previous releases. *)
  }

  val symmetry_group :
    symmetry:bool ->
    Asyncolor_topology.Graph.t ->
    idents:int array ->
    int array array
  (** The automorphisms the quotient runs under: the graph's
      index-dihedral automorphisms ({!Asyncolor_topology.Graph.automorphisms})
      that fix the identifier assignment pointwise, identity first.  With
      [symmetry:false] (or pairwise-distinct idents) just the identity —
      the explorer's symmetry-off path literally runs the same code with
      a trivial group.  Exposed for the canonicalization property tests. *)

  val canonicalize : int array array -> E.config -> E.key * E.config * int * int
  (** [canonicalize group c] is the orbit canonicalization on the intern
      path: the lexicographically-least packed key among
      [E.config_key (E.config_permute c sigma)] over the group, computed
      by concatenating [c]'s per-process key segments in permuted order.
      Returns [(key, representative, orbit_size, winner_index)] with
      [key = E.config_key representative],
      [representative = E.config_permute c group.(winner_index)], and
      [orbit_size] the number of distinct candidate keys.  A pure
      function of [(group, c)] — the determinism guarantee hangs on
      that, and the property tests pin it down
      ([canonicalize] is invariant under permuting [c] by any group
      element, and idempotent on representatives). *)

  val explore :
    ?max_configs:int ->
    ?max_violations:int ->
    ?mode:[ `All_subsets | `Singletons ] ->
    ?impl:[ `Hashcons | `Reference ] ->
    ?jobs:int ->
    ?policy:Asyncolor_util.Executor.policy ->
    ?checkpoint:string * int ->
    ?budget:Asyncolor_resilience.Budget.t ->
    ?stop:(configs:int -> bool) ->
    ?symmetry:bool ->
    ?spill:Asyncolor_resilience.Spill.t * int ->
    ?chaos:Asyncolor_resilience.Chaos.t ->
    ?retry:Asyncolor_resilience.Chaos.Retry.cfg ->
    ?check_outputs:(P.output option array -> string option) ->
    ?check_config:(E.t -> string option) ->
    ?obs:Asyncolor_obs.Obs.t ->
    Asyncolor_topology.Graph.t ->
    idents:int array ->
    report
  (** [explore g ~idents] exhausts the configuration graph of the protocol
      on [g] with the given identifiers.  [check_outputs] inspects the
      partial output vector of each configuration; [check_config] is given
      an engine restored to the configuration (read-only use).

      [mode] selects the schedule space: [`All_subsets] (default) allows
      arbitrary simultaneous activations, the paper's full model;
      [`Singletons] restricts to interleaved schedules (one process per
      time step), i.e. executions with no perfectly-simultaneous rounds.
      The distinction matters: see the "phase-lock" finding in
      EXPERIMENTS.md.  Defaults: [max_configs = 500_000],
      [max_violations = 5].

      [impl] selects the exploration engine: [`Hashcons] (default) is the
      packed pipelined BFS — configurations interned by the integer keys
      of {!Asyncolor_kernel.Engine.Make.config_key} in one [Key_tbl],
      adjacency in flat int arrays, expansion handed to an
      {!Asyncolor_util.Executor} as futures; [`Reference] is the seed
      implementation (sequential FIFO BFS over a [Map] keyed by
      [config_compare]), kept as the oracle for the differential tests.

      [jobs] (default 1, [`Hashcons] only) sets the number of domains
      expanding configurations; [policy] the execution policy (default:
      [Serial] when [jobs <= 1], else [Synchronous]).  [Serial] is the
      in-line sequential builder; [Synchronous] keeps a full barrier
      between BFS levels (level k+1 expansion starts only once level k
      has fully merged); [Asynchronous {kappa; _}] lets level k+1
      expansion start once a κ fraction of level k has merged, bounded
      by the policy's in-flight window — discovery is async and
      unordered, id assignment stays a sequential FIFO merge.
      {b Deterministic-output guarantee}: the report — configuration ids
      embedded in messages, schedules, violation order, every counter —
      is byte-identical for every [jobs] value, every policy, and
      identical to [`Reference]'s, because dense ids are assigned by
      awaiting expansion futures strictly in submission (FIFO) order and
      walking each candidate array in activation-subset order — exactly
      sequential BFS discovery order, independent of which domain stole
      which expansion when.

      {b Crash safety} ([`Hashcons] only — [`Reference] raises
      [Invalid_argument] when any of the options below is given):

      [checkpoint:(path, every)] persists the exploration state to [path]
      (atomically, through {!Asyncolor_resilience.Checkpoint}) whenever at
      least [every] new configurations have been interned since the last
      save, and once more when the run is stopped early.  The interval is
      measured in configurations, not seconds, so checkpoint placement is
      deterministic and testable.

      [budget] bounds the run by wall-clock time and/or live heap words
      ({!Asyncolor_resilience.Budget}); [stop] is an arbitrary
      cancellation callback (e.g. {!Asyncolor_resilience.Stop.requested}
      fed by signal handlers), polled with the current number of interned
      configurations.  Both are checked at the same boundary in every
      builder: before each pending entry is merged.  When either fires,
      the run {e degrades, never corrupts}: a final checkpoint is
      written (if configured) while the pending set is intact, and the
      returned report is a well-formed truncation with [complete = false]
      (unless every pending configuration was terminal anyway) — exactly
      the [max_configs] contract.

      {b Symmetry reduction} ([symmetry], default [false]; [`Hashcons]
      only).  Every successor is mapped to the lexicographically-least
      packed key of its orbit under the graph's ident-preserving
      index-dihedral automorphisms
      ({!Asyncolor_topology.Graph.automorphisms} filtered by
      [idents.(sigma p) = idents.(p)]) before interning, so each orbit is
      explored once — an up-to-[2n] state-space cut on cycles and cliques
      with symmetric identifier assignments (with {e distinct} idents the
      group is trivial and the run coincides with symmetry-off).  The
      quotient is a bisimulation up to permutation (see DESIGN.md):
      wait-freedom, livelock existence, safety of G-invariant predicates
      and — via per-edge automorphism tracking in the packed adjacency —
      the exact worst case are all preserved; [report.configs/transitions/
      terminal_configs] count {e representatives}, with the orbit-expanded
      totals in {!report.orbit}.  Caveats: user predicates must be
      G-invariant (proper colouring and palette checks are); violation and
      lasso schedules are witnesses {e up to automorphism} — each step's
      activation set is stated in the coordinates of that step's stored
      representative, so they replay the quotient, not a literal engine
      execution.  The canonical representative is a pure function of the
      successor, so the deterministic-output guarantee above is unchanged.

      {b Spilling} ([spill:(store, threshold_words)]; [`Hashcons] only).
      The adjacency stream of merged configurations — the dominant
      allocation of a full-model run, 2–3 words per transition, never read
      again until the post-BFS analyses — is closed into levels of
      [threshold_words] at merge boundaries and written through
      {!Asyncolor_resilience.Spill} (delta-encoded, checksummed
      {!Asyncolor_resilience.Checkpoint} containers), leaving the live
      heap to the frontier, the canonical-key index and the per-config
      arrays.  Under a parallel policy the write runs as a background
      executor task while the pipeline keeps expanding.  The analyses
      reassemble the stream into an off-heap bigarray, so the peak-heap
      saving survives the analysis phase.  Spilling never changes any
      report field — only where bytes live.

      {b Observability} ([obs], default {!Asyncolor_obs.Obs.disabled}).
      The run is traced out-of-band — never through stdout, so the
      deterministic-output guarantee is untouched: the report is
      byte-identical with tracing on or off.  The whole call is an
      ["explore"] span; the pipelined builder emits one ["bfs.level"]
      span per BFS level with the executor's ["exec.task"] spans on
      per-domain [exec-worker-N] lanes underneath; checkpoint writes are
      ["checkpoint.save"] spans and the final analyses
      ["analyze.livelock"]/["analyze.worstcase"].  Counters:
      ["explorer.configs"] equals {!report.configs} exactly on fresh
      [`Hashcons] runs, any [jobs] (on resume it counts only newly
      interned configurations); ["explorer.transitions"] likewise tracks
      {!report.transitions}; plus ["explorer.levels"],
      ["checkpoint.saves"], ["explorer.wait_ns"] (time the FIFO merge
      spent blocked on the head expansion future — the barrier-wait the
      κ overlap removes), ["explorer.overlap_submits"] (expansions
      submitted past the current level boundary), and the
      ["explorer.frontier_max"] / ["exec.kappa_overlap"] gauges.
      Symmetry adds ["explorer.orbit_hits"] (successors whose canonical
      representative differed from the raw successor) and
      ["explorer.canon_ns"]; spilling adds ["spill.bytes_written"] /
      ["spill.bytes_read"] and the ["spill.levels_on_disk"] gauge; and
      ["explorer.peak_heap_words"] tracks the live-heap high-water mark
      sampled at merge boundaries — the number the bench's
      [peak_live_words] field reports.  The
      [`Reference] oracle is deliberately uninstrumented — its counters
      stay 0 — so differential tests compare protocol behaviour, not
      plumbing.

      {b Fault injection and recovery} ([chaos] / [retry]; [`Hashcons]
      only).  An enabled {!Asyncolor_resilience.Chaos} instance injects
      environment faults into every I/O edge of the run — checkpoint
      saves/loads (sites ["checkpoint.*"]), spill writes/reads (sites
      ["spill.*"]) and worker domains (sites ["exec.worker-N"], injected
      crashes recovered by the executor's watchdog).  Checkpoint saves go
      through {!Asyncolor_resilience.Checkpoint.save_rotated} (retry
      budget, read-back verify, last-good rotation); spill failures are
      retried and rebuilt from memory where resident.  [retry] defaults
      to {!Asyncolor_resilience.Chaos.Retry.default} when chaos is
      enabled and to a single fail-fast attempt otherwise.  Because
      recovery is deterministic (per-site fault schedules, FIFO merge),
      the report stays {e byte-identical to the fault-free run} for any
      schedule the retry budget survives.  When a budget is exhausted the
      run truncates cleanly instead of crashing: exploration stops at the
      failing merge boundary, the last-good checkpoint is left intact,
      and the report is a well-formed truncation with [complete = false]
      (the failure reason goes to the diagnostic stream only, never
      stdout).

      @raise Invalid_argument when the graph has more than
      [Sys.int_size - 1] nodes (activation masks could not name every
      process). *)

  (** {1 Resuming}

      What a checkpoint written by {!explore} (or {!explore_resume})
      describes, structurally: the packed configuration graph built so
      far, the intern table as flat key payloads, and the
      interned-but-unexpanded configurations in FIFO discovery order.
      Because both packed builders expand pending entries in stored order
      and assign dense ids in expansion order, resuming is
      {e byte-identical}: the final report of an interrupted-and-resumed
      run equals the report of an uninterrupted run, for every [jobs]
      value on either side of the interruption. *)

  type resume_info = {
    ri_graph : Asyncolor_topology.Graph.t;
    ri_idents : int array;
    ri_mode : [ `All_subsets | `Singletons ];
    ri_max_configs : int;
    ri_max_violations : int;
    ri_configs : int;  (** configurations interned when the checkpoint was written *)
    ri_pending : int;  (** configurations still awaiting expansion *)
  }

  val resume_info : string -> resume_info
  (** Inspect a checkpoint without resuming it — the CLI uses this to
      rebuild the safety predicates for the stored graph and identifiers
      before calling {!explore_resume}.
      @raise Asyncolor_resilience.Checkpoint.Corrupt on damaged files,
      version mismatches, or checkpoints written by a different
      protocol. *)

  val explore_resume :
    ?jobs:int ->
    ?policy:Asyncolor_util.Executor.policy ->
    ?checkpoint:string * int ->
    ?budget:Asyncolor_resilience.Budget.t ->
    ?stop:(configs:int -> bool) ->
    ?spill:Asyncolor_resilience.Spill.t * int ->
    ?chaos:Asyncolor_resilience.Chaos.t ->
    ?retry:Asyncolor_resilience.Chaos.Retry.cfg ->
    ?check_outputs:(P.output option array -> string option) ->
    ?check_config:(E.t -> string option) ->
    ?obs:Asyncolor_obs.Obs.t ->
    string ->
    report
  (** [explore_resume path] continues the exploration stored at [path] to
      the end (or to the next checkpoint/budget/stop boundary — resumed
      runs can themselves checkpoint and be resumed again).  The
      structural parameters — graph, identifiers, mode, [max_configs],
      [max_violations] — come from the checkpoint; only the things a
      checkpoint cannot serialise are re-supplied: the safety closures
      (which must be the same predicates for the byte-identity guarantee
      to cover violation messages), the degree of parallelism and
      execution policy ([jobs]/[policy] as in {!explore}), and the
      observability sink ([obs] as in {!explore}, with an extra
      ["checkpoint.load"] span; the ["explorer.configs"] counter counts
      only configurations interned {e after} the resume point).  Whether
      the run is symmetry-reduced is recorded {e in} the checkpoint (the
      persisted adjacency encoding depends on it) and cannot be changed on
      resume; [spill] may be freshly supplied — checkpoints are
      self-contained (the adjacency stream is reassembled into the file at
      save time), so a resumed run re-spills into its own directory as
      levels close.  [chaos]/[retry] behave as in {!explore}; the resume
      load itself goes through
      {!Asyncolor_resilience.Checkpoint.load_rotated}, so a corrupt
      primary is quarantined and the previous rotation resumed instead.
      Stale [.tmp] files left by a killed predecessor (at [path] and at
      the new checkpoint target) are swept before any I/O.
      @raise Asyncolor_resilience.Checkpoint.Corrupt as {!resume_info}. *)

  val pp_report : Format.formatter -> report -> unit
end
