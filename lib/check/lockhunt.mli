(** Systematic search for finding-F1 phase-locks at scale.

    The exhaustive explorer proves or refutes wait-freedom for tiny
    systems; this module scales the *attack* instead of the proof: for
    every edge [(p, q)] of the graph it plays the
    {!Asyncolor_kernel.Adversary.isolate_pair} schedule — run everyone
    else to completion, then activate [p] and [q] in perfect lockstep —
    and reports which pairs never terminate.  A non-empty result is a
    concrete, replayable wait-freedom violation for that topology and
    identifier assignment. *)

module Make (P : Asyncolor_kernel.Protocol.S) : sig
  module E : module type of Asyncolor_kernel.Engine.Make (P)

  type finding = {
    pair : int * int;
    locked : bool;
    steps : int;  (** steps consumed (= the cap when locked) *)
    pair_activations : int * int;  (** rounds the two processes worked *)
  }

  val probe : ?max_steps:int -> Asyncolor_topology.Graph.t -> idents:int array -> int * int -> finding
  (** Attack one adjacent pair.  Default [max_steps]: [2_000 + 20 * n]. *)

  val hunt :
    ?max_steps:int ->
    ?jobs:int ->
    ?policy:Asyncolor_util.Executor.policy ->
    ?budget:Asyncolor_resilience.Budget.t ->
    ?stop:(unit -> bool) ->
    ?chaos:Asyncolor_resilience.Chaos.t ->
    ?obs:Asyncolor_obs.Obs.t ->
    Asyncolor_topology.Graph.t ->
    idents:int array ->
    finding list
  (** Attack every edge; findings in edge order.  The edge list is cut
      into [jobs] contiguous slices, each owning one engine that is
      rewound (snapshot/restore) between probes rather than re-created
      per edge; with [jobs > 1] the slices fan out across that many
      domains through an {!Asyncolor_util.Executor} running [policy]
      (default: [Serial] when [jobs <= 1], else [Synchronous]; an
      [Asynchronous] policy bounds how many slices are in flight at
      once).  Probes share no mutable state and findings are merged by
      slice index, so the result is identical for every [jobs] value and
      policy and comes back in edge order regardless.  [jobs] defaults
      to [1] (sequential, no domain spawned).

      [budget] and [stop] are polled between probes: when either fires
      the hunt returns the findings gathered so far instead of raising —
      a result shorter than the edge list means the hunt was cut short
      (each parallel slice keeps the prefix it had probed).

      [obs] (default {!Asyncolor_obs.Obs.disabled}) wraps the hunt in a
      ["lockhunt"] span, traces the executor when [jobs > 1], and
      accumulates the ["lockhunt.probes"]/["lockhunt.locked"] counters
      (probes performed, including those of a truncated hunt, and how
      many locked). *)

  val locked : finding list -> (int * int) list
  (** The pairs that locked. *)
end
