(* --- emission --------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Chrome's ts/dur are microseconds; three decimals keep full nanosecond
   resolution and a fixed textual form (golden-test determinism). *)
let us buf ns = Buffer.add_string buf (Printf.sprintf "%.3f" (Int64.to_float ns /. 1000.))

let add_args buf args =
  Buffer.add_string buf "\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      escape buf k;
      Buffer.add_char buf ':';
      escape buf v)
    args;
  Buffer.add_char buf '}'

let chrome_string t =
  let buf = Buffer.create 4096 in
  let first = ref true in
  let event emit =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf "    {";
    emit ();
    Buffer.add_char buf '}'
  in
  Buffer.add_string buf "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  List.iter
    (fun (tid, name) ->
      event (fun () ->
          Buffer.add_string buf "\"ph\":\"M\",\"pid\":0,\"tid\":";
          Buffer.add_string buf (string_of_int tid);
          Buffer.add_string buf ",\"name\":\"thread_name\",";
          add_args buf [ ("name", name) ]))
    (Obs.lanes t);
  List.iter
    (fun (r : Obs.span_record) ->
      event (fun () ->
          Buffer.add_string buf "\"ph\":\"X\",\"pid\":0,\"tid\":";
          Buffer.add_string buf (string_of_int r.r_tid);
          Buffer.add_string buf ",\"name\":";
          escape buf r.r_name;
          Buffer.add_string buf ",\"ts\":";
          us buf r.r_start;
          Buffer.add_string buf ",\"dur\":";
          us buf r.r_dur;
          Buffer.add_char buf ',';
          add_args buf r.r_args))
    (Obs.spans t);
  (* Final counter samples, all at one export-time instant: the trace
     shows each metric's end-of-run value as a counter track. *)
  let sample_ts = Obs.now t in
  List.iter
    (fun (name, value) ->
      event (fun () ->
          Buffer.add_string buf "\"ph\":\"C\",\"pid\":0,\"tid\":0,\"name\":";
          escape buf name;
          Buffer.add_string buf ",\"ts\":";
          us buf sample_ts;
          Buffer.add_string buf
            (Printf.sprintf ",\"args\":{\"value\":%d}" value)))
    (Obs.metrics t);
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let write_chrome t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_string t))

let metrics_table t =
  String.concat ""
    (List.map (fun (name, v) -> Printf.sprintf "%s %d\n" name v) (Obs.metrics t))

(* --- validation ------------------------------------------------------- *)

(* A strict, minimal JSON reader — just enough structure to check that a
   trace file is what a viewer will accept.  Kept private to this module;
   the repo's emission-only Jsonout stays emission-only. *)
type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad of int * string  (* byte position, reason *)

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos >= n then fail "unexpected end of input" else s.[!pos] in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %C" c) else advance ()
  in
  let parse_lit lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | '"' -> advance (); Buffer.contents buf
      | '\\' -> (
          advance ();
          match peek () with
          | '"' -> Buffer.add_char buf '"'; advance (); loop ()
          | '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
          | '/' -> Buffer.add_char buf '/'; advance (); loop ()
          | 'b' -> Buffer.add_char buf '\b'; advance (); loop ()
          | 'f' -> Buffer.add_char buf '\012'; advance (); loop ()
          | 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
          | 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
          | 't' -> Buffer.add_char buf '\t'; advance (); loop ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | None -> fail "bad \\u escape"
              | Some code ->
                  (* Validation only: a BMP escape round-trips as '?', we
                     never re-emit the parsed value. *)
                  Buffer.add_char buf (if code < 0x80 then Char.chr code else '?'));
              pos := !pos + 4;
              loop ()
          | c -> fail (Printf.sprintf "bad escape \\%c" c))
      | c when Char.code c < 0x20 -> fail "unescaped control character in string"
      | c -> Buffer.add_char buf c; advance (); loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do advance () done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> pos := start; fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); Jobj [])
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ()
            | '}' -> advance ()
            | _ -> fail "expected ',' or '}' in object"
          in
          members ();
          Jobj (List.rev !fields)
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); Jarr [])
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements ()
            | ']' -> advance ()
            | _ -> fail "expected ',' or ']' in array"
          in
          elements ();
          Jarr (List.rev !items)
        end
    | '"' -> Jstr (parse_string ())
    | 't' -> parse_lit "true" (Jbool true)
    | 'f' -> parse_lit "false" (Jbool false)
    | 'n' -> parse_lit "null" Jnull
    | '-' | '0' .. '9' -> Jnum (parse_number ())
    | c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing bytes after JSON value";
  v

let field obj k = match obj with Jobj fs -> List.assoc_opt k fs | _ -> None

let validate_string s =
  match parse_json s with
  | exception Bad (pos, msg) ->
      Error (Printf.sprintf "not valid JSON (byte %d: %s)" pos msg)
  | Jobj _ as top -> (
      match field top "traceEvents" with
      | None -> Error "top-level object has no \"traceEvents\" key"
      | Some (Jarr events) -> (
          let check i ev =
            let ctx msg = Printf.sprintf "traceEvents[%d]: %s" i msg in
            match ev with
            | Jobj _ -> (
                match (field ev "ph", field ev "name") with
                | Some (Jstr ph), Some (Jstr _) -> (
                    let num k =
                      match field ev k with Some (Jnum f) -> Some f | _ -> None
                    in
                    match (num "pid", num "tid") with
                    | Some _, Some _ -> (
                        match ph with
                        | "X" -> (
                            match (num "ts", num "dur") with
                            | Some _, Some d when d >= 0. -> Ok ()
                            | Some _, Some _ -> Error (ctx "negative dur")
                            | _ -> Error (ctx "complete event without numeric ts/dur"))
                        | "M" | "C" | "B" | "E" | "I" | "i" -> Ok ()
                        | ph -> Error (ctx (Printf.sprintf "unknown phase %S" ph)))
                    | _ -> Error (ctx "missing numeric pid/tid"))
                | _ -> Error (ctx "missing string ph/name"))
            | _ -> Error (ctx "not an object")
          in
          let rec all i = function
            | [] -> Ok (List.length events)
            | ev :: rest -> (
                match check i ev with Ok () -> all (i + 1) rest | Error e -> Error e)
          in
          all 0 events)
      | Some _ -> Error "\"traceEvents\" is not an array")
  | _ -> Error "top level is not a JSON object"

let validate path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | s -> validate_string s
