type span_record = {
  r_sid : int;
  r_parent : int;
  r_tid : int;
  r_name : string;
  r_start : int64;
  r_dur : int64;
  r_args : (string * string) list;
}

type span = {
  sp_sid : int;  (* -1 on the disabled sink: end_span drops it *)
  sp_parent : int;
  sp_tid : int;
  sp_name : string;
  sp_start : int64;
  sp_args : (string * string) list;
}

(* Counter shards are indexed by [domain id land (shards - 1)]: a fixed
   power-of-two array of atomics, so adds from distinct pool domains
   mostly touch distinct cells (contention, not correctness, is what the
   sharding buys — a collision is just an atomic RMW on a shared cell).
   Merging is a read-time sum. *)
let counter_shards = 16

module Counter = struct
  type t = { c_on : bool; cells : int Atomic.t array }

  let make ~on =
    { c_on = on; cells = Array.init counter_shards (fun _ -> Atomic.make 0) }

  let add c k =
    if c.c_on then
      let s = (Domain.self () :> int) land (counter_shards - 1) in
      ignore (Atomic.fetch_and_add c.cells.(s) k)

  let incr c = add c 1
  let value c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells
end

module Gauge = struct
  type t = { g_on : bool; cell : int Atomic.t }

  let make ~on = { g_on = on; cell = Atomic.make 0 }
  let set g v = if g.g_on then Atomic.set g.cell v

  let max_ g v =
    if g.g_on then begin
      let rec loop () =
        let prev = Atomic.get g.cell in
        if v > prev && not (Atomic.compare_and_set g.cell prev v) then loop ()
      in
      loop ()
    end

  let value g = Atomic.get g.cell
end

type t = {
  on : bool;
  clock : Clock.t;
  mutex : Mutex.t;  (* guards everything below *)
  mutable completed : span_record list;  (* reverse completion order *)
  mutable next_sid : int;
  counters : (string, Counter.t) Hashtbl.t;
  gauges : (string, Gauge.t) Hashtbl.t;
  lane_names : (int, string) Hashtbl.t;
}

let make ~on ~clock =
  {
    on;
    clock;
    mutex = Mutex.create ();
    completed = [];
    next_sid = 0;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    lane_names = Hashtbl.create 8;
  }

let create ?(clock = Clock.monotonic) () = make ~on:true ~clock
let disabled = make ~on:false ~clock:(fun () -> 0L)
let enabled t = t.on
let now t = if t.on then t.clock () else 0L

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let dummy_span =
  { sp_sid = -1; sp_parent = -1; sp_tid = 0; sp_name = ""; sp_start = 0L; sp_args = [] }

let begin_span t ?tid ?parent ?(args = []) name =
  if not t.on then dummy_span
  else begin
    (* Read the clock outside the lock: allocation order of sids may then
       differ from start order under contention, which is fine — nothing
       exported depends on sid order, and it keeps the critical section
       down to one increment. *)
    let start = t.clock () in
    let tid = match tid with Some i -> i | None -> (Domain.self () :> int) in
    let parent = match parent with Some p -> p.sp_sid | None -> -1 in
    let sid =
      locked t (fun () ->
          let id = t.next_sid in
          t.next_sid <- id + 1;
          id)
    in
    {
      sp_sid = sid;
      sp_parent = parent;
      sp_tid = tid;
      sp_name = name;
      sp_start = start;
      sp_args = args;
    }
  end

let end_span t sp =
  if t.on && sp.sp_sid >= 0 then begin
    let stop = t.clock () in
    let dur =
      let d = Int64.sub stop sp.sp_start in
      if Int64.compare d 0L < 0 then 0L else d
    in
    let r =
      {
        r_sid = sp.sp_sid;
        r_parent = sp.sp_parent;
        r_tid = sp.sp_tid;
        r_name = sp.sp_name;
        r_start = sp.sp_start;
        r_dur = dur;
        r_args = sp.sp_args;
      }
    in
    locked t (fun () -> t.completed <- r :: t.completed)
  end

let span t ?tid ?parent ?args name f =
  if not t.on then f ()
  else begin
    let sp = begin_span t ?tid ?parent ?args name in
    Fun.protect ~finally:(fun () -> end_span t sp) f
  end

let interval t ?tid ?parent ?args name ~start =
  if t.on then begin
    let sp = begin_span t ?tid ?parent ?args name in
    end_span t { sp with sp_start = start }
  end

let set_lane t ~tid name =
  if t.on then locked t (fun () -> Hashtbl.replace t.lane_names tid name)

let counter t name =
  if not t.on then Counter.make ~on:false
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.counters name with
        | Some c -> c
        | None ->
            let c = Counter.make ~on:true in
            Hashtbl.add t.counters name c;
            c)

let gauge t name =
  if not t.on then Gauge.make ~on:false
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.gauges name with
        | Some g -> g
        | None ->
            let g = Gauge.make ~on:true in
            Hashtbl.add t.gauges name g;
            g)

let spans t = locked t (fun () -> List.rev t.completed)

let metrics t =
  locked t (fun () ->
      let rows = ref [] in
      Hashtbl.iter (fun name c -> rows := (name, Counter.value c) :: !rows) t.counters;
      Hashtbl.iter (fun name g -> rows := (name, Gauge.value g) :: !rows) t.gauges;
      List.sort compare !rows)

let lanes t =
  locked t (fun () ->
      List.sort compare
        (Hashtbl.fold (fun tid name acc -> (tid, name) :: acc) t.lane_names []))
