type t = unit -> int64

(* [Unix.gettimeofday] is not monotone (NTP steps, and two domains can
   observe the microsecond granularity in either order), so reads go
   through a process-wide high-water mark: a CAS loop either publishes a
   later time or returns the latest one already handed out.  This keeps
   every span's end >= start and keeps timelines consistent across
   domains without a C stub. *)
let high_water = Atomic.make 0L

let monotonic () =
  let now = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  let rec clamp () =
    let prev = Atomic.get high_water in
    if Int64.compare now prev <= 0 then prev
    else if Atomic.compare_and_set high_water prev now then now
    else clamp ()
  in
  clamp ()

let virtual_ ?(step_ns = 1000L) () =
  let ticks = Atomic.make 0 in
  fun () ->
    let k = Atomic.fetch_and_add ticks 1 in
    Int64.mul (Int64.of_int k) step_ns
