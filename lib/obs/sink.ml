let mutex = Mutex.create ()
let channel = ref stderr

let set_channel oc =
  Mutex.lock mutex;
  channel := oc;
  Mutex.unlock mutex

let emit s =
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      output_string !channel s;
      flush !channel)

let printf fmt = Printf.ksprintf emit fmt
