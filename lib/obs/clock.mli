(** Injected time sources for the observability layer.

    Every timestamp the obs layer records comes from a [t] passed at sink
    creation, never from a direct syscall, so the choice of clock is a
    single decision per run: {!monotonic} for production traces,
    {!virtual_} for tests — under a virtual clock every exported artifact
    (Chrome trace, metrics table) is byte-deterministic, which is what
    lets the exporter tests be golden byte-for-byte diffs in the same
    spirit as the CLI [--jobs] diff rules. *)

type t = unit -> int64
(** A clock is a function returning nanoseconds.  Successive calls must
    be non-decreasing; the origin is arbitrary (only differences and
    relative order are exported). *)

val monotonic : t
(** Wall-clock based, clamped to be non-decreasing across all domains: a
    read that would go backwards (NTP step, coarse timer granularity
    between domains) returns the highest value handed out so far instead.
    Shared process-wide — all sinks using [monotonic] draw from one
    timeline. *)

val virtual_ : ?step_ns:int64 -> unit -> t
(** A fresh deterministic clock starting at 0 and advancing by [step_ns]
    (default 1000, i.e. 1µs) on every read, atomically — a fixed program
    against a fresh virtual clock always sees the same timestamps, even
    if some reads happen on other domains. *)
