(** Structured spans, counters and gauges — the tracing/metrics sink.

    A sink ([t]) collects three kinds of facts about a run:

    - {b Spans}: named intervals with a lane (Chrome "thread" id, by
      default the executing domain), an {e explicit} parent scope and
      optional string arguments.  Parenthood is passed by the caller, not
      inferred from thread-local state, so a span opened on one domain
      can own work recorded on another (the pool lanes do exactly this).
    - {b Counters}: monotonically accumulated integers, sharded per
      domain ({!Counter.add} touches one atomic cell chosen by the
      executing domain's id) and merged on read — safe and cheap under
      {!Asyncolor_util.Executor} fan-outs.
    - {b Gauges}: last-write or running-max integers for level-style
      measurements (frontier width, shard occupancy).

    Every sink is either {e enabled} (created by {!create}, holding a
    {!Clock.t}) or the shared {!disabled} singleton, on which every
    operation is a near-free no-op — instrumented code threads a [t]
    unconditionally and pays nothing unless the user asked for a trace.
    Timestamps come only from the injected clock, so a {!Clock.virtual_}
    sink produces byte-deterministic exports (see {!Trace_export}). *)

type t

type span
(** An open interval, returned by {!begin_span} and closed by
    {!end_span}.  A value, not a handle into hidden state: dropping one
    on an error path leaks nothing (the span is simply never recorded). *)

type span_record = {
  r_sid : int;  (** unique id, allocation order *)
  r_parent : int;  (** parent span id, or [-1] at a root *)
  r_tid : int;  (** lane (Chrome thread id) *)
  r_name : string;
  r_start : int64;  (** clock reading at {!begin_span}, ns *)
  r_dur : int64;  (** non-negative duration, ns *)
  r_args : (string * string) list;
}

val create : ?clock:Clock.t -> unit -> t
(** A fresh enabled sink.  Default clock: {!Clock.monotonic}. *)

val disabled : t
(** The no-op sink: never reads a clock, never allocates a record. *)

val enabled : t -> bool

val now : t -> int64
(** One clock read; [0L] on {!disabled} (no syscall). *)

(** {1 Spans} *)

val begin_span :
  t ->
  ?tid:int ->
  ?parent:span ->
  ?args:(string * string) list ->
  string ->
  span
(** Open a span.  [tid] defaults to the executing domain's id; [parent]
    defaults to none (a root span). *)

val end_span : t -> span -> unit
(** Close and record the span.  Duration is clamped to be
    non-negative. *)

val span :
  t ->
  ?tid:int ->
  ?parent:span ->
  ?args:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a
(** Scoped form: open, run, close — the span is recorded even when the
    body raises. *)

val interval :
  t ->
  ?tid:int ->
  ?parent:span ->
  ?args:(string * string) list ->
  string ->
  start:int64 ->
  unit
(** Record an interval whose start was sampled earlier with {!now} and
    which ends now — for measurements that bracket blocking operations
    ({!Asyncolor_util.Executor}'s worker-wait lanes). *)

val set_lane : t -> tid:int -> string -> unit
(** Give a lane a human name, exported as Chrome [thread_name]
    metadata.  Last write per lane wins. *)

(** {1 Counters and gauges} *)

module Counter : sig
  type t

  val add : t -> int -> unit
  (** Atomic add to the shard owned by the executing domain. *)

  val incr : t -> unit

  val value : t -> int
  (** Sum over shards.  A concurrent read is a consistent snapshot per
      shard, not across shards — read after the fan-out joins for exact
      totals. *)
end

module Gauge : sig
  type t

  val set : t -> int -> unit
  val max_ : t -> int -> unit  (** keep the running maximum *)

  val value : t -> int
end

val counter : t -> string -> Counter.t
(** The counter registered under [name], created at zero on first use.
    Same name, same counter.  On {!disabled} the returned counter
    ignores writes. *)

val gauge : t -> string -> Gauge.t

(** {1 Reading back} *)

val spans : t -> span_record list
(** Completed spans, in completion order. *)

val metrics : t -> (string * int) list
(** All counters and gauges with their current merged values, sorted by
    name — the flat metrics table both exporters consume. *)

val lanes : t -> (int * string) list
(** Named lanes, sorted by lane id. *)
