(** The one place where out-of-band text reaches a channel.

    Worker domains that print progress through bare [Printf.eprintf] can
    interleave {e partial} lines: stderr is unbuffered per call, and one
    logical line often spans several writes.  Every producer of
    out-of-band text — [Diag] rate lines, the [--metrics] table, trace
    announcements — formats its message to a complete string first and
    hands it to {!emit}, which performs a single mutex-guarded write +
    flush.  Concurrent domains can at worst interleave whole lines, never
    fragments, and the guarantee lives here, in exactly one module.

    Out-of-band by construction: the default channel is stderr, keeping
    stdout byte-diffable across [--jobs] values. *)

val emit : string -> unit
(** Emit a pre-formatted string as one atomic write + flush. *)

val printf : ('a, unit, string, unit) format4 -> 'a
(** Format, then {!emit} the result.  Terminate your format with ["\n"];
    the sink does not add one. *)

val set_channel : out_channel -> unit
(** Redirect the sink (tests).  Default: [stderr]. *)
