(** Exporters for a sink's contents, and a validator for the trace files.

    Two formats leave the process:

    - {b Chrome [trace_event] JSON} ({!chrome_string}/{!write_chrome}):
      one complete ("X") event per recorded span, [thread_name] metadata
      ("M") for named lanes, and one final counter ("C") sample per
      counter/gauge — loadable in [chrome://tracing] and Perfetto.
      Timestamps are microseconds relative to the sink's clock.
    - {b Flat metrics table} ({!metrics_table}): one [name value] line
      per counter/gauge, sorted by name — the form appended to the bench
      driver's [--json] output and printed by the CLI's [--metrics].

    Both renderings are pure functions of the sink's contents: under a
    {!Clock.virtual_} clock a fixed program exports byte-identical
    artifacts, which the golden tests pin.

    {!validate} re-reads a trace file through a small strict JSON parser
    and structural checks, so a truncated or corrupt file is rejected
    with a clear one-line reason instead of silently confusing a viewer
    — the moral equivalent of {!Asyncolor_resilience.Checkpoint}'s digest
    check for an artifact we do not control the reader of. *)

val chrome_string : Obs.t -> string
(** Render the sink as Chrome [trace_event] JSON.  Reads the sink's
    clock once, to timestamp the counter samples. *)

val write_chrome : Obs.t -> path:string -> unit
(** {!chrome_string} to a file (plain write; traces are not resumable
    state, a torn file is rejected by {!validate}). *)

val metrics_table : Obs.t -> string
(** The flat metrics table: ["name value\n"] per metric, sorted by
    name.  Empty string when no metric was touched. *)

val validate_string : string -> (int, string) result
(** Structurally validate Chrome-trace JSON: well-formed JSON, a
    top-level object with a [traceEvents] array, and per event the keys
    Perfetto's importer relies on ([ph]/[name]/[pid]/[tid], plus
    [ts]/[dur >= 0] on complete events).  [Ok n] counts the events. *)

val validate : string -> (int, string) result
(** {!validate_string} on a file's contents; missing or unreadable files
    are an [Error], not an exception. *)
