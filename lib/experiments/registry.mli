(** All experiments, in index order. *)

type entry = {
  id : string;
  title : string;
  run : ?quick:bool -> unit -> Outcome.t;
}

val all : entry list
val find : string -> entry option
(** Lookup by case-insensitive id, e.g. "e4". *)

val run_all : ?quick:bool -> ?jobs:int -> unit -> Outcome.t list
(** Run every experiment — across [jobs] domains when [jobs > 1] — and
    print the outcomes in registry order.  Experiments are pure cells
    (all printing happens here, after the runs), so the output is
    byte-identical for every [jobs] value.  [jobs] defaults to [1]. *)
