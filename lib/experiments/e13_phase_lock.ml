(** E13 — Finding F1 (a reproduction result *about* the paper): under the
    paper's own schedule semantics, which explicitly permits sets of
    processes to perform simultaneous write-then-read rounds (§2.1–2.2),
    Algorithms 2 and 3 are {e not} wait-free as literally specified.

    Minimal counterexample (found by exhaustive model checking, replayed
    below): on [C_3] with identifiers (5,1,9), after process 0 wakes alone
    and returns colour 0 — which wait-freedom forces — the schedule
    [{1,2}, {1,2}, …] keeps processes 1 and 2 in a symmetric period-2 state
    cycle: each round both find their [a] and [b] in the conflict set [C]
    and recompute the same mex values from each other's freshly-written
    registers.  The frozen register of the returned process pins colour 0
    in [C] forever (so the local maximum can never return its [a = 0]),
    and perfect simultaneity preserves the symmetry [b_p = b_q].  The
    strict-inequality step in the proof sketch of Lemma 3.13
    ("[b̂_p(t4) = 0 < min{â_q(t4), …}]") fails exactly here.

    The flaw is not specific to [C_3]: the deterministic [staircase]
    schedule (wake processes one by one, then run the survivors
    simultaneously) reproduces it at every tested size.  Under
    interleaved schedules (no two processes ever simultaneous) the
    algorithms are wait-free — verified exhaustively on small cycles with
    exact worst-case activation counts.  Algorithm 1 is immune in both
    modes (its local extrema pin one colour component unilaterally). *)

module Table = Asyncolor_workload.Table
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng
module Builders = Asyncolor_topology.Builders
module Adversary = Asyncolor_kernel.Adversary
module Color = Asyncolor.Color
module Exp1 = Asyncolor_check.Explorer.Make (Asyncolor.Algorithm1.P)
module Exp2 = Asyncolor_check.Explorer.Make (Asyncolor.Algorithm2.P)
module Exp3 = Asyncolor_check.Explorer.Make (Asyncolor.Algorithm3.P)
module Sweep2 = Harness.Sweep (Asyncolor.Algorithm2.P)
module Sweep3 = Harness.Sweep (Asyncolor.Algorithm3.P)

let pp_sched s =
  String.concat " "
    (List.map (fun l -> "{" ^ String.concat "," (List.map string_of_int l) ^ "}") s)

let sizes ~quick = if quick then [ 8; 32 ] else [ 8; 32; 128; 512 ]

let run ?(quick = false) ?(seed = 54) () =
  let ok = ref true in
  (* 1. Exhaustive verdicts per schedule mode on small cycles. *)
  let modes_table =
    Table.create
      ~headers:[ "algorithm"; "cycle"; "mode"; "wait-free"; "worst rounds"; "lasso" ]
  in
  let record name (r : Exp1.report) cycle mode expected_wf =
    ok := !ok && r.complete && r.wait_free = expected_wf;
    Table.add_row modes_table
      [
        name;
        cycle;
        mode;
        string_of_bool r.wait_free;
        string_of_int r.worst_case_activations;
        (match r.livelock with Some v -> pp_sched v.schedule | None -> "-");
      ]
  in
  (* Explorer reports share the same record shape across functor
     instances; convert via identity re-packing. *)
  let conv (r : Exp2.report) : Exp1.report =
    {
      configs = r.configs;
      transitions = r.transitions;
      terminal_configs = r.terminal_configs;
      complete = r.complete;
      wait_free = r.wait_free;
      livelock =
        Option.map
          (fun (v : Exp2.violation) ->
            { Exp1.message = v.message; schedule = v.schedule })
          r.livelock;
      safety = [];
      worst_case_activations = r.worst_case_activations;
      orbit = r.orbit;
    }
  in
  let conv3 (r : Exp3.report) : Exp1.report =
    {
      configs = r.configs;
      transitions = r.transitions;
      terminal_configs = r.terminal_configs;
      complete = r.complete;
      wait_free = r.wait_free;
      livelock =
        Option.map
          (fun (v : Exp3.violation) ->
            { Exp1.message = v.message; schedule = v.schedule })
          r.livelock;
      safety = [];
      worst_case_activations = r.worst_case_activations;
      orbit = r.orbit;
    }
  in
  let g3 = Builders.cycle 3 and g4 = Builders.cycle 4 in
  record "alg1" (Exp1.explore g3 ~idents:[| 5; 1; 9 |]) "C3" "simultaneous" true;
  record "alg1" (Exp1.explore g4 ~idents:[| 5; 1; 9; 4 |]) "C4" "simultaneous" true;
  record "alg2" (conv (Exp2.explore g3 ~idents:[| 5; 1; 9 |])) "C3" "simultaneous" false;
  record "alg2"
    (conv (Exp2.explore ~mode:`Singletons g3 ~idents:[| 5; 1; 9 |]))
    "C3" "interleaved" true;
  record "alg2" (conv (Exp2.explore g4 ~idents:[| 5; 1; 9; 4 |])) "C4" "simultaneous" false;
  record "alg2"
    (conv (Exp2.explore ~mode:`Singletons g4 ~idents:[| 5; 1; 9; 4 |]))
    "C4" "interleaved" true;
  record "alg3" (conv3 (Exp3.explore g3 ~idents:[| 12; 47; 30 |])) "C3" "simultaneous" false;
  record "alg3"
    (conv3 (Exp3.explore ~mode:`Singletons g3 ~idents:[| 12; 47; 30 |]))
    "C3" "interleaved" true;
  (* 2. The lock at scale, under the deterministic symmetric schedule. *)
  let scale_table =
    Table.create
      ~headers:[ "n"; "workload"; "algorithm"; "locks"; "locking schedules" ]
  in
  let lock_count = ref 0 in
  List.iter
    (fun n ->
      let graph = Builders.cycle n in
      List.iter
        (fun (wname, idents) ->
          let probe name sweep =
            let s = (sweep : Harness.run_summary) in
            if s.livelocked then incr lock_count;
            Table.add_row scale_table
              [
                string_of_int n;
                wname;
                name;
                string_of_bool s.livelocked;
                String.concat "; " s.livelocked_names;
              ]
          in
          probe "alg2"
            (Sweep2.run ~equal:Int.equal ~in_palette:Color.in_five ~graph ~idents
               Harness.symmetric_suite);
          probe "alg3"
            (Sweep3.run ~equal:Int.equal ~in_palette:Color.in_five ~graph ~idents
               Harness.symmetric_suite))
        [
          ("zigzag", Idents.zigzag n);
          ("increasing", Idents.increasing n);
          ("random", Idents.random_permutation (Prng.create ~seed:(seed + n)) n);
        ])
    (sizes ~quick);
  (* The finding must reproduce: at least one lock at scale. *)
  ok := !ok && !lock_count > 0;
  (* 3. Systematic pair attack: for every edge, drain the rest of the ring
     then run the pair in lockstep (Lockhunt).  Algorithm 1 must show zero
     locks; Algorithms 2-3 lock a positive fraction on random rings. *)
  let module H1 = Asyncolor_check.Lockhunt.Make (Asyncolor.Algorithm1.P) in
  let module H2 = Asyncolor_check.Lockhunt.Make (Asyncolor.Algorithm2.P) in
  let module H3 = Asyncolor_check.Lockhunt.Make (Asyncolor.Algorithm3.P) in
  let hunt_table =
    Table.create ~headers:[ "n"; "workload"; "alg1 locks"; "alg2 locks"; "alg3 locks"; "edges" ]
  in
  let locks23 = ref 0 and locks1 = ref 0 in
  List.iter
    (fun n ->
      let graph = Builders.cycle n in
      List.iter
        (fun (wname, idents) ->
          let l1 = List.length (H1.locked (H1.hunt graph ~idents)) in
          let l2 = List.length (H2.locked (H2.hunt graph ~idents)) in
          let l3 = List.length (H3.locked (H3.hunt graph ~idents)) in
          locks1 := !locks1 + l1;
          locks23 := !locks23 + l2 + l3;
          Table.add_row hunt_table
            [
              string_of_int n; wname; string_of_int l1; string_of_int l2;
              string_of_int l3; string_of_int n;
            ])
        [
          ("increasing", Idents.increasing n);
          ("random", Idents.random_permutation (Prng.create ~seed:(seed + n)) n);
        ])
    (if quick then [ 8; 32 ] else [ 8; 32; 128 ]);
  ok := !ok && !locks1 = 0 && !locks23 > 0;
  (* 4. The lock is even discoverable blindly: a generic greedy adaptive
     scheduler (one-step lookahead, minimise returns) drives Algorithms
     2-3 into the livelock on its own, while Algorithm 1 terminates under
     the same malicious scheduler. *)
  let module Ad1 = Asyncolor_check.Adaptive.Make (Asyncolor.Algorithm1.P) in
  let module Ad2 = Asyncolor_check.Adaptive.Make (Asyncolor.Algorithm2.P) in
  let module Ad3 = Asyncolor_check.Adaptive.Make (Asyncolor.Algorithm3.P) in
  let adaptive_table =
    Table.create ~headers:[ "algorithm"; "cycle"; "greedy adaptive verdict" ]
  in
  let probe_adaptive name locked_expected run =
    let (r : Ad1.E.run_result) = run in
    let locked = not r.all_returned in
    ok := !ok && locked = locked_expected;
    Table.add_row adaptive_table
      [
        name;
        "C8";
        (if locked then "locked (cap hit)" else Printf.sprintf "terminated in %d rounds" r.rounds);
      ]
  in
  let idents8 = Idents.random_permutation (Prng.create ~seed:(seed + 8)) 8 in
  let g8 = Builders.cycle 8 in
  probe_adaptive "alg1" false
    (Ad1.worst_rounds ~mode:`All_subsets ~max_steps:300 g8 ~idents:idents8);
  (* re-pack the differing run_result nominal types through their fields *)
  let conv_run (r2 : Ad2.E.run_result) : Ad1.E.run_result =
    {
      steps = r2.steps;
      rounds = r2.rounds;
      activations_per_process = r2.activations_per_process;
      outputs = [||];
      all_returned = r2.all_returned;
      schedule_ended = r2.schedule_ended;
    }
  in
  let conv_run3 (r3 : Ad3.E.run_result) : Ad1.E.run_result =
    {
      steps = r3.steps;
      rounds = r3.rounds;
      activations_per_process = r3.activations_per_process;
      outputs = [||];
      all_returned = r3.all_returned;
      schedule_ended = r3.schedule_ended;
    }
  in
  probe_adaptive "alg2" true
    (conv_run (Ad2.worst_rounds ~mode:`All_subsets ~max_steps:300 g8 ~idents:idents8));
  probe_adaptive "alg3" true
    (conv_run3 (Ad3.worst_rounds ~mode:`All_subsets ~max_steps:300 g8 ~idents:idents8));
  {
    Outcome.id = "E13";
    title = "Finding F1: phase-lock under simultaneous schedules";
    claim =
      "Reproduction finding (deviation from Theorems 3.11/4.4 as stated): \
       Algorithms 2-3 livelock under sustained simultaneous activations; \
       wait-free under interleaved schedules; Algorithm 1 immune";
    tables =
      [
        ("exhaustive verdicts by schedule mode", modes_table);
        ("locks at scale under the sustained-simultaneity schedules", scale_table);
        ("isolate-pair attack per edge (Lockhunt)", hunt_table);
        ("greedy adaptive scheduler (no knowledge of the lock)", adaptive_table);
      ];
    ok = !ok;
    notes =
      [
        Printf.sprintf "%d phase-locks observed at scale" !lock_count;
        "Restoring the theorems: forbid infinite perfect simultaneity of an \
         adjacent pair (e.g. adversaries that are eventually interleaved), \
         or have the algorithm break ties by identifier when recomputing b \
         — either change removes every lock we found.";
      ];
  }
