type t = {
  id : string;
  title : string;
  claim : string;
  tables : (string * Asyncolor_workload.Table.t) list;
  ok : bool;
  notes : string list;
}

let print t =
  Printf.printf "\n=== %s: %s ===\n" t.id t.title;
  Printf.printf "claim: %s\n" t.claim;
  List.iter
    (fun (caption, table) ->
      Printf.printf "\n-- %s --\n" caption;
      Asyncolor_workload.Table.print table)
    t.tables;
  List.iter (fun note -> Printf.printf "note: %s\n" note) t.notes;
  Printf.printf "verdict: %s\n" (if t.ok then "OK (claim reproduced)" else "MISMATCH")

let slug s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '_')
    s

let write_csvs ~dir t =
  List.map
    (fun (caption, table) ->
      let path = Filename.concat dir (Printf.sprintf "%s_%s.csv" (slug t.id) (slug caption)) in
      Asyncolor_workload.Table.write_csv path table;
      path)
    t.tables

let to_json t =
  let module J = Asyncolor_util.Jsonout in
  let module Table = Asyncolor_workload.Table in
  let table_json (caption, table) =
    let headers = Table.headers table in
    J.Obj
      [
        ("caption", J.String caption);
        ("headers", J.List (List.map (fun h -> J.String h) headers));
        ( "rows",
          J.List
            (List.map
               (fun row ->
                 J.Obj (List.map2 (fun h cell -> (h, J.String cell)) headers row))
               (Table.rows table)) );
      ]
  in
  J.Obj
    [
      ("id", J.String t.id);
      ("title", J.String t.title);
      ("claim", J.String t.claim);
      ("ok", J.Bool t.ok);
      ("tables", J.List (List.map table_json t.tables));
      ("notes", J.List (List.map (fun n -> J.String n) t.notes));
    ]

let all_ok = List.for_all (fun t -> t.ok)
