module Adversary = Asyncolor_kernel.Adversary
module Prng = Asyncolor_util.Prng
module Executor = Asyncolor_util.Executor
module Checker = Asyncolor.Checker

let map_cells ?jobs ?policy f cells =
  match (jobs, policy) with
  | Some j, None when j <= 1 -> List.map f cells
  | _, Some Executor.Serial -> List.map f cells
  | _ ->
      Executor.with_executor ?policy ?jobs (fun exec ->
          Executor.map_list exec f cells)

let adversary_suite ~seed ~n =
  ignore n;
  let prng k = Prng.create ~seed:(seed + k) in
  [
    Adversary.synchronous;
    Adversary.sequential;
    Adversary.round_robin;
    Adversary.singletons (prng 1);
    Adversary.random_subsets (prng 2) ~p:0.3;
    Adversary.random_subsets (prng 3) ~p:0.5;
    Adversary.random_subsets (prng 4) ~p:0.8;
  ]

let symmetric_suite =
  [ Adversary.staircase; Adversary.alternating_waves; Adversary.synchronous ]

type run_summary = {
  worst_rounds : int;
  all_proper : bool;
  all_palette : bool;
  all_returned : bool;
  distinct_colors_max : int;
  livelocked : bool;
  livelocked_names : string list;
}

module Sweep (P : Asyncolor_kernel.Protocol.S) = struct
  module E = Asyncolor_kernel.Engine.Make (P)

  let run ?max_steps ~equal ~in_palette ~graph ~idents adversaries =
    let n = Asyncolor_topology.Graph.n graph in
    (* A generous bound: interleaved schedules of a linear-time algorithm
       may legitimately need Θ(n²) steps; a run that exhausts the bound
       without finishing is classified as livelocked (finding F1) and
       excluded from the worst-rounds statistic. *)
    let max_steps =
      match max_steps with
      | Some m -> m
      | None -> min 8_000_000 (50_000 + (6 * n * n))
    in
    let summary =
      ref
        {
          worst_rounds = 0;
          all_proper = true;
          all_palette = true;
          all_returned = true;
          distinct_colors_max = 0;
          livelocked = false;
          livelocked_names = [];
        }
    in
    List.iter
      (fun (adv : Adversary.t) ->
        let engine = E.create graph ~idents in
        let r = E.run ~max_steps engine adv in
        let verdict = Checker.check ~equal ~in_palette graph r.outputs in
        let locked = (not r.all_returned) && not r.schedule_ended in
        let s = !summary in
        summary :=
          {
            worst_rounds =
              (if locked then s.worst_rounds else max s.worst_rounds r.rounds);
            all_proper = s.all_proper && verdict.Checker.proper;
            all_palette = s.all_palette && verdict.Checker.off_palette = [];
            all_returned =
              s.all_returned && (r.all_returned || r.schedule_ended);
            distinct_colors_max =
              max s.distinct_colors_max verdict.Checker.distinct_colors;
            livelocked = s.livelocked || locked;
            livelocked_names =
              (if locked then adv.name :: s.livelocked_names
               else s.livelocked_names);
          })
      adversaries;
    !summary
end
