(** Shared machinery for the experiments: a standard adversary suite and a
    per-protocol sweep runner that measures worst-case rounds over the
    suite and validates the output invariants on every run. *)

module Adversary = Asyncolor_kernel.Adversary

val map_cells :
  ?jobs:int ->
  ?policy:Asyncolor_util.Executor.policy ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** The run-core fan-out: run one function per independent sweep cell
    (an (adversary-suite × identifier-assignment × n) combination, an
    experiment, …) across [jobs] domains of an
    {!Asyncolor_util.Executor}, results merged back in input order.
    Cells must be self-contained — derive PRNG seeds from the cell
    description, share no mutable state — which makes the output
    byte-identical for every [jobs] value and policy.  [jobs] defaults
    to {!Asyncolor_util.Executor.default_jobs}; [jobs <= 1] (with no
    explicit policy) and [~policy:Serial] run sequentially in the
    calling domain with no executor spawned. *)

val adversary_suite : seed:int -> n:int -> Adversary.t list
(** The standard stress suite: synchronous, sequential, round-robin,
    random singletons and random subsets (three densities).  Fresh
    (independently seeded) on every call.  Deliberately excludes the
    schedules that can sustain perfect simultaneity of a residual pair of
    processes forever ([staircase], [alternating_waves]): those trigger
    the phase-lock of finding F1 (see EXPERIMENTS.md) on Algorithms 2–3,
    which E13 studies on its own. *)

val symmetric_suite : Adversary.t list
(** The sustained-simultaneity schedules ([staircase],
    [alternating_waves], [synchronous]) — used by E13 to measure how often
    the published algorithm phase-locks.  [synchronous] is included for
    contrast: starting everyone together has never locked in our runs,
    because the pinning frozen register of an early-returned process never
    arises. *)

type run_summary = {
  worst_rounds : int;  (** max round complexity over the terminating runs *)
  all_proper : bool;  (** every run's outputs properly coloured the returned subgraph *)
  all_palette : bool;  (** every returned output lay in the palette *)
  all_returned : bool;  (** every (non-crashing) run terminated fully *)
  distinct_colors_max : int;  (** max distinct colours used in any run *)
  livelocked : bool;  (** some run hit the step bound without terminating *)
  livelocked_names : string list;  (** adversaries whose run livelocked *)
}

module Sweep (P : Asyncolor_kernel.Protocol.S) : sig
  module E : module type of Asyncolor_kernel.Engine.Make (P)

  val run :
    ?max_steps:int ->
    equal:(P.output -> P.output -> bool) ->
    in_palette:(P.output -> bool) ->
    graph:Asyncolor_topology.Graph.t ->
    idents:int array ->
    Adversary.t list ->
    run_summary
end
