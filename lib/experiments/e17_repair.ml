(** E17 — Finding F3: repairing the F1 phase-lock inside the algorithm is
    hard; Algorithm 1 is the simultaneity-safe fallback.  (Our experiment;
    not in the paper.)

    We study the natural candidate repair Algorithm 2S — offset the
    [b]-choice by the local rank [1 + |N⁺|] so that a chasing pair picks
    different free colours — with three results:

    + the attack surface shrinks: instances of C3/C5/C6 on which
      Algorithm 2 livelocks become exhaustively wait-free over the FULL
      schedule space, and the isolate-pair hunter finds zero lockable
      edges where Algorithm 2 locks 10–20% of them;
    + the repair is {e refuted}: on C4 with monotone identifiers
      (0,1,2,3) both middle nodes have rank 1, the symmetry survives, and
      the checker returns a lasso — any bounded identifier-derived offset
      that must differ across every adjacent pair would itself be a
      proper colouring, i.e. the problem being solved;
    + the paper's own Algorithm 1 {e is} simultaneity-safe (its two
      colour components are pinned asymmetrically by local extrema):
      exhaustively wait-free in the full model on every instance we
      check, including the C4 instance that defeats Algorithm 2S —
      at the price of 6 colours instead of 5.

    Conjecture recorded in EXPERIMENTS.md: under the simultaneous reading
    of the model, 5 colours are not wait-free achievable on all cycles;
    6 are (Algorithm 1). *)

module Table = Asyncolor_workload.Table
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng
module Builders = Asyncolor_topology.Builders
module A2s = Asyncolor.Algorithm2s
module Checker = Asyncolor.Checker
module Explorer = Asyncolor_check.Explorer.Make (A2s.P)
module Explorer1 = Asyncolor_check.Explorer.Make (Asyncolor.Algorithm1.P)
module Hunt = Asyncolor_check.Lockhunt.Make (A2s.P)
module Hunt2 = Asyncolor_check.Lockhunt.Make (Asyncolor.Algorithm2.P)
module Hunt1 = Asyncolor_check.Lockhunt.Make (Asyncolor.Algorithm1.P)

let pp_sched s =
  String.concat " "
    (List.map (fun l -> "{" ^ String.concat "," (List.map string_of_int l) ^ "}") s)

(* (n, idents, max_configs): the cap is per-instance because the full
   schedule space grows steeply with n — C6 runs into the millions where
   C3 stays in the hundreds. *)
let instances ~quick =
  [
    (3, [| 5; 1; 9 |], 3_000_000);
    (3, [| 0; 1; 2 |], 3_000_000);
    (4, [| 5; 1; 9; 4 |], 3_000_000);
    (4, [| 0; 1; 2; 3 |], 3_000_000);
  ]
  @
  if quick then []
  else
    [
      (5, [| 5; 1; 9; 4; 7 |], 3_000_000);
      (5, [| 0; 1; 2; 3; 4 |], 3_000_000);
      (6, [| 5; 1; 9; 4; 7; 2 |], 3_000_000);
      (* The monotone C6 chase is the one instance whose reachable set we
         cannot close: it exceeds 12M configurations (measured).  A lasso
         — a conclusive livelock witness, truncation or not — already
         appears within the first 10^6, so we cap there and accept
         [not wait_free] in lieu of [complete] below. *)
      (6, [| 0; 1; 2; 3; 4; 5 |], 1_000_000);
    ]

let run ?(quick = false) ?(seed = 58) () =
  let ok = ref true in
  (* 1. exhaustive full-schedule verdicts: Algorithm 2S vs Algorithm 1 *)
  let ex_table =
    Table.create
      ~headers:
        [ "instance"; "alg2s wait-free (ALL)"; "alg2s worst"; "alg1 wait-free (ALL)";
          "alg1 worst"; "alg2s lasso" ]
  in
  let c4_monotone_refuted = ref false in
  List.iter
    (fun (n, idents, max_configs) ->
      let graph = Builders.cycle n in
      let check_outputs outs =
        let v = Checker.check ~equal:Int.equal ~in_palette:A2s.in_palette graph outs in
        if Checker.ok v then None else Some "bad colouring"
      in
      let r = Explorer.explore ~max_configs graph ~idents ~check_outputs in
      let r1 = Explorer1.explore ~max_configs graph ~idents in
      (* safety always; Algorithm 1 complete and wait-free always.  For
         Algorithm 2S either the exploration is exhaustive or it found a
         livelock lasso — which is conclusive even when truncated, since
         every explored edge is a real edge of the configuration graph. *)
      ok :=
        !ok
        && (r.complete || not r.wait_free)
        && r.safety = [] && r1.complete && r1.wait_free;
      if n = 4 && idents = [| 0; 1; 2; 3 |] && not r.wait_free then
        c4_monotone_refuted := true;
      Table.add_row ex_table
        [
          Printf.sprintf "C%d (%s)" n
            (String.concat "," (Array.to_list (Array.map string_of_int idents)));
          string_of_bool r.wait_free;
          string_of_int r.worst_case_activations;
          string_of_bool r1.wait_free;
          string_of_int r1.worst_case_activations;
          (match r.livelock with Some v -> pp_sched v.schedule | None -> "-");
        ])
    (instances ~quick);
  (* the refutation is part of the finding *)
  ok := !ok && !c4_monotone_refuted;
  (* 2. attack surface at scale *)
  let lock_table =
    Table.create
      ~headers:[ "n"; "workload"; "alg2 locked edges"; "alg2s locked edges"; "alg1 locked edges" ]
  in
  List.iter
    (fun n ->
      let graph = Builders.cycle n in
      List.iter
        (fun (wname, idents) ->
          let l2 = List.length (Hunt2.locked (Hunt2.hunt graph ~idents)) in
          let l2s = List.length (Hunt.locked (Hunt.hunt graph ~idents)) in
          let l1 = List.length (Hunt1.locked (Hunt1.hunt graph ~idents)) in
          ok := !ok && l1 = 0;
          Table.add_row lock_table
            [
              string_of_int n; wname; string_of_int l2; string_of_int l2s;
              string_of_int l1;
            ])
        [
          ("increasing", Idents.increasing n);
          ("random", Idents.random_permutation (Prng.create ~seed:(seed + n)) n);
        ])
    (if quick then [ 8; 32 ] else [ 8; 32; 128 ]);
  (* 3. sanity: Algorithm 2S stays safe and O(n) where it does terminate *)
  let price_table =
    Table.create ~headers:[ "n"; "alg2s rounds (sync, monotone)"; "proper"; "palette" ]
  in
  List.iter
    (fun n ->
      let r =
        A2s.run_on_cycle ~max_steps:(50_000 + (6 * n))
          ~idents:(Idents.increasing n) Asyncolor_kernel.Adversary.synchronous
      in
      let v =
        Checker.check ~equal:Int.equal ~in_palette:A2s.in_palette (Builders.cycle n)
          r.outputs
      in
      ok := !ok && Checker.ok v;
      Table.add_row price_table
        [
          string_of_int n;
          (if r.all_returned then string_of_int r.rounds else "locked");
          string_of_bool v.Checker.proper;
          "{0..6}";
        ])
    (if quick then [ 16; 64 ] else [ 16; 64; 256 ]);
  {
    Outcome.id = "E17";
    title = "Finding F3: in-algorithm repairs of F1 fail; Algorithm 1 is the safe fallback";
    claim =
      "Ours: the rank-offset 5→7-colour repair shrinks but does not close \
       the F1 attack surface (refuted on C4 monotone); Algorithm 1 (6 \
       colours) is exhaustively wait-free in the full model";
    tables =
      [
        ("exhaustive over the FULL schedule space", ex_table);
        ("isolate-pair attack surface", lock_table);
        ("Algorithm 2S safety and cost where it terminates", price_table);
      ];
    ok = !ok;
    notes =
      [
        "Why repairs fail: a bounded offset that must differ on every \
         adjacent pair is itself a proper O(1)-colouring — the problem \
         being solved.  Algorithm 1 escapes because its components are \
         pinned asymmetrically by local extrema, not by symmetric mex \
         races.";
        "Conjecture: under simultaneous activation semantics no wait-free \
         5-colouring of all cycles exists; 6 colours suffice (Algorithm 1).";
        "The monotone C6 chase blows up the reachable set past 12M \
         configurations; its lasso (found within the first 10^6) is a \
         conclusive livelock witness despite the truncated exploration.";
      ];
  }
