(** E16 — probing the paper's open problem (§5): "We do not know if 2Δ+1
    colors suffice for properly coloring all graphs of maximum degree Δ in
    a wait-free manner."

    Observation: Algorithm 2's transition never inspects its degree.  Run
    on an arbitrary graph it outputs colours in [{0,…,2Δ}] — the exact
    palette the renaming lower bound makes necessary — and properness
    carries over verbatim (Lemma 3.12's argument is degree-blind).  Only
    {e wait-freedom} is open.  We probe it two ways:

    - exhaustively (all interleaved schedules) on small graphs of varied
      shape: cliques (where the algorithm specialises to a (2n−1)-renaming
      protocol!), stars, paths, the paw and the diamond — the
      configuration graphs are acyclic with worst cases of 4-5
      activations;
    - adversarial sweeps on the topology zoo, validating termination,
      palette [2Δ+1] and properness.

    This is empirical evidence {e for} a positive answer, not a proof —
    recorded as such in EXPERIMENTS.md.  (Under simultaneous schedules the
    F1 phase-lock appears on every one of these graphs, including paths:
    F1 is a property of the a/b-mex coupling, not of the cycle.) *)

module Table = Asyncolor_workload.Table
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng
module Graph = Asyncolor_topology.Graph
module Builders = Asyncolor_topology.Builders
module A2 = Asyncolor.Algorithm2
module Checker = Asyncolor.Checker
module Explorer = Asyncolor_check.Explorer.Make (A2.P)
module Sweep = Harness.Sweep (A2.P)

let paw = lazy (Graph.make ~n:4 ~edges:[ (0, 1); (1, 2); (2, 0); (2, 3) ])

let diamond =
  lazy (Graph.make ~n:4 ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0); (0, 2) ])

(* Each instance carries its own configuration cap: the packed explorer
   holds ~18.6M configurations for K7, so the cap is per-size rather than
   one global guess. *)
let small_graphs ~quick =
  let base =
    [
      ("K4", Builders.complete 4, [| 3; 7; 1; 9 |], 2_000_000);
      ("star4", Builders.star 4, [| 5; 2; 8; 1 |], 2_000_000);
      ("path4", Builders.path 4, [| 5; 1; 9; 4 |], 2_000_000);
      ("paw", Lazy.force paw, [| 5; 1; 9; 4 |], 2_000_000);
      ("diamond", Lazy.force diamond, [| 5; 1; 9; 4 |], 2_000_000);
    ]
  in
  if quick then base
  else
    base
    @ [
        ("K5", Builders.complete 5, [| 3; 7; 1; 9; 5 |], 2_000_000);
        ("K6", Builders.complete 6, [| 3; 7; 1; 9; 5; 11 |], 2_000_000);
        ("K7", Builders.complete 7, [| 3; 7; 1; 9; 5; 11; 2 |], 40_000_000);
      ]

let run ?(quick = false) ?(seed = 57) () =
  let ok = ref true in
  let ex_table =
    Table.create
      ~headers:[ "graph"; "Δ"; "configs"; "wait-free (interleaved)"; "exact worst"; "violations" ]
  in
  List.iter
    (fun (gname, graph, idents, max_configs) ->
      let delta = Graph.max_degree graph in
      let check_outputs outs =
        let v =
          Checker.check ~equal:Int.equal
            ~in_palette:(A2.in_general_palette ~max_degree:delta)
            graph outs
        in
        if Checker.ok v then None else Some (Format.asprintf "%a" Checker.pp v)
      in
      let r =
        Explorer.explore ~mode:`Singletons ~max_configs graph ~idents
          ~check_outputs
      in
      ok := !ok && r.complete && r.wait_free && r.safety = [];
      Table.add_row ex_table
        [
          gname;
          string_of_int delta;
          string_of_int r.configs;
          string_of_bool r.wait_free;
          string_of_int r.worst_case_activations;
          string_of_int (List.length r.safety);
        ])
    (small_graphs ~quick);
  let sweep_table =
    Table.create
      ~headers:[ "graph"; "n"; "Δ"; "palette 2Δ+1"; "colours used"; "worst rounds" ]
  in
  let prng = Prng.create ~seed in
  let zoo =
    [
      ("petersen", Builders.petersen ());
      ("grid 6x6", Builders.grid 6 6);
      ("hypercube d=4", Builders.hypercube 4);
      ("3-regular n=24", Builders.random_regular prng ~n:24 ~d:3);
      ("K8", Builders.complete 8);
    ]
    @ if quick then [] else [ ("gnp n=40 p=0.15", Builders.gnp prng ~n:40 ~p:0.15) ]
  in
  List.iter
    (fun (gname, graph) ->
      let n = Graph.n graph in
      let delta = Graph.max_degree graph in
      let idents = Idents.random_permutation (Prng.create ~seed:(seed + n)) n in
      let s =
        Sweep.run ~equal:Int.equal
          ~in_palette:(A2.in_general_palette ~max_degree:delta)
          ~graph ~idents
          (Harness.adversary_suite ~seed ~n)
      in
      ok :=
        !ok && s.all_proper && s.all_palette && s.all_returned && not s.livelocked;
      Table.add_row sweep_table
        [
          gname;
          string_of_int n;
          string_of_int delta;
          string_of_int (A2.general_palette ~max_degree:delta);
          string_of_int s.distinct_colors_max;
          string_of_int s.worst_rounds;
        ])
    zoo;
  {
    Outcome.id = "E16";
    title = "Open problem probe: Algorithm 2 on general graphs (2Δ+1 colours)";
    claim =
      "§5 open question: do 2Δ+1 colours suffice wait-free on graphs of \
       max degree Δ? — palette and properness hold by construction; \
       wait-freedom holds on every graph we could check exhaustively";
    tables =
      [
        ("exhaustive, interleaved schedules", ex_table);
        ("adversary-suite sweeps on the zoo", sweep_table);
      ];
    ok = !ok;
    notes =
      [
        "On K_n the generalised Algorithm 2 is a (2n-1)-renaming protocol \
         — with exhaustive exact worst case of n activations (K4: 4, K5: \
         5, K6: 6, K7: 7).";
        "Evidence, not proof: exhaustiveness stops at n=7 (K7, 18.6M \
         configurations, packed explorer); the sweeps are adversarial \
         sampling.";
      ];
  }
