type entry = {
  id : string;
  title : string;
  run : ?quick:bool -> unit -> Outcome.t;
}

let all =
  [
    {
      id = "E1";
      title = "Algorithm 1 termination bound";
      run = (fun ?quick () -> E01_alg1_termination.run ?quick ());
    };
    {
      id = "E2";
      title = "Algorithm 1 palette & exhaustive safety";
      run = (fun ?quick () -> E02_alg1_palette.run ?quick ());
    };
    {
      id = "E3";
      title = "Algorithm 2 linear time";
      run = (fun ?quick () -> E03_alg2_linear.run ?quick ());
    };
    {
      id = "E4";
      title = "Algorithm 3 log* time";
      run = (fun ?quick () -> E04_alg3_logstar.run ?quick ());
    };
    {
      id = "E5";
      title = "Crossover Alg2 vs Alg3";
      run = (fun ?quick () -> E05_crossover.run ?quick ());
    };
    {
      id = "E6";
      title = "C3 palette tightness & renaming coincidence";
      run = (fun ?quick () -> E06_c3_palette.run ?quick ());
    };
    {
      id = "E7";
      title = "MIS impossibility horns & reduction";
      run = (fun ?quick () -> E07_mis_impossible.run ?quick ());
    };
    {
      id = "E8";
      title = "Crash tolerance";
      run = (fun ?quick () -> E08_crash_tolerance.run ?quick ());
    };
    {
      id = "E9";
      title = "Cole-Vishkin reduction lemmas";
      run = (fun ?quick () -> E09_cv_reduction.run ?quick ());
    };
    {
      id = "E10";
      title = "General graphs (Algorithm 4)";
      run = (fun ?quick () -> E10_general_graphs.run ?quick ());
    };
    {
      id = "E11";
      title = "LOCAL baseline vs Algorithm 3";
      run = (fun ?quick () -> E11_local_baseline.run ?quick ());
    };
    {
      id = "E12";
      title = "Ablation & renaming baseline";
      run = (fun ?quick () -> E12_ablation.run ?quick ());
    };
    {
      id = "E13";
      title = "Finding F1: phase-lock under simultaneous schedules";
      run = (fun ?quick () -> E13_phase_lock.run ?quick ());
    };
    {
      id = "E14";
      title = "Model separation: DECOUPLED vs the state model";
      run = (fun ?quick () -> E14_model_separation.run ?quick ());
    };
    {
      id = "E15";
      title = "General graphs: Linial baseline vs Algorithm 4";
      run = (fun ?quick () -> E15_general_baseline.run ?quick ());
    };
    {
      id = "E16";
      title = "Open problem probe: 2Δ+1 colours wait-free on general graphs";
      run = (fun ?quick () -> E16_open_problem.run ?quick ());
    };
    {
      id = "E17";
      title = "Finding F3: the rank-offset repair of the phase-lock";
      run = (fun ?quick () -> E17_repair.run ?quick ());
    };
    {
      id = "E18";
      title = "Registers stay O(log n) bits";
      run = (fun ?quick () -> E18_register_bits.run ?quick ());
    };
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.id = id) all

let run_all ?quick ?(jobs = 1) () =
  (* Experiments are pure cells (they build tables, the printing happens
     here), so they fan out across domains; outcomes print in registry
     order either way. *)
  let outcomes = Harness.map_cells ~jobs (fun e -> e.run ?quick ()) all in
  List.iter Outcome.print outcomes;
  outcomes
