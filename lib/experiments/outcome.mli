(** Result of one reproduction experiment (see the index in DESIGN.md). *)

type t = {
  id : string;  (** e.g. "E4" *)
  title : string;
  claim : string;  (** the paper claim being reproduced *)
  tables : (string * Asyncolor_workload.Table.t) list;  (** captioned tables *)
  ok : bool;  (** every assertion of the experiment held *)
  notes : string list;  (** findings, caveats, measured constants *)
}

val print : t -> unit
(** Render the outcome to stdout: header, claim, tables, notes, verdict. *)

val write_csvs : dir:string -> t -> string list
(** Write each table of the outcome to [dir/<id>_<caption-slug>.csv];
    returns the paths written.  [dir] must exist. *)

val to_json : t -> Asyncolor_util.Jsonout.t
(** The whole outcome as one JSON object: id, title, claim, verdict,
    every table row as a header-keyed record, and the notes.  Used by the
    bench driver's [--json] mode. *)

val all_ok : t list -> bool
