(** Churn findings as replayable artefacts, persisted through the
    crash-safe {!Asyncolor_resilience.Checkpoint} container (versioned,
    checksummed, atomically written). *)

type t = {
  cfg : Session.config;
  seed : int;
  sessions : int;
  violations : (int * Session.violation) list;
}

val version : int
val fingerprint : string

val of_report : Session.report -> t

val save : path:string -> t -> unit

val load : string -> t
(** @raise Asyncolor_resilience.Checkpoint.Corrupt on damaged or
    truncated files, wrong container version, a payload that is not a
    churn trace, or a structurally invalid configuration — a trace file
    is untrusted input. *)

val replay :
  ?jobs:int ->
  ?policy:Asyncolor_util.Executor.policy ->
  ?obs:Asyncolor_obs.Obs.t ->
  t ->
  Session.report * bool
(** Re-run the campaign the trace records; [true] when every recorded
    violation reproduces byte-for-byte (session determinism makes this
    exact, not approximate). *)

val pp : Format.formatter -> t -> unit
