(** Long-lived churn sessions: crash-recovery with self-healing
    re-coloring on the ring.

    A session drives one engine over a sustained horizon (millions of
    activations on rings up to [Sys.int_size - 1] nodes, all through the
    packed {!Asyncolor_kernel.Engine.Make.activate_mask} fast path) under
    a seed-deterministic churn schedule.  Processes crash (stop being
    scheduled, registers left behind), recover through
    {!Asyncolor_kernel.Engine.Make.reset} with a fresh identifier from
    {!Asyncolor_workload.Idents.fresh}, and must be re-colored online.

    Time is organised in {e epochs}: a short churn window (crashes and
    recoveries interleaved with random activity), a {e drain} (every node
    still down recovers — the epoch's last churn events), a quiet {e heal}
    phase, and a {e stability} window.  The self-healing invariants are
    checked per epoch:

    + {b churn-recovery} — after the last churn event, a quiet
      round-robin schedule (the sequential adversary) restores a proper
      coloring with no process exceeding the algorithm's wait-freedom
      activation bound, and the healed coloring is on palette.  The heal
      schedule is sequential by design: recovery leaves the ring outside
      the static model, where exact synchronous lockstep can sustain a
      period-2 oscillation between adjacent fresh processes forever;
    + {b churn-locality} — no node outside ring distance 0 of the epoch's
      churned nodes changes color (returned processes never recolour; the
      repair-radius histogram in {!result.radii} records the measured
      distances);
    + {b churn-stability} — while no churn is in flight, nobody
      recolours;
    + {b churn-reinit} — a recovered node is observably a fresh process
      (asleep, register [⊥], activation counter restarted);
    + {b churn-fresh-ident} — installed identifiers stay pairwise
      distinct after every recovery.

    {b Determinism.} Session [i] of a campaign draws everything from a
    SplitMix64 stream that is a pure function of [(seed, i)], with all
    draws in a fixed explicit order; each churn event additionally uses
    its own per-[(seed, event)] stream for its internal choices.  Reports
    are therefore byte-identical across [--jobs] and executor policies —
    the same argument as the fuzzer's campaigns. *)

type algo = A2 | A3

val algo_name : algo -> string
(** ["2"] or ["3"] — the CLI spelling.  Only the wait-free cycle
    algorithms run under churn: the recovery invariant needs a healing
    bound, which Algorithm 2s does not have. *)

val algo_of_string : string -> algo option

(** {1 Planted recovery bugs}

    Mutation testing for the churn detectors: each bug breaks the
    recovery {e machinery} (never the protocol) and is pinned to the
    detector that must catch it. *)

type bug =
  | Ident_collide  (** recovery installs a colliding identifier *)
  | Skip_reinit  (** recovery declares the node back without re-initialising *)
  | Heal_starve  (** recovered nodes are silently never scheduled again *)
  | Spurious_recolor  (** an unrecorded reset while no churn is in flight *)

val bug_name : bug -> string
val bug_of_string : string -> bug option

val bug_detector : bug -> string
(** The detector pinned to the bug ([ident-collide] → [churn-fresh-ident],
    [skip-reinit] → [churn-reinit], [heal-starve] → [churn-recovery],
    [spurious-recolor] → [churn-stability]). *)

val bugs : bug list
val detector_names : string list

(** {1 Configuration} *)

type config = {
  algo : algo;
  n : int;  (** ring size, [3 <= n <= Sys.int_size - 1] *)
  horizon : int;  (** target activations per session *)
  crash_rate : float;  (** per-step probability of a crash event *)
  recover_rate : float;  (** per-step recovery probability of each down node *)
  burst : int;  (** nodes taken down by one crash event *)
  mutant : bug option;  (** planted recovery bug, [None] for the real machinery *)
}

val default : config
(** C62 ring, Algorithm 2, 250k activations per session, moderate churn. *)

val validate_config : config -> unit
(** @raise Invalid_argument on out-of-range fields — the checks a hostile
    trace file must pass before being replayed. *)

val pp_config : Format.formatter -> config -> unit

(** {1 Running} *)

type violation = { epoch : int; detector : string; message : string }

type result = {
  session : int;
  steps : int;
  activations : int;
  epochs : int;
  crashes : int;
  recoveries : int;
  latencies : int list;
      (** per recovered incarnation, activations from recovery to return
          (chronological) — the recovery-latency histogram *)
  radii : int list;
      (** ring distance to the nearest churned node, one sample per
          recoloured node per epoch — the repair-radius histogram *)
  violations : violation list;
}

val session_seed : seed:int -> int -> int
(** The per-session stream derivation (exposed for tests). *)

val run : ?obs:Asyncolor_obs.Obs.t -> config -> seed:int -> session:int -> result
(** Run one session.  Deterministic: a pure function of
    [(config, seed, session)].  Emits [churn.*] counters, spans and the
    recovery-latency gauge when [obs] is enabled (out-of-band; the result
    is byte-identical either way).
    @raise Invalid_argument on an invalid configuration. *)

(** {1 Campaigns} *)

type report = {
  seed : int;
  cfg : config;
  sessions : int;
  results : result list;  (** in session order *)
  total_activations : int;
  total_crashes : int;
  total_recoveries : int;
  latency : Asyncolor_workload.Stats.summary option;
      (** recovery latency over all sessions; [None] when no recovered
          incarnation returned *)
  radius : Asyncolor_workload.Stats.summary option;
  violations : (int * violation) list;  (** tagged with the session index *)
}

val campaign :
  ?jobs:int ->
  ?policy:Asyncolor_util.Executor.policy ->
  ?obs:Asyncolor_obs.Obs.t ->
  config ->
  seed:int ->
  sessions:int ->
  unit ->
  report
(** Fan the sessions out over an executor ([policy] defaults to serial
    for [jobs <= 1], synchronous barriers otherwise) and merge by session
    index.  The report is a pure function of [(config, seed, sessions)]
    whatever [jobs] or [policy] ran it. *)

val pp_report : Format.formatter -> report -> unit
(** Deterministic plain-text rendering (the CLI's output). *)
