module Graph = Asyncolor_topology.Graph
module Builders = Asyncolor_topology.Builders
module Status = Asyncolor_kernel.Status
module Idents = Asyncolor_workload.Idents
module Stats = Asyncolor_workload.Stats
module Prng = Asyncolor_util.Prng
module Executor = Asyncolor_util.Executor
module Obs = Asyncolor_obs.Obs
module Checker = Asyncolor.Checker

(* Only the wait-free cycle algorithms make sense under churn: the
   recovery invariant needs a bound on how long healing may take, and
   Algorithm 2s has none (the symmetric lasso of E13). *)
type algo = A2 | A3

let algo_name = function A2 -> "2" | A3 -> "3"
let algo_of_string = function "2" -> Some A2 | "3" -> Some A3 | _ -> None

(* Planted recovery bugs, each pinned to the detector that must catch it
   (mutation testing for the churn invariant suite, mirroring
   {!Asyncolor_fuzz.Mutation}). *)
type bug = Ident_collide | Skip_reinit | Heal_starve | Spurious_recolor

let bug_name = function
  | Ident_collide -> "ident-collide"
  | Skip_reinit -> "skip-reinit"
  | Heal_starve -> "heal-starve"
  | Spurious_recolor -> "spurious-recolor"

let bug_of_string = function
  | "ident-collide" -> Some Ident_collide
  | "skip-reinit" -> Some Skip_reinit
  | "heal-starve" -> Some Heal_starve
  | "spurious-recolor" -> Some Spurious_recolor
  | _ -> None

let bug_detector = function
  | Ident_collide -> "churn-fresh-ident"
  | Skip_reinit -> "churn-reinit"
  | Heal_starve -> "churn-recovery"
  | Spurious_recolor -> "churn-stability"

let bugs = [ Ident_collide; Skip_reinit; Heal_starve; Spurious_recolor ]

let detector_names =
  [
    "churn-recovery";
    "churn-locality";
    "churn-stability";
    "churn-reinit";
    "churn-fresh-ident";
  ]

type config = {
  algo : algo;
  n : int;
  horizon : int;
  crash_rate : float;
  recover_rate : float;
  burst : int;
  mutant : bug option;
}

let default =
  {
    algo = A2;
    n = 62;
    horizon = 250_000;
    crash_rate = 0.3;
    recover_rate = 0.5;
    burst = 1;
    mutant = None;
  }

let validate_config c =
  if c.n < 3 || c.n > Sys.int_size - 1 then
    invalid_arg
      (Printf.sprintf "Churn: n must lie in [3, %d] (cycle + packed masks)"
         (Sys.int_size - 1));
  if c.horizon < 1 then invalid_arg "Churn: horizon must be positive";
  let rate name r =
    if not (r >= 0.0 && r <= 1.0) then
      invalid_arg (Printf.sprintf "Churn: %s must lie in [0, 1]" name)
  in
  rate "crash-rate" c.crash_rate;
  rate "recover-rate" c.recover_rate;
  if c.burst < 1 || c.burst > c.n then
    invalid_arg "Churn: burst must lie in [1, n]"

let pp_config ppf c =
  Format.fprintf ppf
    "algo=%s%s n=%d horizon=%d crash-rate=%.3f recover-rate=%.3f burst=%d"
    (algo_name c.algo)
    (match c.mutant with None -> "" | Some b -> "!" ^ bug_name b)
    c.n c.horizon c.crash_rate c.recover_rate c.burst

type violation = { epoch : int; detector : string; message : string }

type result = {
  session : int;
  steps : int;
  activations : int;
  epochs : int;
  crashes : int;
  recoveries : int;
  latencies : int list;
  radii : int list;
  violations : violation list;
}

(* Per-session PRNG stream: a pure function of (campaign seed, session
   index), the same odd-multiplier xor combine as the fuzzer's per-exec
   streams — session [i] runs the same schedule whatever --jobs or
   --exec-policy is, which is the whole determinism argument of the
   campaign. *)
let session_seed ~seed i = seed lxor (i * 0x9E3779B97F4A7C1)

(* Per-(seed, event) stream: the [k]-th churn event draws its internals
   (burst victim choices) from its own stream, so an event consumes no
   draws from the session stream beyond its trigger coin — the schedule
   shape never depends on how many victims an earlier burst considered. *)
let event_seed base k = base lxor ((k + 1) * 0x2545F4914F6CDD1D)

let popcount m =
  let c = ref 0 and m = ref m in
  while !m <> 0 do
    incr c;
    m := !m land (!m - 1)
  done;
  !c

(* Ring distance between nodes [a] and [b] on the n-cycle. *)
let ring_dist n a b =
  let d = abs (a - b) in
  min d (n - d)

(* The protocol plus what the invariant suite needs: palette membership
   and the wait-freedom activation bound (both cycle-only here). *)
module type PROTO = sig
  include Asyncolor_kernel.Protocol.S with type output = int

  val in_palette : int -> bool
  val bound : n:int -> int
end

let proto : algo -> (module PROTO) = function
  | A2 ->
      (module struct
        include Asyncolor.Algorithm2.P

        (* 5 colours on the cycle: the 2Δ+1 palette at Δ = 2. *)
        let in_palette = Asyncolor.Algorithm2.in_general_palette ~max_degree:2
        let bound ~n = Asyncolor.Algorithm2.activation_bound n
      end)
  | A3 ->
      (module struct
        include Asyncolor.Algorithm3.P

        let in_palette = Asyncolor.Color.in_five
        let bound ~n = Asyncolor.Algorithm3.activation_bound n
      end)

(* Observability: counters are sharded per domain in the sink, so
   parallel sessions never contend; everything is out-of-band and leaves
   the report bytes untouched. *)
type octx = {
  oc_steps : Obs.Counter.t;
  oc_activations : Obs.Counter.t;
  oc_crashes : Obs.Counter.t;
  oc_recoveries : Obs.Counter.t;
  oc_epochs : Obs.Counter.t;
  oc_violations : Obs.Counter.t;
  og_latency_p99 : Obs.Gauge.t;
}

let make_octx o =
  {
    oc_steps = Obs.counter o "churn.steps";
    oc_activations = Obs.counter o "churn.activations";
    oc_crashes = Obs.counter o "churn.crashes";
    oc_recoveries = Obs.counter o "churn.recoveries";
    oc_epochs = Obs.counter o "churn.epochs";
    oc_violations = Obs.counter o "churn.violations";
    og_latency_p99 = Obs.gauge o "churn.recovery_latency_p99";
  }

(* How long one epoch's phases run.  The churn window is short so quiet
   periods (where the recovery invariant is measurable) dominate the
   horizon; the stability window only needs enough steps to let a
   spurious recolouring surface. *)
let churn_window = 8
let stability_window = 3

(* A session stops early once it has gathered this many violations: a
   finding needs evidence, not an unbounded flood — and some planted bugs
   (heal-starve exempts every recovered node from scheduling, so live
   activations stop accruing entirely) would otherwise never reach their
   activation horizon. *)
let max_violations = 64

let run ?(obs = Obs.disabled) cfg ~seed ~session =
  validate_config cfg;
  let octx = make_octx obs in
  let (module P) = proto cfg.algo in
  let module E = Asyncolor_kernel.Engine.Make (P) in
  let n = cfg.n in
  let graph = Builders.cycle n in
  let universe = max 64 (4 * n) in
  let base = session_seed ~seed session in
  let prng = Prng.create ~seed:base in
  let idents = Idents.random_sparse prng ~n ~universe in
  let engine = E.create graph ~idents in
  let heal_bound = P.bound ~n in
  let up = Array.make n true in
  (* has this node's current incarnation already been counted as
     returned (latency bookkeeping)? *)
  let counted = Array.make n false in
  (* has this node ever been recovered (only recovered incarnations feed
     the latency histogram; the initial colouring does not)? *)
  let recovered_inc = Array.make n false in
  (* nodes the heal-starve mutant silently starves *)
  let starved = Array.make n false in
  let violations = ref [] in
  let nviol = ref 0 in
  let latencies = ref [] in
  let radii = ref [] in
  let crashes = ref 0 in
  let recoveries = ref 0 in
  let activations = ref 0 in
  let epochs = ref 0 in
  let event_idx = ref 0 in
  let add_violation ~epoch detector message =
    Obs.Counter.incr octx.oc_violations;
    incr nviol;
    violations := { epoch; detector; message } :: !violations
  in
  let check_new_returns () =
    for p = 0 to n - 1 do
      if up.(p) && (not counted.(p)) && Status.is_returned (E.status engine p)
      then begin
        counted.(p) <- true;
        if recovered_inc.(p) then latencies := E.activations engine p :: !latencies
      end
    done
  in
  let step mask =
    (* the heal-starve bug withholds scheduling everywhere, not only in
       the heal phase — "silently never scheduled again" *)
    let mask =
      match cfg.mutant with
      | Some Heal_starve ->
          let m = ref mask in
          for p = 0 to n - 1 do
            if starved.(p) then m := !m land lnot (1 lsl p)
          done;
          !m
      | _ -> mask
    in
    let live = mask land E.unfinished_mask engine in
    E.activate_mask engine mask;
    Obs.Counter.incr octx.oc_steps;
    let did = popcount live in
    activations := !activations + did;
    Obs.Counter.add octx.oc_activations did;
    check_new_returns ()
  in
  (* Recovery event: the engine-side reset plus the bookkeeping the
     detectors audit.  The planted bugs live here — each one breaks the
     recovery machinery, never the protocol. *)
  let recover ~epoch p =
    let fresh_id =
      let live = ref [] in
      for q = n - 1 downto 0 do
        live := E.ident engine q :: !live
      done;
      (* conservative freshness: avoid dead incarnations' identifiers
         too — their registers may still be visible to neighbours *)
      Idents.fresh ~live:!live ~universe
    in
    (match cfg.mutant with
    | Some Ident_collide ->
        (* planted bug: reuse another node's identifier instead (distance
           2, so the collision is global, not a degenerate adjacent pair) *)
        E.reset engine p ~ident:(E.ident engine ((p + 2) mod n))
    | Some Skip_reinit ->
        (* planted bug: declare the node recovered without re-initialising *)
        ()
    | _ -> E.reset engine p ~ident:fresh_id);
    up.(p) <- true;
    counted.(p) <- false;
    recovered_inc.(p) <- true;
    (match cfg.mutant with Some Heal_starve -> starved.(p) <- true | _ -> ());
    incr recoveries;
    Obs.Counter.incr octx.oc_recoveries;
    (* churn-reinit: a recovered node must observably be a fresh process —
       asleep, register back to ⊥, activation counter restarted. *)
    (match E.status engine p with
    | Status.Asleep when E.public engine p = None && E.activations engine p = 0
      ->
        ()
    | _ ->
        add_violation ~epoch "churn-reinit"
          (Printf.sprintf
             "node %d not re-initialised on recovery (status %s, acts %d)" p
             (match E.status engine p with
             | Status.Asleep -> "asleep"
             | Status.Working -> "working"
             | Status.Returned _ -> "returned")
             (E.activations engine p)));
    (* churn-fresh-ident: installed identifiers stay pairwise distinct. *)
    let seen = Hashtbl.create (2 * n) in
    for q = 0 to n - 1 do
      let id = E.ident engine q in
      match Hashtbl.find_opt seen id with
      | Some q0 ->
          add_violation ~epoch "churn-fresh-ident"
            (Printf.sprintf "nodes %d and %d both hold identifier %d" q0 q id)
      | None -> Hashtbl.add seen id q
    done
  in
  let crash ~epoch:_ churned ev =
    (* victim: uniform among up nodes, drawn from the event's own stream *)
    let ups = ref [] in
    for q = n - 1 downto 0 do
      if up.(q) then ups := q :: !ups
    done;
    match !ups with
    | [] -> ()
    | l ->
        let v = List.nth l (Prng.int ev (List.length l)) in
        up.(v) <- false;
        churned.(v) <- true;
        incr crashes;
        Obs.Counter.incr octx.oc_crashes
  in
  (* Quiet-period healing: round-robin singleton activations over the
     unfinished processes — the sequential adversary.  Wait-freedom then
     bounds each process's own activations to return; exceeding that
     per-process bound is the recovery violation.

     Why not synchronous lockstep?  Recovery leaves the ring outside the
     static model (frozen registers of returned neighbours can pin a
     fresh local maximum's [a]-candidate forever), and from there exact
     lockstep can sustain a period-2 oscillation between two adjacent
     fresh processes indefinitely — Algorithm 3 even livelocks
     permanently.  Any asymmetric schedule breaks the cycle in a couple
     of activations; the sequential schedule is the deterministic way to
     guarantee that, and makes the invariant the literal per-process
     wait-freedom statement. *)
  let heal ~epoch =
    let start = Array.init n (fun p -> E.activations engine p) in
    let unfinished p = not (Status.is_returned (E.status engine p)) in
    let give_up = ref false in
    let rr = ref 0 in
    while (not (E.all_returned engine)) && not !give_up do
      let chosen = ref (-1) in
      let tried = ref 0 in
      while !chosen < 0 && !tried < n do
        let p = !rr mod n in
        incr rr;
        incr tried;
        if unfinished p && not starved.(p) then chosen := p
      done;
      if !chosen < 0 then begin
        (* every unfinished process is starved: the healing machinery
           will never schedule them again *)
        give_up := true;
        let stuck = ref [] in
        for p = n - 1 downto 0 do
          if unfinished p then stuck := p :: !stuck
        done;
        add_violation ~epoch "churn-recovery"
          (Printf.sprintf "nodes [%s] are never scheduled again after recovery"
             (String.concat ";" (List.map string_of_int !stuck)))
      end
      else begin
        let p = !chosen in
        step (1 lsl p);
        if unfinished p && E.activations engine p - start.(p) > heal_bound
        then begin
          give_up := true;
          add_violation ~epoch "churn-recovery"
            (Printf.sprintf
               "node %d not returned after %d quiet activations (bound %d)" p
               (E.activations engine p - start.(p))
               heal_bound)
        end
      end
    done;
    (* the coloring the quiet period restored must be proper and on
       palette — the other half of the recovery invariant *)
    if not !give_up then begin
      let verdict =
        Checker.check ~equal:Int.equal ~in_palette:P.in_palette graph
          (E.outputs engine)
      in
      if not (Checker.ok verdict) then
        add_violation ~epoch "churn-recovery"
          (Format.asprintf "healed coloring invalid: %a" Checker.pp verdict)
    end
  in
  Obs.span obs
    ~args:
      [ ("session", string_of_int session); ("seed", string_of_int seed) ]
    "churn.session"
  @@ fun () ->
  (* Warmup: bring the fresh ring to a full coloring; epoch 0 is the
     initial colouring, not a recovery, so it feeds no latency sample. *)
  heal ~epoch:0;
  (* With a zero crash rate no epoch can ever generate activity, so the
     session is the warmup alone — anything else would spin forever. *)
  let churn_possible = cfg.crash_rate > 0.0 in
  (* the epoch cap is belt-and-braces against zero-progress loops: a
     clean epoch yields far more than one activation, so it never binds
     without a planted bug *)
  let max_epochs = cfg.horizon in
  while
    !activations < cfg.horizon && churn_possible
    && !nviol < max_violations
    && !epochs < max_epochs
  do
    incr epochs;
    Obs.Counter.incr octx.oc_epochs;
    let epoch = !epochs in
    let baseline = E.outputs engine in
    let churned = Array.make n false in
    Obs.span obs ~args:[ ("epoch", string_of_int epoch) ] "churn.epoch"
    @@ fun () ->
    (* -- churn phase: crashes, recoveries and activity interleave -- *)
    for _ = 1 to churn_window do
      if Prng.float prng 1.0 < cfg.crash_rate then begin
        let ev = Prng.create ~seed:(event_seed base !event_idx) in
        incr event_idx;
        for _ = 1 to cfg.burst do
          crash ~epoch churned ev
        done
      end;
      for p = 0 to n - 1 do
        if (not up.(p)) && Prng.float prng 1.0 < cfg.recover_rate then begin
          churned.(p) <- true;
          recover ~epoch p
        end
      done;
      let mask = ref 0 in
      for p = 0 to n - 1 do
        if up.(p) && Prng.bool prng then mask := !mask lor (1 lsl p)
      done;
      step !mask
    done;
    (* -- drain: the epoch's last churn events recover every down node -- *)
    for p = 0 to n - 1 do
      if not up.(p) then begin
        churned.(p) <- true;
        recover ~epoch p
      end
    done;
    (* -- heal: quiet period; the recovery invariant's clock runs here -- *)
    heal ~epoch;
    (* -- repair locality: nobody outside the churn radius recoloured -- *)
    let after = E.outputs engine in
    let any_churn = Array.exists Fun.id churned in
    for q = 0 to n - 1 do
      match baseline.(q) with
      | None -> () (* was not coloured at baseline: not constrained *)
      | Some _ when baseline.(q) = after.(q) -> ()
      | Some _ ->
          let dist =
            if not any_churn then n
            else begin
              let d = ref n in
              for c = 0 to n - 1 do
                if churned.(c) then d := min !d (ring_dist n q c)
              done;
              !d
            end
          in
          radii := dist :: !radii;
          if dist > 0 then
            add_violation ~epoch "churn-locality"
              (Printf.sprintf
                 "node %d recoloured at ring distance %d from the nearest \
                  churned node"
                 q dist)
    done;
    (* -- stability: no churn in flight, so nobody may recolour.  The
       snapshot is compared after every step (not only at the end), so a
       node that recolours and happens to land back on its old colour
       within the window is still caught; [flagged] keeps it one
       violation per node per epoch. -- *)
    let snap = E.outputs engine in
    let flagged = Array.make n false in
    for s = 1 to stability_window do
      (match cfg.mutant with
      | Some Spurious_recolor when epoch = 1 && s = 1 ->
          (* planted bug: an unrecorded reset while no churn is in flight *)
          E.reset engine 0
            ~ident:
              (let live = ref [] in
               for q = n - 1 downto 0 do
                 live := E.ident engine q :: !live
               done;
               Idents.fresh ~live:!live ~universe)
      | _ -> ());
      let mask = ref 0 in
      for p = 0 to n - 1 do
        if Prng.bool prng then mask := !mask lor (1 lsl p)
      done;
      step !mask;
      let now = E.outputs engine in
      for q = 0 to n - 1 do
        if (not flagged.(q)) && snap.(q) <> now.(q) then begin
          flagged.(q) <- true;
          add_violation ~epoch "churn-stability"
            (Printf.sprintf "node %d changed output with no churn in flight" q)
        end
      done
    done;
    (* A stability violation leaves damage behind (the whole point of the
       detector); quietly re-heal so later epochs measure their own churn,
       not the planted bug's wake. *)
    if not (E.all_returned engine) then heal ~epoch
  done;
  let latencies = List.rev !latencies in
  (if Obs.enabled obs && latencies <> [] then
     let s = Stats.summarize latencies in
     Obs.Gauge.set octx.og_latency_p99 s.Stats.p99);
  {
    session;
    steps = E.time engine;
    activations = !activations;
    epochs = !epochs;
    crashes = !crashes;
    recoveries = !recoveries;
    latencies;
    radii = List.rev !radii;
    violations = List.rev !violations;
  }

(* --- campaigns -------------------------------------------------------- *)

type report = {
  seed : int;
  cfg : config;
  sessions : int;
  results : result list;
  total_activations : int;
  total_crashes : int;
  total_recoveries : int;
  latency : Stats.summary option;
  radius : Stats.summary option;
  violations : (int * violation) list;
}

let campaign ?(jobs = 1) ?policy ?(obs = Obs.disabled) cfg ~seed ~sessions () =
  validate_config cfg;
  if sessions < 1 then invalid_arg "Churn: sessions must be positive";
  let policy =
    match policy with
    | Some p -> p
    | None -> if jobs <= 1 then Executor.Serial else Executor.Synchronous
  in
  let results =
    Obs.span obs
      ~args:
        [ ("seed", string_of_int seed); ("sessions", string_of_int sessions) ]
      "churn.campaign"
    @@ fun () ->
    Executor.with_executor ~obs ~policy ~jobs (fun exec ->
        Executor.map exec
          (fun i -> run ~obs cfg ~seed ~session:i)
          (Array.init sessions Fun.id))
  in
  (* merge by session index: the report is a pure function of
     (cfg, seed, sessions) whatever jobs or policy ran it *)
  let results = Array.to_list results in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let gather f = List.concat_map f results in
  let summarize = function [] -> None | l -> Some (Stats.summarize l) in
  {
    seed;
    cfg;
    sessions;
    results;
    total_activations = sum (fun r -> r.activations);
    total_crashes = sum (fun r -> r.crashes);
    total_recoveries = sum (fun r -> r.recoveries);
    latency = summarize (gather (fun r -> r.latencies));
    radius = summarize (gather (fun r -> r.radii));
    violations =
      gather (fun r -> List.map (fun v -> (r.session, v)) r.violations);
  }

let pp_summary_opt ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some s -> Stats.pp_summary ppf s

let pp_report ppf r =
  Format.fprintf ppf "@[<v>churn %a seed=%d sessions=%d@," pp_config r.cfg
    r.seed r.sessions;
  List.iter
    (fun s ->
      Format.fprintf ppf
        "session %d: steps=%d activations=%d epochs=%d crashes=%d \
         recoveries=%d violations=%d@,"
        s.session s.steps s.activations s.epochs s.crashes s.recoveries
        (List.length s.violations))
    r.results;
  Format.fprintf ppf
    "total: activations=%d crashes=%d recoveries=%d@,\
     recovery latency (activations): %a@,\
     repair radius: %a@,"
    r.total_activations r.total_crashes r.total_recoveries pp_summary_opt
    r.latency pp_summary_opt r.radius;
  (match r.violations with
  | [] -> Format.fprintf ppf "violations: none"
  | vs ->
      Format.fprintf ppf "violations: %d" (List.length vs);
      List.iter
        (fun (s, v) ->
          Format.fprintf ppf "@,  [s%d e%d %s] %s" s v.epoch v.detector
            v.message)
        vs);
  Format.fprintf ppf "@]"
