module Checkpoint = Asyncolor_resilience.Checkpoint

type t = {
  cfg : Session.config;
  seed : int;
  sessions : int;
  violations : (int * Session.violation) list;
}

(* Bump whenever [t] (or [Session.config]/[Session.violation]) changes
   shape — the container then rejects stale files cleanly instead of
   decoding garbage. *)
let version = 1

(* Discriminates churn traces from other users of the same container
   format (explorer checkpoints, fuzz traces): checked before the payload
   is trusted. *)
let fingerprint = "asyncolor-churn-trace"

let of_report (r : Session.report) =
  {
    cfg = r.Session.cfg;
    seed = r.Session.seed;
    sessions = r.Session.sessions;
    violations = r.Session.violations;
  }

let save ~path t = Checkpoint.save ~path ~version (fingerprint, t)

let load path =
  let tag, (t : t) = Checkpoint.load ~path ~version () in
  if tag <> fingerprint then
    raise
      (Checkpoint.Corrupt
         (Printf.sprintf "not a churn trace (payload tag %S)" tag));
  (* A trace file is attacker-controlled input to [replay]; reject
     structurally invalid payloads here with the container's own
     exception rather than failing deep inside the session engine. *)
  (match Session.validate_config t.cfg with
  | () -> ()
  | exception Invalid_argument msg -> raise (Checkpoint.Corrupt msg));
  if t.sessions < 1 then raise (Checkpoint.Corrupt "non-positive session count");
  List.iter
    (fun (s, _) ->
      if s < 0 || s >= t.sessions then
        raise
          (Checkpoint.Corrupt
             (Printf.sprintf "violation names session %d outside [0, %d)" s
                t.sessions)))
    t.violations;
  t

(* Re-run the campaign the trace came from and compare findings — true
   when every recorded violation reproduces byte-for-byte. *)
let replay ?(jobs = 1) ?policy ?obs (t : t) =
  let r =
    Session.campaign ?policy ?obs ~jobs t.cfg ~seed:t.seed ~sessions:t.sessions
      ()
  in
  (r, r.Session.violations = t.violations)

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@,seed=%d sessions=%d@,%a@]" Session.pp_config
    t.cfg t.seed t.sessions
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut
       (fun ppf (s, (v : Session.violation)) ->
         Format.fprintf ppf "violation[s%d e%d %s]: %s" s v.Session.epoch
           v.Session.detector v.Session.message))
    t.violations
