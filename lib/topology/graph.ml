type t = { adj : int array array }

let n t = Array.length t.adj

let make ~n:nodes ~edges =
  if nodes < 0 then invalid_arg "Graph.make: negative node count";
  let check v =
    if v < 0 || v >= nodes then
      invalid_arg (Printf.sprintf "Graph.make: node %d out of range [0,%d)" v nodes)
  in
  let module S = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let canon (u, v) =
    check u;
    check v;
    if u = v then invalid_arg "Graph.make: self-loop";
    if u < v then (u, v) else (v, u)
  in
  let edge_set = List.fold_left (fun s e -> S.add (canon e) s) S.empty edges in
  let buckets = Array.make nodes [] in
  S.iter
    (fun (u, v) ->
      buckets.(u) <- v :: buckets.(u);
      buckets.(v) <- u :: buckets.(v))
    edge_set;
  { adj = Array.map (fun l -> Array.of_list (List.sort compare l)) buckets }

let neighbours t v = t.adj.(v)

let degree t v = Array.length t.adj.(v)

let m t = Array.fold_left (fun acc a -> acc + Array.length a) 0 t.adj / 2

let max_degree t = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 t.adj

let mem_edge t u v = Array.exists (fun w -> w = v) t.adj.(u)

let fold_edges f t init =
  let acc = ref init in
  Array.iteri
    (fun u nbrs -> Array.iter (fun v -> if u < v then acc := f u v !acc) nbrs)
    t.adj;
  !acc

let edges t = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) t [])

let is_connected t =
  let nodes = n t in
  if nodes <= 1 then true
  else begin
    let seen = Array.make nodes false in
    let rec dfs v =
      if not seen.(v) then begin
        seen.(v) <- true;
        Array.iter dfs t.adj.(v)
      end
    in
    dfs 0;
    Array.for_all Fun.id seen
  end

let is_cycle t =
  n t >= 3 && Array.for_all (fun a -> Array.length a = 2) t.adj && is_connected t

let is_automorphism t perm =
  let nodes = n t in
  Array.length perm = nodes
  && (let seen = Array.make nodes false in
      Array.for_all
        (fun p ->
          p >= 0 && p < nodes && (not seen.(p))
          && begin
               seen.(p) <- true;
               true
             end)
        perm)
  && fold_edges (fun u v ok -> ok && mem_edge t perm.(u) perm.(v)) t true

let automorphisms t =
  let nodes = n t in
  if nodes = 0 then [ [||] ]
  else begin
    (* Index-dihedral candidates: rotations p -> p+k and reflections
       p -> r-p (mod n), 2n maps in all.  Filtering them through
       [is_automorphism] yields the full dihedral group on cycles and
       cliques (whose automorphism groups contain it), the compatible
       reflections on paths and stars, and the identity alone on graphs
       with no index symmetry — exactly the subgroup the explorer's
       quotient construction needs (any automorphism subgroup is sound;
       completeness of the reduction is a perf concern, not a
       correctness one). *)
    let rotation k = Array.init nodes (fun p -> (p + k) mod nodes) in
    let reflection r = Array.init nodes (fun p -> ((r - p) mod nodes + nodes) mod nodes) in
    let candidates =
      List.init nodes rotation @ List.init nodes reflection
    in
    let keep = ref [] in
    List.iter
      (fun perm ->
        if is_automorphism t perm && not (List.exists (fun q -> q = perm) !keep)
        then keep := perm :: !keep)
      candidates;
    List.rev !keep
  end

let equal a b = a.adj = b.adj

let pp ppf t =
  Format.fprintf ppf "@[<v>graph on %d nodes, %d edges" (n t) (m t);
  Array.iteri
    (fun v nbrs ->
      Format.fprintf ppf "@,  %d: %a" v
        Format.(pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf " ") pp_print_int)
        (Array.to_list nbrs))
    t.adj;
  Format.fprintf ppf "@]"
