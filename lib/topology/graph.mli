(** Finite simple undirected graphs.

    The communication topology of the state model: process [p] may read the
    registers of exactly its neighbours.  Nodes are [0 .. n-1].  Graphs are
    immutable after construction and validated to be simple (no loops, no
    parallel edges) and symmetric. *)

type t

val make : n:int -> edges:(int * int) list -> t
(** [make ~n ~edges] builds the graph on [n] nodes with the given undirected
    edges.  Duplicate edges and both orientations are tolerated and merged.
    @raise Invalid_argument on out-of-range endpoints, self-loops, or
    [n < 0]. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of (undirected) edges. *)

val neighbours : t -> int -> int array
(** [neighbours g v] is the sorted array of neighbours of [v].  The returned
    array is owned by the graph: callers must not mutate it. *)

val degree : t -> int -> int

val max_degree : t -> int
(** 0 for the empty graph. *)

val mem_edge : t -> int -> int -> bool

val edges : t -> (int * int) list
(** All edges, each as [(u, v)] with [u < v], sorted. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val is_connected : t -> bool
(** True on the empty and one-node graphs. *)

val is_cycle : t -> bool
(** [is_cycle g] holds iff [g] is a simple cycle on [n >= 3] nodes
    (connected and 2-regular). *)

val is_automorphism : t -> int array -> bool
(** [is_automorphism g perm] holds iff [perm] is a permutation of
    [0 .. n-1] mapping edges to edges.  On a finite simple graph a
    bijective edge-preserving vertex map is an automorphism. *)

val automorphisms : t -> int array list
(** The index-dihedral automorphisms of [g]: the candidates
    [p -> (p+k) mod n] (rotations) and [p -> (r-p) mod n] (reflections)
    filtered through {!is_automorphism} and deduplicated.  The identity is
    always the head of the list.  On cycles and cliques this is the full
    dihedral group of order [2n] (cliques have more automorphisms, but
    only the dihedral ones are enumerated — any subgroup is sound for
    quotienting); on paths and stars the compatible reflections survive;
    on graphs with no index symmetry the result is the identity alone. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Human-readable summary: node count and adjacency lists. *)
