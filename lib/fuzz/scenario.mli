(** Fuzzing scenarios: one fully explicit adversarial execution.

    A scenario is pure data — algorithm, optional planted mutation
    ({!Mutation}), topology, identifier assignment and an {e explicit}
    schedule (the activation set of every time step, crashes encoded as a
    process simply never being scheduled again, truncation as the schedule
    ending).  Making the schedule explicit rather than a closure is what
    buys byte-identical replay ({!Trace}) and structural minimisation
    ({!Shrink}): the whole execution is a value.

    Scenarios quantify over the same space as the paper's theorems
    (§2.2): arbitrary activation sets, crash faults, arbitrary wake-up
    delays — but sampled at sizes far beyond the exhaustive explorer's
    n ≤ 7 ceiling. *)

type algo = A1 | A2 | A2s | A3

type graph_spec = Cycle of int | Path of int | Complete of int | Star of int

type t = {
  algo : algo;
  mutation : string option;
      (** planted bug to run instead of the clean step function; [None]
          for the real algorithm.  See {!Mutation}. *)
  graph : graph_spec;
  idents : int array;
  schedule : int list list;
}

val algo_name : algo -> string
(** ["1"], ["2"], ["2s"], ["3"] — the CLI spelling. *)

val algo_of_string : string -> algo option

val graph_n : graph_spec -> int
val graph_name : graph_spec -> string
val build_graph : graph_spec -> Asyncolor_topology.Graph.t

val steps : t -> int
(** Schedule length. *)

val weight : t -> int
(** Total activation-set occupancy (steps + sum of set sizes). *)

val size : t -> int * int * int
(** [(n, steps, weight)] — the lexicographic cost {!Shrink} minimises. *)

val pp : Format.formatter -> t -> unit

val validate : t -> unit
(** @raise Invalid_argument if the identifier array does not match the
    node count, identifiers collide, or the schedule names a process
    outside [\[0, n)] — the checks a hostile trace file must pass before
    being replayed. *)

val generate : ?algos:algo list -> ?mutation:string -> ?max_n:int -> Asyncolor_util.Prng.t -> t
(** Draw a scenario: algorithm from [algos] (default all four), [n] in
    [\[3, max_n\]] (default 10), topology (cycle-heavy; Algorithms 2s/3
    stay on the cycle), identifier workload, then a schedule with random
    per-process wake-up delays, independent crash times, a per-scenario
    activation density and a random truncation horizon.  All draws happen
    in a fixed order, so the scenario is a pure function of the
    generator's state. *)

(** {1 Shrinking primitives} — each returns a structurally smaller
    scenario; {!Shrink} searches over them. *)

val drop_steps : t -> lo:int -> len:int -> t
(** Remove schedule steps [lo, lo+len). *)

val thin_step : t -> step:int -> drop:int -> t
(** Remove the [drop]-th element of activation set [step]. *)

val drop_node : t -> int -> t option
(** Remove one node of a cycle with [n > 3]: the cycle closes over the
    gap, identifiers and schedule indices are remapped.  [None] for other
    topologies or [n = 3]. *)
