(** Fuzzing scenarios: one fully explicit adversarial execution.

    A scenario is pure data — algorithm, optional planted mutation
    ({!Mutation}), topology, identifier assignment and an {e explicit}
    schedule (the activation set of every time step, crashes encoded as a
    process simply never being scheduled again, truncation as the schedule
    ending).  Making the schedule explicit rather than a closure is what
    buys byte-identical replay ({!Trace}) and structural minimisation
    ({!Shrink}): the whole execution is a value.

    Scenarios quantify over the same space as the paper's theorems
    (§2.2): arbitrary activation sets, crash faults, arbitrary wake-up
    delays — but sampled at sizes far beyond the exhaustive explorer's
    n ≤ 7 ceiling. *)

type algo = A1 | A2 | A2s | A3

type graph_spec = Cycle of int | Path of int | Complete of int | Star of int

(** One crash-recovery pair of the dynamic model, kept {e atomic} — a
    single value holds both the crash and its matching recovery, so no
    shrinking pass can separate them.  The node is unschedulable during
    [crash_at, recover_at) (its register stays frozen) and is reset to
    its initial state with [fresh_ident] immediately before the step at
    time [recover_at] (times are 1-based; [crash_at = recover_at] is an
    instantaneous crash-recover blip). *)
type churn_event = {
  node : int;
  crash_at : int;
  recover_at : int;
  fresh_ident : int;
}

type t = {
  algo : algo;
  mutation : string option;
      (** planted bug to run instead of the clean step function; [None]
          for the real algorithm.  See {!Mutation}. *)
  graph : graph_spec;
  idents : int array;
  schedule : int list list;
  churn : churn_event list;
      (** crash-recovery pairs, at most one per node; [[]] for a purely
          static execution *)
}

val algo_name : algo -> string
(** ["1"], ["2"], ["2s"], ["3"] — the CLI spelling. *)

val algo_of_string : string -> algo option

val graph_n : graph_spec -> int
val graph_name : graph_spec -> string
val build_graph : graph_spec -> Asyncolor_topology.Graph.t

val steps : t -> int
(** Schedule length. *)

val weight : t -> int
(** Total activation-set occupancy (steps + sum of set sizes) plus 2 per
    churn event, so dropping an event strictly shrinks the scenario. *)

val size : t -> int * int * int
(** [(n, steps, weight)] — the lexicographic cost {!Shrink} minimises. *)

val pp : Format.formatter -> t -> unit

val validate : t -> unit
(** @raise Invalid_argument if the identifier array does not match the
    node count, identifiers collide, the schedule names a process
    outside [\[0, n)], or a churn event is malformed (node out of range
    or churning twice, times violating
    [1 <= crash_at <= recover_at <= steps], a fresh identifier colliding
    with an initial identifier or with another event's) — the checks a
    hostile trace file must pass before being replayed. *)

val generate : ?algos:algo list -> ?mutation:string -> ?max_n:int -> Asyncolor_util.Prng.t -> t
(** Draw a scenario: algorithm from [algos] (default all four), [n] in
    [\[3, max_n\]] (default 10), topology (cycle-heavy; Algorithms 2s/3
    stay on the cycle), identifier workload, then a schedule with random
    per-process wake-up delays, independent crash times, a per-scenario
    activation density and a random truncation horizon.  Scenarios for a
    ["churn-"]-prefixed mutation always carry at least one churn event
    (that is where those bugs live); about a third of unmutated scenarios
    do; protocol-mutant scenarios never do, keeping their catch-rate
    calibration intact.  All draws happen in a fixed order, so the
    scenario is a pure function of the generator's state. *)

(** {1 Shrinking primitives} — each returns a structurally smaller
    scenario; {!Shrink} searches over them. *)

val drop_steps : t -> lo:int -> len:int -> t
(** Remove schedule steps [lo, lo+len).  Churn times are remapped across
    the removed window; a pair whose recovery no longer fits the shorter
    schedule is dropped {e whole} — a crash is never left behind without
    its recovery. *)

val thin_step : t -> step:int -> drop:int -> t
(** Remove the [drop]-th element of activation set [step]. *)

val drop_node : t -> int -> t option
(** Remove one node of a cycle with [n > 3]: the cycle closes over the
    gap, identifiers, schedule indices and churn events are remapped (the
    victim's own churn event disappears with it).  [None] for other
    topologies or [n = 3]. *)

val drop_churn_event : t -> int -> t option
(** Remove the [i]-th churn event (both its crash and its recovery —
    the pair is one value, so it cannot be split).  [None] when [i] is
    out of range. *)
