(* Delta-debugging minimisation of a failing scenario.

   Greedy descent over the structural shrinking primitives of {!Scenario},
   re-running the scenario after every candidate edit and keeping it only
   if the *same invariant* still fails.  Each accepted edit strictly
   decreases [Scenario.size] (node count, then steps, then activation-set
   occupancy), so the loop terminates; an exec budget additionally caps
   pathological searches.  Everything is deterministic: same input, same
   minimum. *)

type stats = { execs : int; kept : int }

let minimize ?(max_execs = 4_000) (sc : Scenario.t) ~invariant =
  let execs = ref 0 and kept = ref 0 in
  let budget_left () = !execs < max_execs in
  let still_fails candidate =
    budget_left ()
    &&
    (incr execs;
     match Exec.fails_invariant candidate ~invariant with
     | ok ->
         if ok then incr kept;
         ok
     | exception Invalid_argument _ -> false)
  in
  let current = ref sc in
  (* Pass 1 — drop whole schedule chunks, halving granularity (ddmin). *)
  let drop_step_chunks () =
    let progress = ref false in
    let chunk = ref (max 1 (Scenario.steps !current / 2)) in
    while !chunk >= 1 && budget_left () do
      let lo = ref 0 in
      while !lo < Scenario.steps !current && budget_left () do
        let len = min !chunk (Scenario.steps !current - !lo) in
        let candidate = Scenario.drop_steps !current ~lo:!lo ~len in
        if still_fails candidate then begin
          current := candidate;
          progress := true
          (* same [lo] now names the next chunk *)
        end
        else lo := !lo + len
      done;
      chunk := if !chunk = 1 then 0 else !chunk / 2
    done;
    !progress
  in
  (* Pass 2 — thin individual activation sets, one process at a time. *)
  let thin_sets () =
    let progress = ref false in
    let step = ref 0 in
    while !step < Scenario.steps !current && budget_left () do
      let set_len = List.length (List.nth (!current).Scenario.schedule !step) in
      let drop = ref (set_len - 1) in
      while !drop >= 0 && budget_left () do
        let candidate = Scenario.thin_step !current ~step:!step ~drop:!drop in
        if still_fails candidate then begin
          current := candidate;
          progress := true
        end;
        decr drop
      done;
      incr step
    done;
    !progress
  in
  (* Pass 1b — drop churn events, one at a time (each event is an atomic
     crash-recovery pair, so the two can never be separated). *)
  let drop_churn_events () =
    let progress = ref false in
    let i = ref (List.length (!current).Scenario.churn - 1) in
    while !i >= 0 && budget_left () do
      (match Scenario.drop_churn_event !current !i with
      | Some candidate when still_fails candidate ->
          current := candidate;
          progress := true
      | _ -> ());
      decr i
    done;
    !progress
  in
  (* Pass 3 — shrink the instance itself (cycle topologies). *)
  let drop_nodes () =
    let progress = ref false in
    let continue_ = ref true in
    while !continue_ && budget_left () do
      continue_ := false;
      let n = Scenario.graph_n (!current).Scenario.graph in
      let victim = ref (n - 1) in
      while !victim >= 0 && not !continue_ && budget_left () do
        (match Scenario.drop_node !current !victim with
        | Some candidate when still_fails candidate ->
            current := candidate;
            progress := true;
            continue_ := true
        | _ -> ());
        decr victim
      done
    done;
    !progress
  in
  let rec fixpoint () =
    let p1 = drop_step_chunks () in
    let p1b = drop_churn_events () in
    let p2 = thin_sets () in
    let p3 = drop_nodes () in
    if (p1 || p1b || p2 || p3) && budget_left () then fixpoint ()
  in
  fixpoint ();
  (!current, { execs = !execs; kept = !kept })
