module Prng = Asyncolor_util.Prng
module Builders = Asyncolor_topology.Builders
module Graph = Asyncolor_topology.Graph
module Idents = Asyncolor_workload.Idents
module Adversary = Asyncolor_kernel.Adversary

type algo = A1 | A2 | A2s | A3

type graph_spec = Cycle of int | Path of int | Complete of int | Star of int

(* One crash-recovery pair, kept atomic so shrinking can never separate a
   recovery from its crash: the node is unschedulable during
   [crash_at, recover_at) and is reset with [fresh_ident] just before the
   step at time [recover_at]. *)
type churn_event = {
  node : int;
  crash_at : int;
  recover_at : int;
  fresh_ident : int;
}

type t = {
  algo : algo;
  mutation : string option;
  graph : graph_spec;
  idents : int array;
  schedule : int list list;
  churn : churn_event list;
}

let algo_name = function A1 -> "1" | A2 -> "2" | A2s -> "2s" | A3 -> "3"

let algo_of_string = function
  | "1" -> Some A1
  | "2" -> Some A2
  | "2s" -> Some A2s
  | "3" -> Some A3
  | _ -> None

let graph_n = function Cycle n | Path n | Complete n | Star n -> n

let graph_name = function
  | Cycle n -> Printf.sprintf "cycle:%d" n
  | Path n -> Printf.sprintf "path:%d" n
  | Complete n -> Printf.sprintf "complete:%d" n
  | Star n -> Printf.sprintf "star:%d" n

let build_graph = function
  | Cycle n -> Builders.cycle n
  | Path n -> Builders.path n
  | Complete n -> Builders.complete n
  | Star n -> Builders.star n

let steps t = List.length t.schedule

let weight t =
  List.fold_left (fun acc set -> acc + 1 + List.length set) 0 t.schedule
  (* each churn event weighs 2 (its crash and its recovery), so dropping
     one strictly decreases the cost the shrinker minimises *)
  + (2 * List.length t.churn)

(* Lexicographic cost the shrinker minimises: fewer nodes, then fewer
   steps, then thinner activation sets / fewer churn events. *)
let size t = (graph_n t.graph, steps t, weight t)

let pp_churn ppf churn =
  Format.fprintf ppf "%s"
    (String.concat ","
       (List.map
          (fun ev ->
            Printf.sprintf "n%d@%d-%d>%d" ev.node ev.crash_at ev.recover_at
              ev.fresh_ident)
          churn))

let pp ppf t =
  Format.fprintf ppf "@[<v>algo=%s%s graph=%s@,idents=%s@,schedule=%s%a@]"
    (algo_name t.algo)
    (match t.mutation with None -> "" | Some m -> "!" ^ m)
    (graph_name t.graph)
    (String.concat "," (Array.to_list (Array.map string_of_int t.idents)))
    (Adversary.to_string t.schedule)
    (fun ppf -> function
      | [] -> ()
      | churn -> Format.fprintf ppf "@,churn=%a" pp_churn churn)
    t.churn

let validate t =
  let n = graph_n t.graph in
  if Array.length t.idents <> n then
    invalid_arg "Scenario.validate: idents length must match node count";
  if not (Idents.is_injective t.idents) then
    invalid_arg "Scenario.validate: identifiers must be pairwise distinct";
  List.iter
    (List.iter (fun p ->
         if p < 0 || p >= n then
           invalid_arg
             (Printf.sprintf
                "Scenario.validate: schedule names process %d outside [0, %d)" p
                n)))
    t.schedule;
  let horizon = steps t in
  let seen_nodes = Hashtbl.create 8 and seen_fresh = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      if ev.node < 0 || ev.node >= n then
        invalid_arg
          (Printf.sprintf
             "Scenario.validate: churn names process %d outside [0, %d)"
             ev.node n);
      if Hashtbl.mem seen_nodes ev.node then
        invalid_arg
          (Printf.sprintf "Scenario.validate: process %d churns twice" ev.node);
      Hashtbl.add seen_nodes ev.node ();
      if not (1 <= ev.crash_at && ev.crash_at <= ev.recover_at && ev.recover_at <= horizon)
      then
        invalid_arg
          (Printf.sprintf
             "Scenario.validate: churn times %d-%d outside 1 <= crash <= \
              recover <= %d"
             ev.crash_at ev.recover_at horizon);
      if Array.exists (fun x -> x = ev.fresh_ident) t.idents then
        invalid_arg
          (Printf.sprintf
             "Scenario.validate: fresh identifier %d collides with an initial \
              identifier"
             ev.fresh_ident);
      if Hashtbl.mem seen_fresh ev.fresh_ident then
        invalid_arg
          (Printf.sprintf
             "Scenario.validate: fresh identifier %d used by two churn events"
             ev.fresh_ident);
      Hashtbl.add seen_fresh ev.fresh_ident ())
    t.churn

(* --- generation ------------------------------------------------------ *)

(* All draws happen in a fixed, explicit order (no [Array.init] /
   [List.init], whose evaluation order is unspecified), so a scenario is a
   pure function of the generator's state: equal seeds give equal
   scenarios, which is what makes campaigns replayable. *)

let gen_idents prng n =
  match Prng.int prng 5 with
  | 0 -> Idents.increasing n
  | 1 -> Idents.decreasing n
  | 2 -> Idents.zigzag n
  | 3 -> Idents.random_permutation prng n
  | _ -> Idents.random_sparse prng ~n ~universe:(max 64 (n * n))

let gen_graph prng algo n =
  match algo with
  | A2s | A3 -> Cycle n
  (* Algorithms 1 and 2 run unchanged on general graphs (paper §5 /
     Appendix A); mix other topologies in. *)
  | A1 | A2 -> (
      match Prng.int prng 10 with
      | 0 | 1 -> Path n
      | 2 -> Complete (min n 6)
      | 3 -> Star (max 3 (min n 6))
      | _ -> Cycle n)

let generate ?(algos = [ A1; A2; A2s; A3 ]) ?mutation ?(max_n = 10) prng =
  if algos = [] then invalid_arg "Scenario.generate: empty algorithm list";
  let algo = List.nth algos (Prng.int prng (List.length algos)) in
  let n0 = Prng.int_in prng 3 (max 3 max_n) in
  let graph = gen_graph prng algo n0 in
  let n = graph_n graph in
  let idents = gen_idents prng n in
  (* Schedule shape: per-process wake-up delays, independent crash times,
     a per-scenario activation density, and a random truncation horizon.
     The horizon sometimes exceeds the wait-freedom bounds by a wide
     margin so the activation-bound detector has room to fire. *)
  let bound_estimate = (3 * n) + 10 in
  let horizon = Prng.int_in prng 1 (4 * bound_estimate) in
  let p_act = 0.15 +. Prng.float prng 0.85 in
  let wake = Array.make n 0 in
  for p = 0 to n - 1 do
    wake.(p) <- (if Prng.bool prng then 0 else Prng.int prng (n + 3))
  done;
  let crash_rate = Prng.float prng 0.4 in
  let crash = Array.make n max_int in
  for p = 0 to n - 1 do
    if Prng.float prng 1.0 < crash_rate then
      crash.(p) <- Prng.int_in prng 1 horizon
  done;
  let schedule = ref [] in
  for time = 1 to horizon do
    let eligible = ref [] in
    for p = n - 1 downto 0 do
      if time > wake.(p) && time < crash.(p) then eligible := p :: !eligible
    done;
    let set = List.filter (fun _ -> Prng.float prng 1.0 < p_act) !eligible in
    let set =
      match (set, !eligible) with
      | [], _ :: _ ->
          [ List.nth !eligible (Prng.int prng (List.length !eligible)) ]
      | s, _ -> s
    in
    schedule := set :: !schedule
  done;
  (* Churn (crash-recovery pairs): always at least one for the churn-*
     mutants, whose planted bugs live in the recovery machinery; a
     minority of clean scenarios; never for protocol mutants, whose
     catch-rate calibration predates churn. *)
  let churn_mutant =
    match mutation with
    | Some m -> String.length m >= 6 && String.sub m 0 6 = "churn-"
    | None -> false
  in
  let with_churn =
    churn_mutant || (mutation = None && Prng.float prng 1.0 < 0.35)
  in
  let churn =
    if not with_churn then []
    else begin
      let count = 1 + Prng.int prng (min 3 n) in
      let taken = Hashtbl.create 8 in
      Array.iter (fun x -> Hashtbl.replace taken x ()) idents;
      let events = ref [] in
      for _ = 1 to count do
        let node = Prng.int prng n in
        if not (List.exists (fun ev -> ev.node = node) !events) then begin
          let crash_at = Prng.int_in prng 1 horizon in
          let recover_at = Prng.int_in prng crash_at horizon in
          (* fresh identifier: sometimes the smallest unused (recycling
             pressure on ident-sensitive logic), sometimes past the top *)
          let fresh_ident =
            if Prng.bool prng then begin
              let c = ref 0 in
              while Hashtbl.mem taken !c do
                incr c
              done;
              !c
            end
            else begin
              let top = ref 0 in
              Hashtbl.iter (fun x () -> if x > !top then top := x) taken;
              !top + 1
            end
          in
          Hashtbl.replace taken fresh_ident ();
          events := { node; crash_at; recover_at; fresh_ident } :: !events
        end
      done;
      List.rev !events
    end
  in
  { algo; mutation; graph; idents; schedule = List.rev !schedule; churn }

(* --- shrinking primitives -------------------------------------------- *)

let drop_steps t ~lo ~len =
  let schedule =
    List.filteri (fun i _ -> i < lo || i >= lo + len) t.schedule
  in
  (* Remap churn times (1-based) across the removed window [lo, lo+len)
     (0-based): a time inside the hole snaps to the first surviving step
     after it.  A pair whose recovery no longer fits the shorter schedule
     is dropped whole — crash and recovery always travel together. *)
  let remap time = if time <= lo then time else max (lo + 1) (time - len) in
  let horizon = List.length schedule in
  let churn =
    List.filter_map
      (fun ev ->
        let crash_at = remap ev.crash_at and recover_at = remap ev.recover_at in
        if recover_at <= horizon then Some { ev with crash_at; recover_at }
        else None)
      t.churn
  in
  { t with schedule; churn }

let thin_step t ~step ~drop =
  let schedule =
    List.mapi
      (fun i set ->
        if i <> step then set else List.filteri (fun j _ -> j <> drop) set)
      t.schedule
  in
  { t with schedule }

let drop_node t victim =
  match t.graph with
  | Cycle n when n > 3 ->
      let idents =
        Array.init (n - 1) (fun p ->
            if p < victim then t.idents.(p) else t.idents.(p + 1))
      in
      let remap p = if p < victim then Some p else if p = victim then None else Some (p - 1) in
      let schedule =
        List.map (fun set -> List.filter_map remap set) t.schedule
      in
      let churn =
        List.filter_map
          (fun ev ->
            match remap ev.node with
            | None -> None
            | Some node -> Some { ev with node })
          t.churn
      in
      Some { t with graph = Cycle (n - 1); idents; schedule; churn }
  | _ -> None

let drop_churn_event t i =
  if i < 0 || i >= List.length t.churn then None
  else Some { t with churn = List.filteri (fun j _ -> j <> i) t.churn }
