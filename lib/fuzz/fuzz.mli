(** Campaign driver: seed-deterministic fault-injection fuzzing.

    A campaign of [execs] executions is a pure function of its [seed]:
    exec [i] derives its own PRNG stream from [(seed, i)] alone
    ({!exec_seed}), generates a {!Scenario.t}, runs it through the
    invariant suite ({!Exec.run}) and, on a violation, minimises it
    ({!Shrink.minimize}) and records both raw and shrunk traces.  Because
    streams are per-exec, the report — findings included — is identical
    whatever [jobs] is and however the batch boundaries fall; parallelism
    over {!Asyncolor_util.Executor} changes wall clock only, under every
    execution policy.

    [budget] / [stop] are polled between batches: a tripped budget or a
    delivered signal ends the campaign early with [complete = false] and
    everything found so far already persisted to [corpus_dir]. *)

type finding = {
  exec : int;  (** campaign exec index that produced the violation *)
  invariant : string;  (** first violated invariant (shrinking target) *)
  trace : Trace.t;  (** the original failing execution *)
  shrunk : Trace.t;  (** minimised counterexample for the same invariant *)
  shrink_stats : Shrink.stats;
}

type report = {
  seed : int;
  execs_requested : int;
  execs_done : int;
  complete : bool;  (** false iff budget/stop truncated the campaign *)
  findings : finding list;  (** in exec order *)
}

val exec_seed : seed:int -> int -> int
(** PRNG seed of exec [i]: pure in [(seed, i)], independent of [jobs]
    and batching. *)

val run_one :
  ?obs:Asyncolor_obs.Obs.t ->
  ?algos:Scenario.algo list ->
  ?mutation:string ->
  ?max_n:int ->
  seed:int ->
  int ->
  finding option
(** Generate, execute and (on violation) shrink exec [i] of the campaign
    with seed [seed].  [None] when every invariant holds. *)

val campaign :
  ?jobs:int ->
  ?policy:Asyncolor_util.Executor.policy ->
  ?budget:Asyncolor_resilience.Budget.t ->
  ?stop:(unit -> bool) ->
  ?corpus_dir:string ->
  ?algos:Scenario.algo list ->
  ?mutation:string ->
  ?max_n:int ->
  ?chaos:Asyncolor_resilience.Chaos.t ->
  ?obs:Asyncolor_obs.Obs.t ->
  seed:int ->
  execs:int ->
  unit ->
  report
(** Run the campaign.  Findings are appended to [corpus_dir] as
    [t%04d.trace] (raw) and [t%04d.min.trace] (shrunk) keyed by exec
    index, as they are found — an interrupted campaign keeps its corpus.

    [policy] (default: [Serial] when [jobs <= 1], else [Synchronous])
    selects the executor policy the batches run under; an
    [Asynchronous {max_active; _}] policy bounds the in-flight execs per
    batch instead of queueing the whole batch at once.  The report is
    byte-identical across policies.  [chaos] (default disabled) arms the
    executor's fault injector: worker domains may be crashed at sites
    [exec.worker-N] and are recovered by the watchdog — the report stays
    byte-identical under any injected crash schedule.

    [obs] (default {!Asyncolor_obs.Obs.disabled}) traces the campaign
    out-of-band (the report stays a pure function of [seed]): a
    ["fuzz.campaign"] span containing one ["fuzz.batch"] span per
    executor batch, a ["fuzz.shrink"] span per finding, and the
    executor's per-domain lanes.  Counters: ["fuzz.execs"] (scenarios
    generated and executed),
    ["fuzz.findings"], ["fuzz.shrink_execs"] (candidate re-executions
    spent minimising), ["fuzz.detector_ns"] (cumulative nanoseconds in
    the invariant suite, across all domains) and the
    ["fuzz.execs_per_sec"] gauge (whole-campaign throughput; meaningful
    on the monotonic clock only). *)

val trace_paths : dir:string -> int -> string * string
(** [(raw, shrunk)] corpus paths for an exec index. *)

val replay : Trace.t -> Exec.outcome * bool
(** Re-execute a trace's scenario; the boolean is true iff the observed
    violations match the ones recorded in the trace. *)
