(** Replayable execution traces, persisted in the resilience layer's
    versioned, checksummed, atomically-written container
    ({!Asyncolor_resilience.Checkpoint}).

    A trace is a {!Scenario.t} (the whole execution as data) plus its
    provenance — the campaign seed and exec index that produced it — and
    the violations observed when it was recorded.  Because the scenario
    is explicit, replaying a loaded trace re-executes byte-identically:
    {!Exec.run} on [t.scenario] must reproduce [t.violations] exactly,
    which the [replay] CLI subcommand and [test/test_fuzz.ml] enforce. *)

type t = {
  scenario : Scenario.t;
  seed : int;  (** campaign seed ([-1] when hand-built) *)
  exec : int;  (** exec index within the campaign ([-1] when hand-built) *)
  violations : (string * string) list;  (** (invariant, message) at record time *)
}

val version : int
(** Payload schema version handed to the checkpoint container. *)

val save : path:string -> t -> unit
(** Atomic write (tmp + fsync + rename), MD5-checksummed. *)

val load : string -> t
(** Validates container magic/version/digest, the fuzz-trace fingerprint
    and the scenario's structural invariants.
    @raise Asyncolor_resilience.Checkpoint.Corrupt on any failure. *)

val pp : Format.formatter -> t -> unit
