module Step = Asyncolor_kernel.Step

type info = { name : string; base : Scenario.algo; describe : string }

let all =
  [
    {
      name = "skip-read";
      base = Scenario.A2;
      describe = "Algorithm 2 reads its first neighbour's register as ⊥";
    };
    {
      name = "guard-always";
      base = Scenario.A2;
      describe = "Algorithm 2 returns its a-candidate unconditionally";
    };
    {
      name = "guard-never";
      base = Scenario.A2;
      describe = "Algorithm 2's stopping guard never fires";
    };
    {
      name = "palette-off-by-one";
      base = Scenario.A1;
      describe = "Algorithm 1 returns (a+1, b) instead of (a, b)";
    };
    (* The churn- mutants plant their bug in the recovery machinery, not
       the protocol: {!Exec} runs the clean step function and corrupts the
       reset instead. *)
    {
      name = "churn-zombie";
      base = Scenario.A2;
      describe = "recovery leaves the crashed incarnation in place (no reset)";
    };
    {
      name = "churn-collide";
      base = Scenario.A2;
      describe = "recovery installs an identifier a live process already holds";
    };
  ]

let names = List.map (fun i -> i.name) all
let find name = List.find_opt (fun i -> i.name = name) all

(* Churn mutants corrupt how {!Exec} applies recovery events; the protocol
   itself stays clean.  Recognised by name so {!Scenario.generate} (which
   cannot depend on this module) can use the same convention. *)
let is_churn name = String.length name >= 6 && String.sub name 0 6 = "churn-"

(* Each mutant is the clean protocol with exactly one planted bug in its
   step function, and a distinguishing [name] so traces and reports show
   what actually ran. *)

module A2 = Asyncolor.Algorithm2.P

module Skip_read = struct
  include A2

  let name = "algorithm2!skip-read"

  let transition s ~view =
    let view = Array.copy view in
    if Array.length view > 0 then view.(0) <- None;
    A2.transition s ~view
end

module Guard_always = struct
  include A2

  let name = "algorithm2!guard-always"
  let transition s ~view:_ = Step.Return s.Asyncolor.Algorithm2.a
end

module Guard_never = struct
  include A2

  let name = "algorithm2!guard-never"

  let transition s ~view =
    match A2.transition s ~view with
    | Step.Return _ -> Step.Continue s
    | c -> c
end

module A1 = Asyncolor.Algorithm1.P

module Palette_off_by_one = struct
  include A1

  let name = "algorithm1!palette-off-by-one"

  let transition s ~view =
    match A1.transition s ~view with
    | Step.Return (a, b) -> Step.Return (a + 1, b)
    | c -> c
end

type a1_protocol =
  (module Asyncolor_kernel.Protocol.S
     with type state = Asyncolor.Algorithm1.fields
      and type register = Asyncolor.Algorithm1.fields
      and type output = Asyncolor.Color.pair)

type a2_protocol =
  (module Asyncolor_kernel.Protocol.S
     with type state = Asyncolor.Algorithm2.fields
      and type register = Asyncolor.Algorithm2.fields
      and type output = int)

let a1_protocol name : a1_protocol option =
  match name with
  | "palette-off-by-one" -> Some (module Palette_off_by_one)
  | _ -> None

let a2_protocol name : a2_protocol option =
  match name with
  | "skip-read" -> Some (module Skip_read)
  | "guard-always" -> Some (module Guard_always)
  | "guard-never" -> Some (module Guard_never)
  | _ -> None
