(** Counterexample minimisation by delta debugging.

    Given a scenario that violates an invariant, search the structural
    shrinking primitives of {!Scenario} — dropping schedule chunks
    (ddmin-style halving), thinning activation sets one process at a
    time, and removing cycle nodes — keeping an edit only if the {e same}
    invariant still fails, until no single edit makes progress.

    Deterministic (same failing scenario, same minimum) and terminating:
    every accepted edit strictly decreases {!Scenario.size}, and
    [max_execs] caps the total number of re-executions (the returned
    scenario is still a valid, failing one when the budget runs out —
    just possibly not minimal). *)

type stats = {
  execs : int;  (** candidate re-executions performed *)
  kept : int;  (** edits accepted *)
}

val minimize :
  ?max_execs:int -> Scenario.t -> invariant:string -> Scenario.t * stats
(** [minimize sc ~invariant] requires [sc] to currently fail [invariant];
    returns a (weakly) smaller scenario that still fails it.  Default
    [max_execs] is 4000. *)
