(** Mutation testing: protocols with one planted, known bug each.

    The fuzzer's invariant suite ({!Exec}) is only trustworthy if it
    demonstrably {e fires}.  Each mutant here is a clean protocol with a
    single bug injected into its step function — the classes named in the
    literature on testing detectors: skipping a neighbour read, an
    off-by-one in the palette, breaking the stopping guard in either
    direction.  A campaign run against a mutant
    ({!Fuzz.campaign} [~mutation:name]) must produce a finding within a
    bounded exec budget; [test/test_fuzz.ml] pins that down per mutant,
    and the shrunk counterexample must replay to the same violation.

    The ["churn-"]-prefixed mutants are different in kind: their bug
    lives in the {e recovery machinery}, not the protocol.  {!Exec} runs
    the clean step function for them and corrupts how churn events are
    applied instead (a skipped reset, a colliding identifier), which is
    what the churn detectors must catch. *)

type info = {
  name : string;  (** CLI spelling, e.g. ["skip-read"] *)
  base : Scenario.algo;  (** the algorithm the bug is planted in *)
  describe : string;
}

val all : info list
val names : string list
val find : string -> info option

val is_churn : string -> bool
(** Does the mutation name denote a recovery-machinery bug (the
    ["churn-"] prefix convention, shared with {!Scenario.generate})? *)

(** Planted protocols (exported for direct use in tests). *)

module Skip_read : module type of Asyncolor.Algorithm2.P
module Guard_always : module type of Asyncolor.Algorithm2.P
module Guard_never : module type of Asyncolor.Algorithm2.P
module Palette_off_by_one : module type of Asyncolor.Algorithm1.P

type a1_protocol =
  (module Asyncolor_kernel.Protocol.S
     with type state = Asyncolor.Algorithm1.fields
      and type register = Asyncolor.Algorithm1.fields
      and type output = Asyncolor.Color.pair)

type a2_protocol =
  (module Asyncolor_kernel.Protocol.S
     with type state = Asyncolor.Algorithm2.fields
      and type register = Asyncolor.Algorithm2.fields
      and type output = int)

val a1_protocol : string -> a1_protocol option
(** The Algorithm 1 mutant of that name, if any. *)

val a2_protocol : string -> a2_protocol option
(** The Algorithm 2 mutant of that name, if any. *)
