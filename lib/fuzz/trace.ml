module Checkpoint = Asyncolor_resilience.Checkpoint

type t = {
  scenario : Scenario.t;
  seed : int;
  exec : int;
  violations : (string * string) list;
}

(* Bump whenever [t] (or [Scenario.t]) changes shape — the container then
   rejects stale files cleanly instead of decoding garbage.
   v2: [Scenario.t] gained the [churn] field. *)
let version = 2

(* Discriminates fuzz traces from other users of the same container format
   (the explorer's checkpoints): checked before the payload is trusted. *)
let fingerprint = "asyncolor-fuzz-trace"

let save ~path t = Checkpoint.save ~path ~version (fingerprint, t)

let load path =
  let tag, (t : t) = Checkpoint.load ~path ~version () in
  if tag <> fingerprint then
    raise
      (Checkpoint.Corrupt
         (Printf.sprintf "not a fuzz trace (payload tag %S)" tag));
  (* A trace file is attacker-controlled input to [replay]; reject
     structurally invalid scenarios here with the container's own
     exception rather than failing deep inside the engine. *)
  (match Scenario.validate t.scenario with
  | () -> ()
  | exception Invalid_argument msg -> raise (Checkpoint.Corrupt msg));
  t

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@,seed=%d exec=%d@,%a@]" Scenario.pp t.scenario
    t.seed t.exec
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (i, m) ->
         Format.fprintf ppf "violation[%s]: %s" i m))
    t.violations
