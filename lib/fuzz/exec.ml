module Graph = Asyncolor_topology.Graph
module Adversary = Asyncolor_kernel.Adversary
module Status = Asyncolor_kernel.Status
module Checker = Asyncolor.Checker
module Color = Asyncolor.Color

type violation = { invariant : string; message : string }

type event = {
  time : int;
  activated : int list;
  returned : (int * string) list;
  resets : (int * int) list;
}

type outcome = {
  violations : violation list;
  events : event list;
  outputs : string option array;
  activations : int array;
  steps : int;
  returned : int;
}

let invariant_names =
  [
    "proper";
    "palette";
    "activation-bound";
    "mask-agreement";
    "churn-reinit";
    "churn-fresh-ident";
  ]

(* A protocol plus everything the invariant suite needs to judge a run of
   it: output equality and rendering, the palette claim (graph-dependent)
   and the wait-freedom activation bound (cycle-only). *)
module type ALG = sig
  include Asyncolor_kernel.Protocol.S

  val equal_output : output -> output -> bool
  val show_output : output -> string
  val palette : graph:Graph.t -> on_cycle:bool -> (output -> bool) option
  val bound : n:int -> on_cycle:bool -> int option
end

let a1_alg (p : Mutation.a1_protocol) : (module ALG) =
  let (module P) = p in
  (module struct
    include P

    let equal_output (a : output) (b : output) = a = b
    let show_output (a, b) = Printf.sprintf "(%d,%d)" a b

    let palette ~graph ~on_cycle =
      (* Theorem 3.1 on the cycle (a + b <= 2); Appendix A's Algorithm 4
         palette (a + b <= Δ) elsewhere. *)
      let budget = if on_cycle then 2 else Graph.max_degree graph in
      Some (Color.pair_in_palette ~budget)

    let bound ~n ~on_cycle =
      if on_cycle then Some (Asyncolor.Algorithm1.activation_bound n) else None
  end)

(* Generic builder for the int-output protocols (Algorithms 2, 2s, 3 and
   the Algorithm-2 mutants); palette claim and activation bound are the
   per-algorithm parameters. *)
let int_alg (type s r)
    (module P : Asyncolor_kernel.Protocol.S
      with type state = s
       and type register = r
       and type output = int)
    ~(palette : graph:Graph.t -> on_cycle:bool -> (int -> bool) option)
    ~(bound : n:int -> on_cycle:bool -> int option) : (module ALG) =
  (module struct
    include P

    let equal_output = Int.equal
    let show_output = string_of_int
    let palette = palette
    let bound = bound
  end)

let a2_alg (p : Mutation.a2_protocol) : (module ALG) =
  let (module P) = p in
  int_alg
    (module P)
    (* 5 colours on the cycle (Δ = 2), the 2Δ+1 general palette beyond. *)
    ~palette:(fun ~graph ~on_cycle:_ ->
      Some
        (Asyncolor.Algorithm2.in_general_palette
           ~max_degree:(Graph.max_degree graph)))
    ~bound:(fun ~n ~on_cycle ->
      if on_cycle then Some (Asyncolor.Algorithm2.activation_bound n) else None)

let a2s_alg () : (module ALG) =
  (* Algorithm 2s is not wait-free (the symmetric lasso of E13), so no
     activation bound applies; palette is the 7-colour one, cycle only. *)
  int_alg
    (module Asyncolor.Algorithm2s.P)
    ~palette:(fun ~graph:_ ~on_cycle ->
      if on_cycle then Some Asyncolor.Algorithm2s.in_palette else None)
    ~bound:(fun ~n:_ ~on_cycle:_ -> None)

let a3_alg () : (module ALG) =
  int_alg
    (module Asyncolor.Algorithm3.P)
    ~palette:(fun ~graph:_ ~on_cycle:_ -> Some Color.in_five)
    ~bound:(fun ~n ~on_cycle ->
      if on_cycle then Some (Asyncolor.Algorithm3.activation_bound n) else None)

let resolve (sc : Scenario.t) : (module ALG) =
  let bad_mutation m =
    invalid_arg
      (Printf.sprintf "Exec.run: mutation %S does not apply to algorithm %s" m
         (Scenario.algo_name sc.algo))
  in
  match (sc.algo, sc.mutation) with
  | Scenario.A1, None -> a1_alg (module Asyncolor.Algorithm1.P)
  | Scenario.A1, Some m -> (
      match Mutation.a1_protocol m with
      | Some p -> a1_alg p
      | None -> bad_mutation m)
  | Scenario.A2, None -> a2_alg (module Asyncolor.Algorithm2.P)
  | Scenario.A2, Some m when Mutation.is_churn m -> (
      (* churn mutants corrupt the recovery machinery in [drive], not the
         protocol: the clean step function runs *)
      match Mutation.find m with
      | Some _ -> a2_alg (module Asyncolor.Algorithm2.P)
      | None -> bad_mutation m)
  | Scenario.A2, Some m -> (
      match Mutation.a2_protocol m with
      | Some p -> a2_alg p
      | None -> bad_mutation m)
  | Scenario.A2s, None -> a2s_alg ()
  | Scenario.A3, None -> a3_alg ()
  | (Scenario.A2s | Scenario.A3), Some m -> bad_mutation m

let mask_of_set set = List.fold_left (fun m p -> m lor (1 lsl p)) 0 set

let run_alg (module A : ALG) (sc : Scenario.t) : outcome =
  let module E = Asyncolor_kernel.Engine.Make (A) in
  let graph = Scenario.build_graph sc.graph in
  let n = Graph.n graph in
  let on_cycle = match sc.graph with Scenario.Cycle _ -> true | _ -> false in
  let violations = ref [] in
  let add invariant message = violations := { invariant; message } :: !violations in
  let churn = sc.Scenario.churn in
  let sched = Array.of_list sc.schedule in
  let len = Array.length sched in
  let down time p =
    List.exists
      (fun (ev : Scenario.churn_event) ->
        ev.Scenario.node = p
        && time >= ev.Scenario.crash_at
        && time < ev.Scenario.recover_at)
      churn
  in
  (* The churn- mutants plant their bug here, in how a recovery event is
     applied; every other mutation leaves the recovery machinery clean. *)
  let apply_reset engine (ev : Scenario.churn_event) =
    match sc.mutation with
    | Some "churn-zombie" -> ()
    | Some "churn-collide" ->
        E.reset engine ev.Scenario.node
          ~ident:(E.ident engine ((ev.Scenario.node + 1) mod n))
    | _ -> E.reset engine ev.Scenario.node ~ident:ev.Scenario.fresh_ident
  in
  (* Replicates [E.run] over the explicit schedule, with churn applied:
     recoveries fire just before their step, crashed processes are
     filtered from activation sets, and the early stop waits for pending
     recoveries (a reset un-returns a process).  With [churn = []] this
     is step-for-step the old [E.run (Adversary.finite sc.schedule)]. *)
  let drive ?(on_reset = fun _ -> ()) engine ~activate =
    let stop = ref false in
    while not !stop do
      let t = E.time engine + 1 in
      if t > len then stop := true
      else if
        E.all_returned engine
        && not
             (List.exists
                (fun (ev : Scenario.churn_event) -> ev.Scenario.recover_at >= t)
                churn)
      then stop := true
      else begin
        List.iter
          (fun (ev : Scenario.churn_event) ->
            if ev.Scenario.recover_at = t then begin
              apply_reset engine ev;
              on_reset ev
            end)
          churn;
        activate (List.filter (fun p -> not (down t p)) sched.(t - 1))
      end
    done
  in
  let engine = E.create ~record_trace:true graph ~idents:sc.idents in
  (* 5-6: the recovery invariants, audited at every recovery event of the
     primary run *)
  let on_reset (ev : Scenario.churn_event) =
    let p = ev.Scenario.node in
    (match E.status engine p with
    | Status.Asleep when E.public engine p = None && E.activations engine p = 0
      ->
        ()
    | st ->
        add "churn-reinit"
          (Printf.sprintf
             "process %d not re-initialised on recovery (status %s, %d \
              activations)"
             p
             (Format.asprintf "%a" (Status.pp A.pp_output) st)
             (E.activations engine p)));
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if E.ident engine u = E.ident engine v then
          add "churn-fresh-ident"
            (Printf.sprintf "processes %d and %d both hold identifier %d" u v
               (E.ident engine u))
      done
    done
  in
  drive ~on_reset engine ~activate:(fun set -> E.activate engine set);
  let run_steps = E.time engine in
  let run_outputs = E.outputs engine in
  let run_activations = Array.init n (fun p -> E.activations engine p) in
  (* 1-2: proper colouring of the returned subgraph + palette membership *)
  let in_palette =
    match A.palette ~graph ~on_cycle with Some f -> f | None -> fun _ -> true
  in
  let verdict =
    Checker.check ~equal:A.equal_output ~in_palette graph run_outputs
  in
  let show_out p =
    match run_outputs.(p) with Some o -> A.show_output o | None -> "⊥"
  in
  if not verdict.Checker.proper then
    add "proper"
      (Printf.sprintf "improper colouring: %s"
         (String.concat ", "
            (List.map
               (fun (u, v) ->
                 Printf.sprintf "edge (%d,%d) both coloured %s" u v (show_out u))
               verdict.Checker.conflicts)));
  if verdict.Checker.off_palette <> [] then
    add "palette"
      (Printf.sprintf "off-palette outputs: %s"
         (String.concat ", "
            (List.map
               (fun p -> Printf.sprintf "p%d=%s" p (show_out p))
               verdict.Checker.off_palette)));
  (* 3: the wait-freedom lemmas as per-process activation bounds.  Only
     for static executions: recovery leaves the ring outside the static
     model (frozen registers of returned neighbours), where the bounds of
     Theorems 3.1/3.11/4.4 are simply not claimed — and demonstrably do
     not hold under lockstep scheduling. *)
  (match A.bound ~n ~on_cycle with
  | Some b when churn = [] ->
      Array.iteri
        (fun p a ->
          if a > b then
            add "activation-bound"
              (Printf.sprintf
                 "process %d performed %d activations (bound %d, %s)" p a b
                 (if Status.is_returned (E.status engine p) then "returned"
                  else "not returned")))
        run_activations
  | _ -> ());
  (* 4: differential agreement between the list ([activate]) and packed
     ([activate_mask]) run-core entry points on the same schedule — churn
     events applied identically on both sides *)
  let e2 = E.create graph ~idents:sc.idents in
  drive e2 ~activate:(fun set -> E.activate_mask e2 (mask_of_set set));
  if E.time e2 <> run_steps then
    add "mask-agreement"
      (Printf.sprintf "mask replay took %d steps, list replay %d" (E.time e2)
         run_steps)
  else begin
    let diverged = ref None in
    for p = n - 1 downto 0 do
      let same_status =
        match (E.status engine p, E.status e2 p) with
        | Status.Asleep, Status.Asleep | Status.Working, Status.Working -> true
        | Status.Returned a, Status.Returned b -> A.equal_output a b
        | _ -> false
      in
      if (not same_status) || E.activations engine p <> E.activations e2 p then
        diverged := Some p
    done;
    match !diverged with
    | Some p ->
        add "mask-agreement"
          (Printf.sprintf
             "process %d diverges between activate and activate_mask \
              (status %s vs %s, activations %d vs %d)"
             p
             (Format.asprintf "%a" (Status.pp A.pp_output) (E.status engine p))
             (Format.asprintf "%a" (Status.pp A.pp_output) (E.status e2 p))
             (E.activations engine p) (E.activations e2 p))
    | None -> ()
  end;
  let events =
    List.map
      (fun (e : E.event) ->
        {
          time = e.E.time;
          activated = e.E.activated;
          returned = List.map (fun (p, o) -> (p, A.show_output o)) e.E.returned;
          resets = e.E.resets;
        })
      (E.trace engine)
  in
  {
    violations = List.rev !violations;
    events;
    outputs = Array.map (Option.map A.show_output) run_outputs;
    activations = run_activations;
    steps = run_steps;
    returned = verdict.Checker.returned;
  }

let run (sc : Scenario.t) : outcome =
  Scenario.validate sc;
  run_alg (resolve sc) sc

let fails_invariant sc ~invariant =
  List.exists (fun v -> v.invariant = invariant) (run sc).violations
