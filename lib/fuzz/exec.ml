module Graph = Asyncolor_topology.Graph
module Adversary = Asyncolor_kernel.Adversary
module Status = Asyncolor_kernel.Status
module Checker = Asyncolor.Checker
module Color = Asyncolor.Color

type violation = { invariant : string; message : string }

type event = {
  time : int;
  activated : int list;
  returned : (int * string) list;
}

type outcome = {
  violations : violation list;
  events : event list;
  outputs : string option array;
  activations : int array;
  steps : int;
  returned : int;
}

let invariant_names = [ "proper"; "palette"; "activation-bound"; "mask-agreement" ]

(* A protocol plus everything the invariant suite needs to judge a run of
   it: output equality and rendering, the palette claim (graph-dependent)
   and the wait-freedom activation bound (cycle-only). *)
module type ALG = sig
  include Asyncolor_kernel.Protocol.S

  val equal_output : output -> output -> bool
  val show_output : output -> string
  val palette : graph:Graph.t -> on_cycle:bool -> (output -> bool) option
  val bound : n:int -> on_cycle:bool -> int option
end

let a1_alg (p : Mutation.a1_protocol) : (module ALG) =
  let (module P) = p in
  (module struct
    include P

    let equal_output (a : output) (b : output) = a = b
    let show_output (a, b) = Printf.sprintf "(%d,%d)" a b

    let palette ~graph ~on_cycle =
      (* Theorem 3.1 on the cycle (a + b <= 2); Appendix A's Algorithm 4
         palette (a + b <= Δ) elsewhere. *)
      let budget = if on_cycle then 2 else Graph.max_degree graph in
      Some (Color.pair_in_palette ~budget)

    let bound ~n ~on_cycle =
      if on_cycle then Some (Asyncolor.Algorithm1.activation_bound n) else None
  end)

(* Generic builder for the int-output protocols (Algorithms 2, 2s, 3 and
   the Algorithm-2 mutants); palette claim and activation bound are the
   per-algorithm parameters. *)
let int_alg (type s r)
    (module P : Asyncolor_kernel.Protocol.S
      with type state = s
       and type register = r
       and type output = int)
    ~(palette : graph:Graph.t -> on_cycle:bool -> (int -> bool) option)
    ~(bound : n:int -> on_cycle:bool -> int option) : (module ALG) =
  (module struct
    include P

    let equal_output = Int.equal
    let show_output = string_of_int
    let palette = palette
    let bound = bound
  end)

let a2_alg (p : Mutation.a2_protocol) : (module ALG) =
  let (module P) = p in
  int_alg
    (module P)
    (* 5 colours on the cycle (Δ = 2), the 2Δ+1 general palette beyond. *)
    ~palette:(fun ~graph ~on_cycle:_ ->
      Some
        (Asyncolor.Algorithm2.in_general_palette
           ~max_degree:(Graph.max_degree graph)))
    ~bound:(fun ~n ~on_cycle ->
      if on_cycle then Some (Asyncolor.Algorithm2.activation_bound n) else None)

let a2s_alg () : (module ALG) =
  (* Algorithm 2s is not wait-free (the symmetric lasso of E13), so no
     activation bound applies; palette is the 7-colour one, cycle only. *)
  int_alg
    (module Asyncolor.Algorithm2s.P)
    ~palette:(fun ~graph:_ ~on_cycle ->
      if on_cycle then Some Asyncolor.Algorithm2s.in_palette else None)
    ~bound:(fun ~n:_ ~on_cycle:_ -> None)

let a3_alg () : (module ALG) =
  int_alg
    (module Asyncolor.Algorithm3.P)
    ~palette:(fun ~graph:_ ~on_cycle:_ -> Some Color.in_five)
    ~bound:(fun ~n ~on_cycle ->
      if on_cycle then Some (Asyncolor.Algorithm3.activation_bound n) else None)

let resolve (sc : Scenario.t) : (module ALG) =
  let bad_mutation m =
    invalid_arg
      (Printf.sprintf "Exec.run: mutation %S does not apply to algorithm %s" m
         (Scenario.algo_name sc.algo))
  in
  match (sc.algo, sc.mutation) with
  | Scenario.A1, None -> a1_alg (module Asyncolor.Algorithm1.P)
  | Scenario.A1, Some m -> (
      match Mutation.a1_protocol m with
      | Some p -> a1_alg p
      | None -> bad_mutation m)
  | Scenario.A2, None -> a2_alg (module Asyncolor.Algorithm2.P)
  | Scenario.A2, Some m -> (
      match Mutation.a2_protocol m with
      | Some p -> a2_alg p
      | None -> bad_mutation m)
  | Scenario.A2s, None -> a2s_alg ()
  | Scenario.A3, None -> a3_alg ()
  | (Scenario.A2s | Scenario.A3), Some m -> bad_mutation m

let mask_of_set set = List.fold_left (fun m p -> m lor (1 lsl p)) 0 set

let run_alg (module A : ALG) (sc : Scenario.t) : outcome =
  let module E = Asyncolor_kernel.Engine.Make (A) in
  let graph = Scenario.build_graph sc.graph in
  let n = Graph.n graph in
  let on_cycle = match sc.graph with Scenario.Cycle _ -> true | _ -> false in
  let engine = E.create ~record_trace:true graph ~idents:sc.idents in
  let r =
    E.run
      ~max_steps:(Scenario.steps sc + 1)
      engine
      (Adversary.finite sc.schedule)
  in
  let violations = ref [] in
  let add invariant message = violations := { invariant; message } :: !violations in
  (* 1-2: proper colouring of the returned subgraph + palette membership *)
  let in_palette =
    match A.palette ~graph ~on_cycle with Some f -> f | None -> fun _ -> true
  in
  let verdict = Checker.check ~equal:A.equal_output ~in_palette graph r.outputs in
  let show_out p =
    match r.outputs.(p) with Some o -> A.show_output o | None -> "⊥"
  in
  if not verdict.Checker.proper then
    add "proper"
      (Printf.sprintf "improper colouring: %s"
         (String.concat ", "
            (List.map
               (fun (u, v) ->
                 Printf.sprintf "edge (%d,%d) both coloured %s" u v (show_out u))
               verdict.Checker.conflicts)));
  if verdict.Checker.off_palette <> [] then
    add "palette"
      (Printf.sprintf "off-palette outputs: %s"
         (String.concat ", "
            (List.map
               (fun p -> Printf.sprintf "p%d=%s" p (show_out p))
               verdict.Checker.off_palette)));
  (* 3: the wait-freedom lemmas as per-process activation bounds *)
  (match A.bound ~n ~on_cycle with
  | None -> ()
  | Some b ->
      Array.iteri
        (fun p a ->
          if a > b then
            add "activation-bound"
              (Printf.sprintf
                 "process %d performed %d activations (bound %d, %s)" p a b
                 (if Status.is_returned (E.status engine p) then "returned"
                  else "not returned")))
        r.activations_per_process);
  (* 4: differential agreement between the list ([activate]) and packed
     ([activate_mask]) run-core entry points on the same schedule *)
  let e2 = E.create graph ~idents:sc.idents in
  List.iter
    (fun set ->
      if not (E.all_returned e2) then E.activate_mask e2 (mask_of_set set))
    sc.schedule;
  if E.time e2 <> r.steps then
    add "mask-agreement"
      (Printf.sprintf "mask replay took %d steps, list replay %d" (E.time e2)
         r.steps)
  else begin
    let diverged = ref None in
    for p = n - 1 downto 0 do
      let same_status =
        match (E.status engine p, E.status e2 p) with
        | Status.Asleep, Status.Asleep | Status.Working, Status.Working -> true
        | Status.Returned a, Status.Returned b -> A.equal_output a b
        | _ -> false
      in
      if (not same_status) || E.activations engine p <> E.activations e2 p then
        diverged := Some p
    done;
    match !diverged with
    | Some p ->
        add "mask-agreement"
          (Printf.sprintf
             "process %d diverges between activate and activate_mask \
              (status %s vs %s, activations %d vs %d)"
             p
             (Format.asprintf "%a" (Status.pp A.pp_output) (E.status engine p))
             (Format.asprintf "%a" (Status.pp A.pp_output) (E.status e2 p))
             (E.activations engine p) (E.activations e2 p))
    | None -> ()
  end;
  let events =
    List.map
      (fun (e : E.event) ->
        {
          time = e.E.time;
          activated = e.E.activated;
          returned = List.map (fun (p, o) -> (p, A.show_output o)) e.E.returned;
        })
      (E.trace engine)
  in
  {
    violations = List.rev !violations;
    events;
    outputs = Array.map (Option.map A.show_output) r.outputs;
    activations = r.activations_per_process;
    steps = r.steps;
    returned = verdict.Checker.returned;
  }

let run (sc : Scenario.t) : outcome =
  Scenario.validate sc;
  run_alg (resolve sc) sc

let fails_invariant sc ~invariant =
  List.exists (fun v -> v.invariant = invariant) (run sc).violations
