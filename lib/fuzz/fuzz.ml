module Prng = Asyncolor_util.Prng
module Domain_pool = Asyncolor_util.Domain_pool
module Budget = Asyncolor_resilience.Budget

type finding = {
  exec : int;
  invariant : string;
  trace : Trace.t;
  shrunk : Trace.t;
  shrink_stats : Shrink.stats;
}

type report = {
  seed : int;
  execs_requested : int;
  execs_done : int;
  complete : bool;
  findings : finding list;
}

(* Per-exec PRNG stream: a pure function of (campaign seed, exec index),
   so exec [i] generates the same scenario whatever --jobs is and however
   the execs are batched — the whole determinism argument of the
   campaign.  [Prng.create] finalises with the SplitMix64 mixer, so a
   simple odd-multiplier combine is enough to decorrelate streams. *)
let exec_seed ~seed i = seed lxor (i * 0x9E3779B97F4A7C1)

let run_one ?algos ?mutation ?max_n ~seed i =
  let prng = Prng.create ~seed:(exec_seed ~seed i) in
  (* A mutation is compiled into one specific algorithm, so restrict the
     generator to that algorithm's scenarios. *)
  let algos =
    match mutation with
    | None -> algos
    | Some m -> (
        match
          List.find_opt (fun (i : Mutation.info) -> i.name = m) Mutation.all
        with
        | Some info -> Some [ info.base ]
        | None -> invalid_arg (Printf.sprintf "Fuzz: unknown mutation %S" m))
  in
  let sc = Scenario.generate ?algos ?mutation ?max_n prng in
  let outcome = Exec.run sc in
  match outcome.Exec.violations with
  | [] -> None
  | first :: _ as violations ->
      let invariant = first.Exec.invariant in
      let shrunk_sc, shrink_stats = Shrink.minimize sc ~invariant in
      let shrunk_out = Exec.run shrunk_sc in
      let pairs vs =
        List.map (fun (v : Exec.violation) -> (v.invariant, v.message)) vs
      in
      Some
        {
          exec = i;
          invariant;
          trace =
            { Trace.scenario = sc; seed; exec = i; violations = pairs violations };
          shrunk =
            {
              Trace.scenario = shrunk_sc;
              seed;
              exec = i;
              violations = pairs shrunk_out.Exec.violations;
            };
          shrink_stats;
        }

let trace_paths ~dir exec =
  ( Filename.concat dir (Printf.sprintf "t%04d.trace" exec),
    Filename.concat dir (Printf.sprintf "t%04d.min.trace" exec) )

let save_finding ~dir f =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let raw, min = trace_paths ~dir f.exec in
  Trace.save ~path:raw f.trace;
  Trace.save ~path:min f.shrunk

let campaign ?(jobs = 1) ?budget ?stop ?corpus_dir ?algos ?mutation ?max_n
    ~seed ~execs () =
  let should_stop () =
    (match stop with Some f -> f () | None -> false)
    || match budget with Some b -> Budget.exceeded b | None -> false
  in
  let findings = ref [] in
  let done_ = ref 0 in
  let complete = ref true in
  let batch = max 8 (jobs * 4) in
  let record fs =
    List.iter
      (fun f ->
        findings := f :: !findings;
        match corpus_dir with None -> () | Some dir -> save_finding ~dir f)
      fs
  in
  Domain_pool.with_pool ~jobs (fun pool ->
      let lo = ref 0 in
      while !lo < execs do
        if should_stop () then begin
          complete := false;
          lo := execs
        end
        else begin
          let hi = min execs (!lo + batch) in
          let indices = Array.init (hi - !lo) (fun k -> !lo + k) in
          let results =
            Domain_pool.map pool
              (fun i -> run_one ?algos ?mutation ?max_n ~seed i)
              indices
          in
          Array.iter
            (function Some f -> record [ f ] | None -> ())
            results;
          done_ := hi;
          lo := hi
        end
      done);
  {
    seed;
    execs_requested = execs;
    execs_done = !done_;
    complete = !complete;
    findings = List.rev !findings;
  }

let replay (t : Trace.t) =
  let outcome = Exec.run t.Trace.scenario in
  let pairs =
    List.map
      (fun (v : Exec.violation) -> (v.Exec.invariant, v.Exec.message))
      outcome.Exec.violations
  in
  (outcome, pairs = t.Trace.violations)
