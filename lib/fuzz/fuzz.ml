module Prng = Asyncolor_util.Prng
module Executor = Asyncolor_util.Executor
module Budget = Asyncolor_resilience.Budget
module Obs = Asyncolor_obs.Obs

(* The campaign's observability context.  Counters are per-domain sharded
   in the sink, so the parallel execs never contend on them; everything is
   out-of-band, leaving the seed-determinism of the report untouched. *)
type octx = {
  o : Obs.t;
  oc_execs : Obs.Counter.t;
  oc_findings : Obs.Counter.t;
  oc_shrink_execs : Obs.Counter.t;
  oc_detector_ns : Obs.Counter.t;
  og_eps : Obs.Gauge.t;  (** whole-campaign execs per second *)
}

let make_octx o =
  {
    o;
    oc_execs = Obs.counter o "fuzz.execs";
    oc_findings = Obs.counter o "fuzz.findings";
    oc_shrink_execs = Obs.counter o "fuzz.shrink_execs";
    oc_detector_ns = Obs.counter o "fuzz.detector_ns";
    og_eps = Obs.gauge o "fuzz.execs_per_sec";
  }

type finding = {
  exec : int;
  invariant : string;
  trace : Trace.t;
  shrunk : Trace.t;
  shrink_stats : Shrink.stats;
}

type report = {
  seed : int;
  execs_requested : int;
  execs_done : int;
  complete : bool;
  findings : finding list;
}

(* Per-exec PRNG stream: a pure function of (campaign seed, exec index),
   so exec [i] generates the same scenario whatever --jobs is and however
   the execs are batched — the whole determinism argument of the
   campaign.  [Prng.create] finalises with the SplitMix64 mixer, so a
   simple odd-multiplier combine is enough to decorrelate streams. *)
let exec_seed ~seed i = seed lxor (i * 0x9E3779B97F4A7C1)

let run_one ?(obs = Obs.disabled) ?algos ?mutation ?max_n ~seed i =
  let octx = make_octx obs in
  let prng = Prng.create ~seed:(exec_seed ~seed i) in
  (* A mutation is compiled into one specific algorithm, so restrict the
     generator to that algorithm's scenarios. *)
  let algos =
    match mutation with
    | None -> algos
    | Some m -> (
        match
          List.find_opt (fun (i : Mutation.info) -> i.name = m) Mutation.all
        with
        | Some info -> Some [ info.base ]
        | None -> invalid_arg (Printf.sprintf "Fuzz: unknown mutation %S" m))
  in
  let sc = Scenario.generate ?algos ?mutation ?max_n prng in
  Obs.Counter.incr octx.oc_execs;
  (* Detector time — [Exec.run] is generation-free, purely the invariant
     suite over the scenario — accumulates in nanoseconds so the metrics
     table separates detection cost from generation + shrinking. *)
  let timed_run sc =
    let t0 = Obs.now obs in
    let outcome = Exec.run sc in
    Obs.Counter.add octx.oc_detector_ns
      (Int64.to_int (Int64.sub (Obs.now obs) t0));
    outcome
  in
  let outcome = timed_run sc in
  match outcome.Exec.violations with
  | [] -> None
  | first :: _ as violations ->
      let invariant = first.Exec.invariant in
      Obs.Counter.incr octx.oc_findings;
      let shrunk_sc, shrink_stats =
        Obs.span obs
          ~args:[ ("exec", string_of_int i); ("invariant", invariant) ]
          "fuzz.shrink"
          (fun () -> Shrink.minimize sc ~invariant)
      in
      Obs.Counter.add octx.oc_shrink_execs shrink_stats.Shrink.execs;
      let shrunk_out = timed_run shrunk_sc in
      let pairs vs =
        List.map (fun (v : Exec.violation) -> (v.invariant, v.message)) vs
      in
      Some
        {
          exec = i;
          invariant;
          trace =
            { Trace.scenario = sc; seed; exec = i; violations = pairs violations };
          shrunk =
            {
              Trace.scenario = shrunk_sc;
              seed;
              exec = i;
              violations = pairs shrunk_out.Exec.violations;
            };
          shrink_stats;
        }

let trace_paths ~dir exec =
  ( Filename.concat dir (Printf.sprintf "t%04d.trace" exec),
    Filename.concat dir (Printf.sprintf "t%04d.min.trace" exec) )

let save_finding ~dir f =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let raw, min = trace_paths ~dir f.exec in
  Trace.save ~path:raw f.trace;
  Trace.save ~path:min f.shrunk

let campaign ?(jobs = 1) ?policy ?budget ?stop ?corpus_dir ?algos ?mutation
    ?max_n ?(chaos = Asyncolor_resilience.Chaos.disabled) ?(obs = Obs.disabled)
    ~seed ~execs () =
  let octx = make_octx obs in
  let policy =
    match policy with
    | Some p -> p
    | None -> if jobs <= 1 then Executor.Serial else Executor.Synchronous
  in
  let should_stop () =
    (match stop with Some f -> f () | None -> false)
    || match budget with Some b -> Budget.exceeded b | None -> false
  in
  let findings = ref [] in
  let done_ = ref 0 in
  let complete = ref true in
  let batch = max 8 (jobs * 4) in
  let record fs =
    List.iter
      (fun f ->
        findings := f :: !findings;
        match corpus_dir with None -> () | Some dir -> save_finding ~dir f)
      fs
  in
  let t0 = Obs.now obs in
  (Obs.span obs
     ~args:[ ("seed", string_of_int seed); ("execs", string_of_int execs) ]
     "fuzz.campaign"
  @@ fun () ->
   Executor.with_executor ~obs ~chaos ~policy ~jobs (fun exec ->
       let lo = ref 0 in
       while !lo < execs do
         if should_stop () then begin
           complete := false;
           lo := execs
         end
         else begin
           let hi = min execs (!lo + batch) in
           let indices = Array.init (hi - !lo) (fun k -> !lo + k) in
           let results =
             Obs.span obs
               ~args:
                 [ ("lo", string_of_int !lo); ("hi", string_of_int hi) ]
               "fuzz.batch"
               (fun () ->
                 Executor.map exec
                   (fun i -> run_one ~obs ?algos ?mutation ?max_n ~seed i)
                   indices)
           in
           Array.iter
             (function Some f -> record [ f ] | None -> ())
             results;
           done_ := hi;
           lo := hi
         end
       done));
  (* Whole-campaign throughput, generation + detection + shrinking
     included; only meaningful on the monotonic clock (elapsed time under
     the virtual clock is a tick count). *)
  (if Obs.enabled obs then
     let elapsed_ns = Int64.to_int (Int64.sub (Obs.now obs) t0) in
     if elapsed_ns > 0 then
       Obs.Gauge.set octx.og_eps
         (int_of_float
            (float_of_int !done_ /. (float_of_int elapsed_ns /. 1e9))));
  {
    seed;
    execs_requested = execs;
    execs_done = !done_;
    complete = !complete;
    findings = List.rev !findings;
  }

let replay (t : Trace.t) =
  let outcome = Exec.run t.Trace.scenario in
  let pairs =
    List.map
      (fun (v : Exec.violation) -> (v.Exec.invariant, v.Exec.message))
      outcome.Exec.violations
  in
  (outcome, pairs = t.Trace.violations)
