(** Run one scenario and judge it against the invariant suite.

    The detectors, in report order:

    + {b proper} — outputs properly colour the subgraph induced by the
      returned processes (the "Correctness" clause of Theorems 3.1, 3.11,
      4.4);
    + {b palette} — returned colours lie in the algorithm's palette
      (6 / 5 / 7 / 5 colours on the cycle; the [Δ]-dependent palettes on
      general graphs);
    + {b activation-bound} — no process exceeds the wait-freedom bound on
      its own activations (Theorems 3.1 / 3.11 / 4.4; cycle topologies
      only, and never for Algorithm 2s, which is not wait-free).  Skipped
      for churn-bearing scenarios: recovery leaves the ring outside the
      static model, where the bounds are not claimed — and demonstrably
      fail under lockstep scheduling;
    + {b mask-agreement} — differential check: replaying the very same
      schedule through the packed [activate_mask] entry point must agree
      with the list [activate] path on statuses, outputs and activation
      counters (the run-core equivalence the explorer relies on).  Churn
      events are applied identically on both sides;
    + {b churn-reinit} — a recovered process is observably fresh: asleep,
      register back to [⊥], activation counter restarted (checked at
      every recovery event);
    + {b churn-fresh-ident} — installed identifiers stay pairwise
      distinct after every recovery.

    The suite is pluggable at the [ALG] seam: a protocol plus its palette
    claim and activation bound.  {!Mutation} supplies deliberately broken
    protocols through the same seam — except the ["churn-"] mutants,
    whose planted bug corrupts how this module applies recovery events
    while the protocol itself stays clean. *)

type violation = { invariant : string; message : string }

type event = {
  time : int;
  activated : int list;
  returned : (int * string) list;  (** outputs rendered, protocol-erased *)
  resets : (int * int) list;  (** recoveries: (process, fresh identifier) *)
}

type outcome = {
  violations : violation list;  (** empty = run passed every detector *)
  events : event list;  (** full engine event stream, for trace round-trips *)
  outputs : string option array;
  activations : int array;
  steps : int;
  returned : int;
}

val invariant_names : string list

val run : Scenario.t -> outcome
(** Execute the scenario (its mutation applied, if any) and check every
    applicable invariant.  Deterministic: equal scenarios yield equal
    outcomes.  @raise Invalid_argument on a malformed scenario
    ({!Scenario.validate}) or a mutation that does not apply to its
    algorithm. *)

val fails_invariant : Scenario.t -> invariant:string -> bool
(** Does running [sc] violate the named invariant?  The shrinker's
    oracle. *)
