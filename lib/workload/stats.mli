(** Summary statistics over integer samples (activation counts, rounds). *)

type summary = {
  count : int;
  min : int;
  max : int;
  mean : float;
  stddev : float;
  p50 : int;
  p95 : int;
  p99 : int;
}

val summarize : int list -> summary
(** @raise Invalid_argument on the empty list. *)

val summarize_array : int array -> summary
(** Same summary over an array (no intermediate list).
    @raise Invalid_argument on the empty array — the very same
    ["Stats.summarize: empty"] exception as {!summarize}, which delegates
    here. *)

val percentile : int array -> float -> int
(** [percentile sorted q] with [q ∈ \[0, 1\]] by nearest-rank on a sorted
    array.  @raise Invalid_argument on empty input or out-of-range [q]. *)

val mean : int list -> float
val pp_summary : Format.formatter -> summary -> unit

val linear_fit : (float * float) list -> float * float
(** Least-squares [y = a*x + b]; returns [(a, b)].  Used to verify the
    O(n)-vs-O(log* n) growth shapes.  @raise Invalid_argument with fewer
    than two points. *)
