(** Plain-text tables for the experiment harness (aligned columns,
    markdown-compatible). *)

type t

val create : headers:string list -> t
val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val row_int : int list -> string list

val headers : t -> string list
val rows : t -> string list list
(** Data rows in insertion order (headers excluded). *)

val to_string : t -> string

val to_csv : t -> string
(** RFC-4180-style CSV: header row then data rows; cells containing commas,
    quotes or newlines are quoted. *)

val write_csv : string -> t -> unit
(** [write_csv path t] writes {!to_csv} to [path]. *)

val print : t -> unit
(** Write to stdout with a trailing newline. *)
