(** Identifier-assignment workloads.

    The running time of Algorithms 1–2 is governed by the longest monotone
    chain of identifiers around the cycle (Lemma 3.9, Remark 3.10), so the
    choice of identifier workload *is* the benchmark workload.  Generators
    return an array of naturals, one per node in cycle order —
    pairwise-distinct (the paper's model) except for the deliberately
    symmetric {!uniform} and {!periodic} workloads that feed the
    explorer's symmetry-reduction benchmarks. *)

val increasing : int -> int array
(** [0, 1, …, n-1]: one monotone chain spanning the whole cycle — the
    worst case for Algorithms 1 and 2, the showcase for Algorithm 3. *)

val decreasing : int -> int array

val zigzag : int -> int array
(** Alternating low/high ([0, n, 1, n+1, …]): every node is a local
    extremum or adjacent to one — the best case for Algorithms 1–2. *)

val random_permutation : Asyncolor_util.Prng.t -> int -> int array
(** Uniform permutation of [0 .. n-1]. *)

val random_sparse : Asyncolor_util.Prng.t -> n:int -> universe:int -> int array
(** [n] distinct identifiers drawn from [\[0, universe)] — the paper's
    [poly(n)]-sized name space.  @raise Invalid_argument if
    [universe < n]. *)

val uniform : ?ident:int -> int -> int array
(** Every node carries the same identifier (default 7).  Deliberately
    outside the paper's distinct-identifier model: the anonymous cycle is
    the maximally symmetric workload — all [2n] dihedral automorphisms
    preserve it — so it is what the explorer's symmetry reduction is
    benchmarked and differentially tested on (the algorithms may
    legitimately livelock or miscolour here; the two explorers must agree
    that they do). *)

val periodic : int array -> int -> int array
(** Tile a pattern around the cycle ([periodic [|0;1|] 6] =
    [[|0;1;0;1;0;1|]]): symmetric under the rotations that are multiples
    of the pattern length, a middle ground between {!uniform} and the
    injective workloads.  @raise Invalid_argument on an empty pattern. *)

val bit_adversarial : int -> int array
(** Identifiers engineered so consecutive nodes differ only in a high bit
    (Gray-code-like), slowing the Cole–Vishkin reduction: stresses
    experiment E9. *)

val fresh : live:int list -> universe:int -> int
(** [fresh ~live ~universe] allocates an identifier for a recovering
    process: the smallest natural in [\[0, universe)] that collides with
    no identifier in [live] (the identifiers of the currently live
    processes — dead incarnations may be reused; only live collisions
    break the model).  Deterministic, so churn sessions replay without
    persisting allocator state.  @raise Invalid_argument when [universe]
    is non-positive or every identifier in [\[0, universe)] is live
    (universe exhausted). *)

val longest_monotone_run : int array -> int
(** Length (number of edges) of the longest run of consecutive positions
    around the cycle with strictly monotone identifiers; drives the
    Theorem 3.1/3.11 bounds. *)

val is_injective : int array -> bool
