type t = { headers : string list; mutable rows : string list list }

let create ~headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: row width mismatch";
  t.rows <- row :: t.rows

let row_int = List.map string_of_int
let headers t = t.headers

(* [t.rows] is stored newest-first *)
let rows t = List.rev t.rows

let to_string t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map String.length t.headers)
      rows
  in
  let render_row row =
    "| "
    ^ String.concat " | "
        (List.map2 (fun w cell -> cell ^ String.make (w - String.length cell) ' ') widths row)
    ^ " |"
  in
  let sep =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  String.concat "\n" (render_row t.headers :: sep :: List.map render_row rows)

let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  let line row = String.concat "," (List.map csv_cell row) in
  (* [t.rows] is stored newest-first; rev_map restores insertion order *)
  String.concat "\n" (line t.headers :: List.rev_map line t.rows) ^ "\n"

let write_csv path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_csv t))

let print t =
  print_string (to_string t);
  print_newline ()
