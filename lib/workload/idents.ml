module Prng = Asyncolor_util.Prng

let increasing n = Array.init n Fun.id
let decreasing n = Array.init n (fun i -> n - 1 - i)

let zigzag n = Array.init n (fun i -> if i mod 2 = 0 then i / 2 else n + (i / 2))

let random_permutation prng n =
  let a = increasing n in
  Prng.shuffle prng a;
  a

let random_sparse prng ~n ~universe =
  if universe < n then invalid_arg "Idents.random_sparse: universe too small";
  Array.of_list (Prng.sample_without_replacement prng n universe)
  |> fun sorted ->
  Prng.shuffle prng sorted;
  sorted

let uniform ?(ident = 7) n = Array.make n ident

let periodic pattern n =
  let k = Array.length pattern in
  if k = 0 then invalid_arg "Idents.periodic: empty pattern";
  Array.init n (fun i -> pattern.(i mod k))

(* Consecutive identifiers share a long low-bit prefix, so the first
   differing bit — what Cole–Vishkin keys on — sits high. *)
let bit_adversarial n =
  Array.init n (fun i ->
      (* Gray code of i, shifted to make identifiers large. *)
      let gray = i lxor (i lsr 1) in
      (gray lsl 8) lor 0xAA)

(* Fresh-identifier allocator for recovery: deterministic (smallest
   candidate), so churn sessions replay byte-identically without having
   to persist allocator state. *)
let fresh ~live ~universe =
  if universe <= 0 then invalid_arg "Idents.fresh: universe must be positive";
  let module S = Set.Make (Int) in
  let taken = List.fold_left (fun s x -> S.add x s) S.empty live in
  let rec scan c =
    if c >= universe then invalid_arg "Idents.fresh: universe exhausted"
    else if S.mem c taken then scan (c + 1)
    else c
  in
  scan 0

let is_injective a =
  let module S = Set.Make (Int) in
  let s = Array.fold_left (fun s x -> S.add x s) S.empty a in
  S.cardinal s = Array.length a

let longest_monotone_run a =
  let n = Array.length a in
  if n < 2 then 0
  else begin
    (* Walk the doubled cycle tracking the current run direction. *)
    let best = ref 0 in
    let run = ref 0 in
    let dir = ref 0 in
    for i = 0 to (2 * n) - 2 do
      let x = a.(i mod n) and y = a.((i + 1) mod n) in
      let d = compare y x in
      if d = !dir && d <> 0 then incr run
      else begin
        dir := d;
        run := 1
      end;
      if !run > !best then best := !run
    done;
    min !best n
  end
