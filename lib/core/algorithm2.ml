module Step = Asyncolor_kernel.Step
module Mex = Asyncolor_util.Mex
module Builders = Asyncolor_topology.Builders

type fields = { x : int; a : int; b : int }

module P = struct
  type state = fields
  type register = fields
  type output = int

  let name = "algorithm2"
  let init ~ident = { x = ident; a = 0; b = 0 }
  let publish s = s

  let transition s ~view =
    let nbrs = Array.to_list view |> List.filter_map Fun.id in
    let c = List.concat_map (fun r -> [ r.a; r.b ]) nbrs in
    if not (List.mem s.a c) then Step.Return s.a
    else if not (List.mem s.b c) then Step.Return s.b
    else begin
      let c_plus =
        List.concat_map (fun r -> if r.x > s.x then [ r.a; r.b ] else []) nbrs
      in
      Step.Continue { s with a = Mex.of_list c_plus; b = Mex.of_list c }
    end

  let equal_state (s : state) (s' : state) = s = s'
  let equal_register = equal_state

  let encode_state emit s =
    emit s.x;
    emit s.a;
    emit s.b

  let encode_register = encode_state
  let encode_output emit (c : output) = emit c
  let pp_state ppf s = Format.fprintf ppf "{x=%d;a=%d;b=%d}" s.x s.a s.b
  let pp_register = pp_state
  let pp_output = Format.pp_print_int
end

module E = Asyncolor_kernel.Engine.Make (P)

let activation_bound n = (3 * n) + 8
let non_minimum_bound ~l = (3 * l) + 4

let run_on_cycle ?max_steps ~idents adv =
  let engine = E.create (Builders.cycle (Array.length idents)) ~idents in
  E.run ?max_steps engine adv

let general_palette ~max_degree = (2 * max_degree) + 1
let in_general_palette ~max_degree c = c >= 0 && c <= 2 * max_degree

let run_on_graph ?max_steps g ~idents adv =
  let engine = E.create g ~idents in
  E.run ?max_steps engine adv
