module Step = Asyncolor_kernel.Step
module Status = Asyncolor_kernel.Status
module Mex = Asyncolor_util.Mex
module Builders = Asyncolor_topology.Builders
module IntSet = Set.Make (Int)

type state = {
  base : Algorithm2.fields;
  a_set : IntSet.t;
  higher_awake : int;
}

module P = struct
  type nonrec state = state
  type register = state
  type output = int

  let name = "algorithm2-instrumented"

  let init ~ident =
    {
      base = { Algorithm2.x = ident; a = 0; b = 0 };
      a_set = IntSet.empty;
      higher_awake = -1;
    }

  let publish s = s

  let transition s ~view =
    let nbrs = Array.to_list view |> List.filter_map Fun.id in
    let c = List.concat_map (fun r -> [ r.base.Algorithm2.a; r.base.Algorithm2.b ]) nbrs in
    if not (List.mem s.base.Algorithm2.a c) then Step.Return s.base.Algorithm2.a
    else if not (List.mem s.base.Algorithm2.b c) then Step.Return s.base.Algorithm2.b
    else begin
      let higher =
        List.filter (fun r -> r.base.Algorithm2.x > s.base.Algorithm2.x) nbrs
      in
      let c_plus =
        List.concat_map (fun r -> [ r.base.Algorithm2.a; r.base.Algorithm2.b ]) higher
      in
      let a_set =
        List.fold_left
          (fun acc r -> IntSet.union acc (IntSet.add r.base.Algorithm2.x r.a_set))
          IntSet.empty higher
      in
      Step.Continue
        {
          base = { s.base with a = Mex.of_list c_plus; b = Mex.of_list c };
          a_set;
          higher_awake = List.length higher;
        }
    end

  let equal_state (s : state) (s' : state) =
    s.base = s'.base && IntSet.equal s.a_set s'.a_set
    && s.higher_awake = s'.higher_awake

  let equal_register = equal_state

  let encode_state emit s =
    emit s.base.Algorithm2.x;
    emit s.base.Algorithm2.a;
    emit s.base.Algorithm2.b;
    emit (IntSet.cardinal s.a_set);
    IntSet.iter emit s.a_set;
    emit s.higher_awake

  let encode_register = encode_state
  let encode_output emit (c : output) = emit c

  let pp_state ppf s =
    Format.fprintf ppf "{x=%d;a=%d;b=%d;|A|=%d}" s.base.Algorithm2.x
      s.base.Algorithm2.a s.base.Algorithm2.b (IntSet.cardinal s.a_set)

  let pp_register = pp_state
  let pp_output = Format.pp_print_int
end

module E = Asyncolor_kernel.Engine.Make (P)

let eq5 s =
  if s.higher_awake < 0 || s.higher_awake > 1 then Ok ()
  else begin
    let even_sz = IntSet.cardinal s.a_set mod 2 = 0 in
    let a_zero = s.base.Algorithm2.a = 0 in
    if a_zero = even_sz then Ok ()
    else
      Error
        (Printf.sprintf "Eq. (5) violated: a_p=%d but |A_p|=%d" s.base.Algorithm2.a
           (IntSet.cardinal s.a_set))
  end

let monitor engine =
  for p = 0 to E.n engine - 1 do
    match E.status engine p with
    | Status.Working -> (
        match eq5 (E.state engine p) with Ok () -> () | Error m -> failwith m)
    | Status.Asleep | Status.Returned _ -> ()
  done

let agrees_with_algorithm2 ~idents ~schedule =
  let n = Array.length idents in
  let g = Builders.cycle n in
  let base = Algorithm2.E.create g ~idents in
  let inst = E.create g ~idents in
  List.iter
    (fun set ->
      Algorithm2.E.activate base set;
      E.activate inst set)
    schedule;
  Algorithm2.E.outputs base = E.outputs inst
