module Step = Asyncolor_kernel.Step
module Mex = Asyncolor_util.Mex
module Builders = Asyncolor_topology.Builders

type fields = { x : int; a : int; b : int }

module P = struct
  type state = fields
  type register = fields
  type output = Color.pair

  let name = "algorithm1"
  let init ~ident = { x = ident; a = 0; b = 0 }
  let publish s = s

  let transition s ~view =
    let nbrs =
      Array.to_list view |> List.filter_map Fun.id
    in
    let conflicts r = r.a = s.a && r.b = s.b in
    if not (List.exists conflicts nbrs) then Step.Return (s.a, s.b)
    else begin
      let a = Mex.of_list (List.filter_map (fun r -> if r.x > s.x then Some r.a else None) nbrs) in
      let b = Mex.of_list (List.filter_map (fun r -> if r.x < s.x then Some r.b else None) nbrs) in
      Step.Continue { s with a; b }
    end

  let equal_state (s : state) (s' : state) = s = s'
  let equal_register = equal_state

  let encode_state emit s =
    emit s.x;
    emit s.a;
    emit s.b

  let encode_register = encode_state

  let encode_output emit ((a, b) : output) =
    emit a;
    emit b

  let pp_state ppf s = Format.fprintf ppf "{x=%d;a=%d;b=%d}" s.x s.a s.b
  let pp_register = pp_state
  let pp_output = Color.pp_pair
end

module E = Asyncolor_kernel.Engine.Make (P)

let activation_bound n = (3 * n / 2) + 4
let monotone_bound ~l ~l' = min (min (3 * l) (3 * l')) (l + l') + 4

let run_on_cycle ?max_steps ~idents adv =
  let engine = E.create (Builders.cycle (Array.length idents)) ~idents in
  E.run ?max_steps engine adv
