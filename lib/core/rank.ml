type t = Fin of int | Inf

let zero = Fin 0
let succ = function Fin k -> Fin (k + 1) | Inf -> Inf
let is_finite = function Fin _ -> true | Inf -> false

let compare a b =
  match (a, b) with
  | Fin x, Fin y -> Int.compare x y
  | Fin _, Inf -> -1
  | Inf, Fin _ -> 1
  | Inf, Inf -> 0

let ( <= ) a b = compare a b <= 0
let min a b = if a <= b then a else b
let equal a b = compare a b = 0

let encode emit = function
  | Fin k ->
      emit 0;
      emit k
  | Inf -> emit 1

let pp ppf = function
  | Fin k -> Format.pp_print_int ppf k
  | Inf -> Format.pp_print_string ppf "∞"
