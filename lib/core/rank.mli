(** The synchronisation counter [r_p ∈ N ∪ {∞}] of Algorithm 3.

    [r_p] counts how many identifier reductions process [p] has attempted;
    a process only reduces when [r_p ≤ min(r_q, r_q')] — the "green light"
    from both neighbours.  [r_p = ∞] marks a process that has permanently
    opted out of identifier reduction (it became a local extremum). *)

type t = Fin of int | Inf

val zero : t
val succ : t -> t
(** [succ Inf = Inf]. *)

val is_finite : t -> bool
val compare : t -> t -> int
val ( <= ) : t -> t -> bool
val min : t -> t -> t
val equal : t -> t -> bool

val encode : (int -> unit) -> t -> unit
(** Injective integer encoding for the run-core packed-key layer. *)

val pp : Format.formatter -> t -> unit
