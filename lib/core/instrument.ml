module Step = Asyncolor_kernel.Step
module Status = Asyncolor_kernel.Status
module Mex = Asyncolor_util.Mex
module Builders = Asyncolor_topology.Builders
module IntSet = Set.Make (Int)

type shadow = { a_set : IntSet.t; b_set : IntSet.t }

type state = {
  base : Algorithm1.fields;
  shadow : shadow;
  higher_awake : int;
  lower_awake : int;
}

module P = struct
  type nonrec state = state
  type register = state
  type output = Color.pair

  let name = "algorithm1-instrumented"

  let init ~ident =
    {
      base = { Algorithm1.x = ident; a = 0; b = 0 };
      shadow = { a_set = IntSet.empty; b_set = IntSet.empty };
      higher_awake = -1;
      lower_awake = -1;
    }

  let publish s = s

  (* The base transition is Algorithm 1 verbatim; in parallel, Equations
     (3)-(4) refresh the shadow sets from the registers just read. *)
  let transition s ~view =
    let nbrs = Array.to_list view |> List.filter_map Fun.id in
    let higher = List.filter (fun r -> r.base.Algorithm1.x > s.base.Algorithm1.x) nbrs in
    let lower = List.filter (fun r -> r.base.Algorithm1.x < s.base.Algorithm1.x) nbrs in
    let a_set =
      List.fold_left
        (fun acc r -> IntSet.union acc (IntSet.add r.base.Algorithm1.x r.shadow.a_set))
        IntSet.empty higher
    in
    let b_set =
      List.fold_left
        (fun acc r -> IntSet.union acc (IntSet.add r.base.Algorithm1.x r.shadow.b_set))
        IntSet.empty lower
    in
    let conflicts r =
      r.base.Algorithm1.a = s.base.Algorithm1.a
      && r.base.Algorithm1.b = s.base.Algorithm1.b
    in
    if not (List.exists conflicts nbrs) then
      Step.Return (s.base.Algorithm1.a, s.base.Algorithm1.b)
    else begin
      let a = Mex.of_list (List.map (fun r -> r.base.Algorithm1.a) higher) in
      let b = Mex.of_list (List.map (fun r -> r.base.Algorithm1.b) lower) in
      Step.Continue
        {
          base = { s.base with a; b };
          shadow = { a_set; b_set };
          higher_awake = List.length higher;
          lower_awake = List.length lower;
        }
    end

  let equal_state (s : state) (s' : state) =
    s.base = s'.base
    && IntSet.equal s.shadow.a_set s'.shadow.a_set
    && IntSet.equal s.shadow.b_set s'.shadow.b_set
    && s.higher_awake = s'.higher_awake
    && s.lower_awake = s'.lower_awake

  let equal_register = equal_state

  let encode_set emit set =
    emit (IntSet.cardinal set);
    IntSet.iter emit set

  let encode_state emit s =
    emit s.base.Algorithm1.x;
    emit s.base.Algorithm1.a;
    emit s.base.Algorithm1.b;
    encode_set emit s.shadow.a_set;
    encode_set emit s.shadow.b_set;
    emit s.higher_awake;
    emit s.lower_awake

  let encode_register = encode_state

  let encode_output emit ((a, b) : output) =
    emit a;
    emit b

  let pp_state ppf s =
    let pp_set ppf set =
      Format.fprintf ppf "{%a}"
        Format.(
          pp_print_seq ~pp_sep:(fun ppf () -> pp_print_string ppf ",") pp_print_int)
        (IntSet.to_seq set)
    in
    Format.fprintf ppf "{x=%d;a=%d;b=%d;A=%a;B=%a}" s.base.Algorithm1.x
      s.base.Algorithm1.a s.base.Algorithm1.b pp_set s.shadow.a_set pp_set
      s.shadow.b_set

  let pp_register = pp_state
  let pp_output = Color.pp_pair
end

module E = Asyncolor_kernel.Engine.Make (P)

let lemma_3_5 s =
  let x = s.base.Algorithm1.x in
  if not (IntSet.for_all (fun v -> v > x) s.shadow.a_set) then
    Error (Printf.sprintf "Lemma 3.5: A_p contains a value <= X_p=%d" x)
  else if not (IntSet.for_all (fun v -> v < x) s.shadow.b_set) then
    Error (Printf.sprintf "Lemma 3.5: B_p contains a value >= X_p=%d" x)
  else Ok ()

let lemma_3_7 s =
  (* Binding only for a process that has taken at least one (missed) round. *)
  if s.higher_awake < 0 then Ok ()
  else if s.higher_awake <= 1 && s.base.Algorithm1.a mod 2 <> IntSet.cardinal s.shadow.a_set mod 2
  then
    Error
      (Printf.sprintf "Lemma 3.7: a_p=%d vs |A_p|=%d" s.base.Algorithm1.a
         (IntSet.cardinal s.shadow.a_set))
  else if
    s.lower_awake <= 1
    && s.base.Algorithm1.b mod 2 <> IntSet.cardinal s.shadow.b_set mod 2
  then
    Error
      (Printf.sprintf "Lemma 3.7: b_p=%d vs |B_p|=%d" s.base.Algorithm1.b
         (IntSet.cardinal s.shadow.b_set))
  else Ok ()

let monitor engine =
  for p = 0 to E.n engine - 1 do
    match E.status engine p with
    | Status.Working -> (
        let s = E.state engine p in
        (match lemma_3_5 s with Ok () -> () | Error m -> failwith m);
        match lemma_3_7 s with Ok () -> () | Error m -> failwith m)
    | Status.Asleep | Status.Returned _ -> ()
  done

let agrees_with_algorithm1 ~idents ~schedule =
  let n = Array.length idents in
  let g = Builders.cycle n in
  let base = Algorithm1.E.create g ~idents in
  let inst = E.create g ~idents in
  List.iter
    (fun set ->
      Algorithm1.E.activate base set;
      E.activate inst set)
    schedule;
  let pair_eq a b = match (a, b) with
    | Some c, Some c' -> c = c'
    | None, None -> true
    | _ -> false
  in
  Array.for_all2 pair_eq (Algorithm1.E.outputs base) (E.outputs inst)
