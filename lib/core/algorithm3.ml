module Step = Asyncolor_kernel.Step
module Status = Asyncolor_kernel.Status
module Mex = Asyncolor_util.Mex
module Builders = Asyncolor_topology.Builders
module Graph = Asyncolor_topology.Graph
module Reduce = Asyncolor_cv.Reduce
module Logstar = Asyncolor_cv.Logstar

type fields = { x : int; r : Rank.t; a : int; b : int }

module P = struct
  type state = fields
  type register = fields
  type output = int

  let name = "algorithm3"
  let init ~ident = { x = ident; r = Rank.zero; a = 0; b = 0 }
  let publish s = s

  (* Lines 11-19 of Algorithm 3: attempt one identifier reduction.  Only
     applies when both neighbours have published ([q] and [q'] below);
     [s.a]/[s.b] have already been refreshed by the colouring component. *)
  let reduce_identifier s q q' =
    if Rank.is_finite s.r && Rank.(s.r <= min q.r q'.r) then begin
      let lo = min q.x q'.x and hi = max q.x q'.x in
      if lo < s.x && s.x < hi then begin
        (* Middle of a monotone triple: adopt f(X_p, lo) if it still
           undercuts the smaller neighbour (line 12-15). *)
        let y = Reduce.f s.x lo in
        { s with r = Rank.succ s.r; x = (if y < lo then y else s.x) }
      end
      else begin
        (* Local extremum: opt out; a local minimum takes one final value
           avoiding what its neighbours would reduce to (lines 16-19). *)
        let x =
          if s.x < lo then
            min s.x (Mex.of_list [ Reduce.f q.x s.x; Reduce.f q'.x s.x ])
          else s.x
        in
        { s with r = Rank.Inf; x }
      end
    end
    else s

  let transition s ~view =
    let nbrs = Array.to_list view |> List.filter_map Fun.id in
    let c = List.concat_map (fun r -> [ r.a; r.b ]) nbrs in
    if not (List.mem s.a c) then Step.Return s.a
    else if not (List.mem s.b c) then Step.Return s.b
    else begin
      let c_plus =
        List.concat_map (fun r -> if r.x > s.x then [ r.a; r.b ] else []) nbrs
      in
      let s = { s with a = Mex.of_list c_plus; b = Mex.of_list c } in
      match view with
      | [| Some q; Some q' |] -> Step.Continue (reduce_identifier s q q')
      | _ -> Step.Continue s
    end

  let equal_state (s : state) (s' : state) = s = s'
  let equal_register = equal_state

  let encode_state emit s =
    emit s.x;
    Rank.encode emit s.r;
    emit s.a;
    emit s.b

  let encode_register = encode_state
  let encode_output emit (c : output) = emit c

  let pp_state ppf s =
    Format.fprintf ppf "{x=%d;r=%a;a=%d;b=%d}" s.x Rank.pp s.r s.a s.b

  let pp_register = pp_state
  let pp_output = Format.pp_print_int
end

module E = Asyncolor_kernel.Engine.Make (P)

let activation_bound n = (64 * Logstar.log_star_int n) + 64

let monitor_identifier_coloring engine =
  let g = E.graph engine in
  Graph.fold_edges
    (fun u v () ->
      match (E.public engine u, E.public engine v) with
      | Some ru, Some rv ->
          let private_x p =
            match E.status engine p with
            | Status.Working -> Some (E.state engine p).x
            | Status.Asleep | Status.Returned _ -> None
          in
          let clash = ru.x = rv.x in
          let clash_priv_u =
            match private_x u with Some x -> x = rv.x | None -> false
          in
          let clash_priv_v =
            match private_x v with Some x -> x = ru.x | None -> false
          in
          if clash || clash_priv_u || clash_priv_v then
            failwith
              (Printf.sprintf
                 "Lemma 4.5 violated at t=%d on edge %d-%d: X=%d vs X=%d"
                 (E.time engine) u v ru.x rv.x)
      | _ -> ())
    g ()

let run_on_cycle ?max_steps ~idents adv =
  let engine = E.create (Builders.cycle (Array.length idents)) ~idents in
  E.run ?max_steps engine adv
