module Step = Asyncolor_kernel.Step
module Mex = Asyncolor_util.Mex
module Builders = Asyncolor_topology.Builders

type fields = { x : int; a : int; b : int }

(* The (1-based) k-th natural not in [taken]. *)
let kth_free k taken =
  let taken = List.sort_uniq compare taken in
  let rec scan k cand = function
    | t :: rest when t < cand -> scan k cand rest
    | t :: rest when t = cand -> scan k (cand + 1) rest
    | rest -> if k = 1 then cand else scan (k - 1) (cand + 1) rest
  in
  scan k 0 taken

module P = struct
  type state = fields
  type register = fields
  type output = int

  let name = "algorithm2s"
  let init ~ident = { x = ident; a = 0; b = 0 }
  let publish s = s

  let transition s ~view =
    let nbrs = Array.to_list view |> List.filter_map Fun.id in
    let c = List.concat_map (fun r -> [ r.a; r.b ]) nbrs in
    if not (List.mem s.a c) then Step.Return s.a
    else if not (List.mem s.b c) then Step.Return s.b
    else begin
      let higher = List.filter (fun r -> r.x > s.x) nbrs in
      let c_plus = List.concat_map (fun r -> [ r.a; r.b ]) higher in
      (* the symmetry breaker: offset the b choice by the local rank *)
      let rank = 1 + List.length higher in
      Step.Continue { s with a = Mex.of_list c_plus; b = kth_free rank c }
    end

  let equal_state (s : state) (s' : state) = s = s'
  let equal_register = equal_state

  let encode_state emit s =
    emit s.x;
    emit s.a;
    emit s.b

  let encode_register = encode_state
  let encode_output emit (c : output) = emit c
  let pp_state ppf s = Format.fprintf ppf "{x=%d;a=%d;b=%d}" s.x s.a s.b
  let pp_register = pp_state
  let pp_output = Format.pp_print_int
end

module E = Asyncolor_kernel.Engine.Make (P)

let palette_size = 7
let in_palette c = c >= 0 && c <= 6

let run_on_cycle ?max_steps ~idents adv =
  let engine = E.create (Builders.cycle (Array.length idents)) ~idents in
  E.run ?max_steps engine adv
