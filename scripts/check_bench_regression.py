#!/usr/bin/env python3
"""Perf-regression gate over the bench --json record.

Usage: check_bench_regression.py BASELINE.json CURRENT.json

Compares rows matched by instance name across the sections below and
fails (exit 1) with a message naming the offending row when

  * throughput drops by more than 25% against the baseline, or
  * p99 recovery latency rises by more than 50% against the baseline.

Sections and the keys compared:

  churn          activations_per_sec (throughput), recovery_p99 (latency)
  explore_scale  configs_per_sec_jobs4 (throughput)

Rows present on only one side are reported and skipped — the gate only
judges matching rows — but an empty intersection is itself a failure:
it means the baseline predates the section and must be regenerated
(see HACKING.md, "Benchmarks").  Incomplete rows (complete=false, a
tripped --time-budget) are skipped: a truncated run measures the
budget, not the code.
"""

import json
import sys

THROUGHPUT_DROP = 0.25  # fail below 75% of baseline
LATENCY_RISE = 0.50  # fail above 150% of baseline

# section -> (throughput key, latency key); None = not applicable
SECTIONS = {
    "churn": ("activations_per_sec", "recovery_p99"),
    "explore_scale": ("configs_per_sec_jobs4", None),
}


def rows_by_instance(report, section):
    return {r["instance"]: r for r in report.get(section, [])}


def complete(row):
    # churn rows are always complete (the campaign runs to its horizon);
    # explore_scale rows carry an explicit flag.
    return row.get("complete", True)


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip().splitlines()[2])
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        current = json.load(f)

    failures = []
    compared = 0
    for section, (tp_key, lat_key) in SECTIONS.items():
        base_rows = rows_by_instance(baseline, section)
        cur_rows = rows_by_instance(current, section)
        for name in sorted(set(base_rows) | set(cur_rows)):
            if name not in base_rows:
                print(f"{section}/{name}: not in baseline, skipped "
                      "(regenerate BENCH_seed.json to gate it)")
                continue
            if name not in cur_rows:
                print(f"{section}/{name}: not in current run, skipped")
                continue
            base, cur = base_rows[name], cur_rows[name]
            if not (complete(base) and complete(cur)):
                print(f"{section}/{name}: truncated leg, skipped")
                continue
            compared += 1
            b_tp, c_tp = base.get(tp_key), cur.get(tp_key)
            if b_tp and c_tp is not None:
                ratio = c_tp / b_tp
                verdict = "OK"
                if ratio < 1.0 - THROUGHPUT_DROP:
                    verdict = "FAIL"
                    failures.append(
                        f"{section}/{name}: throughput regression — "
                        f"{tp_key} {c_tp:.0f} is {ratio:.0%} of baseline "
                        f"{b_tp:.0f} (floor {1.0 - THROUGHPUT_DROP:.0%})")
                print(f"{section}/{name}: {tp_key} {c_tp:.0f} vs baseline "
                      f"{b_tp:.0f} ({ratio:.0%}) {verdict}")
            if lat_key is not None:
                b_lat, c_lat = base.get(lat_key), cur.get(lat_key)
                if b_lat is not None and c_lat is not None and b_lat > 0:
                    ratio = c_lat / b_lat
                    verdict = "OK"
                    if ratio > 1.0 + LATENCY_RISE:
                        verdict = "FAIL"
                        failures.append(
                            f"{section}/{name}: latency regression — "
                            f"{lat_key} {c_lat} is {ratio:.0%} of baseline "
                            f"{b_lat} (ceiling {1.0 + LATENCY_RISE:.0%})")
                    print(f"{section}/{name}: {lat_key} {c_lat} vs baseline "
                          f"{b_lat} ({ratio:.0%}) {verdict}")

    if compared == 0:
        sys.exit("no matching complete rows between baseline and current "
                 "run — regenerate BENCH_seed.json")
    for f in failures:
        print(f, file=sys.stderr)
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
