#!/bin/sh
# Enforce per-directory coverage floors.
#
# Usage: check_coverage.sh SUMMARY BASELINE
#
#   SUMMARY  — output of `bisect-ppx-report summary --per-file`, i.e.
#              lines of the form " 86.67 %   lib/obs/obs.ml".
#   BASELINE — floors, one per line: "<prefix> <min-percent>",
#              '#' comments and blank lines ignored.  A prefix names
#              either a directory ("lib/util") or a module stem
#              ("lib/util/executor", matching executor.ml and any
#              executor_*.ml next to it).
#
# A prefix's coverage is the unweighted mean of its files' line
# coverage — crude but monotone, which is all a ratchet needs.  The
# check fails (exit 1) if any directory falls below its floor, and
# prints the measured numbers either way so CI logs double as a
# coverage dashboard.
set -eu

summary=${1:?summary file}
baseline=${2:?baseline file}

status=0
while read -r prefix floor; do
  case "$prefix" in ''|'#'*) continue ;; esac
  mean=$(awk -v p="$prefix" '
    $2 == "%" && (index($3, p "/") == 1 || index($3, p ".") == 1) \
      { sum += $1; n += 1 }
    END { if (n == 0) print "none"; else printf "%.2f", sum / n }
  ' "$summary")
  if [ "$mean" = "none" ]; then
    echo "coverage: $prefix — no files in summary" >&2
    status=1
    continue
  fi
  ok=$(awk -v m="$mean" -v f="$floor" 'BEGIN { print (m + 0 >= f + 0) ? "yes" : "no" }')
  if [ "$ok" = "yes" ]; then
    echo "coverage: $prefix ${mean}% (floor ${floor}%) ok"
  else
    echo "coverage: $prefix ${mean}% is below the ${floor}% floor" >&2
    status=1
  fi
done < "$baseline"

exit $status
