(* Tests for the observability layer: golden exports under a virtual
   clock (byte-for-byte), rejection of corrupt traces, qcheck properties
   (span trees well-nested; explorer counters equal the report at every
   jobs value), counter totals under a 4-domain hammer, and the
   line-atomicity of the shared sink that Diag now routes through. *)

module Obs = Asyncolor_obs.Obs
module Clock = Asyncolor_obs.Clock
module Sink = Asyncolor_obs.Sink
module Trace_export = Asyncolor_obs.Trace_export
module Diag = Asyncolor_resilience.Diag
module Builders = Asyncolor_topology.Builders

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

(* --- clock ----------------------------------------------------------- *)

let test_virtual_clock () =
  let c = Clock.virtual_ () in
  check Alcotest.int64 "first read" 0L (c ());
  check Alcotest.int64 "second read" 1000L (c ());
  check Alcotest.int64 "third read" 2000L (c ());
  let c250 = Clock.virtual_ ~step_ns:250L () in
  check Alcotest.int64 "custom step, first" 0L (c250 ());
  check Alcotest.int64 "custom step, second" 250L (c250 ())

let test_monotonic_clock_nondecreasing () =
  let prev = ref (Clock.monotonic ()) in
  for _ = 1 to 1000 do
    let t = Clock.monotonic () in
    if Int64.compare t !prev < 0 then Alcotest.fail "monotonic clock went back";
    prev := t
  done

(* --- golden exports --------------------------------------------------- *)

(* The fixed program behind both golden files: three spans (one on a
   named lane, with explicit tids so domain ids cannot leak into the
   bytes), two counters and a gauge, on a virtual clock.  Every clock
   read is one 1000 ns tick, so the timestamps below are knowable:
   root opens at 0, child spans 1000-2000, lane-work 3000-4000, root
   closes at 5000, and the export's counter sample lands at 6000. *)
let fixed_sink () =
  let o = Obs.create ~clock:(Clock.virtual_ ()) () in
  Obs.set_lane o ~tid:1 "worker-1";
  let items = Obs.counter o "items" in
  let retries = Obs.counter o "retries" in
  let frontier = Obs.gauge o "frontier_max" in
  let root = Obs.begin_span o ~tid:0 ~args:[ ("phase", "build") ] "root" in
  let child = Obs.begin_span o ~tid:0 ~parent:root "child" in
  Obs.Counter.add items 3;
  Obs.Gauge.max_ frontier 7;
  Obs.end_span o child;
  let lane =
    Obs.begin_span o ~tid:1 ~parent:root ~args:[ ("item", "0") ] "lane-work"
  in
  Obs.Counter.incr items;
  Obs.Counter.incr retries;
  Obs.end_span o lane;
  Obs.end_span o root;
  o

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let golden name = Filename.concat "golden" name

(* Regeneration hook: ASYNCOLOR_REGEN_GOLDEN=1 rewrites the committed
   files instead of comparing (run from test/, then review the diff). *)
let regen = Sys.getenv_opt "ASYNCOLOR_REGEN_GOLDEN" <> None

let check_golden name actual =
  if regen then write_file (golden name) actual
  else check Alcotest.string name (read_file (golden name)) actual

let test_golden_chrome () =
  let o = fixed_sink () in
  (* one chrome_string call only: the export itself reads the virtual
     clock once (the counter-sample instant), so a second call would
     move the bytes *)
  check_golden "trace_fixed.json" (Trace_export.chrome_string o)

let test_golden_metrics () =
  let o = fixed_sink () in
  check_golden "metrics_fixed.txt" (Trace_export.metrics_table o)

let test_golden_is_valid () =
  let o = fixed_sink () in
  match Trace_export.validate_string (Trace_export.chrome_string o) with
  | Ok n -> check Alcotest.int "events" 7 n
  | Error e -> Alcotest.failf "golden trace rejected: %s" e

(* --- validator: corrupt and truncated traces -------------------------- *)

let expect_invalid what s =
  match Trace_export.validate_string s with
  | Ok _ -> Alcotest.failf "%s: expected rejection" what
  | Error msg ->
      if String.length msg = 0 then Alcotest.failf "%s: empty error" what

let test_validate_rejects () =
  let good = Trace_export.chrome_string (fixed_sink ()) in
  (* truncation at every eighth byte: no prefix may validate *)
  let len = String.length good in
  let i = ref 1 in
  while !i < len do
    expect_invalid
      (Printf.sprintf "truncated at %d" !i)
      (String.sub good 0 !i);
    i := !i + 8
  done;
  expect_invalid "not JSON at all" "ceci n'est pas une trace";
  expect_invalid "no traceEvents" "{\"displayTimeUnit\": \"ms\"}";
  expect_invalid "traceEvents not an array" "{\"traceEvents\": 3}";
  expect_invalid "event not an object" "{\"traceEvents\": [42]}";
  expect_invalid "event without ph"
    "{\"traceEvents\": [{\"name\":\"x\",\"pid\":0,\"tid\":0}]}";
  expect_invalid "unknown phase"
    "{\"traceEvents\": [{\"ph\":\"Z\",\"name\":\"x\",\"pid\":0,\"tid\":0}]}";
  expect_invalid "complete event without ts"
    "{\"traceEvents\": [{\"ph\":\"X\",\"name\":\"x\",\"pid\":0,\"tid\":0}]}";
  expect_invalid "negative dur"
    "{\"traceEvents\": \
     [{\"ph\":\"X\",\"name\":\"x\",\"pid\":0,\"tid\":0,\"ts\":1,\"dur\":-1}]}";
  expect_invalid "trailing bytes" "{\"traceEvents\": []} garbage"

let test_validate_accepts_minimal () =
  match Trace_export.validate_string "{\"traceEvents\": []}" with
  | Ok 0 -> ()
  | Ok n -> Alcotest.failf "expected 0 events, got %d" n
  | Error e -> Alcotest.failf "minimal trace rejected: %s" e

let test_validate_missing_file () =
  match Trace_export.validate "no-such-file.json" with
  | Ok _ -> Alcotest.fail "missing file accepted"
  | Error _ -> ()

(* --- disabled sink is inert ------------------------------------------- *)

let test_disabled_noop () =
  let o = Obs.disabled in
  check Alcotest.bool "disabled" false (Obs.enabled o);
  check Alcotest.int64 "now is 0" 0L (Obs.now o);
  let c = Obs.counter o "c" in
  Obs.Counter.add c 41;
  check Alcotest.int "counter ignores writes" 0 (Obs.Counter.value c);
  let g = Obs.gauge o "g" in
  Obs.Gauge.set g 9;
  Obs.Gauge.max_ g 11;
  check Alcotest.int "gauge ignores writes" 0 (Obs.Gauge.value g);
  let v = Obs.span o "s" (fun () -> 17) in
  check Alcotest.int "span passes the value through" 17 v;
  check Alcotest.int "no spans recorded" 0 (List.length (Obs.spans o));
  check Alcotest.int "no metrics recorded" 0 (List.length (Obs.metrics o))

(* --- qcheck: span trees are well-nested ------------------------------- *)

(* Interpret a list of small ints as a stack program over one sink:
   open a child of the current top, or close the top.  Whatever the
   program, every recorded span must have a non-negative duration and
   lie within its parent's interval. *)
let run_span_program ops =
  let o = Obs.create ~clock:(Clock.virtual_ ()) () in
  let stack = ref [] in
  List.iter
    (fun op ->
      let close = op mod 3 = 2 && !stack <> [] in
      if close then begin
        match !stack with
        | sp :: rest ->
            Obs.end_span o sp;
            stack := rest
        | [] -> assert false
      end
      else begin
        let parent = match !stack with sp :: _ -> Some sp | [] -> None in
        let sp =
          Obs.begin_span o ~tid:0 ?parent
            (Printf.sprintf "s%d" (op mod 7))
        in
        stack := sp :: !stack
      end)
    ops;
  List.iter (fun sp -> Obs.end_span o sp) !stack;
  Obs.spans o

let prop_spans_well_nested =
  QCheck.Test.make ~name:"span trees are well-nested under a virtual clock"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 0 40) small_nat)
    (fun ops ->
      let spans = run_span_program ops in
      let by_sid = Hashtbl.create 16 in
      List.iter
        (fun (r : Obs.span_record) -> Hashtbl.replace by_sid r.r_sid r)
        spans;
      List.for_all
        (fun (r : Obs.span_record) ->
          Int64.compare r.r_dur 0L >= 0
          &&
          match Hashtbl.find_opt by_sid r.r_parent with
          | None -> r.r_parent = -1
          | Some p ->
              let endp = Int64.add p.r_start p.r_dur in
              let endr = Int64.add r.r_start r.r_dur in
              Int64.compare p.r_start r.r_start <= 0
              && Int64.compare endr endp <= 0)
        spans)

(* --- qcheck: explorer counters equal the report, any jobs ------------- *)

let idents_pool = [| 5; 1; 9; 4; 7; 2 |]

let prop_explorer_counters_match_report =
  let module Exp = Asyncolor_check.Explorer.Make (Asyncolor.Algorithm2.P) in
  QCheck.Test.make
    ~name:"explorer.configs/transitions = report, jobs 1/2/4" ~count:12
    QCheck.(pair (int_range 3 4) (int_range 0 119))
    (fun (n, perm) ->
      (* pick n distinct identifiers from the pool, order keyed by perm *)
      let idents = Array.sub idents_pool 0 n in
      let k = ref perm in
      for i = n - 1 downto 1 do
        let j = !k mod (i + 1) in
        k := !k / (i + 1);
        let t = idents.(i) in
        idents.(i) <- idents.(j);
        idents.(j) <- t
      done;
      let graph = Builders.cycle n in
      List.for_all
        (fun jobs ->
          let o = Obs.create ~clock:(Clock.virtual_ ()) () in
          let r = Exp.explore ~jobs ~obs:o graph ~idents in
          let m = Obs.metrics o in
          List.assoc "explorer.configs" m = r.configs
          && List.assoc "explorer.transitions" m = r.transitions)
        [ 1; 2; 4 ])

let test_resume_counts_only_new () =
  (* The documented resume contract: explorer.configs counts only the
     configurations interned after the resume point. *)
  let module Exp = Asyncolor_check.Explorer.Make (Asyncolor.Algorithm2.P) in
  let graph = Builders.cycle 4 in
  let idents = [| 5; 1; 9; 4 |] in
  let full = Exp.explore graph ~idents in
  let path = Filename.temp_file "asyncolor-obs-resume" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let cut = 500 in
      let partial =
        Exp.explore ~checkpoint:(path, 100_000)
          ~stop:(fun ~configs -> configs >= cut)
          graph ~idents
      in
      check Alcotest.bool "partial run is incomplete" false partial.complete;
      let o = Obs.create ~clock:(Clock.virtual_ ()) () in
      let resumed = Exp.explore_resume ~obs:o path in
      check Alcotest.int "resumed run completes the graph" full.configs
        resumed.configs;
      let counted = List.assoc "explorer.configs" (Obs.metrics o) in
      (* the checkpoint held partial.configs interned configurations, so
         the resumed run interns (and counts) exactly the rest *)
      check Alcotest.int "counts only post-resume configs"
        (full.configs - partial.configs)
        counted)

(* --- counters under a 4-domain hammer --------------------------------- *)

let test_counter_totals_parallel () =
  let o = Obs.create ~clock:(Clock.virtual_ ()) () in
  let c = Obs.counter o "hammer" in
  let per_domain = 50_000 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.Counter.add c (d + 1)
            done))
  in
  List.iter Domain.join domains;
  check Alcotest.int "merged total" (per_domain * (1 + 2 + 3 + 4))
    (Obs.Counter.value c);
  let g = Obs.gauge o "peak" in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 1000 do
              Obs.Gauge.max_ g ((d * 1000) + i)
            done))
  in
  List.iter Domain.join domains;
  check Alcotest.int "gauge keeps the maximum" 4000 (Obs.Gauge.value g)

(* --- the shared sink: Diag and metrics interleave line-atomically ----- *)

let test_sink_line_atomicity_mixed () =
  (* Diag is now a façade over Sink — hammer both entry points from 4
     domains at once and require every line to come out whole. *)
  let path = Filename.temp_file "asyncolor-sink" ".log" in
  let oc = open_out path in
  Sink.set_channel oc;
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 199 do
              if (d + i) mod 2 = 0 then
                Diag.printf "diag domain=%d line=%d pad=%s\n" d i
                  (String.make 25 (Char.chr (Char.code 'a' + d)))
              else
                Sink.emit
                  (Printf.sprintf "emit domain=%d line=%d pad=%s\n" d i
                     (String.make 25 (Char.chr (Char.code 'a' + d))))
            done))
  in
  List.iter Domain.join domains;
  Sink.set_channel stderr;
  close_out oc;
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       match String.split_on_char ' ' line with
       | [ kind; d; _i; pad ] ->
           if kind <> "diag" && kind <> "emit" then
             Alcotest.failf "bad kind: %s" line;
           let dv = Scanf.sscanf d "domain=%d" Fun.id in
           let expect =
             "pad=" ^ String.make 25 (Char.chr (Char.code 'a' + dv))
           in
           if pad <> expect then Alcotest.failf "spliced line: %s" line
       | _ -> Alcotest.failf "malformed line: %s" line
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  check Alcotest.int "all 800 lines intact" 800 !lines

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "virtual clock ticks" `Quick test_virtual_clock;
          Alcotest.test_case "monotonic never goes back" `Quick
            test_monotonic_clock_nondecreasing;
        ] );
      ( "golden",
        [
          Alcotest.test_case "chrome trace, byte-for-byte" `Quick
            test_golden_chrome;
          Alcotest.test_case "metrics table, byte-for-byte" `Quick
            test_golden_metrics;
          Alcotest.test_case "golden trace self-validates" `Quick
            test_golden_is_valid;
        ] );
      ( "validate",
        [
          Alcotest.test_case "rejects corrupt/truncated" `Quick
            test_validate_rejects;
          Alcotest.test_case "accepts minimal" `Quick
            test_validate_accepts_minimal;
          Alcotest.test_case "missing file is an Error" `Quick
            test_validate_missing_file;
        ] );
      ( "sink",
        [
          Alcotest.test_case "disabled sink is inert" `Quick test_disabled_noop;
          qtest prop_spans_well_nested;
          Alcotest.test_case "counter totals, 4 domains" `Quick
            test_counter_totals_parallel;
          Alcotest.test_case "Diag+emit line atomicity, 4 domains" `Quick
            test_sink_line_atomicity_mixed;
        ] );
      ( "explorer",
        [
          qtest prop_explorer_counters_match_report;
          Alcotest.test_case "resume counts only new configs" `Quick
            test_resume_counts_only_new;
        ] );
    ]
