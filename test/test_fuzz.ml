(* Tests for the fault-injection fuzzer: scenario generation and
   validation, trace round-trips (including rejection of damaged files),
   counterexample shrinking, campaign determinism across job counts, and
   mutation testing of the invariant detectors — every planted bug must
   be caught within a small, fixed exec budget. *)

module Scenario = Asyncolor_fuzz.Scenario
module Mutation = Asyncolor_fuzz.Mutation
module Exec = Asyncolor_fuzz.Exec
module Trace = Asyncolor_fuzz.Trace
module Shrink = Asyncolor_fuzz.Shrink
module Fuzz = Asyncolor_fuzz.Fuzz
module Checkpoint = Asyncolor_resilience.Checkpoint
module Prng = Asyncolor_util.Prng

let check = Alcotest.check

let with_temp f =
  let path = Filename.temp_file "asyncolor-trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* --- Scenario generation -------------------------------------------- *)

let test_generate_valid () =
  let prng = Prng.create ~seed:11 in
  for _ = 1 to 200 do
    let sc = Scenario.generate prng in
    Scenario.validate sc;
    check Alcotest.bool "has steps" true (Scenario.steps sc >= 1)
  done

let test_generate_deterministic () =
  let gen seed =
    let prng = Prng.create ~seed in
    List.init 20 (fun _ -> Scenario.generate prng)
  in
  check Alcotest.bool "same seed, same scenarios" true (gen 3 = gen 3);
  check Alcotest.bool "different seed, different scenarios" true
    (gen 3 <> gen 4)

let test_validate_rejects () =
  let prng = Prng.create ~seed:5 in
  let sc = Scenario.generate prng in
  let n = Scenario.graph_n sc.graph in
  Alcotest.check_raises "schedule index out of range"
    (Invalid_argument
       (Printf.sprintf
          "Scenario.validate: schedule names process %d outside [0, %d)" n n))
    (fun () -> Scenario.validate { sc with schedule = [ [ n ] ] });
  Alcotest.check_raises "duplicate identifiers"
    (Invalid_argument "Scenario.validate: identifiers must be pairwise distinct")
    (fun () -> Scenario.validate { sc with idents = Array.make n 1 })

(* A clean (unmutated) scenario must never trip any detector: the
   invariant suite is calibrated against the real algorithms, so a
   finding here would be a false positive (or a real bug). *)
let test_clean_scenarios_pass () =
  let prng = Prng.create ~seed:99 in
  for _ = 1 to 300 do
    let sc = Scenario.generate prng in
    let out = Exec.run sc in
    (match out.Exec.violations with
    | [] -> ()
    | v :: _ ->
        Alcotest.failf "clean scenario violated %s (%s): %a" v.Exec.invariant
          v.Exec.message Scenario.pp sc)
  done

(* --- Replay determinism --------------------------------------------- *)

let test_replay_identical () =
  let prng = Prng.create ~seed:21 in
  for _ = 1 to 50 do
    let sc = Scenario.generate prng in
    let a = Exec.run sc and b = Exec.run sc in
    check Alcotest.bool "same verdict" true
      (a.Exec.violations = b.Exec.violations);
    check Alcotest.bool "same event stream" true (a.Exec.events = b.Exec.events);
    check Alcotest.bool "same outputs" true (a.Exec.outputs = b.Exec.outputs)
  done

(* --- Trace round-trip ------------------------------------------------ *)

let failing_scenario () =
  (* First skip-read counterexample of the seed-7 campaign; deterministic. *)
  match Fuzz.run_one ~mutation:"skip-read" ~seed:7 0 with
  | Some f -> f
  | None -> Alcotest.fail "seed-7 exec 0 no longer finds the skip-read bug"

let test_trace_roundtrip () =
  let f = failing_scenario () in
  with_temp (fun path ->
      Trace.save ~path f.Fuzz.trace;
      let t = Trace.load path in
      check Alcotest.bool "trace round-trips" true (t = f.Fuzz.trace);
      (* Replaying the loaded trace reproduces verdict and event stream. *)
      let outcome, reproduced = Fuzz.replay t in
      check Alcotest.bool "violations reproduce" true reproduced;
      let original = Exec.run f.Fuzz.trace.scenario in
      check Alcotest.bool "event stream reproduces" true
        (outcome.Exec.events = original.Exec.events))

let expect_corrupt what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Corrupt" what
  | exception Checkpoint.Corrupt _ -> ()

let test_trace_corruption () =
  let f = failing_scenario () in
  with_temp (fun path ->
      Trace.save ~path f.Fuzz.shrunk;
      let bytes_of p =
        let ic = open_in_bin p in
        let len = in_channel_length ic in
        let b = really_input_string ic len in
        close_in ic;
        b
      in
      let write p s =
        let oc = open_out_bin p in
        output_string oc s;
        close_out oc
      in
      let original = bytes_of path in
      (* Flip one payload byte: digest check must catch it. *)
      let flipped = Bytes.of_string original in
      let i = String.length original - 3 in
      Bytes.set flipped i (Char.chr (Char.code (Bytes.get flipped i) lxor 0x40));
      write path (Bytes.to_string flipped);
      expect_corrupt "flipped byte" (fun () -> Trace.load path);
      (* Truncate: length check must catch it. *)
      write path (String.sub original 0 (String.length original / 2));
      expect_corrupt "truncated" (fun () -> Trace.load path);
      (* A valid container holding some other payload: fingerprint check. *)
      Checkpoint.save ~path ~version:Trace.version ("not-a-trace", 42);
      expect_corrupt "wrong fingerprint" (fun () -> Trace.load path);
      (* A structurally invalid scenario inside a valid container. *)
      let bad =
        {
          f.Fuzz.shrunk with
          Trace.scenario =
            { f.Fuzz.shrunk.scenario with Scenario.schedule = [ [ 999 ] ] };
        }
      in
      Checkpoint.save ~path ~version:Trace.version ("asyncolor-fuzz-trace", bad);
      expect_corrupt "invalid scenario" (fun () -> Trace.load path);
      (* And the pristine bytes still load. *)
      write path original;
      check Alcotest.bool "pristine still loads" true
        (Trace.load path = f.Fuzz.shrunk))

(* --- Shrinking ------------------------------------------------------- *)

let test_shrink_preserves_failure () =
  let f = failing_scenario () in
  let sc = f.Fuzz.trace.scenario in
  let invariant = f.Fuzz.invariant in
  let small, stats = Shrink.minimize sc ~invariant in
  check Alcotest.bool "shrunk still fails the same invariant" true
    (Exec.fails_invariant small ~invariant);
  check Alcotest.bool "no larger than the original" true
    (Scenario.size small <= Scenario.size sc);
  check Alcotest.bool "did some work" true (stats.Shrink.execs > 0);
  (* Deterministic: same input, same minimum. *)
  let small', stats' = Shrink.minimize sc ~invariant in
  check Alcotest.bool "deterministic minimum" true
    (small = small' && stats = stats')

let test_shrink_budget () =
  let f = failing_scenario () in
  let sc = f.Fuzz.trace.scenario in
  let small, stats = Shrink.minimize ~max_execs:5 sc ~invariant:f.Fuzz.invariant in
  check Alcotest.bool "budget respected" true (stats.Shrink.execs <= 5);
  check Alcotest.bool "still failing even when cut short" true
    (Exec.fails_invariant small ~invariant:f.Fuzz.invariant)

(* --- Churn dimension -------------------------------------------------- *)

let churn_events_well_formed (sc : Scenario.t) =
  let steps = Scenario.steps sc in
  List.for_all
    (fun (e : Scenario.churn_event) ->
      1 <= e.crash_at && e.crash_at <= e.recover_at && e.recover_at <= steps)
    sc.churn

let test_churn_generation () =
  (* Scenarios for a churn mutation always carry at least one event —
     that is where those bugs live — and unmutated generation mixes
     churn-bearing and static scenarios. *)
  let prng = Prng.create ~seed:23 in
  for _ = 1 to 100 do
    let sc = Scenario.generate ~mutation:"churn-zombie" prng in
    Scenario.validate sc;
    check Alcotest.bool "churn mutant scenarios churn" true (sc.churn <> [])
  done;
  let prng = Prng.create ~seed:23 in
  let with_churn = ref 0 and without = ref 0 in
  for _ = 1 to 200 do
    let sc = Scenario.generate prng in
    if sc.churn = [] then incr without else incr with_churn
  done;
  check Alcotest.bool "unmutated generation mixes both" true
    (!with_churn > 0 && !without > 0);
  (* ... and protocol mutants stay purely static, keeping their
     catch-rate calibration intact. *)
  let prng = Prng.create ~seed:23 in
  for _ = 1 to 100 do
    let sc = Scenario.generate ~mutation:"skip-read" prng in
    check Alcotest.bool "protocol mutants never churn" true (sc.churn = [])
  done

let churny_scenario () =
  let prng = Prng.create ~seed:31 in
  let rec go n =
    if n = 0 then Alcotest.fail "no churn-bearing scenario in 500 draws"
    else
      let sc = Scenario.generate ~mutation:"churn-zombie" prng in
      if List.length sc.churn >= 2 then sc else go (n - 1)
  in
  go 500

let test_drop_churn_event_atomic () =
  let sc = churny_scenario () in
  let events = List.length sc.churn in
  for i = 0 to events - 1 do
    match Scenario.drop_churn_event sc i with
    | None -> Alcotest.failf "event %d: in range but not dropped" i
    | Some sc' ->
        Scenario.validate sc';
        check Alcotest.int "exactly one pair gone" (events - 1)
          (List.length sc'.churn);
        check Alcotest.bool "strictly smaller" true
          (Scenario.weight sc' < Scenario.weight sc);
        check Alcotest.bool "remaining pairs intact" true
          (churn_events_well_formed sc')
  done;
  check Alcotest.bool "out of range" true
    (Scenario.drop_churn_event sc events = None)

let test_drop_steps_never_strands_a_crash () =
  (* Truncating the schedule must never leave a crash without its
     recovery: a pair whose recovery no longer fits is dropped whole. *)
  let prng = Prng.create ~seed:37 in
  for _ = 1 to 100 do
    let sc = Scenario.generate ~mutation:"churn-collide" prng in
    let steps = Scenario.steps sc in
    List.iter
      (fun (lo, len) ->
        if lo < steps && len > 0 then begin
          let len = min len (steps - lo) in
          let sc' = Scenario.drop_steps sc ~lo ~len in
          Scenario.validate sc';
          check Alcotest.bool "no stranded crash" true
            (churn_events_well_formed sc')
        end)
      [
        (0, steps);
        (0, steps / 2);
        (steps / 2, steps - (steps / 2));
        (steps / 3, steps / 3);
        (0, 1);
        (steps - 1, 1);
      ]
  done

let churn_finding () =
  (* First churn-zombie counterexample of the seed-7 campaign — the same
     deterministic anchor the mutation-testing suite uses. *)
  match Fuzz.run_one ~mutation:"churn-zombie" ~seed:7 0 with
  | Some f -> f
  | None -> Alcotest.fail "seed-7 exec 0 no longer finds the churn-zombie bug"

let test_shrink_keeps_churn_pairs () =
  let f = churn_finding () in
  let sc = f.Fuzz.trace.scenario in
  let invariant = f.Fuzz.invariant in
  check Alcotest.string "a churn detector fired" "churn-reinit" invariant;
  let small, _stats = Shrink.minimize sc ~invariant in
  (* The minimum is still a valid churn scenario: ddmin worked over
     whole crash-recovery pairs and never separated a recovery from its
     crash. *)
  Scenario.validate small;
  check Alcotest.bool "pairs survive minimisation intact" true
    (churn_events_well_formed small);
  check Alcotest.bool "the bug needs churn, so some event survives" true
    (small.churn <> []);
  check Alcotest.bool "shrunk still fails the same churn detector" true
    (Exec.fails_invariant small ~invariant);
  check Alcotest.bool "no larger than the original" true
    (Scenario.size small <= Scenario.size sc)

(* --- Campaigns ------------------------------------------------------- *)

let finding_summary (f : Fuzz.finding) =
  (f.exec, f.invariant, f.trace, f.shrunk, f.shrink_stats)

let test_campaign_jobs_deterministic () =
  let run jobs =
    let r = Fuzz.campaign ~jobs ~mutation:"skip-read" ~seed:7 ~execs:30 () in
    (r.execs_done, r.complete, List.map finding_summary r.findings)
  in
  let r1 = run 1 in
  check Alcotest.bool "jobs=2 identical" true (r1 = run 2);
  check Alcotest.bool "jobs=4 identical" true (r1 = run 4);
  check Alcotest.bool "found something" true
    (match r1 with _, _, _ :: _ -> true | _ -> false)

let test_campaign_clean () =
  let r = Fuzz.campaign ~jobs:2 ~seed:42 ~execs:300 () in
  check Alcotest.int "no findings on the real algorithms" 0
    (List.length r.findings);
  check Alcotest.bool "complete" true r.complete;
  check Alcotest.int "all execs done" 300 r.execs_done

let test_campaign_corpus () =
  let dir = Filename.temp_file "asyncolor-corpus" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then (
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir))
    (fun () ->
      let r =
        Fuzz.campaign ~jobs:2 ~mutation:"skip-read" ~seed:7 ~execs:5
          ~corpus_dir:dir ()
      in
      check Alcotest.bool "found something" true (r.findings <> []);
      List.iter
        (fun (f : Fuzz.finding) ->
          let raw, min = Fuzz.trace_paths ~dir f.exec in
          check Alcotest.bool "raw trace persisted" true
            (Trace.load raw = f.trace);
          check Alcotest.bool "shrunk trace persisted" true
            (Trace.load min = f.shrunk))
        r.findings)

let test_campaign_stop () =
  let r = Fuzz.campaign ~stop:(fun () -> true) ~seed:1 ~execs:50 () in
  check Alcotest.bool "truncated" false r.complete;
  check Alcotest.int "nothing executed" 0 r.execs_done

(* --- Mutation testing ------------------------------------------------ *)

(* Each planted bug must be caught within this many execs of the fixed
   seed-7 campaign — a regression here means a detector got weaker. *)
let mutant_budget = function "guard-never" -> 12 | _ -> 8

let expected_invariant = function
  | "skip-read" | "guard-always" -> "proper"
  | "guard-never" -> "activation-bound"
  | "palette-off-by-one" -> "palette"
  | "churn-zombie" -> "churn-reinit"
  | "churn-collide" -> "churn-fresh-ident"
  | m -> Alcotest.failf "unexpected mutant %s" m

let test_mutants_caught () =
  List.iter
    (fun (i : Mutation.info) ->
      let r =
        Fuzz.campaign ~jobs:2 ~mutation:i.name ~seed:7
          ~execs:(mutant_budget i.name) ()
      in
      match r.findings with
      | [] -> Alcotest.failf "mutant %s escaped its exec budget" i.name
      | f :: _ ->
          check Alcotest.string
            (Printf.sprintf "mutant %s caught by the right detector" i.name)
            (expected_invariant i.name) f.invariant;
          (* The shrunk counterexample still exhibits the violation. *)
          check Alcotest.bool "shrunk reproduces" true
            (Exec.fails_invariant f.shrunk.scenario ~invariant:f.invariant))
    Mutation.all

let test_unknown_mutant_rejected () =
  Alcotest.check_raises "unknown mutation"
    (Invalid_argument "Fuzz: unknown mutation \"no-such-bug\"") (fun () ->
      ignore (Fuzz.run_one ~mutation:"no-such-bug" ~seed:1 0))

let () =
  Alcotest.run "fuzz"
    [
      ( "scenario",
        [
          Alcotest.test_case "generated scenarios are valid" `Quick
            test_generate_valid;
          Alcotest.test_case "generation is seed-deterministic" `Quick
            test_generate_deterministic;
          Alcotest.test_case "validate rejects malformed scenarios" `Quick
            test_validate_rejects;
          Alcotest.test_case "clean scenarios trip no detector" `Quick
            test_clean_scenarios_pass;
          Alcotest.test_case "replay is bit-identical" `Quick
            test_replay_identical;
        ] );
      ( "trace",
        [
          Alcotest.test_case "save/load round-trip and replay" `Quick
            test_trace_roundtrip;
          Alcotest.test_case "corrupt files are rejected" `Quick
            test_trace_corruption;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "minimum still fails, deterministically" `Quick
            test_shrink_preserves_failure;
          Alcotest.test_case "exec budget is honoured" `Quick test_shrink_budget;
        ] );
      ( "churn",
        [
          Alcotest.test_case "generation respects the churn dimension" `Quick
            test_churn_generation;
          Alcotest.test_case "drop_churn_event is pair-atomic" `Quick
            test_drop_churn_event_atomic;
          Alcotest.test_case "drop_steps never strands a crash" `Quick
            test_drop_steps_never_strands_a_crash;
          Alcotest.test_case "minimisation keeps pairs intact" `Quick
            test_shrink_keeps_churn_pairs;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "byte-identical across --jobs" `Quick
            test_campaign_jobs_deterministic;
          Alcotest.test_case "clean algorithms yield no findings" `Quick
            test_campaign_clean;
          Alcotest.test_case "corpus persists every finding" `Quick
            test_campaign_corpus;
          Alcotest.test_case "stop flag truncates cleanly" `Quick
            test_campaign_stop;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "every planted bug is caught" `Quick
            test_mutants_caught;
          Alcotest.test_case "unknown mutants are rejected" `Quick
            test_unknown_mutant_rejected;
        ] );
    ]
