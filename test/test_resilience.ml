(* Tests for the resilience layer: checkpoint container round-trips and
   rejection of damaged files, resource budgets, cooperative stop, and
   line-atomic diagnostics. *)

module Checkpoint = Asyncolor_resilience.Checkpoint
module Spill = Asyncolor_resilience.Spill
module Budget = Asyncolor_resilience.Budget
module Stop = Asyncolor_resilience.Stop
module Diag = Asyncolor_resilience.Diag

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

let with_temp f =
  let path = Filename.temp_file "asyncolor-ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* --- Checkpoint ----------------------------------------------------- *)

type payload = {
  ints : int array;
  name : string;
  pairs : (int * int) list;
}

let prop_checkpoint_roundtrip =
  QCheck.Test.make ~name:"checkpoint save/load round-trip"
    QCheck.(triple (array small_int) string (list (pair small_int small_int)))
    (fun (ints, name, pairs) ->
      with_temp (fun path ->
          let v = { ints; name; pairs } in
          Checkpoint.save ~path ~version:7 v;
          let (v' : payload) = Checkpoint.load ~path ~version:7 in
          v' = v))

let expect_corrupt what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Corrupt" what
  | exception Checkpoint.Corrupt _ -> ()

let test_checkpoint_version_mismatch () =
  with_temp (fun path ->
      Checkpoint.save ~path ~version:1 [| 1; 2; 3 |];
      expect_corrupt "version bumped" (fun () ->
          (Checkpoint.load ~path ~version:2 : int array)))

let test_checkpoint_bad_magic () =
  with_temp (fun path ->
      Checkpoint.save ~path ~version:1 "hello";
      let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
      output_string oc "X";
      close_out oc;
      expect_corrupt "magic flipped" (fun () ->
          (Checkpoint.load ~path ~version:1 : string)))

let test_checkpoint_payload_corruption () =
  with_temp (fun path ->
      Checkpoint.save ~path ~version:1 (Array.init 64 Fun.id);
      (* flip one byte of the payload (past the 48-byte header) *)
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let all = really_input_string ic len in
      close_in ic;
      let b = Bytes.of_string all in
      Bytes.set b (48 + ((len - 48) / 2))
        (Char.chr (Char.code (Bytes.get b (48 + ((len - 48) / 2))) lxor 0xff));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      expect_corrupt "digest must fail" (fun () ->
          (Checkpoint.load ~path ~version:1 : int array)))

let test_checkpoint_truncation () =
  with_temp (fun path ->
      Checkpoint.save ~path ~version:1 (String.make 1000 'x');
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let keep = really_input_string ic (len - 17) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc keep;
      close_out oc;
      expect_corrupt "truncated payload" (fun () ->
          (Checkpoint.load ~path ~version:1 : string)));
  expect_corrupt "missing file" (fun () ->
      (Checkpoint.load ~path:"/nonexistent/ckpt.bin" ~version:1 : int))

let test_checkpoint_overwrite_atomic () =
  with_temp (fun path ->
      Checkpoint.save ~path ~version:1 "first";
      Checkpoint.save ~path ~version:1 "second";
      check Alcotest.string "last write wins"
        "second"
        (Checkpoint.load ~path ~version:1);
      check Alcotest.bool "no temp file left behind" false
        (Sys.file_exists (path ^ ".tmp")))

(* --- Spill ----------------------------------------------------------- *)

(* Spilled levels are Checkpoint containers, so they inherit the whole
   damage taxonomy above — but a run owns many level files, so every
   Corrupt raised through [Spill.read] must carry the offending file's
   path in its message. *)

let with_temp_spill f =
  let dir = Filename.temp_file "asyncolor-spill" ".d" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f (Spill.create ~dir))

let expect_corrupt_with_path what path f =
  match f () with
  | (_ : int array) -> Alcotest.failf "%s: expected Corrupt" what
  | exception Checkpoint.Corrupt msg ->
      check Alcotest.bool (what ^ ": message names the file") true
        (Astring.String.is_infix ~affix:path msg)

(* Rewrite a level file through an arbitrary byte-level mutation. *)
let damage path mutate =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.of_string (really_input_string ic len) in
  close_in ic;
  let b = mutate b in
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let prop_spill_roundtrip =
  QCheck.Test.make ~name:"spill write/read round-trip (delta codec)"
    QCheck.(array int)
    (fun words ->
      with_temp_spill (fun sp ->
          let bytes = Spill.write sp ~level:0 words in
          bytes > 0
          && Spill.read sp ~level:0 = words
          && Spill.bytes_written sp = bytes
          && Spill.bytes_read sp = bytes
          && Spill.levels_on_disk sp = 1
          && Spill.files sp = [ Filename.basename (Spill.path sp ~level:0) ]))

let test_spill_truncated () =
  with_temp_spill (fun sp ->
      ignore (Spill.write sp ~level:3 (Array.init 200 (fun i -> i * i)));
      let path = Spill.path sp ~level:3 in
      damage path (fun b -> Bytes.sub b 0 (Bytes.length b - 9));
      expect_corrupt_with_path "truncated level" path (fun () ->
          Spill.read sp ~level:3))

let test_spill_bit_flip () =
  with_temp_spill (fun sp ->
      ignore (Spill.write sp ~level:0 (Array.init 500 (fun i -> 3 * i)));
      let path = Spill.path sp ~level:0 in
      damage path (fun b ->
          (* flip one payload byte past the 48-byte container header *)
          let i = 48 + ((Bytes.length b - 48) / 2) in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
          b);
      expect_corrupt_with_path "bit-flipped level" path (fun () ->
          Spill.read sp ~level:0))

let test_spill_bad_magic () =
  with_temp_spill (fun sp ->
      ignore (Spill.write sp ~level:1 [| 42 |]);
      let path = Spill.path sp ~level:1 in
      damage path (fun b ->
          Bytes.set b 0 'X';
          b);
      expect_corrupt_with_path "bad magic" path (fun () ->
          Spill.read sp ~level:1))

let test_spill_missing_level () =
  with_temp_spill (fun sp ->
      ignore (Spill.write sp ~level:0 [| 1; 2; 3 |]);
      expect_corrupt_with_path "level never written"
        (Spill.path sp ~level:7)
        (fun () -> Spill.read sp ~level:7))

let test_spill_version_skew () =
  with_temp_spill (fun sp ->
      (* a well-formed container of the wrong version at the level path:
         what a file from a future release would look like *)
      Checkpoint.save ~path:(Spill.path sp ~level:2) ~version:31337
        [| 1; 2; 3 |];
      expect_corrupt_with_path "version skew"
        (Spill.path sp ~level:2)
        (fun () -> Spill.read sp ~level:2))

let test_spill_files_sorted () =
  with_temp_spill (fun sp ->
      List.iter
        (fun level -> ignore (Spill.write sp ~level [| level |]))
        [ 2; 0; 1 ];
      check
        Alcotest.(list string)
        "sorted regardless of write order"
        [ "level-000000.spill"; "level-000001.spill"; "level-000002.spill" ]
        (Spill.files sp);
      check Alcotest.int "three levels accounted" 3 (Spill.levels_on_disk sp))

(* --- Budget --------------------------------------------------------- *)

let test_budget_unlimited () =
  let b = Budget.create () in
  check Alcotest.bool "no limits never trips" false (Budget.exceeded b)

let test_budget_time_zero () =
  let b = Budget.create ~time_s:0.0 () in
  check Alcotest.bool "zero wall budget trips at once" true (Budget.exceeded b)

let test_budget_mem_tiny_and_sticky () =
  let b = Budget.create ~mem_words:1 () in
  check Alcotest.bool "one-word heap budget trips" true (Budget.exceeded b);
  check Alcotest.bool "stays tripped" true (Budget.exceeded b)

let test_budget_generous () =
  let b = Budget.create ~time_s:3600.0 ~mem_words:max_int () in
  check Alcotest.bool "generous budget does not trip" false (Budget.exceeded b);
  check Alcotest.bool "describe says something" true
    (String.length (Budget.describe b) > 0)

let test_budget_mem_words_of_mb () =
  let words = Budget.mem_words_of_mb 1 in
  check Alcotest.int "1 MB in words" (1024 * 1024 / (Sys.word_size / 8)) words

(* --- Stop ----------------------------------------------------------- *)

let test_stop_flag () =
  Stop.reset ();
  check Alcotest.bool "initially clear" false (Stop.requested ());
  Stop.request ();
  check Alcotest.bool "set after request" true (Stop.requested ());
  Stop.reset ();
  check Alcotest.bool "clear after reset" false (Stop.requested ())

let test_stop_with_signals () =
  let inside =
    Stop.with_signals (fun () ->
        Unix.kill (Unix.getpid ()) Sys.sigterm;
        (* the handler runs on the main domain at a safe point; give the
           runtime one *)
        ignore (Sys.opaque_identity (ref 0));
        Stop.requested ())
  in
  check Alcotest.bool "SIGTERM sets the flag inside the scope" true inside;
  check Alcotest.bool "flag cleared when the scope exits" false
    (Stop.requested ())

(* --- Diag ----------------------------------------------------------- *)

let test_diag_line_atomicity () =
  let path = Filename.temp_file "asyncolor-diag" ".log" in
  let oc = open_out path in
  Diag.set_channel oc;
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 199 do
              Diag.printf "domain=%d line=%d suffix=%s\n" d i
                (String.make 30 (Char.chr (Char.code 'a' + d)))
            done))
  in
  List.iter Domain.join domains;
  Diag.set_channel stderr;
  close_out oc;
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       (* every line must be exactly one complete message — no fragments,
          no splices of two writers *)
       match String.split_on_char ' ' line with
       | [ d; i; s ] ->
           let dv = Scanf.sscanf d "domain=%d" Fun.id in
           ignore (Scanf.sscanf i "line=%d" Fun.id);
           let expect =
             "suffix=" ^ String.make 30 (Char.chr (Char.code 'a' + dv))
           in
           if s <> expect then Alcotest.failf "spliced line: %s" line
       | _ -> Alcotest.failf "malformed line: %s" line
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  check Alcotest.int "all 800 lines intact" 800 !lines

let () =
  Alcotest.run "resilience"
    [
      ( "checkpoint",
        [
          qtest prop_checkpoint_roundtrip;
          Alcotest.test_case "version mismatch" `Quick
            test_checkpoint_version_mismatch;
          Alcotest.test_case "bad magic" `Quick test_checkpoint_bad_magic;
          Alcotest.test_case "payload corruption" `Quick
            test_checkpoint_payload_corruption;
          Alcotest.test_case "truncation, missing file" `Quick
            test_checkpoint_truncation;
          Alcotest.test_case "atomic overwrite" `Quick
            test_checkpoint_overwrite_atomic;
        ] );
      ( "spill",
        [
          qtest prop_spill_roundtrip;
          Alcotest.test_case "truncated level names file" `Quick
            test_spill_truncated;
          Alcotest.test_case "bit-flip names file" `Quick test_spill_bit_flip;
          Alcotest.test_case "bad magic names file" `Quick
            test_spill_bad_magic;
          Alcotest.test_case "missing level names file" `Quick
            test_spill_missing_level;
          Alcotest.test_case "version skew names file" `Quick
            test_spill_version_skew;
          Alcotest.test_case "files listing sorted" `Quick
            test_spill_files_sorted;
        ] );
      ( "budget",
        [
          Alcotest.test_case "unlimited" `Quick test_budget_unlimited;
          Alcotest.test_case "time_s:0 trips" `Quick test_budget_time_zero;
          Alcotest.test_case "tiny mem trips, sticky" `Quick
            test_budget_mem_tiny_and_sticky;
          Alcotest.test_case "generous never trips" `Quick test_budget_generous;
          Alcotest.test_case "mem_words_of_mb" `Quick
            test_budget_mem_words_of_mb;
        ] );
      ( "stop",
        [
          Alcotest.test_case "flag set/reset" `Quick test_stop_flag;
          Alcotest.test_case "with_signals scope" `Quick test_stop_with_signals;
        ] );
      ( "diag",
        [
          Alcotest.test_case "line atomicity across domains" `Quick
            test_diag_line_atomicity;
        ] );
    ]
