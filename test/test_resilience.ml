(* Tests for the resilience layer: checkpoint container round-trips and
   rejection of damaged files, resource budgets, cooperative stop, and
   line-atomic diagnostics. *)

module Checkpoint = Asyncolor_resilience.Checkpoint
module Spill = Asyncolor_resilience.Spill
module Budget = Asyncolor_resilience.Budget
module Stop = Asyncolor_resilience.Stop
module Diag = Asyncolor_resilience.Diag

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

let with_temp f =
  let path = Filename.temp_file "asyncolor-ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* --- Checkpoint ----------------------------------------------------- *)

type payload = {
  ints : int array;
  name : string;
  pairs : (int * int) list;
}

let prop_checkpoint_roundtrip =
  QCheck.Test.make ~name:"checkpoint save/load round-trip"
    QCheck.(triple (array small_int) string (list (pair small_int small_int)))
    (fun (ints, name, pairs) ->
      with_temp (fun path ->
          let v = { ints; name; pairs } in
          Checkpoint.save ~path ~version:7 v;
          let (v' : payload) = Checkpoint.load ~path ~version:7 () in
          v' = v))

let expect_corrupt what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Corrupt" what
  | exception Checkpoint.Corrupt _ -> ()

let test_checkpoint_version_mismatch () =
  with_temp (fun path ->
      Checkpoint.save ~path ~version:1 [| 1; 2; 3 |];
      expect_corrupt "version bumped" (fun () ->
          (Checkpoint.load ~path ~version:2 () : int array)))

let test_checkpoint_bad_magic () =
  with_temp (fun path ->
      Checkpoint.save ~path ~version:1 "hello";
      let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
      output_string oc "X";
      close_out oc;
      expect_corrupt "magic flipped" (fun () ->
          (Checkpoint.load ~path ~version:1 () : string)))

let test_checkpoint_payload_corruption () =
  with_temp (fun path ->
      Checkpoint.save ~path ~version:1 (Array.init 64 Fun.id);
      (* flip one byte of the payload (past the 48-byte header) *)
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let all = really_input_string ic len in
      close_in ic;
      let b = Bytes.of_string all in
      Bytes.set b (48 + ((len - 48) / 2))
        (Char.chr (Char.code (Bytes.get b (48 + ((len - 48) / 2))) lxor 0xff));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      expect_corrupt "digest must fail" (fun () ->
          (Checkpoint.load ~path ~version:1 () : int array)))

let test_checkpoint_truncation () =
  with_temp (fun path ->
      Checkpoint.save ~path ~version:1 (String.make 1000 'x');
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let keep = really_input_string ic (len - 17) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc keep;
      close_out oc;
      expect_corrupt "truncated payload" (fun () ->
          (Checkpoint.load ~path ~version:1 () : string)));
  expect_corrupt "missing file" (fun () ->
      (Checkpoint.load ~path:"/nonexistent/ckpt.bin" ~version:1 () : int))

let test_checkpoint_overwrite_atomic () =
  with_temp (fun path ->
      Checkpoint.save ~path ~version:1 "first";
      Checkpoint.save ~path ~version:1 "second";
      check Alcotest.string "last write wins"
        "second"
        (Checkpoint.load ~path ~version:1 ());
      check Alcotest.bool "no temp file left behind" false
        (Sys.file_exists (path ^ ".tmp")))

(* --- Spill ----------------------------------------------------------- *)

(* Spilled levels are Checkpoint containers, so they inherit the whole
   damage taxonomy above — but a run owns many level files, so every
   Corrupt raised through [Spill.read] must carry the offending file's
   path in its message. *)

(* Recursive: recovery paths may create a quarantine/ subdirectory. *)
let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "asyncolor-spill" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let with_temp_spill f = with_temp_dir (fun dir -> f (Spill.create ~dir ()))

let expect_corrupt_with_path what path f =
  match f () with
  | (_ : int array) -> Alcotest.failf "%s: expected Corrupt" what
  | exception Checkpoint.Corrupt msg ->
      check Alcotest.bool (what ^ ": message names the file") true
        (Astring.String.is_infix ~affix:path msg)

(* Rewrite a level file through an arbitrary byte-level mutation. *)
let damage path mutate =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.of_string (really_input_string ic len) in
  close_in ic;
  let b = mutate b in
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let prop_spill_roundtrip =
  QCheck.Test.make ~name:"spill write/read round-trip (delta codec)"
    QCheck.(array int)
    (fun words ->
      with_temp_spill (fun sp ->
          let bytes = Spill.write sp ~level:0 words in
          bytes > 0
          && Spill.read sp ~level:0 = words
          && Spill.bytes_written sp = bytes
          && Spill.bytes_read sp = bytes
          && Spill.levels_on_disk sp = 1
          && Spill.files sp = [ Filename.basename (Spill.path sp ~level:0) ]))

let test_spill_truncated () =
  with_temp_spill (fun sp ->
      ignore (Spill.write sp ~level:3 (Array.init 200 (fun i -> i * i)));
      let path = Spill.path sp ~level:3 in
      damage path (fun b -> Bytes.sub b 0 (Bytes.length b - 9));
      expect_corrupt_with_path "truncated level" path (fun () ->
          Spill.read sp ~level:3))

let test_spill_bit_flip () =
  with_temp_spill (fun sp ->
      ignore (Spill.write sp ~level:0 (Array.init 500 (fun i -> 3 * i)));
      let path = Spill.path sp ~level:0 in
      damage path (fun b ->
          (* flip one payload byte past the 48-byte container header *)
          let i = 48 + ((Bytes.length b - 48) / 2) in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
          b);
      expect_corrupt_with_path "bit-flipped level" path (fun () ->
          Spill.read sp ~level:0))

let test_spill_bad_magic () =
  with_temp_spill (fun sp ->
      ignore (Spill.write sp ~level:1 [| 42 |]);
      let path = Spill.path sp ~level:1 in
      damage path (fun b ->
          Bytes.set b 0 'X';
          b);
      expect_corrupt_with_path "bad magic" path (fun () ->
          Spill.read sp ~level:1))

let test_spill_missing_level () =
  with_temp_spill (fun sp ->
      ignore (Spill.write sp ~level:0 [| 1; 2; 3 |]);
      expect_corrupt_with_path "level never written"
        (Spill.path sp ~level:7)
        (fun () -> Spill.read sp ~level:7))

let test_spill_version_skew () =
  with_temp_spill (fun sp ->
      (* a well-formed container of the wrong version at the level path:
         what a file from a future release would look like *)
      Checkpoint.save ~path:(Spill.path sp ~level:2) ~version:31337
        [| 1; 2; 3 |];
      expect_corrupt_with_path "version skew"
        (Spill.path sp ~level:2)
        (fun () -> Spill.read sp ~level:2))

let test_spill_files_sorted () =
  with_temp_spill (fun sp ->
      List.iter
        (fun level -> ignore (Spill.write sp ~level [| level |]))
        [ 2; 0; 1 ];
      check
        Alcotest.(list string)
        "sorted regardless of write order"
        [ "level-000000.spill"; "level-000001.spill"; "level-000002.spill" ]
        (Spill.files sp);
      check Alcotest.int "three levels accounted" 3 (Spill.levels_on_disk sp))

(* --- Budget --------------------------------------------------------- *)

let test_budget_unlimited () =
  let b = Budget.create () in
  check Alcotest.bool "no limits never trips" false (Budget.exceeded b)

let test_budget_time_zero () =
  let b = Budget.create ~time_s:0.0 () in
  check Alcotest.bool "zero wall budget trips at once" true (Budget.exceeded b)

let test_budget_mem_tiny_and_sticky () =
  let b = Budget.create ~mem_words:1 () in
  check Alcotest.bool "one-word heap budget trips" true (Budget.exceeded b);
  check Alcotest.bool "stays tripped" true (Budget.exceeded b)

let test_budget_generous () =
  let b = Budget.create ~time_s:3600.0 ~mem_words:max_int () in
  check Alcotest.bool "generous budget does not trip" false (Budget.exceeded b);
  check Alcotest.bool "describe says something" true
    (String.length (Budget.describe b) > 0)

let test_budget_mem_words_of_mb () =
  let words = Budget.mem_words_of_mb 1 in
  check Alcotest.int "1 MB in words" (1024 * 1024 / (Sys.word_size / 8)) words

(* --- Stop ----------------------------------------------------------- *)

let test_stop_flag () =
  Stop.reset ();
  check Alcotest.bool "initially clear" false (Stop.requested ());
  Stop.request ();
  check Alcotest.bool "set after request" true (Stop.requested ());
  Stop.reset ();
  check Alcotest.bool "clear after reset" false (Stop.requested ())

let test_stop_with_signals () =
  let inside =
    Stop.with_signals (fun () ->
        Unix.kill (Unix.getpid ()) Sys.sigterm;
        (* the handler runs on the main domain at a safe point; give the
           runtime one *)
        ignore (Sys.opaque_identity (ref 0));
        Stop.requested ())
  in
  check Alcotest.bool "SIGTERM sets the flag inside the scope" true inside;
  check Alcotest.bool "flag cleared when the scope exits" false
    (Stop.requested ())

(* --- Diag ----------------------------------------------------------- *)

let test_diag_line_atomicity () =
  let path = Filename.temp_file "asyncolor-diag" ".log" in
  let oc = open_out path in
  Diag.set_channel oc;
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 199 do
              Diag.printf "domain=%d line=%d suffix=%s\n" d i
                (String.make 30 (Char.chr (Char.code 'a' + d)))
            done))
  in
  List.iter Domain.join domains;
  Diag.set_channel stderr;
  close_out oc;
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       (* every line must be exactly one complete message — no fragments,
          no splices of two writers *)
       match String.split_on_char ' ' line with
       | [ d; i; s ] ->
           let dv = Scanf.sscanf d "domain=%d" Fun.id in
           ignore (Scanf.sscanf i "line=%d" Fun.id);
           let expect =
             "suffix=" ^ String.make 30 (Char.chr (Char.code 'a' + dv))
           in
           if s <> expect then Alcotest.failf "spliced line: %s" line
       | _ -> Alcotest.failf "malformed line: %s" line
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  check Alcotest.int "all 800 lines intact" 800 !lines

(* --- Chaos ----------------------------------------------------------- *)

(* The injector's contract is determinism: a site's fault schedule is a
   pure function of (seed, site, op index).  Everything downstream — the
   differential tests in test_check, the CLI chaos legs in bin/dune —
   leans on that, so it gets tested directly here. *)

module Chaos = Asyncolor_resilience.Chaos

let drain_draws t ~site n = List.init n (fun _ -> Chaos.draw_write t ~site)

let test_chaos_schedule_deterministic () =
  let mk () = Chaos.create ~seed:42 ~rate:0.3 () in
  let a = drain_draws (mk ()) ~site:"x.write" 200 in
  let b = drain_draws (mk ()) ~site:"x.write" 200 in
  check Alcotest.bool "same seed, same site, same schedule" true (a = b);
  (* consuming ops at one site must not perturb another site's stream *)
  let c =
    let t = mk () in
    ignore (drain_draws t ~site:"y.write" 500);
    drain_draws t ~site:"x.write" 200
  in
  check Alcotest.bool "sites are independent" true (a = c);
  let d = drain_draws (Chaos.create ~seed:43 ~rate:0.3 ()) ~site:"x.write" 200 in
  check Alcotest.bool "different seed, different schedule" true (a <> d)

let test_chaos_rates_and_sites () =
  let none = ( = ) None and some = ( <> ) None in
  check Alcotest.bool "rate 0 never injects" true
    (List.for_all none (drain_draws (Chaos.create ~seed:1 ~rate:0.0 ()) ~site:"s" 500));
  check Alcotest.bool "disabled never injects" true
    (List.for_all none (drain_draws Chaos.disabled ~site:"s" 50));
  let t1 = Chaos.create ~seed:1 ~rate:1.0 () in
  check Alcotest.bool "rate 1 always injects" true
    (List.for_all some (drain_draws t1 ~site:"s" 500));
  check Alcotest.int "every injection counted" 500 (Chaos.stats t1).Chaos.injected;
  let filtered = Chaos.create ~seed:1 ~rate:1.0 ~sites:[ "exec" ] () in
  check Alcotest.bool "unlisted site disarmed" true
    (List.for_all none (drain_draws filtered ~site:"spill.write" 100));
  check Alcotest.bool "prefix arms the site" true
    (List.for_all some (drain_draws filtered ~site:"exec.worker-3" 100))

let test_chaos_write_faults () =
  with_temp_dir (fun dir ->
      let t = Chaos.create ~seed:7 ~rate:1.0 () in
      let data = Bytes.init 256 (fun i -> Char.chr (i land 0xff)) in
      let seen = ref [] in
      for i = 0 to 39 do
        let path = Filename.concat dir (Printf.sprintf "f%d" i) in
        match Chaos.write_file t ~site:"w" path data with
        | () ->
            (* at rate 1 a "successful" write can only be a torn one: it
               reports success but persists a strict prefix *)
            seen := Chaos.Torn_write :: !seen;
            let on_disk = Chaos.read_raw path in
            check Alcotest.bool "torn write leaves a strict prefix" true
              (Bytes.length on_disk < Bytes.length data
              && Bytes.equal on_disk (Bytes.sub data 0 (Bytes.length on_disk)))
        | exception Chaos.Injected { fault; site; _ } -> (
            seen := fault :: !seen;
            check Alcotest.string "exception names the site" "w" site;
            match fault with
            | Chaos.Enospc | Chaos.Eio ->
                check Alcotest.bool
                  (Chaos.fault_name fault ^ " leaves a partial file")
                  true
                  (Sys.file_exists path
                  && Bytes.length (Chaos.read_raw path) < Bytes.length data)
            | Chaos.Fsync_fail ->
                check Alcotest.bool "fsync failure: data landed anyway" true
                  (Bytes.equal (Chaos.read_raw path) data)
            | f -> Alcotest.failf "unexpected write fault %s" (Chaos.fault_name f))
      done;
      check Alcotest.bool "fault kinds varied across the schedule" true
        (List.length (List.sort_uniq compare !seen) >= 3))

let test_chaos_read_faults () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "data" in
      let data = Bytes.of_string "the quick brown fox jumps over the lazy dog" in
      Chaos.write_file Chaos.disabled ~site:"w" path data;
      let t = Chaos.create ~seed:5 ~rate:1.0 () in
      let rots = ref 0 and eios = ref 0 in
      for _ = 1 to 40 do
        match Chaos.read_file t ~site:"r" path with
        | b ->
            (* bit rot flips exactly one byte — and only in the returned
               buffer, never on disk, so a retry reads clean *)
            incr rots;
            let diffs = ref 0 in
            Bytes.iteri (fun i c -> if c <> Bytes.get data i then incr diffs) b;
            check Alcotest.int "exactly one byte rotted" 1 !diffs;
            check Alcotest.bool "on-disk file untouched" true
              (Bytes.equal (Chaos.read_raw path) data)
        | exception Chaos.Injected { fault = Chaos.Eio; _ } -> incr eios
      done;
      check Alcotest.bool "both read faults appeared" true (!rots > 0 && !eios > 0))

let test_retry_backoff_and_exhaustion () =
  (* With chaos disabled the jitter factor is exactly 1.0, so the backoff
     sequence is fully determined: base * multiplier^k, capped. *)
  let sleeps = ref [] in
  let cfg =
    Chaos.Retry.cfg ~max_attempts:4 ~backoff_ms:100.0 ~multiplier:2.0
      ~max_backoff_ms:250.0
      ~sleep:(fun s -> sleeps := s :: !sleeps)
      ()
  in
  let attempts = ref 0 in
  (match
     Chaos.Retry.run Chaos.disabled cfg ~site:"t" (fun () ->
         incr attempts;
         raise (Sys_error "transient"))
   with
  | () -> Alcotest.fail "expected Exhausted"
  | exception Chaos.Retry.Exhausted { attempts = a; site; last = Sys_error _ } ->
      check Alcotest.int "attempts recorded" 4 a;
      check Alcotest.string "site recorded" "t" site);
  check Alcotest.int "every attempt ran" 4 !attempts;
  let near a b = Float.abs (a -. b) < 1e-9 in
  (match List.rev !sleeps with
  | [ s1; s2; s3 ] ->
      check Alcotest.bool "backoffs 100ms, 200ms, capped 250ms" true
        (near s1 0.1 && near s2 0.2 && near s3 0.25)
  | l -> Alcotest.failf "expected 3 backoffs, saw %d" (List.length l))

let test_retry_jitter_bounded_and_counted () =
  let chaos = Chaos.create ~seed:2 ~rate:0.0 () in
  let sleeps = ref [] in
  let cfg =
    Chaos.Retry.cfg ~max_attempts:5 ~backoff_ms:100.0 ~multiplier:1.0
      ~max_backoff_ms:1000.0
      ~sleep:(fun s -> sleeps := s :: !sleeps)
      ()
  in
  (try
     Chaos.Retry.run chaos cfg ~site:"t" (fun () -> raise (Sys_error "flaky"))
   with Chaos.Retry.Exhausted _ -> ());
  check Alcotest.int "retries counted in stats" 4 (Chaos.stats chaos).Chaos.retries;
  List.iter
    (fun s ->
      check Alcotest.bool "jittered delay within [base, 1.5*base]" true
        (s >= 0.1 -. 1e-9 && s <= 0.15 +. 1e-9))
    !sleeps

let test_retry_success_and_retry_on () =
  let cfg = Chaos.Retry.cfg ~max_attempts:5 ~sleep:(fun _ -> ()) () in
  let n = ref 0 in
  let v =
    Chaos.Retry.run Chaos.disabled cfg ~site:"t" (fun () ->
        incr n;
        if !n < 3 then raise (Sys_error "flaky") else !n)
  in
  check Alcotest.int "third attempt wins" 3 v;
  (* non-retryable exceptions escape on the first attempt... *)
  let n = ref 0 in
  (match
     Chaos.Retry.run Chaos.disabled cfg ~site:"t" (fun () ->
         incr n;
         failwith "fatal")
   with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure _ -> check Alcotest.int "no retries on fatal" 1 !n);
  (* ...unless retry_on opts them in *)
  let n = ref 0 in
  match
    Chaos.Retry.run Chaos.disabled cfg
      ~retry_on:(function Failure _ -> true | _ -> false)
      ~site:"t"
      (fun () ->
        incr n;
        failwith "retryable after all")
  with
  | () -> Alcotest.fail "expected Exhausted"
  | exception Chaos.Retry.Exhausted _ -> check Alcotest.int "all attempts" 5 !n

(* --- Checkpoint rotation, quarantine, stale-tmp hygiene --------------- *)

let garble path =
  let oc = open_out_bin path in
  output_string oc "garbage, definitely not a checkpoint";
  close_out oc

let test_checkpoint_rotation_fallback () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "c.ckpt" in
      Checkpoint.save_rotated ~path ~version:1 "gen1";
      Checkpoint.save_rotated ~path ~version:1 "gen2";
      check Alcotest.string "primary is the last save" "gen2"
        (Checkpoint.load ~path ~version:1 ());
      check Alcotest.string "previous generation survives at .1" "gen1"
        (Checkpoint.load ~path:(Checkpoint.rotated_path path) ~version:1 ());
      (* damage the primary: the load must quarantine it as evidence and
         fall back to the rotation instead of aborting *)
      garble path;
      check Alcotest.string "fell back to the rotation" "gen1"
        (Checkpoint.load_rotated ~path ~version:1 ());
      let qdir = Checkpoint.quarantine_dir ~path in
      check Alcotest.bool "corrupt primary moved to quarantine/" true
        (Sys.file_exists (Filename.concat qdir "c.ckpt"));
      (* both generations gone: now it is a clean Corrupt *)
      garble (Checkpoint.rotated_path path);
      expect_corrupt "both generations unreadable" (fun () ->
          (Checkpoint.load_rotated ~path ~version:1 () : string)))

let test_checkpoint_save_rotated_exhaustion_keeps_last_good () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "c.ckpt" in
      Checkpoint.save_rotated ~path ~version:1 "good";
      let chaos = Chaos.create ~seed:11 ~rate:1.0 ~sites:[ "checkpoint" ] () in
      let retry = Chaos.Retry.cfg ~max_attempts:2 ~sleep:(fun _ -> ()) () in
      (match Checkpoint.save_rotated ~chaos ~retry ~path ~version:1 "doomed" with
      | () -> Alcotest.fail "expected Exhausted"
      | exception Chaos.Retry.Exhausted _ -> ());
      check Alcotest.bool "no half-written tmp left behind" false
        (Sys.file_exists (path ^ ".tmp"));
      check Alcotest.string "last-good checkpoint untouched" "good"
        (Checkpoint.load ~path ~version:1 ()))

let test_checkpoint_clean_stale () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "c.ckpt" in
      check Alcotest.bool "nothing to clean" false (Checkpoint.clean_stale ~path);
      garble (path ^ ".tmp");
      check Alcotest.bool "stale tmp removed" true (Checkpoint.clean_stale ~path);
      check Alcotest.bool "tmp gone" false (Sys.file_exists (path ^ ".tmp"));
      check Alcotest.bool "idempotent" false (Checkpoint.clean_stale ~path))

(* --- Spill recovery --------------------------------------------------- *)

let test_spill_quarantine_and_rebuild () =
  with_temp_dir (fun dir ->
      let sp = Spill.create ~retain:4 ~dir () in
      let data = Array.init 500 (fun i -> i * 37 mod 101) in
      ignore (Spill.write sp ~level:0 data);
      let path = Spill.path sp ~level:0 in
      damage path (fun b -> Bytes.sub b 0 (Bytes.length b / 2));
      check (Alcotest.array Alcotest.int) "rebuilt from the retained copy"
        data (Spill.read sp ~level:0);
      check Alcotest.int "level quarantined" 1 (Spill.quarantined sp);
      check Alcotest.int "level rebuilt" 1 (Spill.rebuilt sp);
      check Alcotest.bool "damaged file kept as evidence" true
        (Sys.file_exists
           (Filename.concat (Filename.concat dir "quarantine")
              "level-000000.spill"));
      (* the rewrite healed the on-disk copy: this read is clean *)
      check (Alcotest.array Alcotest.int) "healed on disk" data
        (Spill.read sp ~level:0);
      check Alcotest.int "no second quarantine" 1 (Spill.quarantined sp))

let test_spill_failed_write_stays_resident () =
  (* Every write attempt fails (or lands torn and is caught by the
     read-back verify); the level's bytes must survive in memory and
     still serve reads.  Exercised across seeds so each fault kind gets
     its turn as the terminal failure. *)
  with_temp_dir (fun dir ->
      List.iter
        (fun seed ->
          let chaos =
            Chaos.create ~seed ~rate:1.0 ~sites:[ "spill.write" ] ()
          in
          let retry = Chaos.Retry.cfg ~max_attempts:2 ~sleep:(fun _ -> ()) () in
          let sp = Spill.create ~chaos ~retry ~retain:4 ~dir () in
          let data = Array.init 200 (fun i -> i * i) in
          (try ignore (Spill.write sp ~level:seed data)
           with Chaos.Retry.Exhausted _ -> ());
          check (Alcotest.array Alcotest.int)
            (Printf.sprintf "seed %d: read survives the failed write" seed)
            data (Spill.read sp ~level:seed))
        [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let () =
  Alcotest.run "resilience"
    [
      ( "checkpoint",
        [
          qtest prop_checkpoint_roundtrip;
          Alcotest.test_case "version mismatch" `Quick
            test_checkpoint_version_mismatch;
          Alcotest.test_case "bad magic" `Quick test_checkpoint_bad_magic;
          Alcotest.test_case "payload corruption" `Quick
            test_checkpoint_payload_corruption;
          Alcotest.test_case "truncation, missing file" `Quick
            test_checkpoint_truncation;
          Alcotest.test_case "atomic overwrite" `Quick
            test_checkpoint_overwrite_atomic;
        ] );
      ( "spill",
        [
          qtest prop_spill_roundtrip;
          Alcotest.test_case "truncated level names file" `Quick
            test_spill_truncated;
          Alcotest.test_case "bit-flip names file" `Quick test_spill_bit_flip;
          Alcotest.test_case "bad magic names file" `Quick
            test_spill_bad_magic;
          Alcotest.test_case "missing level names file" `Quick
            test_spill_missing_level;
          Alcotest.test_case "version skew names file" `Quick
            test_spill_version_skew;
          Alcotest.test_case "files listing sorted" `Quick
            test_spill_files_sorted;
        ] );
      ( "budget",
        [
          Alcotest.test_case "unlimited" `Quick test_budget_unlimited;
          Alcotest.test_case "time_s:0 trips" `Quick test_budget_time_zero;
          Alcotest.test_case "tiny mem trips, sticky" `Quick
            test_budget_mem_tiny_and_sticky;
          Alcotest.test_case "generous never trips" `Quick test_budget_generous;
          Alcotest.test_case "mem_words_of_mb" `Quick
            test_budget_mem_words_of_mb;
        ] );
      ( "stop",
        [
          Alcotest.test_case "flag set/reset" `Quick test_stop_flag;
          Alcotest.test_case "with_signals scope" `Quick test_stop_with_signals;
        ] );
      ( "diag",
        [
          Alcotest.test_case "line atomicity across domains" `Quick
            test_diag_line_atomicity;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "schedule determinism" `Quick
            test_chaos_schedule_deterministic;
          Alcotest.test_case "rates and site filters" `Quick
            test_chaos_rates_and_sites;
          Alcotest.test_case "write fault realization" `Quick
            test_chaos_write_faults;
          Alcotest.test_case "read fault realization" `Quick
            test_chaos_read_faults;
          Alcotest.test_case "retry backoff and exhaustion" `Quick
            test_retry_backoff_and_exhaustion;
          Alcotest.test_case "retry jitter bounded, retries counted" `Quick
            test_retry_jitter_bounded_and_counted;
          Alcotest.test_case "retry success midway, retry_on" `Quick
            test_retry_success_and_retry_on;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "rotation fallback and quarantine" `Quick
            test_checkpoint_rotation_fallback;
          Alcotest.test_case "exhausted save keeps last-good" `Quick
            test_checkpoint_save_rotated_exhaustion_keeps_last_good;
          Alcotest.test_case "stale tmp cleanup" `Quick
            test_checkpoint_clean_stale;
          Alcotest.test_case "spill quarantine-and-rebuild" `Quick
            test_spill_quarantine_and_rebuild;
          Alcotest.test_case "spill failed write stays resident" `Quick
            test_spill_failed_write_stays_resident;
        ] );
    ]
