(* Property and differential tests for the explorer's dihedral symmetry
   reduction: orbit canonicalization on the intern path, quotient
   soundness against the unreduced explorer, and the interplay with the
   spill-to-disk frontier. *)

module Explorer = Asyncolor_check.Explorer
module Builders = Asyncolor_topology.Builders
module Graph = Asyncolor_topology.Graph
module Idents = Asyncolor_workload.Idents
module Executor = Asyncolor_util.Executor
module Spill = Asyncolor_resilience.Spill

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

module Exp = Explorer.Make (Asyncolor.Algorithm2.P)
module E = Exp.E

(* --- canonicalization properties --------------------------------------- *)

(* A random reachable configuration: replay a list of raw activation
   masks from the root, clamping each against the working processes at
   that point (an empty clamped set is skipped, not an error). *)
let config_of_schedule graph ~idents masks =
  let e = E.create graph ~idents in
  List.iter
    (fun raw ->
      let un = E.config_unfinished_mask (E.snapshot e) in
      let m = raw land un in
      if m <> 0 then E.activate_mask e m)
    masks;
  E.snapshot e

let idents_of_workload n = function
  | `Uniform -> Idents.uniform n
  | `Periodic -> Idents.periodic [| 0; 1 |] n
  | `Distinct -> Idents.increasing n

let pp_workload = function
  | `Uniform -> "uniform"
  | `Periodic -> "periodic"
  | `Distinct -> "distinct"

(* (cycle length, identifier workload, raw activation masks) for
   n ∈ 3..10 across all three symmetry regimes: full dihedral group,
   a proper subgroup, and the trivial group. *)
let arb_instance =
  let gen =
    QCheck.Gen.(
      int_range 3 10 >>= fun n ->
      oneofl [ `Uniform; `Periodic; `Distinct ] >>= fun w ->
      list_size (int_range 0 6) (int_range 1 ((1 lsl n) - 1)) >>= fun masks ->
      return (n, w, masks))
  in
  let print (n, w, masks) =
    Printf.sprintf "n=%d %s [%s]" n (pp_workload w)
      (String.concat ";" (List.map string_of_int masks))
  in
  QCheck.make ~print gen

(* canon (permute c σ) = canon c for every group element σ — rotations
   and reflections alike, since the group enumerates all of them. *)
let prop_canon_orbit_invariant (n, w, masks) =
  let graph = Builders.cycle n in
  let idents = idents_of_workload n w in
  let group = Exp.symmetry_group ~symmetry:true graph ~idents in
  let c = config_of_schedule graph ~idents masks in
  let key, _rep, orbit, _wi = Exp.canonicalize group c in
  Array.for_all
    (fun sigma ->
      let key', _, orbit', _ =
        Exp.canonicalize group (E.config_permute c sigma)
      in
      E.key_equal key key' && orbit = orbit')
    group

(* canonicalize is idempotent: the representative canonicalizes to
   itself, with the identity (index 0) as winner. *)
let prop_canon_idempotent (n, w, masks) =
  let graph = Builders.cycle n in
  let idents = idents_of_workload n w in
  let group = Exp.symmetry_group ~symmetry:true graph ~idents in
  let c = config_of_schedule graph ~idents masks in
  let key, rep, orbit, _ = Exp.canonicalize group c in
  let key', _rep', orbit', wi' = Exp.canonicalize group rep in
  E.key_equal key key'
  && E.key_equal key (E.config_key rep)
  && orbit' = orbit && wi' = 0

(* 1 ≤ orbit size ≤ |group|, and the group itself is the dihedral group
   on uniform workloads (order 2n), trivial on injective ones. *)
let prop_orbit_size_bounded (n, w, masks) =
  let graph = Builders.cycle n in
  let idents = idents_of_workload n w in
  let group = Exp.symmetry_group ~symmetry:true graph ~idents in
  let expected_order =
    match w with `Uniform -> 2 * n | `Distinct -> 1 | `Periodic -> Array.length group
  in
  let c = config_of_schedule graph ~idents masks in
  let _, _, orbit, wi = Exp.canonicalize group c in
  Array.length group = expected_order
  && 1 <= orbit
  && orbit <= Array.length group
  && 0 <= wi
  && wi < Array.length group

(* The mask engine and the list engine must agree on the canonical key of
   the configuration a common schedule reaches. *)
let prop_mask_list_agree (n, w, masks) =
  let graph = Builders.cycle n in
  let idents = idents_of_workload n w in
  let group = Exp.symmetry_group ~symmetry:true graph ~idents in
  let em = E.create graph ~idents and el = E.create graph ~idents in
  List.iter
    (fun raw ->
      let un = E.config_unfinished_mask (E.snapshot em) in
      let m = raw land un in
      if m <> 0 then begin
        E.activate_mask em m;
        E.activate el (Explorer.subset_of_mask m)
      end)
    masks;
  let km, _, _, _ = Exp.canonicalize group (E.snapshot em) in
  let kl, _, _, _ = Exp.canonicalize group (E.snapshot el) in
  E.key_equal km kl

let test_canon_orbit_invariant =
  QCheck.Test.make ~name:"canon (permute c sigma) = canon c (n in 3..10)"
    ~count:100 arb_instance prop_canon_orbit_invariant

let test_canon_idempotent =
  QCheck.Test.make ~name:"canon idempotent on representatives" ~count:100
    arb_instance prop_canon_idempotent

let test_orbit_size_bounded =
  QCheck.Test.make ~name:"orbit size in [1, |group|], group order exact"
    ~count:100 arb_instance prop_orbit_size_bounded

let test_mask_list_agree =
  QCheck.Test.make ~name:"mask/list engines agree post-canonicalization"
    ~count:100 arb_instance prop_mask_list_agree

(* --- differential: reduced vs unreduced -------------------------------- *)

let report = Alcotest.testable Exp.pp_report ( = )

(* The quotient run must agree with the unreduced run after orbit
   expansion: counts, completeness, both verdicts, the exact worst case.
   And the reduced run must be report-identical to itself across jobs
   and execution policies — canonicalization is deterministic, so the
   work-stealing merge still produces one canonical report. *)
let diff_symmetric ?(mode = `All_subsets) graph ~idents () =
  let off = Exp.explore ~mode graph ~idents in
  let on_ = Exp.explore ~mode ~symmetry:true graph ~idents in
  (match on_.orbit with
  | None -> Alcotest.fail "orbit stats expected on a symmetry-reduced run"
  | Some o ->
      check Alcotest.int "expanded configs" off.configs o.expanded_configs;
      check Alcotest.int "expanded transitions" off.transitions
        o.expanded_transitions;
      check Alcotest.int "expanded terminal" off.terminal_configs
        o.expanded_terminal;
      check Alcotest.bool "reduction strict when group nontrivial" true
        (o.group_order = 1 || on_.configs < off.configs));
  check Alcotest.bool "complete" off.complete on_.complete;
  check Alcotest.bool "wait-free verdict" off.wait_free on_.wait_free;
  check Alcotest.int "exact worst case" off.worst_case_activations
    on_.worst_case_activations;
  check Alcotest.bool "livelock verdict" (off.livelock <> None)
    (on_.livelock <> None);
  check Alcotest.bool "safety verdict" (off.safety <> [])
    (on_.safety <> []);
  List.iter
    (fun (name, jobs, policy) ->
      check report (name ^ " = serial") on_
        (Exp.explore ~mode ~symmetry:true ~jobs ~policy graph ~idents))
    [
      ("sync jobs=2", 2, Executor.Synchronous);
      ("sync jobs=4", 4, Executor.Synchronous);
      ("async κ=0.5 jobs=2", 2, Executor.asynchronous ~kappa:0.5 ~jobs:2 ());
      ("async κ=0.5 jobs=4", 4, Executor.asynchronous ~kappa:0.5 ~jobs:4 ());
    ]

let test_diff_uniform_c4 () =
  diff_symmetric (Builders.cycle 4) ~idents:(Idents.uniform 4) ()

let test_diff_uniform_c5_singletons () =
  diff_symmetric ~mode:`Singletons (Builders.cycle 5)
    ~idents:(Idents.uniform 5) ()

let test_diff_periodic_c6 () =
  diff_symmetric ~mode:`Singletons (Builders.cycle 6)
    ~idents:(Idents.periodic [| 3; 8 |] 6) ()

(* Distinct identifiers (the E6/E13/E17 regime): the group degenerates to
   the identity, and symmetry-on must match symmetry-off field-for-field
   with orbit accounting that just echoes the plain counts. *)
let test_diff_distinct_trivial_group () =
  let graph = Builders.cycle 4 in
  let idents = [| 5; 1; 9; 4 |] in
  let grp = Exp.symmetry_group ~symmetry:true graph ~idents in
  check Alcotest.int "group is trivial" 1 (Array.length grp);
  let off = Exp.explore graph ~idents in
  let on_ = Exp.explore ~symmetry:true graph ~idents in
  check report "identical up to orbit stats" off { on_ with orbit = None };
  check
    (Alcotest.testable
       (fun ppf (o : Explorer.orbit_stats) ->
         Format.fprintf ppf "G=%d C=%d T=%d F=%d" o.group_order
           o.expanded_configs o.expanded_transitions o.expanded_terminal)
       ( = ))
    "orbit stats echo the plain counts"
    {
      Explorer.group_order = 1;
      expanded_configs = off.configs;
      expanded_transitions = off.transitions;
      expanded_terminal = off.terminal_configs;
    }
    (Option.get on_.orbit)

(* --- spill invariance --------------------------------------------------- *)

let with_temp_spill_dir f =
  let dir = Filename.temp_file "asyncolor-spill" ".d" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

(* Spilling closed levels to disk is a memory optimisation, not a
   semantic one: with a zero threshold (spill at every merge boundary)
   the report must stay identical to the in-memory run, symmetric or
   not, serial or work-stealing. *)
let test_spill_report_invariant () =
  let graph = Builders.cycle 5 in
  let idents = Idents.uniform 5 in
  List.iter
    (fun symmetry ->
      let plain = Exp.explore ~symmetry graph ~idents in
      List.iter
        (fun (name, jobs, policy) ->
          with_temp_spill_dir (fun dir ->
              let sp = Spill.create ~dir () in
              let spilled =
                Exp.explore ~symmetry ~spill:(sp, 0) ~jobs ~policy graph
                  ~idents
              in
              check report
                (Printf.sprintf "spilled %s (symmetry %b) = in-memory" name
                   symmetry)
                plain spilled;
              check Alcotest.bool "levels actually hit the disk" true
                (Spill.levels_on_disk sp > 0)))
        [
          ("serial", 1, Executor.Serial);
          ("async κ=0.5 jobs=4", 4, Executor.asynchronous ~kappa:0.5 ~jobs:4 ());
        ])
    [ false; true ]

let () =
  Alcotest.run "symmetry"
    [
      ( "canonicalization",
        [
          qtest test_canon_orbit_invariant;
          qtest test_canon_idempotent;
          qtest test_orbit_size_bounded;
          qtest test_mask_list_agree;
        ] );
      ( "differential",
        [
          Alcotest.test_case "uniform C4 (full model)" `Quick
            test_diff_uniform_c4;
          Alcotest.test_case "uniform C5 (interleaved)" `Quick
            test_diff_uniform_c5_singletons;
          Alcotest.test_case "periodic C6 (interleaved)" `Quick
            test_diff_periodic_c6;
          Alcotest.test_case "distinct idents: trivial group" `Quick
            test_diff_distinct_trivial_group;
        ] );
      ( "spill",
        [
          Alcotest.test_case "report invariant under spilling" `Quick
            test_spill_report_invariant;
        ] );
    ]
