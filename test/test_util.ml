(* Unit and property tests for Asyncolor_util: the SplitMix64 PRNG and the
   minimum-excludant helper. *)

module Prng = Asyncolor_util.Prng
module Mex = Asyncolor_util.Mex

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

(* --- Prng ---------------------------------------------------------- *)

let test_determinism () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:123 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let da = List.init 8 (fun _ -> Prng.bits64 a) in
  let db = List.init 8 (fun _ -> Prng.bits64 b) in
  check Alcotest.bool "different seeds differ" true (da <> db)

let test_copy_preserves_stream () =
  let a = Prng.create ~seed:9 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  check Alcotest.int64 "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_split_independent () =
  let a = Prng.create ~seed:5 in
  let b = Prng.split a in
  let xa = Prng.bits64 a and xb = Prng.bits64 b in
  check Alcotest.bool "split streams differ" true (xa <> xb)

let test_int_bounds () =
  let p = Prng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Prng.int p 13 in
    if v < 0 || v >= 13 then Alcotest.failf "out of bounds: %d" v
  done

let test_int_invalid () =
  let p = Prng.create ~seed:7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int p 0))

let test_int_covers_range () =
  let p = Prng.create ~seed:11 in
  let seen = Array.make 6 false in
  for _ = 1 to 1_000 do
    seen.(Prng.int p 6) <- true
  done;
  check Alcotest.bool "all values hit" true (Array.for_all Fun.id seen)

let test_int_in () =
  let p = Prng.create ~seed:3 in
  for _ = 1 to 1_000 do
    let v = Prng.int_in p (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "out of range: %d" v
  done;
  check Alcotest.int "singleton range" 4 (Prng.int_in p 4 4)

let test_float_bounds () =
  let p = Prng.create ~seed:17 in
  for _ = 1 to 10_000 do
    let v = Prng.float p 1.0 in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "float out of bounds: %f" v
  done

let test_float_mean () =
  let p = Prng.create ~seed:23 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.float p 1.0
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_bool_balance () =
  let p = Prng.create ~seed:29 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.bool p then incr trues
  done;
  check Alcotest.bool "roughly balanced" true (abs (!trues - 5_000) < 500)

let test_shuffle_is_permutation () =
  let p = Prng.create ~seed:31 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 100 Fun.id) sorted

let test_shuffle_actually_moves () =
  let p = Prng.create ~seed:37 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle p a;
  check Alcotest.bool "not identity" true (a <> Array.init 100 Fun.id)

let test_choose () =
  let p = Prng.create ~seed:41 in
  for _ = 1 to 100 do
    let v = Prng.choose p [| 10; 20; 30 |] in
    check Alcotest.bool "member" true (List.mem v [ 10; 20; 30 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.choose: empty array") (fun () ->
      ignore (Prng.choose p [||]))

let test_sample_without_replacement () =
  let p = Prng.create ~seed:43 in
  for _ = 1 to 200 do
    let l = Prng.sample_without_replacement p 5 20 in
    check Alcotest.int "size" 5 (List.length l);
    check Alcotest.bool "sorted distinct" true (List.sort_uniq compare l = l);
    List.iter (fun v -> check Alcotest.bool "range" true (v >= 0 && v < 20)) l
  done;
  check Alcotest.(list int) "k = n" [ 0; 1; 2 ] (Prng.sample_without_replacement p 3 3);
  check Alcotest.(list int) "k = 0" [] (Prng.sample_without_replacement p 0 5)

let prop_sample_distinct =
  QCheck.Test.make ~name:"sample_without_replacement: distinct, in range"
    QCheck.(pair small_nat small_nat)
    (fun (k, extra) ->
      let n = k + extra in
      let p = Prng.create ~seed:(k + (extra * 1000)) in
      let l = Prng.sample_without_replacement p k n in
      List.length l = k
      && List.sort_uniq compare l = l
      && List.for_all (fun v -> v >= 0 && v < n) l)

(* --- Mex ----------------------------------------------------------- *)

let test_mex_cases () =
  check Alcotest.int "empty" 0 (Mex.of_list []);
  check Alcotest.int "0" 1 (Mex.of_list [ 0 ]);
  check Alcotest.int "gap" 1 (Mex.of_list [ 0; 2; 3 ]);
  check Alcotest.int "dense" 4 (Mex.of_list [ 3; 1; 0; 2 ]);
  check Alcotest.int "dups" 2 (Mex.of_list [ 0; 0; 1; 1 ]);
  check Alcotest.int "negatives ignored" 1 (Mex.of_list [ -3; 0; -1 ]);
  check Alcotest.int "only negatives" 0 (Mex.of_list [ -3; -1 ])

let test_mex_sorted () =
  check Alcotest.int "sorted dense" 3 (Mex.of_sorted [ 0; 1; 2 ]);
  check Alcotest.int "sorted gap" 2 (Mex.of_sorted [ 0; 1; 4; 9 ]);
  check Alcotest.int "sorted dups" 3 (Mex.of_sorted [ 0; 1; 1; 2; 2 ])

let test_mex_excluding () =
  check Alcotest.int "avoid" 2 (Mex.excluding [ 0 ] ~avoid:[ 1 ]);
  check Alcotest.int "avoid nothing" 1 (Mex.excluding [ 0 ] ~avoid:[]);
  check Alcotest.int "avoid everything small" 5
    (Mex.excluding [ 0; 2; 4 ] ~avoid:[ 1; 3 ])

let prop_mex_not_member =
  QCheck.Test.make ~name:"mex s ∉ s"
    QCheck.(list small_nat)
    (fun s -> not (List.mem (Mex.of_list s) s))

let prop_mex_minimal =
  QCheck.Test.make ~name:"∀ k < mex s, k ∈ s"
    QCheck.(list small_nat)
    (fun s ->
      let m = Mex.of_list s in
      List.for_all (fun k -> List.mem k s) (List.init m Fun.id))

let prop_mex_sorted_agrees =
  QCheck.Test.make ~name:"of_sorted agrees with of_list"
    QCheck.(list small_nat)
    (fun s -> Mex.of_sorted (List.sort compare s) = Mex.of_list s)

(* --- Vec ----------------------------------------------------------- *)

module Vec = Asyncolor_util.Vec

let test_vec_push_get () =
  let v = Vec.create ~capacity:2 ~dummy:(-1) () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  for i = 0 to 99 do
    check Alcotest.int "get" (i * i) (Vec.get v i)
  done

let test_vec_bounds () =
  let v = Vec.create ~dummy:0 () in
  Vec.push v 7;
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 1));
  Alcotest.check_raises "set out of bounds"
    (Invalid_argument "Vec.set: index out of bounds") (fun () -> Vec.set v 1 0)

let test_vec_set_grow () =
  let v = Vec.create ~dummy:0 () in
  Vec.set_grow v 5 42;
  check Alcotest.int "grown length" 6 (Vec.length v);
  check Alcotest.int "target" 42 (Vec.get v 5);
  check Alcotest.int "filler" 0 (Vec.get v 2)

let test_vec_to_array () =
  let v = Vec.create ~dummy:"" () in
  List.iter (Vec.push v) [ "a"; "b"; "c" ];
  Alcotest.(check (array string)) "to_array" [| "a"; "b"; "c" |] (Vec.to_array v)

(* --- Domain_pool ---------------------------------------------------- *)

module Domain_pool = Asyncolor_util.Domain_pool

let test_pool_map_ordering () =
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      let input = Array.init 1_000 Fun.id in
      let out = Domain_pool.map pool (fun x -> x * x) input in
      Alcotest.(check (array int)) "squares in index order"
        (Array.map (fun x -> x * x) input)
        out)

let test_pool_sequential_matches_parallel () =
  let f x = (x * 7919) mod 104729 in
  let input = List.init 257 Fun.id in
  let seq = Domain_pool.with_pool ~jobs:1 (fun p -> Domain_pool.map_list p f input) in
  let par = Domain_pool.with_pool ~jobs:4 (fun p -> Domain_pool.map_list p f input) in
  Alcotest.(check (list int)) "jobs=1 and jobs=4 agree" seq par

let test_pool_reuse () =
  Domain_pool.with_pool ~jobs:3 (fun pool ->
      for round = 1 to 5 do
        let out = Domain_pool.map pool (fun x -> x + round) (Array.init 50 Fun.id) in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.init 50 (fun i -> i + round))
          out
      done)

exception Boom of int

let test_pool_exception_lowest_index () =
  (* Several items raise; the pool must deterministically rethrow the
     lowest-index failure, whatever domain hit it first. *)
  for _ = 1 to 10 do
    match
      Domain_pool.with_pool ~jobs:4 (fun pool ->
          Domain_pool.map pool
            (fun x -> if x mod 13 = 12 then raise (Boom x) else x)
            (Array.init 100 Fun.id))
    with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom x -> check Alcotest.int "lowest failing index" 12 x
  done

let test_pool_usable_after_exception () =
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      (try ignore (Domain_pool.map pool (fun _ -> failwith "boom") [| 0; 1 |])
       with Failure _ -> ());
      let out = Domain_pool.map pool Fun.id (Array.init 10 Fun.id) in
      Alcotest.(check (array int)) "pool survives a failed batch"
        (Array.init 10 Fun.id) out)

let test_pool_empty_and_jobs_clamp () =
  Domain_pool.with_pool ~jobs:64 (fun pool ->
      Alcotest.(check (array int)) "empty input" [||] (Domain_pool.map pool Fun.id [||]));
  check Alcotest.bool "default_jobs positive" true (Domain_pool.default_jobs () >= 1)

let test_pool_fail_fast_sequential () =
  (* jobs = 1 drains strictly in index order, so fail-fast has a fully
     deterministic witness: items after the failing one never execute. *)
  let executed = Atomic.make 0 in
  Domain_pool.with_pool ~jobs:1 (fun pool ->
      match
        Domain_pool.map_result pool
          (fun x ->
            Atomic.incr executed;
            if x = 5 then raise (Boom x))
          (Array.init 100 Fun.id)
      with
      | Ok _ -> Alcotest.fail "expected an error"
      | Error e ->
          check Alcotest.int "failing index" 5 e.Domain_pool.index;
          check Alcotest.int "single attempt" 1 e.Domain_pool.attempts;
          check Alcotest.int "items 0..5 executed, tail skipped" 6
            (Atomic.get executed))

let test_pool_fail_fast_parallel () =
  (* With several domains the skipped tail is not exact, but cancellation
     must still cut deep into a 200-item batch when item 10 dies at once
     while every other item takes ~2ms. *)
  let executed = Atomic.make 0 in
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      match
        Domain_pool.map_result pool
          (fun x ->
            Atomic.incr executed;
            if x = 10 then raise (Boom x) else Unix.sleepf 0.002)
          (Array.init 200 Fun.id)
      with
      | Ok _ -> Alcotest.fail "expected an error"
      | Error e ->
          check Alcotest.int "failing index" 10 e.Domain_pool.index;
          check Alcotest.bool "most of the batch was cancelled" true
            (Atomic.get executed < 100))

let test_pool_retry_exhausted () =
  Domain_pool.with_pool ~jobs:2 (fun pool ->
      match
        Domain_pool.map_result pool ~retries:3
          (fun x -> if x = 1 then failwith "always" else x)
          [| 0; 1; 2 |]
      with
      | Ok _ -> Alcotest.fail "expected an error"
      | Error e ->
          check Alcotest.int "failing index" 1 e.Domain_pool.index;
          check Alcotest.int "1 attempt + 3 retries" 4 e.Domain_pool.attempts;
          check Alcotest.bool "original exception kept" true
            (match e.Domain_pool.error with Failure m -> m = "always" | _ -> false))

let test_pool_retry_rescues_flaky () =
  (* An item that fails twice then succeeds must not poison the batch when
     retries cover the flakiness. *)
  let attempts = Array.init 8 (fun _ -> Atomic.make 0) in
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      let out =
        Domain_pool.map pool ~retries:2
          (fun x ->
            let k = 1 + Atomic.fetch_and_add attempts.(x) 1 in
            if x = 3 && k <= 2 then failwith "flaky" else x * 10)
          (Array.init 8 Fun.id)
      in
      Alcotest.(check (array int)) "all items succeed"
        (Array.init 8 (fun i -> i * 10))
        out;
      check Alcotest.int "flaky item ran 3 times" 3 (Atomic.get attempts.(3)))

let test_pool_shutdown_after_failed_batch () =
  (* with_pool's Fun.protect shuts the pool down while the failed batch's
     error is propagating; this must terminate (no deadlocked worker
     waiting on work_available) and surface the original exception. *)
  for _ = 1 to 20 do
    match
      Domain_pool.with_pool ~jobs:4 (fun pool ->
          Domain_pool.map pool
            (fun x -> if x >= 2 then raise (Boom x) else x)
            (Array.init 64 Fun.id))
    with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom x -> check Alcotest.int "lowest index" 2 x
  done

(* --- Jsonout -------------------------------------------------------- *)

module Jsonout = Asyncolor_util.Jsonout

let test_json_escaping () =
  let s =
    Jsonout.to_string
      (Jsonout.Obj
         [
           ("k\"ey", Jsonout.String "line\nbreak\ttab \\ \x01");
           ("nums", Jsonout.List [ Jsonout.Int 3; Jsonout.Float 1.5; Jsonout.Null ]);
           ("b", Jsonout.Bool true);
           ("empty", Jsonout.Obj []);
         ])
  in
  check Alcotest.bool "escapes quote" true
    (Astring.String.is_infix ~affix:"\"k\\\"ey\"" s);
  check Alcotest.bool "escapes newline" true
    (Astring.String.is_infix ~affix:"line\\nbreak\\ttab \\\\ \\u0001" s);
  check Alcotest.bool "float has a dot" true (Astring.String.is_infix ~affix:"1.5" s);
  check Alcotest.bool "null" true (Astring.String.is_infix ~affix:"null" s)

let test_json_float_forms () =
  check Alcotest.string "integral float gets .0" "2.0"
    (String.trim (Jsonout.to_string (Jsonout.Float 2.)));
  check Alcotest.string "nan is null" "null"
    (String.trim (Jsonout.to_string (Jsonout.Float Float.nan)));
  check Alcotest.string "inf is null" "null"
    (String.trim (Jsonout.to_string (Jsonout.Float Float.infinity)))

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_preserves_stream;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_int_invalid;
          Alcotest.test_case "int covers range" `Quick test_int_covers_range;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "float mean" `Quick test_float_mean;
          Alcotest.test_case "bool balance" `Quick test_bool_balance;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "shuffle moves" `Quick test_shuffle_actually_moves;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_sample_without_replacement;
          qtest prop_sample_distinct;
        ] );
      ( "mex",
        [
          Alcotest.test_case "cases" `Quick test_mex_cases;
          Alcotest.test_case "sorted" `Quick test_mex_sorted;
          Alcotest.test_case "excluding" `Quick test_mex_excluding;
          qtest prop_mex_not_member;
          qtest prop_mex_minimal;
          qtest prop_mex_sorted_agrees;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "set_grow" `Quick test_vec_set_grow;
          Alcotest.test_case "to_array" `Quick test_vec_to_array;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "map ordering" `Quick test_pool_map_ordering;
          Alcotest.test_case "jobs=1 vs jobs=4" `Quick
            test_pool_sequential_matches_parallel;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "exception: lowest index" `Quick
            test_pool_exception_lowest_index;
          Alcotest.test_case "usable after exception" `Quick
            test_pool_usable_after_exception;
          Alcotest.test_case "empty input, many jobs" `Quick
            test_pool_empty_and_jobs_clamp;
          Alcotest.test_case "fail-fast: sequential tail skipped" `Quick
            test_pool_fail_fast_sequential;
          Alcotest.test_case "fail-fast: parallel batch cancelled" `Quick
            test_pool_fail_fast_parallel;
          Alcotest.test_case "retries exhausted" `Quick test_pool_retry_exhausted;
          Alcotest.test_case "retries rescue a flaky item" `Quick
            test_pool_retry_rescues_flaky;
          Alcotest.test_case "shutdown after failed batch" `Quick
            test_pool_shutdown_after_failed_batch;
        ] );
      ( "jsonout",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "float forms" `Quick test_json_float_forms;
        ] );
    ]
