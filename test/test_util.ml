(* Unit and property tests for Asyncolor_util: the SplitMix64 PRNG and the
   minimum-excludant helper. *)

module Prng = Asyncolor_util.Prng
module Mex = Asyncolor_util.Mex

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

(* --- Prng ---------------------------------------------------------- *)

let test_determinism () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:123 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let da = List.init 8 (fun _ -> Prng.bits64 a) in
  let db = List.init 8 (fun _ -> Prng.bits64 b) in
  check Alcotest.bool "different seeds differ" true (da <> db)

let test_copy_preserves_stream () =
  let a = Prng.create ~seed:9 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  check Alcotest.int64 "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_split_independent () =
  let a = Prng.create ~seed:5 in
  let b = Prng.split a in
  let xa = Prng.bits64 a and xb = Prng.bits64 b in
  check Alcotest.bool "split streams differ" true (xa <> xb)

let test_int_bounds () =
  let p = Prng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Prng.int p 13 in
    if v < 0 || v >= 13 then Alcotest.failf "out of bounds: %d" v
  done

let test_int_invalid () =
  let p = Prng.create ~seed:7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int p 0))

let test_int_covers_range () =
  let p = Prng.create ~seed:11 in
  let seen = Array.make 6 false in
  for _ = 1 to 1_000 do
    seen.(Prng.int p 6) <- true
  done;
  check Alcotest.bool "all values hit" true (Array.for_all Fun.id seen)

let test_int_in () =
  let p = Prng.create ~seed:3 in
  for _ = 1 to 1_000 do
    let v = Prng.int_in p (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "out of range: %d" v
  done;
  check Alcotest.int "singleton range" 4 (Prng.int_in p 4 4)

let test_float_bounds () =
  let p = Prng.create ~seed:17 in
  for _ = 1 to 10_000 do
    let v = Prng.float p 1.0 in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "float out of bounds: %f" v
  done

let test_float_mean () =
  let p = Prng.create ~seed:23 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.float p 1.0
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_bool_balance () =
  let p = Prng.create ~seed:29 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.bool p then incr trues
  done;
  check Alcotest.bool "roughly balanced" true (abs (!trues - 5_000) < 500)

let test_shuffle_is_permutation () =
  let p = Prng.create ~seed:31 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 100 Fun.id) sorted

let test_shuffle_actually_moves () =
  let p = Prng.create ~seed:37 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle p a;
  check Alcotest.bool "not identity" true (a <> Array.init 100 Fun.id)

let test_choose () =
  let p = Prng.create ~seed:41 in
  for _ = 1 to 100 do
    let v = Prng.choose p [| 10; 20; 30 |] in
    check Alcotest.bool "member" true (List.mem v [ 10; 20; 30 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.choose: empty array") (fun () ->
      ignore (Prng.choose p [||]))

let test_sample_without_replacement () =
  let p = Prng.create ~seed:43 in
  for _ = 1 to 200 do
    let l = Prng.sample_without_replacement p 5 20 in
    check Alcotest.int "size" 5 (List.length l);
    check Alcotest.bool "sorted distinct" true (List.sort_uniq compare l = l);
    List.iter (fun v -> check Alcotest.bool "range" true (v >= 0 && v < 20)) l
  done;
  check Alcotest.(list int) "k = n" [ 0; 1; 2 ] (Prng.sample_without_replacement p 3 3);
  check Alcotest.(list int) "k = 0" [] (Prng.sample_without_replacement p 0 5)

let prop_sample_distinct =
  QCheck.Test.make ~name:"sample_without_replacement: distinct, in range"
    QCheck.(pair small_nat small_nat)
    (fun (k, extra) ->
      let n = k + extra in
      let p = Prng.create ~seed:(k + (extra * 1000)) in
      let l = Prng.sample_without_replacement p k n in
      List.length l = k
      && List.sort_uniq compare l = l
      && List.for_all (fun v -> v >= 0 && v < n) l)

(* --- Mex ----------------------------------------------------------- *)

let test_mex_cases () =
  check Alcotest.int "empty" 0 (Mex.of_list []);
  check Alcotest.int "0" 1 (Mex.of_list [ 0 ]);
  check Alcotest.int "gap" 1 (Mex.of_list [ 0; 2; 3 ]);
  check Alcotest.int "dense" 4 (Mex.of_list [ 3; 1; 0; 2 ]);
  check Alcotest.int "dups" 2 (Mex.of_list [ 0; 0; 1; 1 ]);
  check Alcotest.int "negatives ignored" 1 (Mex.of_list [ -3; 0; -1 ]);
  check Alcotest.int "only negatives" 0 (Mex.of_list [ -3; -1 ])

let test_mex_sorted () =
  check Alcotest.int "sorted dense" 3 (Mex.of_sorted [ 0; 1; 2 ]);
  check Alcotest.int "sorted gap" 2 (Mex.of_sorted [ 0; 1; 4; 9 ]);
  check Alcotest.int "sorted dups" 3 (Mex.of_sorted [ 0; 1; 1; 2; 2 ])

let test_mex_excluding () =
  check Alcotest.int "avoid" 2 (Mex.excluding [ 0 ] ~avoid:[ 1 ]);
  check Alcotest.int "avoid nothing" 1 (Mex.excluding [ 0 ] ~avoid:[]);
  check Alcotest.int "avoid everything small" 5
    (Mex.excluding [ 0; 2; 4 ] ~avoid:[ 1; 3 ])

let prop_mex_not_member =
  QCheck.Test.make ~name:"mex s ∉ s"
    QCheck.(list small_nat)
    (fun s -> not (List.mem (Mex.of_list s) s))

let prop_mex_minimal =
  QCheck.Test.make ~name:"∀ k < mex s, k ∈ s"
    QCheck.(list small_nat)
    (fun s ->
      let m = Mex.of_list s in
      List.for_all (fun k -> List.mem k s) (List.init m Fun.id))

let prop_mex_sorted_agrees =
  QCheck.Test.make ~name:"of_sorted agrees with of_list"
    QCheck.(list small_nat)
    (fun s -> Mex.of_sorted (List.sort compare s) = Mex.of_list s)

(* --- Vec ----------------------------------------------------------- *)

module Vec = Asyncolor_util.Vec

let test_vec_push_get () =
  let v = Vec.create ~capacity:2 ~dummy:(-1) () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  for i = 0 to 99 do
    check Alcotest.int "get" (i * i) (Vec.get v i)
  done

let test_vec_bounds () =
  let v = Vec.create ~dummy:0 () in
  Vec.push v 7;
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 1));
  Alcotest.check_raises "set out of bounds"
    (Invalid_argument "Vec.set: index out of bounds") (fun () -> Vec.set v 1 0)

let test_vec_set_grow () =
  let v = Vec.create ~dummy:0 () in
  Vec.set_grow v 5 42;
  check Alcotest.int "grown length" 6 (Vec.length v);
  check Alcotest.int "target" 42 (Vec.get v 5);
  check Alcotest.int "filler" 0 (Vec.get v 2)

let test_vec_to_array () =
  let v = Vec.create ~dummy:"" () in
  List.iter (Vec.push v) [ "a"; "b"; "c" ];
  Alcotest.(check (array string)) "to_array" [| "a"; "b"; "c" |] (Vec.to_array v)

(* --- Domain_pool ---------------------------------------------------- *)

module Domain_pool = Asyncolor_util.Domain_pool

let test_pool_map_ordering () =
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      let input = Array.init 1_000 Fun.id in
      let out = Domain_pool.map pool (fun x -> x * x) input in
      Alcotest.(check (array int)) "squares in index order"
        (Array.map (fun x -> x * x) input)
        out)

let test_pool_sequential_matches_parallel () =
  let f x = (x * 7919) mod 104729 in
  let input = List.init 257 Fun.id in
  let seq = Domain_pool.with_pool ~jobs:1 (fun p -> Domain_pool.map_list p f input) in
  let par = Domain_pool.with_pool ~jobs:4 (fun p -> Domain_pool.map_list p f input) in
  Alcotest.(check (list int)) "jobs=1 and jobs=4 agree" seq par

let test_pool_reuse () =
  Domain_pool.with_pool ~jobs:3 (fun pool ->
      for round = 1 to 5 do
        let out = Domain_pool.map pool (fun x -> x + round) (Array.init 50 Fun.id) in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.init 50 (fun i -> i + round))
          out
      done)

exception Boom of int

let test_pool_exception_lowest_index () =
  (* Several items raise; the pool must deterministically rethrow the
     lowest-index failure, whatever domain hit it first. *)
  for _ = 1 to 10 do
    match
      Domain_pool.with_pool ~jobs:4 (fun pool ->
          Domain_pool.map pool
            (fun x -> if x mod 13 = 12 then raise (Boom x) else x)
            (Array.init 100 Fun.id))
    with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom x -> check Alcotest.int "lowest failing index" 12 x
  done

let test_pool_usable_after_exception () =
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      (try ignore (Domain_pool.map pool (fun _ -> failwith "boom") [| 0; 1 |])
       with Failure _ -> ());
      let out = Domain_pool.map pool Fun.id (Array.init 10 Fun.id) in
      Alcotest.(check (array int)) "pool survives a failed batch"
        (Array.init 10 Fun.id) out)

let test_pool_empty_and_jobs_clamp () =
  Domain_pool.with_pool ~jobs:64 (fun pool ->
      Alcotest.(check (array int)) "empty input" [||] (Domain_pool.map pool Fun.id [||]));
  check Alcotest.bool "default_jobs positive" true (Domain_pool.default_jobs () >= 1)

let test_pool_fail_fast_sequential () =
  (* jobs = 1 drains strictly in index order, so fail-fast has a fully
     deterministic witness: items after the failing one never execute. *)
  let executed = Atomic.make 0 in
  Domain_pool.with_pool ~jobs:1 (fun pool ->
      match
        Domain_pool.map_result pool
          (fun x ->
            Atomic.incr executed;
            if x = 5 then raise (Boom x))
          (Array.init 100 Fun.id)
      with
      | Ok _ -> Alcotest.fail "expected an error"
      | Error e ->
          check Alcotest.int "failing index" 5 e.Domain_pool.index;
          check Alcotest.int "single attempt" 1 e.Domain_pool.attempts;
          check Alcotest.int "items 0..5 executed, tail skipped" 6
            (Atomic.get executed))

let test_pool_fail_fast_parallel () =
  (* With several domains the skipped tail is not exact, but cancellation
     must still cut deep into a 200-item batch when item 10 dies at once
     while every other item takes ~2ms. *)
  let executed = Atomic.make 0 in
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      match
        Domain_pool.map_result pool
          (fun x ->
            Atomic.incr executed;
            if x = 10 then raise (Boom x) else Unix.sleepf 0.002)
          (Array.init 200 Fun.id)
      with
      | Ok _ -> Alcotest.fail "expected an error"
      | Error e ->
          check Alcotest.int "failing index" 10 e.Domain_pool.index;
          check Alcotest.bool "most of the batch was cancelled" true
            (Atomic.get executed < 100))

let test_pool_retry_exhausted () =
  Domain_pool.with_pool ~jobs:2 (fun pool ->
      match
        Domain_pool.map_result pool ~retries:3
          (fun x -> if x = 1 then failwith "always" else x)
          [| 0; 1; 2 |]
      with
      | Ok _ -> Alcotest.fail "expected an error"
      | Error e ->
          check Alcotest.int "failing index" 1 e.Domain_pool.index;
          check Alcotest.int "1 attempt + 3 retries" 4 e.Domain_pool.attempts;
          check Alcotest.bool "original exception kept" true
            (match e.Domain_pool.error with Failure m -> m = "always" | _ -> false))

let test_pool_retry_rescues_flaky () =
  (* An item that fails twice then succeeds must not poison the batch when
     retries cover the flakiness. *)
  let attempts = Array.init 8 (fun _ -> Atomic.make 0) in
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      let out =
        Domain_pool.map pool ~retries:2
          (fun x ->
            let k = 1 + Atomic.fetch_and_add attempts.(x) 1 in
            if x = 3 && k <= 2 then failwith "flaky" else x * 10)
          (Array.init 8 Fun.id)
      in
      Alcotest.(check (array int)) "all items succeed"
        (Array.init 8 (fun i -> i * 10))
        out;
      check Alcotest.int "flaky item ran 3 times" 3 (Atomic.get attempts.(3)))

let test_pool_shutdown_after_failed_batch () =
  (* with_pool's Fun.protect shuts the pool down while the failed batch's
     error is propagating; this must terminate (no deadlocked worker
     waiting on work_available) and surface the original exception. *)
  for _ = 1 to 20 do
    match
      Domain_pool.with_pool ~jobs:4 (fun pool ->
          Domain_pool.map pool
            (fun x -> if x >= 2 then raise (Boom x) else x)
            (Array.init 64 Fun.id))
    with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom x -> check Alcotest.int "lowest index" 2 x
  done

(* --- Executor: work-stealing deque ----------------------------------- *)

module Executor = Asyncolor_util.Executor
module Ws_deque = Executor.Ws_deque
module Obs = Asyncolor_obs.Obs

(* Sequential linearizability against the obvious list model (head = the
   steal/FIFO end, tail = the owner/LIFO end): every operation's result
   and the deque length must match the model at each step.  Ops are 0 =
   push (of the next integer), 1 = pop, 2 = steal. *)
let prop_deque_matches_model =
  QCheck.Test.make ~name:"Ws_deque: sequential ops match the list model"
    ~count:500
    QCheck.(list (int_range 0 2))
    (fun ops ->
      let d = Ws_deque.create () in
      let model = ref [] in
      let next = ref 0 in
      List.for_all
        (fun op ->
          let step_ok =
            match op with
            | 0 ->
                let v = !next in
                incr next;
                Ws_deque.push d v;
                model := !model @ [ v ];
                true
            | 1 -> (
                let got = Ws_deque.pop d in
                match List.rev !model with
                | [] -> got = None
                | last :: rev_rest ->
                    model := List.rev rev_rest;
                    got = Some last)
            | _ -> (
                let got = Ws_deque.steal d in
                match !model with
                | [] -> got = None
                | first :: rest ->
                    model := rest;
                    got = Some first)
          in
          step_ok && Ws_deque.length d = List.length !model)
        ops)

let rec strictly_increasing = function
  | a :: (b :: _ as tl) -> a < b && strictly_increasing tl
  | _ -> true

let test_deque_concurrent_conservation () =
  (* One owner pushes 0..N-1 (popping every fifth push, so the grow path
     and the owner/thief races on a shrinking bottom are exercised) while
     three thief domains steal continuously.  Two linearizability facts
     survive any interleaving: every item is handed out exactly once
     (conservation), and each thief's stolen sequence is strictly
     increasing (steals come off a monotone top, and the live region of
     the buffer always holds increasing values). *)
  let d = Ws_deque.create () in
  let total = 20_000 in
  let done_ = Atomic.make false in
  let stolen = Array.init 3 (fun _ -> ref []) in
  let thieves =
    Array.map
      (fun acc ->
        Domain.spawn (fun () ->
            let rec loop () =
              match Ws_deque.steal d with
              | Some v ->
                  acc := v :: !acc;
                  loop ()
              | None ->
                  if not (Atomic.get done_) then begin
                    Domain.cpu_relax ();
                    loop ()
                  end
            in
            loop ()))
      stolen
  in
  let popped = ref [] in
  for i = 0 to total - 1 do
    Ws_deque.push d i;
    if i mod 5 = 0 then
      match Ws_deque.pop d with
      | Some v -> popped := v :: !popped
      | None -> ()
  done;
  Atomic.set done_ true;
  Array.iter Domain.join thieves;
  let rec drain () =
    match Ws_deque.pop d with
    | Some v ->
        popped := v :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  let all =
    List.concat (!popped :: Array.to_list (Array.map (fun r -> !r) stolen))
  in
  check Alcotest.int "every pushed item handed out exactly once" total
    (List.length all);
  Alcotest.(check (list int))
    "no duplicates, no losses"
    (List.init total Fun.id)
    (List.sort compare all);
  Array.iteri
    (fun k acc ->
      check Alcotest.bool
        (Printf.sprintf "thief %d stole in increasing order" k)
        true
        (strictly_increasing (List.rev !acc)))
    stolen

(* --- Executor: policies, clamping, windows --------------------------- *)

let test_executor_jobs_clamped () =
  (* Satellite guarantee: jobs <= 0 is sanitised once, at the executor
     boundary, for every client. *)
  List.iter
    (fun jobs ->
      Executor.with_executor ~jobs (fun exec ->
          check Alcotest.int
            (Printf.sprintf "jobs:%d clamps to 1" jobs)
            1 (Executor.jobs exec)))
    [ 0; -3 ];
  Executor.with_executor ~policy:Executor.Serial ~jobs:8 (fun exec ->
      check Alcotest.int "Serial forces jobs=1" 1 (Executor.jobs exec));
  Domain_pool.with_pool ~jobs:0 (fun pool ->
      check Alcotest.int "Domain_pool inherits the clamp" 1
        (Domain_pool.jobs pool));
  Domain_pool.with_pool ~jobs:(-7) (fun pool ->
      check Alcotest.int "negative jobs too" 1 (Domain_pool.jobs pool))

let test_policy_parsing () =
  let name s = Executor.policy_name (Executor.policy_of_string ~jobs:4 s) in
  check Alcotest.string "serial" "serial" (name "serial");
  check Alcotest.string "sync" "synchronous" (name "sync");
  check Alcotest.string "SYNC is case-insensitive" "synchronous" (name "SYNC");
  check Alcotest.string "async" "asynchronous" (name "async");
  (match Executor.policy_of_string ~jobs:4 "level-sync" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on an unknown policy");
  (match Executor.asynchronous ~kappa:1.5 ~jobs:2 () with
  | Executor.Asynchronous { kappa; max_active } ->
      check (Alcotest.float 0.0) "kappa clamped to 1" 1.0 kappa;
      check Alcotest.int "max_active defaults to 4*jobs" 8 max_active
  | _ -> Alcotest.fail "asynchronous must build Asynchronous");
  check (Alcotest.float 0.0) "Synchronous is a full barrier" 1.0
    (Executor.policy_kappa Executor.Synchronous);
  check (Alcotest.float 0.0) "kappa surfaces from Asynchronous" 0.25
    (Executor.policy_kappa (Executor.asynchronous ~kappa:0.25 ~jobs:2 ()))

let test_executor_policies_agree () =
  let input = Array.init 300 Fun.id in
  let expected = Array.map (fun x -> x * 3) input in
  List.iter
    (fun policy ->
      Executor.with_executor ~policy ~jobs:4 (fun exec ->
          Alcotest.(check (array int))
            (Executor.policy_name policy ^ " output")
            expected
            (Executor.map exec (fun x -> x * 3) input)))
    [
      Executor.Serial;
      Executor.Synchronous;
      Executor.asynchronous ~kappa:0.5 ~jobs:4 ();
      Executor.asynchronous ~max_active:2 ~jobs:4 ();
    ]

let metric obs name = Option.value ~default:0 (List.assoc_opt name (Obs.metrics obs))

let test_executor_backpressure_bounded () =
  (* Slow producer feeding a fast consumer through a max_active=2 window:
     the in-flight gauge must never exceed the window and the window must
     actually have stalled submissions (the exec.backpressure counter). *)
  let obs = Obs.create () in
  Executor.with_executor ~obs
    ~policy:(Executor.asynchronous ~max_active:2 ~jobs:2 ())
    ~jobs:2
    (fun exec ->
      let out =
        Executor.map exec
          (fun x ->
            Unix.sleepf 0.001;
            x + 1)
          (Array.init 50 Fun.id)
      in
      Alcotest.(check (array int))
        "results intact under the window"
        (Array.init 50 (fun i -> i + 1))
        out);
  check Alcotest.bool "inflight stayed within max_active" true
    (metric obs "exec.inflight_max" <= 2);
  check Alcotest.bool "window produced backpressure" true
    (metric obs "exec.backpressure" > 0);
  check Alcotest.int "every task ran exactly once" 50 (metric obs "exec.tasks")

let test_executor_async_failure_isolation () =
  (* Under the Asynchronous policy a poisoned item must cancel the rest
     of the batch (skipped items never call f) and still report the
     lowest failing index, deterministically. *)
  let executed = Atomic.make 0 in
  Executor.with_executor
    ~policy:(Executor.asynchronous ~max_active:2 ~jobs:4 ())
    ~jobs:4
    (fun exec ->
      match
        Executor.map_result exec
          (fun x ->
            Atomic.incr executed;
            if x = 3 then raise (Boom x) else Unix.sleepf 0.001)
          (Array.init 100 Fun.id)
      with
      | Ok _ -> Alcotest.fail "expected an error"
      | Error e ->
          check Alcotest.int "lowest failing index" 3 e.Executor.index;
          check Alcotest.bool "tail of the batch was cancelled" true
            (Atomic.get executed < 50);
          (* the executor survives the poisoned batch *)
          Alcotest.(check (array int))
            "usable after cancellation"
            [| 0; 10; 20 |]
            (Executor.map exec (fun x -> x * 10) [| 0; 1; 2 |]))

let test_executor_submit_await_stream () =
  (* The future layer under the explorer: a FIFO stream of submissions
     awaited in order, mixing immediate and computed results. *)
  Executor.with_executor ~jobs:2 (fun exec ->
      let futs = List.init 200 (fun i -> Executor.submit exec (fun () -> i * i)) in
      List.iteri
        (fun i fut -> check Alcotest.int "in-order await" (i * i) (Executor.await fut))
        futs);
  Executor.with_executor ~jobs:2 (fun exec ->
      let fut = Executor.submit exec (fun () -> raise (Boom 7)) in
      match Executor.await_result fut with
      | Error (Boom 7, _) -> ()
      | Error _ -> Alcotest.fail "wrong exception"
      | Ok _ -> Alcotest.fail "expected the task's exception")

let test_executor_submit_after_shutdown () =
  let exec = Executor.create ~jobs:2 () in
  Executor.shutdown exec;
  match Executor.submit exec (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown"

(* --- Executor watchdog (chaos-injected worker crashes) --------------- *)

module Chaos = Asyncolor_resilience.Chaos

(* Spin enough that spawned workers get scheduled and steal tasks before
   the caller drains the whole deque itself. *)
let slow f x =
  for _ = 1 to 10_000 do
    ignore (Sys.opaque_identity x)
  done;
  f x

let test_executor_worker_crash_recovery () =
  (* Rate 1 at the worker site kills every spawned worker at its first
     task-take; the task is reinjected and the caller finishes the batch.
     Counters are read after with_executor so the domains are joined. *)
  let chaos = Chaos.create ~seed:9 ~rate:1.0 ~sites:[ "exec.worker" ] () in
  let input = Array.init 400 Fun.id in
  let expect = Array.map (fun x -> x * x) input in
  let held = ref None in
  Executor.with_executor ~chaos ~policy:Executor.Synchronous ~jobs:4
    (fun exec ->
      held := Some exec;
      let rounds = ref 0 in
      let out = ref (Executor.map exec (slow (fun x -> x * x)) input) in
      (* workers may not have been scheduled before the caller drained the
         first batch; give them more chances *)
      while Executor.worker_crashes exec = 0 && !rounds < 20 do
        incr rounds;
        out := Executor.map exec (slow (fun x -> x * x)) input
      done;
      check (Alcotest.array Alcotest.int) "results intact despite crashes"
        expect !out);
  let exec = Option.get !held in
  check Alcotest.bool "worker crashes recorded" true
    (Executor.worker_crashes exec >= 1);
  check Alcotest.bool "caller always survives" true
    (Executor.alive_workers exec >= 1);
  check Alcotest.bool "injections surfaced in chaos stats" true
    ((Chaos.stats chaos).Chaos.injected >= 1)

let test_executor_degradation_ladder () =
  (* degrade_after:1 walks the policy down a rung on the first worker
     failure: asynchronous must not still be the policy at the end. *)
  let chaos = Chaos.create ~seed:9 ~rate:1.0 ~sites:[ "exec.worker" ] () in
  let input = Array.init 400 Fun.id in
  let held = ref None in
  Executor.with_executor ~chaos ~degrade_after:1
    ~policy:(Executor.asynchronous ~kappa:0.5 ~jobs:4 ())
    ~jobs:4
    (fun exec ->
      held := Some exec;
      let rounds = ref 0 in
      let out = ref (Executor.map exec (slow (fun x -> x + 1)) input) in
      while Executor.worker_crashes exec = 0 && !rounds < 20 do
        incr rounds;
        out := Executor.map exec (slow (fun x -> x + 1)) input
      done;
      check (Alcotest.array Alcotest.int) "results intact while degrading"
        (Array.map (fun x -> x + 1) input)
        !out);
  let exec = Option.get !held in
  check Alcotest.bool "policy degraded at least once" true
    (Executor.degradations exec >= 1);
  check Alcotest.bool "policy walked down from asynchronous" true
    (Executor.policy_name (Executor.policy exec) <> "asynchronous")

let test_executor_chaos_output_identical () =
  let input = Array.init 500 Fun.id in
  let f x = x * 7919 mod 101 in
  let plain =
    Executor.with_executor ~policy:Executor.Synchronous ~jobs:4 (fun e ->
        Executor.map e f input)
  in
  let chaotic =
    let chaos = Chaos.create ~seed:4 ~rate:0.3 ~sites:[ "exec.worker" ] () in
    Executor.with_executor ~chaos ~policy:Executor.Synchronous ~jobs:4 (fun e ->
        Executor.map e f input)
  in
  check (Alcotest.array Alcotest.int) "crashes never change the output"
    plain chaotic

(* --- Ring ------------------------------------------------------------ *)

module Ring = Asyncolor_util.Ring

let test_ring_fifo_window () =
  let r = Ring.create ~capacity:2 ~start:100 ~dummy:(-1) () in
  check Alcotest.int "lo starts at start" 100 (Ring.lo r);
  for i = 0 to 499 do
    Ring.push r (i * 2)
  done;
  check Alcotest.int "hi advanced" 600 (Ring.hi r);
  check Alcotest.int "length" 500 (Ring.length r);
  check Alcotest.int "absolute get" 84 (Ring.get r 142);
  for _ = 1 to 300 do
    Ring.drop r
  done;
  check Alcotest.int "lo advanced" 400 (Ring.lo r);
  check Alcotest.int "window survives drops" (2 * 350) (Ring.get r 450);
  Alcotest.check_raises "get below lo"
    (Invalid_argument "Ring.get: position 399 outside [400, 600)") (fun () ->
      ignore (Ring.get r 399));
  Alcotest.check_raises "get at hi"
    (Invalid_argument "Ring.get: position 600 outside [400, 600)") (fun () ->
      ignore (Ring.get r 600))

(* --- Sharded_tbl ----------------------------------------------------- *)

module Int_tbl = Asyncolor_util.Sharded_tbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

let test_sharded_tbl_basics () =
  let t = Int_tbl.create ~shards:3 16 in
  check Alcotest.int "shard count rounds up to a power of two" 4
    (Int_tbl.shards t);
  for k = 0 to 999 do
    Int_tbl.add t k (k * 7)
  done;
  check Alcotest.int "length sums the shards" 1_000 (Int_tbl.length t);
  check Alcotest.(option int) "find_opt routes to the owner" (Some 4_900)
    (Int_tbl.find_opt t 700);
  check Alcotest.(option int) "absent key" None (Int_tbl.find_opt t 1_000);
  let lens = Int_tbl.shard_lengths t in
  check Alcotest.int "shard_lengths sum to length" 1_000
    (Array.fold_left ( + ) 0 lens);
  check Alcotest.bool "hash spreads over shards" true
    (Array.for_all (fun l -> l > 0) lens)

let test_sharded_tbl_explicit_shard () =
  let t = Int_tbl.create ~shards:4 4 in
  List.iter
    (fun k ->
      let shard = Int_tbl.shard_of t k in
      Int_tbl.add_in t ~shard k (k + 1);
      check Alcotest.(option int) "find_opt_in own shard" (Some (k + 1))
        (Int_tbl.find_opt_in t ~shard k);
      check Alcotest.(option int) "plain find_opt agrees" (Some (k + 1))
        (Int_tbl.find_opt t k))
    [ 0; 17; 123_456; max_int ];
  let seen = ref [] in
  Int_tbl.iter (fun k v -> seen := (k, v) :: !seen) t;
  check Alcotest.int "iter visits every binding" 4 (List.length !seen)

(* --- Level_log -------------------------------------------------------- *)

module Level_log = Asyncolor_util.Sharded_tbl.Level_log

let no_fetch ~level = Alcotest.failf "unexpected fetch of level %d" level

let test_level_log_plain_vector () =
  (* without a threshold the log is a plain resident vector: seal never
     closes anything and reassembly needs no fetch *)
  let l = Level_log.create () in
  for i = 0 to 99 do
    Level_log.push l (i * 3)
  done;
  check Alcotest.int "length" 100 (Level_log.length l);
  check Alcotest.int "all resident" 100 (Level_log.resident_words l);
  check Alcotest.int "nothing spilled" 0 (Level_log.spilled_words l);
  check Alcotest.bool "seal is a no-op" true (Level_log.seal l = None);
  check
    Alcotest.(array int)
    "to_array round-trip"
    (Array.init 100 (fun i -> i * 3))
    (Level_log.to_array ~fetch:no_fetch l)

let test_level_log_seal_threshold () =
  let l = Level_log.create ~threshold_words:10 () in
  let store = Hashtbl.create 8 in
  let maybe_seal () =
    match Level_log.seal l with
    | None -> ()
    | Some (level, words) ->
        check Alcotest.bool "level indices sequential" false
          (Hashtbl.mem store level);
        check Alcotest.bool "sealed at or above threshold" true
          (Array.length words >= 10);
        Hashtbl.add store level words
  in
  for i = 0 to 34 do
    Level_log.push l i;
    (* a safe boundary every 7 pushes: below threshold the tail stays *)
    if (i + 1) mod 7 = 0 then maybe_seal ()
  done;
  check Alcotest.int "length counts closed levels" 35 (Level_log.length l);
  check Alcotest.int "two levels closed" 2 (Level_log.spilled_levels l);
  check Alcotest.int "spilled words" 28 (Level_log.spilled_words l);
  check Alcotest.int "resident tail" 7 (Level_log.resident_words l);
  let fetch ~level = Hashtbl.find store level in
  check
    Alcotest.(array int)
    "to_array stitches levels in order"
    (Array.init 35 Fun.id)
    (Level_log.to_array ~fetch l);
  let ba = Level_log.to_bigarray ~fetch l in
  check Alcotest.int "bigarray dim" 35 (Bigarray.Array1.dim ba);
  let ok = ref true in
  for i = 0 to 34 do
    if Bigarray.Array1.get ba i <> i then ok := false
  done;
  check Alcotest.bool "bigarray contents" true !ok

let test_level_log_of_array () =
  let l = Level_log.of_array ~threshold_words:2 [| 9; 8; 7 |] in
  check Alcotest.int "seeded length" 3 (Level_log.length l);
  Level_log.push l 6;
  match Level_log.seal l with
  | None -> Alcotest.fail "tail above threshold must seal"
  | Some (level, words) ->
      check Alcotest.int "first level index" 0 level;
      check Alcotest.(array int) "seed + push sealed" [| 9; 8; 7; 6 |] words;
      check Alcotest.int "offsets stable across seal" 4 (Level_log.length l);
      check
        Alcotest.(array int)
        "reassembly fetches the seal"
        [| 9; 8; 7; 6 |]
        (Level_log.to_array ~fetch:(fun ~level:_ -> words) l)

let test_level_log_fetch_length_mismatch () =
  let l = Level_log.of_array ~threshold_words:1 [| 1; 2; 3 |] in
  (match Level_log.seal l with
  | Some _ -> ()
  | None -> Alcotest.fail "seal expected");
  (* the cheap second line of defence behind the spill checksum *)
  match Level_log.to_array ~fetch:(fun ~level:_ -> [| 1; 2 |]) l with
  | _ -> Alcotest.fail "length mismatch must be rejected"
  | exception Invalid_argument _ -> ()

let test_level_log_negative_threshold () =
  match Level_log.create ~threshold_words:(-1) () with
  | _ -> Alcotest.fail "negative threshold must be rejected"
  | exception Invalid_argument _ -> ()

let test_level_log_empty_tail_never_seals () =
  let l = Level_log.create ~threshold_words:0 () in
  check Alcotest.bool "empty tail" true (Level_log.seal l = None);
  Level_log.push l 42;
  (match Level_log.seal l with
  | Some (0, [| 42 |]) -> ()
  | _ -> Alcotest.fail "threshold 0 seals any non-empty tail");
  check Alcotest.bool "tail empty again" true (Level_log.seal l = None)

(* --- Jsonout -------------------------------------------------------- *)

module Jsonout = Asyncolor_util.Jsonout

let test_json_escaping () =
  let s =
    Jsonout.to_string
      (Jsonout.Obj
         [
           ("k\"ey", Jsonout.String "line\nbreak\ttab \\ \x01");
           ("nums", Jsonout.List [ Jsonout.Int 3; Jsonout.Float 1.5; Jsonout.Null ]);
           ("b", Jsonout.Bool true);
           ("empty", Jsonout.Obj []);
         ])
  in
  check Alcotest.bool "escapes quote" true
    (Astring.String.is_infix ~affix:"\"k\\\"ey\"" s);
  check Alcotest.bool "escapes newline" true
    (Astring.String.is_infix ~affix:"line\\nbreak\\ttab \\\\ \\u0001" s);
  check Alcotest.bool "float has a dot" true (Astring.String.is_infix ~affix:"1.5" s);
  check Alcotest.bool "null" true (Astring.String.is_infix ~affix:"null" s)

let test_json_float_forms () =
  check Alcotest.string "integral float gets .0" "2.0"
    (String.trim (Jsonout.to_string (Jsonout.Float 2.)));
  check Alcotest.string "nan is null" "null"
    (String.trim (Jsonout.to_string (Jsonout.Float Float.nan)));
  check Alcotest.string "inf is null" "null"
    (String.trim (Jsonout.to_string (Jsonout.Float Float.infinity)))

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_preserves_stream;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_int_invalid;
          Alcotest.test_case "int covers range" `Quick test_int_covers_range;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "float mean" `Quick test_float_mean;
          Alcotest.test_case "bool balance" `Quick test_bool_balance;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "shuffle moves" `Quick test_shuffle_actually_moves;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_sample_without_replacement;
          qtest prop_sample_distinct;
        ] );
      ( "mex",
        [
          Alcotest.test_case "cases" `Quick test_mex_cases;
          Alcotest.test_case "sorted" `Quick test_mex_sorted;
          Alcotest.test_case "excluding" `Quick test_mex_excluding;
          qtest prop_mex_not_member;
          qtest prop_mex_minimal;
          qtest prop_mex_sorted_agrees;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "set_grow" `Quick test_vec_set_grow;
          Alcotest.test_case "to_array" `Quick test_vec_to_array;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "map ordering" `Quick test_pool_map_ordering;
          Alcotest.test_case "jobs=1 vs jobs=4" `Quick
            test_pool_sequential_matches_parallel;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "exception: lowest index" `Quick
            test_pool_exception_lowest_index;
          Alcotest.test_case "usable after exception" `Quick
            test_pool_usable_after_exception;
          Alcotest.test_case "empty input, many jobs" `Quick
            test_pool_empty_and_jobs_clamp;
          Alcotest.test_case "fail-fast: sequential tail skipped" `Quick
            test_pool_fail_fast_sequential;
          Alcotest.test_case "fail-fast: parallel batch cancelled" `Quick
            test_pool_fail_fast_parallel;
          Alcotest.test_case "retries exhausted" `Quick test_pool_retry_exhausted;
          Alcotest.test_case "retries rescue a flaky item" `Quick
            test_pool_retry_rescues_flaky;
          Alcotest.test_case "shutdown after failed batch" `Quick
            test_pool_shutdown_after_failed_batch;
        ] );
      ( "ws_deque",
        [
          qtest prop_deque_matches_model;
          Alcotest.test_case "4-domain conservation + steal order" `Quick
            test_deque_concurrent_conservation;
        ] );
      ( "executor",
        [
          Alcotest.test_case "jobs <= 0 clamped at the boundary" `Quick
            test_executor_jobs_clamped;
          Alcotest.test_case "policy parsing and clamping" `Quick
            test_policy_parsing;
          Alcotest.test_case "policies agree on outputs" `Quick
            test_executor_policies_agree;
          Alcotest.test_case "backpressure bounds in-flight work" `Quick
            test_executor_backpressure_bounded;
          Alcotest.test_case "async failure isolation" `Quick
            test_executor_async_failure_isolation;
          Alcotest.test_case "submit/await FIFO stream" `Quick
            test_executor_submit_await_stream;
          Alcotest.test_case "submit after shutdown" `Quick
            test_executor_submit_after_shutdown;
          Alcotest.test_case "watchdog: crash recovery" `Quick
            test_executor_worker_crash_recovery;
          Alcotest.test_case "watchdog: degradation ladder" `Quick
            test_executor_degradation_ladder;
          Alcotest.test_case "watchdog: output identical under chaos" `Quick
            test_executor_chaos_output_identical;
        ] );
      ( "ring",
        [ Alcotest.test_case "absolute-position FIFO" `Quick test_ring_fifo_window ] );
      ( "sharded_tbl",
        [
          Alcotest.test_case "basics" `Quick test_sharded_tbl_basics;
          Alcotest.test_case "explicit shards" `Quick
            test_sharded_tbl_explicit_shard;
        ] );
      ( "level_log",
        [
          Alcotest.test_case "plain vector without threshold" `Quick
            test_level_log_plain_vector;
          Alcotest.test_case "seal threshold semantics" `Quick
            test_level_log_seal_threshold;
          Alcotest.test_case "of_array seeds the tail" `Quick
            test_level_log_of_array;
          Alcotest.test_case "fetch length mismatch rejected" `Quick
            test_level_log_fetch_length_mismatch;
          Alcotest.test_case "negative threshold rejected" `Quick
            test_level_log_negative_threshold;
          Alcotest.test_case "empty tail never seals" `Quick
            test_level_log_empty_tail_never_seals;
        ] );
      ( "jsonout",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "float forms" `Quick test_json_float_forms;
        ] );
    ]
