(* Tests for workload generators, statistics and tables. *)

module Idents = Asyncolor_workload.Idents
module Stats = Asyncolor_workload.Stats
module Table = Asyncolor_workload.Table
module Prng = Asyncolor_util.Prng

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

(* --- idents ----------------------------------------------------------- *)

let test_increasing () =
  check Alcotest.(array int) "0..4" [| 0; 1; 2; 3; 4 |] (Idents.increasing 5);
  check Alcotest.bool "injective" true (Idents.is_injective (Idents.increasing 10))

let test_decreasing () =
  check Alcotest.(array int) "4..0" [| 4; 3; 2; 1; 0 |] (Idents.decreasing 5)

let test_zigzag () =
  let z = Idents.zigzag 6 in
  check Alcotest.(array int) "pattern" [| 0; 6; 1; 7; 2; 8 |] z;
  check Alcotest.bool "injective" true (Idents.is_injective z);
  (* every even position is a local minimum *)
  let n = Array.length z in
  for i = 0 to n - 1 do
    if i mod 2 = 0 then begin
      let l = z.((i + n - 1) mod n) and r = z.((i + 1) mod n) in
      check Alcotest.bool "local min" true (z.(i) < l && z.(i) < r)
    end
  done

let test_random_permutation () =
  let p = Idents.random_permutation (Prng.create ~seed:1) 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation of 0..49" (Idents.increasing 50) sorted

let test_random_sparse () =
  let ids = Idents.random_sparse (Prng.create ~seed:2) ~n:20 ~universe:1000 in
  check Alcotest.int "size" 20 (Array.length ids);
  check Alcotest.bool "injective" true (Idents.is_injective ids);
  Array.iter (fun x -> check Alcotest.bool "in universe" true (x >= 0 && x < 1000)) ids;
  Alcotest.check_raises "universe too small"
    (Invalid_argument "Idents.random_sparse: universe too small") (fun () ->
      ignore (Idents.random_sparse (Prng.create ~seed:3) ~n:10 ~universe:5))

let test_bit_adversarial () =
  let ids = Idents.bit_adversarial 32 in
  check Alcotest.bool "injective" true (Idents.is_injective ids)

let test_fresh () =
  (* Smallest non-live natural; dead incarnations' identifiers may be
     reused, so only the live set matters. *)
  check Alcotest.int "fills the first gap" 2
    (Idents.fresh ~live:[ 0; 1; 3 ] ~universe:8);
  check Alcotest.int "zero when free" 0 (Idents.fresh ~live:[ 5; 7 ] ~universe:8);
  check Alcotest.int "empty live set" 0 (Idents.fresh ~live:[] ~universe:1);
  Alcotest.check_raises "exhausted"
    (Invalid_argument "Idents.fresh: universe exhausted") (fun () ->
      ignore (Idents.fresh ~live:[ 0; 1; 2 ] ~universe:3));
  Alcotest.check_raises "non-positive universe"
    (Invalid_argument "Idents.fresh: universe must be positive") (fun () ->
      ignore (Idents.fresh ~live:[] ~universe:0))

let prop_fresh_no_collision =
  QCheck.Test.make
    ~name:"fresh never collides with a live identifier and stays in range"
    ~count:500
    QCheck.(pair (list_of_size (Gen.int_range 0 30) (int_range 0 40)) (int_range 1 64))
    (fun (live, universe) ->
      let distinct_live =
        List.sort_uniq compare (List.filter (fun i -> i < universe) live)
      in
      QCheck.assume (List.length distinct_live < universe);
      let id = Idents.fresh ~live ~universe in
      id >= 0 && id < universe && not (List.mem id live))

let test_longest_monotone_run () =
  check Alcotest.int "increasing ring 0..4" 4
    (Idents.longest_monotone_run (Idents.increasing 5));
  (* zigzag alternates direction on every edge: all runs have length 1 *)
  check Alcotest.int "zigzag is short" 1
    (Idents.longest_monotone_run (Idents.zigzag 12));
  check Alcotest.int "tiny" 0 (Idents.longest_monotone_run [| 7 |]);
  (* a run crossing the wrap-around boundary *)
  check Alcotest.int "wrap run" 3 (Idents.longest_monotone_run [| 5; 9; 1; 3 |])

let prop_monotone_run_bounds =
  QCheck.Test.make ~name:"longest run in [1, n-1] for injective rings" ~count:200
    QCheck.(pair (int_range 3 50) (int_range 0 10_000))
    (fun (n, seed) ->
      let ids = Idents.random_permutation (Prng.create ~seed) n in
      let r = Idents.longest_monotone_run ids in
      r >= 1 && r <= n - 1)

(* --- stats ------------------------------------------------------------ *)

let test_summarize () =
  let s = Stats.summarize [ 4; 1; 3; 2; 5 ] in
  check Alcotest.int "count" 5 s.count;
  check Alcotest.int "min" 1 s.min;
  check Alcotest.int "max" 5 s.max;
  check (Alcotest.float 1e-9) "mean" 3.0 s.mean;
  check Alcotest.int "p50" 3 s.p50

let test_summarize_singleton () =
  let s = Stats.summarize [ 42 ] in
  check Alcotest.int "all percentiles" 42 s.p99;
  check (Alcotest.float 1e-9) "sd 0" 0.0 s.stddev

let test_summarize_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty") (fun () ->
      ignore (Stats.summarize []))

let test_summarize_array () =
  (* The array and list entry points must agree — summarize delegates. *)
  let l = [ 4; 1; 3; 2; 5 ] in
  check Alcotest.bool "agrees with summarize" true
    (Stats.summarize l = Stats.summarize_array (Array.of_list l));
  (* ... including raising the very same exception on empty input. *)
  Alcotest.check_raises "empty array" (Invalid_argument "Stats.summarize: empty")
    (fun () -> ignore (Stats.summarize_array [||]))

let prop_summarize_array_agrees =
  QCheck.Test.make ~name:"summarize_array = summarize on any sample" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 80) (int_range (-1000) 1000))
    (fun l -> Stats.summarize l = Stats.summarize_array (Array.of_list l))

let prop_percentiles_ordered =
  QCheck.Test.make ~name:"min <= p50 <= p95 <= p99 <= max, min <= mean <= max"
    ~count:500
    QCheck.(list_of_size (Gen.int_range 1 100) (int_range (-10_000) 10_000))
    (fun l ->
      let s = Stats.summarize_array (Array.of_list l) in
      s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max
      && float_of_int s.min <= s.mean
      && s.mean <= float_of_int s.max)

let test_percentile () =
  let sorted = [| 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 |] in
  check Alcotest.int "p0 -> min" 10 (Stats.percentile sorted 0.0);
  check Alcotest.int "p100 -> max" 100 (Stats.percentile sorted 1.0);
  check Alcotest.int "p50" 50 (Stats.percentile sorted 0.5)

let test_linear_fit_exact () =
  let a, b = Stats.linear_fit [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  check (Alcotest.float 1e-9) "slope" 2.0 a;
  check (Alcotest.float 1e-9) "intercept" 1.0 b

let test_linear_fit_errors () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Stats.linear_fit: need >= 2 points") (fun () ->
      ignore (Stats.linear_fit [ (1.0, 1.0) ]));
  Alcotest.check_raises "degenerate"
    (Invalid_argument "Stats.linear_fit: degenerate x values") (fun () ->
      ignore (Stats.linear_fit [ (1.0, 1.0); (1.0, 2.0) ]))

let prop_summary_consistent =
  QCheck.Test.make ~name:"min <= p50 <= p95 <= max, mean within [min,max]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (int_range (-1000) 1000))
    (fun l ->
      let s = Stats.summarize l in
      s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.max
      && s.mean >= float_of_int s.min
      && s.mean <= float_of_int s.max)

(* --- table ------------------------------------------------------------ *)

let test_table_rendering () =
  let t = Table.create ~headers:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.to_string t in
  check Alcotest.bool "has header" true (Astring.String.is_infix ~affix:"| name " s);
  check Alcotest.bool "has separator" true (Astring.String.is_infix ~affix:"|---" s);
  check Alcotest.bool "rows in order" true
    (Astring.String.find_sub ~sub:"alpha" s < Astring.String.find_sub ~sub:"| b" s)

let test_table_width_mismatch () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Table.add_row: row width mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_row_int () =
  check Alcotest.(list string) "row_int" [ "1"; "2"; "3" ] (Table.row_int [ 1; 2; 3 ])

let test_table_csv () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Table.add_row t [ "plain"; "with,comma" ];
  Table.add_row t [ "with\"quote"; "2" ];
  check Alcotest.string "csv escaping"
    "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",2\n" (Table.to_csv t)

let () =
  Alcotest.run "workload"
    [
      ( "idents",
        [
          Alcotest.test_case "increasing" `Quick test_increasing;
          Alcotest.test_case "decreasing" `Quick test_decreasing;
          Alcotest.test_case "zigzag" `Quick test_zigzag;
          Alcotest.test_case "random permutation" `Quick test_random_permutation;
          Alcotest.test_case "random sparse" `Quick test_random_sparse;
          Alcotest.test_case "bit adversarial" `Quick test_bit_adversarial;
          Alcotest.test_case "fresh" `Quick test_fresh;
          qtest prop_fresh_no_collision;
          Alcotest.test_case "longest monotone run" `Quick test_longest_monotone_run;
          qtest prop_monotone_run_bounds;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "singleton" `Quick test_summarize_singleton;
          Alcotest.test_case "empty" `Quick test_summarize_empty;
          Alcotest.test_case "summarize_array" `Quick test_summarize_array;
          qtest prop_summarize_array_agrees;
          qtest prop_percentiles_ordered;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "linear fit exact" `Quick test_linear_fit_exact;
          Alcotest.test_case "linear fit errors" `Quick test_linear_fit_errors;
          qtest prop_summary_consistent;
        ] );
      ( "table",
        [
          Alcotest.test_case "rendering" `Quick test_table_rendering;
          Alcotest.test_case "width mismatch" `Quick test_table_width_mismatch;
          Alcotest.test_case "row_int" `Quick test_row_int;
          Alcotest.test_case "csv" `Quick test_table_csv;
        ] );
    ]
