(* Tests for Asyncolor_kernel: engine semantics (the state model of paper
   §2.1-2.2), adversaries, snapshots, runner. *)

module Step = Asyncolor_kernel.Step
module Status = Asyncolor_kernel.Status
module Adversary = Asyncolor_kernel.Adversary
module Engine = Asyncolor_kernel.Engine
module Builders = Asyncolor_topology.Builders
module Prng = Asyncolor_util.Prng

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

(* A probe protocol that records everything it sees: state is the list of
   views read so far; it returns its identifier after [ttl] rounds. *)
module Probe (TTL : sig
  val ttl : int
end) =
struct
  type state = { ident : int; rounds : int; views : int option list list }
  type register = int (* round counter of the writer at write time *)
  type output = int

  let name = "probe"
  let init ~ident = { ident; rounds = 0; views = [] }
  let publish s = s.rounds

  let transition s ~view =
    let seen = Array.to_list view in
    let s = { s with rounds = s.rounds + 1; views = seen :: s.views } in
    if s.rounds >= TTL.ttl then Step.Return s.ident else Step.Continue s

  let equal_state a b = a = b
  let equal_register = Int.equal

  let encode_state emit s =
    emit s.ident;
    emit s.rounds;
    emit (List.length s.views);
    List.iter
      (fun view ->
        emit (List.length view);
        List.iter
          (function
            | None -> emit 0
            | Some v ->
                emit 1;
                emit v)
          view)
      s.views

  let encode_register emit (r : register) = emit r
  let encode_output emit (c : output) = emit c
  let pp_state ppf s = Format.fprintf ppf "{id=%d;r=%d}" s.ident s.rounds
  let pp_register = Format.pp_print_int
  let pp_output = Format.pp_print_int
end

module P3 = Probe (struct
  let ttl = 3
end)

module E3 = Engine.Make (P3)

let idents3 = [| 10; 20; 30 |]
let mk () = E3.create (Builders.cycle 3) ~idents:idents3

(* --- basic lifecycle ------------------------------------------------ *)

let test_initial_state () =
  let e = mk () in
  check Alcotest.int "n" 3 (E3.n e);
  check Alcotest.int "time" 0 (E3.time e);
  for p = 0 to 2 do
    check Alcotest.bool "asleep" true (Status.is_asleep (E3.status e p));
    check Alcotest.bool "register ⊥" true (E3.public e p = None);
    check Alcotest.int "no activations" 0 (E3.activations e p)
  done;
  check Alcotest.(list int) "all unfinished" [ 0; 1; 2 ] (E3.unfinished e);
  Alcotest.check_raises "state of asleep raises"
    (Invalid_argument "Engine.state: process still asleep") (fun () ->
      ignore (E3.state e 0))

let test_wake_and_count () =
  let e = mk () in
  E3.activate e [ 0 ];
  check Alcotest.bool "working" true (Status.is_working (E3.status e 0));
  check Alcotest.int "one activation" 1 (E3.activations e 0);
  check Alcotest.int "time advanced" 1 (E3.time e);
  check Alcotest.bool "neighbour still asleep" true (Status.is_asleep (E3.status e 1))

let test_bot_visible_before_wake () =
  let e = mk () in
  E3.activate e [ 0 ];
  (* p0's first view must be [⊥; ⊥] — neighbours never woke. *)
  let s = E3.state e 0 in
  check
    Alcotest.(list (list (option int)))
    "first view all ⊥"
    [ [ None; None ] ]
    s.P3.views

let test_write_before_read_simultaneous () =
  (* Both neighbours of the cycle activated in the SAME step must see each
     other's just-written register (write phase precedes read phase). *)
  let e = mk () in
  E3.activate e [ 0; 1 ];
  let s0 = E3.state e 0 and s1 = E3.state e 1 in
  (* p0's neighbours are 1 and 2; p1 published rounds=0 in this step. *)
  check
    Alcotest.(list (list (option int)))
    "p0 sees p1's fresh write"
    [ [ Some 0; None ] ]
    s0.P3.views;
  check
    Alcotest.(list (list (option int)))
    "p1 sees p0's fresh write"
    [ [ Some 0; None ] ]
    s1.P3.views

let test_register_is_stale_by_one_round () =
  (* After p0 completes one round its private rounds = 1, but the register
     still holds the value written at the START of that round (0).  The
     neighbour activated afterwards reads the stale value. *)
  let e = mk () in
  E3.activate e [ 0 ];
  E3.activate e [ 1 ];
  let s1 = E3.state e 1 in
  check
    Alcotest.(list (list (option int)))
    "p1 reads p0's round-start value"
    [ [ Some 0; None ] ]
    s1.P3.views

let test_returned_ignores_activation () =
  let e = mk () in
  for _ = 1 to 3 do
    E3.activate e [ 0 ]
  done;
  check Alcotest.bool "returned" true (Status.is_returned (E3.status e 0));
  check Alcotest.int "3 activations" 3 (E3.activations e 0);
  E3.activate e [ 0 ];
  check Alcotest.int "no further activations" 3 (E3.activations e 0);
  check Alcotest.(list int) "unfinished shrunk" [ 1; 2 ] (E3.unfinished e)

let test_duplicate_activation_collapsed () =
  let e = mk () in
  E3.activate e [ 0; 0; 0 ];
  check Alcotest.int "deduplicated" 1 (E3.activations e 0)

(* Input validation: out-of-range indices raise before the engine mutates
   (the documented contract shared by [activate] and [activate_mask]). *)

let test_activate_out_of_range () =
  let e = mk () in
  E3.activate e [ 0 ];
  let t0 = E3.time e in
  let acts0 = E3.activations e 0 in
  List.iter
    (fun bad ->
      (match E3.activate e bad with
      | () -> Alcotest.failf "activate %s: expected Invalid_argument"
                (String.concat "," (List.map string_of_int bad))
      | exception Invalid_argument _ -> ());
      check Alcotest.int "time unchanged" t0 (E3.time e);
      check Alcotest.int "no activation happened" acts0 (E3.activations e 0);
      check Alcotest.bool "nobody woke up" true (Status.is_asleep (E3.status e 1)))
    [ [ 3 ]; [ -1 ]; [ 0; 3 ]; [ 1; -5; 2 ] ]

let test_activate_mask_out_of_range () =
  let e = mk () in
  let t0 = E3.time e in
  List.iter
    (fun bad ->
      (match E3.activate_mask e bad with
      | () -> Alcotest.failf "activate_mask %#x: expected Invalid_argument" bad
      | exception Invalid_argument _ -> ());
      check Alcotest.int "time unchanged" t0 (E3.time e))
    [ 0b1000; -1; 0b1001; max_int ]

let test_activate_mask_list_agree_on_valid_sets () =
  (* The two entry points stay observably identical on every valid set. *)
  let e1 = mk () and e2 = mk () in
  let sets = [ [ 0 ]; [ 1; 2 ]; [ 0; 1; 2 ]; []; [ 2 ] ] in
  List.iter
    (fun set ->
      E3.activate e1 set;
      E3.activate_mask e2 (List.fold_left (fun m p -> m lor (1 lsl p)) 0 set))
    sets;
  check Alcotest.int "same time" (E3.time e1) (E3.time e2);
  for p = 0 to 2 do
    check Alcotest.int "same activations" (E3.activations e1 p) (E3.activations e2 p)
  done

let test_outputs_and_all_returned () =
  let e = mk () in
  for _ = 1 to 3 do
    E3.activate e [ 0; 1; 2 ]
  done;
  check Alcotest.bool "all returned" true (E3.all_returned e);
  check
    Alcotest.(array (option int))
    "outputs are identifiers"
    [| Some 10; Some 20; Some 30 |]
    (E3.outputs e)

let test_monitor_runs_every_step () =
  let e = mk () in
  let calls = ref 0 in
  E3.set_monitor e (fun _ -> incr calls);
  E3.activate e [ 0 ];
  E3.activate e [ 1; 2 ];
  check Alcotest.int "monitor called per step" 2 !calls

let test_trace_recording () =
  let e = E3.create ~record_trace:true (Builders.cycle 3) ~idents:idents3 in
  E3.activate e [ 0; 2 ];
  E3.activate e [ 1 ];
  E3.activate e [ 0 ];
  E3.activate e [ 0 ];
  match E3.trace e with
  | [ e1; e2; e3; e4 ] ->
      check Alcotest.(list int) "step1 set" [ 0; 2 ] e1.E3.activated;
      check Alcotest.int "step1 time" 1 e1.E3.time;
      check Alcotest.(list int) "step2 set" [ 1 ] e2.E3.activated;
      check Alcotest.(list (pair int int)) "no early returns" [] e3.E3.returned;
      check Alcotest.(list (pair int int)) "p0 returns at 3rd activation"
        [ (0, 10) ] e4.E3.returned
  | l -> Alcotest.failf "expected 4 events, got %d" (List.length l)

let test_spacetime_rendering () =
  let e = E3.create ~record_trace:true (Builders.cycle 3) ~idents:idents3 in
  E3.activate e [ 0 ];
  E3.activate e [ 1; 2 ];
  E3.activate e [ 0 ];
  E3.activate e [ 0 ];
  E3.activate e [ 1 ];
  let s = Format.asprintf "%a" E3.pp_spacetime e in
  let lines = String.split_on_char '\n' s in
  check Alcotest.int "header + 5 steps" 6 (List.length lines);
  check Alcotest.bool "step 1 activates only p0" true
    (Astring.String.is_infix ~affix:"1 #.." s);
  check Alcotest.bool "p0 returns at its 3rd activation (step 4)" true
    (Astring.String.is_infix ~affix:"4 R.." s);
  check Alcotest.bool "p0 past-return marker at step 5" true
    (Astring.String.is_infix ~affix:"5 _#." s)

let test_idents_length_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Engine.create: idents length must match node count")
    (fun () -> ignore (E3.create (Builders.cycle 3) ~idents:[| 1; 2 |]))

(* --- snapshots ------------------------------------------------------ *)

let test_snapshot_restore_roundtrip () =
  let e = mk () in
  E3.activate e [ 0; 1 ];
  let snap = E3.snapshot e in
  E3.activate e [ 0; 1; 2 ];
  E3.activate e [ 0 ];
  E3.restore e snap;
  check Alcotest.bool "p2 asleep again" true (Status.is_asleep (E3.status e 2));
  check Alcotest.int "p0 state rewound" 1 (E3.state e 0).P3.rounds;
  (* determinism: re-running the same steps gives the same configs *)
  E3.activate e [ 0; 1; 2 ];
  let again = E3.snapshot e in
  E3.restore e snap;
  E3.activate e [ 0; 1; 2 ];
  check Alcotest.int "deterministic replay" 0 (E3.config_compare again (E3.snapshot e))

let test_restore_rewinds_observers () =
  (* the restore contract: time and the per-process activation counters are
     part of the execution point and must rewind with it, so longest-path
     statistics measured from a restored configuration start from the
     configuration's own counters, not the detour's *)
  let e = mk () in
  E3.activate e [ 0; 1 ];
  E3.activate e [ 0 ];
  let snap = E3.snapshot e in
  let time = E3.time e and act0 = E3.activations e 0 in
  E3.activate e [ 0; 1; 2 ];
  E3.activate e [ 0; 1; 2 ];
  E3.restore e snap;
  check Alcotest.int "time rewound" time (E3.time e);
  check Alcotest.int "p0 activations rewound" act0 (E3.activations e 0);
  check Alcotest.int "p2 never activated" 0 (E3.activations e 2);
  check Alcotest.int "max activations rewound" act0 (E3.max_activations e);
  (* a snapshot is immune to later detours: restoring twice is idempotent *)
  E3.activate e [ 2 ];
  E3.restore e snap;
  check Alcotest.int "idempotent" time (E3.time e)

let test_config_key_identity () =
  (* packed keys agree with [config_compare]: equal configurations collide,
     distinct ones do not — including configurations that differ only in
     execution point (same key, they are the same configuration) *)
  let e = mk () in
  E3.activate e [ 0; 1 ];
  let a = E3.snapshot e in
  E3.restore e a;
  let b = E3.snapshot e in
  check Alcotest.bool "equal configs, equal keys" true
    (E3.key_equal (E3.config_key a) (E3.config_key b));
  check Alcotest.int "equal keys, equal hash"
    (E3.key_hash (E3.config_key a))
    (E3.key_hash (E3.config_key b));
  E3.activate e [ 2 ];
  let c = E3.snapshot e in
  check Alcotest.bool "distinct configs, distinct keys" false
    (E3.key_equal (E3.config_key a) (E3.config_key c));
  (* keys agree with config_compare across a batch of snapshots *)
  let e' = mk () in
  let snaps =
    b :: c
    :: List.map
         (fun set ->
           E3.activate e' set;
           E3.snapshot e')
         [ [ 0 ]; [ 1 ]; [ 0; 1 ]; [ 2 ]; [ 0; 1; 2 ] ]
  in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          check Alcotest.bool "key_equal iff config_compare = 0"
            (E3.config_compare x y = 0)
            (E3.key_equal (E3.config_key x) (E3.config_key y)))
        snaps)
    snaps

let test_config_accessors () =
  let e = mk () in
  E3.activate e [ 1 ];
  let c = E3.snapshot e in
  check Alcotest.(list int) "unfinished from config" [ 0; 1; 2 ]
    (E3.config_unfinished c);
  check Alcotest.(array (option int)) "outputs from config" [| None; None; None |]
    (E3.config_outputs c)

(* --- runner --------------------------------------------------------- *)

let test_run_synchronous () =
  let e = mk () in
  let r = E3.run e Adversary.synchronous in
  check Alcotest.bool "all returned" true r.all_returned;
  check Alcotest.int "steps = ttl" 3 r.steps;
  check Alcotest.int "rounds = ttl" 3 r.rounds;
  check Alcotest.(array int) "activation counts" [| 3; 3; 3 |]
    r.activations_per_process

let test_run_sequential () =
  let e = mk () in
  let r = E3.run e Adversary.sequential in
  check Alcotest.bool "all returned" true r.all_returned;
  check Alcotest.int "steps = 3 * ttl" 9 r.steps

let test_run_max_steps () =
  (* a protocol with huge ttl cut off by max_steps *)
  let module Never = Probe (struct
    let ttl = max_int
  end) in
  let module EN = Engine.Make (Never) in
  let e = EN.create (Builders.cycle 3) ~idents:idents3 in
  let r = EN.run ~max_steps:50 e Adversary.synchronous in
  check Alcotest.bool "not all returned" false r.all_returned;
  check Alcotest.bool "schedule not ended" false r.schedule_ended;
  check Alcotest.int "hit cap" 50 r.steps

let prop_run_determinism =
  (* identical seeds drive identical executions end to end *)
  QCheck.Test.make ~name:"determinism: same seed, same run" ~count:100
    QCheck.(pair (int_range 3 16) (int_range 0 100_000))
    (fun (n, seed) ->
      let go () =
        let module A3 = Asyncolor.Algorithm3 in
        let prng = Prng.create ~seed in
        let idents =
          Asyncolor_workload.Idents.random_permutation (Prng.split prng) n
        in
        let r = A3.run_on_cycle ~idents (Adversary.random_subsets (Prng.split prng) ~p:0.5) in
        (r.steps, r.rounds, r.outputs, r.activations_per_process)
      in
      go () = go ())

let test_run_finite_schedule () =
  let e = mk () in
  let r = E3.run e (Adversary.finite [ [ 0 ]; [ 0 ] ]) in
  check Alcotest.bool "ended by schedule" true r.schedule_ended;
  check Alcotest.(array (option int)) "nobody returned" [| None; None; None |]
    r.outputs;
  check Alcotest.(array int) "p0 worked twice" [| 2; 0; 0 |]
    r.activations_per_process

(* --- adversaries ---------------------------------------------------- *)

let unfinished5 = [ 0; 1; 2; 3; 4 ]

let test_adv_synchronous () =
  check
    Alcotest.(option (list int))
    "activates all" (Some unfinished5)
    (Adversary.synchronous.next ~time:1 ~unfinished:unfinished5);
  check Alcotest.(option (list int)) "empty -> stop" None
    (Adversary.synchronous.next ~time:1 ~unfinished:[])

let test_adv_sequential () =
  check
    Alcotest.(option (list int))
    "first only" (Some [ 2 ])
    (Adversary.sequential.next ~time:5 ~unfinished:[ 2; 3; 4 ])

let test_adv_round_robin () =
  let at t = Adversary.round_robin.next ~time:t ~unfinished:[ 7; 8; 9 ] in
  check Alcotest.(option (list int)) "t=1" (Some [ 7 ]) (at 1);
  check Alcotest.(option (list int)) "t=2" (Some [ 8 ]) (at 2);
  check Alcotest.(option (list int)) "t=3" (Some [ 9 ]) (at 3);
  check Alcotest.(option (list int)) "t=4 wraps" (Some [ 7 ]) (at 4)

let test_adv_staircase () =
  let at t = Adversary.staircase.next ~time:t ~unfinished:unfinished5 in
  check Alcotest.(option (list int)) "t=1" (Some [ 0 ]) (at 1);
  check Alcotest.(option (list int)) "t=3" (Some [ 0; 1; 2 ]) (at 3);
  check Alcotest.(option (list int)) "t=9 saturates" (Some unfinished5) (at 9)

let test_adv_alternating_waves () =
  let at t = Adversary.alternating_waves.next ~time:t ~unfinished:unfinished5 in
  check Alcotest.(option (list int)) "odd time -> odd procs" (Some [ 1; 3 ]) (at 1);
  check Alcotest.(option (list int)) "even time -> even procs" (Some [ 0; 2; 4 ]) (at 2);
  (* all remaining of one parity: falls back to everyone *)
  check
    Alcotest.(option (list int))
    "no odd procs left" (Some [ 0; 2 ])
    (Adversary.alternating_waves.next ~time:1 ~unfinished:[ 0; 2 ])

let test_adv_singletons_member () =
  let adv = Adversary.singletons (Prng.create ~seed:1) in
  for t = 1 to 50 do
    match adv.next ~time:t ~unfinished:unfinished5 with
    | Some [ p ] -> check Alcotest.bool "member" true (List.mem p unfinished5)
    | _ -> Alcotest.fail "expected singleton"
  done

let test_adv_random_subsets_nonempty () =
  let adv = Adversary.random_subsets (Prng.create ~seed:2) ~p:0.01 in
  for t = 1 to 50 do
    match adv.next ~time:t ~unfinished:unfinished5 with
    | Some [] | None -> Alcotest.fail "must be nonempty"
    | Some l -> List.iter (fun p -> check Alcotest.bool "member" true (List.mem p unfinished5)) l
  done

(* --- recovery events (reset) ----------------------------------------- *)

let test_reset_fresh_incarnation () =
  let e = mk () in
  (* Run p0 to return (ttl = 3), then recover it: the node must be
     observably a brand-new process. *)
  E3.activate e [ 0 ];
  E3.activate e [ 0 ];
  E3.activate e [ 0 ];
  check Alcotest.bool "returned" true (Status.is_returned (E3.status e 0));
  E3.reset e 0 ~ident:99;
  check Alcotest.bool "asleep again" true (Status.is_asleep (E3.status e 0));
  check Alcotest.bool "register back to ⊥" true (E3.public e 0 = None);
  check Alcotest.int "activation counter restarted" 0 (E3.activations e 0);
  check Alcotest.int "fresh identifier installed" 99 (E3.ident e 0);
  check Alcotest.(list int) "unfinished again" [ 0; 1; 2 ] (E3.unfinished e);
  (* The new incarnation starts from its initial state under the new
     identifier, not from the old incarnation's history. *)
  E3.activate e [ 0 ];
  let s = E3.state e 0 in
  check Alcotest.int "new incarnation's ident" 99 s.P3.ident;
  check Alcotest.int "fresh view history" 1 (List.length s.P3.views)

let test_reset_mid_flight_and_bounds () =
  let e = mk () in
  E3.activate e [ 1 ];
  (* Resetting a working (not returned) process is allowed: crash and
     recovery need not wait for a return. *)
  E3.reset e 1 ~ident:42;
  check Alcotest.bool "asleep" true (Status.is_asleep (E3.status e 1));
  check Alcotest.int "counter restarted" 0 (E3.activations e 1);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Engine.reset: process index 3 out of range [0, 3)")
    (fun () -> E3.reset e 3 ~ident:0)

let test_reset_traced () =
  let e = E3.create ~record_trace:true (Builders.cycle 3) ~idents:idents3 in
  E3.activate e [ 0 ];
  E3.reset e 0 ~ident:77;
  let ev =
    match List.rev (E3.trace e) with
    | ev :: _ -> ev
    | [] -> Alcotest.fail "empty trace"
  in
  check
    Alcotest.(list (pair int int))
    "reset recorded" [ (0, 77) ] ev.E3.resets;
  check Alcotest.(list int) "no activation in a reset event" [] ev.E3.activated

let test_adv_crash () =
  let adv = Adversary.crash ~at:3 ~procs:[ 0; 1 ] Adversary.synchronous in
  check
    Alcotest.(option (list int))
    "before crash: everyone" (Some unfinished5)
    (adv.next ~time:2 ~unfinished:unfinished5);
  check
    Alcotest.(option (list int))
    "after crash: survivors" (Some [ 2; 3; 4 ])
    (adv.next ~time:3 ~unfinished:unfinished5);
  check
    Alcotest.(option (list int))
    "only crashed left -> stop" None
    (adv.next ~time:5 ~unfinished:[ 0; 1 ])

let test_adv_outages () =
  (* Window (1, 2, 4): p1 is invisible to the inner adversary at times 2
     and 3 and eligible again from 4 — the schedule-side half of a
     crash/recover pair (Engine.reset is the engine-side half). *)
  let adv = Adversary.outages ~windows:[ (1, 2, 4) ] Adversary.synchronous in
  check
    Alcotest.(option (list int))
    "before the window: everyone" (Some unfinished5)
    (adv.next ~time:1 ~unfinished:unfinished5);
  check
    Alcotest.(option (list int))
    "inside: p1 hidden"
    (Some [ 0; 2; 3; 4 ])
    (adv.next ~time:2 ~unfinished:unfinished5);
  check
    Alcotest.(option (list int))
    "still inside at 3"
    (Some [ 0; 2; 3; 4 ])
    (adv.next ~time:3 ~unfinished:unfinished5);
  check
    Alcotest.(option (list int))
    "eligible again from until" (Some unfinished5)
    (adv.next ~time:4 ~unfinished:unfinished5);
  check
    Alcotest.(option (list int))
    "only down nodes left -> pause" None
    (adv.next ~time:2 ~unfinished:[ 1 ])

let prop_outages_never_activates_down =
  QCheck.Test.make ~name:"outages: no activation inside a window" ~count:200
    QCheck.(
      triple (int_range 0 4)
        (pair (int_range 1 10) (int_range 0 10))
        (int_range 0 1000))
    (fun (p, (from_, len), seed) ->
      let until_ = from_ + len in
      let inner = Adversary.random_subsets (Prng.create ~seed) ~p:0.6 in
      let adv = Adversary.outages ~windows:[ (p, from_, until_) ] inner in
      let ok = ref true in
      for time = 1 to until_ + 5 do
        match adv.next ~time ~unfinished:unfinished5 with
        | None -> ()
        | Some set ->
            if time >= from_ && time < until_ && List.mem p set then ok := false
      done;
      !ok)

let test_adv_finite () =
  let adv = Adversary.finite [ [ 1 ]; [ 2; 3 ] ] in
  check Alcotest.(option (list int)) "t=1" (Some [ 1 ]) (adv.next ~time:1 ~unfinished:unfinished5);
  check Alcotest.(option (list int)) "t=2" (Some [ 2; 3 ]) (adv.next ~time:2 ~unfinished:unfinished5);
  check Alcotest.(option (list int)) "t=3 exhausted" None (adv.next ~time:3 ~unfinished:unfinished5)

let test_adv_eager_then_lazy () =
  let adv = Adversary.eager_then_lazy ~slow:[ 0 ] ~delay:2 in
  check
    Alcotest.(option (list int))
    "slow excluded early" (Some [ 1; 2; 3; 4 ])
    (adv.next ~time:1 ~unfinished:unfinished5);
  check
    Alcotest.(option (list int))
    "everyone after delay" (Some unfinished5)
    (adv.next ~time:3 ~unfinished:unfinished5)

let test_adv_isolate_pair () =
  let adv = Adversary.isolate_pair (1, 3) in
  check
    Alcotest.(option (list int))
    "drain others first" (Some [ 0; 2; 4 ])
    (adv.next ~time:1 ~unfinished:unfinished5);
  check
    Alcotest.(option (list int))
    "then the pair together" (Some [ 1; 3 ])
    (adv.next ~time:9 ~unfinished:[ 1; 3 ]);
  check
    Alcotest.(option (list int))
    "half-pair still activated" (Some [ 3 ])
    (adv.next ~time:9 ~unfinished:[ 3 ]);
  check Alcotest.(option (list int)) "empty -> stop" None (adv.next ~time:9 ~unfinished:[])

let test_schedule_parse () =
  check
    Alcotest.(list (list int))
    "basic" [ [ 0 ]; [ 1; 2 ]; [] ]
    (Adversary.parse "{0} {1,2} {}");
  check Alcotest.(list (list int)) "empty string" [] (Adversary.parse "  ");
  check Alcotest.string "roundtrip" "{0} {1,2}"
    (Adversary.to_string (Adversary.parse " {0}   {1,2} "));
  Alcotest.check_raises "garbage"
    (Invalid_argument "Adversary.parse: malformed schedule \"0,1\"") (fun () ->
      ignore (Adversary.parse "0,1"))

let prop_schedule_roundtrip =
  QCheck.Test.make ~name:"parse ∘ to_string = id"
    QCheck.(
      list_of_size (Gen.int_range 0 20)
        (list_of_size (Gen.int_range 0 8) (int_range 0 99)))
    (fun sets -> Adversary.parse (Adversary.to_string sets) = sets)

let test_adv_random_crashes_eventually_stop () =
  (* rate 1.0: every process crashes within the horizon, so the schedule
     must end in bounded time. *)
  let adv =
    Adversary.random_crashes (Prng.create ~seed:3) ~n:5 ~rate:1.0 ~horizon:5
      Adversary.synchronous
  in
  let stopped = ref false in
  for t = 1 to 10 do
    if adv.next ~time:t ~unfinished:unfinished5 = None then stopped := true
  done;
  check Alcotest.bool "all crashed" true !stopped

(* --- qcheck: the crash wrappers keep their two contracts --------------
   (1) a crashed process is never activated at or after its crash time;
   (2) the schedule ends (next = None) when only crashed processes remain
   unfinished. *)

let prop_crash_never_activates_after_crash_time =
  QCheck.Test.make ~name:"crash: no activation at time >= at" ~count:200
    QCheck.(
      triple (int_range 1 10)
        (list_of_size (Gen.int_range 0 5) (int_range 0 4))
        (int_range 0 1000))
    (fun (at, procs, seed) ->
      let inner = Adversary.random_subsets (Prng.create ~seed) ~p:0.6 in
      let adv = Adversary.crash ~at ~procs inner in
      let ok = ref true in
      for time = 1 to at + 10 do
        match adv.next ~time ~unfinished:unfinished5 with
        | None -> ()
        | Some set ->
            if time >= at && List.exists (fun p -> List.mem p procs) set then
              ok := false
      done;
      !ok)

let prop_crash_ends_when_only_crashed_remain =
  QCheck.Test.make ~name:"crash: None once only crashed remain" ~count:200
    QCheck.(
      triple (int_range 1 10)
        (list_of_size (Gen.int_range 1 5) (int_range 0 4))
        (int_range 0 1000))
    (fun (at, procs, seed) ->
      QCheck.assume (procs <> []);
      let inner = Adversary.random_subsets (Prng.create ~seed) ~p:0.6 in
      let adv = Adversary.crash ~at ~procs inner in
      (* any non-empty unfinished set drawn from the crashed processes *)
      let unfinished = List.sort_uniq compare procs in
      adv.next ~time:at ~unfinished = None
      && adv.next ~time:(at + 7) ~unfinished = None)

let prop_random_crashes_permanent_and_filtered =
  (* [random_crashes] fixes each process's crash time at construction; with
     a stateless inner ([synchronous]) the adversary can be probed freely:
     [next ~unfinished:[p] = None] is a pure oracle for "p crashed by t".
     Check the oracle is monotone (a crash is permanent), that full-set
     activations never include a crashed process, and that the schedule
     ends exactly when every unfinished process has crashed. *)
  QCheck.Test.make ~name:"random_crashes: permanent, filtered, ends" ~count:100
    QCheck.(pair (int_range 0 1000) (int_range 1 8))
    (fun (seed, horizon) ->
      let n = 5 in
      let adv =
        Adversary.random_crashes (Prng.create ~seed) ~n ~rate:0.7 ~horizon
          Adversary.synchronous
      in
      let crashed_by p time = adv.next ~time ~unfinished:[ p ] = None in
      let ok = ref true in
      for t = 1 to horizon + 2 do
        for p = 0 to n - 1 do
          if crashed_by p t && not (crashed_by p (t + 1)) then ok := false
        done;
        let crashed = List.filter (fun p -> crashed_by p t) unfinished5 in
        (match adv.next ~time:t ~unfinished:unfinished5 with
        | None -> if List.length crashed < n then ok := false
        | Some set ->
            if List.exists (fun p -> List.mem p crashed) set then ok := false;
            (* synchronous inner: every alive process is activated *)
            if
              List.sort_uniq compare set
              <> List.filter (fun p -> not (List.mem p crashed)) unfinished5
            then ok := false);
        if crashed <> [] && adv.next ~time:t ~unfinished:crashed <> None then
          ok := false
      done;
      !ok)

let () =
  Alcotest.run "kernel"
    [
      ( "engine",
        [
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "wake and count" `Quick test_wake_and_count;
          Alcotest.test_case "⊥ before wake" `Quick test_bot_visible_before_wake;
          Alcotest.test_case "simultaneous write-then-read" `Quick
            test_write_before_read_simultaneous;
          Alcotest.test_case "register one-round stale" `Quick
            test_register_is_stale_by_one_round;
          Alcotest.test_case "returned ignores activation" `Quick
            test_returned_ignores_activation;
          Alcotest.test_case "duplicate activation collapsed" `Quick
            test_duplicate_activation_collapsed;
          Alcotest.test_case "activate rejects out-of-range" `Quick
            test_activate_out_of_range;
          Alcotest.test_case "activate_mask rejects out-of-range" `Quick
            test_activate_mask_out_of_range;
          Alcotest.test_case "mask/list agree on valid sets" `Quick
            test_activate_mask_list_agree_on_valid_sets;
          Alcotest.test_case "outputs / all_returned" `Quick
            test_outputs_and_all_returned;
          Alcotest.test_case "monitor" `Quick test_monitor_runs_every_step;
          Alcotest.test_case "trace" `Quick test_trace_recording;
          Alcotest.test_case "spacetime diagram" `Quick test_spacetime_rendering;
          Alcotest.test_case "idents mismatch" `Quick test_idents_length_mismatch;
          Alcotest.test_case "reset: fresh incarnation" `Quick
            test_reset_fresh_incarnation;
          Alcotest.test_case "reset: mid-flight + bounds" `Quick
            test_reset_mid_flight_and_bounds;
          Alcotest.test_case "reset: traced" `Quick test_reset_traced;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "roundtrip" `Quick test_snapshot_restore_roundtrip;
          Alcotest.test_case "restore rewinds observers" `Quick
            test_restore_rewinds_observers;
          Alcotest.test_case "config key identity" `Quick test_config_key_identity;
          Alcotest.test_case "config accessors" `Quick test_config_accessors;
        ] );
      ( "runner",
        [
          Alcotest.test_case "synchronous" `Quick test_run_synchronous;
          Alcotest.test_case "sequential" `Quick test_run_sequential;
          Alcotest.test_case "max steps" `Quick test_run_max_steps;
          Alcotest.test_case "finite schedule" `Quick test_run_finite_schedule;
          qtest prop_run_determinism;
        ] );
      ( "adversaries",
        [
          Alcotest.test_case "synchronous" `Quick test_adv_synchronous;
          Alcotest.test_case "sequential" `Quick test_adv_sequential;
          Alcotest.test_case "round robin" `Quick test_adv_round_robin;
          Alcotest.test_case "staircase" `Quick test_adv_staircase;
          Alcotest.test_case "alternating waves" `Quick test_adv_alternating_waves;
          Alcotest.test_case "singletons" `Quick test_adv_singletons_member;
          Alcotest.test_case "random subsets nonempty" `Quick
            test_adv_random_subsets_nonempty;
          Alcotest.test_case "crash" `Quick test_adv_crash;
          Alcotest.test_case "outages" `Quick test_adv_outages;
          qtest prop_outages_never_activates_down;
          Alcotest.test_case "finite" `Quick test_adv_finite;
          Alcotest.test_case "eager then lazy" `Quick test_adv_eager_then_lazy;
          Alcotest.test_case "isolate pair" `Quick test_adv_isolate_pair;
          Alcotest.test_case "schedule parse" `Quick test_schedule_parse;
          qtest prop_schedule_roundtrip;
          Alcotest.test_case "random crashes stop" `Quick
            test_adv_random_crashes_eventually_stop;
          qtest prop_crash_never_activates_after_crash_time;
          qtest prop_crash_ends_when_only_crashed_remain;
          qtest prop_random_crashes_permanent_and_filtered;
        ] );
    ]
