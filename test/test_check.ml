(* Tests for the model checker itself, on protocols whose configuration
   graphs are known by construction. *)

module Explorer = Asyncolor_check.Explorer
module Step = Asyncolor_kernel.Step
module Adversary = Asyncolor_kernel.Adversary
module Builders = Asyncolor_topology.Builders

let check = Alcotest.check

(* Returns its identifier at the k-th activation. *)
module Count (K : sig
  val k : int
end) =
struct
  type state = { ident : int; left : int }
  type register = unit
  type output = int

  let name = "count"
  let init ~ident = { ident; left = K.k }
  let publish _ = ()

  let transition s ~view:_ =
    if s.left <= 1 then Step.Return s.ident else Step.Continue { s with left = s.left - 1 }

  let equal_state a b = a = b
  let equal_register () () = true

  let encode_state emit s =
    emit s.ident;
    emit s.left

  let encode_register _ () = ()
  let encode_output emit (c : output) = emit c
  let pp_state ppf s = Format.fprintf ppf "%d" s.left
  let pp_register ppf () = Format.pp_print_string ppf "()"
  let pp_output = Format.pp_print_int
end

(* Never returns: every configuration with a working process is a self-loop. *)
module Forever = struct
  type state = unit
  type register = unit
  type output = int

  let name = "forever"
  let init ~ident:_ = ()
  let publish () = ()
  let transition () ~view:_ = Step.Continue ()
  let equal_state () () = true
  let equal_register () () = true
  let encode_state _ () = ()
  let encode_register _ () = ()
  let encode_output emit (c : output) = emit c
  let pp_state ppf () = Format.pp_print_string ppf "()"
  let pp_register ppf () = Format.pp_print_string ppf "()"
  let pp_output = Format.pp_print_int
end

module One = Count (struct
  let k = 1
end)

module Three = Count (struct
  let k = 3
end)

let g3 = Builders.cycle 3

let test_immediate_return () =
  let module E = Explorer.Make (One) in
  let r = E.explore g3 ~idents:[| 0; 1; 2 |] in
  check Alcotest.bool "complete" true r.complete;
  check Alcotest.bool "wait-free" true r.wait_free;
  check Alcotest.int "exact worst = 1 activation" 1 r.worst_case_activations;
  (* states are {asleep, returned}^3 minus all-asleep...: reachable are
     exactly the 8 subsets of returned processes *)
  check Alcotest.int "configs = 2^3" 8 r.configs;
  check Alcotest.int "one terminal" 1 r.terminal_configs

let test_counting_protocol_worst_case () =
  let module E = Explorer.Make (Three) in
  let r = E.explore g3 ~idents:[| 0; 1; 2 |] in
  check Alcotest.bool "wait-free" true r.wait_free;
  check Alcotest.int "exact worst = 3" 3 r.worst_case_activations;
  check Alcotest.int "configs = 4^3" 64 r.configs

let test_livelock_detected () =
  let module E = Explorer.Make (Forever) in
  let r = E.explore g3 ~idents:[| 0; 1; 2 |] in
  check Alcotest.bool "complete" true r.complete;
  check Alcotest.bool "not wait-free" false r.wait_free;
  match r.livelock with
  | None -> Alcotest.fail "lasso expected"
  | Some v ->
      check Alcotest.bool "non-empty schedule" true (v.schedule <> []);
      (* replay: the lasso's last step must activate a working process of an
         unchanged configuration — running it in an engine never returns *)
      let e = E.E.create g3 ~idents:[| 0; 1; 2 |] in
      List.iter (fun set -> E.E.activate e set) v.schedule;
      check Alcotest.bool "still unfinished" true (E.E.unfinished e <> [])

let test_singleton_mode_smaller () =
  let module E = Explorer.Make (Three) in
  let all = E.explore g3 ~idents:[| 0; 1; 2 |] in
  let single = E.explore ~mode:`Singletons g3 ~idents:[| 0; 1; 2 |] in
  check Alcotest.bool "both complete" true (all.complete && single.complete);
  check Alcotest.bool "singleton graph no bigger" true (single.transitions <= all.transitions);
  check Alcotest.int "same worst case (independent steps)" all.worst_case_activations
    single.worst_case_activations

let test_safety_violation_reported_with_schedule () =
  let module E = Explorer.Make (Asyncolor_shm.Mis.Greedy.P) in
  let check_outputs outs =
    if Asyncolor_shm.Mis.valid g3 outs then None else Some "MIS violated"
  in
  let r = E.explore g3 ~idents:[| 0; 1; 2 |] ~check_outputs in
  check Alcotest.bool "violations found" true (r.safety <> []);
  let v = List.hd r.safety in
  check Alcotest.string "message" "MIS violated" v.message;
  (* the witness schedule must actually reproduce the violation *)
  let module GE = Asyncolor_shm.Mis.Greedy.E in
  let e = GE.create g3 ~idents:[| 0; 1; 2 |] in
  let res = GE.run e (Adversary.finite v.schedule) in
  check Alcotest.bool "replayed violation" false
    (Asyncolor_shm.Mis.valid g3 res.outputs)

let test_max_configs_truncation () =
  let module E = Explorer.Make (Three) in
  let r = E.explore ~max_configs:10 g3 ~idents:[| 0; 1; 2 |] in
  check Alcotest.bool "incomplete" false r.complete;
  check Alcotest.bool "capped" true (r.configs <= 10);
  check Alcotest.int "worst undefined when incomplete" (-1) r.worst_case_activations

let test_deep_path_livelock_dfs () =
  (* regression for the explicit-stack cycle-detection DFS: one Count
     process with a huge activation budget makes the configuration graph a
     single path of 200k nodes — native recursion would overflow the stack
     at this depth, the explicit stack must not *)
  let module Deep = Count (struct
    let k = 200_000
  end) in
  let module E = Explorer.Make (Deep) in
  let r = E.explore ~max_configs:300_000 (Builders.path 1) ~idents:[| 7 |] in
  check Alcotest.bool "complete" true r.complete;
  check Alcotest.bool "wait-free" true r.wait_free;
  check Alcotest.int "configs = k+1" 200_001 r.configs;
  check Alcotest.int "exact worst = k" 200_000 r.worst_case_activations

let test_truncation_sentinel_both_impls () =
  (* the -1 sentinel contract of report.worst_case_activations: a tiny cap
     must yield complete = false and the sentinel, on both implementations
     and for any jobs value *)
  let module E = Explorer.Make (Three) in
  List.iter
    (fun (impl, jobs) ->
      let r = E.explore ~impl ~jobs ~max_configs:5 g3 ~idents:[| 0; 1; 2 |] in
      check Alcotest.bool "truncated" false r.complete;
      check Alcotest.int "sentinel worst case" (-1) r.worst_case_activations)
    [ (`Reference, 1); (`Hashcons, 1); (`Hashcons, 4) ]

let test_max_violations_cap () =
  let module E = Explorer.Make (Asyncolor_shm.Mis.Greedy.P) in
  let check_outputs outs =
    if Asyncolor_shm.Mis.valid g3 outs then None else Some "v"
  in
  let r = E.explore ~max_violations:2 g3 ~idents:[| 0; 1; 2 |] ~check_outputs in
  check Alcotest.bool "capped at 2" true (List.length r.safety <= 2)

(* --- packed activation-subset enumeration ------------------------------ *)

let qtest t = QCheck_alcotest.to_alcotest t

(* A working-process mask with at most 8 set bits, anywhere in the word. *)
let arb_unfinished_mask =
  let gen =
    QCheck.Gen.(
      int_range 0 8 >>= fun k ->
      let rec pick acc = function
        | 0 -> return acc
        | left ->
            int_range 0 (Sys.int_size - 2) >>= fun p ->
            if acc land (1 lsl p) <> 0 then pick acc left
            else pick (acc lor (1 lsl p)) (left - 1)
      in
      pick 0 k)
  in
  QCheck.make ~print:(Printf.sprintf "0x%x") gen

(* [masks_of] must enumerate exactly the subsets [subsets_of] does — not
   only as a set (what correctness needs) but in the same order (what the
   determinism guarantee needs: the order fixes BFS discovery and ids). *)
let prop_masks_match_subsets mode m =
  let procs = Explorer.subset_of_mask m in
  let lists = Explorer.subsets_of mode procs in
  let masks = Array.to_list (Explorer.masks_of mode m) in
  List.map Explorer.mask_of_subset lists = masks
  && List.map Explorer.subset_of_mask masks = lists

let test_masks_all_subsets =
  QCheck.Test.make ~name:"masks_of = subsets_of (all-subsets, k <= 8)"
    ~count:300 arb_unfinished_mask (prop_masks_match_subsets `All_subsets)

let test_masks_singletons =
  QCheck.Test.make ~name:"masks_of = subsets_of (singletons, k <= 8)"
    ~count:300 arb_unfinished_mask (prop_masks_match_subsets `Singletons)

(* --- differential: packed parallel BFS vs the reference Map ------------ *)

(* The packed parallel explorer must be report-identical (counts, verdicts,
   witness schedules, the config ids embedded in livelock messages —
   everything) to the seed [`Reference] implementation on the exhaustive
   instances the paper claims rest on (E6, E13, E16, E17), and identical to
   itself for every [jobs] value and execution policy: the
   deterministic-output guarantee of the pipelined FIFO merge. *)
let diff_report (type s r o)
    (module P : Asyncolor_kernel.Protocol.S
      with type state = s and type register = r and type output = o)
    ?max_configs ?check_outputs ~mode graph ~idents () =
  let module E = Explorer.Make (P) in
  let explore ?jobs ?policy impl =
    E.explore ?max_configs ?check_outputs ~mode ~impl ?jobs ?policy graph
      ~idents
  in
  let report = Alcotest.testable E.pp_report ( = ) in
  let reference = explore `Reference in
  check report "hash-consed jobs=1 = reference" reference (explore `Hashcons);
  check report "hash-consed jobs=2 = reference" reference
    (explore ~jobs:2 `Hashcons);
  check report "hash-consed jobs=4 = reference" reference
    (explore ~jobs:4 `Hashcons);
  (* the full policy × jobs matrix of the async execution core *)
  List.iter
    (fun (name, jobs, policy) ->
      check report (name ^ " = reference") reference
        (explore ~jobs ~policy `Hashcons))
    [
      ("serial", 1, Asyncolor_util.Executor.Serial);
      ("sync jobs=2", 2, Asyncolor_util.Executor.Synchronous);
      ("sync jobs=4", 4, Asyncolor_util.Executor.Synchronous);
      ( "async κ=0.5 jobs=1",
        1,
        Asyncolor_util.Executor.asynchronous ~kappa:0.5 ~jobs:1 () );
      ( "async κ=0.5 jobs=2",
        2,
        Asyncolor_util.Executor.asynchronous ~kappa:0.5 ~jobs:2 () );
      ( "async κ=0.5 jobs=4",
        4,
        Asyncolor_util.Executor.asynchronous ~kappa:0.5 ~jobs:4 () );
      ( "async κ=0 jobs=4",
        4,
        Asyncolor_util.Executor.asynchronous ~kappa:0.0 ~jobs:4 () );
    ]

let test_differential_alg2_c3 () =
  (* the E6/E13 instances: every C3 identifier assignment the experiments
     quote, in both schedule spaces *)
  let c3 = Builders.cycle 3 in
  List.iter
    (fun idents ->
      List.iter
        (fun mode -> diff_report (module Asyncolor.Algorithm2.P) ~mode c3 ~idents ())
        [ `All_subsets; `Singletons ])
    [ [| 5; 1; 9 |]; [| 0; 1; 2 |]; [| 2; 0; 1 |]; [| 7; 3; 5 |] ]

let test_differential_c4 () =
  let c4 = Builders.cycle 4 in
  diff_report (module Asyncolor.Algorithm1.P) ~mode:`Singletons c4
    ~idents:[| 5; 1; 9; 4 |] ();
  diff_report (module Asyncolor.Algorithm2.P) ~mode:`All_subsets c4
    ~idents:[| 5; 1; 9; 4 |] ()

let test_differential_alg3_alg2s () =
  (* E6's Algorithm 3 instance and E17's rank-offset repair (the monotone
     C4 refutation instance) *)
  diff_report (module Asyncolor.Algorithm3.P) ~mode:`All_subsets (Builders.cycle 3)
    ~idents:[| 12; 47; 30 |] ();
  diff_report (module Asyncolor.Algorithm2s.P) ~mode:`All_subsets (Builders.cycle 4)
    ~idents:[| 0; 1; 2; 3 |] ()

let test_differential_e16_k4 () =
  (* the E16 open-problem instance family: Algorithm 2 on a clique under
     interleaved schedules, with the full 2Δ+1 palette/properness predicate
     riding along as a safety check *)
  let k4 = Builders.complete 4 in
  let delta = Asyncolor_topology.Graph.max_degree k4 in
  let check_outputs outs =
    let v =
      Asyncolor.Checker.check ~equal:Int.equal
        ~in_palette:(Asyncolor.Algorithm2.in_general_palette ~max_degree:delta)
        k4 outs
    in
    if Asyncolor.Checker.ok v then None
    else Some (Format.asprintf "%a" Asyncolor.Checker.pp v)
  in
  diff_report (module Asyncolor.Algorithm2.P) ~check_outputs ~mode:`Singletons k4
    ~idents:[| 3; 7; 1; 9 |] ()

let test_differential_safety_and_truncation () =
  (* safety-violation schedules and the max_configs cut-off must agree too *)
  let g = Builders.cycle 3 in
  let check_outputs outs =
    if Asyncolor_shm.Mis.valid g outs then None else Some "MIS violated"
  in
  diff_report (module Asyncolor_shm.Mis.Greedy.P) ~check_outputs ~mode:`All_subsets g
    ~idents:[| 0; 1; 2 |] ();
  diff_report (module Three) ~max_configs:10 ~mode:`All_subsets g ~idents:[| 0; 1; 2 |]
    ()

(* --- crash safety: checkpoints, resume, budgets ------------------------ *)

module Budget = Asyncolor_resilience.Budget
module Checkpoint = Asyncolor_resilience.Checkpoint

let with_temp_ckpt f =
  let path = Filename.temp_file "asyncolor-explorer" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

module E3 = Explorer.Make (Three)

let report3 = Alcotest.testable E3.pp_report ( = )
let baseline3 () = E3.explore g3 ~idents:[| 0; 1; 2 |]

let test_resume_identical_at_every_cut () =
  (* The central resume property: interrupt the exploration after [cut]
     interned configurations — at *every* possible cut of the 64-config
     graph — checkpointing at every boundary, then resume; the final
     report must equal the uninterrupted one, whatever the degree of
     parallelism on the resuming side. *)
  let baseline = baseline3 () in
  with_temp_ckpt (fun path ->
      for cut = 1 to 63 do
        let truncated =
          E3.explore ~checkpoint:(path, 1)
            ~stop:(fun ~configs -> configs >= cut)
            g3 ~idents:[| 0; 1; 2 |]
        in
        check Alcotest.bool
          (Printf.sprintf "cut %d: stop fired at the threshold" cut)
          true
          (truncated.configs >= cut);
        List.iter
          (fun jobs ->
            check report3
              (Printf.sprintf "cut %d resumed with jobs=%d = uninterrupted"
                 cut jobs)
              baseline
              (E3.explore_resume ~jobs path))
          [ 1; 2; 4 ]
      done)

let test_resume_after_parallel_interrupt () =
  (* Interrupt a jobs=4 run (checkpoint boundaries are BFS levels there),
     resume sequentially and in parallel: same report. *)
  let baseline = baseline3 () in
  with_temp_ckpt (fun path ->
      List.iter
        (fun cut ->
          ignore
            (E3.explore ~jobs:4 ~checkpoint:(path, 1)
               ~stop:(fun ~configs -> configs >= cut)
               g3 ~idents:[| 0; 1; 2 |]);
          check report3
            (Printf.sprintf "parallel cut %d, sequential resume" cut)
            baseline (E3.explore_resume path);
          check report3
            (Printf.sprintf "parallel cut %d, parallel resume" cut)
            baseline
            (E3.explore_resume ~jobs:4 path))
        [ 5; 20; 45 ])

let test_resume_chained () =
  (* A resumed run can itself checkpoint and be interrupted again. *)
  let baseline = baseline3 () in
  with_temp_ckpt (fun path ->
      ignore
        (E3.explore ~checkpoint:(path, 1)
           ~stop:(fun ~configs -> configs >= 15)
           g3 ~idents:[| 0; 1; 2 |]);
      ignore
        (E3.explore_resume ~checkpoint:(path, 1)
           ~stop:(fun ~configs -> configs >= 40)
           path);
      check report3 "two interruptions deep" baseline (E3.explore_resume path))

let test_resume_safety_checks_continue () =
  (* Safety predicates cannot be serialised; re-supplying them on resume
     must reproduce the uninterrupted violation list, ids included. *)
  let module EG = Explorer.Make (Asyncolor_shm.Mis.Greedy.P) in
  let check_outputs outs =
    if Asyncolor_shm.Mis.valid g3 outs then None else Some "MIS violated"
  in
  let report = Alcotest.testable EG.pp_report ( = ) in
  let baseline = EG.explore g3 ~idents:[| 0; 1; 2 |] ~check_outputs in
  with_temp_ckpt (fun path ->
      List.iter
        (fun cut ->
          ignore
            (EG.explore ~checkpoint:(path, 1)
               ~stop:(fun ~configs -> configs >= cut)
               g3 ~idents:[| 0; 1; 2 |] ~check_outputs);
          let resumed = EG.explore_resume path ~check_outputs in
          check report
            (Printf.sprintf "cut %d: violations survive the resume" cut)
            baseline resumed;
          check Alcotest.bool "violations actually present" true
            (resumed.safety <> []))
        [ 3; 10; 30 ])

let test_resume_info_describes_checkpoint () =
  with_temp_ckpt (fun path ->
      ignore
        (E3.explore ~checkpoint:(path, 1)
           ~stop:(fun ~configs -> configs >= 10)
           g3 ~idents:[| 0; 1; 2 |]);
      let info = E3.resume_info path in
      check Alcotest.int "n" 3 (Asyncolor_topology.Graph.n info.ri_graph);
      check Alcotest.(array int) "idents" [| 0; 1; 2 |] info.ri_idents;
      check Alcotest.bool "progress recorded" true (info.ri_configs >= 10);
      check Alcotest.bool "work left" true (info.ri_pending > 0))

let test_resume_rejects_other_protocol () =
  (* A checkpoint carries its protocol's name; resuming it under another
     protocol functor must fail cleanly, not misinterpret the payload. *)
  with_temp_ckpt (fun path ->
      ignore
        (E3.explore ~checkpoint:(path, 1)
           ~stop:(fun ~configs -> configs >= 10)
           g3 ~idents:[| 0; 1; 2 |]);
      let module EF = Explorer.Make (Forever) in
      match EF.explore_resume path with
      | _ -> Alcotest.fail "expected Corrupt"
      | exception Checkpoint.Corrupt _ -> ())

let test_budget_truncates_cleanly () =
  (* An already-exhausted wall budget must yield a well-formed truncated
     report — complete=false, the -1 sentinel — and no exception, for
     both builders. *)
  List.iter
    (fun jobs ->
      let r =
        E3.explore ~jobs
          ~budget:(Budget.create ~time_s:0.0 ())
          g3 ~idents:[| 0; 1; 2 |]
      in
      check Alcotest.bool "incomplete" false r.complete;
      check Alcotest.int "sentinel" (-1) r.worst_case_activations;
      check Alcotest.bool "root interned" true (r.configs >= 1))
    [ 1; 4 ]

let test_stop_callback_equivalent_to_max_configs_contract () =
  (* Stopping via the callback and truncating via max_configs both leave
     a usable report over a prefix of the same BFS order. *)
  let stopped =
    E3.explore ~stop:(fun ~configs -> configs >= 10) g3 ~idents:[| 0; 1; 2 |]
  in
  check Alcotest.bool "incomplete" false stopped.complete;
  check Alcotest.bool "prefix explored" true
    (stopped.configs >= 10 && stopped.configs < 64)

let test_reference_rejects_crash_options () =
  let expected =
    Invalid_argument
      "Explorer.explore: the `Reference oracle supports neither checkpoints, \
       budgets, stop callbacks, execution policies, symmetry reduction, \
       spilling nor fault injection (use `Hashcons)"
  in
  Alcotest.check_raises "reference oracle has no checkpoint support" expected
    (fun () ->
      ignore
        (E3.explore ~impl:`Reference
           ~stop:(fun ~configs:_ -> false)
           g3 ~idents:[| 0; 1; 2 |]));
  Alcotest.check_raises "reference oracle has no policy support" expected
    (fun () ->
      ignore
        (E3.explore ~impl:`Reference ~policy:Asyncolor_util.Executor.Serial g3
           ~idents:[| 0; 1; 2 |]))

let test_lockhunt_budget_truncates () =
  let module H = Asyncolor_check.Lockhunt.Make (Asyncolor.Algorithm2.P) in
  let g = Builders.cycle 16 in
  let idents = Asyncolor_workload.Idents.increasing 16 in
  let all = H.hunt g ~idents in
  check Alcotest.int "16 edges probed" 16 (List.length all);
  let cut = H.hunt ~budget:(Budget.create ~time_s:0.0 ()) g ~idents in
  check Alcotest.(list (pair int int)) "exhausted budget probes nothing" []
    (H.locked cut);
  check Alcotest.int "no probes ran" 0 (List.length cut);
  let n = ref 0 in
  let some = H.hunt ~stop:(fun () -> incr n; !n > 5) g ~idents in
  check Alcotest.bool "stop callback cuts the hunt short" true
    (List.length some < 16 && List.length some > 0)

(* --- chaos: injected faults are invisible in the report ---------------- *)

module Chaos = Asyncolor_resilience.Chaos
module Spill = Asyncolor_resilience.Spill
module Exec = Asyncolor_util.Executor

(* Recovery paths leave quarantine/ subdirectories behind. *)
let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "asyncolor-chaos" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

(* Generous attempt budget, injectable sleep: retries are instant and the
   odds of 12 consecutive rate-0.1 faults at one site are negligible. *)
let instant_retry = Chaos.Retry.cfg ~max_attempts:12 ~sleep:(fun _ -> ()) ()

let chaos_legs =
  [
    (1, Exec.Serial);
    (2, Exec.Synchronous);
    (4, Exec.Synchronous);
    (2, Exec.asynchronous ~kappa:0.5 ~jobs:2 ());
    (4, Exec.asynchronous ~kappa:0.5 ~jobs:4 ());
  ]

let chaos_leg ~seed ~jobs ~policy =
  with_temp_dir (fun dir ->
      let chaos = Chaos.create ~seed ~rate:0.1 () in
      let sp =
        Spill.create ~chaos ~retry:instant_retry ~retain:4
          ~dir:(Filename.concat dir "spill") ()
      in
      let r =
        E3.explore ~jobs ~policy
          ~checkpoint:(Filename.concat dir "c.ckpt", 8)
          ~spill:(sp, 0) ~chaos ~retry:instant_retry g3 ~idents:[| 0; 1; 2 |]
      in
      (r, Chaos.stats chaos))

(* S3: any fault schedule survived by the retry budget yields a report
   equal to the fault-free run — with checkpoint saves, spilling and
   worker-crash injection all armed, across jobs 1/2/4 and all three
   execution policies. *)
let prop_chaos_differential =
  QCheck.Test.make ~count:4
    ~name:"fault-injected report = fault-free report (all policies)"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let baseline = baseline3 () in
      let injected = ref 0 in
      let agree =
        List.for_all
          (fun (jobs, policy) ->
            let r, st = chaos_leg ~seed ~jobs ~policy in
            injected := !injected + st.Chaos.injected;
            r = baseline)
          chaos_legs
      in
      (* per-leg injection counts fluctuate; across five armed legs a
         silent schedule would mean the injector is broken *)
      agree && !injected > 0)

let test_chaos_exhaustion_truncates_cleanly () =
  (* Retry exhaustion on checkpoint saves is not an error: the run ends
     early with complete=false, no exception, no stale tmp. *)
  with_temp_dir (fun dir ->
      let ckpt = Filename.concat dir "c.ckpt" in
      let chaos = Chaos.create ~seed:3 ~rate:1.0 ~sites:[ "checkpoint" ] () in
      let retry = Chaos.Retry.cfg ~max_attempts:2 ~sleep:(fun _ -> ()) () in
      let r =
        E3.explore ~checkpoint:(ckpt, 8) ~chaos ~retry g3 ~idents:[| 0; 1; 2 |]
      in
      check Alcotest.bool "report truncated, not crashed" false r.complete;
      check Alcotest.int "truncation sentinel" (-1) r.worst_case_activations;
      check Alcotest.bool "prefix explored before the cut" true (r.configs >= 8);
      check Alcotest.bool "no stale tmp left behind" false
        (Sys.file_exists (ckpt ^ ".tmp")))

let test_chaos_spill_failure_truncates_at_seal () =
  (* S1: a spill write that fails permanently — including the background
     writes the parallel builder hands to the executor — surfaces as a
     clean truncation at the seal/merge boundary, never as a crash. *)
  List.iter
    (fun jobs ->
      with_temp_dir (fun dir ->
          let chaos =
            Chaos.create ~seed:5 ~rate:1.0 ~sites:[ "spill.write" ] ()
          in
          let retry = Chaos.Retry.cfg ~max_attempts:2 ~sleep:(fun _ -> ()) () in
          let sp =
            Spill.create ~chaos ~retry ~dir:(Filename.concat dir "spill") ()
          in
          let r =
            E3.explore ~jobs ~spill:(sp, 0) ~chaos ~retry g3
              ~idents:[| 0; 1; 2 |]
          in
          check Alcotest.bool
            (Printf.sprintf "jobs=%d: truncated cleanly" jobs)
            false r.complete;
          check Alcotest.bool "made progress before the failure" true
            (r.configs >= 1)))
    [ 1; 4 ]

(* --- lockhunt ---------------------------------------------------------- *)

let test_lockhunt_alg1_immune () =
  let module H = Asyncolor_check.Lockhunt.Make (Asyncolor.Algorithm1.P) in
  let g = Builders.cycle 16 in
  let idents = Asyncolor_workload.Idents.random_permutation
      (Asyncolor_util.Prng.create ~seed:42) 16
  in
  check Alcotest.(list (pair int int)) "no pair locks Algorithm 1" []
    (H.locked (H.hunt g ~idents))

let test_lockhunt_alg2_finds_locks () =
  let module H = Asyncolor_check.Lockhunt.Make (Asyncolor.Algorithm2.P) in
  let g = Builders.cycle 32 in
  let idents = Asyncolor_workload.Idents.random_permutation
      (Asyncolor_util.Prng.create ~seed:33) 32
  in
  let findings = H.hunt g ~idents in
  let locked = H.locked findings in
  check Alcotest.bool "at least one pair locks" true (locked <> []);
  (* every reported lock is genuine: both processes worked for ~the whole
     step budget without returning *)
  List.iter
    (fun (f : H.finding) ->
      if f.locked then begin
        let a, b = f.pair_activations in
        check Alcotest.bool "pair really worked" true (a > 100 && b > 100)
      end)
    findings

let test_lockhunt_probe_single_pair () =
  let module H = Asyncolor_check.Lockhunt.Make (Asyncolor.Algorithm2.P) in
  let g = Builders.cycle 3 in
  (* the F1 pair on C3 (5,1,9): isolating (1,2) drains p0 then locks *)
  let f = H.probe g ~idents:[| 5; 1; 9 |] (1, 2) in
  check Alcotest.bool "locks" true f.locked

(* --- adaptive adversary ------------------------------------------------- *)

module Adaptive2 = Asyncolor_check.Adaptive.Make (Asyncolor.Algorithm2.P)
module Adaptive1 = Asyncolor_check.Adaptive.Make (Asyncolor.Algorithm1.P)

let test_adaptive_matches_exact_worst () =
  (* greedy one-step lookahead achieves the exhaustive exact worst case on
     C3 (3 activations, from E6/E13) *)
  let r =
    Adaptive2.worst_rounds ~mode:`Singletons (Builders.cycle 3) ~idents:[| 5; 1; 9 |]
  in
  check Alcotest.bool "terminates" true r.all_returned;
  check Alcotest.int "matches exact worst" 3 r.rounds

let test_adaptive_rediscovers_phase_lock () =
  (* with simultaneous sets allowed, the greedy scheduler drives Algorithm 2
     into the F1 livelock on its own *)
  let r =
    Adaptive2.worst_rounds ~mode:`All_subsets ~max_steps:300 (Builders.cycle 3)
      ~idents:[| 5; 1; 9 |]
  in
  check Alcotest.bool "never terminates" false r.all_returned;
  check Alcotest.int "ran to the cap" 300 r.steps

let test_adaptive_cannot_lock_alg1 () =
  let r =
    Adaptive1.worst_rounds ~mode:`All_subsets ~max_steps:300 (Builders.cycle 8)
      ~idents:(Asyncolor_workload.Idents.random_permutation
                 (Asyncolor_util.Prng.create ~seed:5) 8)
  in
  check Alcotest.bool "Algorithm 1 terminates even under the malicious scheduler"
    true r.all_returned

let test_adaptive_singleton_monotone_growth () =
  (* the greedy interleaved worst case grows with n on monotone rings *)
  let worst n =
    (Adaptive2.worst_rounds ~mode:`Singletons (Builders.cycle n)
       ~idents:(Asyncolor_workload.Idents.increasing n))
      .rounds
  in
  let w4 = worst 4 and w16 = worst 16 in
  check Alcotest.bool "grows" true (w16 > w4);
  check Alcotest.bool "bounded by theorem" true
    (w16 <= Asyncolor.Algorithm2.activation_bound 16)

let () =
  Alcotest.run "check"
    [
      ( "adaptive",
        [
          Alcotest.test_case "matches exact worst" `Quick test_adaptive_matches_exact_worst;
          Alcotest.test_case "rediscovers F1 lock" `Quick
            test_adaptive_rediscovers_phase_lock;
          Alcotest.test_case "cannot lock alg1" `Quick test_adaptive_cannot_lock_alg1;
          Alcotest.test_case "monotone growth" `Quick
            test_adaptive_singleton_monotone_growth;
        ] );
      ( "lockhunt",
        [
          Alcotest.test_case "alg1 immune" `Quick test_lockhunt_alg1_immune;
          Alcotest.test_case "alg2 locks found" `Quick test_lockhunt_alg2_finds_locks;
          Alcotest.test_case "probe F1 pair" `Quick test_lockhunt_probe_single_pair;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "immediate return" `Quick test_immediate_return;
          Alcotest.test_case "counting worst case" `Quick
            test_counting_protocol_worst_case;
          Alcotest.test_case "livelock detected" `Quick test_livelock_detected;
          Alcotest.test_case "singleton mode" `Quick test_singleton_mode_smaller;
          Alcotest.test_case "safety with witness schedule" `Quick
            test_safety_violation_reported_with_schedule;
          Alcotest.test_case "max_configs truncation" `Quick
            test_max_configs_truncation;
          Alcotest.test_case "truncation sentinel (both impls)" `Quick
            test_truncation_sentinel_both_impls;
          Alcotest.test_case "deep-path explicit-stack DFS" `Quick
            test_deep_path_livelock_dfs;
          Alcotest.test_case "max_violations cap" `Quick test_max_violations_cap;
        ] );
      ( "packed-enumeration",
        [ qtest test_masks_all_subsets; qtest test_masks_singletons ] );
      ( "differential",
        [
          Alcotest.test_case "alg2 on C3 (E6/E13)" `Quick test_differential_alg2_c3;
          Alcotest.test_case "alg1/alg2 on C4" `Quick test_differential_c4;
          Alcotest.test_case "alg3 & alg2s (E6/E17)" `Quick
            test_differential_alg3_alg2s;
          Alcotest.test_case "alg2 on K4 (E16)" `Quick test_differential_e16_k4;
          Alcotest.test_case "safety schedules & truncation" `Quick
            test_differential_safety_and_truncation;
        ] );
      ( "crash-safety",
        [
          Alcotest.test_case "resume identical at every cut" `Quick
            test_resume_identical_at_every_cut;
          Alcotest.test_case "resume after parallel interrupt" `Quick
            test_resume_after_parallel_interrupt;
          Alcotest.test_case "chained interruptions" `Quick test_resume_chained;
          Alcotest.test_case "safety checks survive resume" `Quick
            test_resume_safety_checks_continue;
          Alcotest.test_case "resume_info metadata" `Quick
            test_resume_info_describes_checkpoint;
          Alcotest.test_case "protocol mismatch rejected" `Quick
            test_resume_rejects_other_protocol;
          Alcotest.test_case "budget truncates cleanly" `Quick
            test_budget_truncates_cleanly;
          Alcotest.test_case "stop callback contract" `Quick
            test_stop_callback_equivalent_to_max_configs_contract;
          Alcotest.test_case "reference rejects crash options" `Quick
            test_reference_rejects_crash_options;
          Alcotest.test_case "lockhunt budget/stop truncation" `Quick
            test_lockhunt_budget_truncates;
        ] );
      ( "chaos",
        [
          qtest prop_chaos_differential;
          Alcotest.test_case "retry exhaustion truncates cleanly" `Quick
            test_chaos_exhaustion_truncates_cleanly;
          Alcotest.test_case "spill failure truncates at seal" `Quick
            test_chaos_spill_failure_truncates_at_seal;
        ] );
    ]
