(* Tests for the online churn engine: session determinism, the
   self-healing detectors against their planted recovery bugs, trace
   persistence and replay, and configuration validation. *)

module Session = Asyncolor_churn.Session
module Trace = Asyncolor_churn.Trace
module Checkpoint = Asyncolor_resilience.Checkpoint
module Executor = Asyncolor_util.Executor

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

(* Small but non-trivial: a handful of epochs on a C16 ring, the same
   shape the CLI smoke rules use. *)
let small algo = { Session.default with algo; n = 16; horizon = 5_000 }

let campaign ?jobs ?policy cfg ~seed ~sessions =
  Session.campaign ?jobs ?policy cfg ~seed ~sessions ()

(* --- clean runs -------------------------------------------------------- *)

let test_clean algo () =
  let r = campaign (small algo) ~seed:3 ~sessions:2 in
  check Alcotest.(list (pair int reject)) "no violations" [] r.violations;
  check Alcotest.bool "horizon reached" true
    (r.total_activations >= 2 * (small algo).horizon);
  check Alcotest.int "sessions" 2 (List.length r.results);
  List.iter
    (fun (s : Session.result) ->
      check Alcotest.int "drain recovers everybody" s.crashes s.recoveries;
      check Alcotest.bool "epochs elapsed" true (s.epochs > 0);
      (* at most one sample per recovery — incarnations still healing
         when the horizon trips contribute none *)
      let samples = List.length s.latencies in
      check Alcotest.bool "latency samples bounded by recoveries" true
        (samples > 0 && samples <= s.recoveries);
      List.iter
        (fun l -> check Alcotest.bool "latency positive" true (l > 0))
        s.latencies)
    r.results;
  (* crashes happened at all, so the invariants were actually exercised *)
  check Alcotest.bool "churn occurred" true (r.total_crashes > 0)

let test_clean_a2 = test_clean Session.A2
let test_clean_a3 = test_clean Session.A3

(* --- determinism ------------------------------------------------------- *)

let test_campaign_determinism () =
  let cfg = small Session.A2 in
  let reference = campaign cfg ~seed:11 ~sessions:4 ~jobs:1 in
  let legs =
    [
      ("sync j2", campaign cfg ~seed:11 ~sessions:4 ~jobs:2);
      ( "sync j4",
        campaign cfg ~seed:11 ~sessions:4 ~jobs:4
          ~policy:Executor.Synchronous );
      ( "async j2",
        campaign cfg ~seed:11 ~sessions:4 ~jobs:2
          ~policy:(Executor.asynchronous ~jobs:2 ()) );
    ]
  in
  List.iter
    (fun (name, r) -> check Alcotest.bool name true (r = reference))
    legs

let prop_session_pure_function =
  QCheck.Test.make ~name:"run is a pure function of (config, seed, session)"
    ~count:8
    QCheck.(pair (int_range 0 1000) (int_range 0 3))
    (fun (seed, session) ->
      let cfg = { (small Session.A2) with horizon = 1_500 } in
      Session.run cfg ~seed ~session = Session.run cfg ~seed ~session)

let test_session_seed () =
  (* distinct sessions must draw from distinct streams *)
  let seeds = List.init 16 (Session.session_seed ~seed:42) in
  check Alcotest.int "pairwise distinct" 16
    (List.length (List.sort_uniq compare seeds));
  check Alcotest.int "session 0 is the campaign seed" 42
    (Session.session_seed ~seed:42 0)

(* --- planted recovery bugs --------------------------------------------- *)

let test_mutants () =
  List.iter
    (fun bug ->
      let detector = Session.bug_detector bug in
      List.iter
        (fun algo ->
          let cfg = { (small algo) with mutant = Some bug } in
          let r = campaign cfg ~seed:5 ~sessions:2 in
          let name =
            Printf.sprintf "%s/a%s caught" (Session.bug_name bug)
              (Session.algo_name algo)
          in
          check Alcotest.bool name true (r.violations <> []);
          List.iter
            (fun (_, (v : Session.violation)) ->
              check Alcotest.string (name ^ ": pinned detector") detector
                v.detector)
            r.violations;
          (* the per-session cap gates the epoch loop, so a flooding
             mutant stops at 64 plus at most one epoch's overshoot *)
          List.iter
            (fun (s : Session.result) ->
              check Alcotest.bool "violation cap" true
                (List.length s.violations <= 64 + (4 * cfg.n)))
            r.results)
        [ Session.A2; Session.A3 ])
    Session.bugs

let test_detector_names () =
  check
    Alcotest.(list string)
    "every pinned detector is advertised"
    (List.sort_uniq compare (List.map Session.bug_detector Session.bugs))
    (List.filter
       (fun d -> List.mem d (List.map Session.bug_detector Session.bugs))
       (List.sort_uniq compare Session.detector_names));
  List.iter
    (fun b ->
      match Session.bug_of_string (Session.bug_name b) with
      | Some b' -> check Alcotest.bool "bug name round-trips" true (b = b')
      | None -> Alcotest.fail "bug name does not parse")
    Session.bugs

(* --- trace persistence and replay -------------------------------------- *)

let with_tmp f =
  let path = Filename.temp_file "churn-trace" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_trace_roundtrip () =
  let cfg = { (small Session.A2) with mutant = Some Session.Skip_reinit } in
  let report = campaign cfg ~seed:5 ~sessions:2 in
  let t = Trace.of_report report in
  check Alcotest.bool "trace carries the violations" true
    (t.violations = report.violations && t.violations <> []);
  with_tmp (fun path ->
      Trace.save ~path t;
      let t' = Trace.load path in
      check Alcotest.bool "round-trips" true (t = t');
      let report', reproduced = Trace.replay t' in
      check Alcotest.bool "reproduces byte-for-byte" true reproduced;
      check Alcotest.bool "replay re-runs the campaign" true
        (report'.violations = report.violations))

let test_trace_corrupt () =
  let cfg = { (small Session.A2) with mutant = Some Session.Heal_starve } in
  let t = Trace.of_report (campaign cfg ~seed:5 ~sessions:1) in
  with_tmp (fun path ->
      Trace.save ~path t;
      (* truncate: the checksummed container must refuse it *)
      let full = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub full 0 (String.length full / 2)));
      match Trace.load path with
      | _ -> Alcotest.fail "loaded a truncated trace"
      | exception Checkpoint.Corrupt _ -> ())

let test_trace_rejects_invalid_config () =
  (* a structurally valid container holding an out-of-range config is
     still untrusted input *)
  let cfg = small Session.A2 in
  let t =
    Trace.of_report (campaign { cfg with horizon = 1_000 } ~seed:1 ~sessions:1)
  in
  let evil = { t with cfg = { cfg with n = 2 } } in
  with_tmp (fun path ->
      Trace.save ~path evil;
      match Trace.load path with
      | _ -> Alcotest.fail "loaded a trace with an invalid config"
      | exception Checkpoint.Corrupt _ -> ())

(* --- configuration validation ------------------------------------------ *)

let test_validate () =
  let d = Session.default in
  let expect_invalid name cfg =
    match Session.validate_config cfg with
    | () -> Alcotest.failf "%s: accepted" name
    | exception Invalid_argument _ -> ()
  in
  Session.validate_config d;
  expect_invalid "n too small" { d with n = 2 };
  expect_invalid "n too large" { d with n = Sys.int_size };
  expect_invalid "horizon" { d with horizon = 0 };
  expect_invalid "crash rate" { d with crash_rate = 1.5 };
  expect_invalid "recover rate" { d with recover_rate = -0.1 };
  expect_invalid "burst low" { d with burst = 0 };
  expect_invalid "burst high" { d with burst = d.n + 1 };
  match campaign d ~seed:0 ~sessions:0 with
  | _ -> Alcotest.fail "accepted 0 sessions"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "churn"
    [
      ( "sessions",
        [
          Alcotest.test_case "clean a2" `Quick test_clean_a2;
          Alcotest.test_case "clean a3" `Quick test_clean_a3;
          Alcotest.test_case "campaign determinism" `Quick
            test_campaign_determinism;
          qtest prop_session_pure_function;
          Alcotest.test_case "session seed" `Quick test_session_seed;
        ] );
      ( "detectors",
        [
          Alcotest.test_case "planted bugs caught" `Quick test_mutants;
          Alcotest.test_case "detector names" `Quick test_detector_names;
        ] );
      ( "traces",
        [
          Alcotest.test_case "round-trip + replay" `Quick test_trace_roundtrip;
          Alcotest.test_case "corrupt" `Quick test_trace_corrupt;
          Alcotest.test_case "invalid config" `Quick
            test_trace_rejects_invalid_config;
        ] );
      ( "config",
        [ Alcotest.test_case "validation" `Quick test_validate ] );
    ]
