(* asyncolor — command-line front end.

   Subcommands:
     run          one execution of an algorithm on a topology, with a chosen
                  identifier workload and adversary; prints the colouring
     sweep        rounds-vs-n table for an algorithm over the adversary suite
     check        exhaustive model checking on a small cycle
     fuzz         randomized fault-injection campaigns with shrinking
     churn        long-lived crash-recovery sessions with self-healing checks
     replay       re-execute an explicit schedule or a recorded fuzz trace
     experiments  run the reproduction experiments (DESIGN.md index)      *)

module Adversary = Asyncolor_kernel.Adversary
module Prng = Asyncolor_util.Prng
module Graph = Asyncolor_topology.Graph
module Builders = Asyncolor_topology.Builders
module Idents = Asyncolor_workload.Idents
module Table = Asyncolor_workload.Table
module Checker = Asyncolor.Checker
module Color = Asyncolor.Color
module Budget = Asyncolor_resilience.Budget
module Stop = Asyncolor_resilience.Stop
module Diag = Asyncolor_resilience.Diag
module Chaos = Asyncolor_resilience.Chaos
module Checkpoint = Asyncolor_resilience.Checkpoint
module Fz = Asyncolor_fuzz
module Churn = Asyncolor_churn
module Obs = Asyncolor_obs.Obs
module Oclock = Asyncolor_obs.Clock
module Trace_export = Asyncolor_obs.Trace_export

(* Every randomized subcommand announces the seed it actually used on
   stderr, so any run — including one that used the default — can be
   reproduced by pasting the seed back with --seed. *)
let announce_seed seed = Diag.printf "effective seed: %d\n" seed

let make_idents ~kind ~seed n =
  match kind with
  | "increasing" -> Idents.increasing n
  | "decreasing" -> Idents.decreasing n
  | "zigzag" -> Idents.zigzag n
  | "random" -> Idents.random_permutation (Prng.create ~seed) n
  | "sparse" -> Idents.random_sparse (Prng.create ~seed) ~n ~universe:(max 64 (n * n))
  | "bit-adversarial" -> Idents.bit_adversarial n
  | k -> failwith (Printf.sprintf "unknown identifier workload %S" k)

let make_adversary ~kind ~seed ~n =
  match String.split_on_char ':' kind with
  | [ "sync" ] -> Adversary.synchronous
  | [ "seq" ] -> Adversary.sequential
  | [ "rr" ] -> Adversary.round_robin
  | [ "singletons" ] -> Adversary.singletons (Prng.create ~seed)
  | [ "staircase" ] -> Adversary.staircase
  | [ "waves" ] -> Adversary.alternating_waves
  | [ "random"; p ] -> Adversary.random_subsets (Prng.create ~seed) ~p:(float_of_string p)
  | [ "crash"; rate ] ->
      Adversary.random_crashes (Prng.create ~seed) ~n ~rate:(float_of_string rate)
        ~horizon:20 (Adversary.random_subsets (Prng.create ~seed:(seed + 1)) ~p:0.7)
  | _ ->
      failwith
        (Printf.sprintf
           "unknown adversary %S (try sync, seq, rr, singletons, staircase, waves, \
            random:P, crash:RATE)"
           kind)

let make_graph ~kind ~seed n =
  match kind with
  | "cycle" -> Builders.cycle n
  | "path" -> Builders.path n
  | "complete" -> Builders.complete n
  | "star" -> Builders.star n
  | "petersen" -> Builders.petersen ()
  | "hypercube" -> Builders.hypercube n
  | "random3" -> Builders.random_regular (Prng.create ~seed) ~n ~d:3
  | k -> failwith (Printf.sprintf "unknown graph %S" k)

(* Dispatch over the four algorithms, erasing the differing output types
   into strings for display. *)
module Show (P : Asyncolor_kernel.Protocol.S) = struct
  module E = Asyncolor_kernel.Engine.Make (P)

  let run ~pp_output ~equal ~in_palette ~graph ~idents ~adv ~max_steps ~verbose =
    let engine = E.create ~record_trace:verbose graph ~idents in
    let r = E.run ~max_steps engine adv in
    let verdict = Checker.check ~equal ~in_palette graph r.outputs in
    if verbose then Format.printf "%a@.@." E.pp_spacetime engine;
    if verbose then
      List.iter
        (fun (e : E.event) ->
          Printf.printf "t=%-4d activated={%s}%s\n" e.time
            (String.concat "," (List.map string_of_int e.activated))
            (match e.returned with
            | [] -> ""
            | l ->
                " returned: "
                ^ String.concat ", "
                    (List.map (fun (p, o) -> Printf.sprintf "p%d=%s" p (pp_output o)) l)))
        (E.trace engine);
    Array.iteri
      (fun p out ->
        Printf.printf "p%-4d id=%-8d %s\n" p idents.(p)
          (match out with
          | Some o -> "colour " ^ pp_output o
          | None -> "did not return (crashed or cut off)"))
      r.outputs;
    Printf.printf
      "steps=%d rounds(max activations)=%d all_returned=%b proper=%b palette_ok=%b \
       distinct=%d\n"
      r.steps r.rounds r.all_returned verdict.Checker.proper
      (verdict.Checker.off_palette = [])
      verdict.Checker.distinct_colors;
    if not (Checker.ok verdict) then (
      Format.printf "VIOLATION: %a@." Checker.pp verdict;
      exit 1)
end

module Show1 = Show (Asyncolor.Algorithm1.P)
module Show2 = Show (Asyncolor.Algorithm2.P)
module Show3 = Show (Asyncolor.Algorithm3.P)
module Show4 = Show (Asyncolor.Algorithm4.P)

let run_algorithm ~alg ~graph ~idents ~adv ~max_steps ~verbose =
  let pair_pp (a, b) = Printf.sprintf "(%d,%d)" a b in
  match alg with
  | 1 ->
      Show1.run ~pp_output:pair_pp
        ~equal:(fun a b -> a = b)
        ~in_palette:(Color.pair_in_palette ~budget:2)
        ~graph ~idents ~adv ~max_steps ~verbose
  | 2 ->
      Show2.run ~pp_output:string_of_int ~equal:Int.equal ~in_palette:Color.in_five
        ~graph ~idents ~adv ~max_steps ~verbose
  | 3 ->
      Show3.run ~pp_output:string_of_int ~equal:Int.equal ~in_palette:Color.in_five
        ~graph ~idents ~adv ~max_steps ~verbose
  | 4 ->
      Show4.run ~pp_output:pair_pp
        ~equal:(fun a b -> a = b)
        ~in_palette:(Asyncolor.Algorithm4.in_palette ~max_degree:(Graph.max_degree graph))
        ~graph ~idents ~adv ~max_steps ~verbose
  | n -> failwith (Printf.sprintf "unknown algorithm %d (1-4)" n)

open Cmdliner

let alg_arg =
  Arg.(value & opt int 3 & info [ "a"; "algorithm" ] ~docv:"N" ~doc:"Algorithm 1-4.")

let n_arg = Arg.(value & opt int 12 & info [ "n" ] ~docv:"N" ~doc:"Number of nodes.")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.")

let idents_arg =
  Arg.(
    value
    & opt string "random"
    & info [ "i"; "idents" ] ~docv:"KIND"
        ~doc:
          "Identifier workload: increasing, decreasing, zigzag, random, sparse, \
           bit-adversarial.")

let adv_arg =
  Arg.(
    value
    & opt string "random:0.5"
    & info [ "d"; "adversary" ] ~docv:"KIND"
        ~doc:"Schedule: sync, seq, rr, singletons, staircase, waves, random:P, crash:RATE.")

let graph_arg =
  Arg.(
    value
    & opt string "cycle"
    & info [ "g"; "graph" ] ~docv:"KIND"
        ~doc:"Topology: cycle, path, complete, star, petersen, hypercube, random3.")

let max_steps_arg =
  Arg.(value & opt int 1_000_000 & info [ "max-steps" ] ~doc:"Schedule length cap.")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the trace.")

let jobs_arg =
  Arg.(
    value
    & opt int (Asyncolor_util.Executor.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel subcommands (sweep, check, lockhunt, \
           experiments).  Defaults to the recommended domain count.  \
           Deterministic-output guarantee: stdout is byte-identical for every \
           value — the exhaustive explorer merges discoveries in a \
           jobs-independent order (so even configuration ids match), and the \
           other fan-outs merge results by input index.  Timing/rate \
           diagnostics go to stderr.")

let exec_policy_arg =
  Arg.(
    value
    & opt string "auto"
    & info [ "exec-policy" ] ~docv:"POLICY"
        ~doc:
          "Execution policy for the parallel subcommands: $(b,auto) (serial \
           when $(b,--jobs) is 1, synchronous otherwise), $(b,serial), \
           $(b,sync) (level-synchronous barrier), or $(b,async) \
           (\xCE\xBA-overlapped pipeline, bounded in-flight work).  The report on \
           stdout is byte-identical under every policy; only wall clock \
           changes.")

let kappa_arg =
  Arg.(
    value
    & opt float 0.5
    & info [ "kappa" ] ~docv:"K"
        ~doc:
          "Overlap fraction for $(b,--exec-policy) $(b,async): expansion of \
           BFS level k+1 may start once a K fraction of level k has merged \
           (clamped to [0,1]; 1 reproduces the synchronous barrier).")

(* "auto" maps to [None]: the library derives Serial/Synchronous from
   [jobs], exactly the pre-policy behaviour. *)
let make_policy ~policy ~kappa ~jobs =
  match policy with
  | "auto" -> None
  | s -> Some (Asyncolor_util.Executor.policy_of_string ~kappa ~jobs s)

let time_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "time-budget" ] ~docv:"SEC"
        ~doc:
          "Wall-clock budget.  When it runs out the exploration stops at the \
           next loop boundary and prints a clean truncated report \
           (complete=false), exit code 0.")

let mem_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-budget-mb" ] ~docv:"MB"
        ~doc:
          "Major-heap budget in megabytes (garbage included — the figure the \
           OOM killer sees).  Same clean-truncation contract as \
           $(b,--time-budget).")

let make_budget ~time_s ~mem_mb =
  match (time_s, mem_mb) with
  | None, None -> None
  | _ ->
      Some
        (Budget.create ?time_s
           ?mem_words:(Option.map Budget.mem_words_of_mb mem_mb)
           ())

(* --- observability plumbing (check / lockhunt / fuzz) ------------------

   Tracing and metrics are strictly out-of-band: the trace goes to a
   file, the metrics table to stderr through the line-atomic sink, and
   stdout — the surface under the byte-determinism diff tests — is
   untouched whether the sink is enabled or not. *)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"PATH"
        ~doc:
          "Write a Chrome trace_event JSON trace of the run to PATH — load \
           it in Perfetto or chrome://tracing, or sanity-check it with \
           $(b,asyncolor tracecheck).  Enables the observability sink; the \
           report on stdout is byte-identical with or without it.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the flat metrics table (counter and gauge totals, sorted \
           by name) to stderr after the run.")

let make_obs ~trace_out ~metrics =
  if Option.is_some trace_out || metrics then Obs.create () else Obs.disabled

let finish_obs obs ~trace_out ~metrics =
  (match trace_out with
  | None -> ()
  | Some path ->
      Trace_export.write_chrome obs ~path;
      Diag.printf "trace written to %s (%d spans)\n" path
        (List.length (Obs.spans obs)));
  if metrics then
    let table = Trace_export.metrics_table obs in
    if table <> "" then Asyncolor_obs.Sink.emit table

(* Elapsed seconds for the stderr rate diagnostics, off the obs layer's
   monotonic clock so a suspended or ntp-stepped run can't go negative. *)
let elapsed_s t0 = Int64.to_float (Int64.sub (Oclock.monotonic ()) t0) /. 1e9

(* --- chaos plumbing (check / lockhunt / fuzz) --------------------------

   The injector is armed from one flag so the CI differential legs can
   toggle it without touching anything else.  The stats line goes to
   stderr through [Diag] -- stdout remains the byte-determinism surface,
   identical with and without faults. *)

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"seed:N,rate:R"
        ~doc:
          "Arm the environment-fault injector: every checkpoint/spill I/O \
           operation and every executor worker draws a fault with \
           probability R from a PRNG stream derived from (N, site).  \
           Schedules are deterministic in the seed, and the report on \
           stdout stays byte-identical to the fault-free run for any \
           schedule the $(b,--retry-max) budget survives.")

let retry_max_arg =
  Arg.(
    value & opt int 4
    & info [ "retry-max" ] ~docv:"N"
        ~doc:
          "Retries per I/O operation after the first attempt (N+1 attempts \
           total) before the run truncates cleanly.  Only meaningful with \
           $(b,--chaos); without it I/O fails fast.")

let backoff_ms_arg =
  Arg.(
    value & opt float 50.
    & info [ "backoff-ms" ] ~docv:"MS"
        ~doc:
          "Initial retry backoff in milliseconds, doubling per attempt \
           (capped at 20xMS).  0 disables the delay -- what the tests and \
           the CI chaos leg use to stay instant.")

let parse_chaos ~obs = function
  | None -> Chaos.disabled
  | Some spec ->
      let seed = ref None and rate = ref None in
      List.iter
        (fun kv ->
          match String.index_opt kv ':' with
          | Some i -> (
              let k = String.sub kv 0 i
              and v = String.sub kv (i + 1) (String.length kv - i - 1) in
              match k with
              | "seed" -> seed := Some (int_of_string v)
              | "rate" -> rate := Some (float_of_string v)
              | _ -> failwith (Printf.sprintf "--chaos: unknown key %S" k))
          | None -> failwith "--chaos expects seed:N,rate:R")
        (String.split_on_char ',' spec);
      let seed =
        match !seed with
        | Some s -> s
        | None -> failwith "--chaos: missing seed:N"
      in
      let rate =
        match !rate with
        | Some r -> r
        | None -> failwith "--chaos: missing rate:R"
      in
      Chaos.create ~obs ~rate ~seed ()

let make_retry ~chaos ~retry_max ~backoff_ms =
  if Chaos.enabled chaos then
    Some
      (Chaos.Retry.cfg
         ~max_attempts:(max 0 retry_max + 1)
         ~backoff_ms ~max_backoff_ms:(backoff_ms *. 20.) ())
  else None

let chaos_stats_line chaos =
  if Chaos.enabled chaos then begin
    let { Chaos.injected; retries; quarantined; degraded } =
      Chaos.stats chaos
    in
    Diag.printf "chaos: injected=%d retries=%d quarantined=%d degraded=%d\n"
      injected retries quarantined degraded
  end

(* The spill-pressure companion of the configs/sec line: how much of the
   run is frontier-resident on the heap vs spilled to disk, so a
   budget-limited run can tell at a glance whether --spill-dir is doing
   its job.  Diagnostics only — stderr, never part of the report. *)
let memory_pressure_line ?spill () =
  let mib w = float_of_int w /. (1024. *. 1024.) in
  let heap_b = (Gc.quick_stat ()).Gc.heap_words * (Sys.word_size / 8) in
  match spill with
  | None ->
      Printf.sprintf "memory: %.1f MiB frontier-resident, 0 B on disk"
        (mib heap_b)
  | Some (sp, _) ->
      Printf.sprintf
        "memory: %.1f MiB frontier-resident, %.1f MiB on disk (%d spill \
         levels, %.1f MiB read back)"
        (mib heap_b)
        (mib (Asyncolor_resilience.Spill.bytes_written sp))
        (Asyncolor_resilience.Spill.levels_on_disk sp)
        (mib (Asyncolor_resilience.Spill.bytes_read sp))

let run_cmd =
  let doc = "run one execution and print the colouring" in
  let f alg n seed idents_kind adv_kind graph_kind max_steps verbose =
    announce_seed seed;
    let graph = make_graph ~kind:graph_kind ~seed n in
    let n = Graph.n graph in
    let idents = make_idents ~kind:idents_kind ~seed n in
    let adv = make_adversary ~kind:adv_kind ~seed ~n in
    run_algorithm ~alg ~graph ~idents ~adv ~max_steps ~verbose
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const f $ alg_arg $ n_arg $ seed_arg $ idents_arg $ adv_arg $ graph_arg
      $ max_steps_arg $ verbose_arg)

let sweep_cmd =
  let doc = "rounds-vs-n table over the adversary suite" in
  let sizes_arg =
    Arg.(
      value
      & opt (list int) [ 4; 8; 16; 32; 64; 128 ]
      & info [ "sizes" ] ~docv:"N,N,..." ~doc:"Cycle sizes.")
  in
  let f alg seed idents_kind sizes jobs =
    announce_seed seed;
    (* Each size is one self-contained cell: it builds its own graph,
       identifiers and (seed-derived) adversary suite, so the cells fan
       out across domains and the rows merge back in size order — the
       table is byte-identical for every --jobs value. *)
    let row n =
      let graph = Builders.cycle n in
      let idents = make_idents ~kind:idents_kind ~seed n in
      let suite = Asyncolor_experiments.Harness.adversary_suite ~seed ~n in
      let summary =
        match alg with
        | 1 ->
            let module S = Asyncolor_experiments.Harness.Sweep (Asyncolor.Algorithm1.P) in
            S.run
              ~equal:(fun a b -> a = b)
              ~in_palette:(Color.pair_in_palette ~budget:2) ~graph ~idents suite
        | 2 ->
            let module S = Asyncolor_experiments.Harness.Sweep (Asyncolor.Algorithm2.P) in
            S.run ~equal:Int.equal ~in_palette:Color.in_five ~graph ~idents suite
        | 3 ->
            let module S = Asyncolor_experiments.Harness.Sweep (Asyncolor.Algorithm3.P) in
            S.run ~equal:Int.equal ~in_palette:Color.in_five ~graph ~idents suite
        | n -> failwith (Printf.sprintf "sweep supports algorithms 1-3, not %d" n)
      in
      [
        string_of_int n;
        string_of_int summary.worst_rounds;
        String.concat ";" summary.livelocked_names;
      ]
    in
    let rows = Asyncolor_experiments.Harness.map_cells ~jobs row sizes in
    let table = Table.create ~headers:[ "n"; "worst rounds"; "locked schedules" ] in
    List.iter (Table.add_row table) rows;
    Table.print table
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const f $ alg_arg $ seed_arg $ idents_arg $ sizes_arg $ jobs_arg)

let check_cmd =
  let doc = "exhaustively model-check a small cycle over all schedules" in
  let idents_csv =
    Arg.(
      value
      & opt (list int) [ 5; 1; 9 ]
      & info [ "idents" ] ~docv:"X,X,..." ~doc:"Identifiers around the cycle.")
  in
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("simultaneous", `All_subsets); ("interleaved", `Singletons) ])
          `All_subsets
      & info [ "mode" ] ~doc:"Schedule space: simultaneous (full model) or interleaved.")
  in
  let max_configs_arg =
    Arg.(
      value
      & opt int 500_000
      & info [ "max-configs" ] ~docv:"N"
          ~doc:
            "Truncate the exploration after N configurations; the report then \
             carries complete=false and the worst_case_activations=-1 sentinel.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"PATH"
          ~doc:
            "Periodically persist the exploration state to PATH (written \
             atomically: temp file + rename, checksummed).  A final \
             checkpoint is also written when the run is stopped early by a \
             budget, SIGINT/SIGTERM or $(b,--kill-after).")
  in
  let checkpoint_every_arg =
    Arg.(
      value
      & opt int 10_000
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Checkpoint whenever at least N new configurations have been \
             interned since the last save (deterministic, unlike a timer).")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"PATH"
          ~doc:
            "Resume the exploration stored at PATH and run it to completion \
             (or to the next budget/checkpoint boundary).  Graph, \
             identifiers, mode and caps come from the checkpoint; \
             $(b,--idents), $(b,--mode) and $(b,--max-configs) are ignored.  \
             The final report is byte-identical to an uninterrupted run, \
             for any $(b,--jobs) on either side of the interruption.")
  in
  let kill_after_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-after" ] ~docv:"N"
          ~doc:
            "Testing hook: SIGKILL this very process once N configurations \
             have been interned — a real crash, not an exception.  Combine \
             with $(b,--checkpoint) and restart with $(b,--resume).")
  in
  let symmetry_arg =
    Arg.(
      value
      & opt (enum [ ("on", true); ("off", false) ]) false
      & info [ "symmetry" ] ~docv:"on|off"
          ~doc:
            "Quotient the exploration by the cycle's ident-preserving \
             dihedral automorphisms: every configuration is canonicalized \
             to the lexicographically least member of its orbit before \
             interning, cutting the state space by up to 2n on symmetric \
             identifier assignments.  Verdicts are unchanged; the report \
             counts representatives and adds an orbit-expansion line.  \
             Ignored on $(b,--resume) (recorded in the checkpoint).")
  in
  let spill_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "spill-dir" ] ~docv:"DIR"
          ~doc:
            "Spill closed BFS levels of the adjacency stream to \
             delta-encoded, checksummed files under DIR (created if \
             missing), keeping the live heap to the frontier and the \
             intern index.  Combine with $(b,--mem-budget-mb) to run \
             instances whose full adjacency would not fit in memory.")
  in
  let spill_threshold_mb_arg =
    Arg.(
      value
      & opt int 8
      & info [ "spill-threshold-mb" ] ~docv:"MB"
          ~doc:
            "Close and spill a level once the resident adjacency tail \
             exceeds MB megabytes (0 spills at every merge boundary — \
             only useful for exercising the spill path in tests).")
  in
  let f alg idents mode max_configs jobs exec_policy kappa ckpt_path ckpt_every
      resume time_s mem_mb kill_after symmetry spill_dir spill_threshold_mb
      chaos_spec retry_max backoff_ms trace_out metrics =
    let obs = make_obs ~trace_out ~metrics in
    let policy = make_policy ~policy:exec_policy ~kappa ~jobs in
    let chaos = parse_chaos ~obs chaos_spec in
    let retry = make_retry ~chaos ~retry_max ~backoff_ms in
    let idents = Array.of_list idents in
    let n = Array.length idents in
    if n < 3 then failwith "need at least 3 identifiers";
    if n > Sys.int_size - 1 then
      failwith "too many identifiers for packed activation masks (n <= 62)";
    let checkpoint = Option.map (fun p -> (p, ckpt_every)) ckpt_path in
    let budget = make_budget ~time_s ~mem_mb in
    let spill =
      Option.map
        (fun dir ->
          (* MB -> machine words (8 bytes each on 64-bit). *)
          ( Asyncolor_resilience.Spill.create ~chaos ?retry
              ~retain:(if Chaos.enabled chaos then 4 else 0)
              ~dir (),
            spill_threshold_mb * 1024 * 1024 / 8 ))
        spill_dir
    in
    (* Polled by the explorer at expansion boundaries: a genuine SIGKILL
       for the crash-safety tests, then the signal-fed stop flag. *)
    let stop ~configs =
      (match kill_after with
      | Some k when configs >= k -> Unix.kill (Unix.getpid ()) Sys.sigkill
      | _ -> ());
      Stop.requested ()
    in
    let go (type s r o) (module P : Asyncolor_kernel.Protocol.S
          with type state = s and type register = r and type output = o)
        (in_palette : o -> bool) =
      let module Exp = Asyncolor_check.Explorer.Make (P) in
      (* The safety predicate is rebuilt against whichever graph the run
         actually uses — the CLI-provided cycle for a fresh run, the
         stored one for --resume — so fresh and resumed runs share every
         line of the reporting path below. *)
      let coloring_check graph outs =
        let v = Checker.check ~equal:(fun a b -> a = b) ~in_palette graph outs in
        if Checker.ok v then None else Some (Format.asprintf "%a" Checker.pp v)
      in
      let t0 = Oclock.monotonic () in
      let r =
        Stop.with_signals (fun () ->
            match resume with
            | Some path ->
                let info = Exp.resume_info path in
                Diag.printf
                  "resuming %s: %d configs interned, %d pending (n=%d)\n" path
                  info.ri_configs info.ri_pending
                  (Graph.n info.ri_graph);
                Exp.explore_resume ~jobs ?policy ?checkpoint ?budget ~stop
                  ?spill ~chaos ?retry
                  ~check_outputs:(coloring_check info.ri_graph) ~obs path
            | None ->
                let graph = Builders.cycle n in
                Exp.explore ~mode ~max_configs ~jobs ?policy ?checkpoint
                  ?budget ~stop ~symmetry ?spill ~chaos ?retry
                  ~check_outputs:(coloring_check graph) ~obs graph ~idents)
      in
      let dt = elapsed_s t0 in
      Diag.printf "explored %d configs in %.3fs (%.0f configs/sec, jobs=%d)\n"
        r.configs dt
        (float_of_int r.configs /. Float.max dt 1e-9)
        jobs;
      Diag.printf "%s\n" (memory_pressure_line ?spill ());
      chaos_stats_line chaos;
      finish_obs obs ~trace_out ~metrics;
      (match budget with
      | Some b when Budget.exceeded b ->
          Diag.printf "budget exceeded (%s): truncated report\n"
            (Budget.describe b)
      | _ -> ());
      Format.printf "%a@." Exp.pp_report r;
      (match r.livelock with
      | Some v ->
          Format.printf "lasso schedule: %s@."
            (String.concat " "
               (List.map
                  (fun l -> "{" ^ String.concat "," (List.map string_of_int l) ^ "}")
                  v.schedule))
      | None -> ());
      List.iter (fun (v : Exp.violation) -> Format.printf "violation: %s@." v.message) r.safety
    in
    match alg with
    | 1 -> go (module Asyncolor.Algorithm1.P) (Color.pair_in_palette ~budget:2)
    | 2 -> go (module Asyncolor.Algorithm2.P) Color.in_five
    | 3 -> go (module Asyncolor.Algorithm3.P) Color.in_five
    | n -> failwith (Printf.sprintf "check supports algorithms 1-3, not %d" n)
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const f $ alg_arg $ idents_csv $ mode_arg $ max_configs_arg $ jobs_arg
      $ exec_policy_arg $ kappa_arg $ checkpoint_arg $ checkpoint_every_arg
      $ resume_arg $ time_budget_arg $ mem_budget_arg $ kill_after_arg
      $ symmetry_arg $ spill_dir_arg $ spill_threshold_mb_arg $ chaos_arg
      $ retry_max_arg $ backoff_ms_arg $ trace_out_arg $ metrics_arg)

let lockhunt_cmd =
  let doc = "attack every adjacent pair with the isolate-pair schedule (finding F1)" in
  let f alg n seed idents_kind jobs exec_policy kappa time_s mem_mb chaos_spec
      retry_max backoff_ms trace_out metrics =
    announce_seed seed;
    let obs = make_obs ~trace_out ~metrics in
    let policy = make_policy ~policy:exec_policy ~kappa ~jobs in
    let chaos = parse_chaos ~obs chaos_spec in
    (* lockhunt performs no checkpoint/spill I/O: the retry knobs are
       accepted for a uniform chaos surface but only worker-crash
       injection applies. *)
    ignore (make_retry ~chaos ~retry_max ~backoff_ms);
    let graph = Builders.cycle n in
    let idents = make_idents ~kind:idents_kind ~seed n in
    let budget = make_budget ~time_s ~mem_mb in
    let table = Table.create ~headers:[ "pair"; "locked"; "steps"; "pair activations" ] in
    let report (findings : (int * int) list) total =
      Printf.printf "%d/%d pairs lock\n" (List.length findings) total
    in
    let hunt (type s r) (module P : Asyncolor_kernel.Protocol.S
          with type state = s and type register = r) =
      let module H = Asyncolor_check.Lockhunt.Make (P) in
      let t0 = Oclock.monotonic () in
      let findings =
        Stop.with_signals (fun () ->
            H.hunt ~jobs ?policy ?budget ~stop:Stop.requested ~chaos ~obs
              graph ~idents)
      in
      let dt = elapsed_s t0 in
      Diag.printf "%d probes in %.3fs (%.0f probes/sec, jobs=%d)\n"
        (List.length findings) dt
        (float_of_int (List.length findings) /. Float.max dt 1e-9)
        jobs;
      Diag.printf "%s\n" (memory_pressure_line ());
      chaos_stats_line chaos;
      let nedges = List.length (Graph.edges graph) in
      if List.length findings < nedges then
        Printf.printf "hunt cut short: probed %d/%d pairs\n"
          (List.length findings) nedges;
      List.iter
        (fun (f : H.finding) ->
          if f.locked then
            Table.add_row table
              [
                Printf.sprintf "(%d,%d)" (fst f.pair) (snd f.pair);
                "yes";
                string_of_int f.steps;
                Printf.sprintf "(%d,%d)" (fst f.pair_activations) (snd f.pair_activations);
              ])
        findings;
      report (H.locked findings) (List.length findings)
    in
    (match alg with
    | 1 -> hunt (module Asyncolor.Algorithm1.P)
    | 2 -> hunt (module Asyncolor.Algorithm2.P)
    | 3 -> hunt (module Asyncolor.Algorithm3.P)
    | n -> failwith (Printf.sprintf "lockhunt supports algorithms 1-3, not %d" n));
    Table.print table;
    finish_obs obs ~trace_out ~metrics
  in
  Cmd.v (Cmd.info "lockhunt" ~doc)
    Term.(
      const f $ alg_arg $ n_arg $ seed_arg $ idents_arg $ jobs_arg
      $ exec_policy_arg $ kappa_arg $ time_budget_arg $ mem_budget_arg
      $ chaos_arg $ retry_max_arg $ backoff_ms_arg $ trace_out_arg
      $ metrics_arg)

let fuzz_cmd =
  let doc = "randomized fault-injection fuzzing with replayable, shrunk traces" in
  let execs_arg =
    Arg.(
      value
      & opt int 500
      & info [ "execs" ] ~docv:"N" ~doc:"Number of random executions to attempt.")
  in
  let max_n_arg =
    Arg.(
      value
      & opt int 10
      & info [ "max-n" ] ~docv:"N" ~doc:"Largest instance size to generate.")
  in
  let algos_arg =
    Arg.(
      value
      & opt (list string) [ "1"; "2"; "2s"; "3" ]
      & info [ "algos" ] ~docv:"A,A,..."
          ~doc:"Algorithms to draw scenarios from: 1, 2, 2s, 3.")
  in
  let mutant_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutant" ] ~docv:"NAME"
          ~doc:
            "Mutation-test the detectors: fuzz a deliberately broken variant \
             (see $(b,--list-mutants)) and expect a finding.  Exit 0 iff the \
             mutant is caught.")
  in
  let list_mutants_arg =
    Arg.(
      value & flag
      & info [ "list-mutants" ] ~doc:"List the known mutations and exit.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Save every finding to DIR as it is found — tNNNN.trace (raw) and \
             tNNNN.min.trace (shrunk), keyed by exec index.")
  in
  let min_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "min-out" ] ~docv:"PATH"
          ~doc:"Write the first finding's shrunk trace to PATH.")
  in
  let f seed execs max_n algos mutant corpus min_out jobs exec_policy kappa
      time_s mem_mb chaos_spec retry_max backoff_ms list_mutants trace_out
      metrics =
    if list_mutants then
      List.iter
        (fun (i : Fz.Mutation.info) ->
          Printf.printf "%-20s (algorithm %s) %s\n" i.name
            (Fz.Scenario.algo_name i.base) i.describe)
        Fz.Mutation.all
    else begin
      announce_seed seed;
      let algos =
        List.map
          (function
            | "1" -> Fz.Scenario.A1
            | "2" -> Fz.Scenario.A2
            | "2s" -> Fz.Scenario.A2s
            | "3" -> Fz.Scenario.A3
            | a -> failwith (Printf.sprintf "unknown algorithm %S (1, 2, 2s, 3)" a))
          algos
      in
      let budget = make_budget ~time_s ~mem_mb in
      let obs = make_obs ~trace_out ~metrics in
      let policy = make_policy ~policy:exec_policy ~kappa ~jobs in
      let chaos = parse_chaos ~obs chaos_spec in
      (* As for lockhunt: worker-crash injection only. *)
      ignore (make_retry ~chaos ~retry_max ~backoff_ms);
      let t0 = Oclock.monotonic () in
      let report =
        Stop.with_signals (fun () ->
            Fz.Fuzz.campaign ~jobs ?policy ?budget ~stop:Stop.requested
              ?corpus_dir:corpus ?mutation:mutant ~algos ~max_n ~chaos ~obs
              ~seed ~execs ())
      in
      let dt = elapsed_s t0 in
      Diag.printf "%d execs in %.3fs (%.0f execs/sec, jobs=%d)\n"
        report.execs_done dt
        (float_of_int report.execs_done /. Float.max dt 1e-9)
        jobs;
      chaos_stats_line chaos;
      (match budget with
      | Some b when Budget.exceeded b ->
          Diag.printf "budget exceeded (%s): truncated campaign\n"
            (Budget.describe b)
      | _ -> ());
      List.iter
        (fun (fd : Fz.Fuzz.finding) ->
          Printf.printf
            "finding: exec=%d invariant=%s shrink: %d->%d steps, n=%d (%d \
             shrink execs)\n"
            fd.exec fd.invariant
            (Fz.Scenario.steps fd.trace.scenario)
            (Fz.Scenario.steps fd.shrunk.scenario)
            (Fz.Scenario.graph_n fd.shrunk.scenario.graph)
            fd.shrink_stats.execs;
          Format.printf "%a@." Fz.Trace.pp fd.shrunk)
        report.findings;
      (match (min_out, report.findings) with
      | Some path, fd :: _ ->
          Fz.Trace.save ~path fd.shrunk;
          Diag.printf "shrunk trace written to %s\n" path
      | Some _, [] -> ()
      | None, _ -> ());
      Printf.printf "fuzz: seed=%d execs=%d/%d findings=%d complete=%b\n"
        report.seed report.execs_done report.execs_requested
        (List.length report.findings)
        report.complete;
      (* Before the verdict: findings exit 1 below, and a trace of the
         failing campaign is precisely the artifact worth keeping. *)
      finish_obs obs ~trace_out ~metrics;
      (* In mutation mode a finding is the expected outcome (the detectors
         caught the planted bug); in normal mode it is a real violation. *)
      match (mutant, report.findings) with
      | Some _, [] ->
          prerr_endline "mutant escaped: no invariant violation found";
          exit 1
      | Some _, _ :: _ -> ()
      | None, _ :: _ -> exit 1
      | None, [] -> ()
    end
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const f $ seed_arg $ execs_arg $ max_n_arg $ algos_arg $ mutant_arg
      $ corpus_arg $ min_out_arg $ jobs_arg $ exec_policy_arg $ kappa_arg
      $ time_budget_arg $ mem_budget_arg $ chaos_arg $ retry_max_arg
      $ backoff_ms_arg $ list_mutants_arg $ trace_out_arg $ metrics_arg)

let churn_cmd =
  let doc = "long-lived churn sessions: crash-recovery with self-healing re-coloring" in
  let algo_arg =
    Arg.(
      value
      & opt string "2"
      & info [ "algo" ] ~docv:"A"
          ~doc:
            "Algorithm under churn: $(b,2) or $(b,3) — the wait-free cycle \
             algorithms, whose activation bounds the recovery invariant \
             checks against.")
  in
  let churn_n_arg =
    Arg.(
      value & opt int 62
      & info [ "n" ] ~docv:"N"
          ~doc:
            "Ring size, 3-62: every activation goes through the packed \
             one-word activation masks.")
  in
  let horizon_arg =
    Arg.(
      value & opt int 250_000
      & info [ "horizon" ] ~docv:"N" ~doc:"Target activations per session.")
  in
  let crash_rate_arg =
    Arg.(
      value & opt float 0.3
      & info [ "crash-rate" ] ~docv:"P"
          ~doc:"Per-step probability that a crash event fires during a churn window.")
  in
  let recover_rate_arg =
    Arg.(
      value & opt float 0.5
      & info [ "recover-rate" ] ~docv:"P"
          ~doc:"Per-step recovery probability of each crashed node.")
  in
  let burst_arg =
    Arg.(
      value & opt int 1
      & info [ "burst" ] ~docv:"K" ~doc:"Nodes taken down by one crash event.")
  in
  let sessions_arg =
    Arg.(
      value & opt int 4
      & info [ "sessions" ] ~docv:"N" ~doc:"Independent sessions in the campaign.")
  in
  let mutant_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutant" ] ~docv:"NAME"
          ~doc:
            "Mutation-test the recovery detectors: plant a recovery bug \
             (see $(b,--list-mutants)) and expect a violation.  Exit 0 iff \
             the bug is caught.")
  in
  let list_mutants_arg =
    Arg.(
      value & flag
      & info [ "list-mutants" ]
          ~doc:"List the planted recovery bugs and their pinned detectors, then exit.")
  in
  let save_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-trace" ] ~docv:"PATH"
          ~doc:
            "Persist the campaign's violations as a replayable churn trace \
             (crash-safe checkpoint container).")
  in
  let replay_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"PATH"
          ~doc:
            "Replay a churn trace: re-run the recorded campaign and check \
             the recorded violations reproduce byte-for-byte.  Exit 0 on \
             reproduction, 1 on mismatch, 2 on a corrupt file.")
  in
  let f algo n horizon crash_rate recover_rate burst sessions seed jobs
      exec_policy kappa mutant list_mutants save_trace replay trace_out metrics
      =
    if list_mutants then
      List.iter
        (fun b ->
          Printf.printf "%-18s caught by %s\n"
            (Churn.Session.bug_name b)
            (Churn.Session.bug_detector b))
        Churn.Session.bugs
    else begin
      let obs = make_obs ~trace_out ~metrics in
      let policy = make_policy ~policy:exec_policy ~kappa ~jobs in
      match replay with
      | Some path -> (
          match Churn.Trace.load path with
          | exception Checkpoint.Corrupt msg ->
              Printf.eprintf "corrupt churn trace %s: %s\n" path msg;
              exit 2
          | t ->
              Format.printf "%a@." Churn.Trace.pp t;
              let _report, reproduced =
                Churn.Trace.replay ~jobs ?policy ~obs t
              in
              Printf.printf "reproduced=%b\n" reproduced;
              finish_obs obs ~trace_out ~metrics;
              if not reproduced then exit 1)
      | None ->
          announce_seed seed;
          let algo =
            match Churn.Session.algo_of_string algo with
            | Some a -> a
            | None ->
                failwith
                  (Printf.sprintf "churn supports algorithms 2 and 3, not %S"
                     algo)
          in
          let bug =
            Option.map
              (fun name ->
                match Churn.Session.bug_of_string name with
                | Some b -> b
                | None ->
                    failwith
                      (Printf.sprintf
                         "unknown recovery bug %S (see --list-mutants)" name))
              mutant
          in
          let cfg =
            {
              Churn.Session.algo;
              n;
              horizon;
              crash_rate;
              recover_rate;
              burst;
              mutant = bug;
            }
          in
          let t0 = Oclock.monotonic () in
          let report : Churn.Session.report =
            Stop.with_signals (fun () ->
                Churn.Session.campaign ~jobs ?policy ~obs cfg ~seed ~sessions
                  ())
          in
          let dt = elapsed_s t0 in
          Diag.printf "%d activations in %.3fs (%.0f activations/sec, jobs=%d)\n"
            report.total_activations dt
            (float_of_int report.total_activations /. Float.max dt 1e-9)
            jobs;
          Format.printf "%a@." Churn.Session.pp_report report;
          (match save_trace with
          | None -> ()
          | Some path ->
              Churn.Trace.save ~path (Churn.Trace.of_report report);
              Diag.printf "churn trace written to %s\n" path);
          finish_obs obs ~trace_out ~metrics;
          (* As for fuzz --mutant: a violation is the expected outcome when
             a recovery bug is planted, a failure otherwise. *)
          match (bug, report.violations) with
          | Some _, [] ->
              prerr_endline "recovery bug escaped: no detector fired";
              exit 1
          | Some _, _ :: _ -> ()
          | None, _ :: _ -> exit 1
          | None, [] -> ()
    end
  in
  Cmd.v (Cmd.info "churn" ~doc)
    Term.(
      const f $ algo_arg $ churn_n_arg $ horizon_arg $ crash_rate_arg
      $ recover_rate_arg $ burst_arg $ sessions_arg $ seed_arg $ jobs_arg
      $ exec_policy_arg $ kappa_arg $ mutant_arg $ list_mutants_arg
      $ save_trace_arg $ replay_trace_arg $ trace_out_arg $ metrics_arg)

let replay_cmd =
  let doc = "replay an explicit schedule (e.g. a lasso printed by check) or a fuzz trace" in
  let sched_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"SCHED" ~doc:"Schedule, e.g. \"{0} {1} {1,2}\".")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PATH"
          ~doc:
            "Replay a trace recorded by $(b,fuzz).  The stored scenario is \
             re-executed byte-identically; exit 0 iff the recorded violations \
             reproduce, 1 on mismatch, 2 on a corrupt file.")
  in
  let f alg n seed idents_kind sched trace verbose =
    match (trace, sched) with
    | Some path, None -> (
        match Fz.Trace.load path with
        | exception Checkpoint.Corrupt msg ->
            Printf.eprintf "corrupt trace %s: %s\n" path msg;
            exit 2
        | t ->
            Format.printf "%a@." Fz.Trace.pp t;
            let outcome, reproduced = Fz.Fuzz.replay t in
            List.iter
              (fun (v : Fz.Exec.violation) ->
                Printf.printf "replayed violation[%s]: %s\n" v.invariant v.message)
              outcome.violations;
            Printf.printf "reproduced=%b\n" reproduced;
            if not reproduced then exit 1)
    | None, Some sched ->
        let graph = Builders.cycle n in
        let idents = make_idents ~kind:idents_kind ~seed n in
        let adv = Adversary.finite (Adversary.parse sched) in
        run_algorithm ~alg ~graph ~idents ~adv ~max_steps:1_000_000 ~verbose
    | _ -> failwith "replay needs exactly one of --schedule and --trace"
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(
      const f $ alg_arg $ n_arg $ seed_arg $ idents_arg $ sched_arg $ trace_arg
      $ verbose_arg)

let tracecheck_cmd =
  let doc = "validate a Chrome trace_event file written by --trace-out" in
  let path_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PATH" ~doc:"Trace file to validate.")
  in
  let f path =
    (* Same spirit as Checkpoint's digest check, for an artifact whose
       reader (Perfetto) we do not control: reject truncation or
       corruption with a one-line reason.  Exit 0 valid, 2 invalid. *)
    match Trace_export.validate path with
    | Ok events -> Printf.printf "trace ok: %d events\n" events
    | Error msg ->
        Printf.eprintf "invalid trace %s: %s\n" path msg;
        exit 2
  in
  Cmd.v (Cmd.info "tracecheck" ~doc) Term.(const f $ path_arg)

let experiments_cmd =
  let doc = "run the reproduction experiments (E1-E13)" in
  let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sizes.") in
  let only_arg =
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"ID" ~doc:"Run one experiment.")
  in
  let f quick only jobs =
    match only with
    | None ->
        let outcomes = Asyncolor_experiments.Registry.run_all ~quick ~jobs () in
        if not (Asyncolor_experiments.Outcome.all_ok outcomes) then exit 1
    | Some id -> (
        match Asyncolor_experiments.Registry.find id with
        | None ->
            Printf.eprintf "no experiment %S\n" id;
            exit 2
        | Some e ->
            let outcome = e.run ~quick () in
            Asyncolor_experiments.Outcome.print outcome;
            if not outcome.ok then exit 1)
  in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const f $ quick_arg $ only_arg $ jobs_arg)

let () =
  let doc = "wait-free colouring of the asynchronous cycle (PODC 2022 reproduction)" in
  let info = Cmd.info "asyncolor" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            sweep_cmd;
            check_cmd;
            lockhunt_cmd;
            fuzz_cmd;
            churn_cmd;
            replay_cmd;
            tracecheck_cmd;
            experiments_cmd;
          ]))
