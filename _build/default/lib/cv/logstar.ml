let log_star x =
  if not (Float.is_finite x) then invalid_arg "Logstar.log_star: non-finite";
  let rec loop k x = if x <= 1.0 then k else loop (k + 1) (Float.log2 x) in
  loop 0 x

let log_star_int n =
  if n < 0 then invalid_arg "Logstar.log_star_int: negative";
  log_star (float_of_int n)

let tower k =
  if k < 0 then invalid_arg "Logstar.tower: negative height";
  let rec loop k acc =
    if k = 0 then acc
    else begin
      if acc >= 63 then invalid_arg "Logstar.tower: overflow";
      loop (k - 1) (1 lsl acc)
    end
  in
  (* tower k = 2^(tower (k-1)); build from the top of the tower down. *)
  loop k 1
