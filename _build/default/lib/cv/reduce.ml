let f x y =
  if x < 0 || y < 0 then invalid_arg "Reduce.f: negative input";
  let cut = min (Bits.length x) (Bits.length y) in
  let i = match Bits.first_differing_bit x y with
    | Some k -> min cut k
    | None -> cut
  in
  (2 * i) + Bits.bit x i

let shrink_bound x = (2 * Bits.length x) + 1

let iterate_f_chain chain =
  let rec loop = function
    | [] -> []
    | [ last ] -> [ last ]
    | x :: (y :: _ as rest) -> f x y :: loop rest
  in
  loop chain

let iterations_to_small ?(limit = 10) x =
  if x < 0 then invalid_arg "Reduce.iterations_to_small: negative input";
  let envelope z = (2 * Bits.length z) + 1 in
  let rec loop count z =
    if z < limit then count
    else begin
      let z' = envelope z in
      if z' >= z then count + 1 (* fixed point reached at/above the limit *)
      else loop (count + 1) z'
    end
  in
  loop 0 x
