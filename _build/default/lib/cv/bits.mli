(** Binary decompositions of naturals, as used by the identifier-reduction
    function of paper §4.1.  For [z = Σ z_k 2^k], [length z = ⌈log2 (z+1)⌉]
    is the paper's [|z|]. *)

val length : int -> int
(** [length z] is [⌈log2 (z + 1)⌉]: the number of significant bits of [z]
    ([length 0 = 0], [length 1 = 1], [length 5 = 3]).
    @raise Invalid_argument on negative input. *)

val bit : int -> int -> int
(** [bit z k] is [z_k ∈ {0, 1}], the [k]-th binary digit of [z].
    @raise Invalid_argument on negative [z] or [k]. *)

val first_differing_bit : int -> int -> int option
(** [first_differing_bit x y] is [Some (min { k | x_k ≠ y_k })], or [None]
    when [x = y]. *)

val to_string : int -> string
(** Binary rendering, most significant bit first ("0" for 0). *)
