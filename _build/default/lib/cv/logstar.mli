(** The iterated logarithm, following the paper's footnote 1:
    [log(0) x = x], [log(k+1) x = log2 (log(k) x)], and [log* x] is the
    smallest [k ≥ 0] such that [log(k) x ≤ 1]. *)

val log_star : float -> int
(** [log_star x].  For [x ≤ 1] this is [0]; [log_star 2. = 1];
    [log_star 16. = 3]; [log_star 65536. = 4].
    @raise Invalid_argument on non-finite input. *)

val log_star_int : int -> int
(** [log_star_int n = log_star (float_of_int n)].
    @raise Invalid_argument on negative input. *)

val tower : int -> int
(** [tower k] is the power tower [2^2^…^2] of height [k] ([tower 0 = 1]);
    the largest [n] with [log_star_int n = k].
    @raise Invalid_argument if the result exceeds [max_int] ([k >= 5]). *)
