lib/cv/reduce.mli:
