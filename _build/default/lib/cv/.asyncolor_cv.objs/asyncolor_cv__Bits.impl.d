lib/cv/bits.ml: String
