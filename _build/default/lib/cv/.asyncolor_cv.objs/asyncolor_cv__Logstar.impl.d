lib/cv/logstar.ml: Float
