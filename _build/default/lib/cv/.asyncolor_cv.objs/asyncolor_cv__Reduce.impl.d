lib/cv/reduce.ml: Bits
