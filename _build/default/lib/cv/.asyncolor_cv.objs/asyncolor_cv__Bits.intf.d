lib/cv/bits.mli:
