lib/cv/logstar.mli:
