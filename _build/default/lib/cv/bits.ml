let check_nat name z = if z < 0 then invalid_arg (name ^ ": negative input")

let length z =
  check_nat "Bits.length" z;
  let rec loop acc z = if z = 0 then acc else loop (acc + 1) (z lsr 1) in
  loop 0 z

let bit z k =
  check_nat "Bits.bit" z;
  check_nat "Bits.bit" k;
  if k >= 62 then 0 else (z lsr k) land 1

let first_differing_bit x y =
  check_nat "Bits.first_differing_bit" x;
  check_nat "Bits.first_differing_bit" y;
  if x = y then None
  else
    let d = x lxor y in
    let rec loop k = if d lsr k land 1 = 1 then k else loop (k + 1) in
    Some (loop 0)

let to_string z =
  check_nat "Bits.to_string" z;
  if z = 0 then "0"
  else begin
    let len = length z in
    String.init len (fun i -> if bit z (len - 1 - i) = 1 then '1' else '0')
  end
