(** The identifier-reduction function of paper §4.1 (Equation (6)), adapted
    from Cole and Vishkin's deterministic coin tossing.

    For naturals [x] and [y],
    [f (x, y) = 2 i + x_i] where [i = min ({|x|, |y|} ∪ { k | x_k ≠ y_k })].

    Key properties (each has a matching property-based test):
    - [f x y <= 2 * Bits.length x + 1], so iterating [f] shrinks
      identifiers to a constant in [O(log* n)] steps (Lemma 4.1);
    - if [x > y >= 10] then [f x y < y] (Lemma 4.2);
    - if [x > y > z] then [f x y <> f y z] (Lemma 4.3) — the reduction
      preserves proper colouring along monotone chains. *)

val f : int -> int -> int
(** [f x y] as above.  @raise Invalid_argument on negative input. *)

val shrink_bound : int -> int
(** [shrink_bound x = 2 * Bits.length x + 1], the a-priori bound on
    [f x y] for any [y]. *)

val iterate_f_chain : int list -> int list
(** [iterate_f_chain [x1; x2; …; xk]] applies one synchronous reduction
    step down a monotone chain: element [i] becomes [f x_i x_{i+1}] and the
    last element is kept.  Used to study convergence outside the
    asynchronous engine. *)

val iterations_to_small : ?limit:int -> int -> int
(** [iterations_to_small x] is the number of iterations of the envelope
    function [F x = 2 ⌈log2 (x + 1)⌉ + 1] needed to bring [x] strictly
    below [limit] (default [10]), as in Lemma 4.1.  Returns [0] if already
    below. *)
