type summary = {
  count : int;
  min : int;
  max : int;
  mean : float;
  stddev : float;
  p50 : int;
  p95 : int;
  p99 : int;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q out of range";
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let summarize_array a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let sum = Array.fold_left ( + ) 0 a in
  let mean = float_of_int sum /. float_of_int n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((float_of_int x -. mean) ** 2.0)) 0.0 a
    /. float_of_int n
  in
  {
    count = n;
    min = sorted.(0);
    max = sorted.(n - 1);
    mean;
    stddev = sqrt var;
    p50 = percentile sorted 0.5;
    p95 = percentile sorted 0.95;
    p99 = percentile sorted 0.99;
  }

let summarize l = summarize_array (Array.of_list l)

let mean l =
  match l with
  | [] -> invalid_arg "Stats.mean: empty"
  | l -> float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)

let pp_summary ppf s =
  Format.fprintf ppf "n=%d min=%d p50=%d p95=%d p99=%d max=%d mean=%.2f sd=%.2f"
    s.count s.min s.p50 s.p95 s.p99 s.max s.mean s.stddev

let linear_fit points =
  let n = List.length points in
  if n < 2 then invalid_arg "Stats.linear_fit: need >= 2 points";
  let fn = float_of_int n in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 points in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 points in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0.0 points in
  let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0.0 points in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x values";
  let a = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let b = (sy -. (a *. sx)) /. fn in
  (a, b)
