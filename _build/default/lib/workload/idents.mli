(** Identifier-assignment workloads.

    The running time of Algorithms 1–2 is governed by the longest monotone
    chain of identifiers around the cycle (Lemma 3.9, Remark 3.10), so the
    choice of identifier workload *is* the benchmark workload.  All
    generators return an array of pairwise-distinct naturals, one per node
    in cycle order. *)

val increasing : int -> int array
(** [0, 1, …, n-1]: one monotone chain spanning the whole cycle — the
    worst case for Algorithms 1 and 2, the showcase for Algorithm 3. *)

val decreasing : int -> int array

val zigzag : int -> int array
(** Alternating low/high ([0, n, 1, n+1, …]): every node is a local
    extremum or adjacent to one — the best case for Algorithms 1–2. *)

val random_permutation : Asyncolor_util.Prng.t -> int -> int array
(** Uniform permutation of [0 .. n-1]. *)

val random_sparse : Asyncolor_util.Prng.t -> n:int -> universe:int -> int array
(** [n] distinct identifiers drawn from [\[0, universe)] — the paper's
    [poly(n)]-sized name space.  @raise Invalid_argument if
    [universe < n]. *)

val bit_adversarial : int -> int array
(** Identifiers engineered so consecutive nodes differ only in a high bit
    (Gray-code-like), slowing the Cole–Vishkin reduction: stresses
    experiment E9. *)

val longest_monotone_run : int array -> int
(** Length (number of edges) of the longest run of consecutive positions
    around the cycle with strictly monotone identifiers; drives the
    Theorem 3.1/3.11 bounds. *)

val is_injective : int array -> bool
