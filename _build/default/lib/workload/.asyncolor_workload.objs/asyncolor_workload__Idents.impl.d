lib/workload/idents.ml: Array Asyncolor_util Fun Int Set
