lib/workload/table.mli:
