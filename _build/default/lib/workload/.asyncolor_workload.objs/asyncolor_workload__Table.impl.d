lib/workload/table.ml: Fun List String
