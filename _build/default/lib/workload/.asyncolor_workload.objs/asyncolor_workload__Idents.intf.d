lib/workload/idents.mli: Asyncolor_util
