(** The DECOUPLED model on the ring (paper §1.4, after [13, 18]).

    DECOUPLED separates computing from communication: the [n] nodes'
    inputs travel over a {e synchronous, reliable} network — after global
    round [r], the (never-lost, buffered) messages at node [p] cover the
    identifiers of every node within distance [r] — while the processes
    themselves are asynchronous and crash-prone.  A process that wakes up
    late still finds all past messages in its buffer.

    This module implements the simulation idea of [18] specialised to ring
    3-colouring: once a process's knowledge ball has radius [K + 3], where
    [K] is a deterministic function of the identifier-universe bound [U]
    (the number of Cole–Vishkin iterations that provably drives any proper
    colouring with values < U below 6), the process locally replays the
    {e same} virtual synchronous execution — [K] coin-tossing rounds plus
    the three colour-reduction rounds — on its window and outputs its own
    colour.  All processes replay the same execution, so outputs are
    globally consistent; crashed processes' identifiers still propagate
    (the network does not crash).

    The punchline, measured by experiment E14: 3 colours in O(log* U)
    global rounds on every [C_n] {e including} [C_3] — while in the
    paper's fully asynchronous state model 5 colours are necessary
    (Property 2.3).  The communication layer's synchrony is exactly what
    separates the models. *)

type t

val create : idents:int array -> universe:int -> t
(** [create ~idents ~universe] sets up the ring; identifiers must be
    pairwise distinct and in [\[0, universe)].
    @raise Invalid_argument otherwise, or if fewer than 3 nodes. *)

val cv_iterations_needed : universe:int -> int
(** [K]: the iteration count every process derives from the universe bound
    alone (so no coordination is needed). *)

val rounds_needed : universe:int -> int
(** [K + 3]: knowledge radius after which any activation outputs. *)

val round : t -> int
(** Global rounds elapsed. *)

val advance : t -> unit
(** One synchronous communication round: every knowledge ball grows by 1. *)

val activate : t -> int -> int option
(** [activate t p] gives process [p] a computing step: returns its colour
    (in [{0,1,2}]) if the knowledge radius suffices, [None] otherwise
    (the process just waits — on the {e network}, not on other
    processes).  Idempotent after success. *)

val outputs : t -> int option array

val run :
  ?horizon:int ->
  Asyncolor_kernel.Adversary.t ->
  t ->
  int option array * int
(** Drive [t]: at each global round, advance the network then activate the
    adversary's chosen set.  Stops when every process has output, the
    adversary ends the schedule (crashes), or [horizon] rounds elapse
    (default [4 * rounds_needed]).  Returns outputs and rounds used. *)

val is_proper_partial : int option array -> bool
(** Cyclically adjacent outputs differ (crashed = unconstrained). *)
