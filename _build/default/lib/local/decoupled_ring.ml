module Bits = Asyncolor_cv.Bits
module Mex = Asyncolor_util.Mex

type t = {
  idents : int array;
  needed : int;  (* rounds_needed for this instance's universe *)
  k : int;  (* CV iterations *)
  mutable round : int;
  outputs : int option array;
}

let cv_iterations_needed ~universe =
  (* B_0 = U-1; after one CV round all colours are <= 2|B|-1; iterate the
     envelope until it reaches the 3-bit fixed point {0..5}. *)
  let rec loop k b = if b <= 5 then k else loop (k + 1) ((2 * Bits.length b) - 1) in
  loop 0 (max 0 (universe - 1))

let rounds_needed ~universe = cv_iterations_needed ~universe + 3

let create ~idents ~universe =
  let n = Array.length idents in
  if n < 3 then invalid_arg "Decoupled_ring.create: need n >= 3";
  Array.iter
    (fun x ->
      if x < 0 || x >= universe then
        invalid_arg "Decoupled_ring.create: identifier outside the universe")
    idents;
  let module S = Set.Make (Int) in
  if S.cardinal (Array.fold_left (fun s x -> S.add x s) S.empty idents) <> n then
    invalid_arg "Decoupled_ring.create: identifiers must be distinct";
  {
    idents = Array.copy idents;
    needed = rounds_needed ~universe;
    k = cv_iterations_needed ~universe;
    round = 0;
    outputs = Array.make n None;
  }

let round t = t.round
let advance t = t.round <- t.round + 1
let outputs t = Array.copy t.outputs

(* One local replay of the virtual synchronous execution on the window of
   radius R = needed around [p]; valid because R >= K + 3. *)
let compute t p =
  let n = Array.length t.idents in
  let r = t.needed in
  let w = (2 * r) + 1 in
  let window = Array.init w (fun i -> t.idents.((p - r + i + (w * n)) mod n)) in
  let colors = Array.copy window in
  (* K coin-tossing rounds; after round j, entries 0 .. w-1-j are valid *)
  for j = 1 to t.k do
    for i = 0 to w - 1 - j do
      match Bits.first_differing_bit colors.(i) colors.(i + 1) with
      | Some b -> colors.(i) <- (2 * b) + Bits.bit colors.(i) b
      | None ->
          (* window entries i and i+1 are cyclically adjacent ring nodes,
             which hold distinct identifiers and stay properly coloured
             under CV — equal adjacent colours are impossible *)
          assert false
    done
  done;
  (* three reduction rounds: drop colour classes 5, 4, 3; after step s,
     entries s .. w-1-K-s are valid *)
  List.iteri
    (fun step_idx cls ->
      let s = step_idx + 1 in
      let fresh = Array.copy colors in
      for i = s to w - 1 - t.k - s do
        if colors.(i) = cls then
          fresh.(i) <- Mex.of_list [ colors.(i - 1); colors.(i + 1) ]
      done;
      Array.blit fresh 0 colors 0 w)
    [ 5; 4; 3 ];
  colors.(r)

let activate t p =
  match t.outputs.(p) with
  | Some _ as o -> o
  | None ->
      if t.round >= t.needed then begin
        let c = compute t p in
        t.outputs.(p) <- Some c;
        t.outputs.(p)
      end
      else None

let is_proper_partial outs =
  let n = Array.length outs in
  let ok = ref true in
  for i = 0 to n - 1 do
    match (outs.(i), outs.((i + 1) mod n)) with
    | Some a, Some b when a = b -> ok := false
    | _ -> ()
  done;
  !ok

let run ?horizon (adv : Asyncolor_kernel.Adversary.t) t =
  let n = Array.length t.idents in
  let horizon = match horizon with Some h -> h | None -> 4 * t.needed in
  let unfinished () =
    List.filter (fun p -> t.outputs.(p) = None) (List.init n Fun.id)
  in
  let rec loop () =
    if unfinished () = [] || t.round >= horizon then (outputs t, t.round)
    else begin
      advance t;
      match adv.next ~time:t.round ~unfinished:(unfinished ()) with
      | None -> (outputs t, t.round)
      | Some set ->
          List.iter (fun p -> ignore (activate t p)) set;
          loop ()
    end
  in
  loop ()
