(** Linial's O(Δ²)-colouring of general graphs in the synchronous LOCAL
    model (Linial 1992 [26]) — the failure-free baseline for the paper's
    Algorithm 4 (Appendix A), cited in the conclusion: "In the synchronous
    setting, there is an algorithm for O(Δ²)-coloring performing in
    O(log* n) rounds in any graph."

    One reduction round maps a proper [m]-colouring to a proper
    [q²]-colouring: pick the smallest prime [q] with [q > d·Δ] where
    [d + 1 = ⌈log_q m⌉]; view each colour [c < m ≤ q^(d+1)] as a
    polynomial [p_c] of degree ≤ [d] over [F_q] (its base-[q] digits).
    Distinct polynomials agree on at most [d] points, so among the
    [q > d·Δ] points some [x] has [p_v(x) ≠ p_u(x)] for every neighbour
    [u]; node [v] re-colours to [x·q + p_v(x) < q²].  Iterating stalls
    within O(log* m) rounds at a palette of at most [p²] for [p] the
    smallest prime above [2Δ] — i.e. O(Δ²).

    A further {e slow} phase ({!reduce_to_delta_plus_one}) removes one
    colour class per round down to the greedy optimum [Δ + 1] — possible
    in LOCAL, while in the paper's asynchronous model fewer than [2Δ+1]
    colours are impossible whenever [Δ+1] is a prime power (renaming
    bound, paper §5).  Experiment E15 measures this contrast. *)

type result = {
  colors : int array;  (** proper colouring *)
  rounds : int;  (** synchronous rounds used *)
  final_palette : int;  (** all colours are in [\[0, final_palette)] *)
}

val smallest_prime_above : int -> int
(** [smallest_prime_above k] is the least prime strictly greater than [k].
    @raise Invalid_argument on negative input. *)

val palette_bound : max_degree:int -> int
(** Conservative bound on the stall palette of {!color}: [p²] for [p] the
    smallest prime above [2·max 1 Δ]. *)

val reduce_step : Asyncolor_topology.Graph.t -> m:int -> int array -> int array * int
(** One polynomial reduction round: takes a proper colouring with values in
    [\[0, m)], returns the new colouring and its palette size [q²].
    @raise Invalid_argument if the input is not proper or out of range. *)

val color : Asyncolor_topology.Graph.t -> idents:int array -> result
(** Iterate {!reduce_step} from the identifiers until the palette stops
    shrinking.  [result.final_palette <= palette_bound].
    @raise Invalid_argument if identifiers are not pairwise distinct
    non-negative. *)

val reduce_to_delta_plus_one : Asyncolor_topology.Graph.t -> m:int -> int array -> result
(** The slow phase: one round per removed colour class (the class is an
    independent set, so its nodes safely re-colour to the mex of their
    neighbourhoods, which is ≤ Δ).  Output palette is [Δ + 1]; rounds =
    [max 0 (m - Δ - 1)]. *)

val color_delta_plus_one : Asyncolor_topology.Graph.t -> idents:int array -> result
(** Full pipeline: {!color} then {!reduce_to_delta_plus_one}; the classic
    [Δ+1]-colouring in [O(log* n) + O(Δ²)] rounds. *)

val is_proper : Asyncolor_topology.Graph.t -> int array -> bool
