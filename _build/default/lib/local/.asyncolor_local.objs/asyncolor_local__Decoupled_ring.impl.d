lib/local/decoupled_ring.ml: Array Asyncolor_cv Asyncolor_kernel Asyncolor_util Fun Int List Set
