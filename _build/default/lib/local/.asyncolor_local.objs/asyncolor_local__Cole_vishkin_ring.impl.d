lib/local/cole_vishkin_ring.ml: Array Asyncolor_cv Asyncolor_util
