lib/local/decoupled_ring.mli: Asyncolor_kernel
