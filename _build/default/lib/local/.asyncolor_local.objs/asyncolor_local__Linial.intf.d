lib/local/linial.mli: Asyncolor_topology
