lib/local/cole_vishkin_ring.mli:
