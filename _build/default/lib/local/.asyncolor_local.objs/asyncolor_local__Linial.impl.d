lib/local/linial.ml: Array Asyncolor_topology Asyncolor_util Int List Set
