module Graph = Asyncolor_topology.Graph

type result = { colors : int array; rounds : int; final_palette : int }

let is_prime k =
  if k < 2 then false
  else begin
    let rec loop d = d * d > k || (k mod d <> 0 && loop (d + 1)) in
    loop 2
  end

let smallest_prime_above k =
  if k < 0 then invalid_arg "Linial.smallest_prime_above: negative input";
  let rec loop c = if is_prime c then c else loop (c + 1) in
  loop (k + 1)

let palette_bound ~max_degree =
  let q = smallest_prime_above (2 * max 1 max_degree) in
  q * q

let is_proper g colors =
  Graph.fold_edges (fun u v acc -> acc && colors.(u) <> colors.(v)) g true

(* digits of c in base q, least significant first, padded to d+1 entries *)
let digits c ~q ~d =
  let rec loop c k acc = if k > d then List.rev acc else loop (c / q) (k + 1) ((c mod q) :: acc) in
  Array.of_list (loop c 0 [])

let eval_poly coeffs x ~q =
  Array.fold_right (fun a acc -> ((acc * x) + a) mod q) coeffs 0

(* degree bound d and field size q for palette m and max degree delta:
   smallest prime q with q^(d+1) >= m and q > d * delta *)
let parameters ~m ~delta =
  let rec try_q q =
    let q = smallest_prime_above (q - 1) in
    (* d+1 = number of base-q digits of m-1 *)
    let rec digit_count v acc = if v = 0 then max 1 acc else digit_count (v / q) (acc + 1) in
    let d = digit_count (max 0 (m - 1)) 0 - 1 in
    if q > d * delta then (q, d) else try_q (q + 1)
  in
  try_q 2

let reduce_step g ~m colors =
  let n = Graph.n g in
  if Array.length colors <> n then invalid_arg "Linial.reduce_step: size mismatch";
  Array.iter
    (fun c -> if c < 0 || c >= m then invalid_arg "Linial.reduce_step: colour out of range")
    colors;
  if not (is_proper g colors) then invalid_arg "Linial.reduce_step: input not proper";
  let delta = max 1 (Graph.max_degree g) in
  let q, d = parameters ~m ~delta in
  let polys = Array.map (fun c -> digits c ~q ~d) colors in
  let fresh =
    Array.init n (fun v ->
        let pv = polys.(v) in
        let nbrs = Graph.neighbours g v in
        let rec find x =
          if x >= q then assert false (* q > d*delta guarantees a good x *)
          else begin
            let yv = eval_poly pv x ~q in
            let clash =
              Array.exists (fun u -> eval_poly polys.(u) x ~q = yv) nbrs
            in
            if clash then find (x + 1) else (x * q) + yv
          end
        in
        find 0)
  in
  (fresh, q * q)

let color g ~idents =
  let n = Graph.n g in
  if Array.length idents <> n then invalid_arg "Linial.color: size mismatch";
  Array.iter (fun x -> if x < 0 then invalid_arg "Linial.color: negative identifier") idents;
  let module S = Set.Make (Int) in
  if S.cardinal (Array.fold_left (fun s x -> S.add x s) S.empty idents) <> n then
    invalid_arg "Linial.color: identifiers must be distinct";
  let m0 = 1 + Array.fold_left max 0 idents in
  let rec loop colors m rounds =
    let fresh, m' = reduce_step g ~m colors in
    if m' >= m then { colors; rounds; final_palette = m }
    else loop fresh m' (rounds + 1)
  in
  if n = 0 then { colors = [||]; rounds = 0; final_palette = 1 }
  else loop (Array.copy idents) m0 0

let reduce_to_delta_plus_one g ~m colors =
  if not (is_proper g colors) then
    invalid_arg "Linial.reduce_to_delta_plus_one: input not proper";
  let delta = Graph.max_degree g in
  let target = delta + 1 in
  let colors = Array.copy colors in
  let rounds = ref 0 in
  for cls = m - 1 downto target do
    (* every node knows the global schedule of classes, so each class costs
       one synchronous round whether or not it is inhabited *)
    incr rounds;
    let fresh = Array.copy colors in
    Array.iteri
      (fun v c ->
        if c = cls then
          fresh.(v) <-
            Asyncolor_util.Mex.of_list
              (Array.to_list (Array.map (fun u -> colors.(u)) (Graph.neighbours g v))))
      colors;
    Array.blit fresh 0 colors 0 (Array.length colors)
  done;
  { colors; rounds = !rounds; final_palette = target }

let color_delta_plus_one g ~idents =
  let stalled = color g ~idents in
  let slow = reduce_to_delta_plus_one g ~m:stalled.final_palette stalled.colors in
  { slow with rounds = stalled.rounds + slow.rounds }
