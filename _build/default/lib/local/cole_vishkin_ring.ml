module Bits = Asyncolor_cv.Bits
module Logstar = Asyncolor_cv.Logstar
module Mex = Asyncolor_util.Mex

let is_proper_ring colors =
  let n = Array.length colors in
  n > 0
  &&
  let ok = ref true in
  for i = 0 to n - 1 do
    if colors.(i) = colors.((i + 1) mod n) then ok := false
  done;
  !ok

let cv_step colors =
  let n = Array.length colors in
  Array.init n (fun v ->
      let c = colors.(v) and succ = colors.((v + 1) mod n) in
      if c < 0 || succ < 0 then invalid_arg "Cole_vishkin_ring.cv_step: negative colour";
      match Bits.first_differing_bit c succ with
      | None -> invalid_arg "Cole_vishkin_ring.cv_step: not a proper colouring"
      | Some i -> (2 * i) + Bits.bit c i)

let six_color colors =
  let rec loop colors rounds =
    if Array.for_all (fun c -> c <= 5) colors then (colors, rounds)
    else loop (cv_step colors) (rounds + 1)
  in
  loop (Array.copy colors) 0

(* One reduction round: the (independent) class of colour [k] re-colours
   with the mex of the two neighbours, which is at most 2. *)
let drop_class k colors =
  let n = Array.length colors in
  Array.init n (fun v ->
      if colors.(v) = k then
        Mex.of_list [ colors.((v + n - 1) mod n); colors.((v + 1) mod n) ]
      else colors.(v))

type result = { colors : int array; rounds : int; cv_iterations : int }

let three_color idents =
  if Array.length idents < 3 then
    invalid_arg "Cole_vishkin_ring.three_color: need n >= 3";
  if not (is_proper_ring idents) then
    invalid_arg "Cole_vishkin_ring.three_color: identifiers must properly colour the ring";
  let colors, cv_iterations = six_color idents in
  let colors = drop_class 5 colors in
  let colors = drop_class 4 colors in
  let colors = drop_class 3 colors in
  { colors; rounds = cv_iterations + 3; cv_iterations }

let rounds_upper_bound n = Logstar.log_star_int n + 10
