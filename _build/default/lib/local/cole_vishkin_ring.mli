(** Synchronous Cole–Vishkin 3-colouring of the oriented ring — the
    failure-free LOCAL-model baseline (paper §1.1 and Property 2.2).

    Nodes [0 … n-1] form a directed ring ([i]'s successor is [i+1 mod n]).
    Starting from their unique identifiers as colours, every node
    simultaneously applies the deterministic coin-tossing step
    [c_v ← 2 i + bit(c_v, i)] with [i] the first bit where [c_v] and the
    successor's colour differ.  The colour space collapses to [{0,…,5}] in
    [log* n + O(1)] rounds; three further rounds eliminate colours 5, 4
    and 3 (a colour class is an independent set, so its nodes can
    simultaneously re-colour with the mex of their two neighbours).

    This gives the [Θ(log* n)] synchronous yardstick against which the
    asynchronous Algorithm 3 is measured (experiment E11).  The textbook
    variant achieves [½ log* n + O(1)] by digesting two bits per round;
    we implement the plain one-bit step — same asymptotics, constant
    factor ≈ 2, recorded as such in EXPERIMENTS.md. *)

type result = {
  colors : int array;  (** final colours, all in [{0, 1, 2}] *)
  rounds : int;  (** total synchronous rounds ([cv_iterations + 3]) *)
  cv_iterations : int;  (** rounds of the coin-tossing phase *)
}

val cv_step : int array -> int array
(** One synchronous coin-tossing round.  Input must be a proper colouring
    of the ring.  @raise Invalid_argument if two adjacent entries are
    equal or any entry is negative. *)

val six_color : int array -> int array * int
(** Iterate {!cv_step} until all colours are at most 5; returns the
    colouring and the number of rounds. *)

val three_color : int array -> result
(** Full pipeline: coin tossing then the three reduction rounds.
    @raise Invalid_argument if the input (identifiers) is not a proper
    colouring of the ring or has fewer than 3 entries. *)

val is_proper_ring : int array -> bool
(** No two cyclically-adjacent entries equal. *)

val rounds_upper_bound : int -> int
(** Generous a-priori bound [log* n + 10] on [cv_iterations] used by the
    tests. *)
