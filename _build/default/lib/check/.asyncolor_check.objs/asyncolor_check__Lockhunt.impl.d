lib/check/lockhunt.ml: Array Asyncolor_kernel Asyncolor_topology List
