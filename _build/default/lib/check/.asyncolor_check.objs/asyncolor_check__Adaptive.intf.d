lib/check/adaptive.mli: Asyncolor_kernel Asyncolor_topology
