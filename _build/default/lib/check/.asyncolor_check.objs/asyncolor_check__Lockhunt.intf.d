lib/check/lockhunt.mli: Asyncolor_kernel Asyncolor_topology
