lib/check/explorer.ml: Array Asyncolor_kernel Asyncolor_topology Format Hashtbl List Map Printf Queue
