lib/check/explorer.mli: Asyncolor_kernel Asyncolor_topology Format
