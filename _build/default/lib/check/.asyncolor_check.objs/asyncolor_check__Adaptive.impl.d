lib/check/adaptive.ml: Asyncolor_kernel Asyncolor_topology List Option Printf
