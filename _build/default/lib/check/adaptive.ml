module Graph = Asyncolor_topology.Graph
module Adversary = Asyncolor_kernel.Adversary
module Status = Asyncolor_kernel.Status

module Make (P : Asyncolor_kernel.Protocol.S) = struct
  module E = Asyncolor_kernel.Engine.Make (P)

  let returned_count scratch =
    let n = E.n scratch in
    let c = ref 0 in
    for p = 0 to n - 1 do
      if Status.is_returned (E.status scratch p) then incr c
    done;
    !c

  let adversary ?(mode = `Singletons) graph ~idents engine =
    let scratch = E.create graph ~idents in
    let candidates unfinished =
      match mode with
      | `Singletons -> List.map (fun p -> [ p ]) unfinished
      | `All_subsets ->
          let singles = List.map (fun p -> [ p ]) unfinished in
          let pairs =
            Graph.fold_edges
              (fun u v acc ->
                if List.mem u unfinished && List.mem v unfinished then
                  [ u; v ] :: acc
                else acc)
              graph []
          in
          (unfinished :: pairs) @ singles
    in
    Adversary.make ~name:(Printf.sprintf "adaptive-greedy(%s)" P.name)
      (fun ~time:_ ~unfinished ->
        match unfinished with
        | [] -> None
        | _ ->
            let base = E.snapshot engine in
            let before = List.length (E.config_unfinished base) in
            (* score = processes returning if this set is played; pick the
               minimum, tie-break on larger sets (more wasted work) *)
            let best = ref None in
            List.iter
              (fun set ->
                E.restore scratch base;
                E.activate scratch set;
                let score = before - List.length (E.unfinished scratch) in
                ignore (returned_count scratch);
                let better =
                  match !best with
                  | None -> true
                  | Some (s, l, _) ->
                      score < s || (score = s && List.length set > l)
                in
                if better then best := Some (score, List.length set, set))
              (candidates unfinished);
            Option.map (fun (_, _, set) -> set) !best)

  let worst_rounds ?mode ?(max_steps = 10_000) graph ~idents =
    let engine = E.create graph ~idents in
    let adv = adversary ?mode graph ~idents engine in
    E.run ~max_steps engine adv
end
