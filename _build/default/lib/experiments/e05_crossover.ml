(** E5 — the §4 headline: on monotone identifier chains Algorithm 2 pays
    Θ(n) rounds while Algorithm 3's identifier reduction collapses the
    chain in O(log* n), so Algorithm 3 overtakes Algorithm 2 almost
    immediately and the gap grows without bound.  This is the paper's
    "speedup" figure: same workload, same schedules, two algorithms. *)

module Table = Asyncolor_workload.Table
module Idents = Asyncolor_workload.Idents
module Builders = Asyncolor_topology.Builders
module Color = Asyncolor.Color
module Sweep2 = Harness.Sweep (Asyncolor.Algorithm2.P)
module Sweep3 = Harness.Sweep (Asyncolor.Algorithm3.P)

let sizes ~quick =
  if quick then [ 4; 8; 16; 32 ] else [ 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]

let run ?(quick = false) ?(seed = 46) () =
  let table =
    Table.create ~headers:[ "n"; "alg2 rounds"; "alg3 rounds"; "speedup" ]
  in
  let ok = ref true in
  let crossover = ref None in
  List.iter
    (fun n ->
      let graph = Builders.cycle n in
      let idents = Idents.increasing n in
      let suite () = Harness.adversary_suite ~seed ~n in
      let s2 =
        Sweep2.run ~equal:Int.equal ~in_palette:Color.in_five ~graph ~idents (suite ())
      in
      let s3 =
        Sweep3.run ~equal:Int.equal ~in_palette:Color.in_five ~graph ~idents (suite ())
      in
      ok :=
        !ok && s2.all_proper && s3.all_proper && (not s2.livelocked)
        && not s3.livelocked;
      if s3.worst_rounds < s2.worst_rounds && !crossover = None then
        crossover := Some n;
      Table.add_row table
        [
          string_of_int n;
          string_of_int s2.worst_rounds;
          string_of_int s3.worst_rounds;
          Printf.sprintf "%.1fx"
            (float_of_int s2.worst_rounds /. float_of_int (max 1 s3.worst_rounds));
        ])
    (sizes ~quick);
  (match !crossover with Some n when n <= 32 -> () | _ -> ok := false);
  {
    Outcome.id = "E5";
    title = "Crossover: Algorithm 3 vs Algorithm 2 on monotone chains";
    claim = "§4: identifier reduction turns Θ(n) into O(log* n)";
    tables = [ ("worst rounds, increasing identifiers", table) ];
    ok = !ok;
    notes =
      [
        (match !crossover with
        | Some n -> Printf.sprintf "Algorithm 3 strictly faster from n = %d on" n
        | None -> "no crossover observed (unexpected)");
      ];
  }
