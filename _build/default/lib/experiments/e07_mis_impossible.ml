(** E7 — Property 2.1: MIS cannot be solved wait-free on the asynchronous
    cycle.  An impossibility cannot be "run", so we exhibit its two horns
    on concrete protocols and execute the paper's reduction:

    - {e Greedy} MIS is wait-free (exhaustively: acyclic configuration
      graph) but the checker finds schedules violating the MIS conditions;
    - {e Cautious} MIS satisfies the MIS conditions at every reachable
      configuration but is not wait-free (the checker returns a livelock
      lasso — a crashed neighbour blocks it forever);
    - the MIS→SSB simulation of Property 2.1 runs both protocols inside
      the 3-process shared-memory model and reproduces exactly the cycle
      executions, transporting greedy's violation into SSB-land. *)

module Table = Asyncolor_workload.Table
module Builders = Asyncolor_topology.Builders
module Adversary = Asyncolor_kernel.Adversary
module Mis = Asyncolor_shm.Mis
module Ssb = Asyncolor_shm.Ssb
module ExpG = Asyncolor_check.Explorer.Make (Mis.Greedy.P)
module ExpC = Asyncolor_check.Explorer.Make (Mis.Cautious.P)
module RedG = Asyncolor_shm.Reduction.Make (Mis.Greedy.P)

let pp_sched s =
  String.concat " "
    (List.map (fun l -> "{" ^ String.concat "," (List.map string_of_int l) ^ "}") s)

let run ?quick:(_ = false) ?seed:(_ = 48) () =
  let ok = ref true in
  let table =
    Table.create ~headers:[ "protocol"; "wait-free"; "MIS-correct"; "witness" ]
  in
  let sizes = [ 3; 4; 5 ] in
  List.iter
    (fun n ->
      let graph = Builders.cycle n in
      let idents = Array.init n Fun.id in
      let check_mis outs =
        if Mis.valid graph outs then None else Some "MIS conditions violated"
      in
      (* Greedy: wait-free, incorrect. *)
      let rg = ExpG.explore graph ~idents ~check_outputs:check_mis in
      ok := !ok && rg.complete && rg.wait_free && rg.safety <> [];
      let witness =
        match rg.safety with v :: _ -> pp_sched v.schedule | [] -> "-"
      in
      Table.add_row table
        [
          Printf.sprintf "greedy C%d" n;
          string_of_bool rg.wait_free;
          string_of_bool (rg.safety = []);
          witness;
        ];
      (* Cautious: correct, not wait-free. *)
      let rc = ExpC.explore graph ~idents ~check_outputs:check_mis in
      ok := !ok && rc.complete && (not rc.wait_free) && rc.safety = [];
      let witness =
        match rc.livelock with Some v -> pp_sched v.schedule | None -> "-"
      in
      Table.add_row table
        [
          Printf.sprintf "cautious C%d" n;
          string_of_bool rc.wait_free;
          string_of_bool (rc.safety = []);
          witness;
        ])
    sizes;
  (* Execute the reduction: shared-memory processes simulating greedy MIS
     on C3 under the identifier-order sequential schedule — the schedule
     that breaks greedy. *)
  let red_table =
    Table.create ~headers:[ "schedule"; "SSB outputs"; "SSB valid"; "MIS valid" ]
  in
  List.iter
    (fun (sname, sched) ->
      let r = RedG.run ~n:3 (Adversary.finite sched) in
      let as_bool = Array.map (Option.map (fun b -> b = 1)) r.outputs in
      let mis_ok = Mis.valid (Builders.cycle 3) as_bool in
      Table.add_row red_table
        [
          sname;
          Format.asprintf "%a" Ssb.pp r.outputs;
          string_of_bool (Ssb.valid r.outputs);
          string_of_bool mis_ok;
        ];
      (* the id-ascending wake-up must break MIS through the reduction too *)
      if sname = "ascending" then ok := !ok && not mis_ok)
    [
      ("ascending", [ [ 0 ]; [ 1 ]; [ 2 ] ]);
      ("descending", [ [ 2 ]; [ 1 ]; [ 0 ] ]);
      ("synchronous", [ [ 0; 1; 2 ]; [ 0; 1; 2 ]; [ 0; 1; 2 ] ]);
    ];
  {
    Outcome.id = "E7";
    title = "MIS is not solvable wait-free (two horns + executable reduction)";
    claim = "Property 2.1: wait-free MIS on C_n would solve SSB, impossible";
    tables =
      [
        ("the impossibility's two horns, exhaustively checked", table);
        ("MIS→SSB reduction in 3-process shared memory (greedy)", red_table);
      ];
    ok = !ok;
    notes =
      [
        "No protocol can make both columns true at once — that is exactly \
         Property 2.1.";
      ];
  }
