type t = {
  id : string;
  title : string;
  claim : string;
  tables : (string * Asyncolor_workload.Table.t) list;
  ok : bool;
  notes : string list;
}

let print t =
  Printf.printf "\n=== %s: %s ===\n" t.id t.title;
  Printf.printf "claim: %s\n" t.claim;
  List.iter
    (fun (caption, table) ->
      Printf.printf "\n-- %s --\n" caption;
      Asyncolor_workload.Table.print table)
    t.tables;
  List.iter (fun note -> Printf.printf "note: %s\n" note) t.notes;
  Printf.printf "verdict: %s\n" (if t.ok then "OK (claim reproduced)" else "MISMATCH")

let slug s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '_')
    s

let write_csvs ~dir t =
  List.map
    (fun (caption, table) ->
      let path = Filename.concat dir (Printf.sprintf "%s_%s.csv" (slug t.id) (slug caption)) in
      Asyncolor_workload.Table.write_csv path table;
      path)
    t.tables

let all_ok = List.for_all (fun t -> t.ok)
