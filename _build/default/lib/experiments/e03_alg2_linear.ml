(** E3 — Theorem 3.11: Algorithm 2 is wait-free with O(n) round complexity
    (non-minima within ⌊3n/2⌋+4, everyone within 3n+8) and palette
    [{0,…,4}].  The monotone (increasing) identifier workload realises the
    Θ(n) behaviour; the zigzag workload shows the O(1) best case.  A least
    squares fit of worst rounds vs n on the monotone workload confirms the
    linear shape. *)

module Table = Asyncolor_workload.Table
module Idents = Asyncolor_workload.Idents
module Stats = Asyncolor_workload.Stats
module Builders = Asyncolor_topology.Builders
module Color = Asyncolor.Color
module Sweep = Harness.Sweep (Asyncolor.Algorithm2.P)

let sizes ~quick =
  if quick then [ 4; 8; 16; 32; 64 ] else [ 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]

let run ?(quick = false) ?(seed = 44) () =
  let table =
    Table.create
      ~headers:[ "n"; "workload"; "worst rounds"; "bound 3n+8"; "monotone run" ]
  in
  let ok = ref true in
  let mono_points = ref [] in
  List.iter
    (fun n ->
      let graph = Builders.cycle n in
      List.iter
        (fun (wname, idents) ->
          let s =
            Sweep.run
              ~equal:Int.equal ~in_palette:Color.in_five ~graph ~idents
              (Harness.adversary_suite ~seed ~n)
          in
          let bound = Asyncolor.Algorithm2.activation_bound n in
          ok :=
            !ok && s.worst_rounds <= bound && s.all_proper && s.all_palette
            && s.all_returned
            && not s.livelocked;
          if wname = "increasing" then
            mono_points := (float_of_int n, float_of_int s.worst_rounds) :: !mono_points;
          Table.add_row table
            [
              string_of_int n;
              wname;
              string_of_int s.worst_rounds;
              string_of_int bound;
              string_of_int (Idents.longest_monotone_run idents);
            ])
        [ ("increasing", Idents.increasing n); ("zigzag", Idents.zigzag n) ])
    (sizes ~quick);
  let slope, intercept = Stats.linear_fit !mono_points in
  ok := !ok && slope > 0.5 && slope < 3.0;
  {
    Outcome.id = "E3";
    title = "Algorithm 2 runs in O(n) rounds, palette {0..4}";
    claim = "Theorem 3.11: wait-free 5-colouring in O(n) activations";
    tables = [ ("rounds vs n (worst over adversary suite)", table) ];
    ok = !ok;
    notes =
      [
        Printf.sprintf
          "linear fit on the monotone workload: rounds ≈ %.3f·n %+.1f (the \
           paper predicts Θ(n) with constant ≈ 1 for this workload)"
          slope intercept;
        "zigzag identifiers (every node near an extremum) give O(1) rounds, \
         matching Lemma 3.9.";
      ];
  }
