lib/experiments/harness.ml: Asyncolor Asyncolor_kernel Asyncolor_topology Asyncolor_util List
