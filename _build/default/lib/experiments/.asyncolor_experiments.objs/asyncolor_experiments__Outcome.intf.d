lib/experiments/outcome.mli: Asyncolor_workload
