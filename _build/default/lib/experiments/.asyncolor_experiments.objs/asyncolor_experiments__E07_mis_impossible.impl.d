lib/experiments/e07_mis_impossible.ml: Array Asyncolor_check Asyncolor_kernel Asyncolor_shm Asyncolor_topology Asyncolor_workload Format Fun List Option Outcome Printf String
