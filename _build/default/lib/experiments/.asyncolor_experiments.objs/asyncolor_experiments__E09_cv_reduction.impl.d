lib/experiments/e09_cv_reduction.ml: Asyncolor_cv Asyncolor_util Asyncolor_workload List Outcome Printf
