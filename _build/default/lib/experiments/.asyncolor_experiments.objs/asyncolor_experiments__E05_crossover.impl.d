lib/experiments/e05_crossover.ml: Asyncolor Asyncolor_topology Asyncolor_workload Harness Int List Outcome Printf
