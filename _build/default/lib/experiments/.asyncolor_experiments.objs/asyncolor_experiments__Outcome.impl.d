lib/experiments/outcome.ml: Asyncolor_workload Char Filename List Printf String
