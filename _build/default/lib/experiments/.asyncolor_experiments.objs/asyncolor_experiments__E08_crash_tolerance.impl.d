lib/experiments/e08_crash_tolerance.ml: Array Asyncolor Asyncolor_cv Asyncolor_kernel Asyncolor_topology Asyncolor_util Asyncolor_workload Int List Option Outcome Printf Seq
