lib/experiments/e13_phase_lock.ml: Asyncolor Asyncolor_check Asyncolor_kernel Asyncolor_topology Asyncolor_util Asyncolor_workload Harness Int List Option Outcome Printf String
