lib/experiments/e03_alg2_linear.ml: Asyncolor Asyncolor_topology Asyncolor_workload Harness Int List Outcome Printf
