lib/experiments/e16_open_problem.ml: Asyncolor Asyncolor_check Asyncolor_topology Asyncolor_util Asyncolor_workload Format Harness Int Lazy List Outcome
