lib/experiments/harness.mli: Asyncolor_kernel Asyncolor_topology
