lib/experiments/e14_model_separation.ml: Array Asyncolor Asyncolor_cv Asyncolor_kernel Asyncolor_local Asyncolor_topology Asyncolor_util Asyncolor_workload Fun Int List Option Outcome Seq
