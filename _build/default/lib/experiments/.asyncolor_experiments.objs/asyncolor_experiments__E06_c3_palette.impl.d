lib/experiments/e06_c3_palette.ml: Array Asyncolor Asyncolor_check Asyncolor_shm Asyncolor_topology Asyncolor_workload Format Harness Hashtbl Int List Outcome Printf String
