lib/experiments/e02_alg1_palette.ml: Array Asyncolor Asyncolor_check Asyncolor_topology Asyncolor_util Asyncolor_workload Format Harness List Outcome String
