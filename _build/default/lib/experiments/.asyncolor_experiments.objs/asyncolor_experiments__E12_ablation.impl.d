lib/experiments/e12_ablation.ml: Asyncolor Asyncolor_shm Asyncolor_topology Asyncolor_workload Harness Int List Outcome
