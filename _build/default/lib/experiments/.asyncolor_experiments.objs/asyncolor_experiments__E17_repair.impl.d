lib/experiments/e17_repair.ml: Array Asyncolor Asyncolor_check Asyncolor_kernel Asyncolor_topology Asyncolor_util Asyncolor_workload Int List Outcome Printf String
