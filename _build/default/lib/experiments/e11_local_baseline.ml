(** E11 — the synchronous yardstick: Cole–Vishkin 3-colours the oriented
    ring in Θ(log* n) failure-free synchronous rounds (Linial's bound
    makes this optimal, Property 2.2).  Algorithm 3 matches the shape in
    the much harsher asynchronous crash-prone model, paying two extra
    colours.  Rounds are not directly comparable (different models); the
    point is the common log* growth. *)

module Table = Asyncolor_workload.Table
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng
module Logstar = Asyncolor_cv.Logstar
module Cv = Asyncolor_local.Cole_vishkin_ring
module Adversary = Asyncolor_kernel.Adversary
module Builders = Asyncolor_topology.Builders
module A3 = Asyncolor.Algorithm3

let sizes ~quick =
  if quick then [ 8; 64; 1_024 ] else [ 8; 64; 1_024; 16_384; 262_144; 1_048_576 ]

let run ?(quick = false) ?(seed = 52) () =
  let table =
    Table.create
      ~headers:
        [ "n"; "log* n"; "CV rounds (sync, 3 colours)"; "Alg3 rounds (async, 5 colours)" ]
  in
  let ok = ref true in
  List.iter
    (fun n ->
      let idents = Idents.random_sparse (Prng.create ~seed:(seed + n)) ~n ~universe:(n * 4) in
      let cv = Cv.three_color idents in
      ok :=
        !ok
        && Cv.is_proper_ring cv.colors
        && Array.for_all (fun c -> c <= 2) cv.colors
        && cv.cv_iterations <= Cv.rounds_upper_bound n;
      let r3 = A3.run_on_cycle ~idents Adversary.synchronous in
      let v =
        Asyncolor.Checker.check ~equal:Int.equal ~in_palette:Asyncolor.Color.in_five
          (Builders.cycle n) r3.outputs
      in
      ok := !ok && r3.all_returned && Asyncolor.Checker.ok v;
      Table.add_row table
        [
          string_of_int n;
          string_of_int (Logstar.log_star_int n);
          string_of_int cv.rounds;
          string_of_int r3.rounds;
        ])
    (sizes ~quick);
  {
    Outcome.id = "E11";
    title = "LOCAL-model Cole–Vishkin baseline vs Algorithm 3";
    claim =
      "§1.1/§4: both are Θ(log* n); asynchrony + crashes cost two extra \
       colours (3 → 5), not asymptotic time";
    tables = [ ("rounds vs n", table) ];
    ok = !ok;
    notes =
      [
        "Our CV digests one bit per round (the classic two-bit variant \
         would halve its column); both columns are flat in n, as claimed.";
      ];
  }
