(** E4 — Theorem 4.4: Algorithm 3 terminates within O(log* n) activations.
    We sweep n over five orders of magnitude with the monotone workload
    (worst for Algorithm 2) plus bit-adversarial and sparse-random
    identifiers, and report worst rounds against log* n.  Large n use the
    lighter adversary subset (the full suite is quadratic in n·rounds). *)

module Table = Asyncolor_workload.Table
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng
module Logstar = Asyncolor_cv.Logstar
module Builders = Asyncolor_topology.Builders
module Adversary = Asyncolor_kernel.Adversary
module Color = Asyncolor.Color
module Sweep = Harness.Sweep (Asyncolor.Algorithm3.P)

let sizes ~quick =
  if quick then [ 3; 10; 100; 1_000 ]
  else [ 3; 10; 30; 100; 300; 1_000; 10_000; 100_000; 1_048_576 ]

(* For very large n, a cheap sub-suite without the sustained-simultaneity
   schedules (staircase/alternating-waves phase-lock Algorithm 3 — that is
   experiment E13's subject, not this one's). *)
let light_suite ~seed =
  [
    Adversary.synchronous;
    Adversary.random_subsets (Prng.create ~seed) ~p:0.5;
    Adversary.random_subsets (Prng.create ~seed:(seed + 1)) ~p:0.8;
  ]

let run ?(quick = false) ?(seed = 45) () =
  let table =
    Table.create
      ~headers:[ "n"; "log* n"; "workload"; "worst rounds"; "rounds / (log*n+1)" ]
  in
  let ok = ref true in
  let worst_ratio = ref 0.0 in
  List.iter
    (fun n ->
      let graph = Builders.cycle n in
      let suite =
        if n <= 1_000 then Harness.adversary_suite ~seed ~n else light_suite ~seed
      in
      let workloads =
        if n <= 100_000 then
          [
            ("increasing", Idents.increasing n);
            ("bit-adversarial", Idents.bit_adversarial n);
            ( "sparse-random",
              Idents.random_sparse (Prng.create ~seed:(seed + n)) ~n
                ~universe:(max (n * n) 64) );
          ]
        else [ ("increasing", Idents.increasing n) ]
      in
      List.iter
        (fun (wname, idents) ->
          (* Alg 3's rounds are O(log* n); the light suite's schedules use
             O(rounds/p) steps, so a small explicit cap keeps the big-n
             sweeps cheap while still detecting locks. *)
          let max_steps = if n > 1_000 then 10_000 else 50_000 + (6 * n * n) in
          let s =
            Sweep.run ~max_steps ~equal:Int.equal ~in_palette:Color.in_five ~graph
              ~idents suite
          in
          let ls = Logstar.log_star_int n in
          let ratio = float_of_int s.worst_rounds /. float_of_int (ls + 1) in
          if ratio > !worst_ratio then worst_ratio := ratio;
          ok :=
            !ok
            && s.worst_rounds <= Asyncolor.Algorithm3.activation_bound n
            && s.all_proper && s.all_palette && s.all_returned
            && not s.livelocked;
          Table.add_row table
            [
              string_of_int n;
              string_of_int ls;
              wname;
              string_of_int s.worst_rounds;
              Printf.sprintf "%.2f" ratio;
            ])
        workloads)
    (sizes ~quick);
  {
    Outcome.id = "E4";
    title = "Algorithm 3 runs in O(log* n) rounds";
    claim = "Theorem 4.4: wait-free 5-colouring in O(log* n) activations";
    tables = [ ("rounds vs n", table) ];
    ok = !ok;
    notes =
      [
        Printf.sprintf
          "max observed rounds/(log* n + 1) = %.2f — a small constant, flat \
           across five orders of magnitude of n" !worst_ratio;
      ];
  }
