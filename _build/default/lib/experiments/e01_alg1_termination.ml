(** E1 — Theorem 3.1 (Termination): every process running Algorithm 1 on
    [C_n] terminates within [⌊3n/2⌋ + 4] activations, for every schedule.
    We measure the worst round complexity over the adversary suite, for
    the three identifier workloads, and compare to the bound. *)

module Table = Asyncolor_workload.Table
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng
module Builders = Asyncolor_topology.Builders
module Sweep = Harness.Sweep (Asyncolor.Algorithm1.P)

let sizes ~quick =
  if quick then [ 3; 4; 5; 8; 13; 21; 34 ]
  else [ 3; 4; 5; 8; 13; 21; 34; 55; 89; 144; 233; 377; 512 ]

let workloads ~seed n =
  [
    ("increasing", Idents.increasing n);
    ("zigzag", Idents.zigzag n);
    ("random", Idents.random_permutation (Prng.create ~seed:(seed + n)) n);
  ]

let run ?(quick = false) ?(seed = 42) () =
  let table =
    Table.create ~headers:[ "n"; "workload"; "worst rounds"; "bound 3n/2+4"; "ok" ]
  in
  let ok = ref true in
  List.iter
    (fun n ->
      let graph = Builders.cycle n in
      List.iter
        (fun (wname, idents) ->
          let s =
            Sweep.run
              ~equal:(fun a b -> a = b)
              ~in_palette:(Asyncolor.Color.pair_in_palette ~budget:2)
              ~graph ~idents
              (Harness.adversary_suite ~seed ~n)
          in
          let bound = Asyncolor.Algorithm1.activation_bound n in
          let row_ok =
            s.worst_rounds <= bound && s.all_proper && s.all_palette
            && s.all_returned
            && not s.livelocked
          in
          ok := !ok && row_ok;
          Table.add_row table
            [
              string_of_int n;
              wname;
              string_of_int s.worst_rounds;
              string_of_int bound;
              string_of_bool row_ok;
            ])
        (workloads ~seed n))
    (sizes ~quick);
  {
    Outcome.id = "E1";
    title = "Algorithm 1 terminates within ⌊3n/2⌋+4 activations";
    claim = "Theorem 3.1 (Termination): wait-free, at most ⌊3n/2⌋+4 activations";
    tables = [ ("worst-case rounds over the adversary suite", table) ];
    ok = !ok;
    notes =
      [
        "Measured worst cases sit far below the bound: the bound is driven \
         by the longest monotone identifier chain (Lemma 3.9).";
      ];
  }
