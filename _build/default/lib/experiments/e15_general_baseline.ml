(** E15 — the conclusion's general-graph landscape (paper §5): in the
    synchronous LOCAL model, Linial's reduction gives O(Δ²) colours in
    O(log* n) rounds and a slow phase reaches the greedy optimum Δ+1; in
    the asynchronous model the renaming bound forbids fewer than 2Δ+1
    colours (whenever Δ+1 is a prime power), Algorithm 4 achieves O(Δ²)
    wait-free, and closing the gap (2Δ+1?) is the paper's open problem.
    We measure all three columns on the same graphs. *)

module Table = Asyncolor_workload.Table
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng
module Graph = Asyncolor_topology.Graph
module Builders = Asyncolor_topology.Builders
module Linial = Asyncolor_local.Linial
module Sweep4 = Harness.Sweep (Asyncolor.Algorithm4.P)

let zoo ~quick ~seed =
  let prng = Prng.create ~seed in
  let base =
    [
      ("cycle 64", Builders.cycle 64);
      ("petersen", Builders.petersen ());
      ("grid 8x8", Builders.grid 8 8);
      ("hypercube d=5", Builders.hypercube 5);
      ("3-regular n=32", Builders.random_regular prng ~n:32 ~d:3);
    ]
  in
  if quick then base
  else
    base
    @ [
        ("torus 8x8", Builders.torus 8 8);
        ("5-regular n=64", Builders.random_regular prng ~n:64 ~d:5);
        ("cycle 4096", Builders.cycle 4096);
      ]

let run ?(quick = false) ?(seed = 56) () =
  let ok = ref true in
  let table =
    Table.create
      ~headers:
        [ "graph"; "Δ"; "LOCAL Linial: colours@rounds"; "LOCAL Δ+1: rounds";
          "async Alg4: colours used@rounds"; "async lower bound" ]
  in
  List.iter
    (fun (gname, graph) ->
      let n = Graph.n graph in
      let delta = Graph.max_degree graph in
      let prng = Prng.create ~seed:(seed + n) in
      let idents = Idents.random_sparse (Prng.split prng) ~n ~universe:(max 64 (n * n)) in
      (* LOCAL side *)
      let stall = Linial.color graph ~idents in
      let full = Linial.color_delta_plus_one graph ~idents in
      ok :=
        !ok
        && Linial.is_proper graph stall.colors
        && Linial.is_proper graph full.colors
        && stall.final_palette <= Linial.palette_bound ~max_degree:delta
        && full.final_palette = delta + 1;
      (* async side *)
      let s4 =
        Sweep4.run
          ~equal:(fun a b -> a = b)
          ~in_palette:(Asyncolor.Algorithm4.in_palette ~max_degree:delta)
          ~graph ~idents
          (Harness.adversary_suite ~seed ~n)
      in
      ok := !ok && s4.all_proper && s4.all_palette && not s4.livelocked;
      Table.add_row table
        [
          gname;
          string_of_int delta;
          Printf.sprintf "%d@%d" stall.final_palette stall.rounds;
          string_of_int full.rounds;
          Printf.sprintf "%d@%d" s4.distinct_colors_max s4.worst_rounds;
          Printf.sprintf ">= %d (renaming)" ((2 * delta) + 1);
        ])
    (zoo ~quick ~seed);
  {
    Outcome.id = "E15";
    title = "General graphs: LOCAL Linial baseline vs wait-free Algorithm 4";
    claim =
      "§5: LOCAL reaches Δ+1 colours; asynchronously >= 2Δ+1 are needed \
       (renaming bound) and O(Δ²) is achieved — the gap is the paper's \
       open problem";
    tables = [ ("same graphs, three regimes", table) ];
    ok = !ok;
    notes =
      [
        "Linial's polynomial phase stalls in 2-3 rounds at <= p² colours \
         (p the smallest prime above 2Δ); the slow phase pays one round \
         per removed colour to reach Δ+1 — both impossible wait-free \
         asynchronously below 2Δ+1.";
      ];
  }
