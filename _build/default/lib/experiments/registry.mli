(** All experiments, in index order. *)

type entry = {
  id : string;
  title : string;
  run : ?quick:bool -> unit -> Outcome.t;
}

val all : entry list
val find : string -> entry option
(** Lookup by case-insensitive id, e.g. "e4". *)

val run_all : ?quick:bool -> unit -> Outcome.t list
(** Run every experiment and print each outcome as it completes. *)
