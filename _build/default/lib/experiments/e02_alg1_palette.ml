(** E2 — Theorem 3.1 (palette and correctness): Algorithm 1 outputs lie in
    [{ (a,b) | a + b ≤ 2 }] (6 colours) and properly colour the returned
    subgraph — verified {e exhaustively over all schedules} on [C_3] and
    [C_4] (Algorithm 1 is wait-free even under simultaneous activations),
    and over the adversary suite for larger [n]. *)

module Table = Asyncolor_workload.Table
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng
module Builders = Asyncolor_topology.Builders
module Color = Asyncolor.Color
module Checker = Asyncolor.Checker
module Explorer = Asyncolor_check.Explorer.Make (Asyncolor.Algorithm1.P)
module Sweep = Harness.Sweep (Asyncolor.Algorithm1.P)

let exhaustive_cases =
  [ (3, [| 5; 1; 9 |]); (3, [| 0; 1; 2 |]); (3, [| 2; 0; 1 |]); (4, [| 5; 1; 9; 4 |]);
    (4, [| 0; 1; 2; 3 |]) ]

let run ?(quick = false) ?(seed = 43) () =
  let ok = ref true in
  let ex_table =
    Table.create
      ~headers:[ "n"; "idents"; "configs"; "wait-free"; "violations"; "worst rounds" ]
  in
  List.iter
    (fun (n, idents) ->
      let graph = Builders.cycle n in
      let check_outputs outs =
        let v =
          Checker.check
            ~equal:(fun a b -> a = b)
            ~in_palette:(Color.pair_in_palette ~budget:2)
            graph outs
        in
        if Checker.ok v then None
        else Some (Format.asprintf "%a" Checker.pp v)
      in
      let r = Explorer.explore graph ~idents ~check_outputs in
      ok := !ok && r.complete && r.wait_free && r.safety = [];
      Table.add_row ex_table
        [
          string_of_int n;
          String.concat "," (Array.to_list (Array.map string_of_int idents));
          string_of_int r.configs;
          string_of_bool r.wait_free;
          string_of_int (List.length r.safety);
          string_of_int r.worst_case_activations;
        ])
    exhaustive_cases;
  let sweep_table =
    Table.create ~headers:[ "n"; "distinct colours"; "palette<=6"; "proper" ]
  in
  List.iter
    (fun n ->
      let graph = Builders.cycle n in
      let idents = Idents.random_permutation (Prng.create ~seed:(seed + n)) n in
      let s =
        Sweep.run
          ~equal:(fun a b -> a = b)
          ~in_palette:(Color.pair_in_palette ~budget:2)
          ~graph ~idents
          (Harness.adversary_suite ~seed ~n)
      in
      ok := !ok && s.all_proper && s.all_palette && s.distinct_colors_max <= 6;
      Table.add_row sweep_table
        [
          string_of_int n;
          string_of_int s.distinct_colors_max;
          string_of_bool s.all_palette;
          string_of_bool s.all_proper;
        ])
    (if quick then [ 8; 32 ] else [ 8; 32; 128; 512 ]);
  {
    Outcome.id = "E2";
    title = "Algorithm 1 palette {(a,b) : a+b<=2} and proper colouring";
    claim = "Theorem 3.1 (6-colour palette, Correctness)";
    tables =
      [
        ("exhaustive model checking (all schedules incl. simultaneous)", ex_table);
        ("adversary-suite sweeps", sweep_table);
      ];
    ok = !ok;
    notes =
      [
        "Algorithm 1 is exhaustively wait-free in the full model — unlike \
         Algorithms 2-3, its a/b components never phase-lock (the local \
         maximum pins a=0 and the local minimum pins b=0).";
      ];
  }
