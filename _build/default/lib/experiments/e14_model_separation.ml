(** E14 — model separation (paper §1.4): the paper contrasts its fully
    asynchronous state model with the DECOUPLED model of [13, 18], where
    the communication layer stays synchronous and reliable while processes
    are asynchronous and crash-prone.  Tasks trivial in DECOUPLED — like
    3-colouring C3 — are impossible in the state model.

    We execute both sides of the separation:
    - DECOUPLED: our [18]-style simulation 3-colours every ring, C3
      included, in O(log* U) global rounds, under crashes and arbitrary
      process asynchrony (crashed nodes' identifiers still propagate);
    - state model: 5 colours are required on C3 (Property 2.3; tightness
      shown exhaustively in E6) and Algorithm 3 pays exactly 5.

    The columns line up the price of losing the synchronous network:
    palette 3 → 5. *)

module Table = Asyncolor_workload.Table
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng
module Logstar = Asyncolor_cv.Logstar
module Adversary = Asyncolor_kernel.Adversary
module D = Asyncolor_local.Decoupled_ring
module Builders = Asyncolor_topology.Builders
module Checker = Asyncolor.Checker

let sizes ~quick = if quick then [ 3; 4; 16 ] else [ 3; 4; 16; 256; 4096; 65536 ]

let run ?(quick = false) ?(seed = 55) () =
  let ok = ref true in
  let table =
    Table.create
      ~headers:
        [ "n"; "universe"; "DECOUPLED rounds"; "DECOUPLED colours"; "Alg3 colours";
          "crashed" ]
  in
  List.iter
    (fun n ->
      let prng = Prng.create ~seed:(seed + n) in
      let universe = max 8 (4 * n) in
      let idents = Idents.random_sparse (Prng.split prng) ~n ~universe in
      (* DECOUPLED side: random activations, 25% of processes crash.  The
         crashed processes' identifiers keep propagating (the network layer
         is reliable), so survivors still colour correctly. *)
      (* crash a quarter of the ring at larger sizes; keep the headline
         rows (C3, C4) crash-free so the full 3-colouring is visible *)
      let rate = if n <= 8 then 0.0 else 0.25 in
      let adv =
        Adversary.random_crashes (Prng.split prng) ~n ~rate
          ~horizon:(D.rounds_needed ~universe)
          (Adversary.random_subsets (Prng.split prng) ~p:0.5)
      in
      let dec = D.create ~idents ~universe in
      let outs, rounds = D.run adv dec in
      let crashed = Array.length (Array.of_seq (Seq.filter Option.is_none (Array.to_seq outs))) in
      let colours_used =
        List.sort_uniq compare (List.filter_map Fun.id (Array.to_list outs))
      in
      ok :=
        !ok
        && D.is_proper_partial outs
        && List.for_all (fun c -> c >= 0 && c <= 2) colours_used
        && rounds <= (4 * Logstar.log_star_int universe) + 16
        (* the headline: C3 fully 3-coloured in DECOUPLED *)
        && (n > 3 || List.length colours_used = 3);
      (* state-model side: Algorithm 3 on the same ring (no crashes, to
         count colours on full outputs) *)
      let r3 =
        Asyncolor.Algorithm3.run_on_cycle ~idents
          (Adversary.random_subsets (Prng.split prng) ~p:0.5)
      in
      let v3 =
        Checker.check ~equal:Int.equal ~in_palette:Asyncolor.Color.in_five
          (Builders.cycle n) r3.outputs
      in
      ok := !ok && Checker.ok v3;
      Table.add_row table
        [
          string_of_int n;
          string_of_int universe;
          string_of_int rounds;
          string_of_int (List.length colours_used) ^ " (<=3)";
          string_of_int v3.Checker.distinct_colors ^ " (<=5)";
          string_of_int crashed;
        ])
    (sizes ~quick);
  {
    Outcome.id = "E14";
    title = "Model separation: DECOUPLED 3-colours C3, the state model cannot";
    claim =
      "§1.4: 3-colouring C3 is trivial in DECOUPLED [13,18] but impossible \
       in the fully asynchronous model (k >= 5 by Property 2.3)";
    tables = [ ("DECOUPLED vs state model on the same rings", table) ];
    ok = !ok;
    notes =
      [
        "The DECOUPLED rounds column is O(log* U): processes derive the \
         same Cole-Vishkin iteration count from the universe bound alone \
         and locally replay one shared virtual synchronous execution.";
        "3 colours appear on C3 in DECOUPLED — exactly what Property 2.3 \
         forbids in the state model: the synchrony of the communication \
         layer is what the two extra colours pay for.";
      ];
  }
