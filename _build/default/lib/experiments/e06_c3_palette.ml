(** E6 — Property 2.3 and the C3/shared-memory coincidence.  On [C_3] the
    state model equals the 3-process shared-memory model, where renaming
    needs at least 2n−1 = 5 names; hence no algorithm colours all cycles
    with fewer than 5 colours.  We verify that (a) Algorithm 2 on [C_3]
    never outputs outside {0,…,4} and properly colours the returned
    subgraph in *every* schedule, (b) every one of the 5 colours is
    actually emitted in some execution — the palette is tight for this
    algorithm, (c) the rank-based renaming baseline on 3 processes uses
    names in {0,…,4} and also realises name 4 in some execution.

    The exhaustive pass also documents the phase-lock finding: under
    interleaved schedules (`Singletons`) Algorithm 2 is wait-free on C3
    with a small exact worst case, while under simultaneous activations
    (`All_subsets`) a symmetric livelock exists (see EXPERIMENTS.md F1). *)

module Table = Asyncolor_workload.Table
module Builders = Asyncolor_topology.Builders
module Color = Asyncolor.Color
module Checker = Asyncolor.Checker
module Explorer2 = Asyncolor_check.Explorer.Make (Asyncolor.Algorithm2.P)
module SweepR = Harness.Sweep (Asyncolor_shm.Renaming.P)

let ident_assignments = [ [| 5; 1; 9 |]; [| 0; 1; 2 |]; [| 2; 0; 1 |]; [| 7; 3; 5 |] ]

let run ?quick:(_ = false) ?(seed = 47) () =
  let graph = Builders.cycle 3 in
  let ok = ref true in
  let colors_seen = Hashtbl.create 8 in
  let table =
    Table.create
      ~headers:
        [ "idents"; "mode"; "configs"; "wait-free"; "worst rounds"; "violations" ]
  in
  List.iter
    (fun idents ->
      let check_outputs outs =
        Array.iter
          (function Some c -> Hashtbl.replace colors_seen c () | None -> ())
          outs;
        let v =
          Checker.check ~equal:Int.equal ~in_palette:Color.in_five graph outs
        in
        if Checker.ok v then None else Some (Format.asprintf "%a" Checker.pp v)
      in
      List.iter
        (fun (mode_name, mode) ->
          let r = Explorer2.explore ~mode graph ~idents ~check_outputs in
          (* Safety must hold in both modes; wait-freedom only under
             interleaved schedules (finding F1). *)
          ok := !ok && r.complete && r.safety = [];
          (match mode with
          | `Singletons -> ok := !ok && r.wait_free
          | `All_subsets -> ok := !ok && not r.wait_free);
          Table.add_row table
            [
              String.concat "," (Array.to_list (Array.map string_of_int idents));
              mode_name;
              string_of_int r.configs;
              string_of_bool r.wait_free;
              string_of_int r.worst_case_activations;
              string_of_int (List.length r.safety);
            ])
        [ ("interleaved", `Singletons); ("simultaneous", `All_subsets) ])
    ident_assignments;
  let palette_covered =
    List.for_all (Hashtbl.mem colors_seen) [ 0; 1; 2; 3; 4 ]
  in
  ok := !ok && palette_covered;
  (* Renaming baseline on 3 shared-memory processes. *)
  let ren_table = Table.create ~headers:[ "idents"; "max name"; "bound 2n-2"; "ok" ] in
  let max_name_overall = ref 0 in
  List.iter
    (fun idents ->
      let s =
        SweepR.run ~equal:Int.equal
          ~in_palette:(fun c -> c >= 0 && c <= Asyncolor_shm.Renaming.name_bound 3)
          ~graph:(Builders.complete 3) ~idents
          (Harness.adversary_suite ~seed ~n:3)
      in
      (* distinct names = proper colouring on the clique *)
      ok := !ok && s.all_proper && s.all_palette && s.all_returned;
      let bound = Asyncolor_shm.Renaming.name_bound 3 in
      Table.add_row ren_table
        [
          String.concat "," (Array.to_list (Array.map string_of_int idents));
          string_of_int s.distinct_colors_max;
          string_of_int bound;
          string_of_bool (s.all_proper && s.all_palette);
        ];
      if s.distinct_colors_max > !max_name_overall then
        max_name_overall := s.distinct_colors_max)
    ident_assignments;
  {
    Outcome.id = "E6";
    title = "C3: 5 colours are used and suffice; renaming coincidence";
    claim =
      "Property 2.3: k-colouring C3 needs k >= 5; C3 = 3-process shared memory";
    tables =
      [
        ("Algorithm 2 on C3, exhaustive over schedules", table);
        ("rank-based renaming, 3 processes", ren_table);
      ];
    ok = !ok;
    notes =
      [
        Printf.sprintf "colours emitted across all explored executions: {%s}%s"
          (String.concat ","
             (List.sort compare (Hashtbl.fold (fun c () l -> string_of_int c :: l) colors_seen [])))
          (if palette_covered then " — all 5 needed" else "");
        "Finding F1: in the full (simultaneous-activation) model Algorithm 2 \
         admits a symmetric livelock on C3; see EXPERIMENTS.md.";
      ];
  }
