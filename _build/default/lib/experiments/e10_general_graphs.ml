(** E10 — Appendix A: Algorithm 4 wait-free colours arbitrary graphs with
    the pair palette [{ (a,b) | a + b ≤ Δ }] of size (Δ+1)(Δ+2)/2.  We run
    the adversary suite on a zoo of topologies and validate palette and
    properness; [C_3 = K_3] ties back to the cycle case. *)

module Table = Asyncolor_workload.Table
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng
module Graph = Asyncolor_topology.Graph
module Builders = Asyncolor_topology.Builders
module Color = Asyncolor.Color
module Sweep = Harness.Sweep (Asyncolor.Algorithm4.P)

let zoo ~quick ~seed =
  let prng = Prng.create ~seed in
  let base =
    [
      ("petersen", Builders.petersen ());
      ("grid 6x6", Builders.grid 6 6);
      ("torus 5x5", Builders.torus 5 5);
      ("K5", Builders.complete 5);
      ("star 9", Builders.star 9);
      ("hypercube d=4", Builders.hypercube 4);
      ("3-regular n=24", Builders.random_regular prng ~n:24 ~d:3);
      ("path 17", Builders.path 17);
    ]
  in
  if quick then base
  else
    base
    @ [
        ("grid 12x12", Builders.grid 12 12);
        ("4-regular n=64", Builders.random_regular prng ~n:64 ~d:4);
        ("gnp n=48 p=0.12", Builders.gnp prng ~n:48 ~p:0.12);
        ("hypercube d=6", Builders.hypercube 6);
      ]

let run ?(quick = false) ?(seed = 51) () =
  let table =
    Table.create
      ~headers:
        [ "graph"; "n"; "max deg"; "palette size"; "distinct used"; "worst rounds"; "ok" ]
  in
  let ok = ref true in
  List.iter
    (fun (gname, graph) ->
      let n = Graph.n graph in
      let delta = Graph.max_degree graph in
      let idents = Idents.random_permutation (Prng.create ~seed:(seed + n)) n in
      let s =
        Sweep.run
          ~equal:(fun a b -> a = b)
          ~in_palette:(Asyncolor.Algorithm4.in_palette ~max_degree:delta)
          ~graph ~idents
          (Harness.adversary_suite ~seed ~n)
      in
      let row_ok =
        s.all_proper && s.all_palette && s.all_returned && not s.livelocked
      in
      ok := !ok && row_ok;
      Table.add_row table
        [
          gname;
          string_of_int n;
          string_of_int delta;
          string_of_int (Asyncolor.Algorithm4.palette_size ~max_degree:delta);
          string_of_int s.distinct_colors_max;
          string_of_int s.worst_rounds;
          string_of_bool row_ok;
        ])
    (zoo ~quick ~seed);
  {
    Outcome.id = "E10";
    title = "Algorithm 4 colours general graphs within the O(Δ²) palette";
    claim = "Appendix A: palette {(a,b) : a+b<=Δ}, wait-free";
    tables = [ ("topology zoo", table) ];
    ok = !ok;
    notes =
      [
        "distinct colours actually used stay close to Δ+1 even though the \
         guaranteed palette is quadratic — matching the paper's remark \
         that reducing O(Δ²) to Δ+1 asynchronously is open.";
      ];
  }
