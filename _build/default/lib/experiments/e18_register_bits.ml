(** E18 — §2.1's footnote claim: "we do not assume that the registers are
    bounded.  Nevertheless, our algorithms only manipulate a constant
    number of variables using O(log n) bits each."

    We measure, at every time step of adversarial runs, the widest value
    any process ever publishes: the identifier field [X] (the dominant
    term, ≤ the input identifier, which only shrinks under Algorithm 3's
    reduction), the counter [r] (finite values only; [∞] is one symbol),
    and the colour candidates [a, b ≤ 4].  The claim holds iff max bits
    stays within a small multiple of [log2 U] for identifier universe
    [U = poly(n)].

    The interesting subtlety is [r]: it increments on every green-lit
    middle round, so a priori it could outgrow [O(log* n)] — the
    green-light discipline ([r_p ≤ min(r_q, r_q')]) is what keeps
    neighbouring counters within 1 of each other and the maximum small.
    The table reports the largest finite [r] observed. *)

module Table = Asyncolor_workload.Table
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng
module Bits = Asyncolor_cv.Bits
module Builders = Asyncolor_topology.Builders
module Adversary = Asyncolor_kernel.Adversary
module Status = Asyncolor_kernel.Status
module A3 = Asyncolor.Algorithm3
module Rank = Asyncolor.Rank

let sizes ~quick = if quick then [ 16; 256 ] else [ 16; 256; 4_096; 65_536 ]

let run ?(quick = false) ?(seed = 59) () =
  let ok = ref true in
  let table =
    Table.create
      ~headers:
        [ "n"; "universe"; "max |X| bits"; "bound 2·log2 U + 4"; "max finite r";
          "max colour" ]
  in
  List.iter
    (fun n ->
      let prng = Prng.create ~seed:(seed + n) in
      let universe = max 64 (n * n) in
      let idents = Idents.random_sparse (Prng.split prng) ~n ~universe in
      let e = A3.E.create (Builders.cycle n) ~idents in
      let max_bits = ref 0 and max_r = ref 0 and max_color = ref 0 in
      A3.E.set_monitor e (fun e ->
          for p = 0 to n - 1 do
            match A3.E.status e p with
            | Status.Working ->
                let s = A3.E.state e p in
                max_bits := max !max_bits (Bits.length s.A3.x);
                (match s.A3.r with
                | Rank.Fin k -> max_r := max !max_r k
                | Rank.Inf -> ());
                max_color := max !max_color (max s.A3.a s.A3.b)
            | Status.Asleep | Status.Returned _ -> ()
          done);
      let r = A3.E.run e (Adversary.random_subsets (Prng.split prng) ~p:0.5) in
      let log_u = Bits.length universe in
      let bound = (2 * log_u) + 4 in
      ok :=
        !ok && r.all_returned && !max_bits <= bound && !max_color <= 4
        && !max_r <= (8 * Asyncolor_cv.Logstar.log_star_int universe) + 16;
      Table.add_row table
        [
          string_of_int n;
          string_of_int universe;
          string_of_int !max_bits;
          string_of_int bound;
          string_of_int !max_r;
          string_of_int !max_color;
        ])
    (sizes ~quick);
  {
    Outcome.id = "E18";
    title = "Registers stay O(log n) bits (Algorithm 3)";
    claim =
      "§2.1: a constant number of variables of O(log n) bits each, even \
       though the model allows unbounded registers";
    tables = [ ("max published value widths over adversarial runs", table) ];
    ok = !ok;
    notes =
      [
        "X only shrinks (identifier reduction); colours stay <= 4; the \
         green-light discipline keeps the finite r counters tiny.";
      ];
  }
