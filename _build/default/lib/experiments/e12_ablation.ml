(** E12 — ablation across the paper's design space on the same workload:
    Algorithm 1 (6 colours, O(n)), Algorithm 2 (5 colours, O(n) — drops a
    colour by sharing the mex pool), Algorithm 3 (5 colours, O(log* n) —
    adds identifier reduction), plus the shared-memory rank renaming
    baseline whose name range grows as 2n−1 while the cycle algorithms
    stay at 5 colours: locality is what buys the constant palette. *)

module Table = Asyncolor_workload.Table
module Idents = Asyncolor_workload.Idents
module Builders = Asyncolor_topology.Builders
module Color = Asyncolor.Color
module Sweep1 = Harness.Sweep (Asyncolor.Algorithm1.P)
module Sweep2 = Harness.Sweep (Asyncolor.Algorithm2.P)
module Sweep3 = Harness.Sweep (Asyncolor.Algorithm3.P)
module SweepR = Harness.Sweep (Asyncolor_shm.Renaming.P)

let sizes ~quick = if quick then [ 4; 8; 16 ] else [ 4; 8; 16; 32; 64; 128; 256 ]

let run ?(quick = false) ?(seed = 53) () =
  let table =
    Table.create
      ~headers:
        [ "n"; "alg1 rounds"; "alg2 rounds"; "alg3 rounds"; "renaming rounds";
          "renaming names<="; "cycle colours<=" ]
  in
  let ok = ref true in
  List.iter
    (fun n ->
      let graph = Builders.cycle n in
      let idents = Idents.increasing n in
      let suite () = Harness.adversary_suite ~seed ~n in
      let s1 =
        Sweep1.run
          ~equal:(fun a b -> a = b)
          ~in_palette:(Color.pair_in_palette ~budget:2) ~graph ~idents (suite ())
      in
      let s2 =
        Sweep2.run ~equal:Int.equal ~in_palette:Color.in_five ~graph ~idents (suite ())
      in
      let s3 =
        Sweep3.run ~equal:Int.equal ~in_palette:Color.in_five ~graph ~idents (suite ())
      in
      let name_bound = Asyncolor_shm.Renaming.name_bound n in
      let sr =
        SweepR.run ~equal:Int.equal
          ~in_palette:(fun c -> c >= 0 && c <= name_bound)
          ~graph:(Builders.complete n) ~idents (suite ())
      in
      ok :=
        !ok && s1.all_proper && s2.all_proper && s3.all_proper && sr.all_proper
        && s1.all_palette && s2.all_palette && s3.all_palette && sr.all_palette
        && (not s1.livelocked) && (not s2.livelocked) && (not s3.livelocked)
        && not sr.livelocked;
      Table.add_row table
        [
          string_of_int n;
          string_of_int s1.worst_rounds;
          string_of_int s2.worst_rounds;
          string_of_int s3.worst_rounds;
          string_of_int sr.worst_rounds;
          string_of_int (name_bound + 1);
          "5 (6 for alg1)";
        ])
    (sizes ~quick);
  {
    Outcome.id = "E12";
    title = "Ablation: Algorithms 1/2/3 and the renaming baseline";
    claim =
      "§1/§3/§4: component 2 (identifier reduction) buys O(log* n); the \
       cycle topology buys the constant palette vs 2n-1 names";
    tables = [ ("monotone workload, worst rounds over the suite", table) ];
    ok = !ok;
    notes =
      [
        "Renaming on the clique must spread 2n-1 names; the cycle \
         algorithms keep 5 colours at every n — the palette column is the \
         paper's core contrast with classic renaming.";
      ];
  }
