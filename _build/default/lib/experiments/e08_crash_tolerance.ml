(** E8 — fault tolerance: with crash faults injected at random times (the
    defining feature of the model), every surviving process still
    terminates within the round bound and the survivors' outputs properly
    colour the induced subgraph.  Crash rates up to 80% of the ring. *)

module Table = Asyncolor_workload.Table
module Idents = Asyncolor_workload.Idents
module Prng = Asyncolor_util.Prng
module Builders = Asyncolor_topology.Builders
module Adversary = Asyncolor_kernel.Adversary
module Color = Asyncolor.Color
module Checker = Asyncolor.Checker
module E3 = Asyncolor.Algorithm3.E

let sizes ~quick = if quick then [ 16; 64 ] else [ 16; 64; 256; 1024 ]
let rates = [ 0.2; 0.5; 0.8 ]

let run ?(quick = false) ?(seed = 49) () =
  let table =
    Table.create
      ~headers:
        [ "n"; "crash rate"; "runs"; "crashed total"; "survivor worst rounds"; "proper" ]
  in
  let ok = ref true in
  let repeats = if quick then 3 else 10 in
  List.iter
    (fun n ->
      let graph = Builders.cycle n in
      List.iter
        (fun rate ->
          let crashed_total = ref 0 in
          let worst = ref 0 in
          let proper = ref true in
          for rep = 1 to repeats do
            let prng = Prng.create ~seed:(seed + (1000 * rep) + n) in
            let idents = Idents.random_permutation (Prng.split prng) n in
            let adv =
              Adversary.random_crashes (Prng.split prng) ~n ~rate
                ~horizon:(4 + Asyncolor_cv.Logstar.log_star_int n)
                (Adversary.random_subsets (Prng.split prng) ~p:0.7)
            in
            let engine = E3.create graph ~idents in
            let r = E3.run ~max_steps:200_000 engine adv in
            let v =
              Checker.check ~equal:Int.equal ~in_palette:Color.in_five graph
                r.outputs
            in
            let crashed =
              Array.length (Array.of_seq (Seq.filter Option.is_none (Array.to_seq r.outputs)))
            in
            crashed_total := !crashed_total + crashed;
            if r.rounds > !worst then worst := r.rounds;
            proper := !proper && Checker.ok v;
            (* the schedule must have ended because of crashes, not a
               livelock within the step budget *)
            ok := !ok && (r.all_returned || r.schedule_ended)
          done;
          ok := !ok && !proper;
          Table.add_row table
            [
              string_of_int n;
              Printf.sprintf "%.0f%%" (rate *. 100.0);
              string_of_int repeats;
              string_of_int !crashed_total;
              string_of_int !worst;
              string_of_bool !proper;
            ])
        rates)
    (sizes ~quick);
  {
    Outcome.id = "E8";
    title = "Survivors of crash faults are properly coloured (Algorithm 3)";
    claim =
      "§2: crashes only remove processes from the schedule; correct \
       processes still terminate and properly colour the induced subgraph";
    tables = [ ("random crash injection", table) ];
    ok = !ok;
    notes =
      [
        "A crashed process may freeze its register forever; neighbours \
         colour against the frozen value, which the checker accounts for \
         by only constraining edges between two returned processes.";
      ];
  }
