(** E9 — Lemmas 4.1–4.3: the identifier-reduction function [f].
    (a) iterating the envelope [F x = 2⌈log2(x+1)⌉+1] reaches a value
    below 10 within α·log* x iterations; (b) [x > y ≥ 10 ⇒ f x y < y];
    (c) [x > y > z ⇒ f x y ≠ f y z] — (b) and (c) are sampled massively
    here and property-tested in the test suite; (a) is tabulated. *)

module Table = Asyncolor_workload.Table
module Prng = Asyncolor_util.Prng
module Reduce = Asyncolor_cv.Reduce
module Bits = Asyncolor_cv.Bits
module Logstar = Asyncolor_cv.Logstar

let run ?(quick = false) ?(seed = 50) () =
  let ok = ref true in
  let table =
    Table.create ~headers:[ "x"; "|x| bits"; "F-iterations to <10"; "log* x" ]
  in
  let xs =
    [
      100;
      10_000;
      1_000_000;
      1_000_000_000;
      1_000_000_000_000;
      1 lsl 50;
      (1 lsl 62) - 1;
    ]
  in
  let worst_ratio = ref 0.0 in
  List.iter
    (fun x ->
      let iters = Reduce.iterations_to_small x in
      let ls = Logstar.log_star_int x in
      let ratio = float_of_int iters /. float_of_int (max 1 ls) in
      if ratio > !worst_ratio then worst_ratio := ratio;
      ok := !ok && iters <= (4 * ls) + 4;
      Table.add_row table
        [ string_of_int x; string_of_int (Bits.length x); string_of_int iters;
          string_of_int ls ])
    xs;
  (* Massive sampling of Lemmas 4.2 and 4.3. *)
  let prng = Prng.create ~seed in
  let samples = if quick then 10_000 else 1_000_000 in
  let lemma42_fail = ref 0 and lemma43_fail = ref 0 in
  for _ = 1 to samples do
    let x = Prng.int prng (1 lsl 40) and y = Prng.int prng (1 lsl 40) in
    let z = Prng.int prng (1 lsl 40) in
    let a = max x (max y z) and c = min x (min y z) in
    let b = x + y + z - a - c in
    if a > b && b >= 10 && Reduce.f a b >= b then incr lemma42_fail;
    if a > b && b > c && Reduce.f a b = Reduce.f b c then incr lemma43_fail
  done;
  ok := !ok && !lemma42_fail = 0 && !lemma43_fail = 0;
  let lemma_table = Table.create ~headers:[ "lemma"; "samples"; "violations" ] in
  Table.add_row lemma_table
    [ "4.2 (f x y < y)"; string_of_int samples; string_of_int !lemma42_fail ];
  Table.add_row lemma_table
    [ "4.3 (f x y <> f y z)"; string_of_int samples; string_of_int !lemma43_fail ];
  {
    Outcome.id = "E9";
    title = "Cole–Vishkin reduction: shrink speed and colouring preservation";
    claim = "Lemmas 4.1-4.3";
    tables =
      [ ("envelope iterations (Lemma 4.1)", table); ("sampled lemmas", lemma_table) ];
    ok = !ok;
    notes =
      [
        Printf.sprintf "max iterations/log* ratio observed: %.2f" !worst_ratio;
      ];
  }
