(** Colour palettes of the paper's algorithms.

    Algorithm 1 (and its general-graph extension, Algorithm 4) outputs a
    pair [(a, b)]; on the cycle the palette is [{ (a,b) | a + b <= 2 }]
    (6 colours), on a graph of maximum degree [Δ] it is
    [{ (a,b) | a + b <= Δ }] ([(Δ+1)(Δ+2)/2] colours).  Algorithms 2 and 3
    output a single natural in [{0, …, 4}]. *)

type pair = int * int
(** Output of Algorithms 1 and 4. *)

val pair_in_palette : budget:int -> pair -> bool
(** [pair_in_palette ~budget (a, b)] holds iff [a >= 0], [b >= 0] and
    [a + b <= budget].  The cycle uses [budget = 2]; general graphs use
    [budget = Δ]. *)

val pair_palette_size : budget:int -> int
(** [(budget+1)(budget+2)/2]. *)

val pair_index : pair -> int
(** Injective encoding of palette pairs into [0, 1, 2, …] by diagonal
    enumeration, for display purposes. *)

val in_five : int -> bool
(** Membership in [{0, …, 4}], the palette of Algorithms 2 and 3. *)

val pp_pair : Format.formatter -> pair -> unit
