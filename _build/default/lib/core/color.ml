type pair = int * int

let pair_in_palette ~budget (a, b) = a >= 0 && b >= 0 && a + b <= budget
let pair_palette_size ~budget = (budget + 1) * (budget + 2) / 2

(* Diagonal (Cantor-style) enumeration of pairs ordered by a+b then a. *)
let pair_index (a, b) =
  let d = a + b in
  (d * (d + 1) / 2) + a

let in_five c = c >= 0 && c <= 4
let pp_pair ppf (a, b) = Format.fprintf ppf "(%d,%d)" a b
