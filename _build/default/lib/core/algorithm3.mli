(** Algorithm 3 — wait-free 5-colouring of the cycle in O(log* n)
    (paper §4, the main result).

    Two components run in parallel inside each round:

    + the colouring component of Algorithm 2 verbatim (lines 6–10) — this
      alone guarantees wait-freedom;
    + an identifier-reduction component à la Cole–Vishkin (lines 11–19):
      a "middle" process (one whose [X_p] lies strictly between its
      neighbours' identifiers) repeatedly replaces [X_p] by
      [f(X_p, min(X_q, X_q'))], but only after receiving a green light
      [r_p ≤ min(r_q, r_q')] from both neighbours, which keeps the evolving
      identifiers a proper colouring at all times (Lemma 4.5).  A process
      that finds itself a local extremum sets [r_p = ∞] and stops reducing
      (after one final mex-style drop if it is a local minimum).

    Theorem 4.4: every process terminates within O(log* n) activations,
    with palette [{0,…,4}] and proper colouring of the returned subgraph.

    Semantics note: the identifier block (lines 11–19) needs to read both
    neighbours' registers; when either register is still [⊥] the block is
    skipped for that round.  Wait-freedom is unaffected — it rests solely
    on component 1. *)

type fields = { x : int; r : Rank.t; a : int; b : int }

module P :
  Asyncolor_kernel.Protocol.S
    with type state = fields
     and type register = fields
     and type output = int

module E : module type of Asyncolor_kernel.Engine.Make (P)

val activation_bound : int -> int
(** Empirical-constant version of the O(log* n) bound of Theorem 4.4 used
    by the test suite: [c1 * log* n + c0] with generous constants
    ([64 * log* n + 64]); every experiment measures far below it. *)

val monitor_identifier_coloring : E.t -> unit
(** Assert Lemma 4.5 on the current configuration: whenever both endpoints
    of an edge have published registers, their private and published
    identifiers differ from the neighbour's published identifier.  Install
    with [E.set_monitor] to check the invariant at every time step.
    @raise Failure on violation. *)

val run_on_cycle :
  ?max_steps:int -> idents:int array -> Asyncolor_kernel.Adversary.t -> E.run_result
