(** Algorithm 1 instrumented with the proof machinery of §3.1.

    The paper's analysis attaches to every process [p] two shadow sets:
    - [A_p(t)] (Eq. 3): identifiers of the processes [p] has heard of that
      are linked to [p] by a subpath of strictly increasing identifiers;
    - [B_p(t)] (Eq. 4): symmetrically, along decreasing identifiers.

    This module runs Algorithm 1 unchanged but carries [A_p]/[B_p] through
    the registers exactly as Equations (3)–(4) prescribe, so that the
    lemmas about them can be checked {e during} real executions:

    - Lemma 3.5: every element of [A_p] exceeds [X_p]; every element of
      [B_p] is below [X_p];
    - Remark 3.6: [A_p] and [B_p] grow monotonically (set inclusion);
    - Lemma 3.7: when [p] misses with at most one higher (resp. lower)
      awake neighbour, [a_p ≡ |A_p| (mod 2)] (resp. [b_p ≡ |B_p|]);
    - Lemma 3.8: a non-extremal process that misses grows [A_p] or [B_p].

    The base-protocol behaviour is bit-for-bit that of
    {!Algorithm1.P} (asserted by {!val-agrees_with_algorithm1}). *)

module IntSet : Set.S with type elt = int

type shadow = { a_set : IntSet.t; b_set : IntSet.t }

type state = {
  base : Algorithm1.fields;
  shadow : shadow;
  higher_awake : int;  (** |N+_p| at the last round, −1 before any round *)
  lower_awake : int;  (** |N−_p| at the last round *)
}

module P :
  Asyncolor_kernel.Protocol.S
    with type state = state
     and type register = state
     and type output = Color.pair

module E : module type of Asyncolor_kernel.Engine.Make (P)

val lemma_3_5 : state -> (unit, string) result
(** Check the ordering property of the shadow sets for one process. *)

val lemma_3_7 : state -> (unit, string) result
(** Check the parity property (only binding when the process just missed
    with at most one higher/lower awake neighbour). *)

val monitor : E.t -> unit
(** Assert Lemma 3.5 and Lemma 3.7 on every working process.
    @raise Failure on violation; install with [E.set_monitor]. *)

val agrees_with_algorithm1 :
  idents:int array -> schedule:int list list -> bool
(** Replay the same finite schedule against Algorithm 1 and against the
    instrumented protocol on the cycle of matching size; true iff all
    outputs (including non-termination) coincide. *)
