(** Algorithm 1 — wait-free 6-colouring of the cycle (paper §3.1).

    Each process starts with its identifier [X_p] and a colour
    [c_p = (a_p, b_p) = (0, 0)].  Every round it writes [(X_p, c_p)], reads
    its neighbours, returns [c_p] if no awake neighbour shows the same
    pair, and otherwise refreshes:
    - [a_p ← mex { a_u | u ~ p, X_u > X_p }],
    - [b_p ← mex { b_u | u ~ p, X_u < X_p }].

    Theorem 3.1: on [C_n] with identifiers forming a proper colouring,
    every process terminates within [⌊3n/2⌋ + 4] activations, outputs lie
    in [{ (a,b) | a + b ≤ 2 }], and the returned processes are properly
    coloured.  The very same code runs on arbitrary graphs (Appendix A,
    Algorithm 4) with palette [{ (a,b) | a + b ≤ Δ }]. *)

type fields = { x : int; a : int; b : int }

module P :
  Asyncolor_kernel.Protocol.S
    with type state = fields
     and type register = fields
     and type output = Color.pair

module E : module type of Asyncolor_kernel.Engine.Make (P)

val activation_bound : int -> int
(** [activation_bound n = (3 * n / 2) + 4], the bound of Theorem 3.1. *)

val monotone_bound : l:int -> l':int -> int
(** Lemma 3.9: a non-extremal process at monotone distances [l] and [l']
    from its closest extrema returns within
    [min (3l, 3l', l + l') + 4] activations. *)

val run_on_cycle :
  ?max_steps:int -> idents:int array -> Asyncolor_kernel.Adversary.t -> E.run_result
(** Convenience: build [C_n] for [n = Array.length idents], run to
    completion under the adversary. *)
