(** Algorithm 4 — wait-free O(Δ²)-colouring of general graphs
    (paper Appendix A).

    The code is Algorithm 1 verbatim, run on a graph of maximum degree Δ
    instead of the cycle: the per-round update reads all [k ≤ Δ] neighbour
    registers.  Outputs lie in [{ (a,b) | a + b ≤ Δ }], a palette of
    [(Δ+1)(Δ+2)/2] colours, and properly colour the subgraph induced by
    the terminating processes. *)

module P :
  Asyncolor_kernel.Protocol.S
    with type state = Algorithm1.fields
     and type register = Algorithm1.fields
     and type output = Color.pair

module E : module type of Asyncolor_kernel.Engine.Make (P)

val palette_size : max_degree:int -> int
(** [(Δ+1)(Δ+2)/2]. *)

val in_palette : max_degree:int -> Color.pair -> bool

val run :
  ?max_steps:int ->
  Asyncolor_topology.Graph.t ->
  idents:int array ->
  Asyncolor_kernel.Adversary.t ->
  E.run_result
(** Run on an arbitrary graph. *)
