lib/core/algorithm1.mli: Asyncolor_kernel Color
