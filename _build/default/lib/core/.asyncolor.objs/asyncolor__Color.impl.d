lib/core/color.ml: Format
