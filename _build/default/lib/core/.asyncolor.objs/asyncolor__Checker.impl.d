lib/core/checker.ml: Array Asyncolor_topology Format List
