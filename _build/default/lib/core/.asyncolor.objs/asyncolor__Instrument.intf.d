lib/core/instrument.mli: Algorithm1 Asyncolor_kernel Color Set
