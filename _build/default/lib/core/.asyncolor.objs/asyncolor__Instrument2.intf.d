lib/core/instrument2.mli: Algorithm2 Asyncolor_kernel Set
