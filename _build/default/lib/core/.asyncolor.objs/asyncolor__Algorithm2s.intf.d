lib/core/algorithm2s.mli: Asyncolor_kernel
