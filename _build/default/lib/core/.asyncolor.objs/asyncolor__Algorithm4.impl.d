lib/core/algorithm4.ml: Algorithm1 Asyncolor_kernel Color
