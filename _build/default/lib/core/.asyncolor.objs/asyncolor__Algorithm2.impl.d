lib/core/algorithm2.ml: Array Asyncolor_kernel Asyncolor_topology Asyncolor_util Format Fun List
