lib/core/rank.ml: Format Int
