lib/core/instrument.ml: Algorithm1 Array Asyncolor_kernel Asyncolor_topology Asyncolor_util Color Format Fun Int List Printf Set
