lib/core/algorithm2s.ml: Array Asyncolor_kernel Asyncolor_topology Asyncolor_util Format Fun List
