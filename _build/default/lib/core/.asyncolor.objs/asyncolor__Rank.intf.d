lib/core/rank.mli: Format
