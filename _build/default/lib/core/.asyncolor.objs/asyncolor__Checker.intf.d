lib/core/checker.mli: Asyncolor_topology Format
