lib/core/algorithm2.mli: Asyncolor_kernel Asyncolor_topology
