lib/core/algorithm1.ml: Array Asyncolor_kernel Asyncolor_topology Asyncolor_util Color Format Fun List
