lib/core/algorithm4.mli: Algorithm1 Asyncolor_kernel Asyncolor_topology Color
