lib/core/algorithm3.mli: Asyncolor_kernel Rank
