lib/core/instrument2.ml: Algorithm2 Array Asyncolor_kernel Asyncolor_topology Asyncolor_util Format Fun Int List Printf Set
