lib/core/algorithm3.ml: Array Asyncolor_cv Asyncolor_kernel Asyncolor_topology Asyncolor_util Format Fun List Printf Rank
