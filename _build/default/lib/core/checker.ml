module Graph = Asyncolor_topology.Graph

type 'c verdict = {
  proper : bool;
  conflicts : (int * int) list;
  off_palette : int list;
  returned : int;
  distinct_colors : int;
}

let check ~equal ~in_palette g outputs =
  if Array.length outputs <> Graph.n g then
    invalid_arg "Checker.check: outputs length must match node count";
  let conflicts =
    Graph.fold_edges
      (fun u v acc ->
        match (outputs.(u), outputs.(v)) with
        | Some cu, Some cv when equal cu cv -> (u, v) :: acc
        | _ -> acc)
      g []
  in
  let off_palette = ref [] in
  let returned = ref 0 in
  let seen = ref [] in
  Array.iteri
    (fun p -> function
      | None -> ()
      | Some c ->
          incr returned;
          if not (in_palette c) then off_palette := p :: !off_palette;
          if not (List.exists (equal c) !seen) then seen := c :: !seen)
    outputs;
  {
    proper = conflicts = [];
    conflicts = List.rev conflicts;
    off_palette = List.rev !off_palette;
    returned = !returned;
    distinct_colors = List.length !seen;
  }

let ok v = v.proper && v.off_palette = []

let pp ppf v =
  Format.fprintf ppf
    "@[<v>proper=%b returned=%d distinct=%d conflicts=[%a] off_palette=[%a]@]" v.proper
    v.returned v.distinct_colors
    Format.(
      pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf "; ") (fun ppf (u, v) ->
          fprintf ppf "%d-%d" u v))
    v.conflicts
    Format.(pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf "; ") pp_print_int)
    v.off_palette
