(** Output invariants: proper colouring of the returned subgraph and
    palette membership (the "Correctness" and "palette" clauses of
    Theorems 3.1, 3.11 and 4.4). *)

type 'c verdict = {
  proper : bool;  (** no edge with two returned endpoints sharing a colour *)
  conflicts : (int * int) list;  (** offending edges, [(u, v)] with [u < v] *)
  off_palette : int list;  (** returned processes whose colour is outside the palette *)
  returned : int;  (** how many processes returned *)
  distinct_colors : int;  (** number of distinct colours among returned processes *)
}

val check :
  equal:('c -> 'c -> bool) ->
  in_palette:('c -> bool) ->
  Asyncolor_topology.Graph.t ->
  'c option array ->
  'c verdict
(** [check ~equal ~in_palette g outputs] validates the partial colouring
    [outputs] (one entry per node; [None] = did not return).  Only edges
    whose two endpoints returned are constrained — the paper requires the
    outputs to "properly color the graph induced by the terminating
    processes". *)

val ok : 'c verdict -> bool
(** [proper] and no palette violations. *)

val pp : Format.formatter -> 'c verdict -> unit
