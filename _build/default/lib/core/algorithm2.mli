(** Algorithm 2 — wait-free 5-colouring of the cycle in O(n) (paper §3.2).

    Each process keeps two colour candidates [a_p] and [b_p]:
    - [a_p] avoids the candidates of neighbours with *greater* identifiers
      only ([a_p ← mex C+]) — the rank-based, renaming-flavoured component;
    - [b_p] avoids all neighbour candidates ([b_p ← mex C]) — the
      obstruction-free component.

    A process returns [a_p] (or failing that [b_p]) as soon as the value is
    absent from [C = { a_q, b_q, a_q', b_q' }].  Since [C+ ⊆ C], always
    [a_p ≤ b_p ≤ 4], giving the 5-colour palette.

    Theorem 3.11: termination within O(n) activations (non-minima within
    [⌊3n/2⌋ + 4], minima within [3n + 8]); palette [{0,…,4}]; outputs
    properly colour the returned subgraph. *)

type fields = { x : int; a : int; b : int }

module P :
  Asyncolor_kernel.Protocol.S
    with type state = fields
     and type register = fields
     and type output = int

module E : module type of Asyncolor_kernel.Engine.Make (P)

val activation_bound : int -> int
(** [activation_bound n = 3 * n + 8]: the bound of Theorem 3.11 covering
    all processes (local minima included). *)

val non_minimum_bound : l:int -> int
(** Lemma 3.14: a process that is not a local minimum, at monotone distance
    [l] from its closest local maximum, returns within [3l + 4]
    activations. *)

val run_on_cycle :
  ?max_steps:int -> idents:int array -> Asyncolor_kernel.Adversary.t -> E.run_result

(** {1 Beyond the cycle — the paper's open problem (§5)}

    The transition function never inspects its degree, so the very same
    code runs on arbitrary graphs, where [C] collects at most [2Δ] values
    and hence [a_p ≤ b_p = mex C ≤ 2Δ]: palette [{0, …, 2Δ}], i.e. the
    [2Δ+1] colours the renaming lower bound makes necessary (whenever
    [Δ+1] is a prime power).  Properness of the output is inherited from
    Lemma 3.12 verbatim; whether the algorithm always {e terminates}
    wait-free on general graphs is exactly the paper's open question.
    Experiment E16 probes it: exhaustively on all small graphs we tried
    (cliques, stars, paths, paw, diamond) it is wait-free under
    interleaved schedules with worst cases of 4–5 activations. *)

val general_palette : max_degree:int -> int
(** [2Δ + 1]. *)

val in_general_palette : max_degree:int -> int -> bool

val run_on_graph :
  ?max_steps:int ->
  Asyncolor_topology.Graph.t ->
  idents:int array ->
  Asyncolor_kernel.Adversary.t ->
  E.run_result
