(** Algorithm 2 instrumented with the [A_p] shadow sets used by the proof
    of Theorem 3.11 (the sets of Eq. (3), reused by Lemma 3.13).

    The key intermediate fact, Equation (5) of Lemma 3.13:
    [a_p = 0 ⟺ |A_p| ≡ 0 (mod 2)] whenever [p] misses with at most one
    higher awake neighbour — and, for the non-minimal processes the lemma
    targets, the parity always matches.

    Checking Eq. (5) at every step of every execution — {e including the
    F1 phase-lock executions where Theorem 3.11's conclusion fails} —
    localises the error in the paper's argument: Eq. (5) is sound (the
    monitor never fires, even inside the lock), while the final
    strict-inequality step "[b̂_p(t₄) = 0 < min{â_q(t₄), …}]" is the one
    falsified by a returned neighbour's frozen [a = 0] register. *)

module IntSet : Set.S with type elt = int

type state = {
  base : Algorithm2.fields;
  a_set : IntSet.t;
  higher_awake : int;  (** |N⁺_p| at the last missed round, −1 before any *)
}

module P :
  Asyncolor_kernel.Protocol.S
    with type state = state
     and type register = state
     and type output = int

module E : module type of Asyncolor_kernel.Engine.Make (P)

val eq5 : state -> (unit, string) result
(** Check Equation (5) for one process (binding when [higher_awake <= 1]). *)

val monitor : E.t -> unit
(** Assert {!eq5} on every working process; raise [Failure] on violation. *)

val agrees_with_algorithm2 : idents:int array -> schedule:int list list -> bool
(** Observational transparency against the plain Algorithm 2. *)
