(* Algorithm 4 is Algorithm 1 run on an arbitrary topology; only the name
   (for traces) and the palette accounting differ. *)

module P = struct
  include Algorithm1.P

  let name = "algorithm4"
end

module E = Asyncolor_kernel.Engine.Make (P)

let palette_size ~max_degree = Color.pair_palette_size ~budget:max_degree
let in_palette ~max_degree pair = Color.pair_in_palette ~budget:max_degree pair

let run ?max_steps g ~idents adv =
  let engine = E.create g ~idents in
  E.run ?max_steps engine adv
