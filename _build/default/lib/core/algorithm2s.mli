(** Algorithm 2S — a {e candidate} repair of finding F1, studied (and
    partly refuted) by experiment E17.  Not in the paper.

    Finding F1 shows that under the paper's simultaneous-activation
    semantics Algorithm 2 can phase-lock: two adjacent processes whose
    conflict sets mirror each other recompute symmetric [b] values forever
    when their rounds coincide.  This variant tries to break the symmetry
    {e inside} the algorithm: a process picks the [(1 + |N⁺_p|)]-th free
    colour instead of the first, where [N⁺_p] is its set of awake
    higher-identifier neighbours — the hope being that the chasing pair
    always differs in local rank.

    E17's verdict: the attack surface shrinks dramatically (the
    isolate-pair hunter finds no locks where Algorithm 2 locks 10–20% of
    edges, and C3/C5 instances that locked become exhaustively wait-free)
    {e but the repair is not sound}: on [C_4] with monotone identifiers
    (0,1,2,3) the two middle nodes both have rank 1 and the checker
    exhibits a lasso.  Any bounded identifier-derived offset that must
    differ on adjacent nodes is itself a proper colouring — the problem
    being solved — which is why these in-algorithm fixes keep failing.
    The sound simultaneity-safe option in the paper's own toolbox is
    Algorithm 1: its two components are pinned {e asymmetrically} (the
    local maximum holds [a = 0], the minimum holds [b = 0]), and it is
    exhaustively wait-free in the full model at the price of a 6-colour
    palette.

    Palette here: [{0,…,6}] (on the cycle [|C| ≤ 4], [|N⁺| ≤ 2]).
    Properness is inherited from Lemma 3.12 unchanged. *)

type fields = { x : int; a : int; b : int }

module P :
  Asyncolor_kernel.Protocol.S
    with type state = fields
     and type register = fields
     and type output = int

module E : module type of Asyncolor_kernel.Engine.Make (P)

val palette_size : int
(** 7: outputs lie in [{0,…,6}] on the cycle. *)

val in_palette : int -> bool

val run_on_cycle :
  ?max_steps:int -> idents:int array -> Asyncolor_kernel.Adversary.t -> E.run_result
