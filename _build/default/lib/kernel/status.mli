(** Lifecycle of a process in an execution.

    Every process starts [Asleep]; its first activation wakes it
    ([Working]); fulfilling the stopping condition makes it [Returned].
    A crash is not a status: a crashed process is simply one the schedule
    stops activating (it stays [Asleep] or [Working] forever). *)

type 'output t = Asleep | Working | Returned of 'output

val is_asleep : 'o t -> bool
val is_working : 'o t -> bool
val is_returned : 'o t -> bool

val output : 'o t -> 'o option
(** [output s] is [Some o] iff [s = Returned o]. *)

val pp : (Format.formatter -> 'o -> unit) -> Format.formatter -> 'o t -> unit
