type 'output t = Asleep | Working | Returned of 'output

let is_asleep = function Asleep -> true | Working | Returned _ -> false
let is_working = function Working -> true | Asleep | Returned _ -> false
let is_returned = function Returned _ -> true | Asleep | Working -> false
let output = function Returned o -> Some o | Asleep | Working -> None

let pp pp_output ppf = function
  | Asleep -> Format.pp_print_string ppf "asleep"
  | Working -> Format.pp_print_string ppf "working"
  | Returned o -> Format.fprintf ppf "returned(%a)" pp_output o
