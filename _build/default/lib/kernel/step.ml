type ('state, 'output) t = Continue of 'state | Return of 'output

let map_state f = function Continue s -> Continue (f s) | Return o -> Return o
let is_return = function Return _ -> true | Continue _ -> false
