lib/kernel/status.mli: Format
