lib/kernel/adversary.ml: Array Asyncolor_util List Printf String
