lib/kernel/step.mli:
