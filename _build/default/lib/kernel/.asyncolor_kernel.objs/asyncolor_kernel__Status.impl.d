lib/kernel/status.ml: Format
