lib/kernel/adversary.mli: Asyncolor_util
