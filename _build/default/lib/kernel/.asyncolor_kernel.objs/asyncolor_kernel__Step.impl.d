lib/kernel/step.ml:
