lib/kernel/engine.mli: Adversary Asyncolor_topology Format Protocol Status
