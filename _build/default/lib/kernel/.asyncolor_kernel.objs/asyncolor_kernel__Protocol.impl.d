lib/kernel/protocol.ml: Format Step
