lib/kernel/engine.ml: Adversary Array Asyncolor_topology Format List Option Protocol Status Step
