(** Result of one asynchronous round of a process. *)

type ('state, 'output) t =
  | Continue of 'state  (** The stopping condition is not met; adopt this state. *)
  | Return of 'output  (** Terminate and output; the process takes no further steps. *)

val map_state : ('a -> 'b) -> ('a, 'o) t -> ('b, 'o) t
val is_return : ('s, 'o) t -> bool
