module Prng = Asyncolor_util.Prng

let cycle n =
  if n < 3 then invalid_arg "Builders.cycle: need n >= 3";
  Graph.make ~n ~edges:(List.init n (fun i -> (i, (i + 1) mod n)))

let path n =
  if n < 1 then invalid_arg "Builders.path: need n >= 1";
  Graph.make ~n ~edges:(List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.make ~n ~edges:!edges

let star n =
  if n < 2 then invalid_arg "Builders.star: need n >= 2";
  Graph.make ~n ~edges:(List.init (n - 1) (fun i -> (0, i + 1)))

let grid w h =
  if w < 1 || h < 1 then invalid_arg "Builders.grid: need w, h >= 1";
  let idx x y = (y * w) + x in
  let edges = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then edges := (idx x y, idx (x + 1) y) :: !edges;
      if y + 1 < h then edges := (idx x y, idx x (y + 1)) :: !edges
    done
  done;
  Graph.make ~n:(w * h) ~edges:!edges

let torus w h =
  if w < 3 || h < 3 then invalid_arg "Builders.torus: need w, h >= 3";
  let idx x y = (y * w) + x in
  let edges = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      edges := (idx x y, idx ((x + 1) mod w) y) :: !edges;
      edges := (idx x y, idx x ((y + 1) mod h)) :: !edges
    done
  done;
  Graph.make ~n:(w * h) ~edges:!edges

let petersen () =
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  let inner = List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) in
  Graph.make ~n:10 ~edges:(outer @ spokes @ inner)

let hypercube d =
  if d < 0 || d > 20 then invalid_arg "Builders.hypercube: need 0 <= d <= 20";
  let n = 1 lsl d in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let u = v lxor (1 lsl bit) in
      if v < u then edges := (v, u) :: !edges
    done
  done;
  Graph.make ~n ~edges:!edges

(* Pairing (configuration) model: put d copies of each node in an urn,
   shuffle, pair consecutive entries; restart on loops or multi-edges.  For
   the small d used in experiments the expected number of restarts is O(1). *)
let random_regular prng ~n ~d =
  if d < 0 then invalid_arg "Builders.random_regular: negative degree";
  if d >= n then invalid_arg "Builders.random_regular: need d < n";
  if n * d mod 2 = 1 then invalid_arg "Builders.random_regular: n*d must be even";
  let stubs = Array.init (n * d) (fun i -> i / d) in
  let module S = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let rec attempt remaining =
    if remaining = 0 then
      failwith "Builders.random_regular: too many restarts (degree too dense?)";
    Prng.shuffle prng stubs;
    let rec pair i acc =
      if i >= Array.length stubs then Some acc
      else
        let u = stubs.(i) and v = stubs.(i + 1) in
        let e = if u < v then (u, v) else (v, u) in
        if u = v || S.mem e acc then None else pair (i + 2) (S.add e acc)
    in
    match pair 0 S.empty with
    | Some acc -> Graph.make ~n ~edges:(S.elements acc)
    | None -> attempt (remaining - 1)
  in
  attempt 10_000

let gnp prng ~n ~p =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.float prng 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  Graph.make ~n ~edges:!edges
