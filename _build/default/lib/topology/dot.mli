(** Graphviz DOT export, for inspecting topologies and colourings. *)

val to_string : ?labels:(int -> string) -> ?colors:(int -> int option) -> Graph.t -> string
(** [to_string g] renders [g] in DOT syntax.  [labels] supplies node labels
    (default: the node index); [colors] maps a node to a palette index used
    to pick a fill colour (up to 10 distinct fills), [None] leaving the node
    unfilled (e.g. a crashed process). *)

val write_file : string -> ?labels:(int -> string) -> ?colors:(int -> int option) -> Graph.t -> unit
(** [write_file path g] writes {!to_string} to [path]. *)
