lib/topology/builders.ml: Array Asyncolor_util Graph List Set
