lib/topology/builders.mli: Asyncolor_util Graph
