lib/topology/dot.mli: Graph
