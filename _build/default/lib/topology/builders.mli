(** Standard graph families used by the experiments.

    All builders return validated {!Graph.t} values.  Random builders take a
    {!Asyncolor_util.Prng.t} so that workloads are reproducible. *)

val cycle : int -> Graph.t
(** [cycle n] is the cycle [C_n].  @raise Invalid_argument if [n < 3]. *)

val path : int -> Graph.t
(** [path n] is the path on [n] nodes.  @raise Invalid_argument if [n < 1]. *)

val complete : int -> Graph.t
(** [complete n] is the clique [K_n].  For [n = 3] this coincides with [C_3],
    the case where the state model equals the shared-memory model. *)

val star : int -> Graph.t
(** [star n] has centre [0] and leaves [1 .. n-1].
    @raise Invalid_argument if [n < 2]. *)

val grid : int -> int -> Graph.t
(** [grid w h] is the [w*h] grid; node [(x, y)] is index [y*w + x].
    @raise Invalid_argument if [w < 1] or [h < 1]. *)

val torus : int -> int -> Graph.t
(** [grid] with wrap-around rows and columns; max degree 4.
    @raise Invalid_argument if [w < 3] or [h < 3]. *)

val petersen : unit -> Graph.t
(** The Petersen graph: 10 nodes, 3-regular. *)

val hypercube : int -> Graph.t
(** [hypercube d] is the [d]-dimensional cube on [2^d] nodes.
    @raise Invalid_argument if [d < 0] or [d > 20]. *)

val random_regular : Asyncolor_util.Prng.t -> n:int -> d:int -> Graph.t
(** [random_regular prng ~n ~d] samples a simple [d]-regular graph on [n]
    nodes by the pairing model with restarts.
    @raise Invalid_argument if [n*d] is odd, [d >= n], or [d < 0]. *)

val gnp : Asyncolor_util.Prng.t -> n:int -> p:float -> Graph.t
(** Erdős–Rényi [G(n, p)]. *)
