let palette =
  [| "#e6194b"; "#3cb44b"; "#ffe119"; "#4363d8"; "#f58231"; "#911eb4"; "#46f0f0";
     "#f032e6"; "#bcf60c"; "#fabebe" |]

let to_string ?labels ?colors g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph asyncolor {\n  node [style=filled];\n";
  for v = 0 to Graph.n g - 1 do
    let label = match labels with Some f -> f v | None -> string_of_int v in
    let fill =
      match colors with
      | Some f -> (
          match f v with
          | Some c -> Printf.sprintf ", fillcolor=\"%s\"" palette.(c mod Array.length palette)
          | None -> ", fillcolor=\"#ffffff\"")
      | None -> ""
    in
    Buffer.add_string buf (Printf.sprintf "  %d [label=\"%s\"%s];\n" v label fill)
  done;
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path ?labels ?colors g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?labels ?colors g))
