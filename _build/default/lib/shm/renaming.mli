(** Rank-based wait-free (2n−1)-renaming in asynchronous shared memory
    (Attiya, Bar-Noy, Dolev, Peleg, Reischuk 1990; see also [7, Alg. 55]).

    The paper's Algorithm 2 "bears some resemblance" to this classic: the
    [a_p] component is rank-based in the same way.  We implement it as the
    shared-memory baseline of experiment E12 and to exhibit the [C_3]
    coincidence of Property 2.3: on 3 processes, renaming needs 5 names,
    and 5 names = the 5 colours of Algorithms 2–3 on [C_3].

    The shared-memory model is the state model on the complete graph
    [K_n]: every process reads every other register, plus it knows its own
    state.  Each round a process proposes a name; if the snapshot shows a
    collision it re-proposes the [rank]-th free name, where [rank] is the
    position of its identifier among all identifiers seen. *)

type fields = { x : int; proposal : int }

module P :
  Asyncolor_kernel.Protocol.S
    with type state = fields
     and type register = fields
     and type output = int

module E : module type of Asyncolor_kernel.Engine.Make (P)

val name_bound : int -> int
(** [name_bound n = 2 * n - 2]: the largest name (0-based) that can be
    output among [n] processes, i.e. names lie in [{0, …, 2n−2}] —
    a palette of [2n − 1] names. *)

val kth_free : int -> int list -> int
(** [kth_free k taken] is the [k]-th smallest natural (1-based [k]) not in
    [taken].  Exposed for testing.  @raise Invalid_argument if [k < 1]. *)

val run : ?max_steps:int -> n:int -> idents:int array -> Asyncolor_kernel.Adversary.t -> E.run_result
(** Run renaming among [n] processes (complete graph).
    @raise Invalid_argument if [Array.length idents <> n] or [n < 2]. *)
