(** The reduction of Property 2.1: a wait-free MIS protocol for the cycle
    [C_n] yields a wait-free strong-symmetry-breaking protocol for the
    [n]-process shared-memory system.

    Shared-memory process [p_i] simulates cycle node [i]: it publishes the
    register the simulated node would write and, although it can read all
    [n] registers (the shared-memory system is the state model on the
    complete graph), it only feeds the registers of [i ± 1 mod n] to the
    simulated node.  The SSB output is the MIS bit.

    Since no wait-free MIS protocol exists (that is the point of
    Property 2.1), the functor is exercised on the foils of {!Mis}: it
    faithfully transports both their behaviours — and their failures —
    into the shared-memory model. *)

module Make (M : Asyncolor_kernel.Protocol.S with type output = bool) : sig
  type fields = { me : int; inner : M.state }

  module P :
    Asyncolor_kernel.Protocol.S
      with type state = fields
       and type register = M.register
       and type output = int

  module E : module type of Asyncolor_kernel.Engine.Make (P)

  val run :
    ?max_steps:int -> n:int -> Asyncolor_kernel.Adversary.t -> E.run_result
  (** Run the simulation among [n >= 3] shared-memory processes; process
      [i] simulates cycle node [i] with identifier [i]. *)
end
