lib/shm/reduction.mli: Asyncolor_kernel
