lib/shm/mis.mli: Asyncolor_kernel Asyncolor_topology
