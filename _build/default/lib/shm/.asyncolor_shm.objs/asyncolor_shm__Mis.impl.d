lib/shm/mis.ml: Array Asyncolor_kernel Asyncolor_topology Format Fun List Option
