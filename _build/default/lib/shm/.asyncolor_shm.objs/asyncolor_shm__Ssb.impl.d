lib/shm/ssb.ml: Array Format Option
