lib/shm/reduction.ml: Array Asyncolor_kernel Asyncolor_topology Format Fun
