lib/shm/renaming.ml: Array Asyncolor_kernel Asyncolor_topology Format Fun List
