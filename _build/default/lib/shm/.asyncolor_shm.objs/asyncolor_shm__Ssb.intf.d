lib/shm/ssb.mli: Format
