lib/shm/renaming.mli: Asyncolor_kernel
