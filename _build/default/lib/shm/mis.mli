(** Maximal independent set on the asynchronous cycle — the task that is
    *impossible* wait-free (paper Property 2.1).

    The task: at the end of every execution, (1) every node that terminates
    and outputs 0 (out of the MIS) has at least one terminated neighbour
    that output 1, and (2) no two terminated neighbours both output 1.

    No protocol can be simultaneously wait-free and correct; we provide the
    two halves of that trade-off as concrete foils:
    - {!Greedy}: returns after one look — wait-free but violated by simple
      sequential schedules (the model checker exhibits them);
    - {!Cautious}: greedy-by-identifier with waiting — correct in every
      *fair* execution, but blocked forever by a crashed higher neighbour
      (the model checker finds the livelock cycle, i.e. non-wait-freedom).

    Outputs are [true] = in the MIS (the SSB bit 1 under the reduction). *)

val valid : Asyncolor_topology.Graph.t -> bool option array -> bool
(** Validity of a partial MIS outcome per the paper's definition. *)

val independence_ok : Asyncolor_topology.Graph.t -> bool option array -> bool
(** Condition (2) alone: no two adjacent terminated [true]s. *)

val domination_ok : Asyncolor_topology.Graph.t -> bool option array -> bool
(** Condition (1) alone: every terminated [false] has a terminated [true]
    neighbour. *)

(** Wait-free but incorrect: decide from the first visible snapshot. *)
module Greedy : sig
  type fields = { x : int }

  module P :
    Asyncolor_kernel.Protocol.S
      with type state = fields
       and type register = fields
       and type output = bool

  module E : module type of Asyncolor_kernel.Engine.Make (P)
end

(** Correct under fair schedules but not wait-free: wait for all higher
    identifiers to decide. *)
module Cautious : sig
  type decision = Undecided | Pending of bool

  type fields = { x : int; decision : decision }

  module P :
    Asyncolor_kernel.Protocol.S
      with type state = fields
       and type register = fields
       and type output = bool

  module E : module type of Asyncolor_kernel.Engine.Make (P)
end
