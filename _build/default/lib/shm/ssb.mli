(** The strong symmetry-breaking (SSB) task (paper §2.3, following
    Attiya–Paz).

    Each process outputs a bit.  The task demands:
    + if all processes terminate, at least one outputs 0 and at least one
      outputs 1;
    + in every execution (with at least one terminating process), at least
      one process outputs 1.

    SSB is not solvable wait-free in asynchronous shared memory
    ([6, Theorem 11]); Property 2.1 reduces MIS on the cycle to it. *)

type outcome = int option array
(** One entry per process; [None] = did not terminate; [Some b], [b ∈ {0,1}]. *)

val all_terminated : outcome -> bool

val condition_both_sides : outcome -> bool
(** Condition (1): vacuously true unless all processes terminated; then at
    least one 0 and at least one 1 are required. *)

val condition_some_one : outcome -> bool
(** Condition (2): at least one process output 1 — vacuously true when no
    process terminated at all. *)

val valid : outcome -> bool
(** Conjunction of the two conditions. *)

val pp : Format.formatter -> outcome -> unit
