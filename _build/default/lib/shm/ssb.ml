type outcome = int option array

let all_terminated o = Array.for_all Option.is_some o

let condition_both_sides o =
  if not (all_terminated o) then true
  else
    Array.exists (fun v -> v = Some 0) o && Array.exists (fun v -> v = Some 1) o

let condition_some_one o =
  Array.for_all Option.is_none o || Array.exists (fun v -> v = Some 1) o

let valid o = condition_both_sides o && condition_some_one o

let pp ppf o =
  Format.fprintf ppf "[%a]"
    Format.(
      pp_print_seq ~pp_sep:(fun ppf () -> pp_print_string ppf ";") (fun ppf v ->
          match v with
          | None -> pp_print_string ppf "⊥"
          | Some b -> pp_print_int ppf b))
    (Array.to_seq o)
